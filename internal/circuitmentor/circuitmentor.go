// Package circuitmentor implements CircuitMentor (paper §IV-A): the
// graph-based circuit analysis assistant. It converts RTL into a
// hierarchical graph — design, modules, and component nodes with structural
// features — loads that graph into the property-graph database for Cypher
// retrieval, embeds modules with the hierarchical GraphSAGE model, and
// computes the design-characteristics analysis (fanout profile, stage
// balance, hierarchy overhead, path shape) that grounds the LLM's command
// selection.
package circuitmentor

import (
	"fmt"
	"math"

	"repro/internal/gnn"
	"repro/internal/graphdb"
	"repro/internal/tensor"
	"repro/internal/verilog"
)

// FeatureDim is the input feature width of component nodes.
const FeatureDim = 12

// Feature indexes.
const (
	fAssign = iota
	fReg
	fInstance
	fXor
	fAndOr
	fAddSub
	fMul
	fMux
	fShift
	fCmp
	fWidth
	fFanin
)

// ModuleInfo describes one module of a design graph.
type ModuleInfo struct {
	Name      string
	Code      string
	Instances int // times instantiated within the design
	Nodes     int // component nodes contributed to the graph
}

// DesignGraph is the hierarchical graph CircuitMentor builds from RTL.
type DesignGraph struct {
	Top     string
	File    *verilog.SourceFile
	Modules []ModuleInfo
	G       *gnn.Graph
}

// ModuleIndex returns the index of a module by name, or -1.
func (dg *DesignGraph) ModuleIndex(name string) int {
	for i, m := range dg.Modules {
		if m.Name == name {
			return i
		}
	}
	return -1
}

// Mentor holds the trained embedding model.
type Mentor struct {
	Model *gnn.Model
}

// New creates a mentor with a freshly initialized (untrained) GraphSAGE
// model of the standard shape.
func New(seed int64) *Mentor {
	return &Mentor{Model: gnn.New(gnn.Config{
		InDim:  FeatureDim,
		Hidden: 24,
		OutDim: 16,
		Agg:    gnn.AggMean,
		Seed:   seed,
	})}
}

// BuildGraph parses RTL and constructs the design graph: one component node
// per assign statement, register group, or instance, with edges following
// signal dataflow inside each module. Each *used* module contributes one
// subgraph (modules instantiated multiple times contribute once, like the
// paper's module-level hierarchy).
func BuildGraph(src, top string) (*DesignGraph, error) {
	file, err := verilog.Parse(src)
	if err != nil {
		return nil, err
	}
	return BuildGraphFromFile(file, top)
}

// BuildGraphFromFile is BuildGraph over an already-parsed file.
func BuildGraphFromFile(file *verilog.SourceFile, top string) (*DesignGraph, error) {
	topMod := file.FindModule(top)
	if topMod == nil {
		return nil, fmt.Errorf("top module %q not found", top)
	}
	// Collect used modules breadth-first from the top.
	used := []*verilog.Module{topMod}
	seen := map[string]bool{top: true}
	instCount := map[string]int{top: 1}
	for i := 0; i < len(used); i++ {
		for _, item := range used[i].Items {
			inst, ok := item.(*verilog.Instance)
			if !ok {
				continue
			}
			instCount[inst.ModuleName]++
			if seen[inst.ModuleName] {
				continue
			}
			sub := file.FindModule(inst.ModuleName)
			if sub == nil {
				return nil, fmt.Errorf("module %q not found", inst.ModuleName)
			}
			seen[inst.ModuleName] = true
			used = append(used, sub)
		}
	}

	dg := &DesignGraph{Top: top, File: file}
	var feats [][]float64
	var adj [][]int
	var moduleOf []int

	for mi, mod := range used {
		nodes, edges := moduleComponents(mod)
		base := len(feats)
		for _, n := range nodes {
			feats = append(feats, n)
			adj = append(adj, nil)
			moduleOf = append(moduleOf, mi)
		}
		for _, e := range edges {
			a, b := base+e[0], base+e[1]
			adj[a] = append(adj[a], b)
			adj[b] = append(adj[b], a)
		}
		dg.Modules = append(dg.Modules, ModuleInfo{
			Name:      mod.Name,
			Code:      mod.Source,
			Instances: instCount[mod.Name],
			Nodes:     len(nodes),
		})
	}
	fm := tensor.NewMatrix(len(feats), FeatureDim)
	for i, f := range feats {
		copy(fm.Row(i), f)
	}
	dg.G = &gnn.Graph{Feats: fm, Adj: adj, ModuleOf: moduleOf, NumModule: len(used)}
	return dg, dg.G.Validate()
}

// moduleComponents converts a module body into component nodes and
// dataflow edges. Node i produces the signals in defs[i] and reads uses[i];
// an edge connects i -> j when i defines something j uses.
func moduleComponents(mod *verilog.Module) (feats [][]float64, edges [][2]int) {
	type comp struct {
		defs map[string]bool
		uses map[string]bool
	}
	var comps []comp
	addNode := func(f []float64, defs, uses map[string]bool) {
		feats = append(feats, f)
		comps = append(comps, comp{defs: defs, uses: uses})
	}

	for _, item := range mod.Items {
		switch it := item.(type) {
		case *verilog.Assign:
			f := make([]float64, FeatureDim)
			f[fAssign] = 1
			st := exprStats(it.RHS)
			st.fill(f)
			defs := map[string]bool{}
			collectIdents(it.LHS, defs)
			uses := map[string]bool{}
			collectIdents(it.RHS, uses)
			addNode(f, defs, uses)

		case *verilog.AlwaysFF:
			f := make([]float64, FeatureDim)
			f[fReg] = 1
			defs := map[string]bool{}
			uses := map[string]bool{}
			var st stats
			var walk func(stmts []verilog.Stmt)
			walk = func(stmts []verilog.Stmt) {
				for _, s := range stmts {
					switch v := s.(type) {
					case *verilog.NonBlocking:
						collectIdents(v.LHS, defs)
						collectIdents(v.RHS, uses)
						st.add(exprStats(v.RHS))
					case *verilog.IfStmt:
						collectIdents(v.Cond, uses)
						st.add(exprStats(v.Cond))
						st.mux++
						walk(v.Then)
						walk(v.Else)
					}
				}
			}
			walk(it.Body)
			st.fill(f)
			addNode(f, defs, uses)

		case *verilog.Instance:
			f := make([]float64, FeatureDim)
			f[fInstance] = 1
			defs := map[string]bool{}
			uses := map[string]bool{}
			// Without the callee's port directions we treat all
			// connections as both used and defined, which still yields the
			// right connectivity.
			for _, c := range it.Conns {
				if c.Expr != nil {
					collectIdents(c.Expr, defs)
					collectIdents(c.Expr, uses)
				}
			}
			f[fFanin] = math.Log1p(float64(len(it.Conns)))
			addNode(f, defs, uses)

		case *verilog.GatePrim:
			f := make([]float64, FeatureDim)
			f[fAssign] = 1
			f[fAndOr] = 1
			defs := map[string]bool{}
			uses := map[string]bool{}
			if len(it.Args) > 0 {
				collectIdents(it.Args[0], defs)
				for _, a := range it.Args[1:] {
					collectIdents(a, uses)
				}
			}
			addNode(f, defs, uses)
		}
	}

	// Modules with no items still get one placeholder node so pooling works.
	if len(feats) == 0 {
		addNode(make([]float64, FeatureDim), map[string]bool{}, map[string]bool{})
	}

	// Dataflow edges.
	for i := range comps {
		for j := range comps {
			if i == j {
				continue
			}
			for d := range comps[i].defs {
				if comps[j].uses[d] {
					edges = append(edges, [2]int{i, j})
					break
				}
			}
		}
	}
	return feats, edges
}

// stats accumulates expression operator counts.
type stats struct {
	xor, andor, addsub, mul, mux, shift, cmp int
	width, fanin                             int
}

func (s *stats) add(o stats) {
	s.xor += o.xor
	s.andor += o.andor
	s.addsub += o.addsub
	s.mul += o.mul
	s.mux += o.mux
	s.shift += o.shift
	s.cmp += o.cmp
	if o.width > s.width {
		s.width = o.width
	}
	s.fanin += o.fanin
}

func (s stats) fill(f []float64) {
	f[fXor] = math.Log1p(float64(s.xor))
	f[fAndOr] = math.Log1p(float64(s.andor))
	f[fAddSub] = math.Log1p(float64(s.addsub))
	f[fMul] = math.Log1p(float64(s.mul))
	f[fMux] = math.Log1p(float64(s.mux))
	f[fShift] = math.Log1p(float64(s.shift))
	f[fCmp] = math.Log1p(float64(s.cmp))
	f[fWidth] = math.Log1p(float64(s.width))
	f[fFanin] = math.Log1p(float64(s.fanin))
}

func exprStats(e verilog.Expr) stats {
	var s stats
	var walk func(e verilog.Expr)
	walk = func(e verilog.Expr) {
		switch v := e.(type) {
		case *verilog.Ident:
			s.fanin++
		case *verilog.Number:
			if v.Width > s.width {
				s.width = v.Width
			}
		case *verilog.Unary:
			switch v.Op {
			case "^", "~^":
				s.xor++
			case "&", "|", "~&", "~|":
				s.andor++
			}
			walk(v.X)
		case *verilog.Binary:
			switch v.Op {
			case "^", "~^", "^~":
				s.xor++
			case "&", "|", "&&", "||":
				s.andor++
			case "+", "-":
				s.addsub++
			case "*":
				s.mul++
			case "<<", ">>", "<<<", ">>>":
				s.shift++
			case "==", "!=", "<", "<=", ">", ">=":
				s.cmp++
			}
			walk(v.L)
			walk(v.R)
		case *verilog.Ternary:
			s.mux++
			walk(v.Cond)
			walk(v.T)
			walk(v.F)
		case *verilog.Index:
			walk(v.X)
		case *verilog.Slice:
			walk(v.X)
		case *verilog.Concat:
			for _, p := range v.Parts {
				walk(p)
			}
		case *verilog.Repl:
			walk(v.X)
		}
	}
	walk(e)
	return s
}

func collectIdents(e verilog.Expr, into map[string]bool) {
	switch v := e.(type) {
	case *verilog.Ident:
		into[v.Name] = true
	case *verilog.Unary:
		collectIdents(v.X, into)
	case *verilog.Binary:
		collectIdents(v.L, into)
		collectIdents(v.R, into)
	case *verilog.Ternary:
		collectIdents(v.Cond, into)
		collectIdents(v.T, into)
		collectIdents(v.F, into)
	case *verilog.Index:
		collectIdents(v.X, into)
	case *verilog.Slice:
		collectIdents(v.X, into)
	case *verilog.Concat:
		for _, p := range v.Parts {
			collectIdents(p, into)
		}
	case *verilog.Repl:
		collectIdents(v.X, into)
	}
}

// EmbedModules returns one embedding per module of the design graph.
func (m *Mentor) EmbedModules(dg *DesignGraph) [][]float64 {
	mat := m.Model.Embed(dg.G)
	out := make([][]float64, mat.Rows)
	for i := range out {
		out[i] = append([]float64(nil), mat.Row(i)...)
	}
	return out
}

// EmbedGlobal returns the design-level embedding (global mean pooling).
func (m *Mentor) EmbedGlobal(dg *DesignGraph) []float64 {
	return m.Model.EmbedGlobal(dg.G)
}

// TrainSample pairs a design graph with per-module category labels.
type TrainSample struct {
	DG     *DesignGraph
	Labels []string
}

// Train runs metric learning so same-category modules cluster.
func (m *Mentor) Train(samples []TrainSample, epochs int, cfg gnn.TrainConfig) ([]float64, error) {
	batch := make([]gnn.Sample, len(samples))
	for i, s := range samples {
		batch[i] = gnn.Sample{G: s.DG.G, Labels: s.Labels}
	}
	tr := gnn.NewTrainer(m.Model, cfg)
	return tr.Train(batch, epochs)
}

// LoadIntoDB stores the hierarchical design graph in the property-graph
// database: a Design node containing Module nodes, with INSTANTIATES edges
// following the hierarchy, so SynthRAG's Cypher queries can fetch module
// code and structure.
func LoadIntoDB(db *graphdb.DB, dg *DesignGraph, designProps map[string]any) *graphdb.Node {
	props := map[string]any{"name": dg.Top}
	for k, v := range designProps {
		props[k] = v
	}
	designName, _ := props["name"].(string)
	dNode := db.CreateNode([]string{"Design"}, props)
	modNodes := make(map[string]*graphdb.Node, len(dg.Modules))
	for _, mi := range dg.Modules {
		n := db.CreateNode([]string{"Module"}, map[string]any{
			"name":      mi.Name,
			"design":    designName,
			"code":      mi.Code,
			"instances": int64(mi.Instances),
			"nodes":     int64(mi.Nodes),
		})
		modNodes[mi.Name] = n
		db.CreateRel(dNode, n, "CONTAINS", nil)
	}
	// INSTANTIATES edges from the AST.
	for _, mi := range dg.Modules {
		mod := dg.File.FindModule(mi.Name)
		if mod == nil {
			continue
		}
		linked := map[string]bool{}
		for _, item := range mod.Items {
			if inst, ok := item.(*verilog.Instance); ok && !linked[inst.ModuleName] {
				if child, ok := modNodes[inst.ModuleName]; ok {
					db.CreateRel(modNodes[mi.Name], child, "INSTANTIATES", nil)
					linked[inst.ModuleName] = true
				}
			}
		}
	}
	return dNode
}
