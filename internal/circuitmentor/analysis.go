package circuitmentor

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/sta"
	"repro/internal/verilog"
)

// Analysis is CircuitMentor's structural characterization of a design: the
// graph-derived facts that determine which synthesis commands pay off. Its
// Render output becomes the "Design characteristics" prompt section.
type Analysis struct {
	Design       string
	Cells        int
	Registers    int
	Groups       int
	MaxFanout    int
	FanoutSignal string
	// Stage balance: worst flop-endpoint arrival over the median one.
	ImbalanceRatio float64
	// Cross-boundary inverter pairs: hierarchy overhead removable only by
	// ungrouping.
	BoundaryInvPairs int
	// Critical path shape.
	PathSteps  int
	StartAtPI  bool
	EndAtPO    bool
	XorFrac    float64
	MulHeavy   bool
	Traits     []string
}

// Analysis thresholds: tuned so the detector reproduces the ground-truth
// traits of the benchmark set.
const (
	fanoutThreshold    = 32
	imbalanceThreshold = 2.2
	boundaryInvPairsTh = 48
	serialStepsTh      = 30
)

// Analyze elaborates the design and computes its structural
// characterization using a quick timing pass — the graph-based analysis the
// paper performs with Neo4j path queries and GNN features.
func Analyze(src, top string, period float64, lib *liberty.Library) (*Analysis, error) {
	return AnalyzeContext(context.Background(), src, top, period, lib)
}

// AnalyzeContext is Analyze with cooperative cancellation: the context is
// checked between the parse, elaborate, and timing phases.
func AnalyzeContext(ctx context.Context, src, top string, period float64, lib *liberty.Library) (*Analysis, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	file, err := verilog.Parse(src)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	nl, err := netlist.Elaborate(file, top, nil, lib)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return AnalyzeNetlist(nl, period)
}

// AnalyzeNetlist characterizes an already-elaborated netlist.
func AnalyzeNetlist(nl *netlist.Netlist, period float64) (*Analysis, error) {
	wl := nl.Lib.WireLoad("")
	tm, err := sta.Analyze(nl, wl, sta.Constraints{Period: period})
	if err != nil {
		return nil, err
	}
	a := &Analysis{
		Design:    nl.Name,
		Cells:     len(nl.Cells),
		Registers: nl.SeqCount(),
		Groups:    len(nl.GroupNames()),
	}

	// Fanout profile.
	for _, n := range nl.Nets {
		if n.IsClk || n.IsRst || n.Const {
			continue
		}
		if fo := len(n.Sinks); fo > a.MaxFanout {
			a.MaxFanout = fo
			a.FanoutSignal = n.Name
		}
	}

	// Stage balance over flop endpoints.
	var flopArrivals []float64
	for _, e := range tm.Endpoints() {
		if e.Cell != nil {
			flopArrivals = append(flopArrivals, e.Arrival)
		}
	}
	if len(flopArrivals) >= 4 {
		sort.Float64s(flopArrivals)
		med := flopArrivals[len(flopArrivals)/2]
		worst := flopArrivals[len(flopArrivals)-1]
		if med > 1e-9 {
			a.ImbalanceRatio = worst / med
		}
	}

	// Hierarchy overhead: inverter pairs split across groups.
	for _, c := range nl.Cells {
		if c.Ref.Kind != liberty.KindInv {
			continue
		}
		d := c.Inputs[0].Driver
		if d != nil && d.Ref.Kind == liberty.KindInv && d.Group != c.Group {
			a.BoundaryInvPairs++
		}
	}

	// Critical path shape.
	p := tm.CriticalPath()
	a.PathSteps = len(p.Steps)
	a.StartAtPI = !strings.Contains(p.Startpoint, "/CK")
	a.EndAtPO = !strings.HasSuffix(p.Endpoint, "/D")

	// Logic mix.
	s := nl.Summary()
	if s.Cells > 0 {
		a.XorFrac = float64(s.ByKind[liberty.KindXor2]+s.ByKind[liberty.KindXnor2]) / float64(s.Cells)
	}
	a.MulHeavy = s.ByKind[liberty.KindAnd2] > s.Cells/4 && s.ByKind[liberty.KindXor2] > s.Cells/8

	// Trait classification.
	if a.MaxFanout > fanoutThreshold {
		a.Traits = append(a.Traits, "high-fanout")
	}
	if a.ImbalanceRatio > imbalanceThreshold {
		a.Traits = append(a.Traits, "register-imbalance")
	}
	if a.BoundaryInvPairs > boundaryInvPairsTh {
		a.Traits = append(a.Traits, "hierarchy-overhead")
	}
	if a.StartAtPI && a.EndAtPO && a.PathSteps > serialStepsTh {
		a.Traits = append(a.Traits, "deep-serial-logic")
	}
	if a.XorFrac > 0.25 || a.MulHeavy {
		a.Traits = append(a.Traits, "wide-arithmetic")
	}
	if len(a.Traits) == 0 {
		a.Traits = append(a.Traits, "balanced")
	}
	return a, nil
}

// HasTrait reports whether the analysis detected the trait.
func (a *Analysis) HasTrait(t string) bool {
	for _, x := range a.Traits {
		if x == t {
			return true
		}
	}
	return false
}

// Render formats the analysis as the "Design characteristics" prompt
// section consumed by the generator LLM.
func (a *Analysis) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "design: %s (%d cells, %d registers, %d hierarchical blocks)\n",
		a.Design, a.Cells, a.Registers, a.Groups)
	for _, t := range a.Traits {
		switch t {
		case "high-fanout":
			fmt.Fprintf(&b, "trait: high-fanout; worst net fanout %d (signal %s)\n", a.MaxFanout, a.FanoutSignal)
		case "register-imbalance":
			fmt.Fprintf(&b, "trait: register-imbalance; stage depth ratio %.1f\n", a.ImbalanceRatio)
		case "hierarchy-overhead":
			fmt.Fprintf(&b, "trait: hierarchy-overhead; %d boundary inverter pairs across %d blocks\n",
				a.BoundaryInvPairs, a.Groups)
		case "deep-serial-logic":
			fmt.Fprintf(&b, "trait: deep-serial-logic; critical path %d stages from input to output pins\n", a.PathSteps)
		case "wide-arithmetic":
			fmt.Fprintf(&b, "trait: wide-arithmetic; xor fraction %.2f\n", a.XorFrac)
		case "balanced":
			b.WriteString("trait: balanced; no dominant structural bottleneck\n")
		}
	}
	return b.String()
}
