package circuitmentor

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/designs"
	"repro/internal/gnn"
	"repro/internal/graphdb"
	"repro/internal/liberty"
	"repro/internal/tensor"
)

func TestBuildGraphShape(t *testing.T) {
	d := designs.RiscV32i()
	dg, err := BuildGraph(d.Source, d.Top)
	if err != nil {
		t.Fatal(err)
	}
	if dg.Top != d.Top {
		t.Errorf("top = %s", dg.Top)
	}
	if len(dg.Modules) < 3 {
		t.Fatalf("modules = %d, want >= 3 (top + alu + dec)", len(dg.Modules))
	}
	if dg.G.NumModule != len(dg.Modules) {
		t.Error("graph module count mismatch")
	}
	for _, m := range dg.Modules {
		if m.Code == "" {
			t.Errorf("module %s missing source code", m.Name)
		}
		if m.Nodes == 0 {
			t.Errorf("module %s contributed no nodes", m.Name)
		}
	}
	if dg.ModuleIndex(d.Top) < 0 {
		t.Error("ModuleIndex failed for top")
	}
	if dg.ModuleIndex("nope") != -1 {
		t.Error("ModuleIndex should be -1 for unknown")
	}
	// Edges exist (dataflow connectivity).
	edges := 0
	for _, nbrs := range dg.G.Adj {
		edges += len(nbrs)
	}
	if edges == 0 {
		t.Error("graph has no edges")
	}
}

func TestEmbeddingsShape(t *testing.T) {
	m := New(17)
	d := designs.AES()
	dg, err := BuildGraph(d.Source, d.Top)
	if err != nil {
		t.Fatal(err)
	}
	embs := m.EmbedModules(dg)
	if len(embs) != len(dg.Modules) {
		t.Fatalf("embeddings = %d, modules = %d", len(embs), len(dg.Modules))
	}
	if len(embs[0]) != 16 {
		t.Errorf("embedding dim = %d, want 16", len(embs[0]))
	}
	g := m.EmbedGlobal(dg)
	if len(g) != 16 {
		t.Errorf("global dim = %d", len(g))
	}
}

// TestTrainingSeparatesCategories trains the mentor on database designs and
// checks that same-category modules become more similar than cross-category
// ones — the metric-learning objective of Fig. 4.
func TestTrainingSeparatesCategories(t *testing.T) {
	m := New(5)
	var samples []TrainSample
	for _, d := range designs.DatabaseDesigns() {
		dg, err := BuildGraph(d.Source, d.Top)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		labels := make([]string, len(dg.Modules))
		for i, mi := range dg.Modules {
			labels[i] = designs.ModuleCategory(mi.Name)
			if labels[i] == "" {
				labels[i] = d.Category
			}
		}
		samples = append(samples, TrainSample{DG: dg, Labels: labels})
	}
	quality := func() float64 {
		var embs [][]float64
		var labels []string
		for _, s := range samples {
			for i, e := range m.EmbedModules(s.DG) {
				embs = append(embs, e)
				labels = append(labels, s.Labels[i])
			}
		}
		var intra, inter float64
		var ni, nx int
		for i := range embs {
			for j := i + 1; j < len(embs); j++ {
				c := tensor.Cosine(embs[i], embs[j])
				if labels[i] == labels[j] {
					intra, ni = intra+c, ni+1
				} else {
					inter, nx = inter+c, nx+1
				}
			}
		}
		return intra/float64(ni) - inter/float64(nx)
	}
	before := quality()
	cfg := gnn.DefaultTrainConfig()
	cfg.LR = 0.02
	if _, err := m.Train(samples, 40, cfg); err != nil {
		t.Fatal(err)
	}
	after := quality()
	if after <= before {
		t.Errorf("metric learning did not improve separation: %.4f -> %.4f", before, after)
	}
}

func TestLoadIntoDB(t *testing.T) {
	db := graphdb.New()
	d := designs.RiscV32i()
	dg, err := BuildGraph(d.Source, d.Top)
	if err != nil {
		t.Fatal(err)
	}
	LoadIntoDB(db, dg, map[string]any{"category": d.Category})
	// Cypher: fetch module code by name — SynthRAG's graph-structure query.
	res, err := db.Query(`MATCH (m:Module {name: 'rv_alu', design: 'riscv32i'}) RETURN m.code`, nil)
	if err != nil {
		t.Fatal(err)
	}
	code, _ := res.Value().(string)
	if !strings.Contains(code, "module rv_alu") {
		t.Errorf("module code retrieval failed: %.60q", code)
	}
	// Hierarchy walk.
	res, err = db.Query(`MATCH (d:Design {name: 'riscv32i'})-[:CONTAINS]->(m:Module) RETURN count(m)`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.Value().(int64); n < 3 {
		t.Errorf("contains count = %d", n)
	}
	res, err = db.Query(`MATCH (t:Module {name: 'riscv32i'})-[:INSTANTIATES]->(s:Module) RETURN count(s)`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.Value().(int64); n < 2 {
		t.Errorf("instantiates count = %d", n)
	}
}

// TestAnalysisMatchesGroundTruth verifies the trait detector reproduces
// each benchmark's known structural traits.
func TestAnalysisMatchesGroundTruth(t *testing.T) {
	lib := liberty.Nangate45()
	expect := map[string]string{
		"dynamic_node": "high-fanout",
		"ethmac":       "deep-serial-logic",
		"jpeg":         "hierarchy-overhead",
		"tinyRocket":   "register-imbalance",
		"aes":          "wide-arithmetic",
	}
	for _, d := range designs.Benchmarks() {
		a, err := Analyze(d.Source, d.Top, d.Period, lib)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if want, ok := expect[d.Name]; ok && !a.HasTrait(want) {
			t.Errorf("%s: detected %v, want %s", d.Name, a.Traits, want)
		}
		r := a.Render()
		if !strings.Contains(r, "trait:") {
			t.Errorf("%s: render has no trait lines:\n%s", d.Name, r)
		}
	}
	// tinyRocket must NOT look fanout-bound, and dynamic_node's fanout must
	// dominate whatever else it shows.
	trA, _ := Analyze(designs.TinyRocket().Source, "tinyRocket", 2.85, lib)
	if trA.HasTrait("high-fanout") {
		t.Errorf("tinyRocket wrongly detected as high-fanout: %+v", trA)
	}
	dnA, _ := Analyze(designs.DynamicNode().Source, "dynamic_node", 3.20, lib)
	if !dnA.HasTrait("high-fanout") {
		t.Errorf("dynamic_node missing high-fanout: %+v", dnA)
	}
}

func TestBuildGraphErrors(t *testing.T) {
	if _, err := BuildGraph("module a(input x, output y); assign y = x; endmodule", "zz"); err == nil {
		t.Error("unknown top should fail")
	}
	if _, err := BuildGraph("not verilog at all", "a"); err == nil {
		t.Error("parse error should propagate")
	}
}

func TestSoCGraphLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := designs.RandomSoCConfig("lbl", rng)
	d := designs.SoC(cfg)
	dg, err := BuildGraph(d.Source, d.Top)
	if err != nil {
		t.Fatal(err)
	}
	labeled := 0
	for _, m := range dg.Modules {
		if designs.ModuleCategory(m.Name) != "" {
			labeled++
		}
	}
	if labeled == 0 {
		t.Error("SoC graph has no categorizable modules")
	}
}
