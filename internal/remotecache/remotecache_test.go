package remotecache

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/qorlog"
)

func testRecord(design string, area float64) qorlog.Record {
	return qorlog.Record{
		Design: design, Period: 1.5, WNS: -0.25, CPS: 1.75, TNS: -1.5,
		Area: area, Leakage: 0.125, Cells: 42, Seq: 7, Violations: 3,
	}
}

func testKey(s string) qorlog.Key { return qorlog.KeyOf(s) }

// --- lease table ---

func TestLeaseTableClaimHeldCompleteExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	lt := newLeaseTable(clock)

	st, id, ttl := lt.Claim("aa", "r1", time.Minute)
	if st != StatusGranted || id == "" || ttl != time.Minute {
		t.Fatalf("first claim = %v %q %v", st, id, ttl)
	}
	if st2, _, rem := lt.Claim("aa", "r2", time.Minute); st2 != StatusHeld || rem <= 0 {
		t.Fatalf("second claim = %v rem=%v, want held", st2, rem)
	}
	if !lt.Renew(id, time.Minute) {
		t.Fatal("renew of live lease failed")
	}
	if !lt.Complete(id) {
		t.Fatal("complete of live lease failed")
	}
	if lt.Complete(id) {
		t.Fatal("double complete reported true")
	}
	// Key is free again.
	if st3, _, _ := lt.Claim("aa", "r2", time.Minute); st3 != StatusGranted {
		t.Fatalf("claim after complete = %v, want granted", st3)
	}

	// Expiry: advance past the TTL; a new claimant takes over.
	now = now.Add(2 * time.Minute)
	if st4, id4, _ := lt.Claim("aa", "r3", time.Minute); st4 != StatusGranted || id4 == "" {
		t.Fatalf("claim after expiry = %v, want granted", st4)
	}
	if lt.stats().Expired != 1 {
		t.Fatalf("expired = %d, want 1", lt.stats().Expired)
	}

	// Sweep drops expired leases wholesale.
	lt.Claim("bb", "r1", time.Minute)
	lt.Claim("cc", "r1", time.Minute)
	now = now.Add(3 * time.Minute)
	if n := lt.Sweep(); n != 3 { // aa's r3 lease + bb + cc
		t.Fatalf("sweep dropped %d, want 3", n)
	}
	if lt.Active() != 0 {
		t.Fatalf("active after sweep = %d", lt.Active())
	}
}

func TestLeaseRenewExpired(t *testing.T) {
	now := time.Unix(1000, 0)
	lt := newLeaseTable(func() time.Time { return now })
	_, id, _ := lt.Claim("aa", "r1", time.Minute)
	now = now.Add(2 * time.Minute)
	if lt.Renew(id, time.Minute) {
		t.Fatal("renewing an expired lease succeeded")
	}
}

// --- blob store ---

func TestBlobStoreRoundTripAndEviction(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenBlobStore(dir, 100)
	if err != nil {
		t.Fatal(err)
	}
	put := func(key string, n int) {
		t.Helper()
		s.Put(key, bytes.Repeat([]byte{0xAB}, n))
	}
	put("aa", 40)
	put("bb", 40)
	if b, ok := s.Get("aa"); !ok || len(b) != 40 || b[0] != 0xAB {
		t.Fatalf("get aa = %v %v", b, ok)
	}
	// aa was just used; storing cc must evict bb (LRU).
	put("cc", 40)
	if _, ok := s.Get("bb"); ok {
		t.Fatal("bb survived eviction")
	}
	if _, ok := s.Get("aa"); !ok {
		t.Fatal("aa was evicted despite being recently used")
	}
	if st := s.Stats(); st.Evictions != 1 || st.Blobs != 2 || st.Bytes != 80 {
		t.Fatalf("stats = %+v", st)
	}

	// Oversized and invalid keys are dropped, not stored.
	put("dd", 200)
	if _, ok := s.Get("dd"); ok {
		t.Fatal("oversized blob stored")
	}
	s.Put("../evil", []byte("x"))
	if _, err := os.Stat(filepath.Join(dir, "..", "evil")); err == nil {
		t.Fatal("path traversal escaped the blob dir")
	}

	// Reopen rebuilds the index from disk; a stray file is ignored.
	os.WriteFile(filepath.Join(dir, "notakey.txt"), []byte("x"), 0o644)
	s2, err := OpenBlobStore(dir, 100)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 {
		t.Fatalf("reopened store has %d blobs, want 2", s2.Len())
	}
	if b, ok := s2.Get("cc"); !ok || len(b) != 40 {
		t.Fatal("cc lost across reopen")
	}
}

func TestBlobStoreNilSafe(t *testing.T) {
	var s *BlobStore
	s.Put("aa", []byte("x"))
	if _, ok := s.Get("aa"); ok {
		t.Fatal("nil store returned a blob")
	}
	if s.Len() != 0 || s.Bytes() != 0 {
		t.Fatal("nil store has contents")
	}
	_ = s.Stats()
}

// --- server + client ---

func newTestTier(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	blobs, err := OpenBlobStore(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ServerConfig{
		QoR:      qorlog.NewMemoryStore(0),
		Blobs:    blobs,
		LeaseTTL: time.Minute,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

func newTestClient(ts *httptest.Server, owner string) *Client {
	return NewClient(ClientConfig{
		BaseURL:      ts.URL,
		Owner:        owner,
		LeaseTTL:     500 * time.Millisecond,
		PollInterval: 5 * time.Millisecond,
		Timeout:      2 * time.Second,
		Warnf:        func(string, ...any) {},
	})
}

func TestQoRRoundTripOverHTTP(t *testing.T) {
	_, ts := newTestTier(t)
	c := newTestClient(ts, "r1")

	key := testKey("sample-1")
	rec := testRecord("riscv32i", 1234.5678)
	if _, ok := c.GetQoR(key); ok {
		t.Fatal("empty tier served a record")
	}
	c.PutQoR(key, rec)
	got, ok := c.GetQoR(key)
	if !ok {
		t.Fatal("put record not served")
	}
	if got != rec {
		// Exact struct equality: float64 bits must round-trip untouched.
		t.Fatalf("record round-trip mutated: %+v vs %+v", got, rec)
	}
	if c.Degraded() {
		t.Fatal("healthy exchange degraded the client")
	}
}

func TestCheckpointBlobRoundTripOverHTTP(t *testing.T) {
	_, ts := newTestTier(t)
	c := newTestClient(ts, "r1")

	rawKey := strings.Repeat("\x7f\x00", 16) // raw bytes, hex-encoded on the wire
	blob := bytes.Repeat([]byte{1, 2, 3}, 100)
	if _, ok := c.GetBlob(rawKey); ok {
		t.Fatal("empty tier served a blob")
	}
	c.PutBlob(rawKey, blob)
	got, ok := c.GetBlob(rawKey)
	if !ok || !bytes.Equal(got, blob) {
		t.Fatalf("blob round-trip failed: ok=%v len=%d", ok, len(got))
	}
}

func TestServerRejections(t *testing.T) {
	_, ts := newTestTier(t)
	hc := ts.Client()

	do := func(method, path, body string) int {
		t.Helper()
		req, _ := http.NewRequest(method, ts.URL+path, strings.NewReader(body))
		resp, err := hc.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	key := testKey("x").Hex()
	frame := string(qorlog.EncodeRecord(testKey("x"), testRecord("d", 1)))

	cases := []struct {
		name         string
		method, path string
		body         string
		want         int
	}{
		{"bad key chars", "GET", "/v1/qor/ZZZZ", "", http.StatusUnprocessableEntity},
		{"overlong key", "GET", "/v1/checkpoint/" + strings.Repeat("a", 200), "", http.StatusUnprocessableEntity},
		{"traversal key", "GET", "/v1/checkpoint/%2e%2e%2fetc", "", http.StatusUnprocessableEntity},
		{"qor miss", "GET", "/v1/qor/" + key, "", http.StatusNotFound},
		{"qor put not a frame", "PUT", "/v1/qor/" + key, "garbage", http.StatusBadRequest},
		{"qor put oversized", "PUT", "/v1/qor/" + key, strings.Repeat("x", 5000), http.StatusRequestEntityTooLarge},
		{"qor put key mismatch", "PUT", "/v1/qor/" + testKey("other").Hex(), frame, http.StatusUnprocessableEntity},
		{"qor put ok", "PUT", "/v1/qor/" + key, frame, http.StatusNoContent},
		{"lease not json", "POST", "/v1/leases", "nope", http.StatusBadRequest},
		{"lease unknown field", "POST", "/v1/leases", `{"key":"aa","owner":"r","ttl_ms":1,"x":2}`, http.StatusBadRequest},
		{"lease bad key", "POST", "/v1/leases", `{"key":"ZZ","owner":"r","ttl_ms":1}`, http.StatusUnprocessableEntity},
		{"lease no owner", "POST", "/v1/leases", `{"key":"aa","ttl_ms":1}`, http.StatusUnprocessableEntity},
		{"renew unknown lease", "POST", "/v1/leases/l999/renew", `{"ttl_ms":1}`, http.StatusGone},
		{"wrong method", "DELETE", "/v1/qor/" + key, "", http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := do(tc.method, tc.path, tc.body); got != tc.want {
				t.Fatalf("%s %s = %d, want %d", tc.method, tc.path, got, tc.want)
			}
		})
	}

	// The server stays healthy and exposes metrics after every rejection.
	resp, err := hc.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp, err)
	}
	resp.Body.Close()
	resp, err = hc.Get(ts.URL + "/metrics")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %v %v", resp, err)
	}
	buf := new(bytes.Buffer)
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, m := range []string{
		"remotecache_qor_puts_total 1",
		"remotecache_input_rejected_total",
		"remotecache_leases_active",
		"remotecache_checkpoint_puts_total",
	} {
		if !strings.Contains(buf.String(), m) {
			t.Errorf("metrics missing %q", m)
		}
	}
}

func TestAcquireLifecycle(t *testing.T) {
	_, ts := newTestTier(t)
	c1 := newTestClient(ts, "r1")
	c2 := newTestClient(ts, "r2")
	key := testKey("work-1")
	rec := testRecord("d", 99)

	// r1 wins the lease.
	got, ok, release := c1.Acquire(context.Background(), key)
	if ok {
		t.Fatalf("empty tier served a record: %+v", got)
	}

	// r2 contends while r1 works: it must block, then see r1's result.
	type outcome struct {
		rec qorlog.Record
		ok  bool
	}
	r2done := make(chan outcome, 1)
	go func() {
		rec2, ok2, rel2 := c2.Acquire(context.Background(), key)
		rel2()
		r2done <- outcome{rec2, ok2}
	}()

	time.Sleep(30 * time.Millisecond) // let r2 reach the held/poll state
	select {
	case o := <-r2done:
		t.Fatalf("r2 returned before r1 published: %+v", o)
	default:
	}

	c1.PutQoR(key, rec)
	release()

	o := <-r2done
	if !o.ok || o.rec != rec {
		t.Fatalf("r2 outcome = %+v, want r1's record", o)
	}
	if c2.Stats().LeaseWaits == 0 {
		t.Fatal("r2 never waited on the lease")
	}

	// A third acquire is answered done immediately.
	rec3, ok3, rel3 := c1.Acquire(context.Background(), key)
	rel3()
	if !ok3 || rec3 != rec {
		t.Fatalf("post-publish acquire = %+v %v", rec3, ok3)
	}
}

func TestAcquireTakesOverExpiredLease(t *testing.T) {
	blobs, _ := OpenBlobStore(t.TempDir(), 1<<20)
	srv := NewServer(ServerConfig{
		QoR:      qorlog.NewMemoryStore(0),
		Blobs:    blobs,
		LeaseTTL: 40 * time.Millisecond, // crashed holders expire fast
	})
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()

	crashed := NewClient(ClientConfig{
		BaseURL: ts.URL, Owner: "crashed", LeaseTTL: 40 * time.Millisecond,
		PollInterval: 5 * time.Millisecond, Warnf: func(string, ...any) {},
	})
	key := testKey("abandoned")
	if _, ok, _ := crashed.Acquire(context.Background(), key); ok {
		t.Fatal("empty tier served a record")
	}
	// The "crashed" replica never publishes or releases. A sibling must get
	// the lease once it expires, bounded by ~TTL, not forever.
	sib := NewClient(ClientConfig{
		BaseURL: ts.URL, Owner: "sib", LeaseTTL: 40 * time.Millisecond,
		PollInterval: 5 * time.Millisecond, Warnf: func(string, ...any) {},
	})
	start := time.Now()
	_, ok, release := sib.Acquire(context.Background(), key)
	release()
	if ok {
		t.Fatal("sibling got a record nobody published")
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("takeover waited %v, far beyond the lease TTL", waited)
	}
	if sib.Stats().LeasesGranted != 1 {
		t.Fatalf("sibling stats = %+v, want one granted lease", sib.Stats())
	}
}

func TestClientDegradesOnDeadServer(t *testing.T) {
	_, ts := newTestTier(t)
	warnings := 0
	c := NewClient(ClientConfig{
		BaseURL:      ts.URL,
		LeaseTTL:     100 * time.Millisecond,
		PollInterval: 5 * time.Millisecond,
		Timeout:      time.Second,
		Warnf:        func(string, ...any) { warnings++ },
	})
	key := testKey("k")
	c.PutQoR(key, testRecord("d", 1))
	if _, ok := c.GetQoR(key); !ok {
		t.Fatal("warm-up exchange failed")
	}

	ts.Close() // the tier dies mid-run

	for i := 0; i < 5; i++ {
		if _, ok := c.GetQoR(key); ok {
			t.Fatal("dead tier served a record")
		}
		c.PutQoR(key, testRecord("d", float64(i)))
		if rec, ok, rel := c.Acquire(context.Background(), key); ok {
			rel()
			t.Fatalf("dead tier granted a result: %+v", rec)
		}
		if _, ok := c.GetBlob("ab"); ok {
			t.Fatal("dead tier served a blob")
		}
		c.PutBlob("ab", []byte("x"))
	}
	if !c.Degraded() {
		t.Fatal("client never degraded")
	}
	if warnings != 1 {
		t.Fatalf("degradation warned %d times, want exactly 1", warnings)
	}
}

func TestTierReadThroughWriteBehind(t *testing.T) {
	srv, ts := newTestTier(t)
	key := testKey("t")
	rec := testRecord("d", 7)

	// Replica A publishes through its tier.
	a := NewTier(qorlog.NewMemoryStore(0), newTestClient(ts, "a"))
	defer a.Close()
	a.Put(key, rec)
	a.Flush()
	if srv.cfg.QoR.Len() != 1 {
		t.Fatalf("server holds %d records after flush, want 1", srv.cfg.QoR.Len())
	}

	// Replica B's local store is cold; the tier reads through and backfills.
	bLocal := qorlog.NewMemoryStore(0)
	b := NewTier(bLocal, newTestClient(ts, "b"))
	defer b.Close()
	got, ok := b.Get(key)
	if !ok || got != rec {
		t.Fatalf("read-through = %+v %v", got, ok)
	}
	if _, ok := bLocal.Get(key); !ok {
		t.Fatal("remote hit was not written back to the local store")
	}
	if b.Remote().Stats().QoRHits != 1 {
		t.Fatalf("client stats = %+v", b.Remote().Stats())
	}

	// Dead tier: the Tier degrades to local-only silently.
	ts.Close()
	key2 := testKey("t2")
	b.Put(key2, rec)
	b.Flush()
	if got, ok := b.Get(key2); !ok || got != rec {
		t.Fatal("local tier lost a record after remote death")
	}
}

func TestServerSweepsExpiredLeases(t *testing.T) {
	now := time.Unix(0, 0)
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	clock := func() time.Time { <-mu; defer func() { mu <- struct{}{} }(); return now }
	blobs, _ := OpenBlobStore(t.TempDir(), 1<<20)
	srv := NewServer(ServerConfig{
		QoR:      qorlog.NewMemoryStore(0),
		Blobs:    blobs,
		LeaseTTL: 20 * time.Millisecond,
		Now:      clock,
	})
	defer srv.Close()
	srv.leases.Claim(fmt.Sprintf("%064x", 1), "r", 20*time.Millisecond)
	if srv.leases.Active() != 1 {
		t.Fatal("claim did not register")
	}
	<-mu
	now = now.Add(time.Minute)
	mu <- struct{}{}
	deadline := time.Now().Add(2 * time.Second)
	for srv.leases.Active() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("background sweep never expired the lease")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
