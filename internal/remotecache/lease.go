package remotecache

import (
	"strconv"
	"sync"
	"time"
)

// The lease table extends per-process deduplication (singleflight inside one
// chatlsd) fleet-wide: before a replica synthesizes a sample it claims the
// sample's content key; siblings asking for the same key are told it is held
// and poll for the result instead of duplicating the work. Leases are
// time-bounded — a replica that crashes mid-synthesis simply lets its lease
// expire, and the next claimant takes over. Correctness never depends on the
// lease (results are content-addressed and idempotent to recompute); leases
// only save work, so every failure mode degrades to "compute it yourself".

// LeaseStatus is the outcome of a claim.
type LeaseStatus string

const (
	// StatusGranted: the caller now holds the lease and should do the work,
	// publish the result, then complete the lease.
	StatusGranted LeaseStatus = "granted"
	// StatusHeld: another replica is working on this key; poll for its result.
	StatusHeld LeaseStatus = "held"
	// StatusDone: the result already exists; fetch it, no work needed.
	StatusDone LeaseStatus = "done"
)

// lease is one active claim.
type lease struct {
	id      string
	key     string
	owner   string
	expires time.Time
}

// leaseTable is the server-side registry of active claims. Expiry is both
// lazy (an expired lease is replaced at the next claim of its key) and
// swept (the server runs Sweep periodically so the active gauge and the
// table's memory track reality even for keys nobody re-claims).
type leaseTable struct {
	mu    sync.Mutex
	byKey map[string]*lease
	byID  map[string]*lease
	seq   int64
	now   func() time.Time // injectable clock for expiry tests

	granted, held, expired, completed, renewed int64
}

func newLeaseTable(now func() time.Time) *leaseTable {
	if now == nil {
		now = time.Now
	}
	return &leaseTable{
		byKey: make(map[string]*lease),
		byID:  make(map[string]*lease),
		now:   now,
	}
}

// Claim asks for the lease on key. It returns StatusGranted with a fresh
// lease ID, or StatusHeld with the remaining TTL of the current holder's
// lease. (StatusDone is decided by the server before consulting the table,
// since the table does not know about results.)
func (t *leaseTable) Claim(key, owner string, ttl time.Duration) (LeaseStatus, string, time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	if l, ok := t.byKey[key]; ok {
		if now.Before(l.expires) {
			t.held++
			return StatusHeld, "", l.expires.Sub(now)
		}
		t.expired++
		t.drop(l)
	}
	t.seq++
	l := &lease{
		id:      "l" + strconv.FormatInt(t.seq, 10),
		key:     key,
		owner:   owner,
		expires: now.Add(ttl),
	}
	t.byKey[key] = l
	t.byID[l.id] = l
	t.granted++
	return StatusGranted, l.id, ttl
}

// Renew extends a held lease. False when the lease is unknown or already
// expired — the holder must treat that as having lost the lease.
func (t *leaseTable) Renew(id string, ttl time.Duration) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.byID[id]
	if !ok {
		return false
	}
	now := t.now()
	if !now.Before(l.expires) {
		t.expired++
		t.drop(l)
		return false
	}
	l.expires = now.Add(ttl)
	t.renewed++
	return true
}

// Complete releases a lease after its work is published. Idempotent: an
// unknown (already expired or completed) ID reports false but is not an
// error worth failing a request over.
func (t *leaseTable) Complete(id string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.byID[id]
	if !ok {
		return false
	}
	t.drop(l)
	t.completed++
	return true
}

// Sweep drops every expired lease and returns how many it dropped.
func (t *leaseTable) Sweep() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	n := 0
	for _, l := range t.byID {
		if !now.Before(l.expires) {
			t.drop(l)
			t.expired++
			n++
		}
	}
	return n
}

// Active returns the number of live leases.
func (t *leaseTable) Active() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.byID)
}

// leaseStats are the table's lifetime counters.
type leaseStats struct {
	Granted, Held, Expired, Completed, Renewed int64
	Active                                     int
}

func (t *leaseTable) stats() leaseStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return leaseStats{
		Granted: t.granted, Held: t.held, Expired: t.expired,
		Completed: t.completed, Renewed: t.renewed, Active: len(t.byID),
	}
}

// drop removes l from both indexes. Caller holds t.mu. The byKey entry is
// only removed when it still points at l (a later lease may have replaced
// an expired one under the same key).
func (t *leaseTable) drop(l *lease) {
	delete(t.byID, l.id)
	if cur, ok := t.byKey[l.key]; ok && cur == l {
		delete(t.byKey, l.key)
	}
}
