package remotecache

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/qorlog"
)

// Tier composes the local QoR store and the remote tier into the two-level
// result store replicas actually use: read-through (local first, then
// remote, with remote hits written back locally) and write-behind (local
// synchronously — it is the correctness tier — remote via a background
// publisher, so a slow or dying tier never sits on the synthesis path).
//
// Lease coordination (Acquire) passes through to the client; records a
// sibling computed land in the local store on the way out, so the rest of
// the request is served at local speed.
//
// Every method is nil-safe and total: with the remote side degraded or
// absent, a Tier behaves exactly like its local store.
type Tier struct {
	local  *qorlog.Store
	remote *Client

	queue  chan tierPut
	stop   chan struct{}
	done   chan struct{}
	closed atomic.Bool

	// pending counts queued-but-unpublished records. A plain WaitGroup
	// cannot express this: Put (Add) races Wait from concurrent lease
	// releases, and a WaitGroup panics when the counter bounces off zero
	// while a Wait is in flight — the chaos soak hits exactly that.
	mu      sync.Mutex
	pending int
	drained *sync.Cond
}

type tierPut struct {
	key qorlog.Key
	rec qorlog.Record
}

// publishQueueDepth bounds the write-behind queue. A full queue blocks Put
// briefly rather than dropping (a degraded client drains instantly, so the
// queue only backs up while the tier is alive but slow).
const publishQueueDepth = 256

// NewTier wires a two-level store. local is required; remote may be nil
// (the Tier is then a thin wrapper over local). Call Close when done to
// flush the publisher.
func NewTier(local *qorlog.Store, remote *Client) *Tier {
	t := &Tier{
		local:  local,
		remote: remote,
		queue:  make(chan tierPut, publishQueueDepth),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	t.drained = sync.NewCond(&t.mu)
	go t.publishLoop()
	return t
}

func (t *Tier) publishLoop() {
	defer close(t.done)
	for {
		select {
		case p := <-t.queue:
			t.remote.PutQoR(p.key, p.rec)
			t.finish()
		case <-t.stop:
			for {
				select {
				case p := <-t.queue:
					t.remote.PutQoR(p.key, p.rec)
					t.finish()
				default:
					return
				}
			}
		}
	}
}

// finish marks one queued publish attempted, waking drain waiters at zero.
func (t *Tier) finish() {
	t.mu.Lock()
	t.pending--
	if t.pending == 0 {
		t.drained.Broadcast()
	}
	t.mu.Unlock()
}

// drain blocks until no queued publish is outstanding. Unlike a WaitGroup
// it is safe against concurrent Puts re-raising the count: the waiter
// simply keeps waiting until a real zero.
func (t *Tier) drain() {
	t.mu.Lock()
	for t.pending > 0 {
		t.drained.Wait()
	}
	t.mu.Unlock()
}

// Get is the read-through lookup: local store first, then the remote tier.
// A remote hit is written back locally so the next lookup stays local.
func (t *Tier) Get(key qorlog.Key) (qorlog.Record, bool) {
	if t == nil {
		return qorlog.Record{}, false
	}
	if rec, ok := t.local.Get(key); ok {
		return rec, true
	}
	if rec, ok := t.remote.GetQoR(key); ok {
		t.local.Put(key, rec)
		return rec, true
	}
	return qorlog.Record{}, false
}

// Put stores locally now and publishes to the remote tier behind the
// caller's back.
func (t *Tier) Put(key qorlog.Key, rec qorlog.Record) {
	if t == nil {
		return
	}
	t.local.Put(key, rec)
	if t.remote == nil || t.remote.Degraded() || t.closed.Load() {
		return
	}
	t.mu.Lock()
	t.pending++
	t.mu.Unlock()
	select {
	case t.queue <- tierPut{key, rec}:
	case <-t.stop:
		t.finish()
	}
}

// Acquire claims fleet-wide ownership of key's work (see Client.Acquire).
// A record a sibling computed is written back to the local store. When the
// lease is granted, the returned release first drains the write-behind
// queue: the caller's Put must be visible on the server before the lease
// completes, or a waiting sibling could re-claim the key and recompute it
// (correct — results are idempotent — but the dedup guarantee would leak).
func (t *Tier) Acquire(ctx context.Context, key qorlog.Key) (qorlog.Record, bool, func()) {
	if t == nil || t.remote == nil {
		return qorlog.Record{}, false, func() {}
	}
	rec, ok, release := t.remote.Acquire(ctx, key)
	if ok {
		t.local.Put(key, rec)
		return rec, true, release
	}
	return rec, false, func() {
		t.drain()
		release()
	}
}

// Flush blocks until every queued publish has been attempted.
func (t *Tier) Flush() {
	if t == nil {
		return
	}
	t.drain()
}

// Close flushes and stops the publisher. Call after the last Put (the
// serving path closes the tier during shutdown, after request drain);
// late Puts still land locally and skip the remote tier. Idempotent.
func (t *Tier) Close() {
	if t == nil || !t.closed.CompareAndSwap(false, true) {
		return
	}
	t.drain()
	close(t.stop)
	<-t.done
}

// Local exposes the local store (metrics wiring).
func (t *Tier) Local() *qorlog.Store {
	if t == nil {
		return nil
	}
	return t.local
}

// Remote exposes the remote client (metrics wiring). May be nil.
func (t *Tier) Remote() *Client {
	if t == nil {
		return nil
	}
	return t.remote
}
