package remotecache

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/qorlog"
	"repro/internal/resilience"
)

// Client is a replica's view of the remote result tier. Its contract is the
// same one qorlog.Store established for disks: the tier is an optimization,
// never a dependency. Every method is total — a miss, a transport failure,
// an injected fault, or a server that vanished mid-run all produce "not
// found" / "not stored". A hard failure trips a circuit breaker into
// local-only mode with ONE warning, after which calls return immediately
// without touching the network; unlike the original sticky latch, the
// breaker goes half-open after a dwell and probes the tier, so a restarted
// server re-attaches automatically (logged once per recovery). Requests
// that classify as transient (resilience.IsRetryableNet) are retried a
// bounded number of times first; connection-refused — the signature of a
// dead tier — is not, so the breaker opens immediately when the server is
// gone.
//
// Safe for concurrent use; every method is nil-safe (a nil client is a
// permanently-missing tier).
type Client struct {
	base   string
	hc     *http.Client
	owner  string
	ttl    time.Duration
	poll   time.Duration
	inject *resilience.Injector
	warnf  func(format string, args ...any)

	breaker  *resilience.Breaker
	warnOnce sync.Once

	qorHits, qorMisses, qorPuts    atomic.Int64
	blobHits, blobMisses, blobPuts atomic.Int64
	granted, waited, dropped       atomic.Int64
}

// ClientConfig wires a Client.
type ClientConfig struct {
	// BaseURL locates the tier, e.g. "http://cache-host:9090". Required.
	BaseURL string
	// Owner identifies this replica in lease claims (default "chatls").
	Owner string
	// LeaseTTL is requested on every claim (default DefaultLeaseTTL; the
	// server clamps to its own bound).
	LeaseTTL time.Duration
	// PollInterval paces result polling while a sibling holds the lease
	// (default 50ms).
	PollInterval time.Duration
	// Timeout bounds each HTTP request (default 5s).
	Timeout time.Duration
	// Inject, when non-nil, injects faults at the client boundary under the
	// resilience.CompRemoteCache component (fault-injection suite only).
	Inject *resilience.Injector
	// Warnf sinks the single degradation warning and the per-recovery
	// re-attach notice (default log.Printf).
	Warnf func(format string, args ...any)
	// Breaker tunes the tier circuit breaker. Zero-valued fields get the
	// client defaults: one hard failure opens (a dead tier should not eat
	// further requests), DefaultBreakerOpenFor dwell, one probe.
	Breaker resilience.BreakerConfig
}

// DefaultBreakerOpenFor is how long the client stays local-only after the
// tier fails before probing it again.
const DefaultBreakerOpenFor = 2 * time.Second

// requestAttempts bounds retries of one request while the failure stays
// transient (resilience.IsRetryableNet).
const requestAttempts = 3

// NewClient builds a client for the tier at cfg.BaseURL.
func NewClient(cfg ClientConfig) *Client {
	if cfg.Owner == "" {
		cfg.Owner = "chatls"
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 50 * time.Millisecond
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}
	if cfg.Warnf == nil {
		cfg.Warnf = log.Printf
	}
	if cfg.Breaker.Failures <= 0 {
		cfg.Breaker.Failures = 1
	}
	if cfg.Breaker.OpenFor <= 0 {
		cfg.Breaker.OpenFor = DefaultBreakerOpenFor
	}
	c := &Client{
		base:   cfg.BaseURL,
		hc:     &http.Client{Timeout: cfg.Timeout},
		owner:  cfg.Owner,
		ttl:    cfg.LeaseTTL,
		poll:   cfg.PollInterval,
		inject: cfg.Inject,
		warnf:  cfg.Warnf,
	}
	cfg.Breaker.OnClose = func() {
		c.warnf("remotecache: tier reachable again, re-attaching " +
			"(fleet-wide dedup and sharing restored)")
	}
	c.breaker = resilience.NewBreaker(cfg.Breaker)
	return c
}

// Degraded reports whether the tier is currently abandoned (breaker open).
// Unlike the original sticky latch this clears again once a half-open
// probe reaches a recovered server.
func (c *Client) Degraded() bool {
	return c != nil && c.breaker.State() == resilience.BreakerOpen
}

// BreakerState exposes the tier breaker position for healthz/metrics.
func (c *Client) BreakerState() resilience.BreakerState {
	if c == nil {
		return resilience.BreakerClosed
	}
	return c.breaker.State()
}

// allow asks the breaker for admission; an open breaker makes every call
// an immediate miss.
func (c *Client) allow() bool { return c.breaker.Allow() }

// ok reports a reachable tier to the breaker (any HTTP exchange that
// completed, hit or miss, proves the tier is alive).
func (c *Client) ok() { c.breaker.Success() }

// fail reports a hard transport failure: the breaker trips and the first
// open in the process lifetime logs the single degradation warning.
func (c *Client) fail(err error) {
	c.breaker.Failure()
	if c.breaker.State() == resilience.BreakerOpen {
		c.warnOnce.Do(func() {
			c.warnf("remotecache: tier unreachable, degrading to local-only mode "+
				"(results stay correct; fleet-wide dedup and sharing are off): %v", err)
		})
	}
}

// do runs one request with bounded retry on transient network failures.
// mkReq rebuilds the request each attempt (bodies are not rewindable).
// A non-nil error means the tier is unusable and the caller must degrade.
func (c *Client) do(ctx context.Context, mkReq func() (*http.Request, error)) (*http.Response, error) {
	if err := c.inject.Fire(ctx, resilience.CompRemoteCache); err != nil {
		return nil, err
	}
	var resp *http.Response
	_, err := resilience.RetryBounded(requestAttempts, resilience.IsRetryableNet, func() error {
		req, err := mkReq()
		if err != nil {
			return err
		}
		resp, err = c.hc.Do(req.WithContext(ctx)) //nolint:bodyclose — callers close
		return err
	})
	return resp, err
}

// drain releases a response so the connection is reused.
func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
}

// GetQoR fetches the record for key. Misses and failures are both "no".
func (c *Client) GetQoR(key qorlog.Key) (qorlog.Record, bool) {
	if c == nil || !c.allow() {
		return qorlog.Record{}, false
	}
	url := c.base + "/v1/qor/" + key.Hex()
	resp, err := c.do(context.Background(), func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, url, nil)
	})
	if err != nil {
		c.fail(err)
		return qorlog.Record{}, false
	}
	c.ok()
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		c.qorMisses.Add(1)
		return qorlog.Record{}, false
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if err != nil {
		c.qorMisses.Add(1)
		return qorlog.Record{}, false
	}
	k, rec, ok := qorlog.DecodeRecord(body)
	if !ok || k != key {
		// A tier serving frames that do not decode — or decode to a
		// different content address — is not trusted for this key.
		c.qorMisses.Add(1)
		return qorlog.Record{}, false
	}
	c.qorHits.Add(1)
	return rec, true
}

// PutQoR publishes a record. Failures drop the record (the local tier still
// has it).
func (c *Client) PutQoR(key qorlog.Key, rec qorlog.Record) {
	if c == nil || !c.allow() {
		return
	}
	frame := qorlog.EncodeRecord(key, rec)
	url := c.base + "/v1/qor/" + key.Hex()
	resp, err := c.do(context.Background(), func() (*http.Request, error) {
		return http.NewRequest(http.MethodPut, url, bytes.NewReader(frame))
	})
	if err != nil {
		c.fail(err)
		c.dropped.Add(1)
		return
	}
	c.ok()
	drain(resp)
	if resp.StatusCode != http.StatusNoContent {
		c.dropped.Add(1)
		return
	}
	c.qorPuts.Add(1)
}

// GetBlob fetches a checkpoint blob. The key is the raw content hash
// (synth's checkpointKey bytes); it travels hex-encoded. Implements
// synth.BlobCache.
func (c *Client) GetBlob(key string) ([]byte, bool) {
	if c == nil || !c.allow() {
		return nil, false
	}
	url := c.base + "/v1/checkpoint/" + hex.EncodeToString([]byte(key))
	resp, err := c.do(context.Background(), func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, url, nil)
	})
	if err != nil {
		c.fail(err)
		return nil, false
	}
	c.ok()
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		c.blobMisses.Add(1)
		return nil, false
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		c.blobMisses.Add(1)
		return nil, false
	}
	c.blobHits.Add(1)
	return body, true
}

// PutBlob publishes a checkpoint blob. Implements synth.BlobCache.
func (c *Client) PutBlob(key string, blob []byte) {
	if c == nil || !c.allow() {
		return
	}
	url := c.base + "/v1/checkpoint/" + hex.EncodeToString([]byte(key))
	resp, err := c.do(context.Background(), func() (*http.Request, error) {
		return http.NewRequest(http.MethodPut, url, bytes.NewReader(blob))
	})
	if err != nil {
		c.fail(err)
		c.dropped.Add(1)
		return
	}
	c.ok()
	drain(resp)
	if resp.StatusCode != http.StatusNoContent {
		c.dropped.Add(1)
		return
	}
	c.blobPuts.Add(1)
}

// Acquire coordinates one unit of content-addressed work fleet-wide:
//
//   - the result already exists somewhere -> (record, true, noop): use it;
//   - this replica wins the lease -> (zero, false, release): compute,
//     publish with PutQoR, then call release;
//   - a sibling holds the lease -> poll for its result until the lease
//     expires, then re-claim.
//
// Any failure — tier down, context cancelled, protocol confusion — returns
// (zero, false, noop): the caller computes locally, which is always
// correct. release is never nil and is safe to call exactly once after the
// result is published (deferred by the eval path).
func (c *Client) Acquire(ctx context.Context, key qorlog.Key) (qorlog.Record, bool, func()) {
	noop := func() {}
	if c == nil || !c.allow() {
		return qorlog.Record{}, false, noop
	}
	waited := false
	for {
		resp, err := c.claim(ctx, key)
		if err != nil {
			if ctx.Err() == nil {
				c.fail(err)
			} else {
				// Our own cancellation, not the tier's fault — return the
				// admission slot without a verdict so a half-open probe is
				// not burned on it.
				c.breaker.Drop()
			}
			return qorlog.Record{}, false, noop
		}
		c.ok()
		switch resp.Status {
		case StatusDone:
			if rec, ok := c.GetQoR(key); ok {
				return rec, true, noop
			}
			// The server said done but the record did not materialize
			// (evicted between answers, or the tier degraded mid-exchange).
			// Computing locally is always safe.
			return qorlog.Record{}, false, noop

		case StatusGranted:
			c.granted.Add(1)
			id := resp.Lease
			return qorlog.Record{}, false, func() { c.complete(ctx, id) }

		case StatusHeld:
			// Poll by re-claiming: the claim answer distinguishes every
			// outcome we care about — the holder published (done), is still
			// working (held), or vanished or finished without a result
			// (granted: the lease expired or was completed empty, and now
			// it's ours). Polling GetQoR instead would stall a full TTL
			// when the holder's script fails and nothing is ever published.
			if !waited {
				c.waited.Add(1)
				waited = true
			}
			select {
			case <-ctx.Done():
				return qorlog.Record{}, false, noop
			case <-time.After(c.poll):
			}

		default:
			return qorlog.Record{}, false, noop
		}
	}
}

// claim POSTs one lease claim.
func (c *Client) claim(ctx context.Context, key qorlog.Key) (*leaseClaimResponse, error) {
	body, _ := json.Marshal(leaseClaimRequest{
		Key:   key.Hex(),
		Owner: c.owner,
		TTLms: c.ttl.Milliseconds(),
	})
	resp, err := c.do(ctx, func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPost, c.base+"/v1/leases", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	})
	if err != nil {
		return nil, err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("claim: unexpected status %d", resp.StatusCode)
	}
	var out leaseClaimResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&out); err != nil {
		return nil, fmt.Errorf("claim: bad response: %v", err)
	}
	return &out, nil
}

// complete releases a lease, best-effort: the result is already published,
// and an unreleased lease merely expires.
func (c *Client) complete(ctx context.Context, id string) {
	if !c.allow() {
		return
	}
	resp, err := c.do(ctx, func() (*http.Request, error) {
		return http.NewRequest(http.MethodPost, c.base+"/v1/leases/"+id+"/complete", nil)
	})
	if err != nil {
		if ctx.Err() == nil {
			c.fail(err)
		} else {
			c.breaker.Drop()
		}
		return
	}
	c.ok()
	drain(resp)
}

// ClientStats are the client's lifetime counters, exposed by replicas as
// remotecache_client_* metrics.
type ClientStats struct {
	QoRHits, QoRMisses, QoRPuts    int64
	BlobHits, BlobMisses, BlobPuts int64
	LeasesGranted, LeaseWaits      int64
	Dropped                        int64
	Degraded                       bool
}

// Stats returns the current counters. Nil-safe.
func (c *Client) Stats() ClientStats {
	if c == nil {
		return ClientStats{}
	}
	return ClientStats{
		QoRHits: c.qorHits.Load(), QoRMisses: c.qorMisses.Load(), QoRPuts: c.qorPuts.Load(),
		BlobHits: c.blobHits.Load(), BlobMisses: c.blobMisses.Load(), BlobPuts: c.blobPuts.Load(),
		LeasesGranted: c.granted.Load(), LeaseWaits: c.waited.Load(),
		Dropped:  c.dropped.Load(),
		Degraded: c.Degraded(),
	}
}
