package remotecache

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/inputlimits"
	"repro/internal/metrics"
	"repro/internal/qorlog"
)

// Server is the shared result tier chatlsd replicas talk to: a pure-stdlib
// HTTP service exposing content-addressed QoR records, content-addressed
// checkpoint blobs, and the lease scheduler. State lives in the same stores
// the single-process path already trusts — a qorlog.Store for records (so
// the tier inherits its durable log, warm restarts, and degradation rules)
// and a BlobStore for checkpoints.
//
// Routes (keys are lowercase-hex content hashes):
//
//	GET  /v1/qor/{key}                200 binary record | 404
//	PUT  /v1/qor/{key}                204 | 400 | 413 | 422 (key mismatch)
//	GET  /v1/checkpoint/{key}         200 blob | 404
//	PUT  /v1/checkpoint/{key}         204 | 413 | 422 (bad key)
//	POST /v1/leases                   200 {status,lease,ttl_ms}
//	POST /v1/leases/{id}/renew        200 | 410 (lost)
//	POST /v1/leases/{id}/complete     200 (idempotent)
//	GET  /healthz                     200 {status,...}
//	GET  /metrics                     Prometheus text
//
// QoR bodies are the qorlog binary record frame (EncodeRecord), not JSON:
// float64 QoR fields round-trip bit-exactly, which the byte-identical
// replica guarantee depends on.
type Server struct {
	cfg    ServerConfig
	leases *leaseTable
	reg    *metrics.Registry

	qorHits, qorMisses, qorPuts   *metrics.Counter
	requests, rejected, leaseDone *metrics.Counter
	stopSweep                     chan struct{}
	sweepDone                     sync.WaitGroup
}

// ServerConfig wires a Server.
type ServerConfig struct {
	// QoR holds the records. Required (a memory-only store is fine).
	QoR *qorlog.Store
	// Blobs holds checkpoint blobs. Nil disables the checkpoint routes
	// (404 on GET, dropped PUTs) without disabling the tier.
	Blobs *BlobStore
	// LeaseTTL bounds every granted or renewed lease (default
	// DefaultLeaseTTL). Clients may ask for less, never more.
	LeaseTTL time.Duration
	// MaxRecordBytes caps PUT /v1/qor bodies (default 4096).
	MaxRecordBytes int64
	// MaxBlobBytes caps PUT /v1/checkpoint bodies (default 64 MiB).
	MaxBlobBytes int64
	// Now is the clock (default time.Now; expiry tests inject).
	Now func() time.Time
}

// DefaultLeaseTTL bounds how long a crashed replica can block siblings from
// taking over one sample's synthesis: generous against a slow compile,
// small against a fleet's patience.
const DefaultLeaseTTL = 2 * time.Minute

// NewServer builds the service and starts the background lease-expiry
// sweep. Call Close to stop it.
func NewServer(cfg ServerConfig) *Server {
	if cfg.QoR == nil {
		cfg.QoR = qorlog.NewMemoryStore(0)
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.MaxRecordBytes <= 0 {
		cfg.MaxRecordBytes = 4096
	}
	if cfg.MaxBlobBytes <= 0 {
		cfg.MaxBlobBytes = 64 << 20
	}
	s := &Server{
		cfg:       cfg,
		leases:    newLeaseTable(cfg.Now),
		reg:       metrics.NewRegistry(),
		stopSweep: make(chan struct{}),
	}
	s.qorHits = s.reg.NewCounter("remotecache_qor_hits_total", "QoR record GETs served")
	s.qorMisses = s.reg.NewCounter("remotecache_qor_misses_total", "QoR record GETs missed")
	s.qorPuts = s.reg.NewCounter("remotecache_qor_puts_total", "QoR records stored")
	s.requests = s.reg.NewCounter("remotecache_http_requests_total", "HTTP requests handled")
	s.rejected = s.reg.NewCounter("remotecache_input_rejected_total", "requests rejected at the trust boundary")
	s.leaseDone = s.reg.NewCounter("remotecache_lease_done_total", "claims answered with an existing result")
	s.reg.NewGaugeFunc("remotecache_leases_active", "live leases", func() int64 {
		return int64(s.leases.stats().Active)
	})
	s.reg.NewCounterFunc("remotecache_lease_granted_total", "leases granted", func() int64 {
		return s.leases.stats().Granted
	})
	s.reg.NewCounterFunc("remotecache_lease_held_total", "claims answered held", func() int64 {
		return s.leases.stats().Held
	})
	s.reg.NewCounterFunc("remotecache_lease_expired_total", "leases expired", func() int64 {
		return s.leases.stats().Expired
	})
	s.reg.NewCounterFunc("remotecache_lease_completed_total", "leases completed", func() int64 {
		return s.leases.stats().Completed
	})
	s.reg.NewGaugeFunc("remotecache_qor_records", "live QoR records", func() int64 {
		return int64(s.cfg.QoR.Len())
	})
	if cfg.Blobs != nil {
		s.reg.NewCounterFunc("remotecache_checkpoint_hits_total", "checkpoint GETs served", func() int64 {
			return cfg.Blobs.Stats().Hits
		})
		s.reg.NewCounterFunc("remotecache_checkpoint_misses_total", "checkpoint GETs missed", func() int64 {
			return cfg.Blobs.Stats().Misses
		})
		s.reg.NewCounterFunc("remotecache_checkpoint_puts_total", "checkpoint blobs stored", func() int64 {
			return cfg.Blobs.Stats().Puts
		})
		s.reg.NewGaugeFunc("remotecache_checkpoint_bytes", "checkpoint bytes stored", func() int64 {
			return cfg.Blobs.Bytes()
		})
	}

	s.sweepDone.Add(1)
	go s.sweepLoop()
	return s
}

// Close stops the lease sweeper. The handler itself keeps working (the
// embedding process decides when to stop serving).
func (s *Server) Close() {
	close(s.stopSweep)
	s.sweepDone.Wait()
}

// sweepLoop expires abandoned leases in the background so the active gauge
// and table memory track reality even for keys nobody re-claims.
func (s *Server) sweepLoop() {
	defer s.sweepDone.Done()
	t := time.NewTicker(s.cfg.LeaseTTL / 2)
	defer t.Stop()
	for {
		select {
		case <-s.stopSweep:
			return
		case <-t.C:
			s.leases.Sweep()
		}
	}
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/qor/{key}", s.handleQoRGet)
	mux.HandleFunc("PUT /v1/qor/{key}", s.handleQoRPut)
	mux.HandleFunc("GET /v1/checkpoint/{key}", s.handleCheckpointGet)
	mux.HandleFunc("PUT /v1/checkpoint/{key}", s.handleCheckpointPut)
	mux.HandleFunc("POST /v1/leases", s.handleLeaseClaim)
	mux.HandleFunc("POST /v1/leases/{id}/renew", s.handleLeaseRenew)
	mux.HandleFunc("POST /v1/leases/{id}/complete", s.handleLeaseComplete)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Inc()
		mux.ServeHTTP(w, r)
	})
}

// jsonError writes the uniform rejection body.
func (s *Server) jsonError(w http.ResponseWriter, code int, format string, args ...any) {
	s.rejected.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// pathKey extracts and validates the {key} wildcard: lowercase hex, sane
// length — the only shape content hashes take.
func (s *Server) pathKey(w http.ResponseWriter, r *http.Request) (string, bool) {
	key := r.PathValue("key")
	if !validKey(key) {
		s.jsonError(w, http.StatusUnprocessableEntity, "invalid key %q", key)
		return "", false
	}
	return key, true
}

func (s *Server) handleQoRGet(w http.ResponseWriter, r *http.Request) {
	key, ok := s.pathKey(w, r)
	if !ok {
		return
	}
	k, ok := qorlog.KeyFromHex(key)
	if !ok {
		s.jsonError(w, http.StatusUnprocessableEntity, "key %q is not a record hash", key)
		return
	}
	rec, ok := s.cfg.QoR.Get(k)
	if !ok {
		s.qorMisses.Inc()
		s.jsonError(w, http.StatusNotFound, "no record for %s", key)
		return
	}
	s.qorHits.Inc()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(qorlog.EncodeRecord(k, rec))
}

func (s *Server) handleQoRPut(w http.ResponseWriter, r *http.Request) {
	key, ok := s.pathKey(w, r)
	if !ok {
		return
	}
	k, ok := qorlog.KeyFromHex(key)
	if !ok {
		s.jsonError(w, http.StatusUnprocessableEntity, "key %q is not a record hash", key)
		return
	}
	body, code, err := inputlimits.ReadRawBody(w, r, s.cfg.MaxRecordBytes)
	if err != nil {
		s.jsonError(w, code, "%v", err)
		return
	}
	bk, rec, ok := qorlog.DecodeRecord(body)
	if !ok {
		s.jsonError(w, http.StatusBadRequest, "body is not a record frame")
		return
	}
	if bk != k {
		// The record is content-addressed; a body that disagrees with its
		// address is corruption or confusion, never something to store.
		s.jsonError(w, http.StatusUnprocessableEntity, "record key does not match path key")
		return
	}
	s.cfg.QoR.Put(k, rec)
	s.qorPuts.Inc()
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleCheckpointGet(w http.ResponseWriter, r *http.Request) {
	key, ok := s.pathKey(w, r)
	if !ok {
		return
	}
	if s.cfg.Blobs == nil {
		s.jsonError(w, http.StatusNotFound, "checkpoint store disabled")
		return
	}
	blob, ok := s.cfg.Blobs.Get(key)
	if !ok {
		s.jsonError(w, http.StatusNotFound, "no checkpoint for %s", key)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(blob)
}

func (s *Server) handleCheckpointPut(w http.ResponseWriter, r *http.Request) {
	key, ok := s.pathKey(w, r)
	if !ok {
		return
	}
	body, code, err := inputlimits.ReadRawBody(w, r, s.cfg.MaxBlobBytes)
	if err != nil {
		s.jsonError(w, code, "%v", err)
		return
	}
	if s.cfg.Blobs != nil {
		s.cfg.Blobs.Put(key, body)
	}
	w.WriteHeader(http.StatusNoContent)
}

// Lease wire shapes. TTLs travel as integer milliseconds.
type leaseClaimRequest struct {
	Key   string `json:"key"`
	Owner string `json:"owner"`
	TTLms int64  `json:"ttl_ms"`
}

type leaseClaimResponse struct {
	Status LeaseStatus `json:"status"`
	Lease  string      `json:"lease,omitempty"`
	TTLms  int64       `json:"ttl_ms"`
}

type leaseRenewRequest struct {
	TTLms int64 `json:"ttl_ms"`
}

// clampTTL bounds a requested TTL to (0, cfg.LeaseTTL].
func (s *Server) clampTTL(ms int64) time.Duration {
	ttl := time.Duration(ms) * time.Millisecond
	if ttl <= 0 || ttl > s.cfg.LeaseTTL {
		return s.cfg.LeaseTTL
	}
	return ttl
}

func (s *Server) handleLeaseClaim(w http.ResponseWriter, r *http.Request) {
	var req leaseClaimRequest
	if code, err := inputlimits.DecodeJSONRequest(w, r, 4096, &req); err != nil {
		s.jsonError(w, code, "%v", err)
		return
	}
	if !validKey(req.Key) {
		s.jsonError(w, http.StatusUnprocessableEntity, "invalid key %q", req.Key)
		return
	}
	if req.Owner == "" || len(req.Owner) > 256 {
		s.jsonError(w, http.StatusUnprocessableEntity, "invalid owner")
		return
	}
	resp := leaseClaimResponse{}
	// A result that already exists makes the lease moot — answer done
	// before touching the table so completed work never queues claimants.
	if k, ok := qorlog.KeyFromHex(req.Key); ok {
		if _, ok := s.cfg.QoR.Get(k); ok {
			s.leaseDone.Inc()
			resp.Status = StatusDone
			writeJSON(w, resp)
			return
		}
	}
	status, id, ttl := s.leases.Claim(req.Key, req.Owner, s.clampTTL(req.TTLms))
	resp.Status = status
	resp.Lease = id
	resp.TTLms = ttl.Milliseconds()
	writeJSON(w, resp)
}

func (s *Server) handleLeaseRenew(w http.ResponseWriter, r *http.Request) {
	var req leaseRenewRequest
	if code, err := inputlimits.DecodeJSONRequest(w, r, 1024, &req); err != nil {
		s.jsonError(w, code, "%v", err)
		return
	}
	if !s.leases.Renew(r.PathValue("id"), s.clampTTL(req.TTLms)) {
		s.jsonError(w, http.StatusGone, "lease %q expired or unknown", r.PathValue("id"))
		return
	}
	writeJSON(w, map[string]string{"status": "renewed"})
}

func (s *Server) handleLeaseComplete(w http.ResponseWriter, r *http.Request) {
	// Idempotent: completing an expired or unknown lease succeeds — the
	// work's result is published either way, and the claimant must not fail
	// its request over lease bookkeeping.
	s.leases.Complete(r.PathValue("id"))
	writeJSON(w, map[string]string{"status": "completed"})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.leases.stats()
	writeJSON(w, map[string]any{
		"status":        "ok",
		"qor_records":   s.cfg.QoR.Len(),
		"checkpoints":   s.cfg.Blobs.Len(),
		"active_leases": st.Active,
		"lease_ttl_ms":  s.cfg.LeaseTTL.Milliseconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.reg.WriteText(w)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
