package remotecache

import (
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/qorlog"
	"repro/internal/resilience"
)

// TestClientReattachesAfterTierRestart is the fix for the sticky local-only
// latch: a client whose tier died must re-attach automatically once the
// server comes back on the same address, with the single degradation
// warning plus one re-attach notice.
func TestClientReattachesAfterTierRestart(t *testing.T) {
	blobs, err := OpenBlobStore(t.TempDir(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ServerConfig{QoR: qorlog.NewMemoryStore(0), Blobs: blobs, LeaseTTL: time.Minute})
	defer srv.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)

	var mu sync.Mutex
	var warnings []string
	c := NewClient(ClientConfig{
		BaseURL: "http://" + addr,
		Timeout: time.Second,
		Warnf: func(format string, args ...any) {
			mu.Lock()
			warnings = append(warnings, format)
			mu.Unlock()
		},
		Breaker: resilience.BreakerConfig{OpenFor: 30 * time.Millisecond},
	})

	key := testKey("reattach")
	rec := testRecord("d", 3)
	c.PutQoR(key, rec)
	if _, ok := c.GetQoR(key); !ok {
		t.Fatal("warm-up exchange failed")
	}

	// Tier dies: the client degrades to local-only with one warning.
	hs.Close()
	if _, ok := c.GetQoR(key); ok {
		t.Fatal("dead tier served a record")
	}
	if !c.Degraded() {
		t.Fatal("client should be degraded after the tier died")
	}
	if c.BreakerState() != resilience.BreakerOpen {
		t.Fatalf("breaker state = %v, want open", c.BreakerState())
	}

	// Tier restarts on the same address; server-side state survived.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	hs2 := &http.Server{Handler: srv.Handler()}
	go hs2.Serve(ln2)
	defer hs2.Close()

	// After the open dwell, a probe reaches the recovered tier and the
	// breaker closes: the old record is visible again.
	deadline := time.Now().Add(5 * time.Second)
	reattached := false
	for time.Now().Before(deadline) {
		if got, ok := c.GetQoR(key); ok {
			if got != rec {
				t.Fatalf("reattached record = %+v, want %+v", got, rec)
			}
			reattached = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !reattached {
		t.Fatal("client never re-attached to the restarted tier")
	}
	if c.Degraded() || c.BreakerState() != resilience.BreakerClosed {
		t.Fatalf("degraded=%v state=%v after recovery, want attached/closed",
			c.Degraded(), c.BreakerState())
	}
	// New work flows to the tier again.
	key2 := testKey("post-recovery")
	c.PutQoR(key2, testRecord("d", 4))
	if _, ok := c.GetQoR(key2); !ok {
		t.Fatal("post-recovery put/get failed")
	}

	mu.Lock()
	defer mu.Unlock()
	var degradeWarns, reattachWarns int
	for _, w := range warnings {
		switch {
		case strings.Contains(w, "degrading to local-only"):
			degradeWarns++
		case strings.Contains(w, "re-attaching"):
			reattachWarns++
		}
	}
	if degradeWarns != 1 {
		t.Fatalf("degradation warned %d times, want exactly 1", degradeWarns)
	}
	if reattachWarns != 1 {
		t.Fatalf("re-attach logged %d times, want exactly 1", reattachWarns)
	}
}
