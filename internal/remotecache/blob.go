package remotecache

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// BlobStore is the server's checkpoint side: a size-bounded, disk-backed,
// content-addressed blob store. Blobs are written to flat files named by
// their (hex) key via the tmp+rename idiom, so a crash mid-write never
// leaves a torn blob under a live name — on reopen the store sees either
// the old bytes, the new bytes, or nothing. Total bytes are bounded with
// LRU eviction; the mtime order of surviving files rebuilds the recency
// order across restarts (coarse, but eviction is an optimization, not a
// correctness property — an evicted checkpoint is simply recomputed).
//
// Safe for concurrent use; every method is nil-safe (a nil store holds
// nothing). Like every tier of the result system, it
// degrades instead of failing: a blob that cannot be written is dropped
// (the client recomputes), a blob that cannot be read back is a miss.
type BlobStore struct {
	mu       sync.Mutex
	dir      string
	capBytes int64
	curBytes int64
	order    *list.List               // front = least recently used
	entries  map[string]*list.Element // key -> element whose Value is *blobEntry

	hits, misses, puts, evictions, dropped int64
}

type blobEntry struct {
	key  string
	size int64
}

// DefaultBlobCapBytes bounds the checkpoint store when the caller passes a
// non-positive capacity: enough for hundreds of corpus-sized post-link
// snapshots, small enough to stay a cache rather than an archive.
const DefaultBlobCapBytes = 256 << 20

// OpenBlobStore opens (creating if needed) a blob store rooted at dir
// holding at most capBytes of blobs (<= 0 selects DefaultBlobCapBytes).
// Unrecognized files in dir are ignored; recognized ones seed the store in
// mtime order, oldest first, and anything over the cap is evicted
// immediately.
func OpenBlobStore(dir string, capBytes int64) (*BlobStore, error) {
	if capBytes <= 0 {
		capBytes = DefaultBlobCapBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("remotecache: blob dir: %w", err)
	}
	s := &BlobStore{
		dir:      dir,
		capBytes: capBytes,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
	}
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("remotecache: blob dir: %w", err)
	}
	type seed struct {
		key   string
		size  int64
		mtime int64
	}
	var seeds []seed
	for _, de := range des {
		if de.IsDir() || !validKey(de.Name()) {
			continue // tmp files, strangers
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		seeds = append(seeds, seed{de.Name(), info.Size(), info.ModTime().UnixNano()})
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i].mtime < seeds[j].mtime })
	for _, sd := range seeds {
		s.entries[sd.key] = s.order.PushBack(&blobEntry{key: sd.key, size: sd.size})
		s.curBytes += sd.size
	}
	s.evictLocked()
	return s, nil
}

// validKey accepts lowercase-hex names of sane length — the only names the
// server hands the store — which doubles as path-traversal protection for
// anything else found in the directory.
func validKey(k string) bool {
	if len(k) == 0 || len(k) > 128 {
		return false
	}
	for i := 0; i < len(k); i++ {
		c := k[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Get returns the blob for key and promotes it. A file that has gone
// missing or unreadable under a live key is dropped and reported a miss.
func (s *BlobStore) Get(key string) ([]byte, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		s.misses++
		return nil, false
	}
	b, err := os.ReadFile(filepath.Join(s.dir, key))
	if err != nil {
		s.dropLocked(el)
		s.misses++
		return nil, false
	}
	s.order.MoveToBack(el)
	s.hits++
	return b, true
}

// Put stores a blob. Oversized blobs (bigger than the whole store) and
// invalid keys are dropped silently; write failures drop the blob and leave
// the store consistent. Re-putting a live key refreshes its recency and
// replaces its bytes.
func (s *BlobStore) Put(key string, blob []byte) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !validKey(key) || int64(len(blob)) > s.capBytes {
		s.dropped++
		return
	}
	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		s.dropped++
		return
	}
	_, werr := tmp.Write(blob)
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(tmp.Name())
		s.dropped++
		return
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, key)); err != nil {
		os.Remove(tmp.Name())
		s.dropped++
		return
	}
	if el, ok := s.entries[key]; ok {
		s.curBytes -= el.Value.(*blobEntry).size
		el.Value.(*blobEntry).size = int64(len(blob))
		s.curBytes += int64(len(blob))
		s.order.MoveToBack(el)
	} else {
		s.entries[key] = s.order.PushBack(&blobEntry{key: key, size: int64(len(blob))})
		s.curBytes += int64(len(blob))
	}
	s.puts++
	s.evictLocked()
}

// Len returns the number of stored blobs.
func (s *BlobStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Bytes returns the stored byte total.
func (s *BlobStore) Bytes() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.curBytes
}

// BlobStats are the store's lifetime counters.
type BlobStats struct {
	Hits, Misses, Puts, Evictions, Dropped int64
	Blobs                                  int
	Bytes                                  int64
}

// Stats returns the current counters.
func (s *BlobStore) Stats() BlobStats {
	if s == nil {
		return BlobStats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return BlobStats{
		Hits: s.hits, Misses: s.misses, Puts: s.puts,
		Evictions: s.evictions, Dropped: s.dropped,
		Blobs: len(s.entries), Bytes: s.curBytes,
	}
}

// evictLocked removes least-recently-used blobs until under the byte cap.
func (s *BlobStore) evictLocked() {
	for s.curBytes > s.capBytes {
		el := s.order.Front()
		if el == nil {
			return
		}
		os.Remove(filepath.Join(s.dir, el.Value.(*blobEntry).key))
		s.dropLocked(el)
		s.evictions++
	}
}

// dropLocked removes an entry from the index (not the file).
func (s *BlobStore) dropLocked(el *list.Element) {
	e := el.Value.(*blobEntry)
	s.curBytes -= e.size
	s.order.Remove(el)
	delete(s.entries, e.key)
}
