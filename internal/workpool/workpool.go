// Package workpool is the bounded worker pool the serving layer runs
// customization requests on, and the primitive the evaluation harness
// reuses to parallelize Pass@k samples. It provides the two properties a
// serving path needs that a bare goroutine-per-request model lacks:
//
//   - a hard concurrency bound (workers), so heavy traffic cannot oversubscribe
//     the CPU-bound synthesis pipeline; and
//   - a bounded queue with non-blocking admission (TrySubmit), so load beyond
//     the queue depth is rejected up front (HTTP 429) instead of piling up
//     unbounded.
//
// Close drains: it stops admissions, lets queued and running tasks finish,
// and then returns — which is what makes graceful daemon shutdown possible.
package workpool

import (
	"sync"
	"sync/atomic"
)

// Pool is a fixed-size worker pool over a bounded task queue. All methods
// are safe for concurrent use.
type Pool struct {
	mu      sync.Mutex
	closed  bool
	tasks   chan func()
	workers sync.WaitGroup
	busy    atomic.Int64
}

// New starts a pool with the given worker count and queue depth (both
// clamped to at least 1).
func New(workers, queueDepth int) *Pool {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 1 {
		queueDepth = 1
	}
	p := &Pool{tasks: make(chan func(), queueDepth)}
	p.workers.Add(workers)
	for i := 0; i < workers; i++ {
		go p.run()
	}
	return p
}

func (p *Pool) run() {
	defer p.workers.Done()
	for fn := range p.tasks {
		p.busy.Add(1)
		fn()
		p.busy.Add(-1)
	}
}

// TrySubmit enqueues fn when the queue has room, reporting false when the
// pool is saturated (admission control) or closed.
func (p *Pool) TrySubmit(fn func()) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	select {
	case p.tasks <- fn:
		return true
	default:
		return false
	}
}

// Queued returns the number of tasks waiting for a worker.
func (p *Pool) Queued() int { return len(p.tasks) }

// Busy returns the number of workers currently running a task.
func (p *Pool) Busy() int { return int(p.busy.Load()) }

// InFlight returns the tasks admitted but not yet finished (queued plus
// running) — the quantity an adaptive admission limiter bounds.
func (p *Pool) InFlight() int { return len(p.tasks) + int(p.busy.Load()) }

// Close stops admitting tasks, drains the queue, and waits for every
// running task to finish. Safe to call more than once.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
	p.mu.Unlock()
	p.workers.Wait()
}

// Run executes fn(0..n-1) on up to workers goroutines and waits for all of
// them — a static parallel-for for the embarrassingly-parallel batch loops
// (database build fan-out, row-sharded kernels). Unlike Pool it has no queue
// to saturate: indices are handed out atomically until exhausted. workers<=1
// or n<=1 runs inline, so serial callers pay nothing.
func Run(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
