package workpool

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestRunsSubmittedTasks(t *testing.T) {
	p := New(4, 16)
	var n atomic.Int64
	for i := 0; i < 16; i++ {
		if !p.TrySubmit(func() { n.Add(1) }) {
			t.Fatal("submit rejected with room in queue")
		}
	}
	p.Close()
	if n.Load() != 16 {
		t.Errorf("ran %d tasks, want 16", n.Load())
	}
}

func TestAdmissionControl(t *testing.T) {
	p := New(1, 1)
	defer p.Close()
	running := make(chan struct{})
	release := make(chan struct{})
	if !p.TrySubmit(func() { close(running); <-release }) {
		t.Fatal("first submit rejected")
	}
	<-running
	// Worker busy; one queue slot free.
	if !p.TrySubmit(func() {}) {
		t.Fatal("queue slot should admit one task")
	}
	// Queue full: admission control rejects.
	if p.TrySubmit(func() {}) {
		t.Error("saturated pool should reject")
	}
	close(release)
}

func TestCloseDrainsQueuedTasks(t *testing.T) {
	p := New(1, 8)
	var n atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	p.TrySubmit(func() { close(started); <-release; n.Add(1) })
	<-started
	for i := 0; i < 5; i++ {
		if !p.TrySubmit(func() { n.Add(1) }) {
			t.Fatal("queue should have room")
		}
	}
	done := make(chan struct{})
	go func() { p.Close(); close(done) }()
	select {
	case <-done:
		t.Fatal("Close returned while a task was still running")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	<-done
	if n.Load() != 6 {
		t.Errorf("drained %d tasks, want 6 (queued work must finish)", n.Load())
	}
	if p.TrySubmit(func() {}) {
		t.Error("closed pool must reject submissions")
	}
}

func TestBusyAndQueuedGauges(t *testing.T) {
	p := New(1, 4)
	release := make(chan struct{})
	started := make(chan struct{})
	p.TrySubmit(func() { close(started); <-release })
	<-started
	p.TrySubmit(func() {})
	if p.Busy() != 1 {
		t.Errorf("busy = %d, want 1", p.Busy())
	}
	if p.Queued() != 1 {
		t.Errorf("queued = %d, want 1", p.Queued())
	}
	close(release)
	p.Close()
	if p.Busy() != 0 || p.Queued() != 0 {
		t.Errorf("after close: busy %d queued %d", p.Busy(), p.Queued())
	}
}
