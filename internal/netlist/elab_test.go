package netlist

import (
	"strings"
	"testing"

	"repro/internal/liberty"
	"repro/internal/verilog"
)

func mustElab(t *testing.T, src, top string) *Netlist {
	t.Helper()
	f, err := verilog.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	nl, err := Elaborate(f, top, nil, liberty.Nangate45())
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	if err := nl.Check(); err != nil {
		t.Fatalf("check: %v", err)
	}
	return nl
}

func TestElabCombinational(t *testing.T) {
	nl := mustElab(t, `
module comb(input a, input b, input c, output y);
    wire t;
    assign t = a & b;
    assign y = t | ~c;
endmodule
`, "comb")
	if len(nl.Inputs) != 3 {
		t.Errorf("inputs = %d, want 3", len(nl.Inputs))
	}
	if len(nl.Outputs) != 1 {
		t.Errorf("outputs = %d, want 1", len(nl.Outputs))
	}
	s := nl.Summary()
	if s.Seq != 0 {
		t.Errorf("seq = %d, want 0", s.Seq)
	}
	if s.ByKind[liberty.KindAnd2] != 1 || s.ByKind[liberty.KindOr2] != 1 || s.ByKind[liberty.KindInv] != 1 {
		t.Errorf("gate mix wrong: %v", s.ByKind)
	}
	if nl.ClkNet != nil {
		t.Error("combinational design should have no clock")
	}
}

func TestElabRegister(t *testing.T) {
	nl := mustElab(t, `
module dff8(input clk, input rst, input [7:0] d, output [7:0] q);
    reg [7:0] q;
    always @(posedge clk or posedge rst) begin
        if (rst)
            q <= 8'h00;
        else
            q <= d;
    end
endmodule
`, "dff8")
	if nl.SeqCount() != 8 {
		t.Fatalf("seq = %d, want 8", nl.SeqCount())
	}
	if nl.ClkNet == nil || nl.RstNet == nil {
		t.Fatal("clock/reset nets not identified")
	}
	if len(nl.Inputs) != 8 {
		t.Errorf("inputs (excl clk/rst) = %d, want 8", len(nl.Inputs))
	}
	for _, c := range nl.Cells {
		if !c.IsSeq() {
			t.Errorf("unexpected combinational cell %s in pure register design", c.Name)
			continue
		}
		if c.Ref.Kind != liberty.KindDFFR {
			t.Errorf("cell %s kind = %s, want DFFR", c.Name, c.Ref.Kind)
		}
		if c.Clock != nl.ClkNet || c.Reset != nl.RstNet {
			t.Errorf("cell %s clock/reset wiring wrong", c.Name)
		}
	}
}

func TestElabEnableHold(t *testing.T) {
	// q holds when !en: expect a mux feeding each DFF (Q -> D feedback).
	nl := mustElab(t, `
module enreg(input clk, input en, input [3:0] d, output [3:0] q);
    reg [3:0] q;
    always @(posedge clk)
        if (en) q <= d;
endmodule
`, "enreg")
	s := nl.Summary()
	if s.Seq != 4 {
		t.Fatalf("seq = %d, want 4", s.Seq)
	}
	if s.ByKind[liberty.KindMux2] != 4 {
		t.Errorf("mux count = %d, want 4 (hold path)", s.ByKind[liberty.KindMux2])
	}
	// Each DFF's D must trace to a mux whose inputs include its own Q.
	for _, c := range nl.Cells {
		if !c.IsSeq() {
			continue
		}
		d := c.Inputs[0]
		if d.Driver == nil || d.Driver.Ref.Kind != liberty.KindMux2 {
			t.Fatalf("DFF %s: D not driven by mux", c.Name)
		}
		if d.Driver.Inputs[0] != c.Output {
			t.Errorf("DFF %s: hold path not fed back from Q", c.Name)
		}
	}
}

func TestElabCounterAdder(t *testing.T) {
	nl := mustElab(t, `
module counter(input clk, input rst, output [7:0] count);
    reg [7:0] count;
    always @(posedge clk or posedge rst) begin
        if (rst)
            count <= 8'd0;
        else
            count <= count + 8'd1;
    end
endmodule
`, "counter")
	s := nl.Summary()
	if s.Seq != 8 {
		t.Fatalf("seq = %d, want 8", s.Seq)
	}
	// The increment logic must contain xor gates (half adders).
	if s.ByKind[liberty.KindXor2] == 0 {
		t.Error("counter should contain XOR gates from the adder")
	}
}

func TestElabHierarchy(t *testing.T) {
	nl := mustElab(t, `
module top(input clk, input [3:0] a, input [3:0] b, output [3:0] s1, output [3:0] s2);
    addu u_a (.x(a), .y(b), .s(s1));
    addu u_b (.x(a), .y(s1), .s(s2));
endmodule
module addu(input [3:0] x, input [3:0] y, output [3:0] s);
    assign s = x + y;
endmodule
`, "top")
	groups := nl.GroupNames()
	if len(groups) != 2 || groups[0] != "u_a" || groups[1] != "u_b" {
		t.Errorf("groups = %v, want [u_a u_b]", groups)
	}
	for _, c := range nl.Cells {
		if c.Module != "addu" {
			t.Errorf("cell %s module = %q, want addu", c.Name, c.Module)
		}
	}
	// Ungroup flattens.
	n := nl.Ungroup("")
	if n != len(nl.Cells) {
		t.Errorf("ungrouped %d cells, want %d", n, len(nl.Cells))
	}
	if len(nl.GroupNames()) != 0 {
		t.Errorf("groups remain after ungroup: %v", nl.GroupNames())
	}
}

func TestElabParamOverride(t *testing.T) {
	nl := mustElab(t, `
module top(input [15:0] a, input [15:0] b, output [15:0] y);
    xorw #(.W(16)) u0 (.a(a), .b(b), .y(y));
endmodule
module xorw #(parameter W = 4) (input [W-1:0] a, input [W-1:0] b, output [W-1:0] y);
    assign y = a ^ b;
endmodule
`, "top")
	s := nl.Summary()
	if s.ByKind[liberty.KindXor2] != 16 {
		t.Errorf("xor count = %d, want 16", s.ByKind[liberty.KindXor2])
	}
}

func TestElabConstantFolding(t *testing.T) {
	nl := mustElab(t, `
module cf(input a, output y1, output y2, output y3);
    assign y1 = a & 1'b1;    // folds to a
    assign y2 = a & 1'b0;    // folds to constant 0
    assign y3 = a ^ 1'b1;    // folds to ~a
endmodule
`, "cf")
	s := nl.Summary()
	if s.ByKind[liberty.KindAnd2] != 0 {
		t.Errorf("AND gates = %d, want 0 after folding", s.ByKind[liberty.KindAnd2])
	}
	if s.ByKind[liberty.KindInv] != 1 {
		t.Errorf("INV gates = %d, want 1", s.ByKind[liberty.KindInv])
	}
	// y2 is a constant-0 output: it must be isolated behind a TIE0 cell.
	var y2 *Net
	for _, o := range nl.Outputs {
		if strings.HasPrefix(o.Name, "y2") {
			y2 = o
		}
	}
	if y2 == nil || y2.Driver == nil || y2.Driver.Ref.Kind != liberty.KindTie0 {
		t.Errorf("y2 should be driven by TIE0, got %+v", y2)
	}
}

func TestElabMuxTernary(t *testing.T) {
	nl := mustElab(t, `
module m(input s, input [7:0] a, input [7:0] b, output [7:0] y);
    assign y = s ? a : b;
endmodule
`, "m")
	s := nl.Summary()
	if s.ByKind[liberty.KindMux2] != 8 {
		t.Errorf("mux count = %d, want 8", s.ByKind[liberty.KindMux2])
	}
}

func TestElabWideOps(t *testing.T) {
	nl := mustElab(t, `
module w(input [15:0] a, input [15:0] b, output [16:0] s, output eq, output lt, output [3:0] sh);
    assign s = a + b;
    assign eq = a == b;
    assign lt = a < b;
    assign sh = a[3:0] << 2;
endmodule
`, "w")
	if len(nl.Outputs) != 17+1+1+4 {
		t.Errorf("outputs = %d, want 23", len(nl.Outputs))
	}
	if nl.Summary().Cells == 0 {
		t.Error("no cells generated")
	}
}

func TestElabMultiplier(t *testing.T) {
	nl := mustElab(t, `
module mult(input [7:0] a, input [7:0] b, output [15:0] p);
    assign p = a * b;
endmodule
`, "mult")
	s := nl.Summary()
	// An 8x8 array multiplier needs at least 64 partial-product ANDs.
	if s.ByKind[liberty.KindAnd2] < 64 {
		t.Errorf("AND count = %d, want >= 64", s.ByKind[liberty.KindAnd2])
	}
}

func TestElabGatePrimitives(t *testing.T) {
	nl := mustElab(t, `
module g(input a, input b, input c, output y, output z);
    wire t;
    nand (t, a, b);
    nor g2 (y, t, c);
    xor g3 (z, a, b, c);
endmodule
`, "g")
	s := nl.Summary()
	if s.Cells == 0 {
		t.Fatal("no cells")
	}
	// 3-input xor decomposes into two XOR2.
	if s.ByKind[liberty.KindXor2] != 2 {
		t.Errorf("xor2 = %d, want 2", s.ByKind[liberty.KindXor2])
	}
}

func TestElabErrors(t *testing.T) {
	cases := []struct {
		name, src, top string
		wantErr        string
	}{
		{"unknown top", "module a(input x, output y); assign y = x; endmodule", "b", "not found"},
		{"unknown module", "module a(input x, output y); sub u(.p(x), .q(y)); endmodule", "a", "unknown module"},
		{"unknown signal", "module a(input x, output y); assign y = zz; endmodule", "a", "unknown signal"},
		{"multiple drivers", "module a(input x, output y); assign y = x; assign y = ~x; endmodule", "a", "multiple drivers"},
		{"undriven output", "module a(input x, output y); wire t; assign t = x; endmodule", "a", "undriven"},
		{"drive input", "module a(input x, output y); assign x = y; endmodule", "a", ""},
		{"index range", "module a(input [3:0] x, output y); assign y = x[9]; endmodule", "a", "out of range"},
		{"bad reset shape", "module a(input clk, input rst, input d, output q); reg q; always @(posedge clk or posedge rst) q <= d; endmodule", "a", "reset"},
	}
	lib := liberty.Nangate45()
	for _, c := range cases {
		f, err := verilog.Parse(c.src)
		if err != nil {
			t.Fatalf("%s: parse: %v", c.name, err)
		}
		_, err = Elaborate(f, c.top, nil, lib)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if c.wantErr != "" && !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.wantErr)
		}
	}
}

func TestElabConcatSplit(t *testing.T) {
	nl := mustElab(t, `
module c(input [3:0] a, input [3:0] b, output [7:0] y, output [1:0] hi);
    assign y = {a, b};
    assign hi = y[7:6];
endmodule
`, "c")
	// Pure wiring becomes feedthrough buffers isolating each output port
	// (8 bits of y from inputs, plus 2 bits of hi from y).
	if n := len(nl.Cells); n != 10 {
		t.Errorf("cells = %d, want 10 feedthrough buffers", n)
	}
	for _, c := range nl.Cells {
		if c.Ref.Kind != liberty.KindBuf {
			t.Errorf("cell %s kind = %s, want BUF", c.Name, c.Ref.Kind)
		}
	}
}

func TestElabTopParamOverride(t *testing.T) {
	f, err := verilog.Parse(`
module t #(parameter W = 4) (input [W-1:0] a, output [W-1:0] y);
    assign y = ~a;
endmodule`)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := Elaborate(f, "t", map[string]int64{"W": 9}, liberty.Nangate45())
	if err != nil {
		t.Fatal(err)
	}
	if got := nl.Summary().ByKind[liberty.KindInv]; got != 9 {
		t.Errorf("inv count = %d, want 9", got)
	}
}
