package netlist

import (
	"fmt"

	"repro/internal/intern"
	"repro/internal/liberty"
	"repro/internal/verilog"
)

// Elaborate synthesizes a Verilog design into a flattened gate-level netlist
// on the target library: the "read_verilog + elaborate" step of the synthesis
// flow. Expressions become generic gates (mapped to the library's weakest
// drive cells, for the optimizer to size), always blocks become flip-flops
// with mux-based enable logic, and the module hierarchy is recorded on each
// cell as its optimization group.
func Elaborate(file *verilog.SourceFile, top string, overrides map[string]int64, lib *liberty.Library) (*Netlist, error) {
	m := file.FindModule(top)
	if m == nil {
		return nil, fmt.Errorf("top module %q not found", top)
	}
	el := &elab{
		file: file,
		nl:   New(top, lib),
		al:   newAliaser(),
	}
	params, err := el.resolveParams(m, overrides, nil)
	if err != nil {
		return nil, err
	}
	env := make(map[string]signal)
	for _, p := range m.Ports {
		w, _, err := verilog.RangeWidth(p.Range, params)
		if err != nil {
			return nil, fmt.Errorf("module %s port %s: %v", m.Name, p.Name, err)
		}
		bits := make([]*Net, w)
		for i := range bits {
			name := p.Name
			if w > 1 {
				name = intern.Bracket(p.Name, i)
			}
			n := el.nl.NewNet(name)
			bits[i] = n
			switch p.Dir {
			case verilog.DirInput:
				n.PI = true
			case verilog.DirOutput:
				n.PO = true
				el.nl.Outputs = append(el.nl.Outputs, n)
			default:
				return nil, fmt.Errorf("module %s port %s: inout not supported", m.Name, p.Name)
			}
		}
		env[p.Name] = signal{bits: bits}
	}
	if err := el.elabModule(m, params, env, "", 0); err != nil {
		return nil, err
	}
	if err := el.materialize(); err != nil {
		return nil, err
	}
	return el.nl, nil
}

// signal is a named bit vector within a module scope.
type signal struct {
	bits []*Net
	lsb  int
}

type elab struct {
	file *verilog.SourceFile
	nl   *Netlist
	al   *aliaser
}

// modScope is the per-module-instance elaboration context.
type modScope struct {
	m      *verilog.Module
	params map[string]int64
	env    map[string]signal
	b      *builder
	group  string
}

const maxDepth = 64

func (el *elab) resolveParams(m *verilog.Module, overrides map[string]int64, outer map[string]int64) (map[string]int64, error) {
	params := make(map[string]int64)
	for _, p := range m.Params {
		if v, ok := overrides[p.Name]; ok && !p.Local {
			params[p.Name] = v
			continue
		}
		v, err := verilog.ConstEval(p.Value, params)
		if err != nil {
			return nil, fmt.Errorf("module %s parameter %s: %v", m.Name, p.Name, err)
		}
		params[p.Name] = v
	}
	return params, nil
}

func (el *elab) elabModule(m *verilog.Module, params map[string]int64, env map[string]signal, group string, depth int) error {
	if depth > maxDepth {
		return fmt.Errorf("module %s: instantiation depth exceeds %d (recursive hierarchy?)", m.Name, maxDepth)
	}
	sc := &modScope{
		m:      m,
		params: params,
		env:    env,
		b:      newBuilder(el.nl, group, m.Name),
		group:  group,
	}

	// Pass 1: declare internal nets so assigns may reference them in any order.
	for _, item := range m.Items {
		decl, ok := item.(*verilog.NetDecl)
		if !ok {
			continue
		}
		w, lsb, err := verilog.RangeWidth(decl.Range, params)
		if err != nil {
			return fmt.Errorf("module %s: %v", m.Name, err)
		}
		for _, name := range decl.Names {
			if existing, ok := env[name]; ok {
				// Re-declaration of a port as reg/wire: widths must agree.
				if len(existing.bits) != w {
					return fmt.Errorf("module %s: %s redeclared with width %d (was %d)",
						m.Name, name, w, len(existing.bits))
				}
				continue
			}
			bits := make([]*Net, w)
			for i := range bits {
				bits[i] = el.nl.NewNet("")
			}
			env[name] = signal{bits: bits, lsb: lsb}
		}
	}

	// Pass 2: synthesize behaviour.
	for _, item := range m.Items {
		switch it := item.(type) {
		case *verilog.NetDecl:
			// handled in pass 1
		case *verilog.Assign:
			if err := el.elabAssign(sc, it); err != nil {
				return fmt.Errorf("module %s: %v", m.Name, err)
			}
		case *verilog.AlwaysFF:
			if err := el.elabAlways(sc, it); err != nil {
				return fmt.Errorf("module %s: %v", m.Name, err)
			}
		case *verilog.Instance:
			if err := el.elabInstance(sc, it, depth); err != nil {
				return err
			}
		case *verilog.GatePrim:
			if err := el.elabGate(sc, it); err != nil {
				return fmt.Errorf("module %s: %v", m.Name, err)
			}
		default:
			return fmt.Errorf("module %s: unsupported item %T", m.Name, item)
		}
	}
	return nil
}

func (el *elab) elabAssign(sc *modScope, a *verilog.Assign) error {
	tgt, err := el.lvalue(sc, a.LHS)
	if err != nil {
		return err
	}
	rhs, err := el.synth(sc, a.RHS, len(tgt))
	if err != nil {
		return err
	}
	rhs = sc.b.ext(rhs, len(tgt))
	for i := range tgt {
		if err := el.drive(sc, tgt[i], rhs[i]); err != nil {
			return fmt.Errorf("assign %s: %v", a.LHS.String(), err)
		}
	}
	return nil
}

// drive connects src as the logic behind dst. When dst is a primary output
// that would otherwise be shorted to a constant, a primary input, or another
// primary output, a tie cell or feedthrough buffer is inserted so every
// output port keeps its own net — the same port isolation a synthesis tool
// performs.
func (el *elab) drive(sc *modScope, dst, src *Net) error {
	d, s := el.al.find(dst), el.al.find(src)
	if d == s {
		return nil
	}
	if d.PI {
		return fmt.Errorf("cannot assign to primary input %s", d.Name)
	}
	if d.PO && (s.Const || s.PI || s.PO) {
		if s.Const {
			kind := liberty.KindTie0
			if s.Val {
				kind = liberty.KindTie1
			}
			if ref := el.nl.Lib.Weakest(kind); ref != nil {
				c, err := el.nl.AddCell(ref, sc.group, sc.m.Name)
				if err != nil {
					return err
				}
				return el.al.union(c.Output, d)
			}
		} else if ref := el.nl.Lib.Weakest(liberty.KindBuf); ref != nil {
			c, err := el.nl.AddCell(ref, sc.group, sc.m.Name, s)
			if err != nil {
				return err
			}
			return el.al.union(c.Output, d)
		}
	}
	return el.al.union(d, s)
}

// lvalue resolves an assignable expression to its target net slots, LSB first.
func (el *elab) lvalue(sc *modScope, e verilog.Expr) ([]*Net, error) {
	switch v := e.(type) {
	case *verilog.Ident:
		sig, ok := sc.env[v.Name]
		if !ok {
			return nil, fmt.Errorf("%s: unknown signal %q in lvalue", v.Pos, v.Name)
		}
		return sig.bits, nil
	case *verilog.Index:
		id, ok := v.X.(*verilog.Ident)
		if !ok {
			return nil, fmt.Errorf("%s: lvalue bit-select base must be an identifier", v.Pos)
		}
		sig, ok := sc.env[id.Name]
		if !ok {
			return nil, fmt.Errorf("%s: unknown signal %q", v.Pos, id.Name)
		}
		idx, err := verilog.ConstEval(v.I, sc.params)
		if err != nil {
			return nil, fmt.Errorf("%s: lvalue index must be constant: %v", v.Pos, err)
		}
		bit := int(idx) - sig.lsb
		if bit < 0 || bit >= len(sig.bits) {
			return nil, fmt.Errorf("%s: index %d out of range for %s", v.Pos, idx, id.Name)
		}
		return sig.bits[bit : bit+1], nil
	case *verilog.Slice:
		id, ok := v.X.(*verilog.Ident)
		if !ok {
			return nil, fmt.Errorf("%s: lvalue part-select base must be an identifier", v.Pos)
		}
		sig, ok := sc.env[id.Name]
		if !ok {
			return nil, fmt.Errorf("%s: unknown signal %q", v.Pos, id.Name)
		}
		msb, err := verilog.ConstEval(v.MSB, sc.params)
		if err != nil {
			return nil, err
		}
		lsb, err := verilog.ConstEval(v.LSB, sc.params)
		if err != nil {
			return nil, err
		}
		lo, hi := int(lsb)-sig.lsb, int(msb)-sig.lsb
		if lo < 0 || hi >= len(sig.bits) || lo > hi {
			return nil, fmt.Errorf("%s: part-select [%d:%d] out of range for %s", v.Pos, msb, lsb, id.Name)
		}
		return sig.bits[lo : hi+1], nil
	case *verilog.Concat:
		// Concatenation lists MSB first; result is LSB first.
		var bits []*Net
		for i := len(v.Parts) - 1; i >= 0; i-- {
			part, err := el.lvalue(sc, v.Parts[i])
			if err != nil {
				return nil, err
			}
			bits = append(bits, part...)
		}
		return bits, nil
	}
	return nil, fmt.Errorf("expression %s is not assignable", e.String())
}

// synth synthesizes an expression into gates, returning LSB-first bits.
// widthHint propagates the assignment context width into arithmetic.
func (el *elab) synth(sc *modScope, e verilog.Expr, widthHint int) ([]*Net, error) {
	b := sc.b
	switch v := e.(type) {
	case *verilog.Ident:
		if pval, ok := sc.params[v.Name]; ok {
			w := widthHint
			if w <= 0 {
				w = 32
			}
			return el.constBits(b, uint64(pval), w), nil
		}
		sig, ok := sc.env[v.Name]
		if !ok {
			return nil, fmt.Errorf("%s: unknown signal %q", v.Pos, v.Name)
		}
		return sig.bits, nil

	case *verilog.Number:
		w := v.Width
		if w == 0 {
			w = widthHint
		}
		if w <= 0 {
			w = 32
		}
		return el.constBits(b, v.Value, w), nil

	case *verilog.Unary:
		return el.synthUnary(sc, v, widthHint)

	case *verilog.Binary:
		return el.synthBinary(sc, v, widthHint)

	case *verilog.Ternary:
		condBits, err := el.synth(sc, v.Cond, 0)
		if err != nil {
			return nil, err
		}
		cond, err := b.boolVal(condBits)
		if err != nil {
			return nil, err
		}
		tb, err := el.synth(sc, v.T, widthHint)
		if err != nil {
			return nil, err
		}
		fb, err := el.synth(sc, v.F, widthHint)
		if err != nil {
			return nil, err
		}
		w := max(len(tb), len(fb))
		if widthHint > w {
			w = widthHint
		}
		tb, fb = b.ext(tb, w), b.ext(fb, w)
		out := make([]*Net, w)
		for i := 0; i < w; i++ {
			m, err := b.mux(cond, fb[i], tb[i])
			if err != nil {
				return nil, err
			}
			out[i] = m
		}
		return out, nil

	case *verilog.Index:
		base, err := el.synth(sc, v.X, 0)
		if err != nil {
			return nil, err
		}
		lsbOff := el.lsbOffset(sc, v.X)
		if idx, err := verilog.ConstEval(v.I, sc.params); err == nil {
			bit := int(idx) - lsbOff
			if bit < 0 || bit >= len(base) {
				return nil, fmt.Errorf("%s: index %d out of range", v.Pos, idx)
			}
			return base[bit : bit+1], nil
		}
		// Variable index: shift right by index, take bit 0.
		amt, err := el.synth(sc, v.I, 0)
		if err != nil {
			return nil, err
		}
		shifted, err := b.barrel(base, amt, false)
		if err != nil {
			return nil, err
		}
		return shifted[:1], nil

	case *verilog.Slice:
		base, err := el.synth(sc, v.X, 0)
		if err != nil {
			return nil, err
		}
		lsbOff := el.lsbOffset(sc, v.X)
		msb, err := verilog.ConstEval(v.MSB, sc.params)
		if err != nil {
			return nil, fmt.Errorf("%s: part-select bounds must be constant: %v", v.Pos, err)
		}
		lsb, err := verilog.ConstEval(v.LSB, sc.params)
		if err != nil {
			return nil, fmt.Errorf("%s: part-select bounds must be constant: %v", v.Pos, err)
		}
		lo, hi := int(lsb)-lsbOff, int(msb)-lsbOff
		if lo < 0 || hi >= len(base) || lo > hi {
			return nil, fmt.Errorf("%s: part-select [%d:%d] out of range", v.Pos, msb, lsb)
		}
		return base[lo : hi+1], nil

	case *verilog.Concat:
		var bits []*Net
		for i := len(v.Parts) - 1; i >= 0; i-- {
			part, err := el.synth(sc, v.Parts[i], 0)
			if err != nil {
				return nil, err
			}
			bits = append(bits, part...)
		}
		return bits, nil

	case *verilog.Repl:
		n, err := verilog.ConstEval(v.N, sc.params)
		if err != nil {
			return nil, fmt.Errorf("%s: replication count must be constant: %v", v.Pos, err)
		}
		if n < 0 || n > 4096 {
			return nil, fmt.Errorf("%s: replication count %d out of range", v.Pos, n)
		}
		part, err := el.synth(sc, v.X, 0)
		if err != nil {
			return nil, err
		}
		var bits []*Net
		for i := int64(0); i < n; i++ {
			bits = append(bits, part...)
		}
		return bits, nil
	}
	return nil, fmt.Errorf("cannot synthesize expression %s", e.String())
}

// lsbOffset returns the declared LSB offset when indexing a plain signal.
func (el *elab) lsbOffset(sc *modScope, e verilog.Expr) int {
	if id, ok := e.(*verilog.Ident); ok {
		if sig, ok := sc.env[id.Name]; ok {
			return sig.lsb
		}
	}
	return 0
}

func (el *elab) constBits(b *builder, val uint64, w int) []*Net {
	bits := make([]*Net, w)
	for i := 0; i < w; i++ {
		bits[i] = b.constNet(val>>uint(i)&1 == 1)
	}
	return bits
}

func (el *elab) synthUnary(sc *modScope, v *verilog.Unary, widthHint int) ([]*Net, error) {
	b := sc.b
	x, err := el.synth(sc, v.X, widthHint)
	if err != nil {
		return nil, err
	}
	switch v.Op {
	case "~":
		out := make([]*Net, len(x))
		for i, bit := range x {
			inv, err := b.inv(bit)
			if err != nil {
				return nil, err
			}
			out[i] = inv
		}
		return out, nil
	case "!":
		z, err := b.eqZero(x)
		if err != nil {
			return nil, err
		}
		return []*Net{z}, nil
	case "-":
		w := len(x)
		if widthHint > w {
			w = widthHint
			x = b.ext(x, w)
		}
		inv := make([]*Net, w)
		for i, bit := range x {
			n, err := b.inv(bit)
			if err != nil {
				return nil, err
			}
			inv[i] = n
		}
		zero := b.ext(nil, w)
		sum, _, err := b.adder(inv, zero, b.c1())
		if err != nil {
			return nil, err
		}
		return sum, nil
	case "&", "|", "^", "~&", "~|", "~^":
		var kind liberty.Kind
		invert := false
		switch v.Op {
		case "&":
			kind = liberty.KindAnd2
		case "|":
			kind = liberty.KindOr2
		case "^":
			kind = liberty.KindXor2
		case "~&":
			kind, invert = liberty.KindAnd2, true
		case "~|":
			kind, invert = liberty.KindOr2, true
		case "~^":
			kind, invert = liberty.KindXor2, true
		}
		r, err := b.reduce(kind, x)
		if err != nil {
			return nil, err
		}
		if invert {
			r, err = b.inv(r)
			if err != nil {
				return nil, err
			}
		}
		return []*Net{r}, nil
	}
	return nil, fmt.Errorf("%s: unsupported unary operator %q", v.Pos, v.Op)
}

func (el *elab) synthBinary(sc *modScope, v *verilog.Binary, widthHint int) ([]*Net, error) {
	b := sc.b
	switch v.Op {
	case "&", "|", "^", "~^", "^~":
		l, err := el.synth(sc, v.L, widthHint)
		if err != nil {
			return nil, err
		}
		r, err := el.synth(sc, v.R, widthHint)
		if err != nil {
			return nil, err
		}
		w := max(len(l), len(r))
		l, r = b.ext(l, w), b.ext(r, w)
		var kind liberty.Kind
		switch v.Op {
		case "&":
			kind = liberty.KindAnd2
		case "|":
			kind = liberty.KindOr2
		case "^":
			kind = liberty.KindXor2
		default:
			kind = liberty.KindXnor2
		}
		out := make([]*Net, w)
		for i := 0; i < w; i++ {
			g, err := b.gate2(kind, l[i], r[i])
			if err != nil {
				return nil, err
			}
			out[i] = g
		}
		return out, nil

	case "&&", "||":
		l, err := el.synth(sc, v.L, 0)
		if err != nil {
			return nil, err
		}
		r, err := el.synth(sc, v.R, 0)
		if err != nil {
			return nil, err
		}
		lb, err := b.boolVal(l)
		if err != nil {
			return nil, err
		}
		rb, err := b.boolVal(r)
		if err != nil {
			return nil, err
		}
		kind := liberty.KindAnd2
		if v.Op == "||" {
			kind = liberty.KindOr2
		}
		g, err := b.gate2(kind, lb, rb)
		if err != nil {
			return nil, err
		}
		return []*Net{g}, nil

	case "==", "!=", "===", "!==":
		l, err := el.synth(sc, v.L, 0)
		if err != nil {
			return nil, err
		}
		r, err := el.synth(sc, v.R, 0)
		if err != nil {
			return nil, err
		}
		w := max(len(l), len(r))
		l, r = b.ext(l, w), b.ext(r, w)
		diffs := make([]*Net, w)
		for i := 0; i < w; i++ {
			d, err := b.gate2(liberty.KindXor2, l[i], r[i])
			if err != nil {
				return nil, err
			}
			diffs[i] = d
		}
		any, err := b.reduce(liberty.KindOr2, diffs)
		if err != nil {
			return nil, err
		}
		if v.Op == "!=" || v.Op == "!==" {
			return []*Net{any}, nil
		}
		eq, err := b.inv(any)
		if err != nil {
			return nil, err
		}
		return []*Net{eq}, nil

	case "<", "<=", ">", ">=":
		l, err := el.synth(sc, v.L, 0)
		if err != nil {
			return nil, err
		}
		r, err := el.synth(sc, v.R, 0)
		if err != nil {
			return nil, err
		}
		w := max(len(l), len(r))
		l, r = b.ext(l, w), b.ext(r, w)
		var res *Net
		switch v.Op {
		case ">=": // a >= b: no borrow in a-b
			_, res, err = b.sub(l, r)
		case "<": // !(a >= b)
			_, geq, e2 := b.sub(l, r)
			if e2 != nil {
				return nil, e2
			}
			res, err = b.inv(geq)
		case "<=": // b >= a
			_, res, err = b.sub(r, l)
		case ">": // !(b >= a)
			_, geq, e2 := b.sub(r, l)
			if e2 != nil {
				return nil, e2
			}
			res, err = b.inv(geq)
		}
		if err != nil {
			return nil, err
		}
		return []*Net{res}, nil

	case "+", "-":
		l, err := el.synth(sc, v.L, widthHint)
		if err != nil {
			return nil, err
		}
		r, err := el.synth(sc, v.R, widthHint)
		if err != nil {
			return nil, err
		}
		w := max(len(l), len(r))
		if widthHint > w {
			w = widthHint
		}
		l, r = b.ext(l, w), b.ext(r, w)
		if v.Op == "+" {
			sum, _, err := b.adder(l, r, b.c0())
			return sum, err
		}
		diff, _, err := b.sub(l, r)
		return diff, err

	case "*":
		l, err := el.synth(sc, v.L, 0)
		if err != nil {
			return nil, err
		}
		r, err := el.synth(sc, v.R, 0)
		if err != nil {
			return nil, err
		}
		return b.multiplier(l, r)

	case "<<", ">>", "<<<", ">>>":
		l, err := el.synth(sc, v.L, widthHint)
		if err != nil {
			return nil, err
		}
		if widthHint > len(l) {
			l = b.ext(l, widthHint)
		}
		if k, err := verilog.ConstEval(v.R, sc.params); err == nil {
			shift := int(k)
			if v.Op == ">>" || v.Op == ">>>" {
				shift = -shift
			}
			return b.shiftConst(l, shift), nil
		}
		amt, err := el.synth(sc, v.R, 0)
		if err != nil {
			return nil, err
		}
		return b.barrel(l, amt, v.Op == "<<" || v.Op == "<<<")

	case "/", "%":
		// Constant division only (used in parameter math that leaked into
		// expressions); general dividers are out of the subset.
		lv, lerr := verilog.ConstEval(v.L, sc.params)
		rv, rerr := verilog.ConstEval(v.R, sc.params)
		if lerr == nil && rerr == nil && rv != 0 {
			var res int64
			if v.Op == "/" {
				res = lv / rv
			} else {
				res = lv % rv
			}
			w := widthHint
			if w <= 0 {
				w = 32
			}
			return el.constBits(b, uint64(res), w), nil
		}
		return nil, fmt.Errorf("%s: non-constant %q not supported", v.Pos, v.Op)
	}
	return nil, fmt.Errorf("%s: unsupported binary operator %q", v.Pos, v.Op)
}
