package netlist

import (
	"fmt"
	"sort"

	"repro/internal/liberty"
	"repro/internal/verilog"
)

// elabAlways synthesizes a clocked always block into flip-flops. Each
// register bit assigned in the block gets a DFF (or DFFR when the block has
// an asynchronous reset) whose D input is the mux network describing the
// block's control flow, with hold paths fed back from Q.
func (el *elab) elabAlways(sc *modScope, ff *verilog.AlwaysFF) error {
	clkSig, ok := sc.env[ff.Clk]
	if !ok || len(clkSig.bits) != 1 {
		return fmt.Errorf("%s: clock %q is not a declared scalar signal", ff.Pos, ff.Clk)
	}
	clk := clkSig.bits[0]
	el.al.find(clk).IsClk = true

	body := ff.Body
	var rst *Net
	resetVals := make(map[*Net]bool) // reset target bit -> reset value
	if ff.Rst != "" {
		rstSig, ok := sc.env[ff.Rst]
		if !ok || len(rstSig.bits) != 1 {
			return fmt.Errorf("%s: reset %q is not a declared scalar signal", ff.Pos, ff.Rst)
		}
		rst = rstSig.bits[0]
		el.al.find(rst).IsRst = true
		if len(body) != 1 {
			return fmt.Errorf("%s: async-reset always block must be a single if statement", ff.Pos)
		}
		ifs, ok := body[0].(*verilog.IfStmt)
		if !ok {
			return fmt.Errorf("%s: async-reset always block must start with if (reset)", ff.Pos)
		}
		if !condIsReset(ifs.Cond, ff.Rst, ff.RstNeg) {
			return fmt.Errorf("%s: outer if condition must test reset %q", ff.Pos, ff.Rst)
		}
		// The reset arm must assign constants.
		for _, s := range ifs.Then {
			nb, ok := s.(*verilog.NonBlocking)
			if !ok {
				return fmt.Errorf("%s: reset arm must contain only nonblocking assignments", ff.Pos)
			}
			tgt, err := el.lvalue(sc, nb.LHS)
			if err != nil {
				return err
			}
			val, err := verilog.ConstEval(nb.RHS, sc.params)
			if err != nil {
				return fmt.Errorf("%s: reset value must be constant: %v", ff.Pos, err)
			}
			for i, t := range tgt {
				resetVals[t] = val>>uint(i)&1 == 1
			}
		}
		body = ifs.Else
	}

	updates, err := el.procStmts(sc, body)
	if err != nil {
		return err
	}

	// Collect all register bits touched by this block, deterministically.
	targets := make(map[*Net]bool)
	for t := range updates {
		targets[t] = true
	}
	for t := range resetVals {
		targets[t] = true
	}
	ordered := make([]*Net, 0, len(targets))
	for t := range targets {
		ordered = append(ordered, t)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].ID < ordered[j].ID })

	for _, cur := range ordered {
		next, ok := updates[cur]
		if !ok {
			next = cur // reset-only register holds its value otherwise
		}
		kind := liberty.KindDFF
		if rst != nil {
			kind = liberty.KindDFFR
		}
		ref := el.nl.Lib.Weakest(kind)
		if ref == nil {
			return fmt.Errorf("library has no %s cell", kind)
		}
		cell, err := el.nl.AddCell(ref, sc.group, sc.m.Name, next)
		if err != nil {
			return err
		}
		cell.Clock = clk
		cell.Reset = rst
		if err := el.drive(sc, cur, cell.Output); err != nil {
			return fmt.Errorf("%s: register output: %v", ff.Pos, err)
		}
	}
	return nil
}

// condIsReset checks that an expression tests the reset signal with the
// polarity implied by the sensitivity edge.
func condIsReset(e verilog.Expr, rst string, negedge bool) bool {
	if !negedge {
		if id, ok := e.(*verilog.Ident); ok {
			return id.Name == rst
		}
		return false
	}
	if u, ok := e.(*verilog.Unary); ok && (u.Op == "!" || u.Op == "~") {
		if id, ok := u.X.(*verilog.Ident); ok {
			return id.Name == rst
		}
	}
	return false
}

// procStmts folds a statement list into a next-value map from register bit
// (its current Q net) to the net holding its next value.
func (el *elab) procStmts(sc *modScope, stmts []verilog.Stmt) (map[*Net]*Net, error) {
	upd := make(map[*Net]*Net)
	for _, s := range stmts {
		switch v := s.(type) {
		case *verilog.NonBlocking:
			tgt, err := el.lvalue(sc, v.LHS)
			if err != nil {
				return nil, err
			}
			rhs, err := el.synth(sc, v.RHS, len(tgt))
			if err != nil {
				return nil, err
			}
			rhs = sc.b.ext(rhs, len(tgt))
			for i, t := range tgt {
				upd[t] = rhs[i]
			}

		case *verilog.IfStmt:
			condBits, err := el.synth(sc, v.Cond, 0)
			if err != nil {
				return nil, err
			}
			cond, err := sc.b.boolVal(condBits)
			if err != nil {
				return nil, err
			}
			thenU, err := el.procStmts(sc, v.Then)
			if err != nil {
				return nil, err
			}
			elseU, err := el.procStmts(sc, v.Else)
			if err != nil {
				return nil, err
			}
			keys := make(map[*Net]bool)
			for k := range thenU {
				keys[k] = true
			}
			for k := range elseU {
				keys[k] = true
			}
			orderedKeys := make([]*Net, 0, len(keys))
			for k := range keys {
				orderedKeys = append(orderedKeys, k)
			}
			sort.Slice(orderedKeys, func(i, j int) bool { return orderedKeys[i].ID < orderedKeys[j].ID })
			for _, k := range orderedKeys {
				prior, hasPrior := upd[k]
				hold := k
				if hasPrior {
					hold = prior
				}
				tv, ok := thenU[k]
				if !ok {
					tv = hold
				}
				ev, ok := elseU[k]
				if !ok {
					ev = hold
				}
				m, err := sc.b.mux(cond, ev, tv)
				if err != nil {
					return nil, err
				}
				upd[k] = m
			}

		default:
			return nil, fmt.Errorf("unsupported statement %T in always block", s)
		}
	}
	return upd, nil
}

// elabInstance elaborates a submodule instance, binding ports by alias.
func (el *elab) elabInstance(sc *modScope, inst *verilog.Instance, depth int) error {
	sub := el.file.FindModule(inst.ModuleName)
	if sub == nil {
		return fmt.Errorf("%s: unknown module %q", inst.Pos, inst.ModuleName)
	}
	// Parameter overrides.
	overrides := make(map[string]int64)
	for i, po := range inst.ParamOver {
		val, err := verilog.ConstEval(po.Expr, sc.params)
		if err != nil {
			return fmt.Errorf("%s: parameter override: %v", inst.Pos, err)
		}
		name := po.Name
		if name == "" {
			// Ordered overrides bind to non-local params in declaration order.
			idx := 0
			for _, p := range sub.Params {
				if p.Local {
					continue
				}
				if idx == i {
					name = p.Name
					break
				}
				idx++
			}
			if name == "" {
				return fmt.Errorf("%s: too many ordered parameter overrides", inst.Pos)
			}
		}
		overrides[name] = val
	}
	subParams, err := el.resolveParams(sub, overrides, sc.params)
	if err != nil {
		return err
	}

	// Bind connections.
	connFor := make(map[string]verilog.Expr)
	connSet := make(map[string]bool)
	for i, c := range inst.Conns {
		if c.Name != "" {
			connFor[c.Name] = c.Expr
			connSet[c.Name] = true
			continue
		}
		if i >= len(sub.Ports) {
			return fmt.Errorf("%s: too many ordered connections for %s", inst.Pos, sub.Name)
		}
		connFor[sub.Ports[i].Name] = c.Expr
		connSet[sub.Ports[i].Name] = true
	}

	childGroup := inst.Name
	if sc.group != "" {
		childGroup = sc.group + "/" + inst.Name
	}
	subEnv := make(map[string]signal)
	for _, port := range sub.Ports {
		w, _, err := verilog.RangeWidth(port.Range, subParams)
		if err != nil {
			return fmt.Errorf("%s port %s: %v", sub.Name, port.Name, err)
		}
		expr, bound := connFor[port.Name]
		switch port.Dir {
		case verilog.DirInput:
			var bits []*Net
			if !bound || expr == nil {
				bits = sc.b.ext(nil, w) // unconnected input ties to 0
			} else {
				bits, err = el.synth(sc, expr, w)
				if err != nil {
					return fmt.Errorf("%s.%s: %v", inst.Name, port.Name, err)
				}
				bits = sc.b.ext(bits, w)
			}
			subEnv[port.Name] = signal{bits: bits}

		case verilog.DirOutput:
			bits := make([]*Net, w)
			for i := range bits {
				bits[i] = el.nl.NewNet("")
			}
			subEnv[port.Name] = signal{bits: bits}
			if bound && expr != nil {
				lv, err := el.lvalue(sc, expr)
				if err != nil {
					return fmt.Errorf("%s.%s: %v", inst.Name, port.Name, err)
				}
				n := min(len(lv), w)
				for i := 0; i < n; i++ {
					if err := el.drive(sc, lv[i], bits[i]); err != nil {
						return fmt.Errorf("%s.%s: %v", inst.Name, port.Name, err)
					}
				}
				// A wider lvalue gets its upper bits tied to 0.
				for i := n; i < len(lv); i++ {
					if err := el.drive(sc, lv[i], sc.b.c0()); err != nil {
						return fmt.Errorf("%s.%s: %v", inst.Name, port.Name, err)
					}
				}
			}

		default:
			return fmt.Errorf("%s: inout port %s not supported", inst.Pos, port.Name)
		}
	}
	return el.elabModule(sub, subParams, subEnv, childGroup, depth+1)
}

// elabGate synthesizes a Verilog gate primitive. Multi-input gates beyond
// the library's widest cell decompose into balanced trees.
func (el *elab) elabGate(sc *modScope, g *verilog.GatePrim) error {
	if len(g.Args) < 2 {
		return fmt.Errorf("%s: gate %s needs an output and at least one input", g.Pos, g.Kind)
	}
	out, err := el.lvalue(sc, g.Args[0])
	if err != nil {
		return err
	}
	if len(out) != 1 {
		return fmt.Errorf("%s: gate %s output must be a single bit", g.Pos, g.Kind)
	}
	ins := make([]*Net, 0, len(g.Args)-1)
	for _, a := range g.Args[1:] {
		bits, err := el.synth(sc, a, 1)
		if err != nil {
			return err
		}
		if len(bits) != 1 {
			return fmt.Errorf("%s: gate %s input %s must be a single bit", g.Pos, g.Kind, a.String())
		}
		ins = append(ins, bits[0])
	}
	b := sc.b
	var res *Net
	switch g.Kind {
	case "not":
		if len(ins) != 1 {
			return fmt.Errorf("%s: not takes one input", g.Pos)
		}
		res, err = b.inv(ins[0])
	case "buf":
		if len(ins) != 1 {
			return fmt.Errorf("%s: buf takes one input", g.Pos)
		}
		res = ins[0]
	case "and":
		res, err = b.reduce(liberty.KindAnd2, ins)
	case "or":
		res, err = b.reduce(liberty.KindOr2, ins)
	case "xor":
		res, err = b.reduce(liberty.KindXor2, ins)
	case "nand":
		res, err = b.reduce(liberty.KindAnd2, ins)
		if err == nil {
			res, err = b.inv(res)
		}
	case "nor":
		res, err = b.reduce(liberty.KindOr2, ins)
		if err == nil {
			res, err = b.inv(res)
		}
	case "xnor":
		res, err = b.reduce(liberty.KindXor2, ins)
		if err == nil {
			res, err = b.inv(res)
		}
	default:
		return fmt.Errorf("%s: unknown gate primitive %q", g.Pos, g.Kind)
	}
	if err != nil {
		return err
	}
	return el.drive(sc, out[0], res)
}
