package netlist

// Clone returns a deep copy of the netlist that shares no mutable state with
// the receiver: mutating either side (resize, retime, ungroup, buffering)
// never perturbs the other. Immutable references — the library and the
// cells' library references — are shared.
//
// The copy is exact, not merely equivalent:
//
//   - Cell.ID and Net.ID numbering is preserved, along with nextCell/nextNet,
//     so slice-indexed per-ID state (the timing engine's) sizes identically.
//   - Slice orders (Cells, Nets, Inputs, Outputs, each net's Sinks) are
//     preserved, so float accumulation orders — and therefore every timing
//     and QoR number — are bit-identical to the original's.
//   - The edit generations (gen, topoGen) carry over, so generation-keyed
//     caches observe the clone exactly where they observed the original.
//
// Allocation is slab-style: one backing array per object kind (cells, nets,
// pins, input pointers, sink pointers) instead of per-object allocations,
// so cloning a design costs a handful of large allocations and stays cheap
// enough to sit on the checkpoint-restore hot path.
//
// Clone only reads the receiver, so any number of goroutines may clone the
// same (otherwise unmutated) netlist concurrently.
func (nl *Netlist) Clone() *Netlist {
	out := &Netlist{
		Name:     nl.Name,
		Lib:      nl.Lib,
		nextNet:  nl.nextNet,
		nextCell: nl.nextCell,
		gen:      nl.gen,
		topoGen:  nl.topoGen,
		Groups:   make(map[string]int, len(nl.Groups)),
	}
	for g, cnt := range nl.Groups {
		out.Groups[g] = cnt
	}

	// Slabs. IDs are sparse (elaboration drops dead nets) but bounded, so
	// the ID-indexed maps size to the bounds while the slabs size to the
	// live object counts.
	netSlab := make([]Net, len(nl.Nets))
	cellSlab := make([]Cell, len(nl.Cells))
	netByID := make([]*Net, nl.nextNet)
	cellByID := make([]*Cell, nl.nextCell)

	out.Nets = make([]*Net, len(nl.Nets))
	totalSinks := 0
	for i, n := range nl.Nets {
		cn := &netSlab[i]
		*cn = Net{
			ID: n.ID, Name: n.Name,
			PI: n.PI, PO: n.PO,
			Const: n.Const, Val: n.Val,
			IsClk: n.IsClk, IsRst: n.IsRst,
		}
		out.Nets[i] = cn
		netByID[n.ID] = cn
		totalSinks += len(n.Sinks)
	}

	out.Cells = make([]*Cell, len(nl.Cells))
	totalInputs := 0
	for i, c := range nl.Cells {
		cc := &cellSlab[i]
		*cc = Cell{
			ID: c.ID, Name: c.Name, Ref: c.Ref,
			Module: c.Module, Group: c.Group, Fixed: c.Fixed,
		}
		out.Cells[i] = cc
		cellByID[c.ID] = cc
		totalInputs += len(c.Inputs)
	}

	// Wire cell connectivity.
	inputSlab := make([]*Net, totalInputs)
	ii := 0
	for i, c := range nl.Cells {
		cc := &cellSlab[i]
		cc.Inputs = inputSlab[ii : ii+len(c.Inputs) : ii+len(c.Inputs)]
		for j, in := range c.Inputs {
			cc.Inputs[j] = netByID[in.ID]
		}
		ii += len(c.Inputs)
		if c.Output != nil {
			cc.Output = netByID[c.Output.ID]
		}
		if c.Clock != nil {
			cc.Clock = netByID[c.Clock.ID]
		}
		if c.Reset != nil {
			cc.Reset = netByID[c.Reset.ID]
		}
	}

	// Wire net connectivity.
	pinSlab := make([]Pin, totalSinks)
	sinkSlab := make([]*Pin, totalSinks)
	si := 0
	for i, n := range nl.Nets {
		cn := &netSlab[i]
		if n.Driver != nil {
			cn.Driver = cellByID[n.Driver.ID]
		}
		if len(n.Sinks) == 0 {
			continue
		}
		cn.Sinks = sinkSlab[si : si+len(n.Sinks) : si+len(n.Sinks)]
		for j, p := range n.Sinks {
			pinSlab[si+j] = Pin{Cell: cellByID[p.Cell.ID], Index: p.Index}
			cn.Sinks[j] = &pinSlab[si+j]
		}
		si += len(n.Sinks)
	}

	out.Inputs = make([]*Net, len(nl.Inputs))
	for i, n := range nl.Inputs {
		out.Inputs[i] = netByID[n.ID]
	}
	out.Outputs = make([]*Net, len(nl.Outputs))
	for i, n := range nl.Outputs {
		out.Outputs[i] = netByID[n.ID]
	}
	if nl.ClkNet != nil {
		out.ClkNet = netByID[nl.ClkNet.ID]
	}
	if nl.RstNet != nil {
		out.RstNet = netByID[nl.RstNet.ID]
	}
	return out
}
