package netlist

import (
	"bytes"
	"testing"

	"repro/internal/liberty"
)

// TestCodecRoundTrip: Decode(Encode(nl)) reproduces the netlist with the
// same exactness contract as Clone — IDs, slice orders, sink orders,
// generations, ID bounds, and structural verilog all preserved.
func TestCodecRoundTrip(t *testing.T) {
	nl := cloneTestNetlist(t)
	nl.Groups["scratch"] = 0 // survive an empty group entry too

	blob := Encode(nl)
	cp, err := Decode(blob, nl.Lib)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if err := cp.Check(); err != nil {
		t.Fatalf("decoded netlist fails invariant check: %v", err)
	}
	if cp.Name != nl.Name || cp.Lib != nl.Lib {
		t.Fatalf("name/lib mismatch: %q vs %q", cp.Name, nl.Name)
	}
	if cp.Gen() != nl.Gen() || cp.TopoGen() != nl.TopoGen() {
		t.Fatalf("generations not preserved: (%d,%d) vs (%d,%d)",
			cp.Gen(), cp.TopoGen(), nl.Gen(), nl.TopoGen())
	}
	if cp.NetIDBound() != nl.NetIDBound() || cp.CellIDBound() != nl.CellIDBound() {
		t.Fatalf("ID bounds not preserved")
	}
	if len(cp.Groups) != len(nl.Groups) {
		t.Fatalf("group counts differ: %d vs %d", len(cp.Groups), len(nl.Groups))
	}
	for g, n := range nl.Groups {
		if cp.Groups[g] != n {
			t.Fatalf("group %q count %d, want %d", g, cp.Groups[g], n)
		}
	}
	if len(cp.Cells) != len(nl.Cells) || len(cp.Nets) != len(nl.Nets) {
		t.Fatalf("object counts differ")
	}
	for i := range nl.Cells {
		a, b := nl.Cells[i], cp.Cells[i]
		if a.ID != b.ID || a.Name != b.Name || a.Ref != b.Ref || a.Module != b.Module ||
			a.Group != b.Group || a.Fixed != b.Fixed {
			t.Fatalf("cell %d fields differ: %+v vs %+v", i, a, b)
		}
		if len(a.Inputs) != len(b.Inputs) {
			t.Fatalf("cell %d input counts differ", i)
		}
		for j := range a.Inputs {
			if a.Inputs[j].ID != b.Inputs[j].ID {
				t.Fatalf("cell %d input %d net ID differs", i, j)
			}
		}
		if a.Output.ID != b.Output.ID {
			t.Fatalf("cell %d output net ID differs", i)
		}
		if (a.Clock == nil) != (b.Clock == nil) || (a.Reset == nil) != (b.Reset == nil) {
			t.Fatalf("cell %d clock/reset shape differs", i)
		}
		if a.Clock != nil && a.Clock.ID != b.Clock.ID {
			t.Fatalf("cell %d clock net differs", i)
		}
	}
	for i := range nl.Nets {
		a, b := nl.Nets[i], cp.Nets[i]
		if a.ID != b.ID || a.Name != b.Name || a.PI != b.PI || a.PO != b.PO ||
			a.Const != b.Const || a.Val != b.Val || a.IsClk != b.IsClk || a.IsRst != b.IsRst {
			t.Fatalf("net %d fields differ", i)
		}
		if len(a.Sinks) != len(b.Sinks) {
			t.Fatalf("net %d sink counts differ", i)
		}
		for j := range a.Sinks {
			if a.Sinks[j].Cell.ID != b.Sinks[j].Cell.ID || a.Sinks[j].Index != b.Sinks[j].Index {
				t.Fatalf("net %d sink %d order not preserved", i, j)
			}
		}
		if (a.Driver == nil) != (b.Driver == nil) ||
			(a.Driver != nil && a.Driver.ID != b.Driver.ID) {
			t.Fatalf("net %d driver differs", i)
		}
	}
	if WriteVerilog(cp) != WriteVerilog(nl) {
		t.Fatalf("structural verilog of decoded netlist differs from original")
	}

	// The decoded netlist is fully editable and isolated from the original.
	before := WriteVerilog(nl)
	cp.Ungroup("")
	cp.NewNet("scratch_net")
	if WriteVerilog(nl) != before {
		t.Fatalf("mutating the decoded netlist changed the original")
	}
}

// TestCodecDeterministic: the same netlist always encodes to the same bytes,
// and a decode→re-encode round trip is byte-identical. This is what makes
// checkpoint blobs content-addressable across replicas.
func TestCodecDeterministic(t *testing.T) {
	nl := cloneTestNetlist(t)
	b1, b2 := Encode(nl), Encode(nl)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("two encodes of the same netlist differ")
	}
	cp, err := Decode(b1, nl.Lib)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(Encode(cp), b1) {
		t.Fatalf("re-encode after decode is not byte-identical")
	}
	b3 := Encode(nl.Clone())
	if !bytes.Equal(b3, b1) {
		t.Fatalf("encode of a clone differs from encode of the original")
	}
}

// TestCodecRejectsCorruption: no prefix truncation, byte flip, or trailing
// garbage may panic or decode successfully into a netlist that fails Check.
func TestCodecRejectsCorruption(t *testing.T) {
	nl := cloneTestNetlist(t)
	blob := Encode(nl)

	for n := 0; n < len(blob); n++ {
		if _, err := Decode(blob[:n], nl.Lib); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", n)
		}
	}
	if _, err := Decode(append(append([]byte{}, blob...), 0xFF), nl.Lib); err == nil {
		t.Fatalf("trailing byte decoded successfully")
	}
	for i := 0; i < len(blob); i++ {
		mut := append([]byte{}, blob...)
		mut[i] ^= 0x41
		cp, err := Decode(mut, nl.Lib)
		if err != nil {
			continue
		}
		// A flip in a name or flag byte can decode; it must still be a
		// structurally sound netlist, never a half-built one.
		if err := cp.Check(); err != nil {
			t.Fatalf("flip at byte %d decoded into inconsistent netlist: %v", i, err)
		}
	}
}

// TestCodecUnknownLibraryCell: a blob referencing a cell the decoder's
// library does not have is an error, not a nil Ref.
func TestCodecUnknownLibraryCell(t *testing.T) {
	nl := cloneTestNetlist(t)
	var victim string
	for _, c := range nl.Cells {
		victim = c.Ref.Name
		break
	}
	blob := bytes.Replace(Encode(nl), []byte(victim), []byte("ZZZZ"+victim[4:]), 1)
	if _, err := Decode(blob, liberty.Nangate45()); err == nil {
		t.Fatalf("unknown library cell decoded successfully")
	}
}

func FuzzDecode(f *testing.F) {
	nl := cloneTestNetlist(f)
	blob := Encode(nl)
	f.Add(blob)
	f.Add(blob[:len(blob)/2])
	f.Add([]byte(codecMagic))
	f.Add([]byte{})
	lib := nl.Lib
	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := Decode(data, lib)
		if err != nil {
			return
		}
		if err := cp.Check(); err != nil {
			t.Fatalf("decoded netlist fails invariant check: %v", err)
		}
	})
}
