package netlist

import (
	"testing"

	"repro/internal/liberty"
	"repro/internal/verilog"
)

// cloneTestNetlist elaborates a small sequential design with hierarchy so
// the clone has flops, a clock, a reset-free path, and groups to copy.
func cloneTestNetlist(t testing.TB) *Netlist {
	t.Helper()
	src := `
module add (input [3:0] a, input [3:0] b, output [3:0] y);
  assign y = a + b;
endmodule
module top (input clk, input [3:0] a, input [3:0] b, output [3:0] q);
  wire [3:0] s;
  reg [3:0] r;
  add u0 (.a(a), .b(b), .y(s));
  always @(posedge clk) r <= s;
  assign q = r;
endmodule
`
	f, err := verilog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := Elaborate(f, "top", nil, liberty.Nangate45())
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

func TestCloneExactCopy(t *testing.T) {
	nl := cloneTestNetlist(t)
	cp := nl.Clone()

	if err := cp.Check(); err != nil {
		t.Fatalf("clone fails invariant check: %v", err)
	}
	if cp.Name != nl.Name || cp.Lib != nl.Lib {
		t.Fatalf("name/lib mismatch: %q %p vs %q %p", cp.Name, cp.Lib, nl.Name, nl.Lib)
	}
	if cp.Gen() != nl.Gen() || cp.TopoGen() != nl.TopoGen() {
		t.Fatalf("generations not preserved: (%d,%d) vs (%d,%d)", cp.Gen(), cp.TopoGen(), nl.Gen(), nl.TopoGen())
	}
	if cp.NetIDBound() != nl.NetIDBound() || cp.CellIDBound() != nl.CellIDBound() {
		t.Fatalf("ID bounds not preserved")
	}
	if len(cp.Cells) != len(nl.Cells) || len(cp.Nets) != len(nl.Nets) {
		t.Fatalf("object counts differ: %d/%d cells, %d/%d nets",
			len(cp.Cells), len(nl.Cells), len(cp.Nets), len(nl.Nets))
	}
	for i := range nl.Cells {
		a, b := nl.Cells[i], cp.Cells[i]
		if a == b {
			t.Fatalf("cell %d aliases the original", i)
		}
		if a.ID != b.ID || a.Name != b.Name || a.Ref != b.Ref || a.Module != b.Module ||
			a.Group != b.Group || a.Fixed != b.Fixed {
			t.Fatalf("cell %d fields differ: %+v vs %+v", i, a, b)
		}
		if len(a.Inputs) != len(b.Inputs) {
			t.Fatalf("cell %d input counts differ", i)
		}
		for j := range a.Inputs {
			if a.Inputs[j].ID != b.Inputs[j].ID {
				t.Fatalf("cell %d input %d net ID differs", i, j)
			}
			if a.Inputs[j] == b.Inputs[j] {
				t.Fatalf("cell %d input %d aliases the original net", i, j)
			}
		}
		if a.Output.ID != b.Output.ID {
			t.Fatalf("cell %d output net ID differs", i)
		}
		if (a.Clock == nil) != (b.Clock == nil) || (a.Reset == nil) != (b.Reset == nil) {
			t.Fatalf("cell %d clock/reset shape differs", i)
		}
	}
	for i := range nl.Nets {
		a, b := nl.Nets[i], cp.Nets[i]
		if a == b {
			t.Fatalf("net %d aliases the original", i)
		}
		if a.ID != b.ID || a.Name != b.Name || a.PI != b.PI || a.PO != b.PO ||
			a.Const != b.Const || a.Val != b.Val || a.IsClk != b.IsClk || a.IsRst != b.IsRst {
			t.Fatalf("net %d fields differ", i)
		}
		if len(a.Sinks) != len(b.Sinks) {
			t.Fatalf("net %d sink counts differ", i)
		}
		for j := range a.Sinks {
			if a.Sinks[j].Cell.ID != b.Sinks[j].Cell.ID || a.Sinks[j].Index != b.Sinks[j].Index {
				t.Fatalf("net %d sink %d order not preserved", i, j)
			}
		}
		if (a.Driver == nil) != (b.Driver == nil) {
			t.Fatalf("net %d driver shape differs", i)
		}
		if a.Driver != nil && a.Driver.ID != b.Driver.ID {
			t.Fatalf("net %d driver differs", i)
		}
	}
	if (nl.ClkNet == nil) != (cp.ClkNet == nil) {
		t.Fatalf("clk net shape differs")
	}
	if nl.ClkNet != nil && nl.ClkNet == cp.ClkNet {
		t.Fatalf("clk net aliases the original")
	}
	if WriteVerilog(cp) != WriteVerilog(nl) {
		t.Fatalf("structural verilog of clone differs from original")
	}
}

// TestCloneIsolation mutates clone and original independently and checks
// that neither observes the other's edits.
func TestCloneIsolation(t *testing.T) {
	nl := cloneTestNetlist(t)
	before := WriteVerilog(nl)
	cp := nl.Clone()

	// Mutate the clone: resize a cell, ungroup, remove a cell, add a buffer.
	for _, c := range cp.Cells {
		if c.IsSeq() {
			continue
		}
		if up := cp.Lib.Upsize(c.Ref); up != c.Ref {
			if err := cp.Resize(c, up); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	cp.Ungroup("")
	cp.NewNet("scratch")

	if got := WriteVerilog(nl); got != before {
		t.Fatalf("mutating the clone changed the original netlist")
	}
	if err := nl.Check(); err != nil {
		t.Fatalf("original fails check after clone mutation: %v", err)
	}
	for _, c := range nl.Cells {
		if c.Group == "" && nl.Groups[""] == 0 {
			t.Fatalf("original cell %s lost its group", c.Name)
		}
	}

	// Mutate the original; the clone's structure must not move either.
	cpBefore := WriteVerilog(cp)
	nl.Ungroup("")
	nl.NewNet("scratch2")
	if got := WriteVerilog(cp); got != cpBefore {
		t.Fatalf("mutating the original changed the clone")
	}
	if err := cp.Check(); err != nil {
		t.Fatalf("clone fails check after original mutation: %v", err)
	}
}
