package netlist

import (
	"fmt"

	"repro/internal/liberty"
)

// builder creates gates with elaboration-time constant folding, the way a
// synthesis frontend folds constants while building generic logic.
type builder struct {
	nl     *Netlist
	group  string
	module string
	const0 *Net
	const1 *Net
}

func newBuilder(nl *Netlist, group, module string) *builder {
	return &builder{nl: nl, group: group, module: module}
}

func (b *builder) c0() *Net {
	if b.const0 == nil {
		b.const0 = b.nl.NewConst(false)
	}
	return b.const0
}

func (b *builder) c1() *Net {
	if b.const1 == nil {
		b.const1 = b.nl.NewConst(true)
	}
	return b.const1
}

func (b *builder) constNet(v bool) *Net {
	if v {
		return b.c1()
	}
	return b.c0()
}

// cell instantiates the weakest library cell of a kind.
func (b *builder) cell(kind liberty.Kind, ins ...*Net) (*Net, error) {
	ref := b.nl.Lib.Weakest(kind)
	if ref == nil {
		return nil, fmt.Errorf("library has no %s cell", kind)
	}
	c, err := b.nl.AddCell(ref, b.group, b.module, ins...)
	if err != nil {
		return nil, err
	}
	return c.Output, nil
}

// inv builds NOT with folding.
func (b *builder) inv(a *Net) (*Net, error) {
	if a.Const {
		return b.constNet(!a.Val), nil
	}
	return b.cell(liberty.KindInv, a)
}

// gate2 builds a two-input gate with constant folding. Pure-alias outcomes
// (e.g. AND with 1) return the surviving input net directly.
func (b *builder) gate2(kind liberty.Kind, x, y *Net) (*Net, error) {
	if x.Const && y.Const {
		return b.constNet(eval2(kind, x.Val, y.Val)), nil
	}
	if y.Const {
		x, y = y, x
	}
	if x.Const {
		switch kind {
		case liberty.KindAnd2:
			if !x.Val {
				return b.c0(), nil
			}
			return y, nil
		case liberty.KindOr2:
			if x.Val {
				return b.c1(), nil
			}
			return y, nil
		case liberty.KindNand2:
			if !x.Val {
				return b.c1(), nil
			}
			return b.inv(y)
		case liberty.KindNor2:
			if x.Val {
				return b.c0(), nil
			}
			return b.inv(y)
		case liberty.KindXor2:
			if !x.Val {
				return y, nil
			}
			return b.inv(y)
		case liberty.KindXnor2:
			if x.Val {
				return y, nil
			}
			return b.inv(y)
		}
	}
	return b.cell(kind, x, y)
}

func eval2(kind liberty.Kind, a, bv bool) bool {
	switch kind {
	case liberty.KindAnd2:
		return a && bv
	case liberty.KindOr2:
		return a || bv
	case liberty.KindNand2:
		return !(a && bv)
	case liberty.KindNor2:
		return !(a || bv)
	case liberty.KindXor2:
		return a != bv
	case liberty.KindXnor2:
		return a == bv
	}
	return false
}

// mux builds sel ? hi : lo with folding. MUX2 pin order: (lo, hi, sel).
func (b *builder) mux(sel, lo, hi *Net) (*Net, error) {
	if sel.Const {
		if sel.Val {
			return hi, nil
		}
		return lo, nil
	}
	if lo == hi {
		return lo, nil
	}
	if lo.Const && hi.Const {
		// Both constant but different: mux degenerates to sel or ~sel.
		if hi.Val && !lo.Val {
			return sel, nil
		}
		return b.inv(sel)
	}
	return b.cell(liberty.KindMux2, lo, hi, sel)
}

// reduce builds a balanced reduction tree of a 2-input kind.
func (b *builder) reduce(kind liberty.Kind, bits []*Net) (*Net, error) {
	if len(bits) == 0 {
		return nil, fmt.Errorf("empty reduction")
	}
	level := append([]*Net(nil), bits...)
	for len(level) > 1 {
		var next []*Net
		for i := 0; i+1 < len(level); i += 2 {
			g, err := b.gate2(kind, level[i], level[i+1])
			if err != nil {
				return nil, err
			}
			next = append(next, g)
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	return level[0], nil
}

// ext zero-extends or truncates a bit vector to width w.
func (b *builder) ext(bits []*Net, w int) []*Net {
	if len(bits) >= w {
		return bits[:w]
	}
	out := make([]*Net, w)
	copy(out, bits)
	for i := len(bits); i < w; i++ {
		out[i] = b.c0()
	}
	return out
}

// adder builds a ripple-carry adder: sum = a + b + cin, returning sum bits
// and the carry out. a and b must be the same width.
func (b *builder) adder(a, y []*Net, cin *Net) (sum []*Net, cout *Net, err error) {
	if len(a) != len(y) {
		return nil, nil, fmt.Errorf("adder width mismatch %d vs %d", len(a), len(y))
	}
	carry := cin
	sum = make([]*Net, len(a))
	for i := range a {
		axb, err := b.gate2(liberty.KindXor2, a[i], y[i])
		if err != nil {
			return nil, nil, err
		}
		s, err := b.gate2(liberty.KindXor2, axb, carry)
		if err != nil {
			return nil, nil, err
		}
		sum[i] = s
		// carry = a&b | carry&(a^b)
		ab, err := b.gate2(liberty.KindAnd2, a[i], y[i])
		if err != nil {
			return nil, nil, err
		}
		cx, err := b.gate2(liberty.KindAnd2, carry, axb)
		if err != nil {
			return nil, nil, err
		}
		carry, err = b.gate2(liberty.KindOr2, ab, cx)
		if err != nil {
			return nil, nil, err
		}
	}
	return sum, carry, nil
}

// sub builds a - b (two's complement), returning difference and
// "no-borrow" (carry out; 1 means a >= b).
func (b *builder) sub(a, y []*Net) (diff []*Net, geq *Net, err error) {
	nb := make([]*Net, len(y))
	for i, bit := range y {
		inv, err := b.inv(bit)
		if err != nil {
			return nil, nil, err
		}
		nb[i] = inv
	}
	return b.adderWrap(a, nb, b.c1())
}

func (b *builder) adderWrap(a, y []*Net, cin *Net) ([]*Net, *Net, error) {
	return b.adder(a, y, cin)
}

// multiplier builds an array multiplier; result width = len(a)+len(y),
// optionally truncated by the caller.
func (b *builder) multiplier(a, y []*Net) ([]*Net, error) {
	w := len(a) + len(y)
	acc := make([]*Net, w)
	for i := range acc {
		acc[i] = b.c0()
	}
	for j, yb := range y {
		// Partial product: (a AND y[j]) << j, added into acc.
		pp := make([]*Net, w)
		for i := range pp {
			pp[i] = b.c0()
		}
		for i, ab := range a {
			if i+j >= w {
				break
			}
			g, err := b.gate2(liberty.KindAnd2, ab, yb)
			if err != nil {
				return nil, err
			}
			pp[i+j] = g
		}
		sum, _, err := b.adder(acc, pp, b.c0())
		if err != nil {
			return nil, err
		}
		acc = sum
	}
	return acc, nil
}

// shiftConst shifts bits left (positive) or right (negative) by |k|,
// filling with zeros.
func (b *builder) shiftConst(bits []*Net, k int) []*Net {
	w := len(bits)
	out := make([]*Net, w)
	for i := range out {
		src := i - k
		if src >= 0 && src < w {
			out[i] = bits[src]
		} else {
			out[i] = b.c0()
		}
	}
	return out
}

// barrel builds a variable shifter (left if dirLeft) using MUX2 stages.
func (b *builder) barrel(bits []*Net, amt []*Net, dirLeft bool) ([]*Net, error) {
	cur := bits
	for stage := 0; stage < len(amt); stage++ {
		k := 1 << stage
		if k >= len(bits)*2 {
			break
		}
		if !dirLeft {
			k = -k
		}
		shifted := b.shiftConst(cur, k)
		next := make([]*Net, len(cur))
		for i := range cur {
			m, err := b.mux(amt[stage], cur[i], shifted[i])
			if err != nil {
				return nil, err
			}
			next[i] = m
		}
		cur = next
	}
	return cur, nil
}

// eqZero returns a net that is 1 when all bits are 0.
func (b *builder) eqZero(bits []*Net) (*Net, error) {
	any, err := b.reduce(liberty.KindOr2, bits)
	if err != nil {
		return nil, err
	}
	return b.inv(any)
}

// boolVal reduces a vector to a single truth bit (OR-reduction).
func (b *builder) boolVal(bits []*Net) (*Net, error) {
	if len(bits) == 1 {
		return bits[0], nil
	}
	return b.reduce(liberty.KindOr2, bits)
}
