package netlist

import (
	"strings"
	"testing"

	"repro/internal/liberty"
	"repro/internal/verilog"
)

const writerTestSrc = `
module wt(input clk, input [3:0] a, input [3:0] b, input s, output [4:0] y, output r);
    reg [4:0] y;
    wire [4:0] sum;
    assign sum = a + b;
    always @(posedge clk) y <= s ? sum : {1'b0, a ^ b};
    assign r = a[0] & b[3];
endmodule
`

func elabSrc(t *testing.T, src, top string) *Netlist {
	t.Helper()
	f, err := verilog.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	nl, err := Elaborate(f, top, nil, liberty.Nangate45())
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	return nl
}

func TestWriteVerilogReparses(t *testing.T) {
	nl := elabSrc(t, writerTestSrc, "wt")
	out := WriteVerilog(nl)
	for _, want := range []string{"module wt(", "endmodule", "DFF_X1", "input clk;"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// The written netlist must re-parse and re-elaborate.
	f, err := verilog.Parse(out)
	if err != nil {
		t.Fatalf("written netlist does not parse: %v\n%s", err, out[:min(len(out), 2000)])
	}
	re, err := Elaborate(f, "wt", nil, liberty.Nangate45())
	if err != nil {
		t.Fatalf("written netlist does not elaborate: %v", err)
	}
	if re.SeqCount() != nl.SeqCount() {
		t.Errorf("register count changed: %d -> %d", nl.SeqCount(), re.SeqCount())
	}
	// Ports survive (with vector bits flattened to name_index).
	if len(re.Inputs) != len(nl.Inputs) {
		t.Errorf("input count changed: %d -> %d", len(nl.Inputs), len(re.Inputs))
	}
	if len(re.Outputs) != len(nl.Outputs) {
		t.Errorf("output count changed: %d -> %d", len(nl.Outputs), len(re.Outputs))
	}
}

func TestWriteVerilogConstants(t *testing.T) {
	nl := elabSrc(t, `
module c(input a, output y0, output y1, output z);
    assign y0 = 1'b0;
    assign y1 = 1'b1;
    assign z = a & 1'b1;
endmodule`, "c")
	out := WriteVerilog(nl)
	f, err := verilog.Parse(out)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, out)
	}
	if _, err := Elaborate(f, "c", nil, liberty.Nangate45()); err != nil {
		t.Fatalf("elaborate: %v", err)
	}
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"a[3]":   "a_3",
		"plain":  "plain",
		"1bad":   "n1bad",
		"u/x.y":  "u_x_y",
		"":       "n_unnamed",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLeafModulesCoverAllKinds(t *testing.T) {
	lib := liberty.Nangate45()
	for _, c := range lib.Cells() {
		text := leafModule(c)
		if !strings.Contains(text, "module "+c.Name) || !strings.Contains(text, "endmodule") {
			t.Errorf("leaf for %s malformed", c.Name)
		}
		if _, err := verilog.Parse(text); err != nil {
			t.Errorf("leaf for %s does not parse: %v\n%s", c.Name, err, text)
		}
	}
}
