package netlist

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/liberty"
)

// buildChain makes in -> INV -> AND(in, .) -> out for edit-op tests.
func buildChain(t *testing.T) (*Netlist, *Cell, *Cell) {
	t.Helper()
	lib := liberty.Nangate45()
	nl := New("t", lib)
	in := nl.NewNet("in")
	in.PI = true
	nl.Inputs = append(nl.Inputs, in)
	inv, err := nl.AddCell(lib.Cell("INV_X1"), "g", "m", in)
	if err != nil {
		t.Fatal(err)
	}
	and, err := nl.AddCell(lib.Cell("AND2_X1"), "g", "m", inv.Output, in)
	if err != nil {
		t.Fatal(err)
	}
	and.Output.PO = true
	nl.Outputs = append(nl.Outputs, and.Output)
	if err := nl.Check(); err != nil {
		t.Fatal(err)
	}
	return nl, inv, and
}

func TestAddCellWrongInputCount(t *testing.T) {
	lib := liberty.Nangate45()
	nl := New("t", lib)
	a := nl.NewNet("a")
	if _, err := nl.AddCell(lib.Cell("AND2_X1"), "", "m", a); err == nil {
		t.Error("AND2 with one input must fail")
	}
}

func TestSetInputRewires(t *testing.T) {
	nl, inv, and := buildChain(t)
	n2 := nl.NewNet("n2")
	n2.PI = true
	nl.SetInput(and, 0, n2)
	if and.Inputs[0] != n2 {
		t.Error("input not replaced")
	}
	if len(inv.Output.Sinks) != 0 {
		t.Error("old net keeps stale sink")
	}
	found := false
	for _, p := range n2.Sinks {
		if p.Cell == and && p.Index == 0 {
			found = true
		}
	}
	if !found {
		t.Error("new net missing sink")
	}
}

func TestResizeKindMismatch(t *testing.T) {
	nl, inv, _ := buildChain(t)
	if err := nl.Resize(inv, nl.Lib.Cell("AND2_X1")); err == nil {
		t.Error("cross-kind resize must fail")
	}
	if err := nl.Resize(inv, nl.Lib.Cell("INV_X4")); err != nil {
		t.Errorf("same-kind resize failed: %v", err)
	}
	if inv.Ref.Name != "INV_X4" {
		t.Error("resize did not apply")
	}
}

func TestReplaceCell(t *testing.T) {
	nl, inv, _ := buildChain(t)
	// INV -> BUF keeps the output net and sink bookkeeping.
	in := inv.Inputs[0]
	if err := nl.ReplaceCell(inv, nl.Lib.Cell("BUF_X1"), in); err != nil {
		t.Fatal(err)
	}
	if err := nl.Check(); err != nil {
		t.Fatal(err)
	}
	if inv.Ref.Kind != liberty.KindBuf {
		t.Error("kind not replaced")
	}
	// Wrong input count rejected.
	if err := nl.ReplaceCell(inv, nl.Lib.Cell("AND2_X1"), in); err == nil {
		t.Error("AND2 with 1 input must fail")
	}
}

func TestMoveOutput(t *testing.T) {
	nl, inv, _ := buildChain(t)
	free := nl.NewNet("free")
	old := inv.Output
	if err := nl.MoveOutput(inv, free); err != nil {
		t.Fatal(err)
	}
	if free.Driver != inv || inv.Output != free {
		t.Error("output not moved")
	}
	if old.Driver != nil {
		t.Error("old output keeps driver")
	}
	// Occupied target rejected.
	if err := nl.MoveOutput(inv, nl.Outputs[0]); err == nil {
		t.Error("moving onto a driven net must fail")
	}
	pi := nl.Inputs[0]
	if err := nl.MoveOutput(inv, pi); err == nil {
		t.Error("moving onto a PI must fail")
	}
}

func TestRemoveCellDetaches(t *testing.T) {
	nl, inv, and := buildChain(t)
	in := inv.Inputs[0]
	nl.ReplaceNet(inv.Output, in) // rewire AND first so Check stays happy
	nl.RemoveCell(inv)
	if len(nl.Cells) != 1 {
		t.Fatalf("cells = %d", len(nl.Cells))
	}
	if err := nl.Check(); err != nil {
		t.Fatal(err)
	}
	if and.Inputs[0] != in {
		t.Error("sink not rewired")
	}
}

func TestUngroupPrefix(t *testing.T) {
	lib := liberty.Nangate45()
	nl := New("t", lib)
	in := nl.NewNet("in")
	in.PI = true
	mk := func(group string) *Cell {
		c, err := nl.AddCell(lib.Cell("INV_X1"), group, "m", in)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a := mk("u_a")
	b := mk("u_a/u_sub")
	c := mk("u_ab") // shares "u_a" as string prefix but not path prefix
	n := nl.Ungroup("u_a")
	if n != 2 {
		t.Fatalf("ungrouped %d cells, want 2", n)
	}
	if a.Group != "" || b.Group != "" {
		t.Error("u_a subtree not flattened")
	}
	if c.Group != "u_ab" {
		t.Error("u_ab wrongly flattened (string-prefix bug)")
	}
}

func TestSummaryAndLeakage(t *testing.T) {
	nl, _, _ := buildChain(t)
	s := nl.Summary()
	if s.Cells != 2 || s.Comb != 2 || s.Seq != 0 {
		t.Errorf("summary %+v", s)
	}
	if s.ByKind[liberty.KindInv] != 1 || s.ByKind[liberty.KindAnd2] != 1 {
		t.Errorf("kind mix %v", s.ByKind)
	}
	if s.MaxFanout < 2 {
		t.Errorf("max fanout %d (in drives inv + and)", s.MaxFanout)
	}
	if nl.Leakage() <= 0 || nl.Area() <= 0 {
		t.Error("area/leakage must be positive")
	}
}

func TestCheckCatchesCorruption(t *testing.T) {
	nl, inv, _ := buildChain(t)
	// Manually corrupt: steal a sink entry.
	in := inv.Inputs[0]
	in.Sinks = in.Sinks[:0]
	if err := nl.Check(); err == nil {
		t.Error("Check must catch sink-list corruption")
	}
}

// Property: a randomly built DAG of gates always passes Check, and
// ReplaceNet keeps it consistent.
func TestRandomDAGEditsStayConsistent(t *testing.T) {
	lib := liberty.Nangate45()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nl := New("r", lib)
		nets := []*Net{}
		for i := 0; i < 4; i++ {
			n := nl.NewNet("")
			n.PI = true
			nl.Inputs = append(nl.Inputs, n)
			nets = append(nets, n)
		}
		kinds := []string{"INV_X1", "AND2_X1", "OR2_X1", "XOR2_X1", "NAND2_X1"}
		for i := 0; i < 12; i++ {
			ref := lib.Cell(kinds[rng.Intn(len(kinds))])
			ins := make([]*Net, liberty.KindInputs[ref.Kind])
			for j := range ins {
				ins[j] = nets[rng.Intn(len(nets))]
			}
			c, err := nl.AddCell(ref, "", "r", ins...)
			if err != nil {
				return false
			}
			nets = append(nets, c.Output)
		}
		if nl.Check() != nil {
			return false
		}
		// Random ReplaceNet of a driven net onto another (may create
		// dangling cells, which is legal).
		for k := 0; k < 3; k++ {
			a := nets[rng.Intn(len(nets))]
			b := nets[rng.Intn(len(nets))]
			if a == b || b.Driver == nil && !b.PI {
				continue
			}
			nl.ReplaceNet(a, b)
		}
		return nl.Check() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
