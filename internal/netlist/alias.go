package netlist

import "fmt"

// aliaser is a union-find over nets. Continuous assignments, port bindings,
// and register outputs unify nets; materialize resolves every cell
// connection to its class root and rebuilds sink lists, catching multiple
// drivers and driven constants/inputs along the way.
type aliaser struct {
	parent []*Net // indexed by Net.ID; nil means the net is its class root
}

func newAliaser() *aliaser { return &aliaser{} }

func (a *aliaser) parentOf(n *Net) *Net {
	if n.ID < len(a.parent) {
		return a.parent[n.ID]
	}
	return nil
}

func (a *aliaser) setParent(n, root *Net) {
	if n.ID >= len(a.parent) {
		grown := make([]*Net, n.ID+n.ID/2+16)
		copy(grown, a.parent)
		a.parent = grown
	}
	a.parent[n.ID] = root
}

func (a *aliaser) find(n *Net) *Net {
	root := n
	for {
		p := a.parentOf(root)
		if p == nil {
			break
		}
		root = p
	}
	// Path compression.
	for n != root {
		next := a.parent[n.ID]
		a.parent[n.ID] = root
		n = next
	}
	return root
}

// rank orders root preference: constants and primary inputs must stay roots
// so their identity survives; named nets beat anonymous ones.
func rank(n *Net) int {
	switch {
	case n.Const:
		return 4
	case n.PI:
		return 3
	case n.PO:
		return 2
	case n.Name != "" && n.Name[0] != 'n':
		return 1
	}
	return 0
}

// union merges the classes of x and y, checking driver legality.
func (a *aliaser) union(x, y *Net) error {
	rx, ry := a.find(x), a.find(y)
	if rx == ry {
		return nil
	}
	if rank(ry) > rank(rx) {
		rx, ry = ry, rx
	}
	// rx becomes the root; fold ry's facts into it.
	if rx.Const && ry.Const {
		if rx.Val != ry.Val {
			return fmt.Errorf("net %s: conflicting constant drivers", rx.Name)
		}
	}
	if ry.Const && !rx.Const {
		// ry outranks unless rx is const; by rank, const is max, so this
		// only happens when both were const (handled) — defensive:
		rx.Const, rx.Val = true, ry.Val
	}
	if rx.Driver != nil && ry.Driver != nil {
		return fmt.Errorf("net %s: multiple drivers (%s and %s)", rx.Name, rx.Driver.Name, ry.Driver.Name)
	}
	if ry.Driver != nil {
		if rx.Const {
			return fmt.Errorf("net %s: cell %s drives a constant net", rx.Name, ry.Driver.Name)
		}
		if rx.PI {
			return fmt.Errorf("net %s: cell %s drives a primary input", rx.Name, ry.Driver.Name)
		}
		rx.Driver = ry.Driver
	}
	if ry.PI {
		if rx.Driver != nil {
			return fmt.Errorf("net %s: primary input aliased with driven net", ry.Name)
		}
		if rx.Const {
			return fmt.Errorf("net %s: primary input aliased with constant", ry.Name)
		}
		if rx.PI {
			return fmt.Errorf("nets %s and %s: two primary inputs shorted", rx.Name, ry.Name)
		}
		rx.PI = true
		rx.Name = ry.Name
	}
	if rx.Const && ry.PI {
		return fmt.Errorf("net %s: primary input aliased with constant", ry.Name)
	}
	rx.PO = rx.PO || ry.PO
	rx.IsClk = rx.IsClk || ry.IsClk
	rx.IsRst = rx.IsRst || ry.IsRst
	if rx.Name == "" || (len(rx.Name) > 0 && rx.Name[0] == 'n' && ry.Name != "" && ry.Name[0] != 'n') {
		if ry.Name != "" {
			rx.Name = ry.Name
		}
	}
	a.setParent(ry, rx)
	return nil
}

// materialize resolves aliases into the final netlist: every cell port is
// rewritten to its class root, sink lists are rebuilt, the primary
// input/output lists are canonicalized, and the clock/reset nets are
// identified. The nets list keeps only live roots.
func (el *elab) materialize() error {
	nl := el.nl
	for _, n := range nl.Nets {
		n.Sinks = nil
	}
	// Pass 1: resolve every cell port to its class root, check driver
	// legality, and count sinks per root so pass 2 can carve all sink lists
	// out of one slab instead of growing each with per-pin allocations.
	sinkCount := make([]int32, nl.nextNet)
	totalSinks := 0
	for _, c := range nl.Cells {
		out := el.al.find(c.Output)
		if out.Driver != nil && out.Driver != c {
			return fmt.Errorf("net %s: multiple drivers (%s and %s)", out.Name, out.Driver.Name, c.Name)
		}
		if out.Const {
			return fmt.Errorf("net %s: cell %s drives a constant", out.Name, c.Name)
		}
		if out.PI {
			return fmt.Errorf("net %s: cell %s drives a primary input", out.Name, c.Name)
		}
		out.Driver = c
		c.Output = out
		for i, in := range c.Inputs {
			root := el.al.find(in)
			c.Inputs[i] = root
			sinkCount[root.ID]++
			totalSinks++
		}
		if c.Clock != nil {
			c.Clock = el.al.find(c.Clock)
			c.Clock.IsClk = true
		}
		if c.Reset != nil {
			c.Reset = el.al.find(c.Reset)
			c.Reset.IsRst = true
		}
	}

	// Pass 2: rebuild sink lists in the original append order (cells in
	// list order, inputs in pin order), filling preallocated slabs.
	pinSlab := make([]Pin, totalSinks)
	sinkSlab := make([]*Pin, totalSinks)
	off := 0
	for _, n := range nl.Nets {
		cnt := int(sinkCount[n.ID])
		if cnt == 0 {
			continue
		}
		n.Sinks = sinkSlab[off:off:off+cnt]
		off += cnt
	}
	pi := 0
	for _, c := range nl.Cells {
		for i, in := range c.Inputs {
			pinSlab[pi] = Pin{Cell: c, Index: i}
			in.Sinks = append(in.Sinks, &pinSlab[pi])
			pi++
		}
	}

	// Canonicalize output list.
	seen := make([]bool, nl.nextNet)
	outs := nl.Outputs[:0]
	for _, o := range nl.Outputs {
		root := el.al.find(o)
		root.PO = true
		if !seen[root.ID] {
			seen[root.ID] = true
			outs = append(outs, root)
		}
	}
	nl.Outputs = outs
	for _, o := range nl.Outputs {
		if o.Driver == nil && !o.PI && !o.Const {
			return fmt.Errorf("primary output %s is undriven", o.Name)
		}
	}

	// Collect live roots, primary inputs, clock, and reset.
	live := make([]bool, nl.nextNet)
	for _, c := range nl.Cells {
		live[c.Output.ID] = true
		for _, in := range c.Inputs {
			live[in.ID] = true
		}
		if c.Clock != nil {
			live[c.Clock.ID] = true
		}
		if c.Reset != nil {
			live[c.Reset.ID] = true
		}
	}
	for _, o := range nl.Outputs {
		live[o.ID] = true
	}

	nets := make([]*Net, 0, len(nl.Nets))
	for _, n := range nl.Nets {
		if el.al.find(n) != n {
			continue
		}
		if n.PI {
			if n.IsClk {
				if nl.ClkNet != nil && nl.ClkNet != n {
					return fmt.Errorf("multiple clock nets (%s and %s): multi-clock designs not supported", nl.ClkNet.Name, n.Name)
				}
				nl.ClkNet = n
			} else if n.IsRst {
				if nl.RstNet != nil && nl.RstNet != n {
					return fmt.Errorf("multiple reset nets (%s and %s) not supported", nl.RstNet.Name, n.Name)
				}
				nl.RstNet = n
			} else {
				nl.Inputs = append(nl.Inputs, n)
			}
			nets = append(nets, n)
			continue
		}
		if live[n.ID] {
			nets = append(nets, n)
		}
	}
	nl.Nets = nets
	return nl.Check()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
