package netlist

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/liberty"
)

// WriteVerilog emits the mapped netlist as structural Verilog: one gate
// instance per cell, referencing the library cells as leaf modules (with
// behavioural leaf definitions appended so the output is self-contained and
// re-simulatable). This is the synthesis tool's `write -format verilog`
// output, and it round-trips through the frontend: parsing and elaborating
// the written netlist reproduces an equivalent circuit.
func WriteVerilog(nl *Netlist) string {
	var b strings.Builder
	fmt.Fprintf(&b, "// structural netlist written by the synthesis simulator\n")
	fmt.Fprintf(&b, "// design: %s  cells: %d  area: %.2f\n", nl.Name, len(nl.Cells), nl.Area())

	// Port list: clock, reset, inputs, outputs.
	var ports []string
	if nl.ClkNet != nil {
		ports = append(ports, sanitize(nl.ClkNet.Name))
	}
	if nl.RstNet != nil {
		ports = append(ports, sanitize(nl.RstNet.Name))
	}
	for _, n := range nl.Inputs {
		ports = append(ports, sanitize(n.Name))
	}
	for _, n := range nl.Outputs {
		ports = append(ports, sanitize(n.Name))
	}
	fmt.Fprintf(&b, "module %s(%s);\n", nl.Name, strings.Join(ports, ", "))
	if nl.ClkNet != nil {
		fmt.Fprintf(&b, "    input %s;\n", sanitize(nl.ClkNet.Name))
	}
	if nl.RstNet != nil {
		fmt.Fprintf(&b, "    input %s;\n", sanitize(nl.RstNet.Name))
	}
	for _, n := range nl.Inputs {
		fmt.Fprintf(&b, "    input %s;\n", sanitize(n.Name))
	}
	for _, n := range nl.Outputs {
		fmt.Fprintf(&b, "    output %s;\n", sanitize(n.Name))
	}

	// Internal wires.
	declared := map[*Net]bool{nl.ClkNet: true, nl.RstNet: true}
	for _, n := range nl.Inputs {
		declared[n] = true
	}
	for _, n := range nl.Outputs {
		declared[n] = true
	}
	var wires []string
	var const0, const1 bool
	for _, n := range nl.Nets {
		if declared[n] {
			continue
		}
		if n.Const {
			if n.Val {
				const1 = true
			} else {
				const0 = true
			}
			continue
		}
		if n.Driver == nil && len(n.Sinks) == 0 {
			continue
		}
		wires = append(wires, sanitize(n.Name))
	}
	sort.Strings(wires)
	for _, w := range wires {
		fmt.Fprintf(&b, "    wire %s;\n", w)
	}
	if const0 {
		b.WriteString("    wire const0;\n    assign const0 = 1'b0;\n")
	}
	if const1 {
		b.WriteString("    wire const1;\n    assign const1 = 1'b1;\n")
	}

	netRef := func(n *Net) string {
		if n == nil {
			return "1'b0"
		}
		if n.Const {
			if n.Val {
				return "const1"
			}
			return "const0"
		}
		return sanitize(n.Name)
	}

	// Instances, sorted by cell name for stable output.
	cells := append([]*Cell(nil), nl.Cells...)
	sort.Slice(cells, func(i, j int) bool { return cells[i].ID < cells[j].ID })
	for _, c := range cells {
		var conns []string
		for i, in := range c.Inputs {
			conns = append(conns, fmt.Sprintf(".%s(%s)", inputPin(c.Ref.Kind, i), netRef(in)))
		}
		if c.IsSeq() {
			conns = append(conns, fmt.Sprintf(".CK(%s)", netRef(c.Clock)))
			if c.Ref.Kind == liberty.KindDFFR {
				conns = append(conns, fmt.Sprintf(".RN(%s)", netRef(c.Reset)))
			}
			conns = append(conns, fmt.Sprintf(".Q(%s)", netRef(c.Output)))
		} else {
			conns = append(conns, fmt.Sprintf(".Z(%s)", netRef(c.Output)))
		}
		fmt.Fprintf(&b, "    %s %s (%s);\n", c.Ref.Name, c.Name, strings.Join(conns, ", "))
	}
	b.WriteString("endmodule\n\n")

	// Leaf definitions for every referenced library cell, so the netlist is
	// self-contained.
	used := map[*liberty.Cell]bool{}
	for _, c := range nl.Cells {
		used[c.Ref] = true
	}
	var refs []*liberty.Cell
	for r := range used {
		refs = append(refs, r)
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].Name < refs[j].Name })
	for _, r := range refs {
		b.WriteString(leafModule(r))
	}
	return b.String()
}

// inputPin names a cell's i-th logic input the way the library would.
func inputPin(kind liberty.Kind, i int) string {
	if kind.IsSequential() {
		return "D"
	}
	if kind == liberty.KindMux2 {
		return []string{"A", "B", "S"}[i]
	}
	return string(rune('A' + i))
}

// leafModule emits a behavioural definition of a library cell.
func leafModule(r *liberty.Cell) string {
	n := liberty.KindInputs[r.Kind]
	var ins []string
	for i := 0; i < n; i++ {
		ins = append(ins, inputPin(r.Kind, i))
	}
	var b strings.Builder
	if r.Kind.IsSequential() {
		extra := ", CK"
		body := "    always @(posedge CK) Q <= D;\n"
		if r.Kind == liberty.KindDFFR {
			extra = ", CK, RN"
			body = "    always @(posedge CK or posedge RN) begin\n" +
				"        if (RN)\n            Q <= 1'b0;\n        else\n            Q <= D;\n    end\n"
		}
		fmt.Fprintf(&b, "module %s(D%s, Q);\n", r.Name, extra)
		b.WriteString("    input D;\n    input CK;\n")
		if r.Kind == liberty.KindDFFR {
			b.WriteString("    input RN;\n")
		}
		b.WriteString("    output Q;\n    reg Q;\n")
		b.WriteString(body)
		b.WriteString("endmodule\n\n")
		return b.String()
	}

	var expr string
	switch r.Kind {
	case liberty.KindInv:
		expr = "~A"
	case liberty.KindBuf:
		expr = "A"
	case liberty.KindNand2:
		expr = "~(A & B)"
	case liberty.KindNor2:
		expr = "~(A | B)"
	case liberty.KindAnd2:
		expr = "A & B"
	case liberty.KindOr2:
		expr = "A | B"
	case liberty.KindXor2:
		expr = "A ^ B"
	case liberty.KindXnor2:
		expr = "~(A ^ B)"
	case liberty.KindMux2:
		expr = "S ? B : A"
	case liberty.KindAoi21:
		expr = "~((A & B) | C)"
	case liberty.KindOai21:
		expr = "~((A | B) & C)"
	case liberty.KindNand3:
		expr = "~(A & B & C)"
	case liberty.KindNor3:
		expr = "~(A | B | C)"
	case liberty.KindAnd3:
		expr = "A & B & C"
	case liberty.KindOr3:
		expr = "A | B | C"
	case liberty.KindNand4:
		expr = "~(A & B & C & D)"
	case liberty.KindNor4:
		expr = "~(A | B | C | D)"
	case liberty.KindTie0:
		expr = "1'b0"
	case liberty.KindTie1:
		expr = "1'b1"
	default:
		expr = "1'b0"
	}
	if n > 0 {
		fmt.Fprintf(&b, "module %s(%s, Z);\n", r.Name, strings.Join(ins, ", "))
		for _, in := range ins {
			fmt.Fprintf(&b, "    input %s;\n", in)
		}
	} else {
		fmt.Fprintf(&b, "module %s(Z);\n", r.Name)
	}
	fmt.Fprintf(&b, "    output Z;\n    assign Z = %s;\nendmodule\n\n", expr)
	return b.String()
}

// sanitize converts net names like "a[3]" into legal flat identifiers.
func sanitize(name string) string {
	r := strings.NewReplacer("[", "_", "]", "", ".", "_", "/", "_")
	out := r.Replace(name)
	if out == "" {
		return "n_unnamed"
	}
	if out[0] >= '0' && out[0] <= '9' {
		out = "n" + out
	}
	return out
}
