// Package netlist defines the gate-level netlist produced by elaborating
// Verilog RTL onto a target library, and the editing operations the
// synthesis optimizer uses: cell resizing, buffer insertion, gate
// replacement, and constant sweeping. The netlist is the common currency
// between the Verilog frontend, the optimization passes in internal/synth,
// and the timing engine in internal/sta.
package netlist

import (
	"fmt"
	"sort"

	"repro/internal/arena"
	"repro/internal/intern"
	"repro/internal/liberty"
)

// Net is a single-bit wire. Exactly one driver (a cell output, a top-level
// input port, or a constant) and any number of sinks.
type Net struct {
	ID     int
	Name   string
	Driver *Cell   // nil if driven by a primary input or constant
	Sinks  []*Pin  // input pins this net feeds
	PI     bool    // primary input
	PO     bool    // primary output (also listed in Netlist.Outputs)
	Const  bool    // constant net
	Val    bool    // constant value when Const
	IsClk  bool    // net is a clock
	IsRst  bool    // net is an asynchronous reset
}

// Fanout returns the number of sink pins plus one if the net is a primary
// output (the output pad counts as a load).
func (n *Net) Fanout() int {
	fo := len(n.Sinks)
	if n.PO {
		fo++
	}
	return fo
}

// Pin identifies one input pin of a cell.
type Pin struct {
	Cell  *Cell
	Index int // input index within Cell.Inputs
}

// Cell is a library-cell instance.
type Cell struct {
	ID     int
	Name   string
	Ref    *liberty.Cell
	Inputs []*Net // logic inputs (D for flops)
	Output *Net
	Clock  *Net // sequential only
	Reset  *Net // DFFR only
	Module string // defining RTL module name (analysis/reporting)
	Group  string // hierarchical optimization group; "" after ungrouping
	Fixed  bool   // dont_touch
}

// IsSeq reports whether the cell is a flip-flop.
func (c *Cell) IsSeq() bool { return c.Ref.Kind.IsSequential() }

// Netlist is a flattened single-clock gate-level design.
type Netlist struct {
	Name    string
	Lib     *liberty.Library
	Cells   []*Cell
	Nets    []*Net
	Inputs  []*Net // primary inputs (excluding clock/reset)
	Outputs []*Net // primary outputs
	ClkNet  *Net   // the clock, nil for pure combinational designs
	RstNet  *Net   // asynchronous reset, may be nil

	nextNet  int
	nextCell int
	// Groups lists hierarchical group names present (for report_hierarchy
	// and for the ungroup command).
	Groups map[string]int // group -> cell count

	// Edit generations, for cached timing invalidation. gen advances on
	// every timing-relevant edit; topoGen advances only on structural edits
	// (connectivity changes), which force a full re-analysis rather than an
	// incremental update. Delay-only edits (SetRef/Resize) advance gen alone.
	gen     uint64
	topoGen uint64

	// Arenas back the nets, cells, and pins created through this netlist's
	// editing API. Pointers handed out are stable (chunks never move), and
	// the chunks live exactly as long as the netlist — the same lifetime
	// per-object allocations had, at a fraction of the GC-visible objects.
	// Clone() builds its own exact-size slabs and leaves the clone's arenas
	// empty; post-clone edits fill them on demand.
	netArena  arena.Arena[Net]
	cellArena arena.Arena[Cell]
	pinArena  arena.Arena[Pin]
}

// newPin carves an input-pin record from the pin arena.
func (nl *Netlist) newPin(c *Cell, idx int) *Pin {
	p := nl.pinArena.New()
	p.Cell = c
	p.Index = idx
	return p
}

// Gen returns the edit generation: it advances on every timing-relevant
// mutation, structural or delay-only.
func (nl *Netlist) Gen() uint64 { return nl.gen }

// TopoGen returns the structural edit generation: it advances only on
// connectivity changes (cell/net insertion, removal, rewiring).
func (nl *Netlist) TopoGen() uint64 { return nl.topoGen }

// noteTopo records a structural edit.
func (nl *Netlist) noteTopo() { nl.gen++; nl.topoGen++ }

// noteDelay records a delay-only edit (a library-reference swap).
func (nl *Netlist) noteDelay() { nl.gen++ }

// NetIDBound returns an exclusive upper bound on Net.ID values, for callers
// keeping slice-indexed per-net state.
func (nl *Netlist) NetIDBound() int { return nl.nextNet }

// CellIDBound returns an exclusive upper bound on Cell.ID values.
func (nl *Netlist) CellIDBound() int { return nl.nextCell }

// SetRef swaps a cell's library reference in place. Unlike Resize it does
// not check kinds; it exists for the optimization passes, which only ever
// swap between drive variants of one kind, and it records the edit as
// delay-only so cached timing can update incrementally.
func (nl *Netlist) SetRef(c *Cell, ref *liberty.Cell) {
	c.Ref = ref
	nl.noteDelay()
}

// New creates an empty netlist bound to a library.
func New(name string, lib *liberty.Library) *Netlist {
	return &Netlist{Name: name, Lib: lib, Groups: make(map[string]int)}
}

// NewNet allocates a net with an auto-generated or given name.
func (nl *Netlist) NewNet(name string) *Net {
	if name == "" {
		name = intern.Index("n", nl.nextNet)
	}
	n := nl.netArena.New()
	n.ID = nl.nextNet
	n.Name = name
	nl.nextNet++
	nl.Nets = append(nl.Nets, n)
	nl.noteTopo()
	return n
}

// NewConst returns a constant net of the given value.
func (nl *Netlist) NewConst(val bool) *Net {
	n := nl.NewNet("")
	n.Const = true
	n.Val = val
	return n
}

// AddCell creates a cell instance driving a fresh output net.
// inputs must match the kind's input count.
func (nl *Netlist) AddCell(ref *liberty.Cell, group, module string, inputs ...*Net) (*Cell, error) {
	want := liberty.KindInputs[ref.Kind]
	if len(inputs) != want {
		return nil, fmt.Errorf("cell %s: %d inputs, want %d", ref.Name, len(inputs), want)
	}
	out := nl.NewNet("")
	c := nl.cellArena.New()
	c.ID = nl.nextCell
	c.Name = intern.Index("U", nl.nextCell)
	c.Ref = ref
	c.Inputs = inputs
	c.Output = out
	c.Module = module
	c.Group = group
	nl.nextCell++
	out.Driver = c
	for i, in := range inputs {
		in.Sinks = append(in.Sinks, nl.newPin(c, i))
	}
	nl.Cells = append(nl.Cells, c)
	nl.Groups[group]++
	nl.noteTopo()
	return c, nil
}

// SetInput replaces input pin idx of cell c with net n, updating sink lists.
func (nl *Netlist) SetInput(c *Cell, idx int, n *Net) {
	old := c.Inputs[idx]
	if old != nil {
		old.removeSink(c, idx)
	}
	c.Inputs[idx] = n
	n.Sinks = append(n.Sinks, nl.newPin(c, idx))
	nl.noteTopo()
}

func (n *Net) removeSink(c *Cell, idx int) {
	for i, p := range n.Sinks {
		if p.Cell == c && p.Index == idx {
			n.Sinks[i] = n.Sinks[len(n.Sinks)-1]
			n.Sinks = n.Sinks[:len(n.Sinks)-1]
			return
		}
	}
}

// Resize swaps a cell's library reference for another of the same kind.
func (nl *Netlist) Resize(c *Cell, ref *liberty.Cell) error {
	if ref.Kind != c.Ref.Kind {
		return fmt.Errorf("resize %s: kind %s != %s", c.Name, ref.Kind, c.Ref.Kind)
	}
	c.Ref = ref
	nl.noteDelay()
	return nil
}

// ReplaceCell rewires a cell to a new library reference and input set,
// keeping its output net. Used by constant propagation (gate -> TIE/BUF/INV)
// and logic restructuring.
func (nl *Netlist) ReplaceCell(c *Cell, ref *liberty.Cell, inputs ...*Net) error {
	want := liberty.KindInputs[ref.Kind]
	if len(inputs) != want {
		return fmt.Errorf("replace %s with %s: %d inputs, want %d", c.Name, ref.Name, len(inputs), want)
	}
	for i, in := range c.Inputs {
		if in != nil {
			in.removeSink(c, i)
		}
	}
	c.Inputs = inputs
	for i, in := range inputs {
		in.Sinks = append(in.Sinks, nl.newPin(c, i))
	}
	c.Ref = ref
	if !ref.Kind.IsSequential() {
		c.Clock, c.Reset = nil, nil
	}
	nl.noteTopo()
	return nil
}

// MoveOutput redirects cell c to drive net n instead of its current output.
// The old output net is left driverless; n must be driverless and non-const.
func (nl *Netlist) MoveOutput(c *Cell, n *Net) error {
	if n.Driver != nil || n.Const || n.PI {
		return fmt.Errorf("move output of %s: net %s is not a free target", c.Name, n.Name)
	}
	if c.Output != nil && c.Output.Driver == c {
		c.Output.Driver = nil
	}
	c.Output = n
	n.Driver = c
	nl.noteTopo()
	return nil
}

// RemoveCell deletes a cell, detaching its pins. Its output net keeps
// existing but becomes driverless; callers must rewire sinks first.
func (nl *Netlist) RemoveCell(c *Cell) {
	for i, in := range c.Inputs {
		if in != nil {
			in.removeSink(c, i)
		}
	}
	if c.Output != nil && c.Output.Driver == c {
		c.Output.Driver = nil
	}
	nl.Groups[c.Group]--
	nl.noteTopo()
	for i, cc := range nl.Cells {
		if cc == c {
			nl.Cells[i] = nl.Cells[len(nl.Cells)-1]
			nl.Cells = nl.Cells[:len(nl.Cells)-1]
			return
		}
	}
}

// ReplaceNet moves every sink of old onto repl (and primary-output status).
func (nl *Netlist) ReplaceNet(old, repl *Net) {
	for _, p := range old.Sinks {
		p.Cell.Inputs[p.Index] = repl
		repl.Sinks = append(repl.Sinks, p)
	}
	old.Sinks = nil
	if old.PO {
		old.PO = false
		repl.PO = true
		for i, o := range nl.Outputs {
			if o == old {
				nl.Outputs[i] = repl
			}
		}
	}
	nl.noteTopo()
}

// Area returns total cell area in um^2.
func (nl *Netlist) Area() float64 {
	var a float64
	for _, c := range nl.Cells {
		a += c.Ref.Area
	}
	return a
}

// Leakage returns total leakage power in nW.
func (nl *Netlist) Leakage() float64 {
	var p float64
	for _, c := range nl.Cells {
		p += c.Ref.Leakage
	}
	return p
}

// SeqCount returns the number of sequential cells.
func (nl *Netlist) SeqCount() int {
	n := 0
	for _, c := range nl.Cells {
		if c.IsSeq() {
			n++
		}
	}
	return n
}

// Ungroup clears hierarchical group boundaries. With prefix == "" all groups
// are flattened; otherwise only groups with the given prefix.
func (nl *Netlist) Ungroup(prefix string) int {
	n := 0
	for _, c := range nl.Cells {
		if c.Group == "" {
			continue
		}
		if prefix == "" || hasPathPrefix(c.Group, prefix) {
			nl.Groups[c.Group]--
			c.Group = ""
			nl.Groups[""]++
			n++
		}
	}
	if n > 0 {
		// Group boundaries gate downstream restructuring; treat flattening
		// as structural so cached timing is rebuilt conservatively.
		nl.noteTopo()
	}
	return n
}

func hasPathPrefix(path, prefix string) bool {
	if len(path) < len(prefix) || path[:len(prefix)] != prefix {
		return false
	}
	return len(path) == len(prefix) || path[len(prefix)] == '/'
}

// GroupNames returns the non-empty group names sorted.
func (nl *Netlist) GroupNames() []string {
	var names []string
	for g, cnt := range nl.Groups {
		if g != "" && cnt > 0 {
			names = append(names, g)
		}
	}
	sort.Strings(names)
	return names
}

// Check validates structural invariants: each net has consistent
// driver/sink bookkeeping, every cell input is connected, and input counts
// match the library. It returns the first violation found.
func (nl *Netlist) Check() error {
	for _, c := range nl.Cells {
		want := liberty.KindInputs[c.Ref.Kind]
		if len(c.Inputs) != want {
			return fmt.Errorf("cell %s: %d inputs, want %d", c.Name, len(c.Inputs), want)
		}
		for i, in := range c.Inputs {
			if in == nil {
				return fmt.Errorf("cell %s input %d unconnected", c.Name, i)
			}
			found := false
			for _, p := range in.Sinks {
				if p.Cell == c && p.Index == i {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("cell %s input %d not in net %s sink list", c.Name, i, in.Name)
			}
		}
		if c.Output == nil {
			return fmt.Errorf("cell %s has no output net", c.Name)
		}
		if c.Output.Driver != c {
			return fmt.Errorf("cell %s output net %s driver mismatch", c.Name, c.Output.Name)
		}
		if c.IsSeq() && c.Clock == nil {
			return fmt.Errorf("sequential cell %s has no clock", c.Name)
		}
	}
	for _, n := range nl.Nets {
		for _, p := range n.Sinks {
			if p.Cell.Inputs[p.Index] != n {
				return fmt.Errorf("net %s sink %s/%d does not point back", n.Name, p.Cell.Name, p.Index)
			}
		}
		if n.Driver == nil && !n.PI && !n.Const && len(n.Sinks) > 0 && !n.IsClk && !n.IsRst {
			return fmt.Errorf("net %s has sinks but no driver", n.Name)
		}
	}
	return nil
}

// Stats summarizes the netlist for reports and analysis features.
type Stats struct {
	Cells     int
	Seq       int
	Comb      int
	Area      float64
	Leakage   float64
	Nets      int
	MaxFanout int
	AvgFanout float64
	ByKind    map[liberty.Kind]int
}

// Summary computes netlist statistics.
func (nl *Netlist) Summary() Stats {
	s := Stats{ByKind: make(map[liberty.Kind]int)}
	s.Cells = len(nl.Cells)
	s.Nets = len(nl.Nets)
	for _, c := range nl.Cells {
		if c.IsSeq() {
			s.Seq++
		} else {
			s.Comb++
		}
		s.Area += c.Ref.Area
		s.Leakage += c.Ref.Leakage
		s.ByKind[c.Ref.Kind]++
	}
	totalFO := 0
	active := 0
	for _, n := range nl.Nets {
		fo := n.Fanout()
		if fo == 0 {
			continue
		}
		active++
		totalFO += fo
		if fo > s.MaxFanout {
			s.MaxFanout = fo
		}
	}
	if active > 0 {
		s.AvgFanout = float64(totalFO) / float64(active)
	}
	return s
}
