package netlist

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/liberty"
)

// Binary netlist codec. Encode/Decode serialize a netlist so post-link
// elaboration checkpoints can leave the process — into the remote result
// tier replicas share — and round-trip *exactly*, with the same guarantees
// Clone gives in-memory:
//
//   - Cell.ID and Net.ID numbering is preserved, along with the
//     nextCell/nextNet bounds, so slice-indexed per-ID state (the timing
//     engine's) sizes identically after a decode.
//   - Slice orders (Cells, Nets, Inputs, Outputs, each cell's Inputs, each
//     net's Sinks) are preserved, so float accumulation orders — and
//     therefore every timing and QoR number computed on the decoded netlist
//     — are bit-identical to the original's.
//   - The edit generations (gen, topoGen) carry over, so generation-keyed
//     caches observe the decoded netlist exactly where they observed the
//     original.
//
// Library cells cross by name and are re-resolved against the decoder's
// library; the caller is responsible for pairing a blob with a library of
// the same content (the checkpoint key binds the library fingerprint, so a
// remote hit always decodes against an equivalent library). Decode is
// defensive — any truncated, corrupt, or internally inconsistent blob
// returns an error rather than a panic or an over-allocation, because blobs
// arrive over the network.

const (
	codecMagic   = "NLBIN"
	codecVersion = 1
)

// Encode serializes the netlist. The output is deterministic: encoding the
// same netlist twice yields identical bytes (map-ordered data is sorted).
func Encode(nl *Netlist) []byte {
	var e encoder
	e.raw([]byte(codecMagic))
	e.buf = append(e.buf, codecVersion)
	e.str(nl.Name)
	e.uvarint(uint64(nl.nextNet))
	e.uvarint(uint64(nl.nextCell))
	e.uvarint(nl.gen)
	e.uvarint(nl.topoGen)

	groups := make([]string, 0, len(nl.Groups))
	for g := range nl.Groups {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	e.uvarint(uint64(len(groups)))
	for _, g := range groups {
		e.str(g)
		e.uvarint(uint64(nl.Groups[g]))
	}

	e.uvarint(uint64(len(nl.Nets)))
	for _, n := range nl.Nets {
		e.uvarint(uint64(n.ID))
		e.str(n.Name)
		var flags byte
		if n.PI {
			flags |= 1
		}
		if n.PO {
			flags |= 2
		}
		if n.Const {
			flags |= 4
		}
		if n.Val {
			flags |= 8
		}
		if n.IsClk {
			flags |= 16
		}
		if n.IsRst {
			flags |= 32
		}
		e.buf = append(e.buf, flags)
	}

	e.uvarint(uint64(len(nl.Cells)))
	for _, c := range nl.Cells {
		e.uvarint(uint64(c.ID))
		e.str(c.Name)
		e.str(c.Ref.Name)
		e.str(c.Module)
		e.str(c.Group)
		var fixed byte
		if c.Fixed {
			fixed = 1
		}
		e.buf = append(e.buf, fixed)
		e.uvarint(uint64(len(c.Inputs)))
		for _, in := range c.Inputs {
			e.uvarint(uint64(in.ID))
		}
		e.optID(netID(c.Output))
		e.optID(netID(c.Clock))
		e.optID(netID(c.Reset))
	}

	// Net connectivity is written after the cells so sink pins can be
	// validated against the cells' input arities on decode.
	for _, n := range nl.Nets {
		e.optID(cellID(n.Driver))
		e.uvarint(uint64(len(n.Sinks)))
		for _, p := range n.Sinks {
			e.uvarint(uint64(p.Cell.ID))
			e.uvarint(uint64(p.Index))
		}
	}

	e.uvarint(uint64(len(nl.Inputs)))
	for _, n := range nl.Inputs {
		e.uvarint(uint64(n.ID))
	}
	e.uvarint(uint64(len(nl.Outputs)))
	for _, n := range nl.Outputs {
		e.uvarint(uint64(n.ID))
	}
	e.optID(netID(nl.ClkNet))
	e.optID(netID(nl.RstNet))
	return e.buf
}

func netID(n *Net) int {
	if n == nil {
		return -1
	}
	return n.ID
}

func cellID(c *Cell) int {
	if c == nil {
		return -1
	}
	return c.ID
}

// Decode reconstructs a netlist from an Encode blob, resolving library-cell
// references by name against lib.
func Decode(data []byte, lib *liberty.Library) (*Netlist, error) {
	d := decoder{data: data}
	magic := d.raw(len(codecMagic))
	if d.err != nil || string(magic) != codecMagic {
		return nil, fmt.Errorf("netlist: not a netlist blob")
	}
	if v := d.byte(); d.err != nil || v != codecVersion {
		return nil, fmt.Errorf("netlist: unsupported blob version %d", v)
	}

	nl := &Netlist{Lib: lib, Groups: make(map[string]int)}
	nl.Name = d.str()
	nl.nextNet = d.count()
	nl.nextCell = d.count()
	nl.gen = d.uvarint()
	nl.topoGen = d.uvarint()

	nGroups := d.count()
	for i := 0; i < nGroups && d.err == nil; i++ {
		g := d.str()
		nl.Groups[g] = d.count()
	}

	nNets := d.count()
	if d.err == nil && nNets > nl.nextNet {
		return nil, fmt.Errorf("netlist: %d nets exceed ID bound %d", nNets, nl.nextNet)
	}
	netSlab := make([]Net, nNets)
	netByID := make([]*Net, nl.nextNet)
	nl.Nets = make([]*Net, nNets)
	for i := 0; i < nNets && d.err == nil; i++ {
		n := &netSlab[i]
		n.ID = d.count()
		n.Name = d.str()
		flags := d.byte()
		n.PI = flags&1 != 0
		n.PO = flags&2 != 0
		n.Const = flags&4 != 0
		n.Val = flags&8 != 0
		n.IsClk = flags&16 != 0
		n.IsRst = flags&32 != 0
		if d.err != nil {
			break
		}
		if n.ID >= nl.nextNet || netByID[n.ID] != nil {
			return nil, fmt.Errorf("netlist: net ID %d out of range or duplicated", n.ID)
		}
		nl.Nets[i] = n
		netByID[n.ID] = n
	}

	nCells := d.count()
	if d.err == nil && nCells > nl.nextCell {
		return nil, fmt.Errorf("netlist: %d cells exceed ID bound %d", nCells, nl.nextCell)
	}
	cellSlab := make([]Cell, nCells)
	cellByID := make([]*Cell, nl.nextCell)
	nl.Cells = make([]*Cell, nCells)
	for i := 0; i < nCells && d.err == nil; i++ {
		c := &cellSlab[i]
		c.ID = d.count()
		c.Name = d.str()
		refName := d.str()
		c.Module = d.str()
		c.Group = d.str()
		c.Fixed = d.byte() != 0
		nIn := d.count()
		if d.err != nil {
			break
		}
		if c.ID >= nl.nextCell || cellByID[c.ID] != nil {
			return nil, fmt.Errorf("netlist: cell ID %d out of range or duplicated", c.ID)
		}
		if c.Ref = lib.Cell(refName); c.Ref == nil {
			return nil, fmt.Errorf("netlist: library %s has no cell %q", lib.Name, refName)
		}
		c.Inputs = make([]*Net, nIn)
		for j := 0; j < nIn && d.err == nil; j++ {
			if c.Inputs[j] = d.net(netByID); c.Inputs[j] == nil {
				return nil, fmt.Errorf("netlist: cell %s input %d references unknown net", c.Name, j)
			}
		}
		c.Output = d.optNet(netByID)
		c.Clock = d.optNet(netByID)
		c.Reset = d.optNet(netByID)
		nl.Cells[i] = c
		cellByID[c.ID] = c
	}

	for i := 0; i < nNets && d.err == nil; i++ {
		n := &netSlab[i]
		n.Driver = d.optCell(cellByID)
		nSinks := d.count()
		if d.err != nil {
			break
		}
		if nSinks == 0 {
			continue
		}
		pinSlab := make([]Pin, nSinks)
		n.Sinks = make([]*Pin, nSinks)
		for j := 0; j < nSinks && d.err == nil; j++ {
			c := d.cell(cellByID)
			idx := d.count()
			if d.err != nil {
				break
			}
			if c == nil || idx >= len(c.Inputs) {
				return nil, fmt.Errorf("netlist: net %s sink %d references invalid pin", n.Name, j)
			}
			pinSlab[j] = Pin{Cell: c, Index: idx}
			n.Sinks[j] = &pinSlab[j]
		}
	}

	nIn := d.count()
	nl.Inputs = make([]*Net, nIn)
	for i := 0; i < nIn && d.err == nil; i++ {
		if nl.Inputs[i] = d.net(netByID); nl.Inputs[i] == nil {
			return nil, fmt.Errorf("netlist: primary input %d references unknown net", i)
		}
	}
	nOut := d.count()
	nl.Outputs = make([]*Net, nOut)
	for i := 0; i < nOut && d.err == nil; i++ {
		if nl.Outputs[i] = d.net(netByID); nl.Outputs[i] == nil {
			return nil, fmt.Errorf("netlist: primary output %d references unknown net", i)
		}
	}
	nl.ClkNet = d.optNet(netByID)
	nl.RstNet = d.optNet(netByID)
	if d.err != nil {
		return nil, fmt.Errorf("netlist: corrupt blob: %w", d.err)
	}
	if d.pos != len(d.data) {
		return nil, fmt.Errorf("netlist: %d trailing bytes after blob", len(d.data)-d.pos)
	}
	// Structural parse success is not enough for bytes that crossed the
	// network: the blob must also decode to a netlist that satisfies the
	// package invariants (drivers present, sink back-references consistent,
	// group counts matching), or downstream passes would corrupt silently.
	if err := nl.Check(); err != nil {
		return nil, fmt.Errorf("netlist: blob decodes to inconsistent netlist: %w", err)
	}
	return nl, nil
}

// encoder accumulates the blob.
type encoder struct {
	buf []byte
}

func (e *encoder) raw(b []byte) { e.buf = append(e.buf, b...) }

func (e *encoder) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// optID writes id+1 so -1 (nil reference) encodes as 0.
func (e *encoder) optID(id int) { e.uvarint(uint64(id + 1)) }

// decoder walks the blob, latching the first error; every accessor is safe
// to call after a failure and returns a zero value.
type decoder struct {
	data []byte
	pos  int
	err  error
}

var errTruncated = fmt.Errorf("truncated")

func (d *decoder) fail() {
	if d.err == nil {
		d.err = errTruncated
	}
}

func (d *decoder) raw(n int) []byte {
	if d.err != nil || d.pos+n > len(d.data) {
		d.fail()
		return nil
	}
	b := d.data[d.pos : d.pos+n]
	d.pos += n
	return b
}

func (d *decoder) byte() byte {
	b := d.raw(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.pos += n
	return v
}

// count reads a uvarint that will be used as a count or ID: it additionally
// bounds the value by the remaining blob length (every counted item costs at
// least one byte) or by the ID bounds the header declared, so corrupt blobs
// cannot force huge allocations.
func (d *decoder) count() int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if v > uint64(len(d.data)) {
		d.fail()
		return 0
	}
	return int(v)
}

func (d *decoder) str() string {
	n := d.count()
	return string(d.raw(n))
}

func (d *decoder) net(byID []*Net) *Net {
	id := d.count()
	if d.err != nil || id >= len(byID) {
		d.fail()
		return nil
	}
	return byID[id]
}

func (d *decoder) optNet(byID []*Net) *Net {
	v := d.uvarint()
	if d.err != nil || v == 0 {
		return nil
	}
	id := int(v - 1)
	if id >= len(byID) || byID[id] == nil {
		d.fail()
		return nil
	}
	return byID[id]
}

func (d *decoder) cell(byID []*Cell) *Cell {
	id := d.count()
	if d.err != nil || id >= len(byID) {
		d.fail()
		return nil
	}
	return byID[id]
}

func (d *decoder) optCell(byID []*Cell) *Cell {
	v := d.uvarint()
	if d.err != nil || v == 0 {
		return nil
	}
	id := int(v - 1)
	if id >= len(byID) || byID[id] == nil {
		d.fail()
		return nil
	}
	return byID[id]
}
