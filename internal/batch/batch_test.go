package batch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// doubler is a positionally pure run function with a call counter.
func doubler(calls *atomic.Int64) func([]int) ([]int, error) {
	return func(reqs []int) ([]int, error) {
		calls.Add(1)
		out := make([]int, len(reqs))
		for i, r := range reqs {
			out[i] = 2 * r
		}
		return out, nil
	}
}

func TestSingleRequestFlushesOnWindow(t *testing.T) {
	var calls atomic.Int64
	b := New(time.Millisecond, 8, doubler(&calls))
	got, err := b.Do(21)
	if err != nil || got != 42 {
		t.Fatalf("Do = %d, %v; want 42", got, err)
	}
	if calls.Load() != 1 {
		t.Fatalf("calls = %d, want 1", calls.Load())
	}
	st := b.Stats()
	if st.Flushes != 1 || st.Items != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFullBatchFlushesImmediately(t *testing.T) {
	var calls atomic.Int64
	const n = 8
	// A long window: without the full-batch fast path this test would stall.
	b := New(time.Minute, n, doubler(&calls))
	var wg sync.WaitGroup
	results := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := b.Do(i)
			if err != nil {
				t.Errorf("Do(%d): %v", i, err)
			}
			results[i] = v
		}(i)
	}
	wg.Wait()
	for i, v := range results {
		if v != 2*i {
			t.Errorf("result[%d] = %d, want %d", i, v, 2*i)
		}
	}
	if calls.Load() != 1 {
		t.Errorf("calls = %d, want 1 coalesced flush", calls.Load())
	}
}

func TestResponsesMatchRequestsAcrossManyFlushes(t *testing.T) {
	var calls atomic.Int64
	b := New(200*time.Microsecond, 4, doubler(&calls))
	var wg sync.WaitGroup
	for i := 0; i < 200; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := b.Do(i)
			if err != nil || v != 2*i {
				t.Errorf("Do(%d) = %d, %v", i, v, err)
			}
		}(i)
	}
	wg.Wait()
	st := b.Stats()
	if st.Items != 200 {
		t.Errorf("items = %d, want 200", st.Items)
	}
	if st.Flushes < 50 { // 200 items at max 4 per flush
		t.Errorf("flushes = %d, want >= 50", st.Flushes)
	}
}

func TestRunErrorReachesEveryWaiter(t *testing.T) {
	boom := errors.New("boom")
	b := New(time.Millisecond, 2, func(reqs []int) ([]int, error) { return nil, boom })
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := b.Do(1); !errors.Is(err, boom) {
				t.Errorf("err = %v, want boom", err)
			}
		}()
	}
	wg.Wait()
}

func TestRunPanicBecomesError(t *testing.T) {
	b := New(time.Millisecond, 4, func(reqs []int) ([]int, error) { panic("kernel oops") })
	if _, err := b.Do(1); err == nil {
		t.Fatal("panicking run must surface as an error, not a deadlock")
	}
}

func TestShortResponseSliceIsError(t *testing.T) {
	b := New(time.Millisecond, 2, func(reqs []int) ([]int, error) { return make([]int, 1), nil })
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = b.Do(i)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Errorf("waiter %d: miscounted responses must error", i)
		}
	}
}

func TestContextCancelAbandonsWaitWithoutBlockingFlush(t *testing.T) {
	release := make(chan struct{})
	b := New(time.Millisecond, 8, func(reqs []int) ([]int, error) {
		<-release
		return doubler(new(atomic.Int64))(reqs)
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.DoContext(ctx, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(release) // the flush completes and drops the orphaned response
}

func TestObserverSeesSizeAndWait(t *testing.T) {
	var calls atomic.Int64
	b := New(500*time.Microsecond, 4, doubler(&calls))
	var mu sync.Mutex
	var sizes []int
	b.SetObserver(func(size int, wait time.Duration) {
		mu.Lock()
		sizes = append(sizes, size)
		mu.Unlock()
		if wait < 0 {
			t.Errorf("negative wait %v", wait)
		}
	})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b.Do(i)
		}(i)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 4 {
		t.Errorf("observer saw %d items across %v, want 4", total, sizes)
	}
}

// TestHammer drives many producers through small batches under -race.
func TestHammer(t *testing.T) {
	var calls atomic.Int64
	b := New(100*time.Microsecond, 8, doubler(&calls))
	var wg sync.WaitGroup
	const producers = 32
	const perProducer = 50
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				v := p*perProducer + i
				got, err := b.Do(v)
				if err != nil || got != 2*v {
					t.Errorf("Do(%d) = %d, %v", v, got, err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	if st := b.Stats(); st.Items != producers*perProducer {
		t.Errorf("items = %d, want %d", st.Items, producers*perProducer)
	}
}

func ExampleBatcher() {
	b := New(time.Millisecond, 4, func(reqs []string) ([]string, error) {
		out := make([]string, len(reqs))
		for i, r := range reqs {
			out[i] = "embedded:" + r
		}
		return out, nil
	})
	v, _ := b.Do("riscv32i")
	fmt.Println(v)
	// Output: embedded:riscv32i
}
