// Package batch is the continuous-batching admission queue of the serving
// hot path: concurrent callers of an expensive vectorizable operation
// (GraphSAGE forwards, text-embedding lookups) are coalesced into one
// batched kernel invocation instead of each paying their own.
//
// A Batcher collects requests arriving within a small wait window (or until
// the batch is full, whichever comes first) and hands the whole slice to a
// single run function. The run function must be *positionally pure*: result
// i depends only on request i, so every caller receives exactly the bytes a
// serial call would have produced. The repo's row-sharded tensor kernels
// guarantee this for stacked matrix products — each output row is computed
// from its own input row with the serial loop order — which is what makes
// batched embedding byte-identical to the serial path.
//
// Flush discipline: the first request of an empty queue arms a window timer;
// the request that fills the batch to capacity flushes immediately and runs
// the kernel on its own goroutine (no handoff latency for full batches).
// Like internal/workpool, this is a leaf package (stdlib only) so any layer
// can batch without import cycles.
package batch

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultWindow is the admission wait window when none is configured: long
// enough for a burst of concurrent requests to coalesce, short enough to be
// invisible next to a synthesis run.
const DefaultWindow = 2 * time.Millisecond

// DefaultMaxBatch bounds one flush when no cap is configured.
const DefaultMaxBatch = 16

// Stats are the batcher's lifetime counters.
type Stats struct {
	Flushes int64 // batched kernel invocations
	Items   int64 // requests coalesced across all flushes
}

type call[Req, Resp any] struct {
	req Req
	ch  chan outcome[Resp]
}

type outcome[Resp any] struct {
	resp Resp
	err  error
}

// Batcher coalesces concurrent Do calls into batched run invocations. All
// methods are safe for concurrent use.
type Batcher[Req, Resp any] struct {
	window   time.Duration
	maxBatch int
	run      func([]Req) ([]Resp, error)

	mu      sync.Mutex
	pending []call[Req, Resp]
	timer   *time.Timer
	started time.Time // arrival of the oldest pending request

	flushes atomic.Int64
	items   atomic.Int64
	observe atomic.Pointer[func(size int, wait time.Duration)]
}

// New creates a batcher over run, which receives every coalesced request
// and must return one response per request (same order). window <= 0 and
// maxBatch <= 0 select the defaults; maxBatch == 1 degenerates to an
// immediate flush per request (useful as a serial reference).
func New[Req, Resp any](window time.Duration, maxBatch int, run func([]Req) ([]Resp, error)) *Batcher[Req, Resp] {
	if window <= 0 {
		window = DefaultWindow
	}
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	return &Batcher[Req, Resp]{window: window, maxBatch: maxBatch, run: run}
}

// SetObserver installs a per-flush callback receiving the batch size and
// the oldest request's queue wait. Used for metrics; nil uninstalls.
func (b *Batcher[Req, Resp]) SetObserver(fn func(size int, wait time.Duration)) {
	if fn == nil {
		b.observe.Store(nil)
		return
	}
	b.observe.Store(&fn)
}

// Stats returns the lifetime flush/item counters.
func (b *Batcher[Req, Resp]) Stats() Stats {
	return Stats{Flushes: b.flushes.Load(), Items: b.items.Load()}
}

// Do submits a request and blocks until its batch executes.
func (b *Batcher[Req, Resp]) Do(req Req) (Resp, error) {
	return b.DoContext(context.Background(), req)
}

// DoContext is Do with cooperative cancellation: a caller abandoning its
// wait gets ctx.Err() back; the batch still executes (other callers may be
// waiting on it) and the orphaned response is dropped.
func (b *Batcher[Req, Resp]) DoContext(ctx context.Context, req Req) (Resp, error) {
	ch := make(chan outcome[Resp], 1) // buffered: a flush never blocks on an abandoned caller
	b.mu.Lock()
	b.pending = append(b.pending, call[Req, Resp]{req: req, ch: ch})
	if len(b.pending) == 1 {
		b.started = time.Now()
		b.timer = time.AfterFunc(b.window, b.flushOnTimer)
	}
	var full []call[Req, Resp]
	var wait time.Duration
	if len(b.pending) >= b.maxBatch {
		full, wait = b.takeLocked()
	}
	b.mu.Unlock()
	if full != nil {
		// The request that filled the batch runs the kernel inline — its own
		// response arrives on ch like everyone else's.
		b.exec(full, wait)
	}
	select {
	case out := <-ch:
		return out.resp, out.err
	case <-ctx.Done():
		var zero Resp
		return zero, ctx.Err()
	}
}

// takeLocked detaches the pending batch and disarms the window timer.
// Callers must hold b.mu.
func (b *Batcher[Req, Resp]) takeLocked() ([]call[Req, Resp], time.Duration) {
	batch := b.pending
	b.pending = nil
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	return batch, time.Since(b.started)
}

func (b *Batcher[Req, Resp]) flushOnTimer() {
	b.mu.Lock()
	batch, wait := b.takeLocked()
	b.mu.Unlock()
	if len(batch) > 0 {
		b.exec(batch, wait)
	}
}

// exec runs the kernel over one detached batch and distributes responses.
// A panicking or miscounting run function fails every waiter with an error
// instead of deadlocking them.
func (b *Batcher[Req, Resp]) exec(batch []call[Req, Resp], wait time.Duration) {
	b.flushes.Add(1)
	b.items.Add(int64(len(batch)))
	if fn := b.observe.Load(); fn != nil {
		(*fn)(len(batch), wait)
	}
	reqs := make([]Req, len(batch))
	for i, c := range batch {
		reqs[i] = c.req
	}
	resps, err := b.safeRun(reqs)
	if err == nil && len(resps) != len(batch) {
		err = fmt.Errorf("batch: run returned %d responses for %d requests", len(resps), len(batch))
	}
	for i, c := range batch {
		if err != nil {
			c.ch <- outcome[Resp]{err: err}
			continue
		}
		c.ch <- outcome[Resp]{resp: resps[i]}
	}
}

func (b *Batcher[Req, Resp]) safeRun(reqs []Req) (resps []Resp, err error) {
	defer func() {
		if r := recover(); r != nil {
			resps, err = nil, fmt.Errorf("batch: run panicked: %v", r)
		}
	}()
	return b.run(reqs)
}
