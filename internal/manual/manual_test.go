package manual

import (
	"strings"
	"testing"

	"repro/internal/synth"
)

func TestBuildCoversAllCommands(t *testing.T) {
	c := Build()
	for name := range synth.Commands {
		d := c.Command(name)
		if d == nil {
			t.Errorf("command %s missing from manual", name)
			continue
		}
		if !strings.Contains(d.Text, name) {
			t.Errorf("doc for %s does not mention it", name)
		}
		if !strings.Contains(d.Text, "DESCRIPTION") {
			t.Errorf("doc for %s missing DESCRIPTION section", name)
		}
	}
	if got, want := len(c.CommandNames()), len(synth.Commands); got != want {
		t.Errorf("CommandNames = %d, want %d", got, want)
	}
}

func TestOptionsDocumented(t *testing.T) {
	c := Build()
	d := c.Command("compile_ultra")
	if d == nil {
		t.Fatal("compile_ultra missing")
	}
	for _, opt := range []string{"-retime", "-no_autoungroup", "-timing_high_effort_script"} {
		if !strings.Contains(d.Text, opt) {
			t.Errorf("compile_ultra doc missing option %s", opt)
		}
	}
	if !strings.Contains(d.Text, "REQUIREMENTS") {
		t.Error("compile_ultra doc missing requirements")
	}
}

func TestGuidanceDocsPresent(t *testing.T) {
	c := Build()
	for _, id := range []string{"guide/timing_closure", "guide/retiming", "guide/buffering", "guide/effort", "guide/hierarchy", "guide/wireload", "guide/iteration"} {
		if c.ByID(id) == nil {
			t.Errorf("guidance doc %s missing", id)
		}
	}
	// The retiming guide must state the applicability condition the paper's
	// intro example turns on.
	g := c.ByID("guide/retiming")
	if !strings.Contains(g.Text, "unbalanced") && !strings.Contains(g.Text, "stage") {
		t.Error("retiming guide does not describe stage imbalance")
	}
}

func TestUnknownCommandIsNil(t *testing.T) {
	c := Build()
	if c.Command("optimize_timing") != nil {
		t.Error("hallucinated command should not be documented")
	}
	if c.ByID("cmd/optimize_timing") != nil {
		t.Error("hallucinated id should not resolve")
	}
}

func TestTextsAlignWithDocs(t *testing.T) {
	c := Build()
	texts := c.Texts()
	if len(texts) != len(c.Docs) {
		t.Fatalf("Texts len %d != Docs len %d", len(texts), len(c.Docs))
	}
	for i, txt := range texts {
		if !strings.Contains(txt, c.Docs[i].Title) {
			t.Errorf("text %d missing title", i)
		}
	}
}
