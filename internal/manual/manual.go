// Package manual materializes the synthesis tool's user manual from the
// command specifications in internal/synth, so the documentation SynthRAG
// retrieves from can never drift from what the tool actually accepts. It
// also carries the optimization guidance sections (when to retime, when to
// balance buffers, how wireload models matter) that ground the LLM's
// command selection — the "Logic Synthesis Tool User Manual" modality of
// TABLE I in the paper.
package manual

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/synth"
)

// Doc is one retrievable manual section.
type Doc struct {
	ID    string // stable identifier, e.g. "cmd/compile_ultra"
	Title string
	Text  string
}

// Corpus is the full manual.
type Corpus struct {
	Docs   []Doc
	byID   map[string]int
	byName map[string]int // command name -> doc index
}

// Build generates the manual from the live command table plus the guidance
// chapters.
func Build() *Corpus {
	c := &Corpus{byID: make(map[string]int), byName: make(map[string]int)}
	names := synth.CommandNames()
	for _, name := range names {
		spec := synth.Commands[name]
		c.add(commandDoc(spec), name)
	}
	for _, d := range guidanceDocs() {
		c.add(d, "")
	}
	return c
}

func (c *Corpus) add(d Doc, cmdName string) {
	c.byID[d.ID] = len(c.Docs)
	if cmdName != "" {
		c.byName[cmdName] = len(c.Docs)
	}
	c.Docs = append(c.Docs, d)
}

// ByID returns a section by identifier, or nil.
func (c *Corpus) ByID(id string) *Doc {
	if i, ok := c.byID[id]; ok {
		return &c.Docs[i]
	}
	return nil
}

// Command returns the manual section for a command, or nil for unknown
// commands — which is exactly how SynthExpert detects hallucinated commands.
func (c *Corpus) Command(name string) *Doc {
	if i, ok := c.byName[name]; ok {
		return &c.Docs[i]
	}
	return nil
}

// CommandNames lists all documented commands.
func (c *Corpus) CommandNames() []string {
	names := make([]string, 0, len(c.byName))
	for n := range c.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Texts returns all section texts in order (for embedding index builds).
func (c *Corpus) Texts() []string {
	out := make([]string, len(c.Docs))
	for i, d := range c.Docs {
		out[i] = d.Title + "\n" + d.Text
	}
	return out
}

func commandDoc(spec *synth.CommandSpec) Doc {
	var b strings.Builder
	fmt.Fprintf(&b, "NAME\n  %s - %s\n\n", spec.Name, spec.Brief)
	fmt.Fprintf(&b, "DESCRIPTION\n  %s\n", spec.Detail)
	if len(spec.Opts) > 0 {
		b.WriteString("\nOPTIONS\n")
		for _, o := range spec.Opts {
			arg := ""
			if o.HasArg {
				arg = " <value>"
			}
			fmt.Fprintf(&b, "  %s%s\n      %s\n", o.Name, arg, o.Desc)
		}
	}
	if spec.Requires != "" {
		fmt.Fprintf(&b, "\nREQUIREMENTS\n  %s\n", spec.Requires)
	}
	return Doc{
		ID:    "cmd/" + spec.Name,
		Title: spec.Name + " — " + spec.Brief,
		Text:  b.String(),
	}
}

// guidanceDocs are the methodology chapters: the domain knowledge the
// paper's RAG retrieves to choose between techniques (e.g. retiming versus
// buffer balancing, §I's motivating example).
func guidanceDocs() []Doc {
	return []Doc{
		{
			ID:    "guide/timing_closure",
			Title: "Timing closure methodology",
			Text: `Timing optimization selects techniques by the structure of the violating paths.
Inspect report_timing first: note the path depth, the cells on the path, and the
fanout of the nets along it. Deep paths through arithmetic logic respond to
higher mapping effort (compile_ultra) and gate sizing. Paths crossing module
boundaries respond to ungroup -all -flatten, which legalizes cross-boundary
restructuring. Violations caused by unbalanced register placement — one pipeline
stage much deeper than its neighbours — respond to register retiming
(optimize_registers or compile_ultra -retime). Violations on high-fanout control
or broadcast nets respond to buffer trees (balance_buffers or set_max_fanout).
Applying retiming to a fanout-limited path, or buffering to a depth-limited
path, wastes area without improving slack.`,
		},
		{
			ID:    "guide/retiming",
			Title: "When register retiming helps",
			Text: `Retiming (optimize_registers, or compile_ultra -retime) moves flip-flops across
combinational gates to balance pipeline stage delays. It is the right tool when
report_timing shows one stage violating while adjacent stages have large
positive slack: the registers sit in the wrong place, not the logic. It cannot
help when every stage is equally deep, when the critical path is a single
unregistered cone, or when the violation comes from net fanout rather than
logic depth. Retiming preserves the clock period constraint and may increase
register count.`,
		},
		{
			ID:    "guide/buffering",
			Title: "When buffer balancing helps",
			Text: `Buffer balancing (balance_buffers, or set_max_fanout N before compile) splits
high-fanout nets into buffer trees. It is the right tool when report_timing
shows large stage delays on nets driving tens of loads — broadcast enables,
arbitration grants, decoded selects. The added buffers cost area and one stage
of delay each, so buffering a low-fanout deep path makes timing worse, not
better. A max_fanout value between 8 and 24 suits most control-dominated
designs; arithmetic datapaths rarely need one.`,
		},
		{
			ID:    "guide/effort",
			Title: "Choosing compile effort and flow",
			Text: `compile -map_effort low only cleans up the netlist; use it for quick area
estimates. compile (medium) restructures complex gates and sizes the critical
path. compile -map_effort high adds logic-chain rebalancing. compile_ultra runs
the full flow with automatic ungrouping and deeper sizing, and accepts -retime,
-timing_high_effort_script (keep improving slack past zero) and
-area_high_effort_script (recover more area once timing is met). Ultra costs
runtime and sometimes area; designs that already meet timing at medium effort
should prefer compile with -area_effort high.`,
		},
		{
			ID:    "guide/hierarchy",
			Title: "Hierarchy and ungrouping",
			Text: `Optimization respects module boundaries: inverter pairs, mergeable gates, and
rebalanceable chains that span two blocks are left untouched until the
boundary is dissolved with ungroup -all -flatten (or compile_ultra's automatic
ungrouping). Heavily hierarchical designs — generated SoCs, designs stitched
from IP blocks — usually gain several percent of both timing and area from
ungrouping. Keep hierarchy (compile_ultra -no_autoungroup) only when block-level
constraints or ECO flows require stable boundaries, or protect specific blocks
with set_dont_touch.`,
		},
		{
			ID:    "guide/wireload",
			Title: "Wireload models and constraints",
			Text: `Pre-layout timing uses a wireload model to estimate net parasitics from
fanout. 5K_heavy_1k is the pessimistic default for ~5k-gate blocks on the
45nm library; 5K_medium_1k and 5K_light_1k are progressively more optimistic.
Set the model with set_wire_load_model -name before compile. Constraints:
create_clock -period defines the timing target (do not change the period to
"fix" violations — close timing at the given period); set_input_delay and
set_output_delay budget for logic outside the block; set_max_area sets the
area goal.`,
		},
		{
			ID:    "guide/iteration",
			Title: "Iterative resynthesis",
			Text: `Logic synthesis is iterative: after the first compile, read report_qor and
report_timing, then choose a resynthesis step that targets the reported
bottleneck. Typical second iterations: optimize_registers when stage imbalance
remains; balance_buffers when max-fanout nets dominate; compile_ultra
-area_high_effort_script when timing is met with slack to trade for area.
Re-running the identical compile rarely changes the result.`,
		},
	}
}
