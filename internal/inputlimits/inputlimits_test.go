package inputlimits

import (
	"errors"
	"testing"

	"repro/internal/resilience"
)

func TestLimitErrorTaxonomy(t *testing.T) {
	m := NewMeter(SurfaceVerilog, Budget{MaxBytes: 10})
	err := m.CheckBytes(11)
	if err == nil {
		t.Fatal("expected a limit error")
	}
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("error %v is not a *LimitError", err)
	}
	if le.Limit != LimitBytes || le.Max != 10 || le.Actual != 11 || le.Surface != SurfaceVerilog {
		t.Fatalf("unexpected fields: %+v", le)
	}
	if !errors.Is(err, resilience.ErrBudgetExceeded) {
		t.Fatalf("limit error %v must unwrap to resilience.ErrBudgetExceeded", err)
	}
}

func TestZeroBudgetUnlimited(t *testing.T) {
	m := NewMeter(SurfaceScript, Budget{})
	if err := m.CheckBytes(1 << 30); err != nil {
		t.Fatalf("zero budget must not limit bytes: %v", err)
	}
	for i := 0; i < 10000; i++ {
		if err := m.Token(); err != nil {
			t.Fatalf("zero budget must not limit tokens: %v", err)
		}
		if err := m.Step(); err != nil {
			t.Fatalf("zero budget must not limit steps: %v", err)
		}
		if err := m.Enter(); err != nil {
			t.Fatalf("zero budget must not limit depth: %v", err)
		}
	}
}

func TestNilMeterSafe(t *testing.T) {
	var m *Meter
	if err := m.CheckBytes(1); err != nil {
		t.Fatal(err)
	}
	if err := m.Token(); err != nil {
		t.Fatal(err)
	}
	if err := m.Step(); err != nil {
		t.Fatal(err)
	}
	if err := m.Enter(); err != nil {
		t.Fatal(err)
	}
	m.Exit()
	if err := m.Statement(5); err != nil {
		t.Fatal(err)
	}
}

func TestMeterTrips(t *testing.T) {
	m := NewMeter(SurfaceCypher, Budget{MaxTokens: 3, MaxDepth: 2, MaxSteps: 5, MaxStatements: 1})
	for i := 0; i < 3; i++ {
		if err := m.Token(); err != nil {
			t.Fatalf("token %d under budget: %v", i, err)
		}
	}
	if err := m.Token(); err == nil {
		t.Fatal("4th token must exceed MaxTokens=3")
	}
	if err := m.Enter(); err != nil {
		t.Fatal(err)
	}
	if err := m.Enter(); err != nil {
		t.Fatal(err)
	}
	if err := m.Enter(); err == nil {
		t.Fatal("depth 3 must exceed MaxDepth=2")
	}
	m.Exit()
	m.Exit()
	m.Exit()
	if err := m.Enter(); err != nil {
		t.Fatalf("after Exit, depth must be back under budget: %v", err)
	}
	if err := m.Statement(2); err == nil {
		t.Fatal("2 statements must exceed MaxStatements=1")
	}
}

func TestSetDefaults(t *testing.T) {
	orig := Defaults()
	defer SetDefaults(orig)

	c := orig
	c.Verilog.MaxBytes = 123
	SetDefaults(c)
	if got := For(SurfaceVerilog).MaxBytes; got != 123 {
		t.Fatalf("For(verilog).MaxBytes = %d, want 123", got)
	}
	if got := For(SurfaceScript); got != orig.Script {
		t.Fatalf("script budget changed unexpectedly: %+v", got)
	}
	if got := For("unknown"); got != (Budget{}) {
		t.Fatalf("unknown surface must get zero budget, got %+v", got)
	}
}
