package inputlimits

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func postReq(body string) (*httptest.ResponseRecorder, *http.Request) {
	return httptest.NewRecorder(), httptest.NewRequest(http.MethodPost, "/x", strings.NewReader(body))
}

func TestDecodeJSONRequest(t *testing.T) {
	type payload struct {
		Name string `json:"name"`
	}
	cases := []struct {
		name string
		body string
		max  int64
		want int
	}{
		{"ok", `{"name":"a"}`, 64, http.StatusOK},
		{"over cap", `{"name":"` + strings.Repeat("x", 100) + `"}`, 64, http.StatusRequestEntityTooLarge},
		{"not json", "nope", 64, http.StatusBadRequest},
		{"empty", "", 64, http.StatusBadRequest},
		{"unknown field", `{"name":"a","bogus":1}`, 64, http.StatusBadRequest},
		{"trailing data", `{"name":"a"} extra`, 64, http.StatusBadRequest},
		{"wrong type", `{"name":7}`, 64, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var p payload
			w, r := postReq(tc.body)
			code, err := DecodeJSONRequest(w, r, tc.max, &p)
			if code != tc.want {
				t.Fatalf("code = %d (err %v), want %d", code, err, tc.want)
			}
			if (err == nil) != (tc.want == http.StatusOK) {
				t.Fatalf("err = %v inconsistent with code %d", err, code)
			}
		})
	}
}

func TestReadRawBody(t *testing.T) {
	w, r := postReq("hello")
	b, code, err := ReadRawBody(w, r, 16)
	if err != nil || code != http.StatusOK || string(b) != "hello" {
		t.Fatalf("got %q code=%d err=%v", b, code, err)
	}

	w, r = postReq(strings.Repeat("z", 64))
	if _, code, err := ReadRawBody(w, r, 16); code != http.StatusRequestEntityTooLarge || err == nil {
		t.Fatalf("oversized body: code=%d err=%v, want 413", code, err)
	}
}
