package inputlimits

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// HTTP ingress hardening, shared by every daemon in the repo (chatlsd's
// /v1/customize and the remote cache's /v1/qor, /v1/checkpoint, and
// /v1/leases endpoints). The contract mirrors the parser budgets: arbitrary
// bytes in, either a decoded value out or an HTTP status in {413, 400} with
// a safe message — never a panic, never a 500 for any input shape. Semantic
// validation (well-formed JSON with invalid field values → 422) stays with
// the endpoint, since it depends on the endpoint's meaning rather than the
// bytes themselves.

// DecodeJSONRequest reads and decodes r's body into dst under a byte cap:
// the body is wrapped in http.MaxBytesReader (so an oversized body is
// aborted at the cap, not buffered), unknown fields are rejected, and
// trailing data after the JSON value is rejected. It returns http.StatusOK
// and nil on success, http.StatusRequestEntityTooLarge for a body over the
// cap, or http.StatusBadRequest for any syntax problem.
func DecodeJSONRequest(w http.ResponseWriter, r *http.Request, maxBytes int64, dst any) (int, error) {
	body := http.MaxBytesReader(w, r.Body, maxBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit)
		}
		return http.StatusBadRequest, fmt.Errorf("bad request body: %v", err)
	}
	if dec.More() {
		return http.StatusBadRequest, errors.New("bad request body: trailing data after JSON object")
	}
	return http.StatusOK, nil
}

// ReadRawBody reads r's entire body as opaque bytes under a byte cap — the
// ingress guard for binary payloads (QoR records, checkpoint blobs). It
// returns the bytes with http.StatusOK, or nil with
// http.StatusRequestEntityTooLarge (body over the cap) /
// http.StatusBadRequest (transport-level read failure).
func ReadRawBody(w http.ResponseWriter, r *http.Request, maxBytes int64) ([]byte, int, error) {
	body := http.MaxBytesReader(w, r.Body, maxBytes)
	b, err := io.ReadAll(body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return nil, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit)
		}
		return nil, http.StatusBadRequest, fmt.Errorf("bad request body: %v", err)
	}
	return b, http.StatusOK, nil
}
