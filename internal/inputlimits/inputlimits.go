// Package inputlimits defines the resource budgets every untrusted-input
// surface of the pipeline parses under. The serving north star is a daemon
// taking arbitrary bytes from the network — Verilog netlists, Liberty
// libraries, dc_shell scripts, Cypher queries, JSON request bodies — and
// every one of those parsers must provably terminate, in bounded memory,
// on any input. A Budget caps what one parse may cost; a Meter enforces it
// incrementally; a LimitError reports which cap tripped and integrates with
// the resilience error taxonomy (errors.Is(err, resilience.ErrBudgetExceeded)
// holds for every limit violation), so serving-path callers classify budget
// exhaustion exactly like a script command budget running out.
//
// The package-level defaults are generous enough that every legitimate
// input in the repository — generated benchmark RTL, the built-in Nangate45
// library, pipeline-emitted synthesis scripts, SynthRAG's internal graph
// queries — parses untouched; they exist to bound adversarial inputs, not
// to ration normal ones. A daemon can tighten or loosen them at startup
// with SetDefaults (see cmd/chatlsd's -parse-* flags).
package inputlimits

import (
	"fmt"
	"sync/atomic"

	"repro/internal/resilience"
)

// Surface names the untrusted-input surfaces. They appear in LimitError
// messages and metrics, and select a Budget via For.
const (
	SurfaceVerilog = "verilog"
	SurfaceLiberty = "liberty"
	SurfaceScript  = "script"
	SurfaceCypher  = "cypher"
	SurfaceHTTP    = "http"
)

// Budget caps what parsing (or executing) one untrusted input may cost.
// A zero or negative field means that dimension is unlimited, so the zero
// Budget imposes no limits at all.
type Budget struct {
	MaxBytes      int // input size in bytes
	MaxTokens     int // lexical tokens produced
	MaxDepth      int // nesting/recursion depth (expressions, blocks)
	MaxStatements int // statements / clauses / declarations accepted
	MaxSteps      int // total parser/executor work units (loop iterations)
}

// Limit names which Budget dimension a LimitError tripped.
type Limit string

const (
	LimitBytes      Limit = "bytes"
	LimitTokens     Limit = "tokens"
	LimitDepth      Limit = "depth"
	LimitStatements Limit = "statements"
	LimitSteps      Limit = "steps"
)

// LimitError reports that an input exceeded its parse budget. It unwraps to
// resilience.ErrBudgetExceeded so guarded serving-path callers classify it
// with the existing taxonomy.
type LimitError struct {
	Surface string // which input surface (SurfaceVerilog, ...)
	Limit   Limit  // which dimension tripped
	Max     int    // the configured cap
	Actual  int    // the observed value that exceeded it
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("%s input exceeds %s budget (%d > %d)", e.Surface, e.Limit, e.Actual, e.Max)
}

// Unwrap ties the limit into the resilience taxonomy.
func (e *LimitError) Unwrap() error { return resilience.ErrBudgetExceeded }

// Config holds the process-wide default budget per parser surface.
type Config struct {
	Verilog Budget
	Liberty Budget
	Script  Budget
	Cypher  Budget
}

// builtin is the shipped default: sized an order of magnitude above the
// largest legitimate inputs in the repository (multi-thousand-gate mapped
// netlists re-parsed through the frontend are the biggest), while still
// bounding adversarial blowups to well under a second of parse work.
var builtin = Config{
	Verilog: Budget{MaxBytes: 8 << 20, MaxTokens: 4 << 20, MaxDepth: 256, MaxStatements: 1 << 20, MaxSteps: 16 << 20},
	Liberty: Budget{MaxBytes: 4 << 20, MaxTokens: 2 << 20, MaxDepth: 64, MaxStatements: 1 << 19, MaxSteps: 8 << 20},
	Script:  Budget{MaxBytes: 1 << 20, MaxTokens: 1 << 19, MaxDepth: 64, MaxStatements: 1 << 16, MaxSteps: 4 << 20},
	Cypher:  Budget{MaxBytes: 1 << 16, MaxTokens: 1 << 13, MaxDepth: 64, MaxStatements: 1 << 10, MaxSteps: 1 << 20},
}

// defaults holds the active Config; nil means builtin.
var defaults atomic.Pointer[Config]

// Defaults returns the active process-wide budget configuration.
func Defaults() Config {
	if c := defaults.Load(); c != nil {
		return *c
	}
	return builtin
}

// SetDefaults replaces the process-wide budgets. Call once at startup
// (cmd/chatlsd does, from its -parse-* flags) before serving traffic.
func SetDefaults(c Config) {
	defaults.Store(&c)
}

// For returns the active default budget for a surface. Unknown surfaces get
// the zero (unlimited) budget.
func For(surface string) Budget {
	c := Defaults()
	switch surface {
	case SurfaceVerilog:
		return c.Verilog
	case SurfaceLiberty:
		return c.Liberty
	case SurfaceScript:
		return c.Script
	case SurfaceCypher:
		return c.Cypher
	}
	return Budget{}
}

// Meter enforces a Budget incrementally during one parse. The zero Meter
// (and a nil *Meter) enforces nothing, so parsers can thread it
// unconditionally. Meters are single-goroutine, like the parsers they meter.
type Meter struct {
	surface string
	budget  Budget
	tokens  int
	steps   int
	depth   int
}

// NewMeter starts metering one parse of the given surface under b.
func NewMeter(surface string, b Budget) *Meter {
	return &Meter{surface: surface, budget: b}
}

func (m *Meter) exceed(l Limit, max, actual int) error {
	return &LimitError{Surface: m.surface, Limit: l, Max: max, Actual: actual}
}

// CheckBytes validates the total input size up front.
func (m *Meter) CheckBytes(n int) error {
	if m == nil || m.budget.MaxBytes <= 0 || n <= m.budget.MaxBytes {
		return nil
	}
	return m.exceed(LimitBytes, m.budget.MaxBytes, n)
}

// Token counts one lexical token.
func (m *Meter) Token() error {
	if m == nil || m.budget.MaxTokens <= 0 {
		return nil
	}
	m.tokens++
	if m.tokens > m.budget.MaxTokens {
		return m.exceed(LimitTokens, m.budget.MaxTokens, m.tokens)
	}
	return nil
}

// Step counts one unit of parser/executor work.
func (m *Meter) Step() error {
	if m == nil || m.budget.MaxSteps <= 0 {
		return nil
	}
	m.steps++
	if m.steps > m.budget.MaxSteps {
		return m.exceed(LimitSteps, m.budget.MaxSteps, m.steps)
	}
	return nil
}

// StepN counts n units of work at once — e.g. bytes produced by a
// substitution, or bindings materialized by one query clause — so
// amplification attacks (small input, huge intermediate state) trip the
// step budget in proportion to the state they create.
func (m *Meter) StepN(n int) error {
	if m == nil || m.budget.MaxSteps <= 0 {
		return nil
	}
	m.steps += n
	if m.steps > m.budget.MaxSteps {
		return m.exceed(LimitSteps, m.budget.MaxSteps, m.steps)
	}
	return nil
}

// Statement counts one accepted statement/clause/declaration against
// MaxStatements; n is how many were accepted so far including this one.
func (m *Meter) Statement(n int) error {
	if m == nil || m.budget.MaxStatements <= 0 || n <= m.budget.MaxStatements {
		return nil
	}
	return m.exceed(LimitStatements, m.budget.MaxStatements, n)
}

// Enter descends one nesting level; pair with Exit on every return path.
func (m *Meter) Enter() error {
	if m == nil {
		return nil
	}
	m.depth++
	if m.budget.MaxDepth > 0 && m.depth > m.budget.MaxDepth {
		return m.exceed(LimitDepth, m.budget.MaxDepth, m.depth)
	}
	return nil
}

// Exit ascends one nesting level.
func (m *Meter) Exit() {
	if m != nil {
		m.depth--
	}
}
