// Package power implements activity-based power analysis of synthesized
// netlists — the reproduction's take on the paper's stated future work of
// extending the flow toward PrimePower. Dynamic power comes from real
// switching activity: the netlist is simulated over seeded random stimulus
// and every net's toggles are counted against its actual capacitive load
// (pin caps plus the wireload estimate), then combined with the library's
// leakage numbers.
package power

import (
	"fmt"
	"math/rand"

	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// Supply voltage of the Nangate45-like library, volts.
const VDD = 1.1

// internalFraction approximates cell-internal (short-circuit + parasitic)
// energy as a fraction of the output switching energy.
const internalFraction = 0.35

// Report is the outcome of one power analysis.
type Report struct {
	PeriodNS float64
	Vectors  int
	// All figures in microwatts.
	NetSwitching float64 // net (wire + pin) switching power
	CellInternal float64 // cell-internal dynamic power
	Leakage      float64
	Total        float64
	// ToggleRate is the average toggles per net per cycle.
	ToggleRate float64
}

// Analyze simulates the netlist over `vectors` random input cycles
// (seeded, reproducible) and integrates switching energy against each
// net's load. The clock period sets the frequency that converts energy per
// cycle into power.
func Analyze(nl *netlist.Netlist, wl *liberty.WireLoad, periodNS float64, vectors int, seed int64) (Report, error) {
	if periodNS <= 0 {
		return Report{}, fmt.Errorf("power analysis needs a positive clock period")
	}
	if vectors < 2 {
		vectors = 2
	}
	s, err := sim.New(nl)
	if err != nil {
		return Report{}, err
	}
	rng := rand.New(rand.NewSource(seed))

	loadCap := func(n *netlist.Net) float64 {
		c := 0.0
		for _, p := range n.Sinks {
			c += p.Cell.Ref.InputCap
		}
		if n.PO {
			c += 0.004
		}
		return c + wl.Cap(n.Fanout())
	}

	prev := make(map[*netlist.Net]bool, len(nl.Nets))
	toggles := make(map[*netlist.Net]int, len(nl.Nets))
	cellToggles := make(map[*netlist.Cell]int, len(nl.Cells))

	for v := 0; v < vectors; v++ {
		for _, in := range nl.Inputs {
			if err := s.Set(in.Name, rng.Intn(2) == 1); err != nil {
				return Report{}, err
			}
		}
		s.Step()
		s.Eval()
		for _, n := range nl.Nets {
			if n.Const || n.IsClk || n.IsRst {
				continue
			}
			val := s.Value(n)
			if v > 0 && val != prev[n] {
				toggles[n]++
				if n.Driver != nil {
					cellToggles[n.Driver]++
				}
			}
			prev[n] = val
		}
	}

	cycles := float64(vectors - 1)
	freqGHz := 1.0 / periodNS // GHz = 1/ns

	rep := Report{PeriodNS: periodNS, Vectors: vectors}
	totalToggles := 0
	// Iterate the stable slices, not the maps: float summation order must
	// be deterministic for reproducible reports.
	for _, n := range nl.Nets {
		tg := toggles[n]
		if tg == 0 {
			continue
		}
		// Energy per toggle: 1/2 C V^2. C in pF, V in volts -> pJ.
		// pJ per cycle * GHz = mW; *1000 = uW.
		alpha := float64(tg) / cycles
		energyPJ := 0.5 * loadCap(n) * VDD * VDD
		rep.NetSwitching += alpha * energyPJ * freqGHz * 1000
		totalToggles += tg
	}
	for _, c := range nl.Cells {
		tg := cellToggles[c]
		if tg == 0 {
			continue
		}
		alpha := float64(tg) / cycles
		energyPJ := 0.5 * c.Ref.InputCap * VDD * VDD * internalFraction * float64(len(c.Inputs)+1)
		rep.CellInternal += alpha * energyPJ * freqGHz * 1000
	}
	// Clock tree power: every sequential cell's clock pin toggles twice per
	// cycle.
	for _, c := range nl.Cells {
		if c.IsSeq() {
			energyPJ := 0.5 * c.Ref.InputCap * VDD * VDD
			rep.CellInternal += 2 * energyPJ * freqGHz * 1000
		}
	}
	rep.Leakage = nl.Leakage() / 1000 // nW -> uW
	rep.Total = rep.NetSwitching + rep.CellInternal + rep.Leakage
	if len(nl.Nets) > 0 {
		rep.ToggleRate = float64(totalToggles) / cycles / float64(len(nl.Nets))
	}
	return rep, nil
}

// Format renders the report the way report_power prints it.
func (r Report) Format(design string) string {
	return fmt.Sprintf(`**** report_power ****
Design: %s   clock period: %.3f ns   stimulus: %d vectors
Net switching power:  %10.3f uW
Cell internal power:  %10.3f uW
Cell leakage power:   %10.3f uW
Total power:          %10.3f uW
Average toggle rate:  %.4f toggles/net/cycle
`, design, r.PeriodNS, r.Vectors, r.NetSwitching, r.CellInternal, r.Leakage, r.Total, r.ToggleRate)
}
