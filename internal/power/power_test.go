package power

import (
	"math"
	"strings"
	"testing"

	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/verilog"
)

func elab(t *testing.T, src, top string) *netlist.Netlist {
	t.Helper()
	f, err := verilog.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	nl, err := netlist.Elaborate(f, top, nil, liberty.Nangate45())
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	return nl
}

const counterSrc = `
module counter(input clk, input en, output [7:0] q);
    reg [7:0] q;
    always @(posedge clk)
        if (en) q <= q + 8'd1;
endmodule`

func TestAnalyzeBasics(t *testing.T) {
	nl := elab(t, counterSrc, "counter")
	wl := nl.Lib.WireLoad("5K_heavy_1k")
	rep, err := Analyze(nl, wl, 2.0, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total <= 0 || rep.NetSwitching <= 0 || rep.CellInternal <= 0 || rep.Leakage <= 0 {
		t.Fatalf("power components must be positive: %+v", rep)
	}
	if math.Abs(rep.Total-(rep.NetSwitching+rep.CellInternal+rep.Leakage)) > 1e-9 {
		t.Error("total != sum of components")
	}
	if rep.ToggleRate <= 0 || rep.ToggleRate > 1 {
		t.Errorf("toggle rate %f out of (0,1]", rep.ToggleRate)
	}
}

func TestAnalyzeDeterministic(t *testing.T) {
	nl := elab(t, counterSrc, "counter")
	wl := nl.Lib.WireLoad("5K_heavy_1k")
	a, _ := Analyze(nl, wl, 2.0, 64, 7)
	b, _ := Analyze(nl, wl, 2.0, 64, 7)
	if a != b {
		t.Error("same seed must give identical reports")
	}
	c, _ := Analyze(nl, wl, 2.0, 64, 8)
	if a == c {
		t.Error("different seeds should sample different activity")
	}
}

func TestFasterClockMorePower(t *testing.T) {
	nl := elab(t, counterSrc, "counter")
	wl := nl.Lib.WireLoad("5K_heavy_1k")
	slow, _ := Analyze(nl, wl, 4.0, 64, 1)
	fast, _ := Analyze(nl, wl, 1.0, 64, 1)
	if fast.NetSwitching <= slow.NetSwitching {
		t.Errorf("4x clock should raise switching power: %f vs %f", fast.NetSwitching, slow.NetSwitching)
	}
	// Leakage is frequency-independent.
	if math.Abs(fast.Leakage-slow.Leakage) > 1e-9 {
		t.Error("leakage must not depend on frequency")
	}
}

func TestIdleLogicBurnsLessDynamicPower(t *testing.T) {
	// A design whose datapath is gated by an input held low toggles less
	// than one that free-runs; compare the same netlist under different
	// activity by exploiting the enable input statistics: with random en
	// (p=0.5) vs a structurally identical free-running counter.
	gated := elab(t, counterSrc, "counter")
	free := elab(t, `
module counter(input clk, input en, output [7:0] q);
    reg [7:0] q;
    always @(posedge clk) q <= q + 8'd1 + {7'd0, en};
endmodule`, "counter")
	wl := gated.Lib.WireLoad("5K_heavy_1k")
	g, _ := Analyze(gated, wl, 2.0, 128, 3)
	f, _ := Analyze(free, wl, 2.0, 128, 3)
	if g.ToggleRate >= f.ToggleRate {
		t.Errorf("gated design should toggle less: %f vs %f", g.ToggleRate, f.ToggleRate)
	}
}

func TestBiggerDesignMoreLeakage(t *testing.T) {
	small := elab(t, counterSrc, "counter")
	big := elab(t, `
module counter(input clk, input en, output [31:0] q);
    reg [31:0] q;
    always @(posedge clk)
        if (en) q <= q + 32'd1;
endmodule`, "counter")
	wl := small.Lib.WireLoad("5K_heavy_1k")
	s, _ := Analyze(small, wl, 2.0, 32, 1)
	b, _ := Analyze(big, wl, 2.0, 32, 1)
	if b.Leakage <= s.Leakage {
		t.Errorf("32-bit counter should leak more than 8-bit: %f vs %f", b.Leakage, s.Leakage)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	nl := elab(t, counterSrc, "counter")
	wl := nl.Lib.WireLoad("5K_heavy_1k")
	if _, err := Analyze(nl, wl, 0, 64, 1); err == nil {
		t.Error("zero period should error")
	}
	// Tiny vector counts are clamped, not rejected.
	if rep, err := Analyze(nl, wl, 2.0, 1, 1); err != nil || rep.Vectors < 2 {
		t.Errorf("vectors should clamp to >= 2: %+v, %v", rep, err)
	}
}

func TestFormat(t *testing.T) {
	nl := elab(t, counterSrc, "counter")
	wl := nl.Lib.WireLoad("5K_heavy_1k")
	rep, _ := Analyze(nl, wl, 2.0, 32, 1)
	text := rep.Format("counter")
	for _, want := range []string{"report_power", "Net switching", "leakage", "Total power", "counter"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
}
