// Package lru is a small, concurrency-safe LRU cache used by the serving
// layer to memoize the pipeline's expensive idempotent stages (baseline task
// construction, design-graph embeddings, strategy retrieval). Every cache
// keeps its own hit/miss counters so the server can surface them as metrics
// without wrapping each call site.
package lru

import (
	"container/list"
	"sync"
	"sync/atomic"
)

type entry[K comparable, V any] struct {
	key K
	val V
}

// Cache is a fixed-capacity least-recently-used cache. The zero value is not
// usable; construct with New. All methods are safe for concurrent use.
type Cache[K comparable, V any] struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recent
	items map[K]*list.Element

	hits, misses, evictions atomic.Int64
}

// New creates a cache holding at most capacity entries (capacity < 1 is
// treated as 1).
func New[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[K, V]{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[K]*list.Element),
	}
}

// Get returns the cached value and whether it was present, updating recency
// and the hit/miss counters.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits.Add(1)
		return el.Value.(*entry[K, V]).val, true
	}
	c.misses.Add(1)
	var zero V
	return zero, false
}

// Add stores a value, evicting the least recently used entry when the cache
// is full. Adding an existing key updates its value and recency.
func (c *Cache[K, V]) Add(key K, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*entry[K, V]).val = val
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.cap {
		back := c.ll.Back()
		if back != nil {
			c.ll.Remove(back)
			delete(c.items, back.Value.(*entry[K, V]).key)
			c.evictions.Add(1)
		}
	}
	c.items[key] = c.ll.PushFront(&entry[K, V]{key: key, val: val})
}

// Peek returns the cached value without updating recency or the hit/miss
// counters — for callers asking "is this already stored?" (e.g. the QoR
// log's append dedup) rather than serving a lookup.
func (c *Cache[K, V]) Peek(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		return el.Value.(*entry[K, V]).val, true
	}
	var zero V
	return zero, false
}

// Len returns the number of cached entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Hits returns the number of Get calls that found their key.
func (c *Cache[K, V]) Hits() int64 { return c.hits.Load() }

// Misses returns the number of Get calls that did not find their key.
func (c *Cache[K, V]) Misses() int64 { return c.misses.Load() }

// Evictions returns the number of entries displaced by capacity pressure
// (updates of an existing key do not count).
func (c *Cache[K, V]) Evictions() int64 { return c.evictions.Load() }
