package lru

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetAddEvict(t *testing.T) {
	c := New[string, int](2)
	if _, ok := c.Get("a"); ok {
		t.Error("empty cache should miss")
	}
	c.Add("a", 1)
	c.Add("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Errorf("a = %d,%v", v, ok)
	}
	// "a" is now most recent; adding "c" must evict "b".
	c.Add("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted (LRU)")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Errorf("a survived eviction wrongly: %d,%v", v, ok)
	}
	if v, ok := c.Get("c"); !ok || v != 3 {
		t.Errorf("c = %d,%v", v, ok)
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
}

func TestUpdateExistingKey(t *testing.T) {
	c := New[string, int](2)
	c.Add("a", 1)
	c.Add("a", 2)
	if c.Len() != 1 {
		t.Errorf("len = %d, want 1", c.Len())
	}
	if v, _ := c.Get("a"); v != 2 {
		t.Errorf("a = %d, want 2", v)
	}
}

func TestHitMissCounters(t *testing.T) {
	c := New[int, int](4)
	c.Add(1, 1)
	c.Get(1) // hit
	c.Get(2) // miss
	c.Get(1) // hit
	if c.Hits() != 2 || c.Misses() != 1 {
		t.Errorf("hits %d misses %d, want 2/1", c.Hits(), c.Misses())
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New[string, int](16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", i%32)
				c.Add(k, i)
				c.Get(k)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Errorf("len %d exceeds capacity", c.Len())
	}
}
