package synthexpert

import (
	"strings"
	"testing"

	"repro/internal/llm"
	"repro/internal/synth"
	"repro/internal/synthrag"
)

var sharedDB *synthrag.Database

func testExpert(t *testing.T) *Expert {
	t.Helper()
	if sharedDB == nil {
		db, err := synthrag.Build(synthrag.BuildConfig{Seed: 1, SkipSynth: true})
		if err != nil {
			t.Fatal(err)
		}
		sharedDB = db
	}
	return New(llm.New(llm.GPT4o, 1), sharedDB)
}

const baseline = `read_verilog d.v
current_design d
link
set_wire_load_model -name 5K_heavy_1k
create_clock -period 2.00 [get_ports clk]
compile
report_qor
`

func validate(t *testing.T, script string) {
	t.Helper()
	for _, is := range synth.ValidateScript(script) {
		if is.Severity == "error" {
			t.Errorf("refined script still invalid: %v\nscript:\n%s", is, script)
		}
	}
}

func TestRefineFixesHallucinatedCommand(t *testing.T) {
	e := testExpert(t)
	draft := `read_verilog d.v
current_design d
create_clock -period 2.00 [get_ports clk]
set_fanout_limit 16
compile_ultra
report_qor
`
	refined, steps := e.Refine(draft, baseline)
	validate(t, refined)
	if !strings.Contains(refined, "set_max_fanout 16") {
		t.Errorf("hallucinated set_fanout_limit not revised to set_max_fanout:\n%s", refined)
	}
	found := false
	for _, s := range steps {
		if strings.Contains(s.Before, "set_fanout_limit") && strings.Contains(s.After, "set_max_fanout") {
			found = true
		}
	}
	if !found {
		t.Errorf("no revision step recorded: %+v", steps)
	}
}

func TestRefineFixesWrongOption(t *testing.T) {
	e := testExpert(t)
	cases := []struct{ bad, want string }{
		{"compile -retime", "-retime"},                       // option belongs to compile_ultra
		{"compile_ultra -retiming", "compile_ultra -retime"}, // near-miss option
		{"compile_ultra -exact_map", "compile_ultra"},        // unknown option dropped
		{"compile -map_effort turbo", "compile"},             // invalid effort handled downstream
	}
	for _, c := range cases {
		draft := strings.Replace(baseline, "compile\n", c.bad+"\n", 1)
		refined, _ := e.Refine(draft, baseline)
		if !strings.Contains(refined, c.want) {
			t.Errorf("Refine(%q): want %q in:\n%s", c.bad, c.want, refined)
		}
		// -retiming and -exact_map must be gone.
		if strings.Contains(refined, "-retiming") || strings.Contains(refined, "-exact_map") {
			t.Errorf("Refine(%q) left an invalid option:\n%s", c.bad, refined)
		}
	}
}

func TestRefineFixesOrdering(t *testing.T) {
	e := testExpert(t)
	draft := `read_verilog d.v
current_design d
create_clock -period 2.00 [get_ports clk]
optimize_registers
compile_ultra
report_qor
`
	refined, _ := e.Refine(draft, baseline)
	validate(t, refined)
	lines := strings.Split(refined, "\n")
	compileAt, retimeAt := -1, -1
	for i, l := range lines {
		if strings.HasPrefix(l, "compile_ultra") {
			compileAt = i
		}
		if strings.HasPrefix(l, "optimize_registers") {
			retimeAt = i
		}
	}
	if retimeAt < compileAt {
		t.Errorf("optimize_registers not moved after compile:\n%s", refined)
	}
}

func TestRefineInsertsCompile(t *testing.T) {
	e := testExpert(t)
	draft := `read_verilog d.v
current_design d
create_clock -period 2.00 [get_ports clk]
report_qor
`
	refined, steps := e.Refine(draft, baseline)
	validate(t, refined)
	if !strings.Contains(refined, "compile") {
		t.Errorf("no compile inserted:\n%s", refined)
	}
	if len(steps) == 0 {
		t.Error("no steps recorded")
	}
}

func TestRefineRestoresConstraints(t *testing.T) {
	e := testExpert(t)
	// Draft lost the clock and wireload lines entirely.
	draft := `read_verilog d.v
current_design d
compile_ultra
report_qor
`
	refined, _ := e.Refine(draft, baseline)
	validate(t, refined)
	if !strings.Contains(refined, "create_clock -period 2.00") {
		t.Errorf("clock constraint not restored:\n%s", refined)
	}
	if !strings.Contains(refined, "set_wire_load_model") {
		t.Errorf("wireload not restored:\n%s", refined)
	}
}

func TestRefineFixesBadNumericArg(t *testing.T) {
	e := testExpert(t)
	draft := strings.Replace(baseline, "compile\n", "set_max_fanout max [current_design]\ncompile_ultra\n", 1)
	refined, _ := e.Refine(draft, baseline)
	validate(t, refined)
	if strings.Contains(refined, "set_max_fanout max") {
		t.Errorf("non-numeric fanout not fixed:\n%s", refined)
	}
	if !strings.Contains(refined, "set_max_fanout 16") {
		t.Errorf("fanout default not substituted:\n%s", refined)
	}
}

func TestRefineAddsReporting(t *testing.T) {
	e := testExpert(t)
	draft := `read_verilog d.v
current_design d
create_clock -period 2.00 [get_ports clk]
compile_ultra
`
	refined, _ := e.Refine(draft, baseline)
	if !strings.Contains(refined, "report_qor") {
		t.Errorf("report_qor not appended:\n%s", refined)
	}
}

// TestRefineAllHallucinations feeds every known hallucination through the
// revision loop; all must come out executable.
func TestRefineAllHallucinations(t *testing.T) {
	e := testExpert(t)
	for _, h := range []string{
		"optimize_timing -aggressive",
		"compile -retime",
		"balance_registers",
		"set_fanout_limit 16",
		"compile_ultra -effort high",
		"ungroup -recursive",
		"fix_hold_violations",
		"compile_ultra -map_effort high",
		"retime_design",
		"set_optimize_registers true",
	} {
		draft := strings.Replace(baseline, "compile\n", h+"\ncompile_ultra\n", 1)
		refined, _ := e.Refine(draft, baseline)
		errs := 0
		for _, is := range synth.ValidateScript(refined) {
			if is.Severity == "error" {
				errs++
				t.Errorf("hallucination %q: refined script invalid: %v", h, is)
			}
		}
		if errs == 0 && strings.Contains(refined, h) && synth.Commands[strings.Fields(h)[0]] == nil {
			t.Errorf("hallucination %q survived refinement:\n%s", h, refined)
		}
	}
}
