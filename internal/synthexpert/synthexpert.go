// Package synthexpert implements SynthExpert (paper §IV-C): the
// chain-of-thought mechanism that iteratively refines a drafted synthesis
// script. Every reasoning step formulates a retrieval query, fetches the
// pertinent information through SynthRAG (manual sections, command specs,
// constraints), and revises the step with it (Eq. 6) — which is what turns
// hallucinated or incompatible commands into executable ones and repairs
// ordering mistakes, instead of letting the script die in the tool.
package synthexpert

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/llm"
	"repro/internal/synth"
	"repro/internal/synthrag"
)

// Step records one chain-of-thought step: the thought, the retrieval query
// it formulated, what was retrieved, and the revision it produced.
type Step struct {
	Thought   string
	Query     string
	Retrieved string // manual doc ID, or ""
	Before    string
	After     string // "" means the line was dropped
}

// Expert binds the generator model to the retrieval database.
type Expert struct {
	Model *llm.Model
	DB    *synthrag.Database
}

// New creates a SynthExpert instance.
func New(model *llm.Model, db *synthrag.Database) *Expert {
	return &Expert{Model: model, DB: db}
}

// Refine runs the CoT revision loop over a drafted script. baseline is the
// original script whose constraints must survive (the evaluation forbids
// changing the clock). It returns the revised script and the reasoning
// steps taken.
func (e *Expert) Refine(draft, baseline string) (string, []Step) {
	out, steps, _ := e.RefineContext(context.Background(), draft, baseline)
	return out, steps
}

// RefineContext is Refine with cooperative cancellation: every reasoning
// step issues a retrieval query, so the context is checked once per revised
// line and between the revision phases. On cancellation it returns the
// steps taken so far along with the context's error.
func (e *Expert) RefineContext(ctx context.Context, draft, baseline string) (string, []Step, error) {
	var steps []Step
	lines := scriptLines(draft)

	// Step 1: constraints must be intact. Rebuild the preamble in baseline
	// order — the draft's version of each constraint wins when present, and
	// anything the draft lost is restored from the baseline.
	constraintCmds := map[string]bool{
		"read_verilog": true, "current_design": true, "link": true,
		"set_wire_load_model": true, "create_clock": true,
		"set_input_delay": true, "set_output_delay": true,
	}
	draftFor := map[string]string{}
	for _, l := range lines {
		c := cmdOf(l)
		if constraintCmds[c] {
			if _, dup := draftFor[c]; !dup {
				draftFor[c] = l
			}
		}
	}
	var preamble []string
	var restored []string
	for _, bl := range scriptLines(baseline) {
		c := cmdOf(bl)
		if !constraintCmds[c] {
			continue
		}
		if dl, ok := draftFor[c]; ok {
			preamble = append(preamble, dl)
			continue
		}
		preamble = append(preamble, bl)
		restored = append(restored, bl)
	}
	var body []string
	for _, l := range lines {
		if !constraintCmds[cmdOf(l)] {
			body = append(body, l)
		}
	}
	lines = append(preamble, body...)
	if len(restored) > 0 {
		steps = append(steps, Step{
			Thought:   "verify design constraints are preserved",
			Query:     "create_clock constraints wireload",
			Retrieved: "guide/wireload",
			Before:    "(missing constraint lines)",
			After:     strings.Join(restored, "; "),
		})
	}

	// Step 2..n: validate every command line against the manual, revising
	// hallucinated commands and incompatible options via retrieval.
	revised := make([]string, 0, len(lines))
	for _, line := range lines {
		if err := ctx.Err(); err != nil {
			return "", steps, err
		}
		newLine, step := e.reviseLine(line)
		if step != nil {
			steps = append(steps, *step)
		}
		if newLine != "" {
			revised = append(revised, newLine)
		}
	}
	lines = revised
	if err := ctx.Err(); err != nil {
		return "", steps, err
	}

	// Deduplicate: revision can map a hallucinated line onto a command the
	// script already contains, and single-instance constraints must not
	// repeat.
	lines = dedupLines(lines)

	// Ordering step: post-compile optimizations need a compile first, and
	// the script must actually compile the design.
	lines, ordSteps := e.fixOrdering(lines)
	steps = append(steps, ordSteps...)

	// Reporting step: the iteration loop needs report output.
	if !containsCmd(lines, "report_qor") {
		lines = append(lines, "report_qor")
		steps = append(steps, Step{
			Thought: "ensure QoR feedback is reported for the next iteration",
			Query:   "report_qor",
			After:   "report_qor",
		})
	}

	return strings.Join(lines, "\n") + "\n", steps, nil
}

func scriptLines(s string) []string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		l = strings.TrimSpace(l)
		if l == "" || strings.HasPrefix(l, "#") {
			continue
		}
		out = append(out, l)
	}
	return out
}

func cmdOf(line string) string {
	f := strings.Fields(line)
	if len(f) == 0 {
		return ""
	}
	return f[0]
}

// dedupLines removes exact repeated lines and repeated single-instance
// constraint commands (the first occurrence wins).
func dedupLines(lines []string) []string {
	singleInstance := map[string]bool{
		"create_clock": true, "set_wire_load_model": true, "set_max_fanout": true,
		"set_max_area": true, "set_input_delay": true, "set_output_delay": true,
		"current_design": true, "link": true,
	}
	seenLine := map[string]bool{}
	seenCmd := map[string]bool{}
	out := lines[:0]
	for _, l := range lines {
		c := cmdOf(l)
		if seenLine[l] {
			continue
		}
		if singleInstance[c] && seenCmd[c] {
			continue
		}
		seenLine[l] = true
		seenCmd[c] = true
		out = append(out, l)
	}
	// Back-to-back compile commands are redundant: the later (usually the
	// revision's stronger one) subsumes the earlier.
	isCompile := func(l string) bool {
		c := cmdOf(l)
		return c == "compile" || c == "compile_ultra"
	}
	dedup := out[:0]
	for i, l := range out {
		if isCompile(l) && i+1 < len(out) && isCompile(out[i+1]) {
			continue
		}
		dedup = append(dedup, l)
	}
	return dedup
}

func containsCmd(lines []string, cmd string) bool {
	for _, l := range lines {
		if cmdOf(l) == cmd {
			return true
		}
	}
	return false
}

// reviseLine checks one command line against the tool manual and revises it
// using retrieved documentation when it is invalid. Returns the revised
// line ("" to drop) and the reasoning step (nil when the line was fine).
func (e *Expert) reviseLine(line string) (string, *Step) {
	name := cmdOf(line)
	spec := synth.Commands[name]
	if spec != nil {
		// An option that belongs to a sibling command means the model
		// confused commands (compile -retime): switch to the command that
		// actually documents the option.
		if sibling := siblingByOption(line, spec); sibling != nil {
			rebuilt := rebuildLine(line, sibling.Name, sibling)
			return rebuilt, &Step{
				Thought:   fmt.Sprintf("option is documented under %s, not %s", sibling.Name, name),
				Query:     line,
				Retrieved: "cmd/" + sibling.Name,
				Before:    line,
				After:     rebuilt,
			}
		}
		fixed, changed := fixOptions(line, spec)
		if !changed {
			return line, nil
		}
		return fixed, &Step{
			Thought:   fmt.Sprintf("option check for %s against its manual entry", name),
			Query:     line,
			Retrieved: "cmd/" + name,
			Before:    line,
			After:     fixed,
		}
	}
	// Unknown command: retrieve the closest manual section and rebuild the
	// line around the documented command. Among candidates, a command
	// sharing the first word of the hallucinated name (set_*, balance_*)
	// is preferred.
	hits := e.DB.SearchManual(line, 5, e.Model)
	var target string
	var retrieved string
	prefix := strings.SplitN(name, "_", 2)[0]
	for _, h := range hits {
		if !strings.HasPrefix(h.Doc.ID, "cmd/") {
			continue
		}
		cand := strings.TrimPrefix(h.Doc.ID, "cmd/")
		if target == "" {
			target, retrieved = cand, h.Doc.ID
		}
		if strings.SplitN(cand, "_", 2)[0] == prefix {
			target, retrieved = cand, h.Doc.ID
			break
		}
	}
	step := &Step{
		Thought:   fmt.Sprintf("command %q is not in the tool manual; retrieve the intended command", name),
		Query:     line,
		Retrieved: retrieved,
		Before:    line,
	}
	if target == "" {
		return "", step // nothing close: drop the line
	}
	tspec := synth.Commands[target]
	rebuilt := rebuildLine(line, target, tspec)
	step.After = rebuilt
	return rebuilt, step
}

// siblingByOption returns another command's spec when the line carries an
// option that the current command lacks but the sibling documents exactly.
func siblingByOption(line string, spec *synth.CommandSpec) *synth.CommandSpec {
	for _, tok := range strings.Fields(line)[1:] {
		if !strings.HasPrefix(tok, "-") || isNumeric(tok) || spec.Opt(tok) != nil {
			continue
		}
		for _, name := range synth.CommandNames() {
			other := synth.Commands[name]
			if other.Name != spec.Name && other.Opt(tok) != nil {
				return other
			}
		}
	}
	return nil
}

// fixOptions repairs near-miss options (e.g. -retiming for -retime) and
// drops unknown ones; numeric arguments are sanity-checked.
func fixOptions(line string, spec *synth.CommandSpec) (string, bool) {
	fields := strings.Fields(line)
	out := []string{spec.Name}
	changed := false
	for i := 1; i < len(fields); i++ {
		tok := fields[i]
		if strings.HasPrefix(tok, "-") && !isNumeric(tok) {
			if spec.Opt(tok) != nil {
				out = append(out, tok)
				if o := spec.Opt(tok); o.HasArg && i+1 < len(fields) {
					i++
					out = append(out, fields[i])
				}
				continue
			}
			changed = true
			if near := nearestOption(tok, spec); near != nil {
				out = append(out, near.Name)
				if near.HasArg && i+1 < len(fields) && !strings.HasPrefix(fields[i+1], "-") {
					i++
					out = append(out, fields[i])
				}
				continue
			}
			// Unknown option with no near match: drop it (and a trailing
			// value that clearly belonged to it).
			if i+1 < len(fields) && !strings.HasPrefix(fields[i+1], "-") && !looksPositional(spec, fields[i+1]) {
				i++
			}
			continue
		}
		out = append(out, tok)
	}
	// Numeric-argument sanity for constraint commands.
	if spec.Name == "set_max_fanout" || spec.Name == "set_max_area" {
		fixedArg := false
		for j := 1; j < len(out); j++ {
			if strings.HasPrefix(out[j], "-") || strings.HasPrefix(out[j], "[") {
				continue
			}
			if _, err := strconv.ParseFloat(out[j], 64); err != nil {
				out[j] = "16"
				changed = true
			}
			fixedArg = true
			break
		}
		if !fixedArg {
			out = append(out, "16")
			changed = true
		}
	}
	return strings.Join(out, " "), changed
}

func looksPositional(spec *synth.CommandSpec, tok string) bool {
	if spec.MaxArgs == 0 {
		return false
	}
	return strings.HasPrefix(tok, "[") || isNumeric(tok)
}

func isNumeric(tok string) bool {
	_, err := strconv.ParseFloat(tok, 64)
	return err == nil
}

// nearestOption finds a spec option sharing a long common prefix with the
// bad token (catches -retiming vs -retime, -area_effort_high vs
// -area_high_effort_script).
func nearestOption(tok string, spec *synth.CommandSpec) *synth.OptSpec {
	var best *synth.OptSpec
	bestLen := 3 // require > 3 common chars after the dash
	for i := range spec.Opts {
		o := &spec.Opts[i]
		n := commonPrefix(tok, o.Name)
		if n > bestLen {
			bestLen = n
			best = o
		}
	}
	return best
}

func commonPrefix(a, b string) int {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return n
}

// rebuildLine reconstitutes a hallucinated line around the documented
// command: valid options carried over (with their arguments), numeric
// positional arguments preserved. Returns "" when no legal line results.
func rebuildLine(line, target string, tspec *synth.CommandSpec) string {
	fields := strings.Fields(line)
	out := []string{target}
	args := 0
	for i := 1; i < len(fields); i++ {
		tok := fields[i]
		if strings.HasPrefix(tok, "-") && !isNumeric(tok) {
			opt := tspec.Opt(tok)
			if opt == nil {
				opt = nearestOption(tok, tspec)
			}
			if opt == nil {
				continue
			}
			out = append(out, opt.Name)
			if opt.HasArg {
				if i+1 < len(fields) && !strings.HasPrefix(fields[i+1], "-") {
					i++
					out = append(out, fields[i])
				} else {
					// Option requires an argument we cannot supply: drop it.
					out = out[:len(out)-1]
				}
			}
			continue
		}
		if isNumeric(tok) && tspec.MaxArgs != 0 {
			out = append(out, tok)
			args++
		}
	}
	rebuilt := strings.Join(out, " ")
	if fixed, _ := fixOptions(rebuilt, tspec); fixed != "" {
		rebuilt = fixed
	}
	// A rebuilt line that still fails the command grammar is dropped rather
	// than emitted.
	if _, err := synth.ParseScript(rebuilt); err != nil {
		return ""
	}
	return rebuilt
}

// fixOrdering repairs sequencing requirements: post-compile commands need
// a preceding compile, and the script must compile at all.
func (e *Expert) fixOrdering(lines []string) ([]string, []Step) {
	var steps []Step
	hasCompile := containsCmd(lines, "compile") || containsCmd(lines, "compile_ultra")
	if !hasCompile {
		// Insert a compile before the first post-compile or report command.
		insertAt := len(lines)
		for i, l := range lines {
			switch cmdOf(l) {
			case "optimize_registers", "balance_buffers", "report_qor", "report_timing", "report_area", "report_constraint":
				insertAt = i
			}
			if insertAt == i {
				break
			}
		}
		lines = append(lines[:insertAt], append([]string{"compile_ultra"}, lines[insertAt:]...)...)
		steps = append(steps, Step{
			Thought:   "the script never compiles the design; the manual requires compile before optimization and reporting",
			Query:     "compile requirements",
			Retrieved: "cmd/compile_ultra",
			After:     "compile_ultra",
		})
	}
	// Post-compile commands before the first compile move after it.
	firstCompile := -1
	for i, l := range lines {
		if cmdOf(l) == "compile" || cmdOf(l) == "compile_ultra" {
			firstCompile = i
			break
		}
	}
	if firstCompile >= 0 {
		var early []string
		var rest []string
		for i, l := range lines {
			c := cmdOf(l)
			if i < firstCompile && (c == "optimize_registers" || c == "balance_buffers") {
				early = append(early, l)
				continue
			}
			rest = append(rest, l)
		}
		if len(early) > 0 {
			// Re-find the compile position in rest and splice after it.
			pos := -1
			for i, l := range rest {
				if cmdOf(l) == "compile" || cmdOf(l) == "compile_ultra" {
					pos = i
					break
				}
			}
			out := append([]string{}, rest[:pos+1]...)
			out = append(out, early...)
			out = append(out, rest[pos+1:]...)
			lines = out
			steps = append(steps, Step{
				Thought:   "optimize_registers/balance_buffers must follow compile (manual requirement)",
				Query:     "optimize_registers requirements",
				Retrieved: "cmd/optimize_registers",
				Before:    strings.Join(early, "; "),
				After:     "moved after compile",
			})
		}
	}
	return lines, steps
}
