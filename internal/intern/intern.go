// Package intern provides a process-wide string interning table for the
// names that flow between the Verilog frontend, the liberty library, the
// netlist, and the synthesis/STA layers. Elaboration generates the same
// computed names over and over — "n42", "U17", "busA[3]", "U17/D" — once
// per elaboration of every design, and the Pass@k and sweep harnesses
// re-elaborate the same corpus thousands of times per run. Interning turns
// each repeated name into a single process-lifetime allocation and a
// zero-allocation map hit thereafter.
//
// The table is sharded and safe for concurrent use; elaborations run in
// parallel during database builds. Lookup keys are composite structs
// (string, int) so the hit path allocates nothing: the formatted string is
// only built on a miss.
//
// Interned strings live for the life of the process. The table is bounded:
// each shard stops inserting past a fixed entry count and simply returns
// freshly built strings, so a hostile workload (fuzzing, unbounded
// generated names) degrades to the old allocation behaviour instead of
// growing memory without limit. Callers must never mutate the returned
// strings (Go strings are immutable; this is only a reminder that the
// values are shared across goroutines and callers).
package intern

import (
	"strconv"
	"sync"
)

const (
	shardCount = 64
	shardMask  = shardCount - 1
	// maxShardEntries bounds each shard's maps. 64 shards * 3 maps * 16384
	// entries caps the table at ~3M strings, far above any corpus need but
	// finite under adversarial input.
	maxShardEntries = 16384
)

type indexKey struct {
	prefix string
	i      int
}

type pairKey struct {
	a, b string
}

type shard struct {
	mu      sync.RWMutex
	plain   map[string]string
	index   map[indexKey]string
	bracket map[indexKey]string
	pair    map[pairKey]string
}

var shards [shardCount]*shard

func init() {
	for i := range shards {
		shards[i] = &shard{
			plain:   make(map[string]string),
			index:   make(map[indexKey]string),
			bracket: make(map[indexKey]string),
			pair:    make(map[pairKey]string),
		}
	}
}

// fnv1a hashes a string without allocating.
func fnv1a(s string, seed uint32) uint32 {
	h := seed
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

const fnvOffset = 2166136261

// S returns the canonical interned copy of s. A hit allocates nothing; a
// miss stores s itself (strings are immutable, so retaining the caller's
// string is safe).
func S(s string) string {
	sh := shards[fnv1a(s, fnvOffset)&shardMask]
	sh.mu.RLock()
	v, ok := sh.plain[s]
	sh.mu.RUnlock()
	if ok {
		return v
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if v, ok := sh.plain[s]; ok {
		return v
	}
	if len(sh.plain) >= maxShardEntries {
		return s
	}
	sh.plain[s] = s
	return s
}

// Index returns the interned form of prefix + decimal(i), e.g.
// Index("n", 42) == "n42". The hit path allocates nothing.
func Index(prefix string, i int) string {
	sh := shards[(fnv1a(prefix, fnvOffset)^uint32(i)*2654435761)&shardMask]
	k := indexKey{prefix: prefix, i: i}
	sh.mu.RLock()
	v, ok := sh.index[k]
	sh.mu.RUnlock()
	if ok {
		return v
	}
	s := prefix + strconv.Itoa(i)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if v, ok := sh.index[k]; ok {
		return v
	}
	if len(sh.index) >= maxShardEntries {
		return s
	}
	sh.index[k] = s
	return s
}

// Bracket returns the interned form of name + "[" + decimal(i) + "]", the
// per-bit port and bus net naming scheme, e.g. Bracket("busA", 3) ==
// "busA[3]". The hit path allocates nothing.
func Bracket(name string, i int) string {
	sh := shards[(fnv1a(name, fnvOffset)^uint32(i)*2654435761^0x9e3779b9)&shardMask]
	k := indexKey{prefix: name, i: i}
	sh.mu.RLock()
	v, ok := sh.bracket[k]
	sh.mu.RUnlock()
	if ok {
		return v
	}
	s := name + "[" + strconv.Itoa(i) + "]"
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if v, ok := sh.bracket[k]; ok {
		return v
	}
	if len(sh.bracket) >= maxShardEntries {
		return s
	}
	sh.bracket[k] = s
	return s
}

// Concat returns the interned form of a + b, e.g. Concat("U17", "/D") ==
// "U17/D". The hit path allocates nothing.
func Concat(a, b string) string {
	sh := shards[fnv1a(b, fnv1a(a, fnvOffset))&shardMask]
	k := pairKey{a: a, b: b}
	sh.mu.RLock()
	v, ok := sh.pair[k]
	sh.mu.RUnlock()
	if ok {
		return v
	}
	s := a + b
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if v, ok := sh.pair[k]; ok {
		return v
	}
	if len(sh.pair) >= maxShardEntries {
		return s
	}
	sh.pair[k] = s
	return s
}
