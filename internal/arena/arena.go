// Package arena provides chunked typed arenas: many small objects carved
// out of a few geometrically growing backing arrays. The point is allocator
// pressure, not speed of a single allocation — elaborating a large design
// creates hundreds of thousands of nets, cells, pins, and AST nodes, and
// allocating each with new() costs one GC-visible object apiece. An arena
// turns that into one allocation per chunk.
//
// Pointers returned by New are stable for the lifetime of the arena: chunks
// are never reallocated, resized, or moved, so callers may freely link the
// objects into graphs. Objects are individually unreclaimable — the arena
// holds every chunk alive until the arena itself (typically owned by the
// containing Netlist or parse result) becomes garbage. That is the same
// lifetime the per-object allocations had in practice: a netlist retains
// its dead nets' memory through Sinks slices and ID maps anyway.
//
// The zero value is ready to use. An Arena is not safe for concurrent use;
// give each goroutine (each Netlist, each parser) its own.
package arena

const (
	minChunkShift = 6  // first chunk: 64 objects
	maxChunkShift = 13 // chunks cap at 8192 objects
)

// Arena allocates zeroed values of T from chunked backing arrays.
type Arena[T any] struct {
	cur    []T // active chunk; len(cur) == cap(cur) means full
	grown  uint
	allocs int
}

// New returns a pointer to a new zero-valued T. The pointer remains valid
// and stable for the arena's lifetime.
func (a *Arena[T]) New() *T {
	if len(a.cur) == cap(a.cur) {
		shift := minChunkShift + a.grown
		if shift < maxChunkShift {
			a.grown++
		} else {
			shift = maxChunkShift
		}
		a.cur = make([]T, 0, 1<<shift)
	}
	a.cur = a.cur[:len(a.cur)+1]
	a.allocs++
	return &a.cur[len(a.cur)-1]
}

// Len returns the number of objects handed out so far.
func (a *Arena[T]) Len() int { return a.allocs }
