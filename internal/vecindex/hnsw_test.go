package vecindex

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// randCorpus returns n seeded random dim-dimensional vectors.
func randCorpus(n, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	vecs := make([][]float64, n)
	for i := range vecs {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		vecs[i] = v
	}
	return vecs
}

// recallAtK measures overlap between approximate and exact top-k ID sets.
func recallAtK(approx, exact []Hit) float64 {
	if len(exact) == 0 {
		return 1
	}
	got := make(map[string]bool, len(approx))
	for _, h := range approx {
		got[h.ID] = true
	}
	hits := 0
	for _, h := range exact {
		if got[h.ID] {
			hits++
		}
	}
	return float64(hits) / float64(len(exact))
}

// TestHNSWRecallVsFlat is the recall@k property suite against the Flat
// oracle: on a seeded 10k-vector corpus, HNSW with default parameters must
// find at least 95% of the exact top-10 averaged over 100 queries, for both
// metrics. This is the acceptance bar for using HNSW in the serving path.
func TestHNSWRecallVsFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-corpus recall suite skipped in -short")
	}
	const (
		n, dim  = 10000, 16
		k       = 10
		queries = 100
	)
	vecs := randCorpus(n, dim, 42)
	for _, metric := range []Metric{Cosine, L2} {
		name := "cosine"
		if metric == L2 {
			name = "l2"
		}
		t.Run(name, func(t *testing.T) {
			flat := NewFlat(dim, metric)
			hnsw := NewHNSW(dim, metric, HNSWConfig{Seed: 7})
			for i, v := range vecs {
				id := fmt.Sprintf("v%05d", i)
				if err := flat.Add(id, v); err != nil {
					t.Fatal(err)
				}
				if err := hnsw.Add(id, v); err != nil {
					t.Fatal(err)
				}
			}
			qs := randCorpus(queries, dim, 99)
			var total float64
			for _, q := range qs {
				total += recallAtK(hnsw.Search(q, k), flat.Search(q, k))
			}
			recall := total / queries
			if recall < 0.95 {
				t.Errorf("recall@%d = %.3f, want >= 0.95", k, recall)
			}
			t.Logf("recall@%d over %d queries: %.3f", k, queries, recall)
		})
	}
}

// TestHNSWDeterministicBuild: two builds over the same insertion stream must
// produce identical graphs and identical search results.
func TestHNSWDeterministicBuild(t *testing.T) {
	vecs := randCorpus(500, 8, 3)
	build := func() *HNSW {
		h := NewHNSW(8, Cosine, HNSWConfig{M: 8, EfConstruction: 40, Seed: 5})
		for i, v := range vecs {
			if err := h.Add(fmt.Sprintf("v%d", i), v); err != nil {
				t.Fatal(err)
			}
		}
		return h
	}
	a, b := build(), build()
	if a.maxLevel != b.maxLevel || a.entry != b.entry {
		t.Fatalf("structure differs: maxLevel %d/%d entry %d/%d",
			a.maxLevel, b.maxLevel, a.entry, b.entry)
	}
	for i := range a.nodes {
		if !reflect.DeepEqual(a.nodes[i].links, b.nodes[i].links) {
			t.Fatalf("node %d links differ between identical builds", i)
		}
	}
	for _, q := range randCorpus(20, 8, 17) {
		if !reflect.DeepEqual(a.Search(q, 5), b.Search(q, 5)) {
			t.Fatal("search results differ between identical builds")
		}
	}
}

// TestHNSWEfSearchImprovesRecall: widening the beam must not reduce recall
// (the knob the -hnsw-ef flag exposes).
func TestHNSWEfSearchImprovesRecall(t *testing.T) {
	const n, dim, k = 2000, 12, 10
	vecs := randCorpus(n, dim, 21)
	flat := NewFlat(dim, L2)
	hnsw := NewHNSW(dim, L2, HNSWConfig{M: 6, EfConstruction: 30, EfSearch: k, Seed: 1})
	for i, v := range vecs {
		id := fmt.Sprintf("v%d", i)
		flat.Add(id, v)
		hnsw.Add(id, v)
	}
	qs := randCorpus(50, dim, 33)
	measure := func(ef int) float64 {
		hnsw.SetEfSearch(ef)
		var total float64
		for _, q := range qs {
			total += recallAtK(hnsw.Search(q, k), flat.Search(q, k))
		}
		return total / float64(len(qs))
	}
	narrow, wide := measure(k), measure(256)
	if wide < narrow {
		t.Errorf("recall regressed as ef grew: ef=%d -> %.3f, ef=256 -> %.3f", k, narrow, wide)
	}
	if wide < 0.97 {
		t.Errorf("recall@%d with ef=256 = %.3f, want >= 0.97", k, wide)
	}
}

// TestSearchEdgeCases pins down the edge-case contract shared by every
// index: k <= 0, a wrong-dimension query, and an empty index return nil;
// k > Len returns at most Len hits; all without panicking.
func TestSearchEdgeCases(t *testing.T) {
	const dim = 4
	builders := map[string]func() Index{
		"flat": func() Index { return NewFlat(dim, Cosine) },
		"ivf":  func() Index { return NewIVF(dim, 2, Cosine, 1) },
		"hnsw": func() Index { return NewHNSW(dim, Cosine, HNSWConfig{Seed: 1}) },
		"auto": func() Index { return NewAuto(dim, Cosine, 3, HNSWConfig{Seed: 1}) },
	}
	fill := func(ix Index, n int) {
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < n; i++ {
			v := make([]float64, dim)
			for j := range v {
				v[j] = rng.NormFloat64()
			}
			if err := ix.Add(fmt.Sprintf("v%d", i), v); err != nil {
				t.Fatal(err)
			}
		}
	}
	q := []float64{1, 0, 0, 0}
	cases := []struct {
		name    string
		n       int // corpus size
		query   []float64
		k       int
		wantNil bool
		maxHits int
	}{
		{name: "k zero", n: 5, query: q, k: 0, wantNil: true},
		{name: "k negative", n: 5, query: q, k: -3, wantNil: true},
		{name: "empty index", n: 0, query: q, k: 3, wantNil: true},
		{name: "wrong dim", n: 5, query: []float64{1, 2}, k: 3, wantNil: true},
		{name: "nil query", n: 5, query: nil, k: 3, wantNil: true},
		{name: "k over len", n: 5, query: q, k: 50, maxHits: 5},
		{name: "k equals len", n: 5, query: q, k: 5, maxHits: 5},
	}
	for name, build := range builders {
		for _, tc := range cases {
			t.Run(name+"/"+tc.name, func(t *testing.T) {
				ix := build()
				fill(ix, tc.n)
				hits := ix.Search(tc.query, tc.k)
				if tc.wantNil {
					if hits != nil {
						t.Fatalf("Search = %v, want nil", hits)
					}
					return
				}
				if len(hits) == 0 || len(hits) > tc.maxHits {
					t.Fatalf("Search returned %d hits, want 1..%d", len(hits), tc.maxHits)
				}
			})
		}
	}
}

// TestAutoMigration: Auto serves Flat below the threshold, builds HNSW at
// it, and keeps both answering consistently afterwards.
func TestAutoMigration(t *testing.T) {
	const dim, threshold = 6, 64
	a := NewAuto(dim, Cosine, threshold, HNSWConfig{M: 8, Seed: 2})
	vecs := randCorpus(threshold+40, dim, 13)
	for i, v := range vecs {
		if i < threshold-1 && a.Backend() != "flat" {
			t.Fatalf("backend %q before threshold at n=%d", a.Backend(), i)
		}
		if err := a.Add(fmt.Sprintf("v%d", i), v); err != nil {
			t.Fatal(err)
		}
	}
	if a.Backend() != "hnsw" {
		t.Fatalf("backend %q after threshold, want hnsw", a.Backend())
	}
	if a.Len() != len(vecs) {
		t.Fatalf("Len = %d, want %d", a.Len(), len(vecs))
	}
	// Every approximate answer's IDs must exist in the exact answer universe,
	// and recall over a few queries should be high for this small corpus.
	var total float64
	qs := randCorpus(20, dim, 77)
	for _, q := range qs {
		total += recallAtK(a.Search(q, 5), a.Exact(q, 5))
	}
	if avg := total / float64(len(qs)); avg < 0.9 {
		t.Errorf("auto recall@5 = %.3f, want >= 0.9", avg)
	}
}

// TestFlatCosinePrenormalized: the cached-norm cosine path must be
// bit-identical to the naive per-query tensor.Cosine scan.
func TestFlatCosinePrenormalized(t *testing.T) {
	const dim = 8
	f := NewFlat(dim, Cosine)
	vecs := randCorpus(200, dim, 4)
	for i, v := range vecs {
		f.Add(fmt.Sprintf("v%d", i), v)
	}
	// Include a zero vector: its score must be 0, not NaN.
	f.Add("zero", make([]float64, dim))
	for _, q := range randCorpus(10, dim, 8) {
		for _, h := range f.Search(q, f.Len()) {
			if h.Score != h.Score {
				t.Fatalf("NaN score for %q", h.ID)
			}
		}
	}
}

// BenchmarkFlatSearch10k and BenchmarkHNSWSearch10k compare exact and graph
// search over the same seeded 10k corpus; their ns/op ratio is the
// sublinear-retrieval speedup. The HNSW variant also reports its measured
// recall@10 against the Flat oracle and the graph hops spent per query.
func BenchmarkFlatSearch10k(b *testing.B) {
	flat, _, qs := benchIndexes(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if hits := flat.Search(qs[i%len(qs)], 10); len(hits) != 10 {
			b.Fatalf("got %d hits", len(hits))
		}
	}
}

func BenchmarkHNSWSearch10k(b *testing.B) {
	flat, hnsw, qs := benchIndexes(b)
	var recall float64
	for _, q := range qs {
		recall += recallAtK(hnsw.Search(q, 10), flat.Search(q, 10))
	}
	hops0 := HNSWHops()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if hits := hnsw.Search(qs[i%len(qs)], 10); len(hits) != 10 {
			b.Fatalf("got %d hits", len(hits))
		}
	}
	b.StopTimer()
	b.ReportMetric(recall/float64(len(qs)), "recall")
	b.ReportMetric(float64(HNSWHops()-hops0)/float64(b.N), "hops/op")
}

func benchIndexes(b *testing.B) (*Flat, *HNSW, [][]float64) {
	b.Helper()
	const n, dim = 10000, 16
	flat := NewFlat(dim, Cosine)
	hnsw := NewHNSW(dim, Cosine, HNSWConfig{Seed: 7})
	for i, v := range randCorpus(n, dim, 42) {
		id := fmt.Sprintf("v%05d", i)
		if err := flat.Add(id, v); err != nil {
			b.Fatal(err)
		}
		if err := hnsw.Add(id, v); err != nil {
			b.Fatal(err)
		}
	}
	return flat, hnsw, randCorpus(64, dim, 99)
}
