package vecindex

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFlatExactSearch(t *testing.T) {
	ix := NewFlat(3, Cosine)
	vecs := map[string][]float64{
		"x":  {1, 0, 0},
		"y":  {0, 1, 0},
		"xy": {1, 1, 0},
		"z":  {0, 0, 1},
	}
	for id, v := range vecs {
		if err := ix.Add(id, v); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Len() != 4 {
		t.Errorf("Len = %d", ix.Len())
	}
	hits := ix.Search([]float64{1, 0.1, 0}, 2)
	if len(hits) != 2 || hits[0].ID != "x" {
		t.Fatalf("hits = %v, want x first", hits)
	}
	if hits[1].ID != "xy" {
		t.Errorf("second hit = %s, want xy", hits[1].ID)
	}
	if err := ix.Add("bad", []float64{1}); err == nil {
		t.Error("dimension mismatch should error")
	}
}

func TestFlatL2(t *testing.T) {
	ix := NewFlat(2, L2)
	ix.Add("near", []float64{1, 1})
	ix.Add("far", []float64{10, 10})
	hits := ix.Search([]float64{0, 0}, 2)
	if hits[0].ID != "near" {
		t.Errorf("L2 order wrong: %v", hits)
	}
	if hits[0].Score <= hits[1].Score {
		t.Error("scores must be higher-is-better")
	}
}

func TestFlatDeterministicTieBreak(t *testing.T) {
	ix := NewFlat(2, Cosine)
	ix.Add("b", []float64{1, 0})
	ix.Add("a", []float64{1, 0})
	hits := ix.Search([]float64{1, 0}, 2)
	if hits[0].ID != "a" || hits[1].ID != "b" {
		t.Errorf("tie break should be by ID: %v", hits)
	}
}

func clusteredData(rng *rand.Rand, perCluster int) (ids []string, vecs [][]float64, labels []int) {
	centers := [][]float64{{5, 0, 0, 0}, {0, 5, 0, 0}, {0, 0, 5, 0}, {0, 0, 0, 5}}
	for c, center := range centers {
		for i := 0; i < perCluster; i++ {
			v := make([]float64, 4)
			for j := range v {
				v[j] = center[j] + rng.NormFloat64()*0.4
			}
			ids = append(ids, fmt.Sprintf("c%d_%d", c, i))
			vecs = append(vecs, v)
			labels = append(labels, c)
		}
	}
	return
}

func TestIVFMatchesFlatOnClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ids, vecs, labels := clusteredData(rng, 25)
	flat := NewFlat(4, L2)
	ivf := NewIVF(4, 4, L2, 42)
	for i := range ids {
		flat.Add(ids[i], vecs[i])
		ivf.Add(ids[i], vecs[i])
	}
	// Query near each cluster center: IVF top-5 should match flat top-5.
	agree := 0
	total := 0
	for c := 0; c < 4; c++ {
		q := make([]float64, 4)
		q[c] = 5
		fh := flat.Search(q, 5)
		ih := ivf.Search(q, 5)
		if len(ih) != 5 {
			t.Fatalf("IVF returned %d hits", len(ih))
		}
		fset := map[string]bool{}
		for _, h := range fh {
			fset[h.ID] = true
		}
		for _, h := range ih {
			total++
			if fset[h.ID] {
				agree++
			}
		}
		// All IVF hits must be from the right cluster.
		for _, h := range ih {
			var idx int
			fmt.Sscanf(h.ID, "c%d_", &idx)
			if labels[0] >= 0 && idx != c {
				t.Errorf("query %d returned %s from wrong cluster", c, h.ID)
			}
		}
	}
	if agree < total*8/10 {
		t.Errorf("IVF agreement with flat too low: %d/%d", agree, total)
	}
}

func TestIVFRetrainAfterAdd(t *testing.T) {
	ivf := NewIVF(2, 2, L2, 1)
	ivf.Add("a", []float64{0, 0})
	_ = ivf.Search([]float64{0, 0}, 1) // forces train
	ivf.Add("b", []float64{9, 9})
	hits := ivf.Search([]float64{9, 9}, 1)
	if len(hits) != 1 || hits[0].ID != "b" {
		t.Errorf("post-add search = %v, want b", hits)
	}
}

func TestIVFEmpty(t *testing.T) {
	ivf := NewIVF(2, 4, Cosine, 3)
	if hits := ivf.Search([]float64{1, 0}, 3); len(hits) != 0 {
		t.Errorf("empty index returned %v", hits)
	}
}

// Property: flat search always returns results sorted by descending score
// and the top-1 is the true argmax.
func TestFlatTopOneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ix := NewFlat(3, L2)
		n := 5 + r.Intn(20)
		best := ""
		bestD := 1e18
		q := []float64{r.Float64(), r.Float64(), r.Float64()}
		for i := 0; i < n; i++ {
			v := []float64{r.Float64() * 10, r.Float64() * 10, r.Float64() * 10}
			id := fmt.Sprintf("v%02d", i)
			ix.Add(id, v)
			d := (v[0]-q[0])*(v[0]-q[0]) + (v[1]-q[1])*(v[1]-q[1]) + (v[2]-q[2])*(v[2]-q[2])
			if d < bestD {
				bestD, best = d, id
			}
		}
		hits := ix.Search(q, n)
		for i := 1; i < len(hits); i++ {
			if hits[i].Score > hits[i-1].Score {
				return false
			}
		}
		return hits[0].ID == best
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
