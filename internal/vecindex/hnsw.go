package vecindex

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"repro/internal/tensor"
)

// HNSW is a hierarchical navigable small-world graph index: search cost
// grows roughly logarithmically with the corpus instead of linearly like
// Flat, which is what keeps retrieval latency flat when the strategy corpus
// grows 100-1000x. Construction is deterministic: level assignment draws
// from a seeded generator in insertion order, and all neighbour selection
// breaks distance ties by insertion index, so two builds over the same
// stream are identical.
//
// Concurrency: Add mutates the graph and must not race with Search; once
// building is done (synthrag assembles indexes serially during Build), any
// number of concurrent Searches is safe — they only read the graph and
// touch process-wide atomic counters.
type HNSW struct {
	Metric Metric
	cfg    HNSWConfig
	dim    int
	ml     float64 // level-assignment multiplier 1/ln(M)
	rng    *rand.Rand

	nodes    []hnswNode
	entry    int32
	maxLevel int

	efSearch atomic.Int32 // mutable via SetEfSearch before serving
}

// HNSWConfig tunes the graph. Zero values select the defaults.
type HNSWConfig struct {
	M              int   // neighbours kept per node per layer (layer 0 keeps 2M); default 16
	EfConstruction int   // beam width while inserting; default 100
	EfSearch       int   // beam width while searching (recall/latency knob); default 64
	Seed           int64 // level-assignment seed
}

func (c HNSWConfig) withDefaults() HNSWConfig {
	if c.M <= 1 {
		c.M = 16
	}
	if c.EfConstruction <= 0 {
		c.EfConstruction = 100
	}
	if c.EfSearch <= 0 {
		c.EfSearch = 64
	}
	return c
}

type hnswNode struct {
	id    string
	vec   []float64 // original vector; reported scores use it
	key   []float64 // normalized under cosine (aliases vec under L2)
	links [][]int32 // neighbour lists, one per layer 0..level
}

// Process-wide HNSW counters (plain atomics so the package stays metric-
// free; the daemon exposes them as vecindex_hnsw_{nodes,hops}_total).
var (
	hnswNodesTotal atomic.Int64
	hnswHopsTotal  atomic.Int64
)

// HNSWNodes returns the total vectors inserted into HNSW indexes
// process-wide.
func HNSWNodes() int64 { return hnswNodesTotal.Load() }

// HNSWHops returns the total graph-edge traversals HNSW searches and
// inserts have performed process-wide — the work a Flat scan would have
// spent visiting every vector.
func HNSWHops() int64 { return hnswHopsTotal.Load() }

// NewHNSW creates an empty index for dim-dimensional vectors.
func NewHNSW(dim int, metric Metric, cfg HNSWConfig) *HNSW {
	cfg = cfg.withDefaults()
	h := &HNSW{
		Metric: metric,
		cfg:    cfg,
		dim:    dim,
		ml:     1 / math.Log(float64(cfg.M)),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		entry:  -1,
	}
	h.efSearch.Store(int32(cfg.EfSearch))
	return h
}

// SetEfSearch adjusts the search beam width (higher = better recall,
// slower). Call before the index is shared across searching goroutines.
func (h *HNSW) SetEfSearch(ef int) {
	if ef > 0 {
		h.efSearch.Store(int32(ef))
	}
}

// Len returns the number of stored vectors.
func (h *HNSW) Len() int { return len(h.nodes) }

// randomLevel draws the node's top layer: an exponential decay with rate
// 1/ln(M), capped so an adversarial draw cannot build a degenerate tower.
func (h *HNSW) randomLevel() int {
	u := 1 - h.rng.Float64() // (0, 1]: Log(0) is -Inf
	lvl := int(-math.Log(u) * h.ml)
	if lvl > 30 {
		lvl = 30
	}
	return lvl
}

// dist is the internal ranking distance (lower is better): 1-dot on
// normalized keys under cosine, squared Euclidean under L2. Both are
// monotone in the reported score, so ranking by them matches ranking by
// score while skipping per-comparison square roots and normalizations.
func (h *HNSW) dist(qkey []float64, n int32) float64 {
	key := h.nodes[n].key
	if h.Metric == Cosine {
		return 1 - tensor.Dot(qkey, key)
	}
	var s float64
	for i := range qkey {
		d := qkey[i] - key[i]
		s += d * d
	}
	return s
}

// Add inserts a vector; the index orders identically for any GOMAXPROCS
// because insertion is strictly sequential per index.
func (h *HNSW) Add(id string, vec []float64) error {
	if len(vec) != h.dim {
		return fmt.Errorf("vector %q has dim %d, index wants %d", id, len(vec), h.dim)
	}
	v := append([]float64(nil), vec...)
	key := v
	if h.Metric == Cosine {
		key = tensor.Normalize(v)
	}
	level := h.randomLevel()
	idx := int32(len(h.nodes))
	h.nodes = append(h.nodes, hnswNode{id: id, vec: v, key: key, links: make([][]int32, level+1)})
	hnswNodesTotal.Add(1)
	if idx == 0 {
		h.entry = 0
		h.maxLevel = level
		return nil
	}

	hops := 0
	ep := h.entry
	for lc := h.maxLevel; lc > level; lc-- {
		ep = h.greedyStep(key, ep, lc, &hops)
	}
	top := level
	if top > h.maxLevel {
		top = h.maxLevel
	}
	for lc := top; lc >= 0; lc-- {
		cands := h.searchLayer(key, ep, h.cfg.EfConstruction, lc, &hops)
		mmax := h.cfg.M
		if lc == 0 {
			mmax = 2 * h.cfg.M
		}
		nbrs := cands
		if len(nbrs) > h.cfg.M {
			nbrs = nbrs[:h.cfg.M]
		}
		links := make([]int32, len(nbrs))
		for i, c := range nbrs {
			links[i] = c.n
		}
		h.nodes[idx].links[lc] = links
		for _, u := range links {
			h.linkBack(u, idx, lc, mmax)
		}
		if len(cands) > 0 {
			ep = cands[0].n
		}
	}
	if level > h.maxLevel {
		h.maxLevel = level
		h.entry = idx
	}
	hnswHopsTotal.Add(int64(hops))
	return nil
}

// linkBack adds v to u's layer-lc neighbour list, keeping only the mmax
// closest (ties by insertion index) when the list overflows.
func (h *HNSW) linkBack(u, v int32, lc, mmax int) {
	links := append(h.nodes[u].links[lc], v)
	if len(links) > mmax {
		ukey := h.nodes[u].key
		ds := make([]distNode, len(links))
		for i, w := range links {
			ds[i] = distNode{d: h.dist(ukey, w), n: w}
		}
		sortDistNodes(ds)
		links = links[:mmax]
		for i := range links {
			links[i] = ds[i].n
		}
	}
	h.nodes[u].links[lc] = links
}

// greedyStep descends one layer: repeatedly move to the closest neighbour
// until no neighbour improves, returning the local minimum.
func (h *HNSW) greedyStep(qkey []float64, ep int32, lc int, hops *int) int32 {
	best := ep
	bestD := h.dist(qkey, ep)
	for {
		improved := false
		for _, u := range h.nodes[best].links[lc] {
			*hops++
			if d := h.dist(qkey, u); d < bestD || (d == bestD && u < best) {
				best, bestD = u, d
				improved = true
			}
		}
		if !improved {
			return best
		}
	}
}

type distNode struct {
	d float64
	n int32
}

// less orders by distance, then insertion index — the deterministic
// tie-break used everywhere in this file.
func (a distNode) less(b distNode) bool {
	if a.d != b.d {
		return a.d < b.d
	}
	return a.n < b.n
}

func sortDistNodes(ds []distNode) {
	// Insertion sort: lists here are tiny (<= 2M+1 or ef) and mostly sorted.
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j].less(ds[j-1]); j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

// candHeap is a min-heap of frontier nodes (closest first).
type candHeap []distNode

func (h candHeap) Len() int           { return len(h) }
func (h candHeap) Less(i, j int) bool { return h[i].less(h[j]) }
func (h candHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x any)        { *h = append(*h, x.(distNode)) }
func (h *candHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// resultHeap is a max-heap of the ef best so far (worst first, for cheap
// eviction).
type resultHeap []distNode

func (h resultHeap) Len() int           { return len(h) }
func (h resultHeap) Less(i, j int) bool { return h[j].less(h[i]) }
func (h resultHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x any)        { *h = append(*h, x.(distNode)) }
func (h *resultHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// searchLayer runs the beam search of the HNSW paper on one layer,
// returning the ef closest reachable nodes sorted ascending by (distance,
// index).
func (h *HNSW) searchLayer(qkey []float64, ep int32, ef, lc int, hops *int) []distNode {
	visited := make([]bool, len(h.nodes))
	visited[ep] = true
	d0 := distNode{d: h.dist(qkey, ep), n: ep}
	cand := candHeap{d0}
	res := resultHeap{d0}
	for len(cand) > 0 {
		c := heap.Pop(&cand).(distNode)
		if len(res) >= ef && res[0].d < c.d {
			break // the frontier is farther than the worst kept result
		}
		for _, u := range h.nodes[c.n].links[lc] {
			if visited[u] {
				continue
			}
			visited[u] = true
			*hops++
			d := h.dist(qkey, u)
			if len(res) < ef || d < res[0].d || (d == res[0].d && u < res[0].n) {
				heap.Push(&cand, distNode{d: d, n: u})
				heap.Push(&res, distNode{d: d, n: u})
				if len(res) > ef {
					heap.Pop(&res)
				}
			}
		}
	}
	out := []distNode(res)
	sortDistNodes(out)
	return out
}

// Search returns the approximate top-k hits sorted by descending score
// (ties by ID). k <= 0, an empty index, or a query of the wrong dimension
// returns nil; k > Len returns at most every reachable vector. Reported
// scores are computed against the original stored vectors with the same
// metric expression Flat uses, so a hit both indexes return carries the
// same score.
func (h *HNSW) Search(query []float64, k int) []Hit {
	if k <= 0 || len(h.nodes) == 0 || len(query) != h.dim {
		return nil
	}
	qkey := query
	if h.Metric == Cosine {
		qkey = tensor.Normalize(query)
	}
	hops := 0
	ep := h.entry
	for lc := h.maxLevel; lc > 0; lc-- {
		ep = h.greedyStep(qkey, ep, lc, &hops)
	}
	ef := int(h.efSearch.Load())
	if ef < k {
		ef = k
	}
	cands := h.searchLayer(qkey, ep, ef, 0, &hops)
	hnswHopsTotal.Add(int64(hops))
	if k < len(cands) {
		cands = cands[:k]
	}
	hits := make([]Hit, len(cands))
	for i, c := range cands {
		n := h.nodes[c.n]
		hits[i] = Hit{ID: n.id, Score: score(h.Metric, query, n.vec)}
	}
	sortHits(hits)
	return hits
}
