package vecindex

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/tensor"
)

// HNSW is a hierarchical navigable small-world graph index: search cost
// grows roughly logarithmically with the corpus instead of linearly like
// Flat, which is what keeps retrieval latency flat when the strategy corpus
// grows 100-1000x. Construction is deterministic: level assignment draws
// from a seeded generator in insertion order, and all neighbour selection
// breaks distance ties by insertion index, so two builds over the same
// stream are identical.
//
// Concurrency: Add mutates the graph and must not race with Search; once
// building is done (synthrag assembles indexes serially during Build), any
// number of concurrent Searches is safe — they only read the graph and
// touch process-wide atomic counters.
type HNSW struct {
	Metric Metric
	cfg    HNSWConfig
	dim    int
	ml     float64 // level-assignment multiplier 1/ln(M)
	rng    *rand.Rand

	nodes    []hnswNode
	entry    int32
	maxLevel int

	efSearch atomic.Int32 // mutable via SetEfSearch before serving
}

// HNSWConfig tunes the graph. Zero values select the defaults.
type HNSWConfig struct {
	M              int   // neighbours kept per node per layer (layer 0 keeps 2M); default 16
	EfConstruction int   // beam width while inserting; default 100
	EfSearch       int   // beam width while searching (recall/latency knob); default 64
	Seed           int64 // level-assignment seed
}

func (c HNSWConfig) withDefaults() HNSWConfig {
	if c.M <= 1 {
		c.M = 16
	}
	if c.EfConstruction <= 0 {
		c.EfConstruction = 100
	}
	if c.EfSearch <= 0 {
		c.EfSearch = 64
	}
	return c
}

type hnswNode struct {
	id    string
	vec   []float64 // original vector; reported scores use it
	key   []float64 // normalized under cosine (aliases vec under L2)
	links [][]int32 // neighbour lists, one per layer 0..level
}

// Process-wide HNSW counters (plain atomics so the package stays metric-
// free; the daemon exposes them as vecindex_hnsw_{nodes,hops}_total).
var (
	hnswNodesTotal atomic.Int64
	hnswHopsTotal  atomic.Int64
)

// HNSWNodes returns the total vectors inserted into HNSW indexes
// process-wide.
func HNSWNodes() int64 { return hnswNodesTotal.Load() }

// HNSWHops returns the total graph-edge traversals HNSW searches and
// inserts have performed process-wide — the work a Flat scan would have
// spent visiting every vector.
func HNSWHops() int64 { return hnswHopsTotal.Load() }

// NewHNSW creates an empty index for dim-dimensional vectors.
func NewHNSW(dim int, metric Metric, cfg HNSWConfig) *HNSW {
	cfg = cfg.withDefaults()
	h := &HNSW{
		Metric: metric,
		cfg:    cfg,
		dim:    dim,
		ml:     1 / math.Log(float64(cfg.M)),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		entry:  -1,
	}
	h.efSearch.Store(int32(cfg.EfSearch))
	return h
}

// SetEfSearch adjusts the search beam width (higher = better recall,
// slower). Call before the index is shared across searching goroutines.
func (h *HNSW) SetEfSearch(ef int) {
	if ef > 0 {
		h.efSearch.Store(int32(ef))
	}
}

// Len returns the number of stored vectors.
func (h *HNSW) Len() int { return len(h.nodes) }

// randomLevel draws the node's top layer: an exponential decay with rate
// 1/ln(M), capped so an adversarial draw cannot build a degenerate tower.
func (h *HNSW) randomLevel() int {
	u := 1 - h.rng.Float64() // (0, 1]: Log(0) is -Inf
	lvl := int(-math.Log(u) * h.ml)
	if lvl > 30 {
		lvl = 30
	}
	return lvl
}

// dist is the internal ranking distance (lower is better): 1-dot on
// normalized keys under cosine, squared Euclidean under L2. Both are
// monotone in the reported score, so ranking by them matches ranking by
// score while skipping per-comparison square roots and normalizations.
func (h *HNSW) dist(qkey []float64, n int32) float64 {
	key := h.nodes[n].key
	if h.Metric == Cosine {
		return 1 - tensor.Dot(qkey, key)
	}
	var s float64
	for i := range qkey {
		d := qkey[i] - key[i]
		s += d * d
	}
	return s
}

// Add inserts a vector; the index orders identically for any GOMAXPROCS
// because insertion is strictly sequential per index.
func (h *HNSW) Add(id string, vec []float64) error {
	if len(vec) != h.dim {
		return fmt.Errorf("vector %q has dim %d, index wants %d", id, len(vec), h.dim)
	}
	v := append([]float64(nil), vec...)
	key := v
	if h.Metric == Cosine {
		key = tensor.Normalize(v)
	}
	level := h.randomLevel()
	idx := int32(len(h.nodes))
	h.nodes = append(h.nodes, hnswNode{id: id, vec: v, key: key, links: make([][]int32, level+1)})
	hnswNodesTotal.Add(1)
	if idx == 0 {
		h.entry = 0
		h.maxLevel = level
		return nil
	}

	sc := searchPool.Get().(*searchScratch)
	defer searchPool.Put(sc)
	hops := 0
	ep := h.entry
	for lc := h.maxLevel; lc > level; lc-- {
		ep = h.greedyStep(key, ep, lc, &hops)
	}
	top := level
	if top > h.maxLevel {
		top = h.maxLevel
	}
	for lc := top; lc >= 0; lc-- {
		cands := h.searchLayer(key, ep, h.cfg.EfConstruction, lc, &hops, sc)
		mmax := h.cfg.M
		if lc == 0 {
			mmax = 2 * h.cfg.M
		}
		nbrs := cands
		if len(nbrs) > h.cfg.M {
			nbrs = nbrs[:h.cfg.M]
		}
		links := make([]int32, len(nbrs))
		for i, c := range nbrs {
			links[i] = c.n
		}
		h.nodes[idx].links[lc] = links
		for _, u := range links {
			h.linkBack(u, idx, lc, mmax, sc)
		}
		if len(cands) > 0 {
			ep = cands[0].n
		}
	}
	if level > h.maxLevel {
		h.maxLevel = level
		h.entry = idx
	}
	hnswHopsTotal.Add(int64(hops))
	return nil
}

// linkBack adds v to u's layer-lc neighbour list, keeping only the mmax
// closest (ties by insertion index) when the list overflows.
func (h *HNSW) linkBack(u, v int32, lc, mmax int, sc *searchScratch) {
	links := append(h.nodes[u].links[lc], v)
	if len(links) > mmax {
		ukey := h.nodes[u].key
		if cap(sc.links) < len(links) {
			sc.links = make([]distNode, 0, 2*len(links))
		}
		ds := sc.links[:len(links)]
		for i, w := range links {
			ds[i] = distNode{d: h.dist(ukey, w), n: w}
		}
		sortDistNodes(ds)
		links = links[:mmax]
		for i := range links {
			links[i] = ds[i].n
		}
	}
	h.nodes[u].links[lc] = links
}

// greedyStep descends one layer: repeatedly move to the closest neighbour
// until no neighbour improves, returning the local minimum.
func (h *HNSW) greedyStep(qkey []float64, ep int32, lc int, hops *int) int32 {
	best := ep
	bestD := h.dist(qkey, ep)
	for {
		improved := false
		for _, u := range h.nodes[best].links[lc] {
			*hops++
			if d := h.dist(qkey, u); d < bestD || (d == bestD && u < best) {
				best, bestD = u, d
				improved = true
			}
		}
		if !improved {
			return best
		}
	}
}

type distNode struct {
	d float64
	n int32
}

// less orders by distance, then insertion index — the deterministic
// tie-break used everywhere in this file.
func (a distNode) less(b distNode) bool {
	if a.d != b.d {
		return a.d < b.d
	}
	return a.n < b.n
}

func sortDistNodes(ds []distNode) {
	// Insertion sort: lists here are tiny (<= 2M+1 or ef) and mostly sorted.
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j].less(ds[j-1]); j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

// candHeap is a min-heap of frontier nodes (closest first). The heap ops are
// hand-rolled on the concrete element type: container/heap would box every
// distNode through an interface, allocating on each push. The popped-value
// sequence of any binary heap over unique (distance, index) keys is the
// same, so the search is unaffected by the swap.
type candHeap []distNode

func (h *candHeap) push(x distNode) {
	s := append(*h, x)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !s[i].less(s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
	*h = s
}

func (h *candHeap) pop() distNode {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < last && s[l].less(s[m]) {
			m = l
		}
		if r < last && s[r].less(s[m]) {
			m = r
		}
		if m == i {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	*h = s
	return top
}

// resultHeap is a max-heap of the ef best so far (worst first, for cheap
// eviction).
type resultHeap []distNode

func (h *resultHeap) push(x distNode) {
	s := append(*h, x)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !s[p].less(s[i]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
	*h = s
}

func (h *resultHeap) pop() distNode {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < last && s[m].less(s[l]) {
			m = l
		}
		if r < last && s[m].less(s[r]) {
			m = r
		}
		if m == i {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	*h = s
	return top
}

// searchScratch is the per-search working set, pooled so concurrent
// searches neither race on it nor allocate it fresh. The visited set is
// epoch-stamped: bumping the epoch invalidates every mark from earlier
// searches without touching the array, so a search over an N-node graph
// clears nothing on the hot path.
type searchScratch struct {
	visited []uint32
	epoch   uint32
	cand    candHeap
	res     resultHeap
	links   []distNode // linkBack's overflow sorting buffer
}

var searchPool = sync.Pool{New: func() any { return new(searchScratch) }}

// begin readies the scratch for one searchLayer pass over n nodes.
func (sc *searchScratch) begin(n int) {
	if cap(sc.visited) < n {
		sc.visited = make([]uint32, n)
		sc.epoch = 0
	}
	sc.visited = sc.visited[:n]
	sc.epoch++
	if sc.epoch == 0 { // epoch wrapped: stale marks could collide, clear
		for i := range sc.visited {
			sc.visited[i] = 0
		}
		sc.epoch = 1
	}
	sc.cand = sc.cand[:0]
	sc.res = sc.res[:0]
}

// searchLayer runs the beam search of the HNSW paper on one layer,
// returning the ef closest reachable nodes sorted ascending by (distance,
// index). The result aliases sc and is valid until sc's next use.
func (h *HNSW) searchLayer(qkey []float64, ep int32, ef, lc int, hops *int, sc *searchScratch) []distNode {
	sc.begin(len(h.nodes))
	sc.visited[ep] = sc.epoch
	d0 := distNode{d: h.dist(qkey, ep), n: ep}
	sc.cand.push(d0)
	sc.res.push(d0)
	for len(sc.cand) > 0 {
		c := sc.cand.pop()
		if len(sc.res) >= ef && sc.res[0].d < c.d {
			break // the frontier is farther than the worst kept result
		}
		for _, u := range h.nodes[c.n].links[lc] {
			if sc.visited[u] == sc.epoch {
				continue
			}
			sc.visited[u] = sc.epoch
			*hops++
			d := h.dist(qkey, u)
			if len(sc.res) < ef || d < sc.res[0].d || (d == sc.res[0].d && u < sc.res[0].n) {
				sc.cand.push(distNode{d: d, n: u})
				sc.res.push(distNode{d: d, n: u})
				if len(sc.res) > ef {
					sc.res.pop()
				}
			}
		}
	}
	out := []distNode(sc.res)
	sortDistNodes(out)
	return out
}

// Search returns the approximate top-k hits sorted by descending score
// (ties by ID). k <= 0, an empty index, or a query of the wrong dimension
// returns nil; k > Len returns at most every reachable vector. Reported
// scores are computed against the original stored vectors with the same
// metric expression Flat uses, so a hit both indexes return carries the
// same score.
func (h *HNSW) Search(query []float64, k int) []Hit {
	if k <= 0 || len(h.nodes) == 0 || len(query) != h.dim {
		return nil
	}
	qkey := query
	if h.Metric == Cosine {
		qkey = tensor.Normalize(query)
	}
	sc := searchPool.Get().(*searchScratch)
	hops := 0
	ep := h.entry
	for lc := h.maxLevel; lc > 0; lc-- {
		ep = h.greedyStep(qkey, ep, lc, &hops)
	}
	ef := int(h.efSearch.Load())
	if ef < k {
		ef = k
	}
	cands := h.searchLayer(qkey, ep, ef, 0, &hops, sc)
	hnswHopsTotal.Add(int64(hops))
	if k < len(cands) {
		cands = cands[:k]
	}
	hits := make([]Hit, len(cands))
	for i, c := range cands {
		n := h.nodes[c.n]
		hits[i] = Hit{ID: n.id, Score: score(h.Metric, query, n.vec)}
	}
	searchPool.Put(sc)
	sortHits(hits)
	return hits
}
