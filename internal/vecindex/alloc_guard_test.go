//go:build !race

package vecindex

import (
	"fmt"
	"testing"
)

// TestHNSWSearchAllocGuard pins the pooled search path: once the scratch
// pool is warm, a query allocates only the normalized query copy and the
// returned hit slice — not the visited set or the beam heaps. The budget is
// part of the perf contract (DESIGN.md "Memory and GC discipline"); skipped
// under -race, which changes allocation counts.
func TestHNSWSearchAllocGuard(t *testing.T) {
	const n, dim = 2000, 16
	h := NewHNSW(dim, Cosine, HNSWConfig{Seed: 7})
	for i, v := range randCorpus(n, dim, 42) {
		if err := h.Add(fmt.Sprintf("v%04d", i), v); err != nil {
			t.Fatal(err)
		}
	}
	qs := randCorpus(16, dim, 77)
	qi := 0
	allocs := testing.AllocsPerRun(50, func() {
		if hits := h.Search(qs[qi%len(qs)], 10); len(hits) != 10 {
			t.Fatalf("got %d hits", len(hits))
		}
		qi++
	})
	t.Logf("HNSW Search: %v allocs/op", allocs)
	const budget = 6
	if allocs > budget {
		t.Errorf("HNSW Search allocs/op = %v, budget %d", allocs, budget)
	}
}
