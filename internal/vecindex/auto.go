package vecindex

import "fmt"

// DefaultAutoThreshold is the corpus size at which Auto switches from exact
// Flat scans to the HNSW graph. Below it a brute-force scan over a few
// hundred vectors is faster than graph traversal and exact besides; above
// it the scan's linear cost starts to dominate retrieval latency.
const DefaultAutoThreshold = 1024

// Auto is an Index that serves exact Flat searches for small corpora and
// transparently migrates to HNSW once the corpus crosses a size threshold,
// so synthrag retrieval stays exact on toy libraries and sublinear on
// production-scale ones without callers choosing. The Flat index is always
// maintained: it is the exactness oracle and the migration source.
type Auto struct {
	flat      *Flat
	hnsw      *HNSW
	threshold int
	cfg       HNSWConfig
}

// NewAuto creates an auto-selecting index. threshold <= 0 selects
// DefaultAutoThreshold. cfg seeds the HNSW built at migration (zero value
// for defaults).
func NewAuto(dim int, metric Metric, threshold int, cfg HNSWConfig) *Auto {
	if threshold <= 0 {
		threshold = DefaultAutoThreshold
	}
	return &Auto{flat: NewFlat(dim, metric), threshold: threshold, cfg: cfg}
}

// Add inserts a vector, building the HNSW graph when the corpus crosses the
// threshold. Like HNSW.Add it must not run concurrently with Search.
func (a *Auto) Add(id string, vec []float64) error {
	if err := a.flat.Add(id, vec); err != nil {
		return err
	}
	if a.hnsw != nil {
		return a.hnsw.Add(id, vec)
	}
	if a.flat.Len() >= a.threshold {
		h := NewHNSW(a.flat.dim, a.flat.Metric, a.cfg)
		for i, v := range a.flat.vecs {
			if err := h.Add(a.flat.ids[i], v); err != nil {
				return fmt.Errorf("auto index migration: %w", err)
			}
		}
		a.hnsw = h
	}
	return nil
}

// Search delegates to HNSW above the threshold, Flat below it.
func (a *Auto) Search(query []float64, k int) []Hit {
	if a.hnsw != nil {
		return a.hnsw.Search(query, k)
	}
	return a.flat.Search(query, k)
}

// Len returns the number of stored vectors.
func (a *Auto) Len() int { return a.flat.Len() }

// Backend names the index currently answering searches ("flat" or "hnsw").
func (a *Auto) Backend() string {
	if a.hnsw != nil {
		return "hnsw"
	}
	return "flat"
}

// Exact always searches the Flat oracle, regardless of backend.
func (a *Auto) Exact(query []float64, k int) []Hit { return a.flat.Search(query, k) }

// SetEfSearch forwards the beam-width knob to the HNSW backend if built.
func (a *Auto) SetEfSearch(ef int) {
	if a.hnsw != nil {
		a.hnsw.SetEfSearch(ef)
	}
	if ef > 0 {
		a.cfg.EfSearch = ef
	}
}
