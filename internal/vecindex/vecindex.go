// Package vecindex provides vector similarity search for SynthRAG's
// embedding-based retrieval (paper Eq. 4), standing in for FAISS: an exact
// flat index and a k-means IVF index with probe control, over cosine or
// Euclidean metrics.
package vecindex

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/tensor"
)

// Metric selects the similarity function.
type Metric int

const (
	Cosine Metric = iota // higher is better
	L2                   // lower distance is better; scores are negated distances
)

// Hit is one search result; Score is always "higher is better".
type Hit struct {
	ID    string
	Score float64
}

// Index is the common search interface.
type Index interface {
	Add(id string, vec []float64) error
	Search(query []float64, k int) []Hit
	Len() int
}

// score converts a vector pair to a higher-is-better score.
func score(metric Metric, q, v []float64) float64 {
	switch metric {
	case Cosine:
		return tensor.Cosine(q, v)
	default:
		return -tensor.L2Dist(q, v)
	}
}

// Flat is an exact brute-force index. It is the correctness oracle the
// approximate indexes (IVF, HNSW) are tested against, the way the naive
// kernels oracle the tiled MatMul.
type Flat struct {
	Metric Metric
	dim    int
	ids    []string
	vecs   [][]float64
	norms  []float64 // Euclidean norm of each stored vector, cached at Add
}

// NewFlat creates an exact index for dim-dimensional vectors.
func NewFlat(dim int, metric Metric) *Flat {
	return &Flat{Metric: metric, dim: dim}
}

// Add inserts a vector. The vector's norm is computed once here so cosine
// search never renormalizes stored vectors per query.
func (f *Flat) Add(id string, vec []float64) error {
	if len(vec) != f.dim {
		return fmt.Errorf("vector %q has dim %d, index wants %d", id, len(vec), f.dim)
	}
	f.ids = append(f.ids, id)
	f.vecs = append(f.vecs, append([]float64(nil), vec...))
	f.norms = append(f.norms, tensor.Norm(vec))
	return nil
}

// Len returns the number of stored vectors.
func (f *Flat) Len() int { return len(f.ids) }

// Search returns the top-k hits sorted by descending score (ties by ID).
// k <= 0, an empty index, or a query of the wrong dimension returns nil;
// k > Len returns everything. The cosine path divides each dot product by
// the query norm (computed once) and the stored norm cached at Add — the
// exact expression tensor.Cosine evaluates, so scores are bit-identical to
// the unnormalized scan.
func (f *Flat) Search(query []float64, k int) []Hit {
	if k <= 0 || len(f.ids) == 0 || len(query) != f.dim {
		return nil
	}
	hits := make([]Hit, 0, len(f.ids))
	if f.Metric == Cosine {
		qn := tensor.Norm(query)
		for i, v := range f.vecs {
			var s float64
			if qn != 0 && f.norms[i] != 0 {
				s = tensor.Dot(query, v) / (qn * f.norms[i])
			}
			hits = append(hits, Hit{ID: f.ids[i], Score: s})
		}
	} else {
		for i, v := range f.vecs {
			hits = append(hits, Hit{ID: f.ids[i], Score: -tensor.L2Dist(query, v)})
		}
	}
	sortHits(hits)
	if k < len(hits) {
		hits = hits[:k]
	}
	return hits
}

func sortHits(hits []Hit) {
	sort.SliceStable(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].ID < hits[j].ID
	})
}

// IVF is an inverted-file index: vectors are assigned to k-means centroids
// and queries probe only the closest NProbe lists.
type IVF struct {
	Metric    Metric
	NProbe    int
	dim       int
	nlist     int
	seed      int64
	centroids [][]float64
	lists     [][]int // centroid -> vector indexes
	ids       []string
	vecs      [][]float64
	trained   bool
}

// NewIVF creates an IVF index with nlist clusters.
func NewIVF(dim, nlist int, metric Metric, seed int64) *IVF {
	if nlist < 1 {
		nlist = 1
	}
	return &IVF{Metric: metric, NProbe: 2, dim: dim, nlist: nlist, seed: seed}
}

// Add inserts a vector (train/retrain happens lazily on Search).
func (ix *IVF) Add(id string, vec []float64) error {
	if len(vec) != ix.dim {
		return fmt.Errorf("vector %q has dim %d, index wants %d", id, len(vec), ix.dim)
	}
	ix.ids = append(ix.ids, id)
	ix.vecs = append(ix.vecs, append([]float64(nil), vec...))
	ix.trained = false
	return nil
}

// Len returns the number of stored vectors.
func (ix *IVF) Len() int { return len(ix.ids) }

// Train runs k-means over the stored vectors.
func (ix *IVF) Train() {
	n := len(ix.vecs)
	k := ix.nlist
	if k > n {
		k = n
	}
	if k == 0 {
		ix.trained = true
		return
	}
	rng := rand.New(rand.NewSource(ix.seed))
	// k-means++ style seeding: random distinct points.
	perm := rng.Perm(n)
	ix.centroids = make([][]float64, k)
	for i := 0; i < k; i++ {
		ix.centroids[i] = append([]float64(nil), ix.vecs[perm[i]]...)
	}
	assign := make([]int, n)
	for iter := 0; iter < 20; iter++ {
		changed := false
		for i, v := range ix.vecs {
			best, bestD := 0, math.Inf(1)
			for c, cent := range ix.centroids {
				d := tensor.L2Dist(v, cent)
				if d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Recompute centroids.
		counts := make([]int, k)
		sums := make([][]float64, k)
		for c := range sums {
			sums[c] = make([]float64, ix.dim)
		}
		for i, v := range ix.vecs {
			counts[assign[i]]++
			tensor.Axpy(sums[assign[i]], 1, v)
		}
		for c := range ix.centroids {
			if counts[c] > 0 {
				tensor.Scale(sums[c], 1/float64(counts[c]))
				ix.centroids[c] = sums[c]
			}
		}
		if !changed && iter > 0 {
			break
		}
	}
	ix.lists = make([][]int, k)
	for i := range ix.vecs {
		ix.lists[assign[i]] = append(ix.lists[assign[i]], i)
	}
	ix.trained = true
}

// Search probes the NProbe closest centroid lists. k <= 0, an empty index,
// or a query of the wrong dimension returns nil; k > Len returns every
// vector in the probed lists.
func (ix *IVF) Search(query []float64, k int) []Hit {
	if k <= 0 || len(query) != ix.dim {
		return nil
	}
	if !ix.trained {
		ix.Train()
	}
	if len(ix.centroids) == 0 {
		return nil
	}
	type cd struct {
		c int
		d float64
	}
	order := make([]cd, len(ix.centroids))
	for c, cent := range ix.centroids {
		order[c] = cd{c, tensor.L2Dist(query, cent)}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].d < order[j].d })
	probes := ix.NProbe
	if probes > len(order) {
		probes = len(order)
	}
	var hits []Hit
	for p := 0; p < probes; p++ {
		for _, vi := range ix.lists[order[p].c] {
			hits = append(hits, Hit{ID: ix.ids[vi], Score: score(ix.Metric, query, ix.vecs[vi])})
		}
	}
	sortHits(hits)
	if k < len(hits) {
		hits = hits[:k]
	}
	return hits
}
