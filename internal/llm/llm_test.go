package llm

import (
	"strings"
	"testing"
)

const basePrompt = `## Requirement
Improve timing; close all violations without changing the clock period.

## Baseline script
read_verilog d.v
current_design d
link
set_wire_load_model -name 5K_heavy_1k
create_clock -period 2.50 [get_ports clk]
compile -map_effort medium
report_qor

## Synthesis report
**** report_qor ****
WNS:   -0.170 ns
CPS:   -0.170 ns
Path 1 slack: -0.170 (VIOLATED)
`

func TestGenerateDeterministic(t *testing.T) {
	m := New(GPT4o, 7)
	a := m.Generate(GenRequest{Prompt: basePrompt, Sample: 0})
	b := m.Generate(GenRequest{Prompt: basePrompt, Sample: 0})
	if a != b {
		t.Fatal("same (prompt, sample) must generate identical output")
	}
	c := m.Generate(GenRequest{Prompt: basePrompt, Sample: 1})
	if a == c {
		t.Log("note: sample 1 happened to equal sample 0 (allowed but unusual)")
	}
}

func TestGeneratePreservesConstraints(t *testing.T) {
	m := New(GPT4o, 3)
	for s := 0; s < 5; s++ {
		out := m.Generate(GenRequest{Prompt: basePrompt, Sample: s})
		if !strings.Contains(out, "create_clock -period 2.50") {
			t.Errorf("sample %d dropped or changed the clock constraint:\n%s", s, out)
		}
		if !strings.Contains(out, "read_verilog d.v") {
			t.Errorf("sample %d lost read_verilog", s)
		}
		if !strings.Contains(out, "report_qor") {
			t.Errorf("sample %d lost reporting", s)
		}
	}
}

func TestRetrievedStrategiesDominate(t *testing.T) {
	prompt := basePrompt + `
## Retrieved strategies
[strategy from design rocket_bus, similarity 0.94]
set_max_fanout 16 [current_design]
compile_ultra
balance_buffers
-- achieved WNS 0.00
`
	m := New(GPT4o, 11)
	adopted := 0
	for s := 0; s < 10; s++ {
		out := m.Generate(GenRequest{Prompt: prompt, Sample: s})
		if strings.Contains(out, "set_max_fanout 16") && strings.Contains(out, "balance_buffers") {
			adopted++
		}
	}
	if adopted < 7 {
		t.Errorf("retrieved strategy adopted only %d/10 times", adopted)
	}
}

func TestCharacteristicsGuideChoice(t *testing.T) {
	prompt := basePrompt + `
## Design characteristics
trait: register-imbalance; stage depth ratio 4.8
category: Processor Core
`
	m := New(Profile{Name: "perfect", ContextWindow: 128000, AttnTokens: 6000, Coverage: 1.0}, 5)
	out := m.Generate(GenRequest{Prompt: prompt, Sample: 0})
	if !strings.Contains(out, "-retime") && !strings.Contains(out, "optimize_registers") {
		t.Errorf("imbalance trait should trigger retiming plan:\n%s", out)
	}

	prompt2 := basePrompt + `
## Design characteristics
trait: high-fanout; worst net fanout 69
`
	out2 := m.Generate(GenRequest{Prompt: prompt2, Sample: 0})
	if !strings.Contains(out2, "balance_buffers") && !strings.Contains(out2, "set_max_fanout") {
		t.Errorf("fanout trait should trigger buffering plan:\n%s", out2)
	}
}

func TestHallucinationRateCalibrated(t *testing.T) {
	m := New(GPT4o, 99)
	bad := 0
	const n = 200
	for s := 0; s < n; s++ {
		out := m.Generate(GenRequest{Prompt: basePrompt, Sample: s})
		for _, h := range hallucinations {
			if strings.Contains(out, h) {
				bad++
				break
			}
		}
	}
	rate := float64(bad) / n
	if rate < GPT4o.HallucRate-0.12 || rate > GPT4o.HallucRate+0.12 {
		t.Errorf("observed hallucination rate %.2f far from configured %.2f", rate, GPT4o.HallucRate)
	}
}

func TestAttentionDropsMiddle(t *testing.T) {
	m := New(GPT4o, 1)
	long := strings.Repeat("filler ", 20000) // ~35k tokens
	needle := "trait: high-fanout"
	withMiddle := "## Design characteristics\n" + long[:len(long)/2] + needle + long[len(long)/2:]
	secs := Sections(withMiddle)
	att := m.attend(secs["Design characteristics"])
	if strings.Contains(att, needle) {
		t.Error("evidence buried mid-section should be lost to attention")
	}
	short := "## Design characteristics\n" + needle + "\n"
	att2 := m.attend(Sections(short)["Design characteristics"])
	if !strings.Contains(att2, needle) {
		t.Error("short section should be fully attended")
	}
}

func TestSections(t *testing.T) {
	secs := Sections("## A\nline1\n## B\nline2\nline3\n")
	if strings.TrimSpace(secs["A"]) != "line1" {
		t.Errorf("A = %q", secs["A"])
	}
	if !strings.Contains(secs["B"], "line2") || !strings.Contains(secs["B"], "line3") {
		t.Errorf("B = %q", secs["B"])
	}
}

func TestExtractCommands(t *testing.T) {
	cmds := extractCommands(`[strategy xyz]
set_max_fanout 16 [current_design]
compile_ultra -retime
-- WNS 0.00
random prose that is not a command
balance_buffers`)
	if len(cmds) != 3 {
		t.Fatalf("got %d commands: %v", len(cmds), cmds)
	}
	if cmds[1] != "compile_ultra -retime" {
		t.Errorf("cmds[1] = %q", cmds[1])
	}
}

func TestSpliceScript(t *testing.T) {
	out := SpliceScript(`# comment
read_verilog a.v
current_design top
create_clock -period 1.00 clk
compile -map_effort low
report_qor
report_area`, []string{"set_max_fanout 16 [current_design]", "compile_ultra"})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Setup preserved, old compile gone, plan present, reports re-added.
	joined := strings.Join(lines, "\n")
	if strings.Contains(joined, "map_effort low") {
		t.Error("old compile line should be replaced")
	}
	for _, want := range []string{"read_verilog a.v", "create_clock -period 1.00 clk", "compile_ultra", "report_qor"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %q in:\n%s", want, joined)
		}
	}
}

func TestScoreRelevance(t *testing.T) {
	m := New(GPT4o, 2)
	q := "how to fix high fanout nets with buffer trees"
	relevant := "balance_buffers builds buffer trees on high-fanout nets"
	irrelevant := "create_clock defines the clock period"
	if m.ScoreRelevance(q, relevant) <= m.ScoreRelevance(q, irrelevant) {
		t.Error("relevance scoring failed to rank topical doc higher")
	}
	if m.ScoreRelevance("", "doc") != 0 {
		t.Error("empty query should score 0")
	}
}

func TestStrategyNames(t *testing.T) {
	names := StrategyNames()
	if len(names) != len(strategies) {
		t.Error("StrategyNames incomplete")
	}
	for _, want := range []string{"retime", "fanout", "ungroup", "area"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("missing strategy %s", want)
		}
	}
}

func TestAugmentWithEvidence(t *testing.T) {
	m := New(Profile{Name: "p", ContextWindow: 128000, AttnTokens: 6000, Coverage: 1}, 1)
	rng := m.rng("x", 0)
	// Explicit imbalance adds retiming to a plan that lacks it.
	ev := evidence{explicit: true, imbalance: true}
	out := m.augmentWithEvidence([]string{"compile_ultra"}, ev, rng)
	joined := strings.Join(out, "\n")
	if !strings.Contains(joined, "optimize_registers") {
		t.Errorf("imbalance not augmented: %v", out)
	}
	// A plan that already retimes is left alone.
	out = m.augmentWithEvidence([]string{"compile_ultra -retime"}, ev, rng)
	if len(out) != 1 {
		t.Errorf("retime plan needlessly augmented: %v", out)
	}
	// Fanout evidence adds the constraint before and buffering after.
	ev = evidence{explicit: true, highFanout: true}
	out = m.augmentWithEvidence([]string{"compile_ultra"}, ev, rng)
	if out[0] != "set_max_fanout 16 [current_design]" || out[len(out)-1] != "balance_buffers" {
		t.Errorf("fanout augmentation order wrong: %v", out)
	}
	// Implicit (raw-heuristic) evidence is not trusted for plan edits.
	ev = evidence{explicit: false, imbalance: true}
	out = m.augmentWithEvidence([]string{"compile_ultra"}, ev, rng)
	if len(out) != 1 {
		t.Errorf("implicit evidence must not edit the plan: %v", out)
	}
}

func TestEvidenceExplicitFlag(t *testing.T) {
	m := New(GPT4o, 1)
	withChars := Sections(basePrompt + "\n## Design characteristics\ntrait: high-fanout; worst net fanout 69\n")
	ev := m.readEvidence(withChars)
	if !ev.explicit || !ev.highFanout {
		t.Errorf("explicit characteristics not honored: %+v", ev)
	}
	raw := Sections(basePrompt)
	ev = m.readEvidence(raw)
	if ev.explicit {
		t.Error("raw prompt wrongly marked explicit")
	}
}
