// Package llm implements the simulated large language model that stands in
// for GPT-4o / Claude 3.5 Sonnet in the reproduction. The paper's claims are
// about pipeline structure — retrieval grounding plus chain-of-thought
// validation beating raw prompting — not about any specific model's weights,
// so the substitute reproduces the *failure modes* the paper attributes to
// raw LLMs and the *mechanisms* by which grounding fixes them:
//
//   - The model is a text-driven policy: it acts only on evidence present in
//     its prompt. What the pipeline puts in the prompt is the whole
//     difference between the baselines and ChatLS.
//   - Long sections are read with head+tail attention: content in the middle
//     of an oversized section is invisible ("lost in the middle").
//   - Domain knowledge is an imperfect map from design evidence to synthesis
//     commands; per-profile coverage controls how often it is recalled.
//   - Hallucination injects plausible-but-invalid commands and options at a
//     calibrated per-sample rate; nothing downstream is told which lines are
//     wrong — only validation against the tool manual can catch them.
//   - Retrieved strategy text in the prompt is preferred over internal
//     knowledge, which is exactly how RAG grounding narrows the model's
//     choices.
//
// Generation is seeded and deterministic given (profile, seed, prompt,
// sample index), so every experiment is reproducible.
package llm

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"regexp"
	"sort"
	"strings"
)

// Profile calibrates one simulated model.
type Profile struct {
	Name          string
	ContextWindow int     // total prompt budget, tokens
	AttnTokens    int     // per-section attention budget (head+tail reading)
	Coverage      float64 // probability of recalling the right command mapping
	HallucRate    float64 // probability of emitting an invalid command per sample
	OptionNoise   float64 // probability of corrupting an option per sample
}

// The evaluated profiles. ChatLS uses GPT4o as its generator (as in the
// paper); the pipelines differ, not the generator.
var (
	GPT4o = Profile{
		Name: "gpt-4o-sim", ContextWindow: 128000, AttnTokens: 6000,
		Coverage: 0.55, HallucRate: 0.28, OptionNoise: 0.22,
	}
	Claude35 = Profile{
		Name: "claude-3.5-sonnet-sim", ContextWindow: 128000, AttnTokens: 7000,
		Coverage: 0.52, HallucRate: 0.30, OptionNoise: 0.24,
	}
)

// Model is a seeded simulated LLM.
type Model struct {
	Profile Profile
	Seed    int64
}

// New creates a model instance.
func New(p Profile, seed int64) *Model { return &Model{Profile: p, Seed: seed} }

// CountTokens approximates tokenization at ~4 characters per token.
func CountTokens(text string) int { return (len(text) + 3) / 4 }

// truncateTokens keeps roughly the first n tokens of text.
func truncateTokens(text string, n int) string {
	limit := n * 4
	if len(text) <= limit {
		return text
	}
	return text[:limit]
}

// attend returns the part of a section the model actually reads: the whole
// text when it fits the attention budget, otherwise the head and tail with
// the middle dropped.
func (m *Model) attend(section string) string {
	budget := m.Profile.AttnTokens * 4
	if len(section) <= budget {
		return section
	}
	head := budget * 3 / 5
	tail := budget - head
	return section[:head] + "\n... [middle of section not attended] ...\n" + section[len(section)-tail:]
}

// rng derives the deterministic sampling stream for one generation.
func (m *Model) rng(prompt string, sample int) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(prompt))
	fmt.Fprintf(h, "|%s|%d|%d", m.Profile.Name, m.Seed, sample)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// Sections splits a prompt into its "## Header" sections.
func Sections(prompt string) map[string]string {
	out := make(map[string]string)
	var cur string
	var buf strings.Builder
	flush := func() {
		if cur != "" {
			out[cur] = buf.String()
			buf.Reset()
		}
	}
	for _, line := range strings.Split(prompt, "\n") {
		if strings.HasPrefix(line, "## ") {
			flush()
			cur = strings.TrimSpace(strings.TrimPrefix(line, "## "))
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
	}
	flush()
	return out
}

// Strategy names the command plans the model can choose between. These are
// the plans an application engineer would consider; which one is right
// depends on the design, which is the whole customization problem.
type strategy struct {
	name  string
	lines []string
}

var strategies = map[string]strategy{
	"effort": {"effort", []string{"compile_ultra"}},
	"retime": {"retime", []string{"compile_ultra -retime", "optimize_registers"}},
	"fanout": {"fanout", []string{"set_max_fanout 16 [current_design]", "compile_ultra", "balance_buffers"}},
	"ungroup": {"ungroup", []string{"ungroup -all -flatten", "compile_ultra -retime"}},
	"deep":    {"deep", []string{"compile_ultra -timing_high_effort_script"}},
	"area":    {"area", []string{"compile_ultra -area_high_effort_script"}},
	"generic": {"generic", []string{"compile"}},
}

// evidence is what the model extracted from the prompt about the design.
type evidence struct {
	violated     bool
	wns          float64
	highFanout   bool
	imbalance    bool
	hierOverhead bool
	deepSerial   bool
	meets        bool
	wantsArea    bool
	wantsTiming  bool
	// explicit marks evidence sourced from a provided characteristics
	// section (CircuitMentor output) rather than the model's own heuristics
	// over raw RTL — explicit evidence is far more reliable to act on.
	explicit bool
}

var (
	reWNS       = regexp.MustCompile(`WNS:?\s*(-?\d+\.\d+)`)
	reTraitLine = regexp.MustCompile(`trait:\s*([a-z-]+)`)
	reIdent     = regexp.MustCompile(`[A-Za-z_][A-Za-z0-9_]*`)
)

// readEvidence scans the attended prompt sections for design signals. The
// characteristics section (when the pipeline provides one) is authoritative;
// otherwise the model falls back to crude heuristics over the report and the
// visible part of the RTL — the raw-prompting weakness the paper describes.
func (m *Model) readEvidence(secs map[string]string) evidence {
	var ev evidence
	req := strings.ToLower(secs["Requirement"])
	ev.wantsTiming = strings.Contains(req, "optimize timing") || strings.Contains(req, "close") ||
		strings.Contains(req, "slack") || strings.Contains(req, "violation")
	ev.wantsArea = strings.Contains(req, "area") || strings.Contains(req, "smaller")

	report := m.attend(secs["Synthesis report"])
	if mm := reWNS.FindStringSubmatch(report); mm != nil {
		fmt.Sscanf(mm[1], "%g", &ev.wns)
		ev.violated = ev.wns < 0
		ev.meets = ev.wns >= 0
	}
	if strings.Contains(report, "VIOLATED") {
		ev.violated = true
	}

	if chars, ok := secs["Design characteristics"]; ok {
		ev.explicit = true
		for _, mm := range reTraitLine.FindAllStringSubmatch(m.attend(chars), -1) {
			switch mm[1] {
			case "high-fanout":
				ev.highFanout = true
			case "register-imbalance":
				ev.imbalance = true
			case "hierarchy-overhead":
				ev.hierOverhead = true
			case "deep-serial-logic":
				ev.deepSerial = true
			}
		}
		return ev
	}

	// Raw-prompt heuristics over whatever RTL is visible.
	rtl := m.attend(secs["RTL"])
	if rtl != "" {
		counts := make(map[string]int)
		for _, id := range reIdent.FindAllString(rtl, -1) {
			counts[id]++
		}
		for id, n := range counts {
			if n > 60 && !verilogKeyword(id) {
				ev.highFanout = true
				_ = id
				break
			}
		}
		modCount := strings.Count(rtl, "endmodule")
		invCount := strings.Count(rtl, "~")
		if modCount > 8 && invCount > 3*modCount {
			ev.hierOverhead = true
		}
		regCount := strings.Count(rtl, "<=")
		if regCount > 4 && strings.Count(rtl, "always") >= 1 &&
			strings.Contains(rtl, "+") && modCount <= 4 {
			// Several pipeline registers around arithmetic: maybe imbalance.
			ev.imbalance = true
		}
	}
	// Path shape from the report: startpoint at an input and endpoint at an
	// output with many stages suggests an unretimable serial cone.
	if strings.Contains(report, "Startpoint: ") && !strings.Contains(report, "/CK") &&
		strings.Count(report, "arr ") > 25 {
		ev.deepSerial = true
	}
	return ev
}

func verilogKeyword(id string) bool {
	switch id {
	case "input", "output", "wire", "reg", "assign", "module", "endmodule",
		"always", "posedge", "begin", "end", "clk", "if", "else":
		return true
	}
	return false
}

// pickStrategy maps evidence to a command plan through the imperfect
// knowledge base. Retrieved strategies (if any) dominate.
func (m *Model) pickStrategy(secs map[string]string, ev evidence, rng *rand.Rand) []string {
	// An area-focused requirement on a design that already meets timing
	// overrides retrieved exemplars: the exemplars encode how their designs
	// closed timing, not what this user asked for.
	if ev.meets && ev.wantsArea && !ev.wantsTiming {
		return strategies["area"].lines
	}
	if retr, ok := secs["Retrieved strategies"]; ok && strings.TrimSpace(retr) != "" {
		if cmds := extractCommands(m.attend(retr)); len(cmds) > 0 && rng.Float64() < 0.92 {
			// The retrieved expert plan is adopted, then cross-checked
			// against the design characteristics: commands the analysis
			// indicates but the exemplar lacked are added — the exemplar's
			// design did not necessarily share every trait.
			return m.augmentWithEvidence(cmds, ev, rng)
		}
	}
	// Acting on evidence requires both recalling the mapping and trusting
	// the evidence: explicit CircuitMentor characteristics are near-certain,
	// heuristic impressions over raw RTL much less so.
	conf := m.Profile.Coverage * 0.6
	if ev.explicit {
		conf = m.Profile.Coverage * 1.7
		if conf > 0.98 {
			conf = 0.98
		}
	}
	if rng.Float64() >= conf {
		// The model does not recall (or trust) the specific mapping:
		// generic escalation, weighted toward plain compile.
		if ev.violated {
			return pickFrom(rng,
				strategies["generic"].lines, strategies["generic"].lines,
				strategies["effort"].lines, strategies["deep"].lines)
		}
		return pickFrom(rng,
			strategies["generic"].lines, strategies["generic"].lines,
			strategies["area"].lines, strategies["effort"].lines)
	}
	switch {
	case ev.violated && ev.highFanout:
		return m.augmentWithEvidence(strategies["fanout"].lines, ev, rng)
	case ev.violated && ev.imbalance:
		return m.augmentWithEvidence(strategies["retime"].lines, ev, rng)
	case ev.violated && ev.hierOverhead:
		return m.augmentWithEvidence(strategies["ungroup"].lines, ev, rng)
	case ev.violated && ev.deepSerial:
		return strategies["deep"].lines
	case ev.violated:
		return strategies["effort"].lines
	case ev.meets && ev.wantsArea:
		return strategies["area"].lines
	case ev.meets && ev.wantsTiming:
		return m.augmentWithEvidence(strategies["deep"].lines, ev, rng)
	}
	return strategies["effort"].lines
}

// augmentWithEvidence adds the commands that explicit design
// characteristics indicate but the plan lacks. Only explicit
// (CircuitMentor-provided) evidence is trusted enough to edit a plan.
func (m *Model) augmentWithEvidence(cmds []string, ev evidence, rng *rand.Rand) []string {
	if !ev.explicit || rng.Float64() > 0.93 {
		return cmds
	}
	joined := strings.Join(cmds, "\n")
	has := func(sub string) bool { return strings.Contains(joined, sub) }
	var pre, post []string
	if ev.highFanout && !has("set_max_fanout") && !has("balance_buffers") {
		pre = append(pre, "set_max_fanout 16 [current_design]")
		post = append(post, "balance_buffers")
	}
	if ev.imbalance && !has("-retime") && !has("optimize_registers") {
		post = append(post, "optimize_registers")
	}
	if ev.hierOverhead && !has("ungroup") && !has("compile_ultra") {
		pre = append(pre, "ungroup -all -flatten")
	}
	if len(pre) == 0 && len(post) == 0 {
		return cmds
	}
	out := append(pre, cmds...)
	return append(out, post...)
}

func pickFrom(rng *rand.Rand, options ...[]string) []string {
	return options[rng.Intn(len(options))]
}

// extractCommands pulls the command lines of the top-ranked strategy block
// out of a retrieved-strategies section (blocks are ranked best-first; the
// model adopts the best one rather than concatenating plans).
func extractCommands(text string) []string {
	var out []string
	blocks := 0
	for _, line := range strings.Split(text, "\n") {
		l := strings.TrimSpace(line)
		if strings.HasPrefix(l, "[") {
			blocks++
			if blocks > 1 && len(out) > 0 {
				break
			}
			continue
		}
		if l == "" || strings.HasPrefix(l, "--") || strings.HasPrefix(l, "#") {
			continue
		}
		first := strings.Fields(l)
		if len(first) == 0 {
			continue
		}
		switch first[0] {
		case "compile", "compile_ultra", "optimize_registers", "balance_buffers",
			"set_max_fanout", "ungroup", "set_max_area", "set_dont_touch", "uniquify":
			out = append(out, l)
		}
	}
	return out
}

// hallucinations are the plausible-but-invalid lines raw models emit:
// commands that do not exist or options from other tools.
var hallucinations = []string{
	"optimize_timing -aggressive",
	"compile -retime",
	"balance_registers",
	"set_fanout_limit 16",
	"compile_ultra -effort high",
	"ungroup -recursive",
	"fix_hold_violations",
	"compile_ultra -map_effort high",
	"retime_design",
	"set_optimize_registers true",
}

// corruptOption damages a valid command line the way option-level
// hallucination does (wrong option name, wrong value spelling).
func corruptOption(line string, rng *rand.Rand) string {
	swaps := [][2]string{
		{"-map_effort medium", "-map_effort turbo"},
		{"-retime", "-retiming"},
		{"-area_high_effort_script", "-area_effort_high"},
		{"-timing_high_effort_script", "-timing_effort_high"},
		{"set_max_fanout 16", "set_max_fanout max"},
		{"compile_ultra", "compile_ultra -exact_map"},
	}
	s := swaps[rng.Intn(len(swaps))]
	if strings.Contains(line, s[0]) {
		return strings.Replace(line, s[0], s[1], 1)
	}
	if strings.HasPrefix(line, "compile_ultra") && rng.Float64() < 0.5 {
		return line + " -exact_map"
	}
	return line
}

// GenRequest is one generation call.
type GenRequest struct {
	Prompt string
	Sample int // Pass@k sample index
}

// Generate produces a customized synthesis script for the prompt. The
// prompt must contain a "Baseline script" section; its constraint lines are
// preserved (the evaluation forbids changing the clock), and its compile
// and post-compile lines are replaced by the chosen strategy.
func (m *Model) Generate(req GenRequest) string {
	out, _ := m.GenerateContext(context.Background(), req)
	return out
}

// GenerateContext is Generate with cooperative cancellation: the context is
// checked between the CPU-bound generation phases (prompt reading, evidence
// extraction, strategy choice) so a cancelled or timed-out request stops
// early instead of completing the sample. The only possible error is the
// context's.
func (m *Model) GenerateContext(ctx context.Context, req GenRequest) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	secs := Sections(truncateTokens(req.Prompt, m.Profile.ContextWindow))
	rng := m.rng(req.Prompt, req.Sample)
	ev := m.readEvidence(secs)
	if err := ctx.Err(); err != nil {
		return "", err
	}
	plan := append([]string(nil), m.pickStrategy(secs, ev, rng)...)

	// Hallucination: insert an invalid command or corrupt an option.
	if rng.Float64() < m.Profile.HallucRate {
		pos := rng.Intn(len(plan) + 1)
		plan = append(plan[:pos], append([]string{hallucinations[rng.Intn(len(hallucinations))]}, plan[pos:]...)...)
	}
	if rng.Float64() < m.Profile.OptionNoise {
		idx := rng.Intn(len(plan))
		plan[idx] = corruptOption(plan[idx], rng)
	}

	return SpliceScript(secs["Baseline script"], plan), nil
}

// SpliceScript rebuilds a script around a new optimization plan: setup and
// constraint lines of the baseline are kept in order, the compile and
// post-compile optimization lines are replaced by the plan, and reports are
// re-emitted at the end.
func SpliceScript(baseline string, plan []string) string {
	var setup []string
	for _, line := range strings.Split(baseline, "\n") {
		l := strings.TrimSpace(line)
		if l == "" || strings.HasPrefix(l, "#") {
			continue
		}
		cmd := strings.Fields(l)[0]
		switch cmd {
		case "read_verilog", "current_design", "link", "set_wire_load_model",
			"create_clock", "set_input_delay", "set_output_delay", "set":
			setup = append(setup, l)
		}
	}
	var b strings.Builder
	b.WriteString("# customized synthesis script\n")
	for _, l := range setup {
		b.WriteString(l)
		b.WriteString("\n")
	}
	// Constraint-style plan lines (set_max_fanout, ungroup) come before the
	// compile command; order within the plan is preserved otherwise.
	for _, l := range plan {
		b.WriteString(l)
		b.WriteString("\n")
	}
	b.WriteString("report_qor\nreport_timing -max_paths 3\nreport_area\n")
	return b.String()
}

// ScoreRelevance is the "LLM as reranker" interface SynthRAG uses for
// manual retrieval: the model scores how relevant a document is to a query
// by lexical overlap of its attended text — a deterministic stand-in for
// GPT-4o reranking.
func (m *Model) ScoreRelevance(query, doc string) float64 {
	q := tokenSet(strings.ToLower(m.attend(query)))
	d := tokenSet(strings.ToLower(m.attend(doc)))
	if len(q) == 0 || len(d) == 0 {
		return 0
	}
	inter := 0
	for t := range q {
		if d[t] {
			inter++
		}
	}
	return float64(inter) / float64(len(q))
}

func tokenSet(s string) map[string]bool {
	out := make(map[string]bool)
	for _, t := range reIdent.FindAllString(s, -1) {
		out[t] = true
	}
	return out
}

// StrategyNames lists the internal plan names (for tests and docs).
func StrategyNames() []string {
	names := make([]string, 0, len(strategies))
	for n := range strategies {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
