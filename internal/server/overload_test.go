package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/overload"
	"repro/internal/resilience"
)

// getHealthz decodes the health report.
func getHealthz(t *testing.T, url string) healthzResponse {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	defer resp.Body.Close()
	var h healthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	return h
}

// checkRetryable asserts the error-body contract on a shed response: a
// Retry-After header and a JSON body with retryable=true.
func checkRetryable(t *testing.T, hr *http.Response, body []byte) {
	t.Helper()
	if hr.Header.Get("Retry-After") == "" {
		t.Errorf("status %d missing Retry-After header", hr.StatusCode)
	}
	var e errorResponse
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("error body not JSON: %v (%s)", err, body)
	}
	if !e.Retryable {
		t.Errorf("status %d body retryable=false, want true: %s", hr.StatusCode, body)
	}
	if e.Error == "" {
		t.Errorf("status %d body has empty error message", hr.StatusCode)
	}
}

// TestCostShedRejectsBeforeAnyWork primes the cost model so the expected
// end-to-end request cost exceeds the per-request deadline: requests must
// be shed with 503 + Retry-After before any pool work starts (BeforeWork
// never fires), except the deterministic 1-in-8 probe-through that lets
// the model re-learn.
func TestCostShedRejectsBeforeAnyWork(t *testing.T) {
	costs := overload.NewCostModel(0)
	costs.Observe(overload.StageRequest, 10*time.Second)
	var worked atomic.Int64
	s := newTestServer(t, Config{
		Workers:        2,
		QueueDepth:     4,
		RequestTimeout: 2 * time.Second,
		Costs:          costs,
		BeforeWork:     func() { worked.Add(1) },
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := `{"design":"riscv32i","k":1}`
	for i := 1; i <= 7; i++ {
		hr, body := postCustomize(t, ts.URL, req)
		if hr.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("request %d: status %d, want 503 (cost shed): %s", i, hr.StatusCode, body)
		}
		checkRetryable(t, hr, body)
		// Retry-After is the learned request cost rounded up to seconds.
		if got := hr.Header.Get("Retry-After"); got != "10" {
			t.Errorf("request %d: Retry-After = %q, want \"10\"", i, got)
		}
	}
	if n := worked.Load(); n != 0 {
		t.Fatalf("shed requests reached the worker pool %d times, want 0", n)
	}

	// The 8th would-be shed probes through so the model can re-learn a
	// recovered backend.
	hr, body := postCustomize(t, ts.URL, req)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("probe-through request: status %d, want 200: %s", hr.StatusCode, body)
	}
	if n := worked.Load(); n != 1 {
		t.Errorf("probe-through ran %d pool tasks, want 1", n)
	}

	// One cheap observation moves a 10s EWMA only 20% of the way down —
	// still far above the deadline, so shedding resumes.
	hr, body = postCustomize(t, ts.URL, req)
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-probe request: status %d, want 503: %s", hr.StatusCode, body)
	}

	if v := metricValue(t, ts.URL, "overload_shed_total"); v != 8 {
		t.Errorf("overload_shed_total = %v, want 8", v)
	}
	ov := getHealthz(t, ts.URL).Overload
	if ov.ShedTotal != 8 {
		t.Errorf("healthz shed_total = %d, want 8", ov.ShedTotal)
	}
	if ov.RequestCostNS <= (2 * time.Second).Nanoseconds() {
		t.Errorf("healthz expected_request_cost_ns = %d, want > deadline", ov.RequestCostNS)
	}
}

// TestHealthzReportsOverloadState checks the cold-start overload report: the
// adaptive limit sits at its ceiling (workers+queue, the old fixed cap),
// every stage breaker is closed, no brownout, and no remotecache breaker
// when no remote tier is configured.
func TestHealthzReportsOverloadState(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, QueueDepth: 3})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ov := getHealthz(t, ts.URL).Overload
	if ov.Limit != 5 || ov.Ceiling != 5 {
		t.Errorf("limit/ceiling = %d/%d, want 5/5 (workers+queue)", ov.Limit, ov.Ceiling)
	}
	if ov.Floor != 1 {
		t.Errorf("floor = %d, want default 1", ov.Floor)
	}
	if ov.Inflight != 0 || ov.ShedTotal != 0 || ov.Brownout {
		t.Errorf("idle server not idle: %+v", ov)
	}
	for _, comp := range []string{
		resilience.CompMentor, resilience.CompRAGEmbed,
		resilience.CompRAGRetrieve, resilience.CompExpert,
	} {
		if st := ov.Breakers[comp]; st != "closed" {
			t.Errorf("breaker %s = %q, want closed", comp, st)
		}
	}
	if _, ok := ov.Breakers[resilience.CompRemoteCache]; ok {
		t.Error("remotecache breaker reported with no remote tier configured")
	}
	if v := metricValue(t, ts.URL, "overload_limit"); v != 5 {
		t.Errorf("overload_limit metric = %v, want 5", v)
	}
	if v := metricValue(t, ts.URL, "breaker_state_"+metricName(resilience.CompRAGEmbed)); v != 0 {
		t.Errorf("breaker_state gauge = %v, want 0 (closed)", v)
	}
}

// TestBrownoutClampsPassK drives a full window of sheds through a saturated
// server, then checks brownout mode: a k>1 request is served with one sample
// and an explicit "brownout" degradation marker, and sustained healthy
// traffic exits the mode so k>1 service recovers.
func TestBrownoutClampsPassK(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.hookBeforeWork = func() {
		once.Do(func() { close(started) })
		<-release
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	codes := make(chan int, 2)
	post := func(body string) {
		hr, _ := postCustomize(t, ts.URL, body)
		codes <- hr.StatusCode
	}
	go post(`{"design":"riscv32i","k":1}`)
	<-started // worker occupied
	go post(`{"design":"dynamic_node","k":1}`)
	deadline := time.After(5 * time.Second)
	for s.limiter.Inflight() != 2 { // second request admitted, parked in queue
		select {
		case <-deadline:
			t.Fatal("second request never occupied the limiter")
		case <-time.After(2 * time.Millisecond):
		}
	}

	// A full brownout window of distinct requests, every one shed at the
	// saturated limiter.
	for i := 0; i < 64; i++ {
		hr, body := postCustomize(t, ts.URL,
			fmt.Sprintf(`{"design":"ethmac","requirement":"variant %d","k":1}`, i))
		if hr.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("saturated request %d: status %d, want 429: %s", i, hr.StatusCode, body)
		}
		checkRetryable(t, hr, body)
	}
	if ov := getHealthz(t, ts.URL).Overload; !ov.Brownout {
		t.Fatal("full window of sheds did not enter brownout")
	}
	if v := metricValue(t, ts.URL, "overload_brownout_active"); v != 1 {
		t.Errorf("overload_brownout_active = %v, want 1", v)
	}
	if v := metricValue(t, ts.URL, "overload_brownout_entries_total"); v < 1 {
		t.Errorf("overload_brownout_entries_total = %v, want >= 1", v)
	}

	close(release)
	for i := 0; i < 2; i++ {
		if c := <-codes; c != http.StatusOK {
			t.Errorf("blocked request finished %d, want 200", c)
		}
	}

	// Browned out: a k=2 request is served degraded — one sample, marked.
	hr, body := postCustomize(t, ts.URL, `{"design":"riscv32i","k":2}`)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("browned-out request: status %d: %s", hr.StatusCode, body)
	}
	var out customizeResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decode browned-out response: %v", err)
	}
	if out.K != 1 || len(out.Samples) != 1 {
		t.Errorf("browned-out k/samples = %d/%d, want 1/1", out.K, len(out.Samples))
	}
	if !strings.Contains(strings.Join(out.Degraded, ","), "brownout") {
		t.Errorf("browned-out response degraded = %v, want to contain \"brownout\"", out.Degraded)
	}

	// Healthy traffic dilutes the window below the exit fraction.
	recovery := time.After(30 * time.Second)
	for getHealthz(t, ts.URL).Overload.Brownout {
		select {
		case <-recovery:
			t.Fatal("brownout never exited under healthy traffic")
		default:
		}
		if hr, body := postCustomize(t, ts.URL, `{"design":"riscv32i","k":1}`); hr.StatusCode != http.StatusOK {
			t.Fatalf("recovery request: status %d: %s", hr.StatusCode, body)
		}
	}
	hr, body = postCustomize(t, ts.URL, `{"design":"riscv32i","k":2}`)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery request: status %d: %s", hr.StatusCode, body)
	}
	out = customizeResponse{}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decode post-recovery response: %v", err)
	}
	if out.K != 2 || len(out.Samples) != 2 {
		t.Errorf("post-recovery k/samples = %d/%d, want 2/2", out.K, len(out.Samples))
	}
	if strings.Contains(strings.Join(out.Degraded, ","), "brownout") {
		t.Errorf("post-recovery response still marked brownout: %v", out.Degraded)
	}
}
