package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/inputlimits"
)

// TestIngressRejections exercises the /v1/customize trust boundary: every
// malformed-input class maps to its documented status code, never a 500,
// and each rejection increments its metrics counter.
func TestIngressRejections(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 2, MaxBodyBytes: 512, MaxRequirementLen: 64})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body string
		want int
	}{
		{"oversized body", `{"design":"` + strings.Repeat("x", 600) + `"}`, http.StatusRequestEntityTooLarge},
		{"not json", "not json at all", http.StatusBadRequest},
		{"empty body", "", http.StatusBadRequest},
		{"unknown field", `{"design":"riscv32i","bogus":1}`, http.StatusBadRequest},
		{"trailing data", `{"design":"riscv32i"} extra`, http.StatusBadRequest},
		{"wrong field type", `{"design":42}`, http.StatusBadRequest},
		{"long requirement", `{"design":"riscv32i","requirement":"` + strings.Repeat("r", 100) + `"}`, http.StatusUnprocessableEntity},
		{"negative k", `{"design":"riscv32i","k":-3}`, http.StatusUnprocessableEntity},
		{"huge k", `{"design":"riscv32i","k":10000}`, http.StatusUnprocessableEntity},
		{"bad pipeline", `{"design":"riscv32i","pipeline":"dalle"}`, http.StatusUnprocessableEntity},
		{"unknown design", `{"design":"noexist"}`, http.StatusNotFound},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postCustomize(t, ts.URL, tc.body)
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, tc.want, body)
			}
			var er errorResponse
			if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
				t.Fatalf("rejection body is not an error JSON: %q", body)
			}
		})
	}

	if v := metricValue(t, ts.URL, "chatlsd_input_rejected_body_too_large_total"); v != 1 {
		t.Errorf("body_too_large counter = %v, want 1", v)
	}
	if v := metricValue(t, ts.URL, "chatlsd_input_rejected_bad_json_total"); v != 5 {
		t.Errorf("bad_json counter = %v, want 5", v)
	}
	if v := metricValue(t, ts.URL, "chatlsd_input_rejected_invalid_total"); v != 4 {
		t.Errorf("invalid counter = %v, want 4", v)
	}

	// The process stays healthy after every rejection.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after rejections: %v %v", resp, err)
	}
	resp.Body.Close()
}

// TestHealthzEchoesLimits: /healthz reports the effective ingress and
// parser limits as JSON.
func TestHealthzEchoesLimits(t *testing.T) {
	s := newTestServer(t, Config{MaxBodyBytes: 2048, MaxRequirementLen: 128, MaxK: 3})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	var hz healthzResponse
	if err := json.Unmarshal(b, &hz); err != nil {
		t.Fatalf("healthz is not JSON: %v (%s)", err, b)
	}
	if hz.Status != "ok" || hz.MaxBodyBytes != 2048 || hz.MaxRequirementLen != 128 || hz.MaxK != 3 {
		t.Fatalf("healthz echo = %+v", hz)
	}
	want := inputlimits.Defaults()
	if got := hz.ParserBudgets[inputlimits.SurfaceVerilog].MaxBytes; got != want.Verilog.MaxBytes {
		t.Fatalf("verilog budget echo %d, want %d", got, want.Verilog.MaxBytes)
	}
	for _, surface := range []string{
		inputlimits.SurfaceVerilog, inputlimits.SurfaceLiberty,
		inputlimits.SurfaceScript, inputlimits.SurfaceCypher,
	} {
		if _, ok := hz.ParserBudgets[surface]; !ok {
			t.Fatalf("healthz missing budget for %s", surface)
		}
	}
}

// FuzzCustomizeRequest asserts the request decode/validate boundary never
// panics and always classifies its outcome as one of the documented status
// codes. It targets decodeCustomize directly rather than the full handler,
// so a fuzzer that stumbles onto a valid design name cannot trigger an
// expensive synthesis run.
func FuzzCustomizeRequest(f *testing.F) {
	seeds := []string{
		`{"design":"riscv32i"}`,
		`{"design":"riscv32i","requirement":"optimize for area","pipeline":"chatls","k":3}`,
		`{"design":"riscv32i","k":10000}`,
		`{"design":"riscv32i","bogus":1}`,
		`{"design":42}`,
		`{"design":"a"} trailing`,
		`not json`,
		``,
		`{"design":"` + strings.Repeat("x", 300) + `"}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	srv := &Server{cfg: Config{DefaultK: 1, MaxK: 10, MaxRequirementLen: 256, MaxBodyBytes: 4096}}
	f.Fuzz(func(t *testing.T, body string) {
		r := httptest.NewRequest(http.MethodPost, "/v1/customize", strings.NewReader(body))
		req, code, err := srv.decodeCustomize(httptest.NewRecorder(), r)
		switch code {
		case http.StatusOK:
			if err != nil {
				t.Fatalf("status 200 with error %v", err)
			}
			if req.K < 1 || req.K > srv.cfg.MaxK {
				t.Fatalf("accepted k=%d outside [1,%d]", req.K, srv.cfg.MaxK)
			}
			if req.Requirement == "" || req.Pipeline == "" {
				t.Fatalf("accepted request missing defaults: %+v", req)
			}
		case http.StatusBadRequest, http.StatusUnprocessableEntity, http.StatusRequestEntityTooLarge:
			if err == nil {
				t.Fatalf("rejection status %d without error", code)
			}
		default:
			t.Fatalf("undocumented status %d (err %v)", code, err)
		}
	})
}
