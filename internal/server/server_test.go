package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/liberty"
	"repro/internal/llm"
	"repro/internal/synthrag"
)

var testLib = liberty.Nangate45()

// newTestServer builds a server over a fast retrieval-only database. Each
// test gets its own database so cache counters start from zero.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	db, err := synthrag.Build(synthrag.BuildConfig{Seed: 2, SkipSynth: true, Lib: testLib})
	if err != nil {
		t.Fatalf("build database: %v", err)
	}
	cfg.Model = llm.New(llm.GPT4o, 2)
	cfg.DB = db
	cfg.Lib = testLib
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	t.Cleanup(s.Close)
	return s
}

func postCustomize(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/customize", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/customize: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, b
}

// metricValue extracts a plain counter/gauge value from /metrics text.
func metricValue(t *testing.T, url, name string) float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	for _, line := range strings.Split(string(b), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("parse %s value %q: %v", name, rest, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in exposition", name)
	return 0
}

func TestCustomizeEndToEnd(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/v1/designs")
	if err != nil {
		t.Fatalf("GET /v1/designs: %v", err)
	}
	var ds []designJSON
	if err := json.NewDecoder(resp.Body).Decode(&ds); err != nil {
		t.Fatalf("decode designs: %v", err)
	}
	resp.Body.Close()
	found := false
	for _, d := range ds {
		if d.Name == "riscv32i" {
			found = true
		}
	}
	if !found {
		t.Fatalf("riscv32i missing from %d served designs", len(ds))
	}

	hr, body := postCustomize(t, ts.URL, `{"design":"riscv32i","k":2}`)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("customize status %d: %s", hr.StatusCode, body)
	}
	var out customizeResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	if out.Design != "riscv32i" || out.Pipeline != "chatls" || out.K != 2 {
		t.Errorf("response header = %s/%s/k%d", out.Design, out.Pipeline, out.K)
	}
	if len(out.Samples) != 2 {
		t.Errorf("samples = %d, want 2", len(out.Samples))
	}
	if out.Baseline.Area <= 0 {
		t.Errorf("baseline area %v, want > 0", out.Baseline.Area)
	}
	if out.Valid > 0 && out.Script == "" {
		t.Error("valid samples but empty best script")
	}

	// Bad inputs.
	for body, want := range map[string]int{
		`{"design":"nope"}`:                    http.StatusNotFound,
		`{"design":"riscv32i","k":99}`:         http.StatusUnprocessableEntity,
		`{"design":"riscv32i","pipeline":"x"}`: http.StatusUnprocessableEntity,
		`not json`:                             http.StatusBadRequest,
	} {
		hr, _ := postCustomize(t, ts.URL, body)
		if hr.StatusCode != want {
			t.Errorf("POST %s: status %d, want %d", body, hr.StatusCode, want)
		}
	}
}

// TestTaskCacheHit is the acceptance check: a repeated POST must skip
// baseline synthesis, observable through the /metrics hit counters.
func TestTaskCacheHit(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := `{"design":"riscv32i","k":1}`
	if hr, body := postCustomize(t, ts.URL, req); hr.StatusCode != http.StatusOK {
		t.Fatalf("first POST: %d %s", hr.StatusCode, body)
	}
	if m := metricValue(t, ts.URL, "chatlsd_task_cache_misses_total"); m != 1 {
		t.Errorf("after first request: task cache misses = %v, want 1", m)
	}
	if h := metricValue(t, ts.URL, "chatlsd_task_cache_hits_total"); h != 0 {
		t.Errorf("after first request: task cache hits = %v, want 0", h)
	}

	if hr, body := postCustomize(t, ts.URL, req); hr.StatusCode != http.StatusOK {
		t.Fatalf("second POST: %d %s", hr.StatusCode, body)
	}
	if h := metricValue(t, ts.URL, "chatlsd_task_cache_hits_total"); h != 1 {
		t.Errorf("after repeat request: task cache hits = %v, want 1", h)
	}
	// The design embedding is cached too: the repeat request must not
	// re-run the GNN forward pass.
	if h := metricValue(t, ts.URL, "chatlsd_embed_cache_hits_total"); h < 1 {
		t.Errorf("embed cache hits = %v, want >= 1", h)
	}
	if n := metricValue(t, ts.URL, "chatlsd_requests_total"); n != 2 {
		t.Errorf("requests_total = %v, want 2", n)
	}
}

// TestSingleflight holds the leader in the worker via the test hook and
// checks that an identical concurrent request joins it rather than running
// (observable in the shared counter before the leader finishes), and that
// both callers get the same response.
func TestSingleflight(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.hookBeforeWork = func() {
		once.Do(func() { close(started) })
		<-release
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := `{"design":"riscv32i","k":1}`
	type reply struct {
		code int
		body []byte
	}
	replies := make(chan reply, 2)
	post := func() {
		hr, body := postCustomize(t, ts.URL, req)
		replies <- reply{hr.StatusCode, body}
	}
	go post()
	<-started // leader is on a worker, blocked in the hook
	go post()

	// The follower joins the in-flight call; the join is counted before the
	// leader completes, so the counter must reach 1 while work is blocked.
	deadline := time.After(5 * time.Second)
	for metricValue(t, ts.URL, "chatlsd_singleflight_shared_total") != 1 {
		select {
		case <-deadline:
			t.Fatal("second identical request never joined the in-flight call")
		case <-time.After(5 * time.Millisecond):
		}
	}
	close(release)

	a, b := <-replies, <-replies
	if a.code != http.StatusOK || b.code != http.StatusOK {
		t.Fatalf("statuses %d/%d, want 200/200", a.code, b.code)
	}
	if !bytes.Equal(a.body, b.body) {
		t.Error("coalesced requests returned different bodies")
	}
	// One execution: exactly one worker ran, so only one baseline miss.
	if m := metricValue(t, ts.URL, "chatlsd_task_cache_misses_total"); m != 1 {
		t.Errorf("task cache misses = %v, want 1 (single execution)", m)
	}
}

// TestAdmissionControl saturates a 1-worker/1-slot pool with distinct
// requests and checks the third is rejected with 429.
func TestAdmissionControl(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.hookBeforeWork = func() {
		once.Do(func() { close(started) })
		<-release
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	codes := make(chan int, 2)
	post := func(design string) {
		hr, _ := postCustomize(t, ts.URL, fmt.Sprintf(`{"design":%q,"k":1}`, design))
		codes <- hr.StatusCode
	}
	go post("riscv32i")
	<-started // worker occupied
	go post("dynamic_node")
	deadline := time.After(5 * time.Second)
	for s.pool.Queued() != 1 { // second request parked in the queue slot
		select {
		case <-deadline:
			t.Fatal("second request never queued")
		case <-time.After(2 * time.Millisecond):
		}
	}

	hr, _ := postCustomize(t, ts.URL, `{"design":"ethmac","k":1}`)
	if hr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server returned %d, want 429", hr.StatusCode)
	}
	if n := metricValue(t, ts.URL, "chatlsd_rejected_total"); n != 1 {
		t.Errorf("rejected_total = %v, want 1", n)
	}

	close(release)
	if c := <-codes; c != http.StatusOK {
		t.Errorf("first request: %d, want 200", c)
	}
	if c := <-codes; c != http.StatusOK {
		t.Errorf("queued request: %d, want 200", c)
	}
}

// TestShutdownDrains verifies Close refuses new work immediately but does
// not return until in-flight work finishes — and that the drained request
// still gets its full response.
func TestShutdownDrains(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.hookBeforeWork = func() {
		once.Do(func() { close(started) })
		<-release
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type reply struct {
		code int
		body []byte
	}
	replies := make(chan reply, 1)
	go func() {
		hr, body := postCustomize(t, ts.URL, `{"design":"riscv32i","k":1}`)
		replies <- reply{hr.StatusCode, body}
	}()
	<-started

	closed := make(chan struct{})
	go func() { s.Close(); close(closed) }()
	select {
	case <-closed:
		t.Fatal("Close returned while a request was in flight")
	case <-time.After(20 * time.Millisecond):
	}

	// New work is refused while draining.
	hr, _ := postCustomize(t, ts.URL, `{"design":"riscv32i","k":1}`)
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining server returned %d, want 503", hr.StatusCode)
	}

	close(release)
	<-closed
	r := <-replies
	if r.code != http.StatusOK {
		t.Fatalf("drained request: %d %s", r.code, r.body)
	}
	var out customizeResponse
	if err := json.Unmarshal(r.body, &out); err != nil || out.Design != "riscv32i" {
		t.Errorf("drained response corrupt: %v %s", err, r.body)
	}
}

// TestConcurrentHammer drives mixed concurrent traffic through the server;
// run under -race it checks the shared database, caches, and per-request
// pipelines really are safe for concurrent use.
func TestConcurrentHammer(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4, QueueDepth: 32})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	reqs := []string{
		`{"design":"riscv32i","k":2}`,
		`{"design":"riscv32i","k":1,"pipeline":"gpt4o"}`,
		`{"design":"dynamic_node","k":1}`,
		`{"design":"riscv32i","k":2,"requirement":"recover area, timing is met"}`,
		`{"design":"dynamic_node","k":1,"pipeline":"claude"}`,
	}
	var wg sync.WaitGroup
	errs := make(chan error, 4*len(reqs))
	for round := 0; round < 4; round++ {
		for _, body := range reqs {
			wg.Add(1)
			go func(body string) {
				defer wg.Done()
				resp, err := http.Post(ts.URL+"/v1/customize", "application/json", strings.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				defer resp.Body.Close()
				b, _ := io.ReadAll(resp.Body)
				switch resp.StatusCode {
				case http.StatusOK:
					var out customizeResponse
					if err := json.Unmarshal(b, &out); err != nil {
						errs <- fmt.Errorf("bad 200 body: %v", err)
					}
				case http.StatusTooManyRequests:
					// admission control under burst is fine
				default:
					errs <- fmt.Errorf("status %d: %s", resp.StatusCode, b)
				}
			}(body)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := metricValue(t, ts.URL, "chatlsd_requests_total"); n != 20 {
		t.Errorf("requests_total = %v, want 20", n)
	}
}

// TestSTAMetricsExposed checks that the timing engine's process-wide
// counters ride along on /metrics: a customize request runs synthesis, so
// full analyses must be non-zero and the dirty-node histogram present.
func TestSTAMetricsExposed(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	hr, body := postCustomize(t, ts.URL, `{"design":"riscv32i"}`)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("customize status %d: %s", hr.StatusCode, body)
	}

	if n := metricValue(t, ts.URL, "sta_full_analyses_total"); n <= 0 {
		t.Errorf("sta_full_analyses_total = %v, want > 0", n)
	}
	// The counters are process-wide, so only presence (not a specific value)
	// is asserted for the incremental side; the synthesis above exercises it.
	if n := metricValue(t, ts.URL, "sta_incremental_updates_total"); n < 0 {
		t.Errorf("sta_incremental_updates_total = %v, want >= 0", n)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if !bytes.Contains(b, []byte("sta_dirty_nodes_count")) {
		t.Error("sta_dirty_nodes histogram missing from /metrics exposition")
	}
}
