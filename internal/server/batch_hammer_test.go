package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/llm"
	"repro/internal/synthrag"
)

// TestBatchedCustomizeByteIdentical is the continuous-batching correctness
// hammer: many concurrent /v1/customize requests driven through a server
// whose embedding path runs behind the admission queue must produce, byte
// for byte, the responses a batching-disabled server produces for the same
// requests. Run under -race (make check does) this also shakes out data
// races in the batcher handoff. Two separate databases are built from the
// same seed because EnableBatching mutates the database in place — the
// builds are bit-identical, so any response difference is the batcher's.
func TestBatchedCustomizeByteIdentical(t *testing.T) {
	build := func() *synthrag.Database {
		db, err := synthrag.Build(synthrag.BuildConfig{Seed: 2, SkipSynth: true, Lib: testLib})
		if err != nil {
			t.Fatalf("build database: %v", err)
		}
		return db
	}
	newSrv := func(cfg Config) *Server {
		cfg.Model = llm.New(llm.GPT4o, 2)
		cfg.Lib = testLib
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("server.New: %v", err)
		}
		t.Cleanup(s.Close)
		return s
	}
	// A wide window and generous pool force real coalescing: requests for
	// distinct designs miss the embed cache together and meet in one flush.
	batched := newSrv(Config{
		DB: build(), Workers: 8, QueueDepth: 64,
		BatchWindow: 20 * time.Millisecond, BatchMax: 8,
	})
	serial := newSrv(Config{
		DB: build(), Workers: 8, QueueDepth: 64,
		DisableBatching: true,
	})
	tsBatched := httptest.NewServer(batched.Handler())
	defer tsBatched.Close()
	tsSerial := httptest.NewServer(serial.Handler())
	defer tsSerial.Close()

	// Distinct designs and requirements defeat both the embed LRU (per
	// design) and singleflight (per full request), so the batcher sees real
	// concurrent traffic on the GNN and text embedding paths.
	designNames := []string{"aes", "dynamic_node", "ethmac", "jpeg", "riscv32i", "swerv"}
	reqs := make([]string, 0, len(designNames)*3)
	for i, d := range designNames {
		for r := 0; r < 3; r++ {
			reqs = append(reqs, fmt.Sprintf(`{"design":%q,"requirement":"optimize variant %d for timing","k":1}`, d, i*3+r))
		}
	}

	hammer := func(url string) []string {
		out := make([]string, len(reqs))
		var wg sync.WaitGroup
		for i, body := range reqs {
			wg.Add(1)
			go func(i int, body string) {
				defer wg.Done()
				resp, b := postCustomize(t, url, body)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("req %d: status %d: %s", i, resp.StatusCode, b)
					return
				}
				out[i] = string(b)
			}(i, body)
		}
		wg.Wait()
		return out
	}

	got := hammer(tsBatched.URL)
	want := hammer(tsSerial.URL)
	if t.Failed() {
		t.FailNow()
	}
	for i := range reqs {
		if got[i] != want[i] {
			t.Errorf("request %d (%s): batched response differs from serial\nbatched: %s\nserial:  %s",
				i, reqs[i], got[i], want[i])
		}
	}

	st := batched.cfg.DB.BatchStats()
	if st.Items == 0 {
		t.Fatal("batched server processed no items through the admission queue")
	}
	if st.Flushes >= st.Items {
		t.Errorf("no coalescing happened: %d flushes for %d items", st.Flushes, st.Items)
	}
	t.Logf("batcher: %d items across %d flushes (avg batch %.1f)",
		st.Items, st.Flushes, float64(st.Items)/float64(st.Flushes))
	if sst := serial.cfg.DB.BatchStats(); sst.Items != 0 {
		t.Errorf("serial server unexpectedly batched %d items", sst.Items)
	}
}

// TestHealthzEchoesBatchConfig: the effective batching and HNSW settings
// must be visible on /healthz, including non-default overrides.
func TestHealthzEchoesBatchConfig(t *testing.T) {
	s := newTestServer(t, Config{
		Workers: 1, QueueDepth: 4,
		BatchWindow: 5 * time.Millisecond, BatchMax: 4, HNSWEf: 128,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	defer resp.Body.Close()
	var hz healthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	if !hz.BatchEnabled || hz.BatchWindowNS != (5*time.Millisecond).Nanoseconds() || hz.BatchMax != 4 {
		t.Errorf("healthz batch echo = enabled=%v window=%dns max=%d, want enabled 5ms/4",
			hz.BatchEnabled, hz.BatchWindowNS, hz.BatchMax)
	}
	if hz.HNSWEf != 128 {
		t.Errorf("healthz hnsw_ef = %d, want 128", hz.HNSWEf)
	}
	// The shipped corpora are below the HNSW threshold: every index must
	// report the exact flat backend.
	for name, backend := range hz.IndexBackends {
		if backend != "flat" {
			t.Errorf("index %s backend = %q, want flat", name, backend)
		}
	}
}
