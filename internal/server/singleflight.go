package server

import "sync"

// flightCall is one in-flight unit of work shared by every request that
// arrived with the same key while it ran.
type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

// flightGroup deduplicates concurrent identical requests: the first caller
// for a key runs fn, later callers with the same key wait for and share its
// result. Completed keys are forgotten immediately, so a key that arrives
// after the work finished runs fresh (no caching here — that is the LRU's
// job).
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
	// onJoin, when set, fires once per follower at join time (before the
	// leader completes) — the server counts deduplicated requests with it,
	// which also lets tests observe a join while the leader is still blocked.
	onJoin func()
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flightCall)}
}

// Do runs fn for key, unless an identical call is already in flight, in
// which case it waits for that call and returns its result. shared reports
// whether this caller was a follower.
func (g *flightGroup) Do(key string, fn func() (any, error)) (val any, shared bool, err error) {
	g.mu.Lock()
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		if g.onJoin != nil {
			g.onJoin()
		}
		<-c.done
		return c.val, true, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, false, c.err
}
