package server

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/qorlog"
)

// TestWarmRestartServesByteIdenticalResults is the durable-log acceptance
// path: a daemon writes its synthesis outcomes to the QoR log, a second
// daemon over the same log warm-fills from it, serves the repeat request
// with log hits instead of synthesis runs, and the response bytes are
// identical to the cold-computed ones.
func TestWarmRestartServesByteIdenticalResults(t *testing.T) {
	path := filepath.Join(t.TempDir(), "qor.log")
	const req = `{"design":"riscv32i","k":2}`

	s1 := newTestServer(t, Config{Workers: 1, QueueDepth: 4, QoRLogPath: path})
	ts1 := httptest.NewServer(s1.Handler())
	hr, cold := postCustomize(t, ts1.URL, req)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("cold customize status %d: %s", hr.StatusCode, cold)
	}
	if n := metricValue(t, ts1.URL, "qorlog_appends_total"); n == 0 {
		t.Fatal("cold run must append its outcomes to the log")
	}
	ts1.Close()
	s1.Close() // flush: the restart below must see every record

	s2 := newTestServer(t, Config{Workers: 1, QueueDepth: 4, QoRLogPath: path})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	if n := metricValue(t, ts2.URL, "qorlog_warm_records_total"); n == 0 {
		t.Fatal("restarted server must warm-fill from the log")
	}
	hr, warm := postCustomize(t, ts2.URL, req)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("warm customize status %d: %s", hr.StatusCode, warm)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("warm-restarted response differs from cold-computed:\ncold: %s\nwarm: %s", cold, warm)
	}
	if n := metricValue(t, ts2.URL, "qorlog_hits_total"); n < 2 {
		t.Fatalf("qorlog_hits_total = %v, want >= 2 (both samples served from the log)", n)
	}
	if n := metricValue(t, ts2.URL, "qorlog_appends_total"); n != 0 {
		t.Fatalf("qorlog_appends_total = %v, want 0 (nothing changed, nothing re-logged)", n)
	}
}

// TestShutdownFlushesQoRLog: the graceful-stop path drains workers and
// leaves a log the next process can replay.
func TestShutdownFlushesQoRLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "qor.log")
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 4, QoRLogPath: path})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	hr, body := postCustomize(t, ts.URL, `{"design":"riscv32i","k":1}`)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("customize status %d: %s", hr.StatusCode, body)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("second Shutdown must be a no-op, got: %v", err)
	}

	l, err := qorlog.Open(path, qorlog.Options{})
	if err != nil {
		t.Fatalf("reopen flushed log: %v", err)
	}
	defer l.Close()
	if l.Len() == 0 {
		t.Fatal("shutdown must flush the request's outcome to the log")
	}
	if st := l.Stats(); st.DroppedBytes != 0 {
		t.Fatalf("flushed log must be clean, recovery dropped %d bytes", st.DroppedBytes)
	}
}

// TestUnopenableQoRLogDegradesToMemoryOnly: a bad log path must not fail
// startup — the daemon warns and serves with in-process caching only.
func TestUnopenableQoRLogDegradesToMemoryOnly(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 4, QoRLogPath: t.TempDir()}) // a directory, not a file
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	hr, body := postCustomize(t, ts.URL, `{"design":"riscv32i","k":1}`)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("customize status %d: %s", hr.StatusCode, body)
	}
	if n := metricValue(t, ts.URL, "qorlog_appends_total"); n != 0 {
		t.Fatalf("memory-only store must not report log appends, got %v", n)
	}
	// The in-memory store still dedups: the repeat request hits.
	hr, body = postCustomize(t, ts.URL, `{"design":"riscv32i","k":1}`)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("repeat customize status %d: %s", hr.StatusCode, body)
	}
	if n := metricValue(t, ts.URL, "qorlog_hits_total"); n == 0 {
		t.Fatal("memory-only store must still serve repeat results")
	}
}
