// Package server is the serving layer for the ChatLS pipeline: an HTTP JSON
// API that customizes synthesis scripts on demand. It layers, on top of the
// one-shot experiment harness, the machinery a long-lived daemon needs:
//
//   - a bounded worker pool with admission control (full queue → 429),
//   - adaptive overload protection (internal/overload): an AIMD concurrency
//     limiter in front of the pool, cost-based load shedding when the
//     learned end-to-end request cost cannot fit the deadline (503 +
//     Retry-After), and a brownout mode that clamps Pass@k to one sample
//     under sustained shedding,
//   - per-stage circuit breakers (internal/resilience) around the pipeline's
//     auxiliary components, so a persistently failing stage is skipped
//     immediately instead of burning retries on every request,
//   - a per-request deadline (resilience timeout → 504),
//   - singleflight deduplication of identical in-flight requests,
//   - LRU caches for the expensive idempotent stages (baseline task
//     construction, design-graph embeddings, strategy retrieval),
//   - a metrics registry exposed in Prometheus text format,
//   - graceful shutdown that drains in-flight work.
//
// Concurrency model: the llm.Model, synthrag.Database, and liberty.Library
// shared across requests are immutable at serving time; each request gets
// its own pipeline instance (cheap — a pair of struct allocations) and its
// own shallow copy of the cached baseline task, so no per-call state is
// ever shared between goroutines.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	chatls "repro"
	"repro/internal/batch"
	"repro/internal/designs"
	"repro/internal/inputlimits"
	"repro/internal/liberty"
	"repro/internal/llm"
	"repro/internal/lru"
	"repro/internal/metrics"
	"repro/internal/overload"
	"repro/internal/qorlog"
	"repro/internal/remotecache"
	"repro/internal/resilience"
	"repro/internal/sta"
	"repro/internal/synth"
	"repro/internal/synthrag"
	"repro/internal/vecindex"
	"repro/internal/workpool"
)

// Config assembles a Server. Zero values get serving defaults (see New).
type Config struct {
	Model *llm.Model         // generator for the chatls pipeline
	DB    *synthrag.Database // built SynthRAG database (required)
	Lib   *liberty.Library   // cell library; nil = Nangate45
	Seed  int64              // seed for raw-pipeline model instances

	Designs []*designs.Design // servable designs; nil = full benchmark set

	Workers        int           // worker pool size (default 2)
	QueueDepth     int           // admission-control queue bound (default 8)
	RequestTimeout time.Duration // per-request deadline (default 60s)

	// Adaptive overload protection (see internal/overload). The limiter
	// bounds admitted-but-unfinished requests between InflightFloor
	// (default 1) and InflightCeiling (default Workers+QueueDepth — the
	// old fixed cap), starting at the ceiling and adapting on observed
	// completion latency.
	InflightFloor   int
	InflightCeiling int
	// Per-stage circuit-breaker tuning for the pipeline's auxiliary
	// components (mentor, RAG embed/retrieve, expert): BreakerFailures
	// consecutive failures trip a stage open (default 5), it dwells open
	// for BreakerOpenFor (default 5s), then admits BreakerProbes half-open
	// probes (default 1).
	BreakerFailures int
	BreakerOpenFor  time.Duration
	BreakerProbes   int
	// DisableBrownout turns off the sustained-pressure degradation mode
	// (Pass@k clamped to 1 while most recent admissions shed).
	DisableBrownout bool
	// Costs, when non-nil, is a shared (possibly pre-seeded) per-stage
	// cost model; nil gets a fresh one. The chaos harness injects a
	// primed model to exercise cost-based shedding deterministically.
	Costs *overload.CostModel
	// BeforeWork, when set, runs at the start of every pool-executed
	// customization — the chaos harness injects latency spikes here.
	BeforeWork func()
	// PipelineInject, when set, is installed as the fault injector on
	// every per-request chatls pipeline (tests and the chaos harness).
	PipelineInject *resilience.Injector

	TaskCacheSize     int // baseline-task LRU entries (default 16)
	EmbedCacheSize    int // design-embedding LRU entries (default 64)
	RetrieveCacheSize int // strategy-retrieval LRU entries (default 256)

	// BatchWindow and BatchMax tune the continuous-batching admission queue
	// over the database's embedding models: concurrent cache-missing embed
	// requests arriving within BatchWindow coalesce into one stacked forward
	// pass, flushing early once BatchMax requests are queued. Defaults are
	// batch.DefaultWindow / batch.DefaultMaxBatch; DisableBatching turns the
	// queue off entirely (requests embed serially, as before).
	BatchWindow     time.Duration
	BatchMax        int
	DisableBatching bool

	// HNSWEf, when > 0, widens the HNSW search beam on every database index
	// that has migrated to graph search (no-op while indexes are still exact
	// Flat scans below the corpus-size threshold).
	HNSWEf int

	// CheckpointCap bounds the process-wide elaboration-checkpoint store:
	// every synthesis run the daemon executes (baselines and Pass@k samples
	// alike) restores post-link compile state from it instead of
	// re-elaborating identical sources. 0 selects
	// synth.DefaultCheckpointCap; negative disables checkpointing.
	CheckpointCap int

	// QoRLogPath, when non-empty, opens the durable QoR log there: every
	// sample synthesis outcome is appended, and a restarted daemon warm-fills
	// its result cache from the log instead of recomputing (warm restart).
	// Corrupt or torn trailing records are truncated at open; an unopenable
	// log degrades the daemon to memory-only result caching with a warning
	// rather than failing startup. Empty disables result caching.
	QoRLogPath string
	// QoRCacheSize bounds the in-memory record cache in front of the log
	// (default qorlog.DefaultCacheCap).
	QoRCacheSize int
	// QoRLogOpts tunes recompaction and fault injection (tests).
	QoRLogOpts qorlog.Options

	// RemoteCache, when non-nil, connects this replica to a shared
	// chatlscached result tier: QoR lookups read through to it, fresh
	// results publish to it in the background, elaboration checkpoints are
	// shared by content key, and Pass@k samples claim fleet-wide leases so
	// concurrent replicas synthesize each unique (library, sources, script)
	// exactly once between them. A dead or unreachable tier degrades the
	// replica to local-only operation with a single warning; results are
	// bit-identical with or without it.
	RemoteCache *remotecache.Client

	DefaultK int // Pass@k when the request omits k (default 1)
	MaxK     int // upper bound on requested k (default 10)

	MaxBodyBytes      int64 // request-body cap, enforced before decoding (default 1 MiB)
	MaxRequirementLen int   // requirement string length cap (default 8 KiB)
}

// taskEntry is one cached baseline synthesis: the pristine task (requirement
// left at the default — requests get a copy) and its QoR.
type taskEntry struct {
	task *chatls.Task
	qor  synth.QoR
}

// Server handles the ChatLS HTTP API. Create with New, serve via Handler,
// stop with Close.
type Server struct {
	cfg     Config
	byName  map[string]*designs.Design
	pool    *workpool.Pool
	flight  *flightGroup
	tasks   *lru.Cache[string, taskEntry]
	ckpt    *synth.CheckpointStore // nil when CheckpointCap < 0
	results *qorlog.Store          // nil when QoRLogPath == ""
	tier    *remotecache.Tier      // nil when RemoteCache is nil
	reg     *metrics.Registry
	closed  atomic.Bool

	limiter  *overload.Limiter
	brownout *overload.Brownout // nil when DisableBrownout
	costs    *overload.CostModel
	breakers map[string]*resilience.Breaker // per-stage, shared across requests

	costSheds atomic.Int64 // requests shed because expected cost exceeds the deadline
	shedProbe atomic.Int64 // deterministic 1-in-N probe-through counter for cost sheds

	requests     *metrics.Counter
	rejected     *metrics.Counter
	errs         *metrics.Counter
	timeouts     *metrics.Counter
	sfShared     *metrics.Counter
	bodyTooLarge *metrics.Counter
	badJSON      *metrics.Counter
	invalidReq   *metrics.Counter
	latency      *metrics.Histogram

	// hookBeforeWork, when set, runs at the start of every pool-executed
	// customization. Tests use it to hold a worker in place while they
	// observe admission control, singleflight joins, and shutdown draining.
	hookBeforeWork func()
}

var (
	errOverloaded = errors.New("queue full")
	// errShed marks a cost-based shed: the learned end-to-end request cost
	// no longer fits the per-request deadline, so running the work could
	// only produce a 504 after burning a worker.
	errShed = errors.New("expected request cost exceeds the deadline")
)

// New validates the config, applies defaults, enables the database caches,
// and wires the metrics registry.
func New(cfg Config) (*Server, error) {
	if cfg.Model == nil {
		return nil, errors.New("server: Config.Model is required")
	}
	if cfg.DB == nil {
		return nil, errors.New("server: Config.DB is required")
	}
	if cfg.Lib == nil {
		cfg.Lib = liberty.Nangate45()
	}
	if cfg.Designs == nil {
		cfg.Designs = designs.Benchmarks()
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 60 * time.Second
	}
	if cfg.TaskCacheSize <= 0 {
		cfg.TaskCacheSize = 16
	}
	if cfg.EmbedCacheSize <= 0 {
		cfg.EmbedCacheSize = 64
	}
	if cfg.RetrieveCacheSize <= 0 {
		cfg.RetrieveCacheSize = 256
	}
	if cfg.DefaultK <= 0 {
		cfg.DefaultK = 1
	}
	if cfg.MaxK <= 0 {
		cfg.MaxK = 10
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.MaxRequirementLen <= 0 {
		cfg.MaxRequirementLen = 8 << 10
	}

	if cfg.BatchWindow <= 0 {
		cfg.BatchWindow = batch.DefaultWindow
	}
	if cfg.BatchMax <= 0 {
		cfg.BatchMax = batch.DefaultMaxBatch
	}

	if cfg.InflightFloor <= 0 {
		cfg.InflightFloor = 1
	}
	if cfg.InflightCeiling <= 0 {
		// The ceiling defaults to the old fixed admission cap, so a
		// fresh (uncongested) server admits exactly what it used to.
		cfg.InflightCeiling = cfg.Workers + cfg.QueueDepth
	}
	if cfg.InflightCeiling < cfg.InflightFloor {
		cfg.InflightCeiling = cfg.InflightFloor
	}
	if cfg.BreakerFailures <= 0 {
		cfg.BreakerFailures = 5
	}
	if cfg.BreakerOpenFor <= 0 {
		cfg.BreakerOpenFor = 5 * time.Second
	}
	if cfg.BreakerProbes <= 0 {
		cfg.BreakerProbes = 1
	}
	if cfg.Costs == nil {
		cfg.Costs = overload.NewCostModel(0)
	}

	cfg.DB.EnableCache(cfg.EmbedCacheSize, cfg.RetrieveCacheSize)
	if !cfg.DisableBatching {
		cfg.DB.EnableBatching(cfg.BatchWindow, cfg.BatchMax)
	}
	if cfg.HNSWEf > 0 {
		cfg.DB.SetHNSWEf(cfg.HNSWEf)
	}

	s := &Server{
		cfg:    cfg,
		byName: make(map[string]*designs.Design, len(cfg.Designs)),
		pool:   workpool.New(cfg.Workers, cfg.QueueDepth),
		flight: newFlightGroup(),
		tasks:  lru.New[string, taskEntry](cfg.TaskCacheSize),
		reg:    metrics.NewRegistry(),
		costs:  cfg.Costs,
		limiter: overload.NewLimiter(overload.LimiterConfig{
			Floor:   cfg.InflightFloor,
			Ceiling: cfg.InflightCeiling,
		}),
	}
	if !cfg.DisableBrownout {
		s.brownout = overload.NewBrownout(overload.BrownoutConfig{})
	}
	s.breakers = make(map[string]*resilience.Breaker, 4)
	for _, comp := range []string{
		resilience.CompMentor,
		resilience.CompRAGEmbed,
		resilience.CompRAGRetrieve,
		resilience.CompExpert,
	} {
		comp := comp
		s.breakers[comp] = resilience.NewBreaker(resilience.BreakerConfig{
			Failures: cfg.BreakerFailures,
			OpenFor:  cfg.BreakerOpenFor,
			Probes:   cfg.BreakerProbes,
			OnOpen: func() {
				log.Printf("chatlsd: circuit breaker for %s opened (stage skipped until recovery probes succeed)", comp)
			},
			OnClose: func() {
				log.Printf("chatlsd: circuit breaker for %s closed (stage restored)", comp)
			},
		})
	}
	if cfg.CheckpointCap >= 0 {
		s.ckpt = synth.NewCheckpointStore(cfg.CheckpointCap)
	}
	if cfg.QoRLogPath != "" {
		store, err := qorlog.OpenStore(cfg.QoRLogPath, cfg.QoRCacheSize, cfg.QoRLogOpts)
		if err != nil {
			// An unopenable log is a degraded start, not a failed one: the
			// daemon serves correctly from memory, it just recomputes.
			log.Printf("chatlsd: cannot open QoR log %s, running memory-only (results will not survive a restart): %v",
				cfg.QoRLogPath, err)
			store = qorlog.NewMemoryStore(cfg.QoRCacheSize)
		}
		s.results = store
	}
	if cfg.RemoteCache != nil {
		// The tier layers the remote cache over the local store (which may
		// be nil — *qorlog.Store is nil-safe — leaving a remote-only tier).
		s.tier = remotecache.NewTier(s.results, cfg.RemoteCache)
		if s.ckpt != nil {
			s.ckpt.SetRemote(cfg.RemoteCache)
		}
	}
	for _, d := range cfg.Designs {
		s.byName[d.Name] = d
	}

	s.requests = s.reg.NewCounter("chatlsd_requests_total", "customize requests received")
	s.rejected = s.reg.NewCounter("chatlsd_rejected_total", "requests rejected by admission control")
	s.errs = s.reg.NewCounter("chatlsd_errors_total", "customize requests that failed")
	s.timeouts = s.reg.NewCounter("chatlsd_timeouts_total", "customize requests that hit the per-request deadline")
	s.sfShared = s.reg.NewCounter("chatlsd_singleflight_shared_total", "requests coalesced onto an identical in-flight request")
	s.bodyTooLarge = s.reg.NewCounter("chatlsd_input_rejected_body_too_large_total", "requests rejected with 413 for exceeding the body-size cap")
	s.badJSON = s.reg.NewCounter("chatlsd_input_rejected_bad_json_total", "requests rejected with 400 for malformed or unknown-field JSON")
	s.invalidReq = s.reg.NewCounter("chatlsd_input_rejected_invalid_total", "requests rejected with 422 for semantically invalid fields")
	s.flight.onJoin = s.sfShared.Inc
	s.reg.NewCounterFunc("chatlsd_task_cache_hits_total", "baseline-task cache hits", s.tasks.Hits)
	s.reg.NewCounterFunc("chatlsd_task_cache_misses_total", "baseline-task cache misses", s.tasks.Misses)
	s.reg.NewCounterFunc("chatlsd_embed_cache_hits_total", "design-embedding cache hits",
		func() int64 { return cfg.DB.CacheStats().EmbedHits })
	s.reg.NewCounterFunc("chatlsd_embed_cache_misses_total", "design-embedding cache misses",
		func() int64 { return cfg.DB.CacheStats().EmbedMisses })
	s.reg.NewCounterFunc("chatlsd_retrieve_cache_hits_total", "strategy-retrieval cache hits",
		func() int64 { return cfg.DB.CacheStats().RetrieveHits })
	s.reg.NewCounterFunc("chatlsd_retrieve_cache_misses_total", "strategy-retrieval cache misses",
		func() int64 { return cfg.DB.CacheStats().RetrieveMisses })
	s.reg.NewCounterFunc("synth_checkpoint_hits_total", "synthesis runs restored from an elaboration checkpoint",
		func() int64 { return s.ckpt.Stats().Hits })
	s.reg.NewCounterFunc("synth_checkpoint_misses_total", "checkpointable synthesis runs that elaborated fresh",
		func() int64 { return s.ckpt.Stats().Misses })
	s.reg.NewCounterFunc("synth_checkpoint_evictions_total", "elaboration checkpoints displaced by capacity pressure",
		func() int64 { return s.ckpt.Stats().Evictions })
	s.reg.NewCounterFunc("qorlog_hits_total", "sample syntheses served from the durable QoR store",
		func() int64 { return s.results.Stats().Hits })
	s.reg.NewCounterFunc("qorlog_misses_total", "QoR store lookups that ran the synthesis tool",
		func() int64 { return s.results.Stats().Misses })
	s.reg.NewCounterFunc("qorlog_appends_total", "QoR records appended to the log this process",
		func() int64 { return s.results.Stats().Appends })
	s.reg.NewCounterFunc("qorlog_append_errors_total", "failed QoR-log append attempts",
		func() int64 { return s.results.Stats().AppendErrors })
	s.reg.NewCounterFunc("qorlog_records_recovered_total", "QoR records replayed from the log at startup",
		func() int64 { return s.results.Stats().Recovered })
	s.reg.NewCounterFunc("qorlog_dropped_bytes_total", "torn or corrupt trailing log bytes truncated at startup",
		func() int64 { return s.results.Stats().DroppedBytes })
	s.reg.NewCounterFunc("qorlog_recompactions_total", "QoR-log recompaction rewrites completed",
		func() int64 { return s.results.Stats().Recompacted })
	s.reg.NewCounterFunc("qorlog_warm_records_total", "QoR records warm-filled into the cache at startup",
		func() int64 { return s.results.Stats().Warmed })
	s.reg.NewGaugeFunc("qorlog_degraded", "1 once QoR-log writes were abandoned (memory-only mode)",
		func() int64 {
			if s.results.Degraded() {
				return 1
			}
			return 0
		})
	s.reg.NewGaugeFunc("chatlsd_queue_depth", "tasks waiting in the worker-pool queue",
		func() int64 { return int64(s.pool.Queued()) })
	s.reg.NewGaugeFunc("chatlsd_workers_busy", "workers currently executing a request",
		func() int64 { return int64(s.pool.Busy()) })
	s.reg.NewGaugeFunc("overload_limit", "current adaptive concurrency limit",
		func() int64 { return int64(s.limiter.Limit()) })
	s.reg.NewGaugeFunc("overload_inflight", "requests holding adaptive-limiter slots",
		func() int64 { return int64(s.limiter.Inflight()) })
	s.reg.NewCounterFunc("overload_shed_total", "requests shed by overload protection (limiter rejects plus cost-based sheds)",
		func() int64 { return s.limiter.Sheds() + s.costSheds.Load() })
	s.reg.NewGaugeFunc("overload_brownout_active", "1 while brownout mode is degrading service (Pass@k clamped to 1)",
		func() int64 {
			if s.brownout.Active() {
				return 1
			}
			return 0
		})
	s.reg.NewCounterFunc("overload_brownout_entries_total", "times brownout mode has been entered",
		s.brownout.Entries)
	for comp, br := range s.breakers {
		br := br
		s.reg.NewGaugeFunc("breaker_state_"+metricName(comp),
			"circuit-breaker state for "+comp+" (0=closed, 1=half-open, 2=open)",
			func() int64 { return int64(br.State()) })
	}
	if rc := cfg.RemoteCache; rc != nil {
		s.reg.NewCounterFunc("remotecache_client_qor_hits_total", "QoR records served by the remote result tier",
			func() int64 { return rc.Stats().QoRHits })
		s.reg.NewCounterFunc("remotecache_client_qor_misses_total", "remote result-tier QoR lookups that missed",
			func() int64 { return rc.Stats().QoRMisses })
		s.reg.NewCounterFunc("remotecache_client_qor_puts_total", "QoR records published to the remote result tier",
			func() int64 { return rc.Stats().QoRPuts })
		s.reg.NewCounterFunc("remotecache_client_checkpoint_hits_total", "elaboration checkpoints restored from the remote tier",
			func() int64 { return rc.Stats().BlobHits })
		s.reg.NewCounterFunc("remotecache_client_checkpoint_misses_total", "remote checkpoint lookups that missed",
			func() int64 { return rc.Stats().BlobMisses })
		s.reg.NewCounterFunc("remotecache_client_checkpoint_puts_total", "elaboration checkpoints published to the remote tier",
			func() int64 { return rc.Stats().BlobPuts })
		s.reg.NewCounterFunc("remotecache_client_leases_granted_total", "fleet-wide work leases this replica was granted",
			func() int64 { return rc.Stats().LeasesGranted })
		s.reg.NewCounterFunc("remotecache_client_lease_waits_total", "times this replica waited on a sibling's lease",
			func() int64 { return rc.Stats().LeaseWaits })
		s.reg.NewCounterFunc("remotecache_client_dropped_total", "remote-tier operations dropped by degradation or errors",
			func() int64 { return rc.Stats().Dropped })
		s.reg.NewGaugeFunc("remotecache_client_degraded", "1 while the remote tier is unreachable (local-only mode)",
			func() int64 {
				if rc.Degraded() {
					return 1
				}
				return 0
			})
		s.reg.NewGaugeFunc("breaker_state_remotecache",
			"circuit-breaker state for the remote result tier (0=closed, 1=half-open, 2=open)",
			func() int64 { return int64(rc.BreakerState()) })
	}
	s.latency = s.reg.NewHistogram("chatlsd_customize_seconds", "end-to-end customize latency", metrics.DefaultLatencyBuckets)

	// Timing-engine counters are process-wide (the sta package keeps them as
	// plain atomics so it stays free of a metrics dependency); the daemon is
	// the natural place to expose them.
	s.reg.NewCounterFunc("sta_full_analyses_total", "full static timing analyses run",
		func() int64 { return int64(sta.FullAnalyses()) })
	s.reg.NewCounterFunc("sta_incremental_updates_total", "incremental timing updates run",
		func() int64 { return int64(sta.IncrementalUpdates()) })
	staDirty := s.reg.NewHistogram("sta_dirty_nodes", "nets and cells recomputed per incremental timing update",
		[]float64{1, 4, 16, 64, 256, 1024, 4096, 16384})
	sta.SetDirtyNodesObserver(func(n int) { staDirty.Observe(float64(n)) })

	// HNSW counters are process-wide atomics in vecindex (same pattern as
	// the sta counters above); zero until an index crosses the corpus-size
	// threshold and migrates to graph search.
	s.reg.NewCounterFunc("vecindex_hnsw_nodes_total", "vectors inserted into HNSW graph indexes",
		vecindex.HNSWNodes)
	s.reg.NewCounterFunc("vecindex_hnsw_hops_total", "graph-edge traversals performed by HNSW searches and inserts",
		vecindex.HNSWHops)

	if !cfg.DisableBatching {
		batchSize := s.reg.NewHistogram("chatlsd_batch_size", "embedding requests coalesced per batcher flush",
			[]float64{1, 2, 4, 8, 16, 32, 64})
		batchWait := s.reg.NewHistogram("chatlsd_batch_wait_ns", "oldest request's queue wait per batcher flush, nanoseconds",
			[]float64{1e3, 1e4, 1e5, 5e5, 1e6, 2e6, 5e6, 1e7})
		cfg.DB.SetBatchObserver(func(size int, wait time.Duration) {
			batchSize.Observe(float64(size))
			batchWait.Observe(float64(wait.Nanoseconds()))
		})
	}

	return s, nil
}

// Close stops admitting requests, drains in-flight and queued work with no
// deadline, and flushes and closes the QoR log. Idempotent.
func (s *Server) Close() {
	if s.closed.CompareAndSwap(false, true) {
		s.pool.Close()
		s.tier.Close()
		s.results.Close()
	}
}

// Shutdown is the graceful-stop path: it stops admitting requests, drains
// the worker pool until ctx expires, then flushes and closes the QoR log so
// every completed result is durable for the next warm restart. A deadline
// overrun returns ctx.Err() — the log still closes (appends after close
// land only in memory), but workers past the deadline are abandoned to the
// process exit. Idempotent with Close; the first caller wins.
func (s *Server) Shutdown(ctx context.Context) error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	drained := make(chan struct{})
	go func() {
		s.pool.Close()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.tier.Close() // flush queued remote publishes before the local log closes
	if cerr := s.results.Close(); err == nil {
		err = cerr
	}
	return err
}

// QoRStats exposes the QoR store's counters (zeros when no log is
// configured) — the daemon logs recovery results at startup from these.
func (s *Server) QoRStats() qorlog.StoreStats { return s.results.Stats() }

// resultStore picks the result store samples evaluate against: the two-level
// tier when a remote cache is wired, the local store alone otherwise. The
// explicit nil return keeps the interface nil (a typed-nil *qorlog.Store
// would read as "caching enabled" to the evaluator).
func (s *Server) resultStore() chatls.ResultStore {
	if s.tier != nil {
		return s.tier
	}
	if s.results != nil {
		return s.results
	}
	return nil
}

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/customize", s.handleCustomize)
	mux.HandleFunc("GET /v1/designs", s.handleDesigns)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// customizeRequest is the POST /v1/customize body.
type customizeRequest struct {
	Design      string `json:"design"`
	Requirement string `json:"requirement,omitempty"`
	Pipeline    string `json:"pipeline,omitempty"` // chatls (default), gpt4o, claude
	K           int    `json:"k,omitempty"`
}

// sampleJSON is one Pass@k attempt in the response.
type sampleJSON struct {
	QoR      *synth.QoR `json:"qor,omitempty"`
	Error    string     `json:"error,omitempty"`
	Degraded []string   `json:"degraded,omitempty"`
}

// customizeResponse is the POST /v1/customize reply.
type customizeResponse struct {
	Design     string       `json:"design"`
	Pipeline   string       `json:"pipeline"`
	K          int          `json:"k"`
	Baseline   synth.QoR    `json:"baseline"`
	Best       synth.QoR    `json:"best"`
	BestSample int          `json:"best_sample"`
	Valid      int          `json:"valid"`
	Improved   bool         `json:"improved"`
	Script     string       `json:"script,omitempty"`
	Samples    []sampleJSON `json:"samples"`
	// Degraded lists request-level degradations ("brownout" when the
	// server clamped k under sustained overload); per-sample pipeline
	// degradations live on the samples.
	Degraded []string `json:"degraded,omitempty"`
}

// errorResponse is the JSON error body on every non-2xx reply. Retryable is
// true exactly for the transient overload/timeout statuses (429, 503, 504):
// the same request may succeed later, and the reply carries a Retry-After
// header hinting when. 4xx input errors are not retryable — resending the
// same bytes fails the same way.
type errorResponse struct {
	Error     string `json:"error"`
	Retryable bool   `json:"retryable"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError writes the uniform JSON error body, attaching a Retry-After
// hint (derived from the learned end-to-end request cost, minimum 1s) to
// the retryable statuses so well-behaved clients back off instead of
// hammering an overloaded server.
func (s *Server) writeError(w http.ResponseWriter, code int, msg string) {
	retryable := code == http.StatusTooManyRequests ||
		code == http.StatusServiceUnavailable ||
		code == http.StatusGatewayTimeout
	if retryable {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	}
	writeJSON(w, code, errorResponse{Error: msg, Retryable: retryable})
}

// retryAfterSeconds rounds the expected request cost up to whole seconds:
// retrying sooner than one service time cannot help.
func (s *Server) retryAfterSeconds() int {
	d := s.costs.Expect(overload.StageRequest)
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// metricName flattens a component name ("synthrag/embed") into a metric
// suffix ("synthrag_embed") — the registry has no labels.
func metricName(comp string) string {
	return strings.NewReplacer("/", "_", "-", "_", ".", "_").Replace(comp)
}

// decodeCustomize decodes and validates a customize request body. It is the
// trust boundary for /v1/customize: arbitrary bytes in, either a normalized
// request out or an HTTP status in {413, 400, 422} with a safe message —
// never a panic, never a 500 for any input shape. The byte-cap and syntax
// layers (413 over the cap, 400 for bad JSON / unknown fields / trailing
// data) are the shared inputlimits.DecodeJSONRequest guard; well-formed JSON
// with invalid field values is 422. Design-name existence is checked by the
// caller (404), since it depends on server state rather than the bytes
// themselves.
func (s *Server) decodeCustomize(w http.ResponseWriter, r *http.Request) (customizeRequest, int, error) {
	var req customizeRequest
	if code, err := inputlimits.DecodeJSONRequest(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		return req, code, err
	}
	if len(req.Requirement) > s.cfg.MaxRequirementLen {
		return req, http.StatusUnprocessableEntity,
			fmt.Errorf("requirement length %d exceeds limit %d", len(req.Requirement), s.cfg.MaxRequirementLen)
	}
	if req.Requirement == "" {
		req.Requirement = chatls.DefaultRequirement
	}
	if req.Pipeline == "" {
		req.Pipeline = "chatls"
	}
	switch req.Pipeline {
	case "chatls", "gpt4o", "claude":
	default:
		return req, http.StatusUnprocessableEntity, fmt.Errorf("unknown pipeline %q", req.Pipeline)
	}
	if req.K < 0 {
		return req, http.StatusUnprocessableEntity, fmt.Errorf("k %d is negative", req.K)
	}
	if req.K == 0 {
		req.K = s.cfg.DefaultK
	}
	if req.K > s.cfg.MaxK {
		return req, http.StatusUnprocessableEntity, fmt.Errorf("k %d exceeds limit %d", req.K, s.cfg.MaxK)
	}
	return req, http.StatusOK, nil
}

func (s *Server) handleCustomize(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	s.requests.Inc()

	req, code, err := s.decodeCustomize(w, r)
	if err != nil {
		switch code {
		case http.StatusRequestEntityTooLarge:
			s.bodyTooLarge.Inc()
		case http.StatusBadRequest:
			s.badJSON.Inc()
		case http.StatusUnprocessableEntity:
			s.invalidReq.Inc()
		}
		s.writeError(w, code, err.Error())
		return
	}
	d, ok := s.byName[req.Design]
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Sprintf("unknown design %q", req.Design))
		return
	}

	// Brownout: under sustained shedding the server serves a weaker answer
	// rather than more errors — Pass@k clamps to one sample. Clamping
	// before the singleflight key is computed lets browned-out requests
	// coalesce with each other.
	brownedOut := false
	if req.K > 1 && s.brownout.Active() {
		req.K = 1
		brownedOut = true
	}

	// Identical concurrent requests share one execution (and one worker
	// slot); the key is every input that shapes the result.
	key := fmt.Sprintf("%s\x00%s\x00%s\x00%d", req.Design, req.Requirement, req.Pipeline, req.K)
	v, _, err := s.flight.Do(key, func() (any, error) {
		// Cost-based shed: when the learned end-to-end cost cannot fit the
		// per-request deadline, admitting the work could only produce a 504
		// after burning a worker — reject now. Every 8th would-be shed is
		// deterministically admitted anyway so the cost model keeps
		// re-learning and a recovered backend un-sheds itself.
		if s.costs.Expect(overload.StageRequest) > s.cfg.RequestTimeout {
			if s.shedProbe.Add(1)%8 != 0 {
				s.costSheds.Add(1)
				return nil, errShed
			}
		}
		// Adaptive admission: the limiter bounds admitted-but-unfinished
		// requests, contracting under latency congestion and re-expanding
		// when completions come back on time.
		if !s.limiter.Acquire() {
			return nil, errOverloaded
		}
		start := time.Now()
		var out *customizeResponse
		var werr error
		done := make(chan struct{})
		if !s.pool.TrySubmit(func() {
			defer close(done)
			out, werr = s.runCustomize(d, req)
		}) {
			// The pool is the hard backstop behind the adaptive limiter
			// (reachable only when the ceiling is configured above
			// workers+queue). The slot never ran: no latency observation.
			s.limiter.Cancel()
			return nil, errOverloaded
		}
		<-done
		// Queue wait plus service time is the congestion signal AIMD needs.
		s.limiter.Release(time.Since(start))
		return out, werr
	})
	shed := err != nil && (errors.Is(err, errOverloaded) || errors.Is(err, errShed))
	s.brownout.Note(shed)
	if err != nil {
		switch {
		case errors.Is(err, errOverloaded):
			s.rejected.Inc()
			s.writeError(w, http.StatusTooManyRequests, "server overloaded, retry later")
		case errors.Is(err, errShed):
			s.rejected.Inc()
			s.writeError(w, http.StatusServiceUnavailable,
				"server overloaded: expected request cost exceeds the deadline, retry later")
		case errors.Is(err, overload.ErrBudget):
			// The request was rejected inside the pipeline before any
			// synthesis started; no partial work was done.
			s.rejected.Inc()
			s.writeError(w, http.StatusServiceUnavailable, err.Error())
		case errors.Is(err, resilience.ErrTimeout):
			s.writeError(w, http.StatusGatewayTimeout, "request deadline exceeded")
		default:
			s.writeError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	resp := v.(*customizeResponse)
	if brownedOut {
		// Copy before annotating: the singleflight value is shared with
		// coalesced followers and must stay immutable.
		cp := *resp
		cp.Degraded = append(append([]string(nil), resp.Degraded...), "brownout")
		resp = &cp
	}
	writeJSON(w, http.StatusOK, resp)
}

// runCustomize executes one deduplicated customization on a pool worker.
// The deadline derives from context.Background(), not the client's request
// context, so a client disconnect does not abort work a coalesced follower
// may still be waiting on — and so graceful shutdown drains rather than
// cancels.
func (s *Server) runCustomize(d *designs.Design, req customizeRequest) (resp *customizeResponse, err error) {
	if h := s.hookBeforeWork; h != nil {
		h()
	}
	if h := s.cfg.BeforeWork; h != nil {
		h()
	}
	start := time.Now()
	defer func() {
		elapsed := time.Since(start)
		s.latency.ObserveDuration(elapsed)
		// Successes and deadline overruns both teach the end-to-end cost
		// model (a timeout is exactly the cost signal shedding needs);
		// other failures say nothing about cost.
		if err == nil || errors.Is(err, resilience.ErrTimeout) {
			s.costs.Observe(overload.StageRequest, elapsed)
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.RequestTimeout)
	defer cancel()

	task, baseQoR, err := s.baselineTask(ctx, d)
	if err != nil {
		s.countErr(err)
		return nil, err
	}
	// Shallow copy: the cached task must keep its pristine requirement.
	t := *task
	t.Requirement = req.Requirement

	res, err := chatls.EvalTaskOpts(ctx, s.newPipeline(req.Pipeline), &t, baseQoR, req.K, s.cfg.Lib,
		chatls.EvalOptions{Workers: 1, Checkpoints: s.ckpt, Results: s.resultStore(), Costs: s.costs})
	if err != nil {
		s.countErr(err)
		return nil, err
	}

	out := &customizeResponse{
		Design:     res.Design,
		Pipeline:   req.Pipeline,
		K:          res.K,
		Baseline:   res.Baseline,
		Best:       res.Best,
		BestSample: res.BestSample,
		Valid:      res.Valid,
		Improved:   res.Improved(),
		Samples:    make([]sampleJSON, 0, len(res.Samples)),
	}
	if res.BestSample >= 0 {
		out.Script = res.Samples[res.BestSample].Script
	}
	for _, smp := range res.Samples {
		out.Samples = append(out.Samples, sampleJSON{QoR: smp.QoR, Error: smp.Err, Degraded: smp.Degraded})
	}
	return out, nil
}

func (s *Server) countErr(err error) {
	if errors.Is(err, resilience.ErrTimeout) {
		s.timeouts.Inc()
	} else {
		s.errs.Inc()
	}
}

// baselineTask returns the cached baseline synthesis for a design, running
// it on a miss. The cache key includes the clock period because the
// baseline QoR is period-dependent.
func (s *Server) baselineTask(ctx context.Context, d *designs.Design) (*chatls.Task, synth.QoR, error) {
	key := fmt.Sprintf("%s@%.6g", d.Name, d.Period)
	if e, ok := s.tasks.Get(key); ok {
		return e.task, e.qor, nil
	}
	task, qor, err := chatls.NewTaskWith(ctx, d, s.cfg.Lib, s.ckpt)
	if err != nil {
		return nil, synth.QoR{}, err
	}
	s.tasks.Add(key, taskEntry{task: task, qor: qor})
	return task, qor, nil
}

// newPipeline builds a per-request pipeline instance over the shared
// immutable model and database.
func (s *Server) newPipeline(name string) chatls.Pipeline {
	switch name {
	case "gpt4o":
		return &chatls.RawPipeline{Model: llm.New(llm.GPT4o, s.cfg.Seed)}
	case "claude":
		return &chatls.RawPipeline{Model: llm.New(llm.Claude35, s.cfg.Seed)}
	default:
		p := chatls.NewChatLS(s.cfg.Model, s.cfg.DB)
		// Breakers and the cost model are shared across every request, so
		// stage health and learned costs persist beyond one pipeline
		// instance; the injector is the chaos/test fault layer.
		p.Breakers = s.breakers
		p.Costs = s.costs
		p.Inject = s.cfg.PipelineInject
		return p
	}
}

// designJSON is one entry of GET /v1/designs.
type designJSON struct {
	Name     string   `json:"name"`
	Top      string   `json:"top"`
	Category string   `json:"category"`
	Period   float64  `json:"period_ns"`
	Traits   []string `json:"traits,omitempty"`
}

func (s *Server) handleDesigns(w http.ResponseWriter, _ *http.Request) {
	out := make([]designJSON, 0, len(s.cfg.Designs))
	for _, d := range s.cfg.Designs {
		out = append(out, designJSON{Name: d.Name, Top: d.Top, Category: d.Category, Period: d.Period, Traits: d.Traits})
	}
	writeJSON(w, http.StatusOK, out)
}

// budgetJSON mirrors inputlimits.Budget in the health report.
type budgetJSON struct {
	MaxBytes      int `json:"max_bytes,omitempty"`
	MaxTokens     int `json:"max_tokens,omitempty"`
	MaxDepth      int `json:"max_depth,omitempty"`
	MaxStatements int `json:"max_statements,omitempty"`
	MaxSteps      int `json:"max_steps,omitempty"`
}

func toBudgetJSON(b inputlimits.Budget) budgetJSON {
	return budgetJSON{
		MaxBytes:      b.MaxBytes,
		MaxTokens:     b.MaxTokens,
		MaxDepth:      b.MaxDepth,
		MaxStatements: b.MaxStatements,
		MaxSteps:      b.MaxSteps,
	}
}

// overloadJSON is the overload-protection state in the health report: the
// adaptive limit and its bounds, shed counts, brownout, and every circuit
// breaker's position — what an operator (or the chaos harness) checks to
// see whether the server has recovered after an incident.
type overloadJSON struct {
	Limit         int               `json:"limit"`
	Floor         int               `json:"floor"`
	Ceiling       int               `json:"ceiling"`
	Inflight      int               `json:"inflight"`
	ShedTotal     int64             `json:"shed_total"`
	Brownout      bool              `json:"brownout"`
	Breakers      map[string]string `json:"breakers"`
	RequestCostNS int64             `json:"expected_request_cost_ns,omitempty"`
}

// healthzResponse echoes the effective request and parser limits so an
// operator can confirm what the running daemon actually enforces — the
// values reflect any cmd/chatlsd flag overrides, not just the defaults.
type healthzResponse struct {
	Status            string                `json:"status"`
	MaxBodyBytes      int64                 `json:"max_body_bytes"`
	MaxRequirementLen int                   `json:"max_requirement_len"`
	MaxK              int                   `json:"max_k"`
	BatchEnabled      bool                  `json:"batch_enabled"`
	BatchWindowNS     int64                 `json:"batch_window_ns"`
	BatchMax          int                   `json:"batch_max"`
	HNSWEf            int                   `json:"hnsw_ef,omitempty"`
	IndexBackends     map[string]string     `json:"index_backends"`
	ParserBudgets     map[string]budgetJSON `json:"parser_budgets"`
	Overload          overloadJSON          `json:"overload"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.closed.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	breakers := make(map[string]string, len(s.breakers)+1)
	for comp, br := range s.breakers {
		breakers[comp] = br.State().String()
	}
	if rc := s.cfg.RemoteCache; rc != nil {
		breakers[resilience.CompRemoteCache] = rc.BreakerState().String()
	}
	limits := inputlimits.Defaults()
	writeJSON(w, http.StatusOK, healthzResponse{
		Status:            "ok",
		MaxBodyBytes:      s.cfg.MaxBodyBytes,
		MaxRequirementLen: s.cfg.MaxRequirementLen,
		MaxK:              s.cfg.MaxK,
		BatchEnabled:      !s.cfg.DisableBatching,
		BatchWindowNS:     s.cfg.BatchWindow.Nanoseconds(),
		BatchMax:          s.cfg.BatchMax,
		HNSWEf:            s.cfg.HNSWEf,
		IndexBackends:     s.cfg.DB.IndexBackends(),
		ParserBudgets: map[string]budgetJSON{
			inputlimits.SurfaceVerilog: toBudgetJSON(limits.Verilog),
			inputlimits.SurfaceLiberty: toBudgetJSON(limits.Liberty),
			inputlimits.SurfaceScript:  toBudgetJSON(limits.Script),
			inputlimits.SurfaceCypher:  toBudgetJSON(limits.Cypher),
		},
		Overload: overloadJSON{
			Limit:         s.limiter.Limit(),
			Floor:         s.limiter.Floor(),
			Ceiling:       s.limiter.Ceiling(),
			Inflight:      s.limiter.Inflight(),
			ShedTotal:     s.limiter.Sheds() + s.costSheds.Load(),
			Brownout:      s.brownout.Active(),
			Breakers:      breakers,
			RequestCostNS: s.costs.Expect(overload.StageRequest).Nanoseconds(),
		},
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WriteText(w)
}
