package gnn

import (
	"fmt"
	"sync"

	"repro/internal/tensor"
)

// Batched inference: a batch of graphs is fused into one disjoint-union
// graph — features stacked, adjacency offset, modules offset — and pushed
// through a single forward pass, so N concurrent embedding requests share
// one set of stacked tensor.MatMul invocations instead of issuing N small
// ones. Every kernel on the path (aggregate, MatMul, AddRowVector, ReLU,
// module pooling) computes each output row from its own input rows with the
// serial loop order, so the batched module and global embeddings are
// byte-identical to running Embed/EmbedGlobal per graph.
//
// The merged graph is transient — it lives only for the duration of one
// stacked forward pass — so its feature matrix, offset adjacency lists, and
// module map all come from a pooled mergeScratch. The adjacency rows are
// carved out of one per-batch int slab instead of one allocation per node,
// which is what kept the batched path within a small factor of the serial
// path's allocation count.

// mergeScratch holds the reusable buffers behind one in-flight merge.
type mergeScratch struct {
	modCounts []int
	stacked   *tensor.Matrix
	adjSlab   []int
	adj       [][]int
	moduleOf  []int
	merged    Graph
}

var mergePool = sync.Pool{New: func() any { return new(mergeScratch) }}

func (sc *mergeScratch) release() { mergePool.Put(sc) }

// merge builds the disjoint union of the graphs into the scratch: node
// blocks are concatenated in order with adjacency and module indexes offset.
// Returns the merged graph and each graph's module count for splitting
// results; both alias the scratch and die with its release.
func (sc *mergeScratch) merge(gs []*Graph) (*Graph, []int) {
	nodes, modules, edges := 0, 0, 0
	sc.modCounts = sc.modCounts[:0]
	cols := gs[0].Feats.Cols
	for _, g := range gs {
		if g.Feats.Cols != cols {
			panic(fmt.Sprintf("stackrows width mismatch: %d vs %d", g.Feats.Cols, cols))
		}
		nodes += g.Feats.Rows
		sc.modCounts = append(sc.modCounts, g.NumModule)
		modules += g.NumModule
		for _, nbrs := range g.Adj {
			edges += len(nbrs)
		}
	}
	sc.stacked = tensor.Ensure(sc.stacked, nodes, cols)
	if cap(sc.adjSlab) < edges {
		sc.adjSlab = make([]int, edges)
	} else {
		sc.adjSlab = sc.adjSlab[:edges]
	}
	sc.adj = sc.adj[:0]
	sc.moduleOf = sc.moduleOf[:0]

	featOff, edgeOff, nodeOff, modOff := 0, 0, 0, 0
	for _, g := range gs {
		copy(sc.stacked.Data[featOff:], g.Feats.Data)
		featOff += len(g.Feats.Data)
		for _, nbrs := range g.Adj {
			row := sc.adjSlab[edgeOff : edgeOff+len(nbrs)]
			for j, u := range nbrs {
				row[j] = u + nodeOff
			}
			edgeOff += len(nbrs)
			sc.adj = append(sc.adj, row)
		}
		for _, m := range g.ModuleOf {
			sc.moduleOf = append(sc.moduleOf, m+modOff)
		}
		nodeOff += g.Feats.Rows
		modOff += g.NumModule
	}
	sc.merged = Graph{
		Feats:     sc.stacked,
		Adj:       sc.adj,
		ModuleOf:  sc.moduleOf,
		NumModule: modules,
	}
	return &sc.merged, sc.modCounts
}

// forwardModulesBatch runs one stacked forward pass and returns per-graph
// views of the module-embedding matrix. The views alias the returned state;
// the caller must copy them out, then release both the state and scratch.
func (m *Model) forwardModulesBatch(gs []*Graph) (*forwardState, []*tensor.Matrix, *mergeScratch) {
	sc := mergePool.Get().(*mergeScratch)
	merged, modCounts := sc.merge(gs)
	st := m.forward(merged)
	return st, tensor.SplitRows(st.modules, modCounts), sc
}

// EmbedBatch returns each graph's module embeddings (one matrix per graph)
// from a single stacked forward pass — byte-identical to calling Embed on
// each graph.
func (m *Model) EmbedBatch(gs []*Graph) []*tensor.Matrix {
	if len(gs) == 0 {
		return nil
	}
	if len(gs) == 1 {
		return []*tensor.Matrix{m.Embed(gs[0])}
	}
	st, views, sc := m.forwardModulesBatch(gs)
	out := make([]*tensor.Matrix, len(views))
	for i, v := range views {
		out[i] = v.Clone()
	}
	st.release()
	sc.release()
	return out
}

// EmbedGlobalBatch returns each graph's design-level embedding from a
// single stacked forward pass — byte-identical to calling EmbedGlobal on
// each graph.
func (m *Model) EmbedGlobalBatch(gs []*Graph) [][]float64 {
	if len(gs) == 0 {
		return nil
	}
	if len(gs) == 1 {
		return [][]float64{m.EmbedGlobal(gs[0])}
	}
	st, views, sc := m.forwardModulesBatch(gs)
	out := make([][]float64, len(views))
	for i, mods := range views {
		out[i] = meanRows(mods)
	}
	st.release()
	sc.release()
	return out
}
