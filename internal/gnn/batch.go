package gnn

import "repro/internal/tensor"

// Batched inference: a batch of graphs is fused into one disjoint-union
// graph — features stacked, adjacency offset, modules offset — and pushed
// through a single forward pass, so N concurrent embedding requests share
// one set of stacked tensor.MatMul invocations instead of issuing N small
// ones. Every kernel on the path (aggregate, MatMul, AddRowVector, ReLU,
// module pooling) computes each output row from its own input rows with the
// serial loop order, so the batched module and global embeddings are
// byte-identical to running Embed/EmbedGlobal per graph.

// mergeGraphs builds the disjoint union of the graphs: node blocks are
// concatenated in order with adjacency and module indexes offset. Returns
// the merged graph and each graph's module count for splitting results.
func mergeGraphs(gs []*Graph) (*Graph, []int) {
	nodes, modules := 0, 0
	modCounts := make([]int, len(gs))
	for i, g := range gs {
		nodes += g.Feats.Rows
		modCounts[i] = g.NumModule
		modules += g.NumModule
	}
	feats := make([]*tensor.Matrix, len(gs))
	for i, g := range gs {
		feats[i] = g.Feats
	}
	merged := &Graph{
		Feats:     tensor.StackRows(feats),
		Adj:       make([][]int, 0, nodes),
		ModuleOf:  make([]int, 0, nodes),
		NumModule: modules,
	}
	nodeOff, modOff := 0, 0
	for _, g := range gs {
		for _, nbrs := range g.Adj {
			row := make([]int, len(nbrs))
			for j, u := range nbrs {
				row[j] = u + nodeOff
			}
			merged.Adj = append(merged.Adj, row)
		}
		for _, m := range g.ModuleOf {
			merged.ModuleOf = append(merged.ModuleOf, m+modOff)
		}
		nodeOff += g.Feats.Rows
		modOff += g.NumModule
	}
	return merged, modCounts
}

// forwardModulesBatch runs one stacked forward pass and returns per-graph
// views of the module-embedding matrix.
func (m *Model) forwardModulesBatch(gs []*Graph) []*tensor.Matrix {
	merged, modCounts := mergeGraphs(gs)
	st := m.forward(merged)
	return tensor.SplitRows(st.modules, modCounts)
}

// EmbedBatch returns each graph's module embeddings (one matrix per graph)
// from a single stacked forward pass — byte-identical to calling Embed on
// each graph.
func (m *Model) EmbedBatch(gs []*Graph) []*tensor.Matrix {
	if len(gs) == 0 {
		return nil
	}
	if len(gs) == 1 {
		return []*tensor.Matrix{m.Embed(gs[0])}
	}
	views := m.forwardModulesBatch(gs)
	out := make([]*tensor.Matrix, len(views))
	for i, v := range views {
		out[i] = v.Clone()
	}
	return out
}

// EmbedGlobalBatch returns each graph's design-level embedding from a
// single stacked forward pass — byte-identical to calling EmbedGlobal on
// each graph.
func (m *Model) EmbedGlobalBatch(gs []*Graph) [][]float64 {
	if len(gs) == 0 {
		return nil
	}
	if len(gs) == 1 {
		return [][]float64{m.EmbedGlobal(gs[0])}
	}
	views := m.forwardModulesBatch(gs)
	out := make([][]float64, len(views))
	for i, mods := range views {
		rows := make([][]float64, mods.Rows)
		for r := range rows {
			rows[r] = mods.Row(r)
		}
		out[i] = tensor.Mean(rows)
	}
	return out
}
