package gnn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Sample is one training graph with a category label per module.
type Sample struct {
	G      *Graph
	Labels []string
}

// LossKind selects the metric-learning objective (paper §IV-A cites both
// contrastive and multi-similarity losses).
type LossKind int

const (
	LossContrastive LossKind = iota
	LossMultiSimilarity
)

// TrainConfig configures the trainer.
type TrainConfig struct {
	Loss   LossKind
	LR     float64
	Margin float64 // contrastive margin (L2 distance)
	// Multi-similarity hyperparameters.
	Alpha, Beta, Lambda float64
}

// DefaultTrainConfig returns sensible defaults.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		Loss:   LossContrastive,
		LR:     0.01,
		Margin: 1.0,
		Alpha:  2.0,
		Beta:   10.0,
		Lambda: 0.5,
	}
}

// Trainer performs metric-learning training with Adam.
type Trainer struct {
	M    *Model
	Cfg  TrainConfig
	step int
	// Adam first/second moment estimates, matching Grads layout.
	m1, m2 *Grads
}

// NewTrainer creates a trainer for a model.
func NewTrainer(m *Model, cfg TrainConfig) *Trainer {
	return &Trainer{M: m, Cfg: cfg, m1: newGrads(m.cfg), m2: newGrads(m.cfg)}
}

// Step runs one optimization step over the batch and returns the loss.
func (t *Trainer) Step(batch []Sample) (float64, error) {
	if len(batch) == 0 {
		return 0, fmt.Errorf("empty batch")
	}
	grads := newGrads(t.M.cfg)
	// Forward every graph, collecting module embeddings and labels.
	type entry struct {
		sample int
		module int
	}
	var states []*forwardState
	var embs [][]float64
	var labels []string
	var origin []entry
	for si, s := range batch {
		if len(s.Labels) != s.G.NumModule {
			return 0, fmt.Errorf("sample %d: %d labels for %d modules", si, len(s.Labels), s.G.NumModule)
		}
		st := t.M.forward(s.G)
		states = append(states, st)
		for mi := 0; mi < s.G.NumModule; mi++ {
			embs = append(embs, st.modules.Row(mi))
			labels = append(labels, s.Labels[mi])
			origin = append(origin, entry{si, mi})
		}
	}

	var loss float64
	dEmb := make([][]float64, len(embs))
	for i := range dEmb {
		dEmb[i] = make([]float64, t.M.cfg.OutDim)
	}
	switch t.Cfg.Loss {
	case LossContrastive:
		loss = contrastiveLoss(embs, labels, t.Cfg.Margin, dEmb)
	case LossMultiSimilarity:
		loss = multiSimilarityLoss(embs, labels, t.Cfg, dEmb)
	default:
		return 0, fmt.Errorf("unknown loss kind %d", t.Cfg.Loss)
	}

	// Scatter embedding gradients back per graph and backprop.
	perSample := make([]*tensor.Matrix, len(batch))
	for i, s := range batch {
		perSample[i] = tensor.NewMatrix(s.G.NumModule, t.M.cfg.OutDim)
	}
	for i, e := range origin {
		copy(perSample[e.sample].Row(e.module), dEmb[i])
	}
	for i := range batch {
		t.M.backward(states[i], perSample[i], grads)
	}
	// embs rows alias the states' module matrices; the losses above consumed
	// them, so the states can go back to the pool now.
	for _, st := range states {
		st.release()
	}
	t.applyAdam(grads)
	return loss, nil
}

// Train runs full-batch epochs and returns the loss curve.
func (t *Trainer) Train(samples []Sample, epochs int) ([]float64, error) {
	curve := make([]float64, 0, epochs)
	for e := 0; e < epochs; e++ {
		l, err := t.Step(samples)
		if err != nil {
			return curve, err
		}
		curve = append(curve, l)
	}
	return curve, nil
}

// contrastiveLoss computes pairwise contrastive loss and fills dEmb.
// Positive pairs are pulled (d^2), negatives pushed to margin.
func contrastiveLoss(embs [][]float64, labels []string, margin float64, dEmb [][]float64) float64 {
	var loss float64
	pairs := 0
	for i := 0; i < len(embs); i++ {
		for j := i + 1; j < len(embs); j++ {
			pairs++
			diff := make([]float64, len(embs[i]))
			for k := range diff {
				diff[k] = embs[i][k] - embs[j][k]
			}
			d := tensor.Norm(diff)
			if labels[i] == labels[j] {
				loss += d * d
				tensor.Axpy(dEmb[i], 2, diff)
				tensor.Axpy(dEmb[j], -2, diff)
			} else if d < margin {
				gap := margin - d
				loss += gap * gap
				if d > 1e-9 {
					scale := -2 * gap / d
					tensor.Axpy(dEmb[i], scale, diff)
					tensor.Axpy(dEmb[j], -scale, diff)
				}
			}
		}
	}
	if pairs == 0 {
		return 0
	}
	inv := 1.0 / float64(pairs)
	for i := range dEmb {
		tensor.Scale(dEmb[i], inv)
	}
	return loss * inv
}

// multiSimilarityLoss implements the MS loss of Wang et al. on cosine
// similarities of L2-normalized embeddings, with normalization backprop.
func multiSimilarityLoss(embs [][]float64, labels []string, cfg TrainConfig, dEmb [][]float64) float64 {
	n := len(embs)
	norms := make([]float64, n)
	unit := make([][]float64, n)
	for i := range embs {
		norms[i] = tensor.Norm(embs[i])
		unit[i] = tensor.Normalize(embs[i])
	}
	sim := func(i, j int) float64 { return tensor.Dot(unit[i], unit[j]) }

	var loss float64
	// dSim accumulates dL/dS_ij in a sparse-ish map keyed by pair.
	type pair struct{ i, j int }
	dSim := make(map[pair]float64)
	for i := 0; i < n; i++ {
		var posSum, negSum float64
		var posPairs, negPairs []int
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			s := sim(i, j)
			if labels[i] == labels[j] {
				posSum += math.Exp(-cfg.Alpha * (s - cfg.Lambda))
				posPairs = append(posPairs, j)
			} else {
				negSum += math.Exp(cfg.Beta * (s - cfg.Lambda))
				negPairs = append(negPairs, j)
			}
		}
		if len(posPairs) > 0 {
			loss += math.Log(1+posSum) / cfg.Alpha
			for _, j := range posPairs {
				e := math.Exp(-cfg.Alpha * (sim(i, j) - cfg.Lambda))
				dSim[pair{i, j}] += -e / (1 + posSum)
			}
		}
		if len(negPairs) > 0 {
			loss += math.Log(1+negSum) / cfg.Beta
			for _, j := range negPairs {
				e := math.Exp(cfg.Beta * (sim(i, j) - cfg.Lambda))
				dSim[pair{i, j}] += e / (1 + negSum)
			}
		}
	}
	if n == 0 {
		return 0
	}
	// Backprop S_ij = unit_i . unit_j through normalization:
	// dS/dx_i = (unit_j - S*unit_i)/||x_i||.
	for p, g := range dSim {
		i, j := p.i, p.j
		if norms[i] > 1e-9 {
			s := sim(i, j)
			for k := range dEmb[i] {
				dEmb[i][k] += g * (unit[j][k] - s*unit[i][k]) / norms[i]
			}
		}
		if norms[j] > 1e-9 {
			s := sim(i, j)
			for k := range dEmb[j] {
				dEmb[j][k] += g * (unit[i][k] - s*unit[j][k]) / norms[j]
			}
		}
	}
	inv := 1.0 / float64(n)
	for i := range dEmb {
		tensor.Scale(dEmb[i], inv)
	}
	return loss * inv
}

// applyAdam updates model parameters from accumulated gradients.
func (t *Trainer) applyAdam(g *Grads) {
	t.step++
	const beta1, beta2, eps = 0.9, 0.999, 1e-8
	bc1 := 1 - math.Pow(beta1, float64(t.step))
	bc2 := 1 - math.Pow(beta2, float64(t.step))
	update := func(w, grad, m1, m2 []float64) {
		for i := range w {
			m1[i] = beta1*m1[i] + (1-beta1)*grad[i]
			m2[i] = beta2*m2[i] + (1-beta2)*grad[i]*grad[i]
			mh := m1[i] / bc1
			vh := m2[i] / bc2
			w[i] -= t.Cfg.LR * mh / (math.Sqrt(vh) + eps)
		}
	}
	update(t.M.WSelf1.Data, g.WSelf1.Data, t.m1.WSelf1.Data, t.m2.WSelf1.Data)
	update(t.M.WNb1.Data, g.WNb1.Data, t.m1.WNb1.Data, t.m2.WNb1.Data)
	update(t.M.B1, g.B1, t.m1.B1, t.m2.B1)
	update(t.M.WSelf2.Data, g.WSelf2.Data, t.m1.WSelf2.Data, t.m2.WSelf2.Data)
	update(t.M.WNb2.Data, g.WNb2.Data, t.m1.WNb2.Data, t.m2.WNb2.Data)
	update(t.M.B2, g.B2, t.m1.B2, t.m2.B2)
}
