package gnn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// makeGraph builds a synthetic graph of two modules: module 0 nodes carry
// feature pattern A (strong dim 0), module 1 pattern B (strong dim 1), with
// intra-module ring edges.
func makeGraph(rng *rand.Rand, perModule int, patterns [][]float64) *Graph {
	nm := len(patterns)
	n := perModule * nm
	f := len(patterns[0])
	feats := tensor.NewMatrix(n, f)
	adj := make([][]int, n)
	moduleOf := make([]int, n)
	for m := 0; m < nm; m++ {
		base := m * perModule
		for i := 0; i < perModule; i++ {
			v := base + i
			moduleOf[v] = m
			for j := 0; j < f; j++ {
				feats.Set(v, j, patterns[m][j]+0.1*rng.NormFloat64())
			}
			adj[v] = append(adj[v], base+(i+1)%perModule)
			adj[v] = append(adj[v], base+(i+perModule-1)%perModule)
		}
	}
	return &Graph{Feats: feats, Adj: adj, ModuleOf: moduleOf, NumModule: nm}
}

var testPatterns = [][]float64{
	{2, 0, 0, 0.5},
	{0, 2, 0, 0.5},
	{0, 0, 2, 0.5},
}

func TestGraphValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := makeGraph(rng, 5, testPatterns)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Graph{Feats: tensor.NewMatrix(2, 3), Adj: [][]int{{5}, {}}, ModuleOf: []int{0, 0}, NumModule: 1}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range neighbour should fail validation")
	}
	bad2 := &Graph{Feats: tensor.NewMatrix(2, 3), Adj: [][]int{{}, {}}, ModuleOf: []int{0, 3}, NumModule: 1}
	if err := bad2.Validate(); err == nil {
		t.Error("out-of-range module should fail validation")
	}
}

func TestForwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := makeGraph(rng, 6, testPatterns)
	m := New(Config{InDim: 4, Hidden: 8, OutDim: 5, Agg: AggMean, Seed: 7})
	emb := m.Embed(g)
	if emb.Rows != 3 || emb.Cols != 5 {
		t.Fatalf("module embeddings shape %dx%d, want 3x5", emb.Rows, emb.Cols)
	}
	nodes := m.EmbedNodes(g)
	if nodes.Rows != 18 || nodes.Cols != 5 {
		t.Fatalf("node embeddings shape %dx%d, want 18x5", nodes.Rows, nodes.Cols)
	}
	global := m.EmbedGlobal(g)
	if len(global) != 5 {
		t.Fatalf("global embedding length %d, want 5", len(global))
	}
	// Global pooling = mean of module embeddings.
	for j := 0; j < 5; j++ {
		want := (emb.At(0, j) + emb.At(1, j) + emb.At(2, j)) / 3
		if math.Abs(global[j]-want) > 1e-9 {
			t.Errorf("global[%d] = %g, want %g", j, global[j], want)
		}
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := makeGraph(rng, 4, testPatterns)
	a := New(Config{InDim: 4, Hidden: 6, OutDim: 4, Agg: AggMean, Seed: 42}).Embed(g)
	b := New(Config{InDim: 4, Hidden: 6, OutDim: 4, Agg: AggMean, Seed: 42}).Embed(g)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("same seed must give identical embeddings")
		}
	}
	c := New(Config{InDim: 4, Hidden: 6, OutDim: 4, Agg: AggMean, Seed: 43}).Embed(g)
	same := true
	for i := range a.Data {
		if a.Data[i] != c.Data[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds should give different embeddings")
	}
}

func TestAggregators(t *testing.T) {
	// Two nodes, node 0 neighbours {1}, node 1 isolated.
	feats := tensor.NewMatrix(2, 2)
	feats.Set(1, 0, 3)
	feats.Set(1, 1, -1)
	adj := [][]int{{1}, {}}
	mean := aggregate(feats, adj, AggMean)
	if mean.At(0, 0) != 3 || mean.At(0, 1) != -1 {
		t.Errorf("mean agg wrong: %v", mean.Row(0))
	}
	if mean.At(1, 0) != 0 {
		t.Error("isolated node should aggregate to zero")
	}
	sum := aggregate(feats, adj, AggSum)
	if sum.At(0, 0) != 3 {
		t.Errorf("sum agg wrong: %v", sum.Row(0))
	}
	maxa := aggregate(feats, adj, AggMax)
	if maxa.At(0, 0) != 3 || maxa.At(0, 1) != -1 {
		t.Errorf("max agg wrong: %v", maxa.Row(0))
	}
}

// clusterQuality measures mean intra-category cosine minus inter-category
// cosine over module embeddings from several graphs.
func clusterQuality(m *Model, samples []Sample) float64 {
	var embs [][]float64
	var labels []string
	for _, s := range samples {
		e := m.Embed(s.G)
		for i := 0; i < e.Rows; i++ {
			embs = append(embs, append([]float64(nil), e.Row(i)...))
			labels = append(labels, s.Labels[i])
		}
	}
	var intra, inter float64
	var ni, nx int
	for i := range embs {
		for j := i + 1; j < len(embs); j++ {
			c := tensor.Cosine(embs[i], embs[j])
			if labels[i] == labels[j] {
				intra += c
				ni++
			} else {
				inter += c
				nx++
			}
		}
	}
	return intra/float64(ni) - inter/float64(nx)
}

func trainSamples(seed int64, n int) []Sample {
	rng := rand.New(rand.NewSource(seed))
	labels := []string{"arith", "memory", "control"}
	var out []Sample
	for i := 0; i < n; i++ {
		g := makeGraph(rng, 4+rng.Intn(4), testPatterns)
		out = append(out, Sample{G: g, Labels: labels})
	}
	return out
}

func TestMetricLearningImprovesClustering(t *testing.T) {
	for _, loss := range []LossKind{LossContrastive, LossMultiSimilarity} {
		m := New(Config{InDim: 4, Hidden: 8, OutDim: 6, Agg: AggMean, Seed: 11})
		train := trainSamples(100, 6)
		test := trainSamples(200, 4)
		before := clusterQuality(m, test)
		cfg := DefaultTrainConfig()
		cfg.Loss = loss
		tr := NewTrainer(m, cfg)
		curve, err := tr.Train(train, 60)
		if err != nil {
			t.Fatalf("loss %d: %v", loss, err)
		}
		if curve[len(curve)-1] >= curve[0] {
			t.Errorf("loss %d: did not decrease: %g -> %g", loss, curve[0], curve[len(curve)-1])
		}
		after := clusterQuality(m, test)
		if after <= before {
			t.Errorf("loss %d: clustering quality did not improve: %g -> %g", loss, before, after)
		}
	}
}

func TestTrainerErrors(t *testing.T) {
	m := New(Config{InDim: 4, Hidden: 4, OutDim: 4, Agg: AggMean, Seed: 1})
	tr := NewTrainer(m, DefaultTrainConfig())
	if _, err := tr.Step(nil); err == nil {
		t.Error("empty batch should error")
	}
	g := makeGraph(rand.New(rand.NewSource(5)), 3, testPatterns)
	if _, err := tr.Step([]Sample{{G: g, Labels: []string{"one"}}}); err == nil {
		t.Error("label count mismatch should error")
	}
}

// Gradient check: numeric vs analytic gradient for contrastive loss through
// the whole network on a tiny graph.
func TestGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := makeGraph(rng, 3, testPatterns[:2])
	labels := []string{"a", "b"}
	m := New(Config{InDim: 4, Hidden: 5, OutDim: 3, Agg: AggMean, Seed: 21})

	lossOf := func() float64 {
		st := m.forward(g)
		embs := [][]float64{st.modules.Row(0), st.modules.Row(1)}
		d := [][]float64{make([]float64, 3), make([]float64, 3)}
		return contrastiveLoss(embs, labels, 1.0, d)
	}
	// Analytic gradient.
	grads := newGrads(m.cfg)
	st := m.forward(g)
	embs := [][]float64{st.modules.Row(0), st.modules.Row(1)}
	dEmb := [][]float64{make([]float64, 3), make([]float64, 3)}
	contrastiveLoss(embs, labels, 1.0, dEmb)
	dm := tensor.NewMatrix(2, 3)
	copy(dm.Row(0), dEmb[0])
	copy(dm.Row(1), dEmb[1])
	m.backward(st, dm, grads)

	// Numeric check on a few entries of WSelf1 and WNb2.
	check := func(w []float64, gw []float64, name string) {
		const eps = 1e-5
		for _, idx := range []int{0, 3, 7} {
			if idx >= len(w) {
				continue
			}
			orig := w[idx]
			w[idx] = orig + eps
			lp := lossOf()
			w[idx] = orig - eps
			lm := lossOf()
			w[idx] = orig
			numeric := (lp - lm) / (2 * eps)
			if math.Abs(numeric-gw[idx]) > 1e-4*(1+math.Abs(numeric)) {
				t.Errorf("%s[%d]: numeric %g vs analytic %g", name, idx, numeric, gw[idx])
			}
		}
	}
	check(m.WSelf1.Data, grads.WSelf1.Data, "WSelf1")
	check(m.WNb1.Data, grads.WNb1.Data, "WNb1")
	check(m.WSelf2.Data, grads.WSelf2.Data, "WSelf2")
	check(m.WNb2.Data, grads.WNb2.Data, "WNb2")
	check(m.B1, grads.B1, "B1")
	check(m.B2, grads.B2, "B2")
}
