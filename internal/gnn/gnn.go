// Package gnn implements the hierarchical GraphSAGE network CircuitMentor
// uses to embed circuit modules (paper §IV-A, Eq. 3): two SAGE layers with a
// mean/max/sum neighbourhood aggregator, per-module mean pooling into module
// embeddings, and global mean pooling into a design embedding. Training uses
// metric learning (contrastive or multi-similarity loss) so same-category
// modules cluster in the embedding space, with gradients computed by full
// backpropagation through the pooling and aggregation operators.
package gnn

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/tensor"
)

// Graph is one circuit graph: node features, adjacency (undirected
// neighbour lists), and the module each node belongs to.
type Graph struct {
	Feats     *tensor.Matrix // N x F input features
	Adj       [][]int        // neighbour lists, N entries
	ModuleOf  []int          // node -> module index, N entries
	NumModule int
}

// Validate checks internal consistency.
func (g *Graph) Validate() error {
	n := g.Feats.Rows
	if len(g.Adj) != n || len(g.ModuleOf) != n {
		return fmt.Errorf("graph size mismatch: feats %d, adj %d, moduleOf %d", n, len(g.Adj), len(g.ModuleOf))
	}
	for i, nbrs := range g.Adj {
		for _, u := range nbrs {
			if u < 0 || u >= n {
				return fmt.Errorf("node %d has out-of-range neighbour %d", i, u)
			}
		}
	}
	for i, m := range g.ModuleOf {
		if m < 0 || m >= g.NumModule {
			return fmt.Errorf("node %d has out-of-range module %d", i, m)
		}
	}
	return nil
}

// Aggregator selects the neighbourhood aggregation function.
type Aggregator int

const (
	AggMean Aggregator = iota
	AggMax
	AggSum
)

// Config describes the model shape.
type Config struct {
	InDim  int
	Hidden int
	OutDim int
	Agg    Aggregator
	Seed   int64
}

// Model is a two-layer GraphSAGE with hierarchical pooling.
type Model struct {
	cfg Config
	// Layer parameters: self and neighbour weights plus bias.
	WSelf1, WNb1 *tensor.Matrix
	B1           []float64
	WSelf2, WNb2 *tensor.Matrix
	B2           []float64
}

// New creates a model with seeded Xavier initialization.
func New(cfg Config) *Model {
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &Model{
		cfg:    cfg,
		WSelf1: tensor.NewRandom(cfg.InDim, cfg.Hidden, rng),
		WNb1:   tensor.NewRandom(cfg.InDim, cfg.Hidden, rng),
		B1:     make([]float64, cfg.Hidden),
		WSelf2: tensor.NewRandom(cfg.Hidden, cfg.OutDim, rng),
		WNb2:   tensor.NewRandom(cfg.Hidden, cfg.OutDim, rng),
		B2:     make([]float64, cfg.OutDim),
	}
}

// Config returns the model configuration.
func (m *Model) Config() Config { return m.cfg }

// aggParallelWork is the gather size (neighbour rows times feature width)
// above which aggregate fans out across cores. Each output row is gathered
// entirely by one goroutine in neighbour-list order, so the parallel path is
// bit-identical to the serial one.
const aggParallelWork = 1 << 17

// aggregateInto applies the neighbourhood aggregator: out[v] = agg(h[u] for
// u in N(v)), writing into out, a zeroed h.Rows×h.Cols matrix. Isolated
// nodes aggregate to zero. Large graphs aggregate with output rows sharded
// across cores; h is only read.
func aggregateInto(out, h *tensor.Matrix, adj [][]int, agg Aggregator) {
	edges := 0
	for _, nbrs := range adj {
		edges += len(nbrs)
	}
	if edges*h.Cols >= aggParallelWork && runtime.GOMAXPROCS(0) > 1 {
		tensor.ParallelRows(len(adj), func(lo, hi int) {
			aggregateRows(out, h, adj[lo:hi], lo, agg)
		})
	} else {
		aggregateRows(out, h, adj, 0, agg)
	}
}

// aggregate is aggregateInto with a freshly allocated output.
func aggregate(h *tensor.Matrix, adj [][]int, agg Aggregator) *tensor.Matrix {
	out := tensor.NewMatrix(h.Rows, h.Cols)
	aggregateInto(out, h, adj, agg)
	return out
}

func aggregateRows(out, h *tensor.Matrix, adj [][]int, base int, agg Aggregator) {
	for dv, nbrs := range adj {
		v := base + dv
		if len(nbrs) == 0 {
			continue
		}
		orow := out.Row(v)
		switch agg {
		case AggMean, AggSum:
			for _, u := range nbrs {
				urow := h.Row(u)
				for j := range orow {
					orow[j] += urow[j]
				}
			}
			if agg == AggMean {
				inv := 1.0 / float64(len(nbrs))
				for j := range orow {
					orow[j] *= inv
				}
			}
		case AggMax:
			first := true
			for _, u := range nbrs {
				urow := h.Row(u)
				for j := range orow {
					if first || urow[j] > orow[j] {
						orow[j] = urow[j]
					}
				}
				first = false
			}
		}
	}
}

// aggregateT applies the transpose of the mean/sum aggregation operator,
// needed for backpropagation: grad_in[u] += grad_out[v]/|N(v)| for each v
// with u in N(v).
func aggregateT(g *tensor.Matrix, adj [][]int, agg Aggregator) *tensor.Matrix {
	out := tensor.NewMatrix(g.Rows, g.Cols)
	for v, nbrs := range adj {
		if len(nbrs) == 0 {
			continue
		}
		w := 1.0
		if agg == AggMean {
			w = 1.0 / float64(len(nbrs))
		}
		grow := g.Row(v)
		for _, u := range nbrs {
			orow := out.Row(u)
			for j := range orow {
				orow[j] += w * grow[j]
			}
		}
	}
	return out
}

// forwardState retains intermediates for backprop. States come from a
// process-wide pool: forward draws one and release returns it with its
// matrices attached, so steady-state inference reuses the same buffers
// instead of re-allocating every intermediate per call. A state must not be
// touched after release.
type forwardState struct {
	g       *Graph
	h0      *tensor.Matrix
	agg0    *tensor.Matrix
	h1      *tensor.Matrix
	mask1   []bool
	agg1    *tensor.Matrix
	h2      *tensor.Matrix // node embeddings
	modules *tensor.Matrix // module embeddings (mean pooled)
	modSize []int
}

var statePool = sync.Pool{New: func() any { return new(forwardState) }}

// release returns the state's buffers to the pool. The graph references are
// dropped; the matrices stay attached for capacity reuse.
func (st *forwardState) release() {
	st.g, st.h0 = nil, nil
	statePool.Put(st)
}

// forward computes node, module, and global embeddings. The caller owns the
// returned state and must release it (after backward on the training path).
func (m *Model) forward(g *Graph) *forwardState {
	st := statePool.Get().(*forwardState)
	st.g, st.h0 = g, g.Feats
	st.agg0 = tensor.EnsureZero(st.agg0, g.Feats.Rows, g.Feats.Cols)
	aggregateInto(st.agg0, st.h0, g.Adj, m.cfg.Agg)
	z1 := tensor.EnsureZero(st.h1, st.h0.Rows, m.cfg.Hidden)
	tensor.MatMulInto(st.h0, m.WSelf1, z1)
	nb1 := tensor.GetMatrix(st.agg0.Rows, m.cfg.Hidden)
	tensor.MatMulInto(st.agg0, m.WNb1, nb1)
	tensor.AddInPlace(z1, nb1)
	tensor.PutMatrix(nb1)
	tensor.AddRowVector(z1, m.B1)
	st.mask1 = tensor.ReLUMaskInto(z1, st.mask1)
	st.h1 = z1

	st.agg1 = tensor.EnsureZero(st.agg1, st.h1.Rows, st.h1.Cols)
	aggregateInto(st.agg1, st.h1, g.Adj, m.cfg.Agg)
	z2 := tensor.EnsureZero(st.h2, st.h1.Rows, m.cfg.OutDim)
	tensor.MatMulInto(st.h1, m.WSelf2, z2)
	nb2 := tensor.GetMatrix(st.agg1.Rows, m.cfg.OutDim)
	tensor.MatMulInto(st.agg1, m.WNb2, nb2)
	tensor.AddInPlace(z2, nb2)
	tensor.PutMatrix(nb2)
	tensor.AddRowVector(z2, m.B2)
	st.h2 = z2

	// Hierarchical pooling: module embedding = mean of its node embeddings.
	st.modules = tensor.EnsureZero(st.modules, g.NumModule, m.cfg.OutDim)
	if cap(st.modSize) < g.NumModule {
		st.modSize = make([]int, g.NumModule)
	} else {
		st.modSize = st.modSize[:g.NumModule]
		for i := range st.modSize {
			st.modSize[i] = 0
		}
	}
	for v := 0; v < g.Feats.Rows; v++ {
		mi := g.ModuleOf[v]
		st.modSize[mi]++
		mrow := st.modules.Row(mi)
		vrow := st.h2.Row(v)
		for j := range mrow {
			mrow[j] += vrow[j]
		}
	}
	for mi := 0; mi < g.NumModule; mi++ {
		if st.modSize[mi] > 0 {
			inv := 1.0 / float64(st.modSize[mi])
			mrow := st.modules.Row(mi)
			for j := range mrow {
				mrow[j] *= inv
			}
		}
	}
	return st
}

// Embed returns the module embeddings (one row per module) for a graph.
func (m *Model) Embed(g *Graph) *tensor.Matrix {
	st := m.forward(g)
	out := st.modules.Clone()
	st.release()
	return out
}

// EmbedGlobal returns the design-level embedding: the mean of all module
// embeddings (paper: global pooling so flattened or single-module designs
// still embed meaningfully).
func (m *Model) EmbedGlobal(g *Graph) []float64 {
	st := m.forward(g)
	out := meanRows(st.modules)
	st.release()
	return out
}

// EmbedNodes returns per-node embeddings.
func (m *Model) EmbedNodes(g *Graph) *tensor.Matrix {
	st := m.forward(g)
	out := st.h2.Clone()
	st.release()
	return out
}

// meanRows returns the column-wise mean of m's rows (nil for zero rows). It
// accumulates row by row and divides like tensor.Mean over the row views, so
// the result is bit-identical without materializing the [][]float64.
func meanRows(m *tensor.Matrix) []float64 {
	if m.Rows == 0 {
		return nil
	}
	out := make([]float64, m.Cols)
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for i := range row {
			out[i] += row[i]
		}
	}
	for i := range out {
		out[i] /= float64(m.Rows)
	}
	return out
}

// backward propagates module-embedding gradients into parameter gradients.
func (m *Model) backward(st *forwardState, dModules *tensor.Matrix, grads *Grads) {
	g := st.g
	// Unpool: node gradient = module gradient / module size.
	dH2 := tensor.NewMatrix(st.h2.Rows, st.h2.Cols)
	for v := 0; v < st.h2.Rows; v++ {
		mi := g.ModuleOf[v]
		if st.modSize[mi] == 0 {
			continue
		}
		inv := 1.0 / float64(st.modSize[mi])
		drow := dModules.Row(mi)
		vrow := dH2.Row(v)
		for j := range vrow {
			vrow[j] = inv * drow[j]
		}
	}
	// Layer 2.
	tensor.AddInPlace(grads.WSelf2, tensor.MatMulATB(st.h1, dH2))
	tensor.AddInPlace(grads.WNb2, tensor.MatMulATB(st.agg1, dH2))
	addColSums(grads.B2, dH2)
	dH1 := tensor.MatMulABT(dH2, m.WSelf2)
	dAgg1 := tensor.MatMulABT(dH2, m.WNb2)
	tensor.AddInPlace(dH1, aggregateT(dAgg1, g.Adj, m.cfg.Agg))
	tensor.MaskInPlace(dH1, st.mask1)
	// Layer 1.
	tensor.AddInPlace(grads.WSelf1, tensor.MatMulATB(st.h0, dH1))
	tensor.AddInPlace(grads.WNb1, tensor.MatMulATB(st.agg0, dH1))
	addColSums(grads.B1, dH1)
}

func addColSums(dst []float64, m *tensor.Matrix) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range dst {
			dst[j] += row[j]
		}
	}
}

// Grads accumulates parameter gradients.
type Grads struct {
	WSelf1, WNb1 *tensor.Matrix
	B1           []float64
	WSelf2, WNb2 *tensor.Matrix
	B2           []float64
}

func newGrads(cfg Config) *Grads {
	return &Grads{
		WSelf1: tensor.NewMatrix(cfg.InDim, cfg.Hidden),
		WNb1:   tensor.NewMatrix(cfg.InDim, cfg.Hidden),
		B1:     make([]float64, cfg.Hidden),
		WSelf2: tensor.NewMatrix(cfg.Hidden, cfg.OutDim),
		WNb2:   tensor.NewMatrix(cfg.Hidden, cfg.OutDim),
		B2:     make([]float64, cfg.OutDim),
	}
}
