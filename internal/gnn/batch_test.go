package gnn

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// batchFixtures builds a mixed batch of graphs: different sizes, module
// counts (including a max-aggregator stress with isolated nodes via an
// empty-adjacency graph), so the disjoint union exercises every offset.
func batchFixtures(t *testing.T) []*Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	gs := []*Graph{
		makeGraph(rng, 4, testPatterns),
		makeGraph(rng, 7, testPatterns[:2]),
		makeGraph(rng, 2, testPatterns),
		makeGraph(rng, 9, testPatterns[:1]),
	}
	// An isolated-node graph: aggregation must stay zero for its nodes.
	iso := &Graph{
		Feats:     tensor.NewMatrix(3, len(testPatterns[0])),
		Adj:       [][]int{nil, nil, nil},
		ModuleOf:  []int{0, 0, 1},
		NumModule: 2,
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < iso.Feats.Cols; j++ {
			iso.Feats.Set(i, j, rng.NormFloat64())
		}
	}
	gs = append(gs, iso)
	for _, g := range gs {
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	return gs
}

func bitIdentical(a, b *tensor.Matrix) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return false
		}
	}
	return true
}

// TestEmbedBatchByteIdentical is the batching correctness contract: a
// stacked forward pass must reproduce the serial per-graph embeddings to
// the last bit, for every aggregator.
func TestEmbedBatchByteIdentical(t *testing.T) {
	gs := batchFixtures(t)
	for _, agg := range []Aggregator{AggMean, AggMax, AggSum} {
		m := New(Config{InDim: len(testPatterns[0]), Hidden: 8, OutDim: 5, Agg: agg, Seed: 3})
		batched := m.EmbedBatch(gs)
		if len(batched) != len(gs) {
			t.Fatalf("agg %d: EmbedBatch returned %d results for %d graphs", agg, len(batched), len(gs))
		}
		for i, g := range gs {
			serial := m.Embed(g)
			if !bitIdentical(serial, batched[i]) {
				t.Errorf("agg %d graph %d: batched module embeddings differ from serial", agg, i)
			}
		}
		globBatched := m.EmbedGlobalBatch(gs)
		for i, g := range gs {
			serial := m.EmbedGlobal(g)
			for j := range serial {
				if serial[j] != globBatched[i][j] {
					t.Errorf("agg %d graph %d: global[%d] batched %v != serial %v",
						agg, i, j, globBatched[i][j], serial[j])
					break
				}
			}
		}
	}
}

func TestEmbedBatchEdgeCases(t *testing.T) {
	m := New(Config{InDim: 4, Hidden: 6, OutDim: 3, Agg: AggMean, Seed: 1})
	if got := m.EmbedBatch(nil); got != nil {
		t.Errorf("EmbedBatch(nil) = %v, want nil", got)
	}
	if got := m.EmbedGlobalBatch(nil); got != nil {
		t.Errorf("EmbedGlobalBatch(nil) = %v, want nil", got)
	}
	rng := rand.New(rand.NewSource(5))
	g := makeGraph(rng, 3, testPatterns)
	one := m.EmbedBatch([]*Graph{g})
	if len(one) != 1 || !bitIdentical(one[0], m.Embed(g)) {
		t.Error("single-graph batch must equal serial Embed")
	}
}

// TestMergeGraphsShape checks the disjoint-union bookkeeping directly.
func TestMergeGraphsShape(t *testing.T) {
	gs := batchFixtures(t)
	sc := mergePool.Get().(*mergeScratch)
	defer sc.release()
	merged, counts := sc.merge(gs)
	if err := merged.Validate(); err != nil {
		t.Fatalf("merged graph invalid: %v", err)
	}
	wantNodes, wantMods := 0, 0
	for i, g := range gs {
		wantNodes += g.Feats.Rows
		wantMods += g.NumModule
		if counts[i] != g.NumModule {
			t.Errorf("counts[%d] = %d, want %d", i, counts[i], g.NumModule)
		}
	}
	if merged.Feats.Rows != wantNodes || merged.NumModule != wantMods {
		t.Errorf("merged %d nodes / %d modules, want %d / %d",
			merged.Feats.Rows, merged.NumModule, wantNodes, wantMods)
	}
}
