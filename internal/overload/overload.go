// Package overload implements adaptive overload protection for the serving
// fleet: an AIMD concurrency limiter driven by observed completion latency
// against a moving p50 baseline, a per-stage EWMA cost model that lets
// callers shed work whose expected cost exceeds the remaining deadline
// budget, and a brownout controller that degrades service (fewer Pass@k
// samples, cache-first answers) under sustained admission pressure.
//
// Everything in this package is deterministic given the sequence of
// observations fed to it: the limiter and brownout controller never read a
// clock, and the cost model only stores durations its callers measured.
// That keeps unit tests and the seeded chaos harness reproducible.
package overload

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Stage names for the cost model. Pipeline-internal stages reuse the
// resilience component names (mentor, rag_embed, ...); these cover the
// coarser units the server and eval loop account for.
const (
	// StageRequest is a whole /v1/customize request: baseline task plus
	// every Pass@k sample. The server sheds on this before admission.
	StageRequest = "request"
	// StageBaseline is the baseline synthesis run (NewTaskWith) that
	// anchors a Pass@k evaluation or a sweep row.
	StageBaseline = "baseline"
	// StageSample is one Pass@k sample: customize + synthesis + compare.
	StageSample = "sample"
	// StageSynth is a single synthesis tool run (script execution + STA).
	StageSynth = "synth"
)

// ErrBudget is wrapped by every BudgetError; errors.Is(err, ErrBudget)
// identifies deadline-budget rejections across package boundaries.
var ErrBudget = errors.New("remaining deadline cannot cover expected work")

// BudgetError reports that a context's remaining deadline budget cannot
// cover the expected cost of the stage about to run.
type BudgetError struct {
	Stage string
	Need  time.Duration // expected cost of the stage (0 = unknown, deadline already past)
	Have  time.Duration // remaining budget at check time (may be negative)
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("overload: %s stage needs ~%v but deadline budget has %v", e.Stage, e.Need, e.Have)
}

func (e *BudgetError) Unwrap() error { return ErrBudget }

// CheckBudget rejects early when ctx's remaining deadline cannot cover
// need. A context without a deadline always passes; an unknown cost
// (need == 0) only fails once the deadline has already expired. Callers
// invoke this before claiming leases or starting synthesis so a
// nearly-expired request does no partial work.
func CheckBudget(ctx context.Context, stage string, need time.Duration) error {
	deadline, ok := ctx.Deadline()
	if !ok {
		return nil
	}
	have := time.Until(deadline)
	if have <= 0 || (need > 0 && have < need) {
		return &BudgetError{Stage: stage, Need: need, Have: have}
	}
	return nil
}

// CostModel tracks a per-stage EWMA of observed durations. It is the
// "expected work" half of cost-based load shedding: admission paths ask
// Expect(stage) and compare against the remaining deadline. A nil model is
// valid and reports zero cost everywhere (shedding disabled until primed).
type CostModel struct {
	mu    sync.Mutex
	alpha float64
	ewma  map[string]float64 // stage -> nanoseconds
}

// DefaultCostAlpha is the EWMA smoothing factor when none is given: new
// observations move the estimate 20% of the way to the sample, enough to
// track workload drift without thrashing on one slow request.
const DefaultCostAlpha = 0.2

// NewCostModel returns a cost model with the given smoothing factor in
// (0, 1]; alpha <= 0 selects DefaultCostAlpha.
func NewCostModel(alpha float64) *CostModel {
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultCostAlpha
	}
	return &CostModel{alpha: alpha, ewma: make(map[string]float64)}
}

// Observe folds one completed-stage duration into the estimate.
func (m *CostModel) Observe(stage string, d time.Duration) {
	if m == nil || d < 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	cur, ok := m.ewma[stage]
	if !ok {
		m.ewma[stage] = float64(d)
		return
	}
	m.ewma[stage] = cur + m.alpha*(float64(d)-cur)
}

// Expect returns the current cost estimate for stage, or 0 when the stage
// has never been observed (callers treat 0 as "unknown, admit").
func (m *CostModel) Expect(stage string) time.Duration {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return time.Duration(m.ewma[stage])
}

// ExpectSum returns the summed estimate across stages; unknown stages
// contribute zero.
func (m *CostModel) ExpectSum(stages ...string) time.Duration {
	var sum time.Duration
	for _, s := range stages {
		sum += m.Expect(s)
	}
	return sum
}

// Snapshot returns a copy of every stage estimate, for healthz/debugging.
func (m *CostModel) Snapshot() map[string]time.Duration {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]time.Duration, len(m.ewma))
	for k, v := range m.ewma {
		out[k] = time.Duration(v)
	}
	return out
}

// LimiterConfig bounds and tunes the adaptive concurrency limiter.
type LimiterConfig struct {
	// Floor/Ceiling bound the adaptive limit. Floor defaults to 1;
	// Ceiling defaults to max(Floor, 16).
	Floor   int
	Ceiling int
	// Initial is the starting limit; 0 means start at Ceiling (the
	// pre-adaptive fixed cap, so a fresh server admits exactly what the
	// static configuration used to).
	Initial int
	// Window is the number of recent latencies kept for the moving p50
	// baseline (default 64).
	Window int
	// Threshold is the congestion trigger: a completion slower than
	// Threshold x baseline-p50 counts as congested (default 2.0).
	Threshold float64
	// Decrease is the multiplicative backoff applied to the limit on
	// congestion (default 0.9).
	Decrease float64
	// BaselineInflate bounds how fast the p50 baseline may drift upward
	// per window epoch, so a sustained latency spike cannot quickly
	// redefine "normal" (default 1.25 = +25% per half-window).
	BaselineInflate float64
}

func (c *LimiterConfig) fill() {
	if c.Floor <= 0 {
		c.Floor = 1
	}
	if c.Ceiling < c.Floor {
		if c.Ceiling <= 0 {
			c.Ceiling = 16
		}
		if c.Ceiling < c.Floor {
			c.Ceiling = c.Floor
		}
	}
	if c.Initial <= 0 {
		c.Initial = c.Ceiling
	}
	if c.Initial < c.Floor {
		c.Initial = c.Floor
	}
	if c.Initial > c.Ceiling {
		c.Initial = c.Ceiling
	}
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.Threshold <= 1 {
		c.Threshold = 2.0
	}
	if c.Decrease <= 0 || c.Decrease >= 1 {
		c.Decrease = 0.9
	}
	if c.BaselineInflate < 1 {
		c.BaselineInflate = 1.25
	}
}

// Limiter is an AIMD adaptive concurrency limiter. Completions feed
// observed latencies into a moving window; the median of the best recent
// window epoch is the baseline. A completion slower than Threshold x
// baseline multiplicatively shrinks the limit (rate-limited to one
// decrease per `limit` completions, the AIMD analogue of once-per-RTT);
// an on-time completion additively grows it by 1/limit. The limit always
// stays within [Floor, Ceiling].
//
// The limiter is clock-free: callers measure latencies however they like
// and pass them to Release, which makes behavior a pure function of the
// observation sequence.
type Limiter struct {
	mu       sync.Mutex
	cfg      LimiterConfig
	limit    float64
	inflight int

	ring     []time.Duration
	ringIdx  int
	ringLen  int
	obs      int64 // total observations, drives epoch boundaries
	baseline time.Duration
	cooldown int64 // observation count before the next decrease is allowed

	sheds     int64
	decreases int64
	increases int64
}

// NewLimiter builds a limiter; zero-valued fields of cfg get defaults.
func NewLimiter(cfg LimiterConfig) *Limiter {
	cfg.fill()
	return &Limiter{
		cfg:   cfg,
		limit: float64(cfg.Initial),
		ring:  make([]time.Duration, cfg.Window),
	}
}

// Acquire claims an in-flight slot, returning false (a shed) when the
// current adaptive limit is reached.
func (l *Limiter) Acquire() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.inflight >= int(l.limit) {
		l.sheds++
		return false
	}
	l.inflight++
	return true
}

// Cancel releases a slot claimed by Acquire without contributing a
// latency observation (the work never ran).
func (l *Limiter) Cancel() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.inflight > 0 {
		l.inflight--
	}
}

// Release returns a slot and folds the observed completion latency into
// the AIMD feedback loop.
func (l *Limiter) Release(latency time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.inflight > 0 {
		l.inflight--
	}
	if latency < 0 {
		latency = 0
	}

	l.ring[l.ringIdx] = latency
	l.ringIdx = (l.ringIdx + 1) % len(l.ring)
	if l.ringLen < len(l.ring) {
		l.ringLen++
	}
	l.obs++

	// Re-anchor the baseline every half window: take the window median,
	// but never let the baseline climb more than BaselineInflate per
	// epoch — a sustained spike must not redefine "normal" before the
	// limiter has contracted.
	half := int64(len(l.ring) / 2)
	if half < 1 {
		half = 1
	}
	if l.obs%half == 0 && l.ringLen >= len(l.ring)/4 {
		med := l.median()
		switch {
		case l.baseline == 0:
			l.baseline = med
		case med < l.baseline:
			l.baseline = med
		default:
			inflated := time.Duration(float64(l.baseline) * l.cfg.BaselineInflate)
			if med < inflated {
				l.baseline = med
			} else {
				l.baseline = inflated
			}
		}
		if l.baseline < time.Microsecond {
			l.baseline = time.Microsecond
		}
	}

	if l.baseline == 0 {
		return // not enough history yet
	}
	congested := float64(latency) > l.cfg.Threshold*float64(l.baseline)
	if congested {
		if l.obs >= l.cooldown {
			l.limit *= l.cfg.Decrease
			if l.limit < float64(l.cfg.Floor) {
				l.limit = float64(l.cfg.Floor)
			}
			l.decreases++
			// One multiplicative decrease per `limit` completions: the
			// slow completions already in flight belong to the same
			// congestion event and must not each shrink the limit.
			l.cooldown = l.obs + int64(l.limit)
		}
		return
	}
	if l.limit < float64(l.cfg.Ceiling) {
		l.limit += 1 / l.limit
		if l.limit > float64(l.cfg.Ceiling) {
			l.limit = float64(l.cfg.Ceiling)
		}
		l.increases++
	}
}

// median of the filled portion of the ring. Caller holds l.mu.
func (l *Limiter) median() time.Duration {
	buf := make([]time.Duration, l.ringLen)
	copy(buf, l.ring[:l.ringLen])
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	return buf[l.ringLen/2]
}

// Limit returns the current adaptive limit (floored int of the internal
// fractional limit, never below Floor).
func (l *Limiter) Limit() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := int(l.limit)
	if n < l.cfg.Floor {
		n = l.cfg.Floor
	}
	return n
}

// Inflight returns the number of currently held slots.
func (l *Limiter) Inflight() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inflight
}

// Floor and Ceiling expose the configured bounds (for healthz).
func (l *Limiter) Floor() int   { return l.cfg.Floor }
func (l *Limiter) Ceiling() int { return l.cfg.Ceiling }

// Sheds returns the number of Acquire calls rejected so far.
func (l *Limiter) Sheds() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sheds
}

// Baseline returns the current p50 latency baseline (0 until primed).
func (l *Limiter) Baseline() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.baseline
}

// BrownoutConfig tunes the sustained-pressure detector.
type BrownoutConfig struct {
	// Window is the number of recent admission outcomes tracked
	// (default 64).
	Window int
	// EnterFrac activates brownout when the shed fraction over a full
	// window reaches it (default 0.5).
	EnterFrac float64
	// ExitFrac deactivates brownout once the shed fraction falls to it
	// or below (default 0.125). Enter > Exit gives hysteresis so the
	// mode does not flap at the boundary.
	ExitFrac float64
}

func (c *BrownoutConfig) fill() {
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.EnterFrac <= 0 || c.EnterFrac > 1 {
		c.EnterFrac = 0.5
	}
	if c.ExitFrac < 0 || c.ExitFrac >= c.EnterFrac {
		c.ExitFrac = c.EnterFrac / 4
	}
}

// Brownout tracks the recent shed fraction over a sliding window of
// admission outcomes and exposes a hysteresis-latched "browned out" flag.
// While active the server degrades: Pass@k clamps to one sample and
// responses carry an explicit Degraded marker. Clock-free: pressure is a
// function of the outcome sequence alone. A nil Brownout is valid and
// never active.
type Brownout struct {
	mu      sync.Mutex
	cfg     BrownoutConfig
	ring    []bool // true = shed
	idx     int
	n       int
	sheds   int
	active  bool
	entries int64
}

// NewBrownout builds a brownout detector; zero cfg fields get defaults.
func NewBrownout(cfg BrownoutConfig) *Brownout {
	cfg.fill()
	return &Brownout{cfg: cfg, ring: make([]bool, cfg.Window)}
}

// Note records one admission outcome (shed or admitted) and re-evaluates
// the brownout latch.
func (b *Brownout) Note(shed bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.n == len(b.ring) {
		if b.ring[b.idx] {
			b.sheds--
		}
	} else {
		b.n++
	}
	b.ring[b.idx] = shed
	if shed {
		b.sheds++
	}
	b.idx = (b.idx + 1) % len(b.ring)

	frac := float64(b.sheds) / float64(b.n)
	if !b.active {
		// Entering requires a full window of evidence; a couple of sheds
		// on a cold server must not brown it out.
		if b.n == len(b.ring) && frac >= b.cfg.EnterFrac {
			b.active = true
			b.entries++
		}
	} else if frac <= b.cfg.ExitFrac {
		b.active = false
	}
}

// Active reports whether the server is currently browned out.
func (b *Brownout) Active() bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.active
}

// Entries returns how many times brownout has been entered.
func (b *Brownout) Entries() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.entries
}
