package overload

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestLimiterStartsAtInitialAndBounds(t *testing.T) {
	l := NewLimiter(LimiterConfig{Floor: 2, Ceiling: 10})
	if got := l.Limit(); got != 10 {
		t.Fatalf("initial limit = %d, want ceiling 10", got)
	}
	l = NewLimiter(LimiterConfig{Floor: 2, Ceiling: 10, Initial: 5})
	if got := l.Limit(); got != 5 {
		t.Fatalf("initial limit = %d, want 5", got)
	}
	if l.Floor() != 2 || l.Ceiling() != 10 {
		t.Fatalf("bounds = %d/%d, want 2/10", l.Floor(), l.Ceiling())
	}
}

func TestLimiterAcquireShedsAtLimit(t *testing.T) {
	l := NewLimiter(LimiterConfig{Floor: 1, Ceiling: 2})
	if !l.Acquire() || !l.Acquire() {
		t.Fatal("first two acquires should succeed")
	}
	if l.Acquire() {
		t.Fatal("third acquire should shed at limit 2")
	}
	if l.Sheds() != 1 {
		t.Fatalf("sheds = %d, want 1", l.Sheds())
	}
	l.Cancel()
	if !l.Acquire() {
		t.Fatal("acquire after cancel should succeed")
	}
	if l.Inflight() != 2 {
		t.Fatalf("inflight = %d, want 2", l.Inflight())
	}
}

// feed simulates completions at the given latency.
func feed(l *Limiter, n int, d time.Duration) {
	for i := 0; i < n; i++ {
		if l.Acquire() {
			l.Release(d)
		} else {
			// keep feeding observations even when the limit is low
			l.Acquire()
			l.Release(d)
		}
	}
}

func TestLimiterContractsUnderLatencySpikeAndReexpands(t *testing.T) {
	l := NewLimiter(LimiterConfig{Floor: 2, Ceiling: 16, Window: 32})

	// Calm phase: establish a ~10ms baseline.
	for i := 0; i < 64; i++ {
		l.Acquire()
		l.Release(10 * time.Millisecond)
	}
	if b := l.Baseline(); b == 0 || b > 15*time.Millisecond {
		t.Fatalf("baseline = %v, want ~10ms", b)
	}
	if l.Limit() != 16 {
		t.Fatalf("limit after calm phase = %d, want ceiling 16", l.Limit())
	}

	// Spike: 20x the baseline. Limit must contract toward the floor.
	for i := 0; i < 200; i++ {
		l.Acquire()
		l.Release(200 * time.Millisecond)
	}
	contracted := l.Limit()
	if contracted >= 16 {
		t.Fatalf("limit did not contract under spike: %d", contracted)
	}
	if contracted < 2 {
		t.Fatalf("limit fell below floor: %d", contracted)
	}

	// Spike clears: fast completions re-expand the limit.
	for i := 0; i < 400; i++ {
		l.Acquire()
		l.Release(10 * time.Millisecond)
	}
	if got := l.Limit(); got <= contracted {
		t.Fatalf("limit did not re-expand after spike: %d (was %d)", got, contracted)
	}
}

func TestLimiterBaselineResistsSustainedSpike(t *testing.T) {
	l := NewLimiter(LimiterConfig{Floor: 1, Ceiling: 8, Window: 16})
	for i := 0; i < 32; i++ {
		l.Acquire()
		l.Release(time.Millisecond)
	}
	base := l.Baseline()
	// A long sustained spike may drift the baseline upward, but only by
	// BaselineInflate per half-window epoch — after 4 epochs it must
	// still be far below the spike latency.
	for i := 0; i < 32; i++ {
		l.Acquire()
		l.Release(100 * time.Millisecond)
	}
	if got := l.Baseline(); got > 4*base {
		t.Fatalf("baseline inflated too fast: %v -> %v", base, got)
	}
	if got := l.Limit(); got > 4 {
		t.Fatalf("limit = %d, want strong contraction under sustained spike", got)
	}
}

func TestLimiterDeterministic(t *testing.T) {
	run := func() []int {
		l := NewLimiter(LimiterConfig{Floor: 1, Ceiling: 12, Window: 16})
		var limits []int
		for i := 0; i < 100; i++ {
			d := time.Millisecond
			if i%7 == 0 {
				d = 50 * time.Millisecond
			}
			l.Acquire()
			l.Release(d)
			limits = append(limits, l.Limit())
		}
		return limits
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic limit at step %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestCostModelEWMA(t *testing.T) {
	m := NewCostModel(0.5)
	if m.Expect(StageSample) != 0 {
		t.Fatal("unknown stage should report 0")
	}
	m.Observe(StageSample, 100*time.Millisecond)
	if got := m.Expect(StageSample); got != 100*time.Millisecond {
		t.Fatalf("first observation should seed the estimate, got %v", got)
	}
	m.Observe(StageSample, 200*time.Millisecond)
	if got := m.Expect(StageSample); got != 150*time.Millisecond {
		t.Fatalf("ewma after 100,200 with alpha .5 = %v, want 150ms", got)
	}
	m.Observe(StageBaseline, time.Second)
	if got := m.ExpectSum(StageSample, StageBaseline); got != 1150*time.Millisecond {
		t.Fatalf("ExpectSum = %v, want 1.15s", got)
	}
	snap := m.Snapshot()
	if len(snap) != 2 || snap[StageBaseline] != time.Second {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestCostModelNilSafe(t *testing.T) {
	var m *CostModel
	m.Observe(StageSample, time.Second)
	if m.Expect(StageSample) != 0 || m.ExpectSum(StageSample) != 0 {
		t.Fatal("nil model must report zero cost")
	}
	if m.Snapshot() != nil {
		t.Fatal("nil model snapshot should be nil")
	}
}

func TestCheckBudget(t *testing.T) {
	if err := CheckBudget(context.Background(), StageSample, time.Hour); err != nil {
		t.Fatalf("no deadline should always pass: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := CheckBudget(ctx, StageSample, 0); err != nil {
		t.Fatalf("unknown cost with live deadline should pass: %v", err)
	}
	err := CheckBudget(ctx, StageSample, time.Hour)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Stage != StageSample || be.Need != time.Hour {
		t.Fatalf("budget error detail = %+v", err)
	}
	// Expired deadline fails even with unknown cost.
	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if err := CheckBudget(expired, StageSynth, 0); !errors.Is(err, ErrBudget) {
		t.Fatalf("expired deadline should fail: %v", err)
	}
}

func TestBrownoutHysteresis(t *testing.T) {
	b := NewBrownout(BrownoutConfig{Window: 8, EnterFrac: 0.5, ExitFrac: 0.25})
	// Sheds before the window fills must not activate.
	for i := 0; i < 7; i++ {
		b.Note(true)
	}
	if b.Active() {
		t.Fatal("brownout before a full window of evidence")
	}
	b.Note(true)
	if !b.Active() {
		t.Fatal("full window of sheds should activate brownout")
	}
	if b.Entries() != 1 {
		t.Fatalf("entries = %d, want 1", b.Entries())
	}
	// Recovery: admissions dilute the window toward ExitFrac.
	for i := 0; i < 5; i++ {
		b.Note(false)
	}
	if !b.Active() {
		t.Fatal("brownout should persist above exit fraction (hysteresis)")
	}
	b.Note(false)
	if b.Active() {
		t.Fatal("brownout should clear once shed fraction <= exit fraction")
	}
	// Re-entry counts again.
	for i := 0; i < 8; i++ {
		b.Note(true)
	}
	if !b.Active() || b.Entries() != 2 {
		t.Fatalf("re-entry: active=%v entries=%d", b.Active(), b.Entries())
	}
}

func TestBrownoutNilSafe(t *testing.T) {
	var b *Brownout
	b.Note(true)
	if b.Active() || b.Entries() != 0 {
		t.Fatal("nil brownout must be inert")
	}
}
