package graphdb

import (
	"testing"
)

// buildCircuitDB constructs the hierarchy shape CircuitMentor stores:
// Design -CONTAINS-> Modules, Module -INSTANTIATES-> Module.
func buildCircuitDB() *DB {
	db := New()
	design := db.CreateNode([]string{"Design"}, map[string]any{"name": "soc"})
	core := db.CreateNode([]string{"Module"}, map[string]any{
		"name": "core", "code": "module core(...); endmodule", "gates": int64(1200), "category": "processor",
	})
	alu := db.CreateNode([]string{"Module"}, map[string]any{
		"name": "alu", "code": "module alu(...); endmodule", "gates": int64(400), "category": "arithmetic",
	})
	fpu := db.CreateNode([]string{"Module"}, map[string]any{
		"name": "fpu", "code": "module fpu(...); endmodule", "gates": int64(900), "category": "arithmetic",
	})
	mem := db.CreateNode([]string{"Module"}, map[string]any{
		"name": "memctl", "code": "module memctl(...); endmodule", "gates": int64(300), "category": "memory",
	})
	db.CreateRel(design, core, "CONTAINS", nil)
	db.CreateRel(design, mem, "CONTAINS", nil)
	db.CreateRel(core, alu, "INSTANTIATES", nil)
	db.CreateRel(core, fpu, "INSTANTIATES", nil)
	return db
}

func TestCRUDAndFind(t *testing.T) {
	db := buildCircuitDB()
	if db.NodeCount() != 5 {
		t.Errorf("nodes = %d, want 5", db.NodeCount())
	}
	if db.RelCount() != 4 {
		t.Errorf("rels = %d, want 4", db.RelCount())
	}
	n := db.FindOne("Module", "name", "alu")
	if n == nil || n.Props["gates"] != int64(400) {
		t.Fatalf("FindOne(alu) = %+v", n)
	}
	arith := db.Find("Module", map[string]any{"category": "arithmetic"})
	if len(arith) != 2 {
		t.Errorf("arithmetic modules = %d, want 2", len(arith))
	}
	if db.FindOne("Module", "name", "nope") != nil {
		t.Error("FindOne should return nil for missing")
	}
}

func TestQueryByProperty(t *testing.T) {
	db := buildCircuitDB()
	res, err := db.Query(`MATCH (m:Module {name: 'alu'}) RETURN m.code, m.gates`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
	if res.Rows[0][0] != "module alu(...); endmodule" {
		t.Errorf("code = %v", res.Rows[0][0])
	}
	if res.Rows[0][1] != int64(400) {
		t.Errorf("gates = %v", res.Rows[0][1])
	}
	if res.Columns[0] != "m.code" {
		t.Errorf("column name = %q", res.Columns[0])
	}
}

func TestQueryWithParams(t *testing.T) {
	db := buildCircuitDB()
	res, err := db.Query(`MATCH (m:Module {name: $mod}) RETURN m.code`, map[string]any{"mod": "fpu"})
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Value(); v != "module fpu(...); endmodule" {
		t.Errorf("Value = %v", v)
	}
	if _, err := db.Query(`MATCH (m:Module {name: $missing}) RETURN m.code`, nil); err == nil {
		t.Error("missing parameter should error")
	}
}

func TestQueryRelationship(t *testing.T) {
	db := buildCircuitDB()
	res, err := db.Query(`MATCH (c:Module {name: 'core'})-[:INSTANTIATES]->(s:Module) RETURN s.name ORDER BY s.name`, nil)
	if err != nil {
		t.Fatal(err)
	}
	names := res.Strings("s.name")
	if len(names) != 2 || names[0] != "alu" || names[1] != "fpu" {
		t.Errorf("children = %v, want [alu fpu]", names)
	}
}

func TestQueryReverseRelationship(t *testing.T) {
	db := buildCircuitDB()
	res, err := db.Query(`MATCH (s:Module {name: 'alu'})<-[:INSTANTIATES]-(p:Module) RETURN p.name`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Value(); v != "core" {
		t.Errorf("parent = %v, want core", v)
	}
}

func TestQueryVariableLengthPath(t *testing.T) {
	db := buildCircuitDB()
	// Everything reachable from the design within 2 hops of any rel type.
	res, err := db.Query(`MATCH (d:Design)-[*1..2]->(m:Module) RETURN m.name ORDER BY m.name`, nil)
	if err != nil {
		t.Fatal(err)
	}
	names := res.Strings("m.name")
	want := []string{"alu", "core", "fpu", "memctl"}
	if len(names) != len(want) {
		t.Fatalf("reachable = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("reachable[%d] = %s, want %s", i, names[i], want[i])
		}
	}
	// One hop only: alu/fpu unreachable.
	res, err = db.Query(`MATCH (d:Design)-[*1..1]->(m:Module) RETURN m.name ORDER BY m.name`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if names := res.Strings("m.name"); len(names) != 2 {
		t.Errorf("1-hop reachable = %v, want 2 modules", names)
	}
}

func TestQueryWhere(t *testing.T) {
	db := buildCircuitDB()
	res, err := db.Query(`MATCH (m:Module) WHERE m.gates > 350 AND m.category = 'arithmetic' RETURN m.name ORDER BY m.gates DESC`, nil)
	if err != nil {
		t.Fatal(err)
	}
	names := res.Strings("m.name")
	if len(names) != 2 || names[0] != "fpu" || names[1] != "alu" {
		t.Errorf("filtered = %v, want [fpu alu]", names)
	}
	res, err = db.Query(`MATCH (m:Module) WHERE m.name CONTAINS 'ctl' OR m.gates >= 1200 RETURN m.name ORDER BY m.name`, nil)
	if err != nil {
		t.Fatal(err)
	}
	names = res.Strings("m.name")
	if len(names) != 2 || names[0] != "core" || names[1] != "memctl" {
		t.Errorf("filtered = %v, want [core memctl]", names)
	}
	res, err = db.Query(`MATCH (m:Module) WHERE NOT m.category = 'arithmetic' RETURN count(m)`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value() != int64(2) {
		t.Errorf("count = %v, want 2", res.Value())
	}
}

func TestQueryCountAndLimit(t *testing.T) {
	db := buildCircuitDB()
	res, err := db.Query(`MATCH (m:Module) RETURN count(m)`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value() != int64(4) {
		t.Errorf("count = %v, want 4", res.Value())
	}
	res, err = db.Query(`MATCH (m:Module) RETURN m.name ORDER BY m.gates DESC LIMIT 2`, nil)
	if err != nil {
		t.Fatal(err)
	}
	names := res.Strings("m.name")
	if len(names) != 2 || names[0] != "core" || names[1] != "fpu" {
		t.Errorf("top2 = %v, want [core fpu]", names)
	}
}

func TestQueryAlias(t *testing.T) {
	db := buildCircuitDB()
	res, err := db.Query(`MATCH (m:Module {name: 'alu'}) RETURN m.code AS source`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Columns[0] != "source" {
		t.Errorf("alias = %q, want source", res.Columns[0])
	}
}

func TestCreateQuery(t *testing.T) {
	db := New()
	_, err := db.Query(`CREATE (a:Lib {name: 'NAND2_X1', area: 0.798})-[:VARIANT_OF]->(b:Gate {fn: 'NAND2'})`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if db.NodeCount() != 2 || db.RelCount() != 1 {
		t.Fatalf("nodes %d rels %d, want 2/1", db.NodeCount(), db.RelCount())
	}
	n := db.FindOne("Lib", "name", "NAND2_X1")
	if n == nil || n.Props["area"] != 0.798 {
		t.Errorf("created node wrong: %+v", n)
	}
	res, err := db.Query(`MATCH (a:Lib)-[:VARIANT_OF]->(g:Gate) RETURN g.fn`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value() != "NAND2" {
		t.Errorf("fn = %v", res.Value())
	}
}

func TestQueryMultiPattern(t *testing.T) {
	db := buildCircuitDB()
	res, err := db.Query(`MATCH (d:Design)-[:CONTAINS]->(c:Module), (c)-[:INSTANTIATES]->(s:Module) RETURN s.name ORDER BY s.name`, nil)
	if err != nil {
		t.Fatal(err)
	}
	names := res.Strings("s.name")
	if len(names) != 2 || names[0] != "alu" {
		t.Errorf("multi-pattern = %v", names)
	}
}

func TestQueryErrors(t *testing.T) {
	db := buildCircuitDB()
	bad := []string{
		`SELECT * FROM modules`,
		`MATCH (m:Module)`,          // no RETURN
		`MATCH m:Module RETURN m`,   // missing parens
		`MATCH (m:Module) RETURN zz.name`, // unbound var
		`MATCH (m:Module) WHERE m.gates > 'abc' RETURN m.name`, // bad comparison
	}
	for _, q := range bad {
		if _, err := db.Query(q, nil); err == nil {
			t.Errorf("Query(%q) should fail", q)
		}
	}
}

func TestStartsWith(t *testing.T) {
	db := buildCircuitDB()
	res, err := db.Query(`MATCH (m:Module) WHERE m.name STARTS WITH 'mem' RETURN m.name`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value() != "memctl" {
		t.Errorf("starts-with = %v", res.Value())
	}
}

func TestRelFiltersAndAllNodes(t *testing.T) {
	db := buildCircuitDB()
	core := db.FindOne("Module", "name", "core")
	if n := len(core.Out("INSTANTIATES")); n != 2 {
		t.Errorf("core out INSTANTIATES = %d, want 2", n)
	}
	if n := len(core.Out("")); n != 2 {
		t.Errorf("core out all = %d, want 2", n)
	}
	if n := len(core.In("CONTAINS")); n != 1 {
		t.Errorf("core in CONTAINS = %d, want 1", n)
	}
	if n := len(core.In("INSTANTIATES")); n != 0 {
		t.Errorf("core in INSTANTIATES = %d, want 0", n)
	}
	all := db.AllNodes()
	if len(all) != db.NodeCount() {
		t.Error("AllNodes count mismatch")
	}
	for i := 1; i < len(all); i++ {
		if all[i].ID <= all[i-1].ID {
			t.Fatal("AllNodes not sorted by ID")
		}
	}
	if db.Node(all[0].ID) != all[0] {
		t.Error("Node lookup by ID broken")
	}
	if db.Node(99999) != nil {
		t.Error("unknown ID should be nil")
	}
	byLabel := db.ByLabel("Module")
	if len(byLabel) != 4 {
		t.Errorf("ByLabel(Module) = %d, want 4", len(byLabel))
	}
	if len(db.ByLabel("Nope")) != 0 {
		t.Error("unknown label should be empty")
	}
}

func TestNumericCoercion(t *testing.T) {
	db := New()
	db.CreateNode([]string{"N"}, map[string]any{"v": int64(5)})
	db.CreateNode([]string{"N"}, map[string]any{"v": 5.0})
	db.CreateNode([]string{"N"}, map[string]any{"v": int(5)})
	res, err := db.Query(`MATCH (n:N) WHERE n.v = 5 RETURN count(n)`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value() != int64(3) {
		t.Errorf("numeric coercion failed: count = %v", res.Value())
	}
}
