package graphdb

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/inputlimits"
	"repro/internal/resilience"
)

// TestQueryUnterminatedString is the regression test for the lexer overrun:
// an unterminated quoted string used to advance the cursor past the end of
// the source and slice out of bounds.
func TestQueryUnterminatedString(t *testing.T) {
	db := fuzzDB()
	for _, q := range []string{
		"MATCH 'abc",
		"MATCH \"abc",
		"MATCH (a {name: 'x) RETURN a",
		"'",
		"\"",
	} {
		if _, err := db.Query(q, nil); err == nil {
			t.Errorf("query %q: expected an error", q)
		}
	}
}

// TestQueryMalformedInputs: truncated, garbage, and pathological queries
// return errors without panicking or hanging.
func TestQueryMalformedInputs(t *testing.T) {
	db := fuzzDB()
	cases := []struct {
		name string
		q    string
	}{
		{"empty", ""},
		{"garbage", "\x00\x01\x02"},
		{"wrong verb", "DELETE (a) RETURN a"},
		{"match no return", "MATCH (a)"},
		{"unclosed node", "MATCH (a RETURN a"},
		{"unclosed rel", "MATCH (a)-[->(b) RETURN a"},
		{"bad limit", "MATCH (a) RETURN a LIMIT banana"},
		{"negative limit", "MATCH (a) RETURN a LIMIT -1"},
		{"order without by", "MATCH (a) RETURN a ORDER a"},
		{"starts without with", "MATCH (a) WHERE a.name STARTS 'g' RETURN a"},
		{"count outside return", "MATCH (a) WHERE count(a) > 1 RETURN a"},
		{"create varlen", "CREATE (a)-[:X*1..3]->(b)"},
		{"deep not chain", strings.Repeat("MATCH (a) WHERE ", 1) + strings.Repeat("NOT ", 100000) + "true RETURN a"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if _, err := db.Query(tc.q, nil); err == nil {
				t.Fatal("expected an error")
			}
		})
	}
}

// TestQueryBudgetTyped: each budget dimension trips a typed
// *inputlimits.LimitError mapped into the resilience taxonomy.
func TestQueryBudgetTyped(t *testing.T) {
	db := fuzzDB()
	var le *inputlimits.LimitError

	_, err := db.QueryWithBudget("MATCH (a) RETURN a", nil, inputlimits.Budget{MaxBytes: 4})
	if !errors.As(err, &le) || le.Limit != inputlimits.LimitBytes {
		t.Fatalf("want bytes limit, got %v", err)
	}
	if !errors.Is(err, resilience.ErrBudgetExceeded) {
		t.Fatalf("error %v must map to resilience.ErrBudgetExceeded", err)
	}

	_, err = db.QueryWithBudget("MATCH (a:Cell)-[:DRIVES]->(b) RETURN a.name, b.name", nil, inputlimits.Budget{MaxTokens: 4})
	if !errors.As(err, &le) || le.Limit != inputlimits.LimitTokens {
		t.Fatalf("want tokens limit, got %v", err)
	}

	_, err = db.QueryWithBudget("MATCH "+strings.Repeat("NOT ", 64)+"true RETURN 1", nil, inputlimits.Budget{MaxDepth: 8})
	if err == nil {
		t.Fatal("want an error from deep NOT chain")
	}

	_, err = db.QueryWithBudget("MATCH (a), (b), (c) RETURN count(a)", nil, inputlimits.Budget{MaxStatements: 2})
	if !errors.As(err, &le) || le.Limit != inputlimits.LimitStatements {
		t.Fatalf("want statements limit, got %v", err)
	}
}

// TestQueryBindingExplosionBounded: a cartesian-product MATCH over several
// patterns materializes bindings bounded by the step budget rather than
// exhausting memory.
func TestQueryBindingExplosionBounded(t *testing.T) {
	db := New()
	for i := 0; i < 64; i++ {
		db.CreateNode([]string{"Cell"}, map[string]any{"i": int64(i)})
	}
	// 64^4 = 16.7M candidate bindings; the budget stops the search early.
	q := "MATCH (a), (b), (c), (d) RETURN count(a)"
	_, err := db.QueryWithBudget(q, nil, inputlimits.Budget{MaxSteps: 10000})
	var le *inputlimits.LimitError
	if !errors.As(err, &le) || le.Limit != inputlimits.LimitSteps {
		t.Fatalf("want steps limit, got %v", err)
	}
}

// TestQueryDefaultBudgetServesRealQueries: the query shapes SynthRAG issues
// against its design graph run untouched under the serving default.
func TestQueryDefaultBudgetServesRealQueries(t *testing.T) {
	db := fuzzDB()
	for _, q := range []string{
		"MATCH (c:Cell) RETURN c.name ORDER BY c.name",
		"MATCH (a:Cell)-[:DRIVES]->(b:Cell) RETURN a.name, b.name",
		"MATCH (a)-[:DRIVES*1..8]->(b) RETURN count(b)",
	} {
		if _, err := db.Query(q, nil); err != nil {
			t.Fatalf("default budget rejected %q: %v", q, err)
		}
	}
}
