package graphdb

import (
	"strings"
	"testing"

	"repro/internal/inputlimits"
)

// cypherFuzzBudget is tight so the fuzzer explores parser and executor
// states instead of grinding through large accepted queries.
var cypherFuzzBudget = inputlimits.Budget{
	MaxBytes:      1 << 12,
	MaxTokens:     1 << 10,
	MaxDepth:      32,
	MaxStatements: 1 << 8,
	MaxSteps:      1 << 14,
}

// fuzzDB builds a small fixed graph: a chain of cells wired port-to-port,
// dense enough that variable-length and multi-pattern queries have real
// work to do. Built fresh per iteration because fuzzed CREATE queries
// mutate the database.
func fuzzDB() *DB {
	db := New()
	var prev *Node
	for i := 0; i < 8; i++ {
		n := db.CreateNode([]string{"Cell"}, map[string]any{
			"name": "g" + string(rune('0'+i)),
			"kind": []string{"NAND2", "INV", "DFF"}[i%3],
		})
		if prev != nil {
			db.CreateRel(prev, n, "DRIVES", nil)
		}
		prev = n
	}
	return db
}

// FuzzParseCypher asserts the Cypher-subset parser and executor never panic
// or hang on arbitrary query text — including the unterminated-string input
// that once drove the lexer past the end of its source buffer.
func FuzzParseCypher(f *testing.F) {
	seeds := []string{
		"MATCH (c:Cell) RETURN c.name ORDER BY c.name LIMIT 5",
		"MATCH (a:Cell)-[:DRIVES]->(b:Cell) WHERE a.kind = 'INV' RETURN a.name, b.name",
		"MATCH (a)-[:DRIVES*1..4]->(b) RETURN count(b)",
		"CREATE (x:Cell {name: 'new', kind: $k})",
		"MATCH (a), (b) WHERE NOT a.name = b.name RETURN count(a)",
		"MATCH (c:Cell) RETURN c.name AS n ORDER BY n DESC",
		"MATCH 'abc",        // regression: unterminated string overran the lexer
		"MATCH (a RETURN a", // unclosed node pattern
		"MATCH (a)-[->(b) RETURN a",
		strings.Repeat("NOT ", 40) + "true",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, q string) {
		db := fuzzDB()
		res, err := db.QueryWithBudget(q, map[string]any{"k": "INV"}, cypherFuzzBudget)
		if err != nil {
			return
		}
		// Accepted queries return well-formed results: every row as wide as
		// the column list.
		for _, row := range res.Rows {
			if len(row) != len(res.Columns) {
				t.Fatalf("row width %d != %d columns", len(row), len(res.Columns))
			}
		}
	})
}
