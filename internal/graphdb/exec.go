package graphdb

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/inputlimits"
)

// Result is the outcome of a query: column names and rows of values.
// Node-valued columns contain *Node.
type Result struct {
	Columns []string
	Rows    [][]any
}

// Strings returns a column's values as strings (non-strings are skipped).
func (r *Result) Strings(col string) []string {
	idx := r.colIndex(col)
	if idx < 0 {
		return nil
	}
	var out []string
	for _, row := range r.Rows {
		if s, ok := row[idx].(string); ok {
			out = append(out, s)
		}
	}
	return out
}

// Value returns the single value of a 1x1 result, or nil.
func (r *Result) Value() any {
	if len(r.Rows) == 1 && len(r.Rows[0]) == 1 {
		return r.Rows[0][0]
	}
	return nil
}

func (r *Result) colIndex(col string) int {
	for i, c := range r.Columns {
		if c == col {
			return i
		}
	}
	return -1
}

// Query executes a Cypher-subset query with optional parameters, under the
// process-default cypher input budget. Queries are an untrusted-input
// surface (they are assembled from request-derived strings), so both the
// parse and the match search run metered: a query whose pattern search
// would materialize an explosive number of bindings returns a typed
// *inputlimits.LimitError instead of exhausting memory.
func (db *DB) Query(q string, params map[string]any) (*Result, error) {
	return db.QueryWithBudget(q, params, inputlimits.For(inputlimits.SurfaceCypher))
}

// QueryWithBudget runs a query under an explicit budget. The zero budget
// disables all limits.
func (db *DB) QueryWithBudget(q string, params map[string]any, budget inputlimits.Budget) (*Result, error) {
	m := inputlimits.NewMeter(inputlimits.SurfaceCypher, budget)
	if err := m.CheckBytes(len(q)); err != nil {
		return nil, err
	}
	ast, err := parseCypher(q, m)
	if err != nil {
		return nil, fmt.Errorf("cypher: %w", err)
	}
	if ast.create != nil {
		return db.execCreate(ast, params)
	}
	return db.execMatch(ast, params, m)
}

// QueryValue runs a query expected to produce a single 1x1 result and
// returns its value. It is the error-returning replacement for the
// MustQuery(...).Value() pattern on internal query paths: a failed or
// empty query is an error, never a panic.
func (db *DB) QueryValue(q string, params map[string]any) (any, error) {
	r, err := db.Query(q, params)
	if err != nil {
		return nil, err
	}
	v := r.Value()
	if v == nil {
		return nil, fmt.Errorf("query returned no single value (%d rows)", len(r.Rows))
	}
	return v, nil
}

func (db *DB) execCreate(ast *cypherQuery, params map[string]any) (*Result, error) {
	created := 0
	vars := make(map[string]*Node)
	for _, pat := range ast.create {
		var prev *Node
		for i, np := range pat.nodes {
			var n *Node
			if np.variable != "" && vars[np.variable] != nil {
				n = vars[np.variable]
			} else {
				props := make(map[string]any)
				for k, e := range np.props {
					v, err := evalConst(e, params)
					if err != nil {
						return nil, err
					}
					props[k] = v
				}
				n = db.CreateNode(np.labels, props)
				created++
				if np.variable != "" {
					vars[np.variable] = n
				}
			}
			if i > 0 {
				rel := pat.rels[i-1]
				if rel.varLen {
					return nil, fmt.Errorf("cannot CREATE variable-length relationships")
				}
				if rel.reverse {
					db.CreateRel(n, prev, rel.relType, nil)
				} else {
					db.CreateRel(prev, n, rel.relType, nil)
				}
			}
			prev = n
		}
	}
	return &Result{Columns: []string{"created"}, Rows: [][]any{{int64(created)}}}, nil
}

func evalConst(e exprAST, params map[string]any) (any, error) {
	switch v := e.(type) {
	case litExpr:
		return v.val, nil
	case paramExpr:
		val, ok := params[v.name]
		if !ok {
			return nil, fmt.Errorf("missing parameter $%s", v.name)
		}
		return val, nil
	}
	return nil, fmt.Errorf("expression is not constant")
}

// binding maps pattern variables to matched nodes.
type binding map[string]*Node

func (db *DB) execMatch(ast *cypherQuery, params map[string]any, m *inputlimits.Meter) (*Result, error) {
	bindings := []binding{{}}
	for _, pat := range ast.match {
		var next []binding
		for _, b := range bindings {
			matches, err := db.matchPattern(pat, b, params, m)
			if err != nil {
				return nil, err
			}
			next = append(next, matches...)
			// Comma-separated MATCH patterns multiply bindings (cartesian
			// product); charge the materialized set against the step budget
			// so an explosive query trips a typed limit, not the OOM killer.
			if err := m.StepN(len(matches)); err != nil {
				return nil, err
			}
		}
		bindings = next
	}
	// WHERE filter.
	if ast.where != nil {
		var kept []binding
		for _, b := range bindings {
			v, err := evalExpr(ast.where, b, params)
			if err != nil {
				return nil, err
			}
			if truthy(v) {
				kept = append(kept, b)
			}
		}
		bindings = kept
	}
	// Aggregation?
	hasCount := false
	for _, it := range ast.returns {
		if _, ok := it.expr.(countExpr); ok {
			hasCount = true
		}
	}
	res := &Result{}
	for _, it := range ast.returns {
		res.Columns = append(res.Columns, it.alias)
	}
	if hasCount {
		row := make([]any, len(ast.returns))
		for i, it := range ast.returns {
			if _, ok := it.expr.(countExpr); ok {
				row[i] = int64(len(bindings))
			} else if len(bindings) > 0 {
				v, err := evalExpr(it.expr, bindings[0], params)
				if err != nil {
					return nil, err
				}
				row[i] = v
			}
		}
		res.Rows = append(res.Rows, row)
		return res, nil
	}
	type sortableRow struct {
		row []any
		key any
	}
	var rows []sortableRow
	for _, b := range bindings {
		row := make([]any, len(ast.returns))
		for i, it := range ast.returns {
			v, err := evalExpr(it.expr, b, params)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		sr := sortableRow{row: row}
		if ast.orderBy != nil {
			k, err := evalExpr(ast.orderBy, b, params)
			if err != nil {
				return nil, err
			}
			sr.key = k
		}
		rows = append(rows, sr)
	}
	if ast.orderBy != nil {
		sort.SliceStable(rows, func(i, j int) bool {
			less, err := valueLess(rows[i].key, rows[j].key)
			if err != nil {
				return false
			}
			if ast.orderDesc {
				return !less && !valueEq(rows[i].key, rows[j].key)
			}
			return less
		})
	}
	for i, sr := range rows {
		if ast.limit > 0 && i >= ast.limit {
			break
		}
		res.Rows = append(res.Rows, sr.row)
	}
	return res, nil
}

// matchPattern extends a binding with all ways the pattern matches.
func (db *DB) matchPattern(pat *patternAST, base binding, params map[string]any, m *inputlimits.Meter) ([]binding, error) {
	// Candidates for the first node.
	first := pat.nodes[0]
	cands, err := db.nodeCandidates(first, base, params)
	if err != nil {
		return nil, err
	}
	var out []binding
	for _, start := range cands {
		if err := m.Step(); err != nil {
			return nil, err
		}
		b := cloneBinding(base)
		if first.variable != "" {
			b[first.variable] = start
		}
		exts, err := db.extend(pat, 1, start, b, params, m)
		if err != nil {
			return nil, err
		}
		out = append(out, exts...)
	}
	return out, nil
}

func cloneBinding(b binding) binding {
	nb := make(binding, len(b)+1)
	for k, v := range b {
		nb[k] = v
	}
	return nb
}

func (db *DB) nodeCandidates(np *nodePat, base binding, params map[string]any) ([]*Node, error) {
	if np.variable != "" {
		if n, bound := base[np.variable]; bound {
			ok, err := db.nodeMatches(np, n, params)
			if err != nil {
				return nil, err
			}
			if ok {
				return []*Node{n}, nil
			}
			return nil, nil
		}
	}
	var pool []*Node
	if len(np.labels) > 0 {
		pool = db.byLabel[np.labels[0]]
	} else {
		pool = db.AllNodes()
	}
	var out []*Node
	for _, n := range pool {
		ok, err := db.nodeMatches(np, n, params)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, n)
		}
	}
	return out, nil
}

func (db *DB) nodeMatches(np *nodePat, n *Node, params map[string]any) (bool, error) {
	for _, l := range np.labels {
		if !n.HasLabel(l) {
			return false, nil
		}
	}
	for k, e := range np.props {
		want, err := evalConst(e, params)
		if err != nil {
			return false, err
		}
		if !valueEq(n.Props[k], want) {
			return false, nil
		}
	}
	return true, nil
}

// extend matches pattern element idx (a relationship plus node) from cur.
// Every target considered costs one step, which bounds the total search
// even when the pattern's branching factor explodes on a dense graph.
func (db *DB) extend(pat *patternAST, idx int, cur *Node, b binding, params map[string]any, m *inputlimits.Meter) ([]binding, error) {
	if idx >= len(pat.nodes) {
		return []binding{b}, nil
	}
	rel := pat.rels[idx-1]
	np := pat.nodes[idx]
	targets, err := db.relTargets(cur, rel, m)
	if err != nil {
		return nil, err
	}
	var out []binding
	for _, tgt := range targets {
		if err := m.Step(); err != nil {
			return nil, err
		}
		ok, err := db.nodeMatches(np, tgt, params)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		if np.variable != "" {
			if bound, exists := b[np.variable]; exists && bound != tgt {
				continue
			}
		}
		nb := cloneBinding(b)
		if np.variable != "" {
			nb[np.variable] = tgt
		}
		exts, err := db.extend(pat, idx+1, tgt, nb, params, m)
		if err != nil {
			return nil, err
		}
		out = append(out, exts...)
	}
	return out, nil
}

// relTargets lists nodes reachable from cur over the relationship pattern,
// honoring direction and variable-length bounds. The variable-length BFS is
// step-metered per dequeued frontier node.
func (db *DB) relTargets(cur *Node, rel *relPat, m *inputlimits.Meter) ([]*Node, error) {
	step := func(n *Node) []*Node {
		var rels []*Rel
		if rel.reverse {
			rels = n.In(rel.relType)
		} else {
			rels = n.Out(rel.relType)
		}
		out := make([]*Node, 0, len(rels))
		for _, r := range rels {
			if rel.reverse {
				out = append(out, r.From)
			} else {
				out = append(out, r.To)
			}
		}
		return out
	}
	if !rel.varLen {
		return step(cur), nil
	}
	// BFS collecting nodes at depth [minHops, maxHops].
	type item struct {
		n     *Node
		depth int
	}
	seen := map[*Node]bool{cur: true}
	var out []*Node
	queue := []item{{cur, 0}}
	for len(queue) > 0 {
		if err := m.Step(); err != nil {
			return nil, err
		}
		it := queue[0]
		queue = queue[1:]
		if it.depth >= rel.maxHops {
			continue
		}
		for _, nxt := range step(it.n) {
			if seen[nxt] {
				continue
			}
			seen[nxt] = true
			d := it.depth + 1
			if d >= rel.minHops {
				out = append(out, nxt)
			}
			queue = append(queue, item{nxt, d})
		}
	}
	return out, nil
}

func evalExpr(e exprAST, b binding, params map[string]any) (any, error) {
	switch v := e.(type) {
	case litExpr:
		return v.val, nil
	case paramExpr:
		val, ok := params[v.name]
		if !ok {
			return nil, fmt.Errorf("missing parameter $%s", v.name)
		}
		return val, nil
	case varExpr:
		n, ok := b[v.name]
		if !ok {
			return nil, fmt.Errorf("unbound variable %q", v.name)
		}
		return n, nil
	case propExpr:
		n, ok := b[v.variable]
		if !ok {
			return nil, fmt.Errorf("unbound variable %q", v.variable)
		}
		return n.Props[v.prop], nil
	case cmpExpr:
		l, err := evalExpr(v.l, b, params)
		if err != nil {
			return nil, err
		}
		r, err := evalExpr(v.r, b, params)
		if err != nil {
			return nil, err
		}
		switch v.op {
		case "=":
			return valueEq(l, r), nil
		case "<>":
			return !valueEq(l, r), nil
		case "<", "<=", ">", ">=":
			less, err := valueLess(l, r)
			if err != nil {
				return nil, err
			}
			eq := valueEq(l, r)
			switch v.op {
			case "<":
				return less, nil
			case "<=":
				return less || eq, nil
			case ">":
				return !less && !eq, nil
			case ">=":
				return !less, nil
			}
		case "CONTAINS":
			ls, lok := l.(string)
			rs, rok := r.(string)
			if !lok || !rok {
				return nil, fmt.Errorf("CONTAINS needs strings")
			}
			return strings.Contains(ls, rs), nil
		case "STARTS_WITH":
			ls, lok := l.(string)
			rs, rok := r.(string)
			if !lok || !rok {
				return nil, fmt.Errorf("STARTS WITH needs strings")
			}
			return strings.HasPrefix(ls, rs), nil
		}
		return nil, fmt.Errorf("unknown comparison %q", v.op)
	case boolExpr:
		l, err := evalExpr(v.l, b, params)
		if err != nil {
			return nil, err
		}
		if v.op == "AND" && !truthy(l) {
			return false, nil
		}
		if v.op == "OR" && truthy(l) {
			return true, nil
		}
		r, err := evalExpr(v.r, b, params)
		if err != nil {
			return nil, err
		}
		return truthy(r), nil
	case notExpr:
		x, err := evalExpr(v.x, b, params)
		if err != nil {
			return nil, err
		}
		return !truthy(x), nil
	case countExpr:
		return nil, fmt.Errorf("count() only allowed in RETURN")
	}
	return nil, fmt.Errorf("unsupported expression")
}

func truthy(v any) bool {
	switch x := v.(type) {
	case bool:
		return x
	case nil:
		return false
	}
	return true
}
