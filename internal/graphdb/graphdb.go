// Package graphdb is an embedded in-memory property-graph database with a
// Cypher-subset query language, standing in for the Neo4j + Cypher stack the
// paper uses to store circuit graphs. Nodes carry labels and properties,
// relationships are typed and directed, and queries support MATCH patterns
// with relationship chains, variable-length paths, WHERE filters,
// parameters, ORDER BY / LIMIT, and count() aggregation — everything
// SynthRAG's graph-structure retrieval issues.
package graphdb

import (
	"fmt"
	"sort"
)

// Node is a labeled property vertex.
type Node struct {
	ID     int64
	Labels []string
	Props  map[string]any
	out    []*Rel
	in     []*Rel
}

// HasLabel reports whether the node carries the label.
func (n *Node) HasLabel(label string) bool {
	for _, l := range n.Labels {
		if l == label {
			return true
		}
	}
	return false
}

// Out returns outgoing relationships, optionally filtered by type
// (empty string matches all).
func (n *Node) Out(relType string) []*Rel {
	return filterRels(n.out, relType)
}

// In returns incoming relationships, optionally filtered by type.
func (n *Node) In(relType string) []*Rel {
	return filterRels(n.in, relType)
}

func filterRels(rels []*Rel, relType string) []*Rel {
	if relType == "" {
		return rels
	}
	var out []*Rel
	for _, r := range rels {
		if r.Type == relType {
			out = append(out, r)
		}
	}
	return out
}

// Rel is a directed, typed relationship.
type Rel struct {
	Type  string
	From  *Node
	To    *Node
	Props map[string]any
}

// DB is the graph store.
type DB struct {
	nodes   map[int64]*Node
	nextID  int64
	byLabel map[string][]*Node
}

// New creates an empty database.
func New() *DB {
	return &DB{nodes: make(map[int64]*Node), byLabel: make(map[string][]*Node)}
}

// CreateNode adds a node with the given labels and properties.
func (db *DB) CreateNode(labels []string, props map[string]any) *Node {
	if props == nil {
		props = make(map[string]any)
	}
	n := &Node{ID: db.nextID, Labels: labels, Props: props}
	db.nextID++
	db.nodes[n.ID] = n
	for _, l := range labels {
		db.byLabel[l] = append(db.byLabel[l], n)
	}
	return n
}

// CreateRel links from -> to with a typed relationship.
func (db *DB) CreateRel(from, to *Node, relType string, props map[string]any) *Rel {
	if props == nil {
		props = make(map[string]any)
	}
	r := &Rel{Type: relType, From: from, To: to, Props: props}
	from.out = append(from.out, r)
	to.in = append(to.in, r)
	return r
}

// Node returns the node with the given ID, or nil.
func (db *DB) Node(id int64) *Node { return db.nodes[id] }

// NodeCount returns the number of nodes.
func (db *DB) NodeCount() int { return len(db.nodes) }

// RelCount returns the number of relationships.
func (db *DB) RelCount() int {
	n := 0
	for _, node := range db.nodes {
		n += len(node.out)
	}
	return n
}

// ByLabel returns all nodes carrying a label, in insertion order.
func (db *DB) ByLabel(label string) []*Node {
	return append([]*Node(nil), db.byLabel[label]...)
}

// AllNodes returns every node sorted by ID.
func (db *DB) AllNodes() []*Node {
	out := make([]*Node, 0, len(db.nodes))
	for _, n := range db.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// FindOne returns the first node with the label whose property equals the
// value, or nil.
func (db *DB) FindOne(label, prop string, value any) *Node {
	for _, n := range db.byLabel[label] {
		if valueEq(n.Props[prop], value) {
			return n
		}
	}
	return nil
}

// Find returns all nodes with the label matching every property filter.
func (db *DB) Find(label string, filters map[string]any) []*Node {
	var out []*Node
	for _, n := range db.byLabel[label] {
		ok := true
		for k, v := range filters {
			if !valueEq(n.Props[k], v) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, n)
		}
	}
	return out
}

// valueEq compares property values with numeric coercion between int64 and
// float64, the way Cypher treats numbers.
func valueEq(a, b any) bool {
	if af, aok := toFloat(a); aok {
		if bf, bok := toFloat(b); bok {
			return af == bf
		}
		return false
	}
	return a == b
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	case float64:
		return x, true
	}
	return 0, false
}

func valueLess(a, b any) (bool, error) {
	if af, aok := toFloat(a); aok {
		if bf, bok := toFloat(b); bok {
			return af < bf, nil
		}
	}
	as, aok := a.(string)
	bs, bok := b.(string)
	if aok && bok {
		return as < bs, nil
	}
	return false, fmt.Errorf("cannot compare %T with %T", a, b)
}
