package graphdb

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/inputlimits"
)

// The Cypher subset grammar:
//
//	query   := CREATE patterns
//	         | MATCH patterns [WHERE expr] RETURN items [ORDER BY expr [DESC]] [LIMIT n]
//	pattern := node (rel node)*
//	node    := '(' [var] (':' label)* ['{' props '}'] ')'
//	rel     := '-[' [var] [':' type] ['*' [min] '..' [max]] ']->' | '<-[' ... ']-'
//	item    := expr [AS name]
//	expr    := literals, $params, var.prop, comparisons, AND/OR/NOT, count(var)
type cypherQuery struct {
	create   []*patternAST
	match    []*patternAST
	where    exprAST
	returns  []returnItem
	orderBy  exprAST
	orderDesc bool
	limit    int // 0 = no limit
}

type patternAST struct {
	nodes []*nodePat
	rels  []*relPat // len(rels) == len(nodes)-1
}

type nodePat struct {
	variable string
	labels   []string
	props    map[string]exprAST
}

type relPat struct {
	variable string
	relType  string
	reverse  bool // <-[...]-
	varLen   bool
	minHops  int
	maxHops  int
}

type returnItem struct {
	expr  exprAST
	alias string
}

// exprAST is an expression node.
type exprAST interface{ cypherExpr() }

type litExpr struct{ val any }
type paramExpr struct{ name string }
type varExpr struct{ name string }
type propExpr struct {
	variable string
	prop     string
}
type cmpExpr struct {
	op   string // = <> < <= > >= CONTAINS STARTS_WITH
	l, r exprAST
}
type boolExpr struct {
	op   string // AND OR
	l, r exprAST
}
type notExpr struct{ x exprAST }
type countExpr struct{ variable string }

func (litExpr) cypherExpr()   {}
func (paramExpr) cypherExpr() {}
func (varExpr) cypherExpr()   {}
func (propExpr) cypherExpr()  {}
func (cmpExpr) cypherExpr()   {}
func (boolExpr) cypherExpr()  {}
func (notExpr) cypherExpr()   {}
func (countExpr) cypherExpr() {}

// cypherLexer tokenizes a query. Token production is metered; when the
// budget trips, the lexer pins itself to EOF and records the limit error so
// the parser terminates and the caller surfaces the typed error instead of
// whatever syntax error the truncation would otherwise produce.
type cypherLexer struct {
	src      string
	pos      int
	tok      string
	meter    *inputlimits.Meter
	limitErr error
}

func (lx *cypherLexer) next() string {
	if err := lx.meter.Token(); err != nil {
		if lx.limitErr == nil {
			lx.limitErr = err
		}
		lx.pos = len(lx.src)
		lx.tok = ""
		return ""
	}
	for lx.pos < len(lx.src) && unicode.IsSpace(rune(lx.src[lx.pos])) {
		lx.pos++
	}
	if lx.pos >= len(lx.src) {
		lx.tok = ""
		return ""
	}
	c := lx.src[lx.pos]
	start := lx.pos
	switch {
	case isWordChar(c) || c == '$':
		lx.pos++
		for lx.pos < len(lx.src) {
			ch := lx.src[lx.pos]
			if isWordChar(ch) {
				lx.pos++
				continue
			}
			// '.' joins identifiers (m.code) and decimals (2.5) but a ".."
			// range operator must stay its own token.
			if ch == '.' && !(lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '.') {
				lx.pos++
				continue
			}
			break
		}
	case c == '\'' || c == '"':
		quote := c
		lx.pos++
		for lx.pos < len(lx.src) && lx.src[lx.pos] != quote {
			lx.pos++
		}
		if lx.pos < len(lx.src) {
			lx.pos++ // closing quote; absent when the string is unterminated
		}
	case strings.HasPrefix(lx.src[lx.pos:], "<-["):
		lx.pos += 3
	case strings.HasPrefix(lx.src[lx.pos:], "]->"):
		lx.pos += 3
	case strings.HasPrefix(lx.src[lx.pos:], "-["):
		lx.pos += 2
	case strings.HasPrefix(lx.src[lx.pos:], "]-"):
		lx.pos += 2
	case strings.HasPrefix(lx.src[lx.pos:], "<="), strings.HasPrefix(lx.src[lx.pos:], ">="),
		strings.HasPrefix(lx.src[lx.pos:], "<>"), strings.HasPrefix(lx.src[lx.pos:], ".."):
		lx.pos += 2
	default:
		lx.pos++
	}
	lx.tok = lx.src[start:lx.pos]
	return lx.tok
}

func isWordChar(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

func (lx *cypherLexer) peekWord() string {
	save := lx.pos
	tok := lx.next()
	lx.pos = save
	return tok
}

type cypherParser struct {
	lx    *cypherLexer
	meter *inputlimits.Meter
}

// parseCypher parses a query string under the given meter (nil = unmetered).
// A tripped token budget pins the lexer to EOF, so the recursive-descent
// parser unwinds with some syntax error; the recorded limit error takes
// precedence so callers see the typed limit, not the truncation artifact.
func parseCypher(q string, m *inputlimits.Meter) (*cypherQuery, error) {
	lx := &cypherLexer{src: q, meter: m}
	p := &cypherParser{lx: lx, meter: m}
	out, err := p.parseQuery()
	if lx.limitErr != nil {
		return nil, lx.limitErr
	}
	return out, err
}

func (p *cypherParser) parseQuery() (*cypherQuery, error) {
	out := &cypherQuery{}
	kw := strings.ToUpper(p.lx.next())
	switch kw {
	case "CREATE":
		pats, err := p.parsePatterns()
		if err != nil {
			return nil, err
		}
		out.create = pats
		return out, nil
	case "MATCH":
		pats, err := p.parsePatterns()
		if err != nil {
			return nil, err
		}
		out.match = pats
	default:
		return nil, fmt.Errorf("query must start with MATCH or CREATE, got %q", kw)
	}
	// lx.tok currently holds the token that ended the pattern list.
	for {
		switch strings.ToUpper(p.lx.tok) {
		case "":
			if len(out.returns) == 0 {
				return nil, fmt.Errorf("MATCH query needs a RETURN clause")
			}
			return out, nil
		case "WHERE":
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			out.where = e
		case "RETURN":
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				item := returnItem{expr: e, alias: exprLabel(e)}
				if strings.ToUpper(p.lx.tok) == "AS" {
					item.alias = p.lx.next()
					p.lx.next()
				}
				out.returns = append(out.returns, item)
				if err := p.meter.Statement(len(out.returns)); err != nil {
					return nil, err
				}
				if p.lx.tok != "," {
					break
				}
				// comma consumed by loop
			}
		case "ORDER":
			if strings.ToUpper(p.lx.next()) != "BY" {
				return nil, fmt.Errorf("expected BY after ORDER")
			}
			p.lx.next()
			e, err := p.parseExprNoAdvance()
			if err != nil {
				return nil, err
			}
			out.orderBy = e
			if strings.ToUpper(p.lx.tok) == "DESC" {
				out.orderDesc = true
				p.lx.next()
			} else if strings.ToUpper(p.lx.tok) == "ASC" {
				p.lx.next()
			}
		case "LIMIT":
			n, err := strconv.Atoi(p.lx.next())
			if err != nil || n < 0 {
				return nil, fmt.Errorf("invalid LIMIT")
			}
			out.limit = n
			p.lx.next()
		default:
			return nil, fmt.Errorf("unexpected token %q", p.lx.tok)
		}
	}
}

func exprLabel(e exprAST) string {
	switch v := e.(type) {
	case propExpr:
		return v.variable + "." + v.prop
	case varExpr:
		return v.name
	case countExpr:
		return "count(" + v.variable + ")"
	}
	return "expr"
}

// parsePatterns parses comma-separated patterns; on return, lx.tok holds the
// first token after the pattern list.
func (p *cypherParser) parsePatterns() ([]*patternAST, error) {
	var pats []*patternAST
	for {
		pat, err := p.parsePattern()
		if err != nil {
			return nil, err
		}
		pats = append(pats, pat)
		if err := p.meter.Statement(len(pats)); err != nil {
			return nil, err
		}
		if p.lx.tok == "," {
			// parsePattern's leading next() will consume the '(' itself.
			continue
		}
		return pats, nil
	}
}

func (p *cypherParser) parsePattern() (*patternAST, error) {
	pat := &patternAST{}
	if p.lx.next() != "(" {
		return nil, fmt.Errorf("expected '(' to start node pattern, got %q", p.lx.tok)
	}
	n, err := p.parseNode()
	if err != nil {
		return nil, err
	}
	pat.nodes = append(pat.nodes, n)
	for {
		tok := p.lx.next()
		if tok != "-[" && tok != "<-[" {
			return pat, nil // tok is the lookahead for the caller
		}
		rel, err := p.parseRel(tok == "<-[")
		if err != nil {
			return nil, err
		}
		pat.rels = append(pat.rels, rel)
		if p.lx.next() != "(" {
			return nil, fmt.Errorf("expected '(' after relationship, got %q", p.lx.tok)
		}
		n, err := p.parseNode()
		if err != nil {
			return nil, err
		}
		pat.nodes = append(pat.nodes, n)
	}
}

// parseNode parses the inside of (var:Label {k: v}) with '(' consumed.
func (p *cypherParser) parseNode() (*nodePat, error) {
	n := &nodePat{props: make(map[string]exprAST)}
	tok := p.lx.next()
	if tok != ":" && tok != "{" && tok != ")" {
		n.variable = tok
		tok = p.lx.next()
	}
	for tok == ":" {
		n.labels = append(n.labels, p.lx.next())
		tok = p.lx.next()
	}
	if tok == "{" {
		for {
			key := p.lx.next()
			if key == "}" {
				break
			}
			if p.lx.next() != ":" {
				return nil, fmt.Errorf("expected ':' in property map")
			}
			p.lx.next()
			e, err := p.parsePrimaryNoAdvance()
			if err != nil {
				return nil, err
			}
			n.props[key] = e
			tok = p.lx.next()
			if tok == "," {
				continue
			}
			if tok == "}" {
				break
			}
			return nil, fmt.Errorf("expected ',' or '}' in property map, got %q", tok)
		}
		tok = p.lx.next()
	}
	if tok != ")" {
		return nil, fmt.Errorf("expected ')' to close node pattern, got %q", tok)
	}
	return n, nil
}

// parseRel parses [var:TYPE*1..3] with the opener consumed; consumes the
// closing ]-> or ]-.
func (p *cypherParser) parseRel(reverse bool) (*relPat, error) {
	r := &relPat{reverse: reverse, minHops: 1, maxHops: 1}
	tok := p.lx.next()
	if tok != ":" && tok != "*" && tok != "]->" && tok != "]-" {
		r.variable = tok
		tok = p.lx.next()
	}
	if tok == ":" {
		r.relType = p.lx.next()
		tok = p.lx.next()
	}
	if tok == "*" {
		r.varLen = true
		r.minHops, r.maxHops = 1, 8
		tok = p.lx.next()
		if n, err := strconv.Atoi(tok); err == nil {
			r.minHops = n
			tok = p.lx.next()
		}
		if tok == ".." {
			tok = p.lx.next()
			if n, err := strconv.Atoi(tok); err == nil {
				r.maxHops = n
				tok = p.lx.next()
			} else {
				r.maxHops = 16
			}
		} else {
			r.maxHops = r.minHops
		}
	}
	want := "]->"
	if reverse {
		want = "]-"
	}
	if tok != want {
		return nil, fmt.Errorf("expected %q to close relationship, got %q", want, tok)
	}
	return r, nil
}

// parseExpr advances then parses; on return lx.tok is the lookahead.
func (p *cypherParser) parseExpr() (exprAST, error) {
	p.lx.next()
	return p.parseExprNoAdvance()
}

func (p *cypherParser) parseExprNoAdvance() (exprAST, error) {
	return p.parseOr()
}

func (p *cypherParser) parseOr() (exprAST, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for strings.ToUpper(p.lx.tok) == "OR" {
		p.lx.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = boolExpr{op: "OR", l: l, r: r}
	}
	return l, nil
}

func (p *cypherParser) parseAnd() (exprAST, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for strings.ToUpper(p.lx.tok) == "AND" {
		p.lx.next()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = boolExpr{op: "AND", l: l, r: r}
	}
	return l, nil
}

// parseNot binds looser than comparisons so "NOT a = b" negates the whole
// comparison.
func (p *cypherParser) parseNot() (exprAST, error) {
	if strings.ToUpper(p.lx.tok) == "NOT" {
		// The only unbounded recursion in the grammar: "NOT NOT NOT ...".
		if err := p.meter.Enter(); err != nil {
			return nil, err
		}
		defer p.meter.Exit()
		p.lx.next()
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return notExpr{x: x}, nil
	}
	return p.parseCmp()
}

func (p *cypherParser) parseCmp() (exprAST, error) {
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	op := p.lx.tok
	switch strings.ToUpper(op) {
	case "=", "<>", "<", "<=", ">", ">=":
		p.lx.next()
		r, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return cmpExpr{op: op, l: l, r: r}, nil
	case "CONTAINS":
		p.lx.next()
		r, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return cmpExpr{op: "CONTAINS", l: l, r: r}, nil
	case "STARTS":
		if strings.ToUpper(p.lx.next()) != "WITH" {
			return nil, fmt.Errorf("expected WITH after STARTS")
		}
		p.lx.next()
		r, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return cmpExpr{op: "STARTS_WITH", l: l, r: r}, nil
	}
	return l, nil
}

// parsePrimary parses the current token as a primary and advances past it.
func (p *cypherParser) parsePrimary() (exprAST, error) {
	e, err := p.parsePrimaryNoAdvance()
	if err != nil {
		return nil, err
	}
	p.lx.next()
	return e, nil
}

// parsePrimaryNoAdvance interprets the current token without consuming the
// lookahead (used inside property maps where the caller manages commas).
func (p *cypherParser) parsePrimaryNoAdvance() (exprAST, error) {
	tok := p.lx.tok
	if tok == "" {
		return nil, fmt.Errorf("unexpected end of query")
	}
	upper := strings.ToUpper(tok)
	switch {
	case upper == "TRUE":
		return litExpr{val: true}, nil
	case upper == "FALSE":
		return litExpr{val: false}, nil
	case tok[0] == '\'' || tok[0] == '"':
		return litExpr{val: strings.Trim(tok, "'\"")}, nil
	case tok[0] == '$':
		return paramExpr{name: tok[1:]}, nil
	case tok[0] >= '0' && tok[0] <= '9' || tok[0] == '-' && len(tok) > 1:
		if strings.Contains(tok, ".") {
			f, err := strconv.ParseFloat(tok, 64)
			if err != nil {
				return nil, fmt.Errorf("bad number %q", tok)
			}
			return litExpr{val: f}, nil
		}
		n, err := strconv.ParseInt(tok, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", tok)
		}
		return litExpr{val: n}, nil
	case upper == "COUNT":
		if p.lx.next() != "(" {
			return nil, fmt.Errorf("expected '(' after count")
		}
		v := p.lx.next()
		if p.lx.next() != ")" {
			return nil, fmt.Errorf("expected ')' after count variable")
		}
		return countExpr{variable: v}, nil
	case strings.Contains(tok, "."):
		parts := strings.SplitN(tok, ".", 2)
		return propExpr{variable: parts[0], prop: parts[1]}, nil
	case isWordChar(tok[0]):
		return varExpr{name: tok}, nil
	}
	return nil, fmt.Errorf("unexpected token %q in expression", tok)
}
