package qorlog

import (
	"log"
	"sync"
	"sync/atomic"

	"repro/internal/lru"
	"repro/internal/resilience"
)

// Store is the serving-path view of the QoR log: a bounded LRU read cache
// warm-filled from the on-disk log at open, write-through appends with
// retry, and graceful degradation — when the disk stops cooperating the
// store drops to memory-only mode with a warning instead of failing
// requests. A nil *Store disables result caching entirely (every method is
// nil-safe), so callers thread it through unconditionally.
//
// Safe for concurrent use.
type Store struct {
	mu    sync.Mutex
	log   *Log // nil for a memory-only store
	cache *lru.Cache[Key, Record]

	degraded   atomic.Bool
	hits       atomic.Int64
	misses     atomic.Int64
	appendErrs atomic.Int64
	warmed     int64

	// warnf sinks degradation warnings (default log.Printf; tests override).
	warnf func(format string, args ...any)
}

// DefaultCacheCap bounds the in-memory record cache when the caller passes
// a non-positive capacity. Records are ~100 bytes, so even the default is
// cheap; the on-disk log retains everything regardless of evictions.
const DefaultCacheCap = 4096

// appendAttempts bounds the retries of one record append while the error
// classifies as transient (resilience.IsRetryableDisk).
const appendAttempts = 3

// OpenStore opens the durable log at path and repopulates the in-memory
// cache from it — the warm-restart path. Record-level corruption never
// fails the open (see Open); a real I/O error does, and the caller decides
// whether to run memory-only instead.
func OpenStore(path string, cacheCap int, opts Options) (*Store, error) {
	l, err := Open(path, opts)
	if err != nil {
		return nil, err
	}
	s := newStore(l, cacheCap)
	l.Each(func(k Key, rec Record) {
		s.cache.Add(k, rec)
		s.warmed++
	})
	return s, nil
}

// NewMemoryStore builds a store with no backing log: results are cached
// for the process lifetime only.
func NewMemoryStore(cacheCap int) *Store {
	return newStore(nil, cacheCap)
}

func newStore(l *Log, cacheCap int) *Store {
	if cacheCap <= 0 {
		cacheCap = DefaultCacheCap
	}
	return &Store{
		log:   l,
		cache: lru.New[Key, Record](cacheCap),
		warnf: log.Printf,
	}
}

// Get returns the logged record for key. A key evicted from the LRU but
// live in the log's replay index still hits (and is re-promoted).
func (s *Store) Get(key Key) (Record, bool) {
	if s == nil {
		return Record{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if rec, ok := s.cache.Get(key); ok {
		s.hits.Add(1)
		return rec, true
	}
	if s.log != nil {
		if rec, ok := s.log.Get(key); ok {
			s.cache.Add(key, rec)
			s.hits.Add(1)
			return rec, true
		}
	}
	s.misses.Add(1)
	return Record{}, false
}

// Put stores a record, appending it to the log when one is open and the
// store has not degraded. Re-putting an identical record is a no-op
// (skip-if-unchanged): repeat sweeps over unchanged inputs must not grow
// the log with dead entries. A fatal append failure — or a transient one
// that survives every retry — degrades the store to memory-only mode with
// a warning; requests keep being served.
func (s *Store) Put(key Key, rec Record) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.cache.Peek(key); ok && prev == rec {
		return
	}
	if s.log != nil {
		if prev, ok := s.log.Get(key); ok && prev == rec {
			s.cache.Add(key, rec)
			return
		}
	}
	s.cache.Add(key, rec)
	if s.log == nil || s.degraded.Load() {
		return
	}
	failures, err := resilience.RetryBounded(appendAttempts, resilience.IsRetryableDisk,
		func() error { return s.log.Append(key, rec) })
	s.appendErrs.Add(int64(failures))
	if err == nil {
		return
	}
	s.degraded.Store(true)
	s.warnf("qorlog: log write failed, degrading to memory-only mode "+
		"(results from this process will not survive a restart): %v", err)
}

// Degraded reports whether log writes have been abandoned for this process.
func (s *Store) Degraded() bool { return s != nil && s.degraded.Load() }

// Len returns the number of live records (log-backed stores count the full
// replay index, not just what the LRU retains).
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log != nil {
		return s.log.Len()
	}
	return s.cache.Len()
}

// Recompact rewrites the backing log with only live records (see
// Log.Recompact). A memory-only or degraded store is a no-op. Concurrent
// Put/Get callers are safe: the rewrite runs under the store lock, exactly
// like the automatic recompaction an Append can trigger.
func (s *Store) Recompact() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil || s.degraded.Load() {
		return nil
	}
	return s.log.Recompact()
}

// Sync makes appended records durable now (Close also syncs).
func (s *Store) Sync() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil || s.degraded.Load() {
		return nil
	}
	return s.log.Sync()
}

// Close flushes and closes the backing log. Nil-safe and idempotent; the
// in-memory cache keeps serving after Close (shutdown calls it early).
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return nil
	}
	l := s.log
	s.log = nil
	err := l.Close()
	if s.degraded.Load() {
		return nil // the failure was already reported when it degraded
	}
	return err
}

// StoreStats is the store's lifetime counters, exposed by the daemon as
// qorlog_* metrics. Nil-safe: a nil store reports zeros.
type StoreStats struct {
	Hits, Misses int64 // result-cache lookups
	Warmed       int64 // records repopulated from the log at open
	Appends      int64 // records appended this session
	AppendErrors int64 // failed append attempts (before retry/degradation)
	Recovered    int64 // fully-written records replayed by recovery
	DroppedBytes int64 // torn/corrupt trailing bytes truncated by recovery
	Recompacted  int64 // recompaction rewrites completed
	Degraded     bool  // true once log writes were abandoned
}

// Stats returns the current counters.
func (s *Store) Stats() StoreStats {
	if s == nil {
		return StoreStats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := StoreStats{
		Hits:         s.hits.Load(),
		Misses:       s.misses.Load(),
		Warmed:       s.warmed,
		AppendErrors: s.appendErrs.Load(),
		Degraded:     s.degraded.Load(),
	}
	if s.log != nil {
		st.Appends = s.log.Appends()
		st.Recovered = int64(s.log.Stats().Recovered)
		st.DroppedBytes = s.log.Stats().DroppedBytes
		st.Recompacted = s.log.Recompactions()
	}
	return st
}
