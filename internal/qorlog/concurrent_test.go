package qorlog

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
)

// TestStoreConcurrentPutRecompact hammers a live store with concurrent
// writers, readers, and explicit recompactions — the crash tests cover a
// process dying mid-recompaction, this covers the process surviving one
// while traffic keeps flowing. The recompaction thresholds are tuned low so
// automatic recompactions also fire constantly under the churn. Run under
// -race (make race / make check does).
func TestStoreConcurrentPutRecompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "qor.log")
	store, err := OpenStore(path, 8, Options{RecompactMin: 8, RecompactRatio: 0.1})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}

	const (
		writers = 4
		readers = 2
		iters   = 300
		keys    = 16
	)
	keyOf := func(i int) Key { return KeyOf(fmt.Sprintf("key-%d", i%keys)) }

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				rec := Record{Design: fmt.Sprintf("d%d", i%keys), Area: float64(w*iters + i), Cells: i}
				store.Put(keyOf(i), rec)
			}
		}()
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				store.Get(keyOf(i))
				if i%32 == 0 {
					store.Stats()
					store.Len()
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/10; i++ {
			if err := store.Recompact(); err != nil {
				t.Errorf("recompact: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	if store.Degraded() {
		t.Fatal("store degraded with no injected faults")
	}
	finals := make(map[Key]Record, keys)
	for i := 0; i < keys; i++ {
		rec, ok := store.Get(keyOf(i))
		if !ok {
			t.Fatalf("key %d missing after hammer", i)
		}
		finals[keyOf(i)] = rec
	}
	if err := store.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// The reopened log must recover exactly the final state the live store
	// was serving: every key present, every record the last one written.
	reopened, err := OpenStore(path, 8, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer reopened.Close()
	if st := reopened.Stats(); st.DroppedBytes != 0 {
		t.Fatalf("reopen dropped %d bytes from a cleanly-closed log", st.DroppedBytes)
	}
	if got := reopened.Len(); got != keys {
		t.Fatalf("reopened store has %d records, want %d", got, keys)
	}
	for k, want := range finals {
		got, ok := reopened.Get(k)
		if !ok || got != want {
			t.Fatalf("key %x: reopened record %+v, want %+v (ok=%v)", k[:4], got, want, ok)
		}
	}
}
