package qorlog

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzQoRLogRecover feeds arbitrary bytes to the log's recovery path. The
// contract under test: Open never panics and never fails on content (only on
// real I/O errors), and whatever it salvages is a working log — appendable,
// and clean on the next open (recovery truncates to a record boundary, so a
// second recovery must drop nothing).
func FuzzQoRLogRecover(f *testing.F) {
	// A valid image built by the implementation itself, so mutations start
	// from realistic record framing.
	mkValid := func(appends int) []byte {
		path := filepath.Join(f.TempDir(), "seed.log")
		l, err := Open(path, Options{})
		if err != nil {
			f.Fatal(err)
		}
		for i := 0; i < appends; i++ {
			if err := l.Append(testKey(i), testRecord(i)); err != nil {
				f.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			f.Fatal(err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		return b
	}

	f.Add([]byte{})
	f.Add([]byte(magic))                  // header torn after the magic
	f.Add([]byte(magic + "\x02"))         // unknown version
	f.Add([]byte("not a log at all....")) // foreign file
	f.Add(mkValid(0))                     // bare header
	full := mkValid(3)
	f.Add(full)
	f.Add(full[:len(full)-5]) // torn tail mid-record
	corrupt := append([]byte(nil), full...)
	corrupt[len(corrupt)-9] ^= 0x40 // flipped payload bit -> CRC mismatch
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("Open must recover from arbitrary content, got: %v", err)
		}
		st := l.Stats()
		if st.DroppedBytes < 0 || st.Recovered < l.Len() {
			t.Fatalf("inconsistent recovery stats %+v for %d live records", st, l.Len())
		}

		// The salvaged log must accept new records...
		if err := l.Append(testKey(1000), testRecord(1000)); err != nil {
			t.Fatalf("recovered log must be appendable: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}

		// ...and reopen clean: recovery left a well-formed log, so the second
		// open drops nothing and serves the append bit-identically.
		l2, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("reopen after recovery: %v", err)
		}
		defer l2.Close()
		st2 := l2.Stats()
		if st2.DroppedBytes != 0 || st2.Reset {
			t.Fatalf("recovered log must reopen clean, got %+v", st2)
		}
		rec, ok := l2.Get(testKey(1000))
		if !ok || rec != testRecord(1000) {
			t.Fatal("appended record lost or altered across reopen")
		}
	})
}
