package qorlog

import "encoding/hex"

// The log's record payload doubles as the remote-cache wire format: a
// replica PUTs exactly the bytes the log would frame, and the cache daemon
// decodes them with the same codec the recovery scan uses. Keeping one
// codec means a record that crossed the network round-trips bit-identically
// to one replayed from disk — floats cross as raw little-endian bits in
// both directions, never through a decimal representation.

// EncodeRecord serializes key+record into the log's payload format (no
// length/CRC framing — HTTP supplies the framing on the wire, the log adds
// its own on disk).
func EncodeRecord(key Key, rec Record) []byte { return encodeRecord(key, rec) }

// DecodeRecord parses an EncodeRecord payload. ok is false when the bytes
// do not round-trip exactly — short fields, trailing garbage, or a
// truncated buffer.
func DecodeRecord(buf []byte) (Key, Record, bool) { return decodeRecord(buf) }

// Hex returns the key's lowercase hex form — the spelling used in
// remote-cache URLs (/v1/qor/{key}).
func (k Key) Hex() string { return hex.EncodeToString(k[:]) }

// KeyFromHex parses a 64-character hex key. ok is false for any other
// length or non-hex input.
func KeyFromHex(s string) (Key, bool) {
	var k Key
	if len(s) != hex.EncodedLen(len(k)) {
		return k, false
	}
	if _, err := hex.Decode(k[:], []byte(s)); err != nil {
		return k, false
	}
	return k, true
}
