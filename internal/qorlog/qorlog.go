// Package qorlog is the durable, crash-safe result log of the ChatLS
// serving stack: an append-only binary on-disk log of
//
//	(design content hash, script hash, library fingerprint) → QoR record
//
// entries in the style of ninja's build log. Every synthesis result the
// daemon or the experiment harness computes is appended under a
// collision-resistant content key; on the next start the log is replayed to
// repopulate the in-memory caches, so a crash or deploy no longer throws
// away hours of Pass@k evaluation work.
//
// The format is built to survive crashes mid-write:
//
//   - an 8-byte header (magic + version) identifies the file;
//   - each record is length-framed and carries a CRC-32C of its payload;
//   - Open performs a single-pass scan that accepts every fully-written
//     record and truncates the file at the first torn or corrupt one
//     instead of failing — the recovered-record and dropped-byte counts are
//     surfaced in RecoveryStats for the daemon's metrics;
//   - recompaction (dropping entries superseded by later appends for the
//     same key) writes a fresh file beside the log and swaps it in with an
//     atomic rename, so a crash at any step leaves either the old or the
//     new log fully intact.
//
// All writes go through an optional resilience.DiskInjector so short
// writes, fsync failures, and mid-write kills are exercised by seeded
// tests, not just trusted.
package qorlog

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"repro/internal/resilience"
)

// Key is the content address of one logged result: a SHA-256 over every
// input that shapes the QoR (library fingerprint, design sources, script).
// Derive with KeyOf so all producers frame identically.
type Key [sha256.Size]byte

// KeyOf hashes the parts with length framing, so no two distinct part
// sequences share a byte stream. Callers pass, in order: the library
// fingerprint, each (file name, file content) pair, and the script text.
func KeyOf(parts ...string) Key {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// Record is one logged quality-of-results summary — the same fields as
// synth.QoR, duplicated here so the log stays a leaf package the way
// ninja's build log is independent of its build graph.
type Record struct {
	Design     string
	Period     float64
	WNS        float64
	CPS        float64
	TNS        float64
	Area       float64
	Leakage    float64
	Cells      int
	Seq        int
	Violations int
}

const (
	// magic identifies a QoR log file; the final byte is the format version.
	magic      = "QoRLOG\x00"
	logVersion = 1
	headerLen  = len(magic) + 1

	// frameLen is the per-record framing: payload length + CRC-32C.
	frameLen = 8
	// maxPayload bounds a record's framed length; a corrupt length field
	// beyond it is treated as a torn tail rather than allocated.
	maxPayload = 1 << 16
)

// crcTable is the Castagnoli polynomial, hardware-accelerated on the
// platforms the daemon runs on.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// RecoveryStats reports what Open's recovery scan found.
type RecoveryStats struct {
	// Recovered counts fully-written records replayed from the log
	// (including entries later superseded by appends for the same key).
	Recovered int
	// DroppedBytes is how many trailing bytes were truncated because they
	// formed a torn or corrupt record (0 on a clean log). A file whose
	// header itself was unreadable drops its entire length.
	DroppedBytes int64
	// Reset reports that the header was missing or unrecognized and the
	// file was reinitialized from scratch.
	Reset bool
}

// Options tunes a Log. The zero value selects the defaults.
type Options struct {
	// Inject, when set, faults the log's file operations (tests only).
	Inject *resilience.DiskInjector
	// RecompactRatio is the dead-entry fraction (superseded records over
	// total records) beyond which an append triggers recompaction.
	// 0 selects 0.5; negative disables automatic recompaction.
	RecompactRatio float64
	// RecompactMin is the minimum total record count before automatic
	// recompaction is considered (0 selects 64).
	RecompactMin int
}

func (o Options) withDefaults() Options {
	if o.RecompactRatio == 0 {
		o.RecompactRatio = 0.5
	}
	if o.RecompactMin <= 0 {
		o.RecompactMin = 64
	}
	return o
}

// Log is the on-disk append log plus its in-memory replay index. Not safe
// for concurrent use; Store adds the locking (and the serving-path cache).
type Log struct {
	path string
	opts Options
	f    *os.File
	// offset is the end of the last fully-written record — the append
	// position, and the truncation point used to rewind a failed append.
	offset int64
	// index holds the live (latest) record per key; order remembers each
	// key's first appearance so recompaction output is deterministic.
	index map[Key]Record
	order []Key
	// total counts records in the file, including superseded ones.
	total int
	// broken marks a log whose file position could not be restored after a
	// failed append; every later append fails fast.
	broken bool

	stats         RecoveryStats
	appends       int64
	recompactions int64
}

// Open opens (creating if absent) the log at path and replays it. Recovery
// never fails on record-level corruption: torn or corrupt trailing records
// are truncated and counted in Stats(). The returned error is reserved for
// real I/O problems (permissions, unreadable directory).
func Open(path string, opts Options) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("qorlog: open %s: %w", path, err)
	}
	l := &Log{
		path:  path,
		opts:  opts.withDefaults(),
		f:     f,
		index: make(map[Key]Record),
	}
	if err := l.replay(); err != nil {
		f.Close()
		return nil, err
	}
	// A stale temp file from a recompaction interrupted before its rename
	// is dead weight; the rename never happened, so the log itself is whole.
	os.Remove(path + ".tmp")
	return l, nil
}

// replay scans the file once, loading every fully-written record and
// truncating the first torn or corrupt one (and everything after it).
func (l *Log) replay() error {
	size, err := l.f.Seek(0, io.SeekEnd)
	if err != nil {
		return fmt.Errorf("qorlog: seek %s: %w", l.path, err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("qorlog: seek %s: %w", l.path, err)
	}

	if size == 0 {
		return l.writeHeader()
	}
	hdr := make([]byte, headerLen)
	if _, err := io.ReadFull(l.f, hdr); err != nil ||
		string(hdr[:len(magic)]) != magic || hdr[len(magic)] != logVersion {
		// Not a (current-version) QoR log. Reinitialize: the data is
		// unreadable either way, and recovery must yield an appendable log.
		l.stats.Reset = true
		l.stats.DroppedBytes = size
		if err := l.f.Truncate(0); err != nil {
			return fmt.Errorf("qorlog: reset %s: %w", l.path, err)
		}
		if _, err := l.f.Seek(0, io.SeekStart); err != nil {
			return fmt.Errorf("qorlog: seek %s: %w", l.path, err)
		}
		return l.writeHeader()
	}

	l.offset = int64(headerLen)
	var frame [frameLen]byte
	buf := make([]byte, 0, 256)
	for {
		if _, err := io.ReadFull(l.f, frame[:]); err != nil {
			break // clean EOF or torn frame header: stop either way
		}
		n := binary.LittleEndian.Uint32(frame[0:4])
		sum := binary.LittleEndian.Uint32(frame[4:8])
		if n == 0 || n > maxPayload {
			break
		}
		if cap(buf) < int(n) {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(l.f, buf); err != nil {
			break
		}
		if crc32.Checksum(buf, crcTable) != sum {
			break
		}
		key, rec, ok := decodeRecord(buf)
		if !ok {
			break
		}
		l.remember(key, rec)
		l.offset += int64(frameLen) + int64(n)
		l.stats.Recovered++
	}

	if l.offset < size {
		l.stats.DroppedBytes = size - l.offset
		if err := l.f.Truncate(l.offset); err != nil {
			return fmt.Errorf("qorlog: truncate torn tail of %s: %w", l.path, err)
		}
	}
	if _, err := l.f.Seek(l.offset, io.SeekStart); err != nil {
		return fmt.Errorf("qorlog: seek %s: %w", l.path, err)
	}
	return nil
}

// remember folds one replayed or appended record into the index.
func (l *Log) remember(key Key, rec Record) {
	if _, seen := l.index[key]; !seen {
		l.order = append(l.order, key)
	}
	l.index[key] = rec
	l.total++
}

func (l *Log) writeHeader() error {
	hdr := append([]byte(magic), logVersion)
	if err := l.write(l.f, hdr); err != nil {
		return fmt.Errorf("qorlog: write header of %s: %w", l.path, err)
	}
	l.offset = int64(headerLen)
	return nil
}

// write performs one fault-injectable write to f.
func (l *Log) write(f *os.File, p []byte) error {
	allow, ferr := l.opts.Inject.Write(len(p))
	if allow > len(p) {
		allow = len(p)
	}
	var werr error
	if allow > 0 {
		var n int
		n, werr = f.Write(p[:allow])
		if werr == nil && n < allow {
			werr = io.ErrShortWrite
		}
	}
	if ferr != nil {
		return ferr
	}
	if werr != nil {
		return werr
	}
	if allow < len(p) {
		return io.ErrShortWrite
	}
	return nil
}

// sync performs one fault-injectable fsync of f.
func (l *Log) sync(f *os.File) error {
	if err := l.opts.Inject.Sync(); err != nil {
		return err
	}
	return f.Sync()
}

// Get returns the live record for key.
func (l *Log) Get(key Key) (Record, bool) {
	rec, ok := l.index[key]
	return rec, ok
}

// Len returns the number of live (distinct-key) records.
func (l *Log) Len() int { return len(l.index) }

// Dead returns the number of superseded records still occupying file space.
func (l *Log) Dead() int { return l.total - len(l.index) }

// Stats returns the recovery scan's findings.
func (l *Log) Stats() RecoveryStats { return l.stats }

// Appends returns the number of records appended in this session.
func (l *Log) Appends() int64 { return l.appends }

// Recompactions returns how many recompaction rewrites completed.
func (l *Log) Recompactions() int64 { return l.recompactions }

// Each calls fn for every live record in deterministic (first-append)
// order — the warm-restart repopulation path.
func (l *Log) Each(fn func(Key, Record)) {
	for _, k := range l.order {
		if rec, ok := l.index[k]; ok {
			fn(k, rec)
		}
	}
}

// Append writes one record. On a write failure the log rewinds (truncates)
// to the last fully-written record so a retry starts from a clean tail; if
// the rewind itself fails the log is marked broken and every later append
// fails fast with the original error. The in-memory index is only updated
// on success.
func (l *Log) Append(key Key, rec Record) error {
	if l.broken {
		return fmt.Errorf("qorlog: %s: log broken by earlier unrecoverable write failure", l.path)
	}
	payload := encodeRecord(key, rec)
	frame := make([]byte, frameLen, frameLen+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
	frame = append(frame, payload...)

	if err := l.write(l.f, frame); err != nil {
		// Rewind so the torn bytes cannot masquerade as a record prefix for
		// the next append. A killed writer is the one case where no rewind
		// runs — the simulated process is dead, and the torn tail it leaves
		// is exactly what recovery on reopen handles.
		if l.opts.Inject.Killed() {
			l.broken = true
		} else if terr := l.f.Truncate(l.offset); terr != nil {
			l.broken = true
		} else if _, serr := l.f.Seek(l.offset, io.SeekStart); serr != nil {
			l.broken = true
		}
		return fmt.Errorf("qorlog: append to %s: %w", l.path, err)
	}
	l.offset += int64(len(frame))
	l.remember(key, rec)
	l.appends++

	if r := l.opts.RecompactRatio; r > 0 && l.total >= l.opts.RecompactMin &&
		float64(l.Dead()) > r*float64(l.total) {
		// Best-effort: a failed recompaction leaves the old log intact and
		// appends continue against it.
		l.recompact()
	}
	return nil
}

// Sync makes appended records durable.
func (l *Log) Sync() error {
	return l.sync(l.f)
}

// Close syncs and closes the file. The log is unusable afterwards.
func (l *Log) Close() error {
	serr := l.sync(l.f)
	cerr := l.f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// Recompact rewrites the log with only live records, reclaiming the space
// of superseded entries. The rewrite is crash-safe at every step: the new
// file is fully written and fsynced beside the log, then swapped in with an
// atomic rename; a crash before the rename leaves the old log untouched, a
// crash after it leaves the compact log fully valid.
func (l *Log) Recompact() error {
	return l.recompact()
}

func (l *Log) recompact() error {
	tmpPath := l.path + ".tmp"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("qorlog: recompact %s: %w", l.path, err)
	}
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	if err := l.write(tmp, append([]byte(magic), logVersion)); err != nil {
		return cleanup(fmt.Errorf("qorlog: recompact %s: %w", l.path, err))
	}
	offset := int64(headerLen)
	for _, k := range l.order {
		rec, ok := l.index[k]
		if !ok {
			continue
		}
		payload := encodeRecord(k, rec)
		frame := make([]byte, frameLen, frameLen+len(payload))
		binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
		frame = append(frame, payload...)
		if err := l.write(tmp, frame); err != nil {
			return cleanup(fmt.Errorf("qorlog: recompact %s: %w", l.path, err))
		}
		offset += int64(len(frame))
	}
	if err := l.sync(tmp); err != nil {
		return cleanup(fmt.Errorf("qorlog: recompact %s: %w", l.path, err))
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("qorlog: recompact %s: %w", l.path, err)
	}
	if err := os.Rename(tmpPath, l.path); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("qorlog: recompact %s: %w", l.path, err)
	}
	syncDir(l.path)

	// The old descriptor points at the unlinked inode; swap to the new file.
	nf, err := os.OpenFile(l.path, os.O_RDWR, 0o644)
	if err != nil {
		// The compact log is safely on disk but this process cannot append
		// to it anymore; mark broken rather than keep writing to a ghost.
		l.broken = true
		return fmt.Errorf("qorlog: reopen after recompact %s: %w", l.path, err)
	}
	if _, err := nf.Seek(offset, io.SeekStart); err != nil {
		nf.Close()
		l.broken = true
		return fmt.Errorf("qorlog: reopen after recompact %s: %w", l.path, err)
	}
	l.f.Close()
	l.f = nf
	l.offset = offset
	l.total = len(l.index)
	l.recompactions++
	return nil
}

// syncDir fsyncs the directory holding path so the rename itself is
// durable. Best-effort: some filesystems refuse directory fsync.
func syncDir(path string) {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// encodeRecord serializes key+record:
//
//	key     [32]byte
//	design  uvarint length + bytes
//	period, wns, cps, tns, area, leakage  8-byte LE float bits each
//	cells, seq, violations  uvarint each
func encodeRecord(key Key, rec Record) []byte {
	buf := make([]byte, 0, len(key)+len(rec.Design)+8*7+6)
	buf = append(buf, key[:]...)
	buf = binary.AppendUvarint(buf, uint64(len(rec.Design)))
	buf = append(buf, rec.Design...)
	for _, v := range [...]float64{rec.Period, rec.WNS, rec.CPS, rec.TNS, rec.Area, rec.Leakage} {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	buf = binary.AppendUvarint(buf, uint64(rec.Cells))
	buf = binary.AppendUvarint(buf, uint64(rec.Seq))
	buf = binary.AppendUvarint(buf, uint64(rec.Violations))
	return buf
}

// decodeRecord parses an encodeRecord payload. ok is false when the bytes
// do not round-trip exactly (short fields or trailing garbage), which the
// recovery scan treats like a checksum mismatch.
func decodeRecord(buf []byte) (Key, Record, bool) {
	var key Key
	var rec Record
	if len(buf) < len(key) {
		return key, rec, false
	}
	copy(key[:], buf)
	buf = buf[len(key):]

	n, sz := binary.Uvarint(buf)
	if sz <= 0 || n > uint64(len(buf)-sz) {
		return key, rec, false
	}
	buf = buf[sz:]
	rec.Design = string(buf[:n])
	buf = buf[n:]

	floats := [...]*float64{&rec.Period, &rec.WNS, &rec.CPS, &rec.TNS, &rec.Area, &rec.Leakage}
	for _, p := range floats {
		if len(buf) < 8 {
			return key, rec, false
		}
		*p = math.Float64frombits(binary.LittleEndian.Uint64(buf))
		buf = buf[8:]
	}
	ints := [...]*int{&rec.Cells, &rec.Seq, &rec.Violations}
	for _, p := range ints {
		v, sz := binary.Uvarint(buf)
		if sz <= 0 || v > math.MaxInt32 {
			return key, rec, false
		}
		*p = int(v)
		buf = buf[sz:]
	}
	if len(buf) != 0 {
		return key, rec, false
	}
	return key, rec, true
}
