package qorlog

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/resilience"
)

func TestStoreNilIsInert(t *testing.T) {
	var s *Store
	if _, ok := s.Get(testKey(0)); ok {
		t.Fatal("nil store must miss")
	}
	s.Put(testKey(0), testRecord(0))
	if s.Degraded() || s.Len() != 0 || s.Stats() != (StoreStats{}) {
		t.Fatal("nil store must report zeros")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("nil Sync: %v", err)
	}
}

func TestStoreWarmRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "qor.log")
	s1, err := OpenStore(path, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	for i := 0; i < n; i++ {
		s1.Put(testKey(i), testRecord(i))
	}
	if err := s1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	s2, err := OpenStore(path, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st := s2.Stats()
	if st.Warmed != n || st.Recovered != n {
		t.Fatalf("stats = %+v, want %d warmed and recovered", st, n)
	}
	for i := 0; i < n; i++ {
		rec, ok := s2.Get(testKey(i))
		if !ok || rec != testRecord(i) {
			t.Fatalf("record %d not served bit-identically after warm restart", i)
		}
	}
	if got := s2.Stats().Hits; got != n {
		t.Fatalf("hits = %d, want %d", got, n)
	}
}

func TestStorePutDedupSkipsUnchanged(t *testing.T) {
	path := filepath.Join(t.TempDir(), "qor.log")
	s, err := OpenStore(path, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 5; i++ {
		s.Put(testKey(0), testRecord(0)) // unchanged: a repeat sweep
	}
	s.Put(testKey(0), testRecord(1)) // changed result: must append
	if got := s.Stats().Appends; got != 2 {
		t.Fatalf("appends = %d, want 2 (dedup must skip identical re-puts)", got)
	}
}

// TestStoreGetFallsBackToLogIndex: a record evicted from the tiny LRU is
// still served from the log's replay index (and re-promoted).
func TestStoreGetFallsBackToLogIndex(t *testing.T) {
	path := filepath.Join(t.TempDir(), "qor.log")
	s, err := OpenStore(path, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 6; i++ {
		s.Put(testKey(i), testRecord(i))
	}
	rec, ok := s.Get(testKey(0)) // long since evicted from the 2-entry LRU
	if !ok || rec != testRecord(0) {
		t.Fatal("evicted record must still hit via the log index")
	}
}

// TestStoreDegradesToMemoryOnFatalDiskError: a killed writer must not take
// requests down — the store warns once, stops writing, and keeps serving.
func TestStoreDegradesToMemoryOnFatalDiskError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "qor.log")
	inj := resilience.NewDiskInjector(
		resilience.DiskFault{Op: resilience.DiskWrite, Mode: resilience.DiskKill, Calls: []int{3}})
	s, err := OpenStore(path, 0, Options{Inject: inj})
	if err != nil {
		t.Fatal(err)
	}
	var warnings []string
	s.warnf = func(format string, args ...any) {
		warnings = append(warnings, fmt.Sprintf(format, args...))
	}

	s.Put(testKey(0), testRecord(0)) // write 2: clean
	s.Put(testKey(1), testRecord(1)) // write 3: killed -> degrade
	if !s.Degraded() {
		t.Fatal("store must degrade after a fatal append failure")
	}
	if len(warnings) != 1 {
		t.Fatalf("got %d warnings, want exactly 1", len(warnings))
	}

	// Degraded mode keeps serving: puts cache in memory, gets still answer.
	s.Put(testKey(2), testRecord(2))
	for i := 0; i < 3; i++ {
		if rec, ok := s.Get(testKey(i)); !ok || rec != testRecord(i) {
			t.Fatalf("degraded store dropped record %d", i)
		}
	}
	if len(warnings) != 1 {
		t.Fatal("degradation must warn once, not per request")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("closing a degraded store must not error: %v", err)
	}
}

// TestStoreRetriesTransientDiskError: one short write is rewound and
// retried without degrading.
func TestStoreRetriesTransientDiskError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "qor.log")
	inj := resilience.NewDiskInjector(
		resilience.DiskFault{Op: resilience.DiskWrite, Mode: resilience.DiskShort, Calls: []int{2}})
	s, err := OpenStore(path, 0, Options{Inject: inj})
	if err != nil {
		t.Fatal(err)
	}
	s.Put(testKey(0), testRecord(0)) // first attempt short-writes, retry lands
	if s.Degraded() {
		t.Fatal("a transient error must not degrade the store")
	}
	st := s.Stats()
	if st.AppendErrors != 1 || st.Appends != 1 {
		t.Fatalf("stats = %+v, want 1 failed attempt and 1 landed append", st)
	}
	s.Close()

	s2, err := OpenStore(path, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec, ok := s2.Get(testKey(0)); !ok || rec != testRecord(0) {
		t.Fatal("retried record must be durable")
	}
}

func TestMemoryStore(t *testing.T) {
	s := NewMemoryStore(0)
	s.Put(testKey(0), testRecord(0))
	if rec, ok := s.Get(testKey(0)); !ok || rec != testRecord(0) {
		t.Fatal("memory store must serve its puts")
	}
	if st := s.Stats(); st.Appends != 0 || st.Hits != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreConcurrent hammers one store from many goroutines (-race is the
// assertion).
func TestStoreConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "qor.log")
	s, err := OpenStore(path, 16, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := testKey(i % 10)
				s.Put(k, testRecord(i%10))
				s.Get(k)
				s.Stats()
			}
		}(g)
	}
	wg.Wait()
	if s.Degraded() {
		t.Fatal("unfaulted store must not degrade")
	}
}
