package qorlog

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/resilience"
)

func testRecord(i int) Record {
	return Record{
		Design:     "design",
		Period:     0.85,
		WNS:        -0.25 * float64(i),
		CPS:        0.1 * float64(i),
		TNS:        -1.5 * float64(i),
		Area:       1234.5 + float64(i),
		Leakage:    10.25,
		Cells:      100 + i,
		Seq:        40 + i,
		Violations: i,
	}
}

func testKey(i int) Key {
	return KeyOf("lib-fp", "top.v", "module top; endmodule", "compile", string(rune('a'+i)))
}

func mustOpen(t *testing.T, path string, opts Options) *Log {
	t.Helper()
	l, err := Open(path, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	return l
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatalf("stat %s: %v", path, err)
	}
	return fi.Size()
}

func TestKeyOfFraming(t *testing.T) {
	// Length framing: moving a boundary between parts must change the key.
	if KeyOf("ab", "c") == KeyOf("a", "bc") {
		t.Fatal("KeyOf must frame part boundaries")
	}
	if KeyOf("a", "b") == KeyOf("a", "b", "") {
		t.Fatal("KeyOf must distinguish an absent part from an empty one")
	}
	if KeyOf("x", "y") != KeyOf("x", "y") {
		t.Fatal("KeyOf must be deterministic")
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "qor.log")
	l := mustOpen(t, path, Options{})
	const n = 10
	for i := 0; i < n; i++ {
		if err := l.Append(testKey(i), testRecord(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	l2 := mustOpen(t, path, Options{})
	defer l2.Close()
	st := l2.Stats()
	if st.Recovered != n || st.DroppedBytes != 0 || st.Reset {
		t.Fatalf("recovery stats = %+v, want %d clean records", st, n)
	}
	for i := 0; i < n; i++ {
		rec, ok := l2.Get(testKey(i))
		if !ok {
			t.Fatalf("record %d missing after reopen", i)
		}
		if rec != testRecord(i) {
			t.Fatalf("record %d = %+v, want %+v (must be bit-identical)", i, rec, testRecord(i))
		}
	}
}

func TestLatestAppendWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "qor.log")
	l := mustOpen(t, path, Options{})
	k := testKey(0)
	l.Append(k, testRecord(1))
	l.Append(k, testRecord(2))
	if l.Len() != 1 || l.Dead() != 1 {
		t.Fatalf("Len=%d Dead=%d, want 1 live + 1 dead", l.Len(), l.Dead())
	}
	l.Close()
	l2 := mustOpen(t, path, Options{})
	defer l2.Close()
	if rec, _ := l2.Get(k); rec != testRecord(2) {
		t.Fatalf("reopen returned %+v, want the later record", rec)
	}
}

// TestTornTailRecovery truncates the file at every byte offset inside the
// last record and checks that recovery keeps every fully-written record,
// drops only the torn tail, and leaves the log appendable.
func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.log")
	l := mustOpen(t, ref, Options{})
	for i := 0; i < 3; i++ {
		l.Append(testKey(i), testRecord(i))
	}
	l.Close()
	full, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}

	// Find the byte offsets of the three record boundaries by re-encoding.
	offsets := []int64{int64(headerLen)}
	off := int64(headerLen)
	for i := 0; i < 3; i++ {
		off += int64(frameLen + len(encodeRecord(testKey(i), testRecord(i))))
		offsets = append(offsets, off)
	}
	if off != int64(len(full)) {
		t.Fatalf("re-encoded size %d != file size %d", off, len(full))
	}

	for cut := offsets[2] + 1; cut < offsets[3]; cut++ {
		path := filepath.Join(dir, "torn.log")
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		lg := mustOpen(t, path, Options{})
		st := lg.Stats()
		if st.Recovered != 2 {
			t.Fatalf("cut at %d: recovered %d records, want 2", cut, st.Recovered)
		}
		if st.DroppedBytes != cut-offsets[2] {
			t.Fatalf("cut at %d: dropped %d bytes, want %d", cut, st.DroppedBytes, cut-offsets[2])
		}
		if _, ok := lg.Get(testKey(2)); ok {
			t.Fatalf("cut at %d: torn record must not be recovered", cut)
		}
		// The log must be re-appendable after recovery.
		if err := lg.Append(testKey(9), testRecord(9)); err != nil {
			t.Fatalf("cut at %d: append after recovery: %v", cut, err)
		}
		lg.Close()
		lg2 := mustOpen(t, path, Options{})
		if lg2.Stats().Recovered != 3 || lg2.Stats().DroppedBytes != 0 {
			t.Fatalf("cut at %d: log dirty after recovery+append: %+v", cut, lg2.Stats())
		}
		lg2.Close()
	}
}

// TestCorruptRecordTruncates flips one payload byte of the middle record:
// recovery must keep the records before it and drop it and everything after.
func TestCorruptRecordTruncates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "qor.log")
	l := mustOpen(t, path, Options{})
	for i := 0; i < 3; i++ {
		l.Append(testKey(i), testRecord(i))
	}
	l.Close()

	rec0 := int64(headerLen + frameLen + len(encodeRecord(testKey(0), testRecord(0))))
	data, _ := os.ReadFile(path)
	data[rec0+frameLen+5] ^= 0xFF // inside record 1's payload
	os.WriteFile(path, data, 0o644)

	lg := mustOpen(t, path, Options{})
	defer lg.Close()
	st := lg.Stats()
	if st.Recovered != 1 {
		t.Fatalf("recovered %d records, want 1 (corruption must stop the scan)", st.Recovered)
	}
	if st.DroppedBytes != int64(len(data))-rec0 {
		t.Fatalf("dropped %d bytes, want %d", st.DroppedBytes, int64(len(data))-rec0)
	}
	if fileSize(t, path) != rec0 {
		t.Fatalf("file not truncated at the corrupt record")
	}
}

func TestBadHeaderResets(t *testing.T) {
	path := filepath.Join(t.TempDir(), "qor.log")
	os.WriteFile(path, []byte("this is not a QoR log at all"), 0o644)
	lg := mustOpen(t, path, Options{})
	st := lg.Stats()
	if !st.Reset || st.DroppedBytes != 28 || st.Recovered != 0 {
		t.Fatalf("stats = %+v, want full reset of 28 bytes", st)
	}
	if err := lg.Append(testKey(0), testRecord(0)); err != nil {
		t.Fatalf("append after reset: %v", err)
	}
	lg.Close()
	lg2 := mustOpen(t, path, Options{})
	defer lg2.Close()
	if lg2.Stats().Recovered != 1 {
		t.Fatal("record appended after reset must survive reopen")
	}
}

func TestRecompactionReclaimsDeadEntries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "qor.log")
	l := mustOpen(t, path, Options{RecompactMin: 8})
	// Two live keys, repeatedly superseded: the dead ratio crosses 0.5.
	for i := 0; i < 20; i++ {
		l.Append(testKey(i%2), testRecord(i))
	}
	if l.Recompactions() == 0 {
		t.Fatal("dead-entry ratio should have triggered recompaction")
	}
	if l.Dead() != 0 && l.Recompactions() > 0 && l.total > 4 {
		t.Fatalf("recompaction left total=%d dead=%d", l.total, l.Dead())
	}
	// Appends keep working against the swapped-in file.
	if err := l.Append(testKey(7), testRecord(7)); err != nil {
		t.Fatalf("append after recompaction: %v", err)
	}
	l.Close()

	l2 := mustOpen(t, path, Options{})
	defer l2.Close()
	if got, _ := l2.Get(testKey(0)); got != testRecord(18) {
		t.Fatalf("key 0 after recompaction = %+v, want iteration 18's record", got)
	}
	if got, _ := l2.Get(testKey(1)); got != testRecord(19) {
		t.Fatalf("key 1 after recompaction = %+v, want iteration 19's record", got)
	}
	if _, ok := l2.Get(testKey(7)); !ok {
		t.Fatal("post-recompaction append lost")
	}
}

// TestRecompactionCrashLeavesOldLogIntact fails the recompaction rewrite
// mid-way: the original log must stay fully readable and appendable.
func TestRecompactionCrashLeavesOldLogIntact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "qor.log")
	l := mustOpen(t, path, Options{RecompactRatio: -1}) // manual recompaction only
	for i := 0; i < 6; i++ {
		l.Append(testKey(i%2), testRecord(i))
	}
	// The injector is attached only now, so its write count starts here: the
	// recompaction's tmp header is write 1 — fail its first record write.
	l.opts.Inject = resilience.NewDiskInjector(
		resilience.DiskFault{Op: resilience.DiskWrite, Mode: resilience.DiskFail, Calls: []int{2}})
	if err := l.Recompact(); err == nil {
		t.Fatal("recompaction should report the injected failure")
	}
	l.opts.Inject = nil
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("failed recompaction must remove its temp file")
	}
	if err := l.Append(testKey(5), testRecord(5)); err != nil {
		t.Fatalf("append after failed recompaction: %v", err)
	}
	l.Close()

	l2 := mustOpen(t, path, Options{})
	defer l2.Close()
	if l2.Stats().DroppedBytes != 0 || l2.Len() != 3 { // keys 0, 1, and 5
		t.Fatalf("old log damaged by failed recompaction: %+v live=%d", l2.Stats(), l2.Len())
	}
}

// TestShortWriteRewindsAndRetries: a short write tears the tail; Append's
// rewind truncates it so an immediate retry lands cleanly.
func TestShortWriteRewindsAndRetries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "qor.log")
	inj := resilience.NewDiskInjector(
		resilience.DiskFault{Op: resilience.DiskWrite, Mode: resilience.DiskShort, Calls: []int{3}})
	l := mustOpen(t, path, Options{Inject: inj})
	if err := l.Append(testKey(0), testRecord(0)); err != nil {
		t.Fatalf("append 0: %v", err)
	}
	err := l.Append(testKey(1), testRecord(1))
	if !resilience.IsRetryableDisk(err) {
		t.Fatalf("short write should classify as retryable, got %v", err)
	}
	if err := l.Append(testKey(1), testRecord(1)); err != nil {
		t.Fatalf("retry after rewind: %v", err)
	}
	l.Close()

	l2 := mustOpen(t, path, Options{})
	defer l2.Close()
	if st := l2.Stats(); st.Recovered != 2 || st.DroppedBytes != 0 {
		t.Fatalf("stats after rewound retry = %+v, want 2 clean records", st)
	}
}

// TestKillDuringAppend is the acceptance scenario: a fault-injected
// mid-write kill leaves a torn record on disk; reopening recovers every
// fully-written record, drops only the torn tail, and serves records
// bit-identical to what was appended.
func TestKillDuringAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "qor.log")
	const live = 5
	// Header is write 1, the five good appends are writes 2-6; kill fires
	// mid-way through the sixth record's write (call 7).
	inj := resilience.NewDiskInjector(
		resilience.DiskFault{Op: resilience.DiskWrite, Mode: resilience.DiskKill, Calls: []int{live + 2}})
	l := mustOpen(t, path, Options{Inject: inj})
	for i := 0; i < live; i++ {
		if err := l.Append(testKey(i), testRecord(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	err := l.Append(testKey(live), testRecord(live))
	if !errors.Is(err, resilience.ErrDiskKilled) {
		t.Fatalf("killed append returned %v, want ErrDiskKilled", err)
	}
	if resilience.IsRetryableDisk(err) {
		t.Fatal("a killed writer must classify as fatal, not retryable")
	}
	// The process is dead: no Close, no flush. The rewind could not run
	// either (the injector fails all post-kill ops), so the tail is torn.
	cleanEnd := l.offset

	l2 := mustOpen(t, path, Options{})
	defer l2.Close()
	st := l2.Stats()
	if st.Recovered != live {
		t.Fatalf("recovered %d records, want every fully-written one (%d)", st.Recovered, live)
	}
	if st.DroppedBytes == 0 {
		t.Fatal("the torn record must be dropped and counted")
	}
	if fileSize(t, path) != cleanEnd {
		t.Fatalf("file size %d after recovery, want truncation to %d", fileSize(t, path), cleanEnd)
	}
	for i := 0; i < live; i++ {
		rec, ok := l2.Get(testKey(i))
		if !ok || rec != testRecord(i) {
			t.Fatalf("record %d not bit-identical after crash recovery", i)
		}
	}
	if _, ok := l2.Get(testKey(live)); ok {
		t.Fatal("the torn record must not surface")
	}
	if err := l2.Append(testKey(live), testRecord(live)); err != nil {
		t.Fatalf("append after crash recovery: %v", err)
	}
}
