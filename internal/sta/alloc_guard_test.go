//go:build !race

package sta_test

import (
	"testing"

	"repro/internal/designs"
	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/sta"
)

// TestUpdateAllocGuard pins the incremental timer's delay-only path at zero
// steady-state allocations: once the worklist heaps have grown to the cone
// size, resizing a cell and refreshing timing must not allocate. The budget
// is part of the perf contract (DESIGN.md "Memory and GC discipline");
// skipped under -race, which changes allocation counts.
func TestUpdateAllocGuard(t *testing.T) {
	d := designs.Benchmarks()[0]
	nl := elaborate(t, d)
	tm, err := sta.Analyze(nl, eqLib.WireLoad(""), sta.Constraints{Period: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	// Pick a resizable combinational cell and flip it between two drive
	// strengths, so every run is a real delay-only edit.
	var c *netlist.Cell
	var big *liberty.Cell
	for _, cand := range nl.Cells {
		if cand.IsSeq() {
			continue
		}
		if up := nl.Lib.Upsize(cand.Ref); up != nil && up != cand.Ref {
			c, big = cand, up
			break
		}
	}
	if c == nil {
		t.Skip("no resizable cell in design")
	}
	refs := [2]*liberty.Cell{big, c.Ref}
	changed := []*netlist.Cell{c}
	flip := 0
	// Warm once so the heaps reach steady-state capacity (AllocsPerRun's
	// own warm-up run also counts toward this).
	nl.SetRef(c, refs[flip&1])
	flip++
	if err := tm.Update(changed); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		nl.SetRef(c, refs[flip&1])
		flip++
		if err := tm.Update(changed); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 0
	if allocs > budget {
		t.Errorf("delay-only Update allocs/op = %v, budget %d", allocs, budget)
	}
}
