package sta

import (
	"math"
	"strings"
	"testing"

	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/verilog"
)

func elab(t *testing.T, src, top string) *netlist.Netlist {
	t.Helper()
	f, err := verilog.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	nl, err := netlist.Elaborate(f, top, nil, liberty.Nangate45())
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	return nl
}

func analyze(t *testing.T, nl *netlist.Netlist, period float64) *Timing {
	t.Helper()
	tm, err := Analyze(nl, nl.Lib.WireLoad("5K_heavy_1k"), Constraints{Period: period})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return tm
}

const pipelineSrc = `
module pipe(input clk, input [7:0] a, input [7:0] b, output [7:0] q);
    reg [7:0] r1, q;
    always @(posedge clk) begin
        r1 <= a + b;
        q <= r1 + a;
    end
endmodule
`

func TestAnalyzeBasic(t *testing.T) {
	nl := elab(t, pipelineSrc, "pipe")
	tm := analyze(t, nl, 5.0)
	if tm.CPS() <= 0 {
		t.Errorf("8-bit adder at 5ns should meet timing easily, CPS = %g", tm.CPS())
	}
	if tm.WNS() != 0 {
		t.Errorf("WNS = %g, want 0", tm.WNS())
	}
	if tm.TNS() != 0 {
		t.Errorf("TNS = %g, want 0", tm.TNS())
	}
	if len(tm.Endpoints()) == 0 {
		t.Fatal("no endpoints")
	}
	// Endpoints sorted worst first.
	ends := tm.Endpoints()
	for i := 1; i < len(ends); i++ {
		if ends[i].Slack < ends[i-1].Slack {
			t.Fatal("endpoints not sorted by slack")
		}
	}
}

func TestTightPeriodViolates(t *testing.T) {
	nl := elab(t, pipelineSrc, "pipe")
	tm := analyze(t, nl, 0.15)
	if tm.WNS() >= 0 {
		t.Errorf("0.15ns period must violate, WNS = %g", tm.WNS())
	}
	if tm.TNS() >= tm.WNS() {
		t.Errorf("TNS (%g) must be <= WNS (%g) with multiple violating endpoints", tm.TNS(), tm.WNS())
	}
	if tm.CPS() != tm.WNS() {
		t.Errorf("CPS (%g) should equal WNS (%g) when violating", tm.CPS(), tm.WNS())
	}
}

func TestDeeperLogicIsSlower(t *testing.T) {
	shallow := elab(t, `
module s(input clk, input [3:0] a, input [3:0] b, output [3:0] q);
    reg [3:0] q;
    always @(posedge clk) q <= a ^ b;
endmodule`, "s")
	deep := elab(t, `
module d(input clk, input [15:0] a, input [15:0] b, output [15:0] q);
    reg [15:0] q;
    always @(posedge clk) q <= a + b;
endmodule`, "d")
	ts := analyze(t, shallow, 3.0)
	td := analyze(t, deep, 3.0)
	if td.CPS() >= ts.CPS() {
		t.Errorf("16-bit adder (CPS %g) should be slower than 4-bit xor (CPS %g)", td.CPS(), ts.CPS())
	}
}

func TestArrivalMonotoneAlongPath(t *testing.T) {
	nl := elab(t, pipelineSrc, "pipe")
	tm := analyze(t, nl, 2.0)
	p := tm.CriticalPath()
	if len(p.Steps) < 2 {
		t.Fatalf("critical path too short: %d steps", len(p.Steps))
	}
	for i := 1; i < len(p.Steps); i++ {
		if p.Steps[i].Arrival < p.Steps[i-1].Arrival {
			t.Errorf("arrival not monotone at step %d: %g < %g", i, p.Steps[i].Arrival, p.Steps[i-1].Arrival)
		}
	}
	if p.Startpoint == "" || p.Endpoint == "" {
		t.Errorf("path missing start/end: %+v", p)
	}
	// The path must end at a register D pin or a primary output.
	if !strings.HasSuffix(p.Endpoint, "/D") && !strings.Contains(p.Endpoint, "q") {
		t.Errorf("unexpected endpoint %q", p.Endpoint)
	}
}

func TestSlackConsistency(t *testing.T) {
	nl := elab(t, pipelineSrc, "pipe")
	tm := analyze(t, nl, 2.0)
	// The worst endpoint slack must equal the minimum net slack over
	// endpoint nets.
	worst := math.Inf(1)
	for _, e := range tm.Endpoints() {
		if e.Slack < worst {
			worst = e.Slack
		}
	}
	if math.Abs(worst-tm.CPS()) > 1e-9 {
		t.Errorf("CPS %g != worst endpoint slack %g", tm.CPS(), worst)
	}
	// Backward propagation: every net on the critical path has slack ~= CPS.
	p := tm.CriticalPath()
	for _, s := range p.Steps {
		if s.Net == nil {
			continue
		}
		if tm.Slack(s.Net) > tm.CPS()+1e-9 {
			t.Errorf("net %s on critical path has slack %g > CPS %g", s.Net.Name, tm.Slack(s.Net), tm.CPS())
		}
	}
}

func TestInputOutputDelay(t *testing.T) {
	nl := elab(t, `
module c(input [3:0] a, output [3:0] y);
    assign y = ~a;
endmodule`, "c")
	wl := nl.Lib.WireLoad("5K_heavy_1k")
	base, err := Analyze(nl, wl, Constraints{Period: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	delayed, err := Analyze(nl, wl, Constraints{Period: 1.0, InputDelay: 0.3, OutputDelay: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	diff := base.CPS() - delayed.CPS()
	if math.Abs(diff-0.5) > 1e-9 {
		t.Errorf("input+output delay should cost 0.5ns of slack, cost %g", diff)
	}
}

func TestCombinationalLoopDetected(t *testing.T) {
	// Build a loop by hand: two inverters in a ring.
	lib := liberty.Nangate45()
	nl := netlist.New("loop", lib)
	a := nl.NewNet("a")
	inv1, err := nl.AddCell(lib.Cell("INV_X1"), "", "loop", a)
	if err != nil {
		t.Fatal(err)
	}
	inv2, err := nl.AddCell(lib.Cell("INV_X1"), "", "loop", inv1.Output)
	if err != nil {
		t.Fatal(err)
	}
	// Close the ring: a is driven by inv2.
	nl.SetInput(inv1, 0, inv2.Output)
	if _, err := Analyze(nl, lib.WireLoad("5K_heavy_1k"), Constraints{Period: 1}); err == nil {
		t.Fatal("combinational loop should be detected")
	} else if !strings.Contains(err.Error(), "loop") {
		t.Errorf("unexpected error %v", err)
	}
}

func TestHighFanoutSlowsNet(t *testing.T) {
	// One inverter driving N loads: delay grows with N.
	lib := liberty.Nangate45()
	build := func(fanout int) *Timing {
		nl := netlist.New("fo", lib)
		in := nl.NewNet("in")
		in.PI = true
		nl.Inputs = append(nl.Inputs, in)
		src, err := nl.AddCell(lib.Cell("INV_X1"), "", "fo", in)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < fanout; i++ {
			sink, err := nl.AddCell(lib.Cell("INV_X1"), "", "fo", src.Output)
			if err != nil {
				t.Fatal(err)
			}
			sink.Output.PO = true
			nl.Outputs = append(nl.Outputs, sink.Output)
		}
		tm, err := Analyze(nl, lib.WireLoad("5K_heavy_1k"), Constraints{Period: 2})
		if err != nil {
			t.Fatal(err)
		}
		return tm
	}
	lo := build(2)
	hi := build(30)
	if hi.CPS() >= lo.CPS() {
		t.Errorf("fanout-30 (CPS %g) should be slower than fanout-2 (CPS %g)", hi.CPS(), lo.CPS())
	}
	viol := hi.MaxFanoutViolations(16)
	if len(viol) != 1 || viol[0].Fanout() != 30 {
		t.Errorf("MaxFanoutViolations = %v, want the fanout-30 net", viol)
	}
	if len(lo.MaxFanoutViolations(16)) != 0 {
		t.Error("fanout-2 design should have no violations")
	}
}

func TestWorstPathsAndCriticalCells(t *testing.T) {
	nl := elab(t, pipelineSrc, "pipe")
	tm := analyze(t, nl, 0.3)
	paths := tm.WorstPaths(3)
	if len(paths) != 3 {
		t.Fatalf("WorstPaths(3) = %d paths", len(paths))
	}
	if paths[0].Slack > paths[1].Slack || paths[1].Slack > paths[2].Slack {
		t.Error("paths not ordered by slack")
	}
	crit := tm.CriticalCells(0)
	if len(crit) == 0 {
		t.Error("violating design must have critical cells")
	}
	for _, c := range crit {
		if c.IsSeq() {
			t.Errorf("sequential cell %s in critical combinational set", c.Name)
		}
	}
}

func TestSequentialLaunchIncludesClkToQ(t *testing.T) {
	nl := elab(t, `
module r(input clk, input d, output q);
    reg i, q;
    always @(posedge clk) begin
        i <= d;
        q <= ~i;
    end
endmodule`, "r")
	tm := analyze(t, nl, 1.0)
	// Find the Q net of the first flop (driving the inverter).
	var qnet *netlist.Net
	for _, c := range nl.Cells {
		if c.IsSeq() {
			for _, p := range c.Output.Sinks {
				if !p.Cell.IsSeq() {
					qnet = c.Output
				}
			}
		}
	}
	if qnet == nil {
		t.Fatal("flop feeding logic not found")
	}
	if tm.Arrival(qnet) < nl.Lib.Cell("DFF_X1").ClkToQ {
		t.Errorf("flop output arrival %g < clk-to-q", tm.Arrival(qnet))
	}
}

func TestInputDriveResistanceLoadsInputs(t *testing.T) {
	// A primary input driving many loads must arrive later than one driving
	// a single load — the external driver has finite strength.
	lib := liberty.Nangate45()
	build := func(fanout int) *Timing {
		nl := netlist.New("d", lib)
		in := nl.NewNet("in")
		in.PI = true
		nl.Inputs = append(nl.Inputs, in)
		for i := 0; i < fanout; i++ {
			c, err := nl.AddCell(lib.Cell("INV_X1"), "", "d", in)
			if err != nil {
				t.Fatal(err)
			}
			c.Output.PO = true
			nl.Outputs = append(nl.Outputs, c.Output)
		}
		tm, err := Analyze(nl, lib.WireLoad("5K_heavy_1k"), Constraints{Period: 2})
		if err != nil {
			t.Fatal(err)
		}
		return tm
	}
	lo := build(1)
	hi := build(40)
	if hi.CPS() >= lo.CPS() {
		t.Errorf("heavily loaded input should be slower: CPS %g vs %g", hi.CPS(), lo.CPS())
	}
}
