package sta

import (
	"sync/atomic"

	"repro/internal/netlist"
)

// Update refreshes timing after netlist edits. changed lists the cells whose
// library reference was swapped (netlist.SetRef/Resize) since the last
// analysis; arrivals are re-propagated only through their fanout cones and
// required times only through the fanin cones of affected nets.
//
// Falls back to a full in-place re-analysis when the netlist topology
// changed (buffering, restructuring, retiming, ungrouping), or when edits
// happened that changed isn't accounting for. Because every recomputation
// uses the same float operations in the same order as the full passes and
// propagation stops on exact equality, the incremental result is
// bit-identical to a fresh Analyze of the edited netlist.
//
// The worklists are heap methods on Timing rather than local closures so a
// delay-only update runs allocation-free; see the alloc guard tests.
func (t *Timing) Update(changed []*netlist.Cell) error {
	nl := t.NL
	if nl.TopoGen() != t.topoGen {
		return t.reanalyze()
	}
	if nl.Gen() == t.gen {
		return nil
	}
	if len(changed) == 0 {
		// Delay edits happened but the caller can't name them: recompute all.
		return t.reanalyze()
	}
	incrementalUpdates.Add(1)
	t.dirty = 0

	// Forward: re-propagate arrivals through the fanout cones.
	for _, c := range changed {
		if c.IsSeq() {
			// New Delay and Setup: output arrival and D-endpoint slack.
			t.seedSource(c.Output)
			t.refreshEndsOnNet(c.Inputs[0])
		} else {
			t.pushFwd(c)
		}
		// The swap changed c's InputCap, so each input net's load — and
		// with it the driving stage's delay — changed too.
		for _, in := range c.Inputs {
			if d := in.Driver; d != nil && !d.IsSeq() {
				t.pushFwd(d)
			} else {
				t.seedSource(in)
			}
		}
	}
	for len(t.fheap) > 0 {
		c := t.popFwd()
		t.inFQ[c.ID] = false
		t.dirty++
		a := t.cellArrival(c)
		if a != t.arr[c.Output.ID] {
			t.arr[c.Output.ID] = a
			t.refreshEndsOnNet(c.Output)
			for _, p := range c.Output.Sinks {
				if !p.Cell.IsSeq() {
					t.pushFwd(p.Cell)
				}
			}
		}
	}

	// Backward: re-propagate required times through the fanin cones. Nets
	// are keyed by their driver's topological position and processed in
	// decreasing order; PI-/flop-/const-driven nets (key -1) depend only on
	// keyed nets and absorb changes without propagating further.
	for _, c := range changed {
		// req of c's inputs depends on c's stage delay (comb) or Setup
		// (seq); req of the driver's other fanin depends on the driver's
		// stage delay, which changed with c's InputCap.
		for _, in := range c.Inputs {
			t.pushBwd(in)
			if d := in.Driver; d != nil && !d.IsSeq() {
				for _, in2 := range d.Inputs {
					t.pushBwd(in2)
				}
			}
		}
	}
	for len(t.bheap) > 0 {
		n := t.popBwd()
		t.inBQ[n.ID] = false
		t.dirty++
		r := t.recomputeReq(n)
		if r != t.req[n.ID] {
			t.req[n.ID] = r
			if d := n.Driver; d != nil && !d.IsSeq() {
				for _, in := range d.Inputs {
					t.pushBwd(in)
				}
			}
		}
	}

	t.gen = nl.Gen()
	observeDirty(t.dirty)
	return nil
}

// seedSource re-evaluates a PI- or flop-driven net whose load changed.
func (t *Timing) seedSource(n *netlist.Net) {
	a, ok := t.sourceArrival(n)
	if !ok {
		return // constant or clock/reset: no arrival
	}
	t.dirty++
	if a != t.arr[n.ID] {
		t.arr[n.ID] = a
		t.refreshEndsOnNet(n)
		for _, p := range n.Sinks {
			if !p.Cell.IsSeq() {
				t.pushFwd(p.Cell)
			}
		}
	}
}

// ----------------------------------------------------------------------------
// Worklist heaps. t.fheap is a min-heap of combinational cells ordered by
// topological position (positions are unique, so keys never tie); t.bheap is
// a max-heap of nets ordered by driver position (-1 for nets without a
// combinational driver — those are mutually independent, so their pop order
// does not matter). The inFQ/inBQ flags deduplicate pushes.

func (t *Timing) pushFwd(c *netlist.Cell) {
	if t.inFQ[c.ID] {
		return
	}
	t.inFQ[c.ID] = true
	h := append(t.fheap, c)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if t.pos[h[p].ID] <= t.pos[h[i].ID] {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	t.fheap = h
}

func (t *Timing) popFwd() *netlist.Cell {
	h := t.fheap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = nil
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < last && t.pos[h[l].ID] < t.pos[h[m].ID] {
			m = l
		}
		if r < last && t.pos[h[r].ID] < t.pos[h[m].ID] {
			m = r
		}
		if m == i {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	t.fheap = h
	return top
}

type netItem struct {
	key int32
	n   *netlist.Net
}

func (t *Timing) bwdKeyOf(n *netlist.Net) int32 {
	if d := n.Driver; d != nil && !d.IsSeq() {
		return t.pos[d.ID]
	}
	return -1
}

func (t *Timing) pushBwd(n *netlist.Net) {
	if t.inBQ[n.ID] {
		return
	}
	t.inBQ[n.ID] = true
	h := append(t.bheap, netItem{t.bwdKeyOf(n), n})
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p].key >= h[i].key {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	t.bheap = h
}

func (t *Timing) popBwd() *netlist.Net {
	h := t.bheap
	top := h[0].n
	last := len(h) - 1
	h[0] = h[last]
	h[last] = netItem{}
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < last && h[l].key > h[m].key {
			m = l
		}
		if r < last && h[r].key > h[m].key {
			m = r
		}
		if m == i {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	t.bheap = h
	return top
}

// ----------------------------------------------------------------------------
// Analysis statistics, surfaced on the chatlsd /metrics endpoint. The package
// keeps plain atomics and an observer hook so it stays free of a dependency
// on internal/metrics.

var (
	fullAnalyses       atomic.Uint64
	incrementalUpdates atomic.Uint64
	dirtyObserver      atomic.Value // of func(int)
)

// FullAnalyses returns the number of full timing analyses run process-wide.
func FullAnalyses() uint64 { return fullAnalyses.Load() }

// IncrementalUpdates returns the number of incremental updates run
// process-wide (excluding topology-change fallbacks, which count as full).
func IncrementalUpdates() uint64 { return incrementalUpdates.Load() }

// SetDirtyNodesObserver registers fn to be called with the dirty-node count
// (nets recomputed) of every incremental update. Pass nil to unregister.
func SetDirtyNodesObserver(fn func(int)) {
	dirtyObserver.Store(fn)
}

func observeDirty(n int) {
	if fn, _ := dirtyObserver.Load().(func(int)); fn != nil {
		fn(n)
	}
}
