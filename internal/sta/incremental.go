package sta

import (
	"sync/atomic"

	"repro/internal/netlist"
)

// Update refreshes timing after netlist edits. changed lists the cells whose
// library reference was swapped (netlist.SetRef/Resize) since the last
// analysis; arrivals are re-propagated only through their fanout cones and
// required times only through the fanin cones of affected nets.
//
// Falls back to a full in-place re-analysis when the netlist topology
// changed (buffering, restructuring, retiming, ungrouping), or when edits
// happened that changed isn't accounting for. Because every recomputation
// uses the same float operations in the same order as the full passes and
// propagation stops on exact equality, the incremental result is
// bit-identical to a fresh Analyze of the edited netlist.
func (t *Timing) Update(changed []*netlist.Cell) error {
	nl := t.NL
	if nl.TopoGen() != t.topoGen {
		return t.reanalyze()
	}
	if nl.Gen() == t.gen {
		return nil
	}
	if len(changed) == 0 {
		// Delay edits happened but the caller can't name them: recompute all.
		return t.reanalyze()
	}
	incrementalUpdates.Add(1)
	dirty := 0

	// Forward: re-propagate arrivals through the fanout cones.
	fh := cellHeap{pos: t.pos, cells: t.fheap[:0]}
	pushCell := func(c *netlist.Cell) {
		if !t.inFQ[c.ID] {
			t.inFQ[c.ID] = true
			fh.push(c)
		}
	}
	// seedSource re-evaluates a PI- or flop-driven net whose load changed.
	seedSource := func(n *netlist.Net) {
		a, ok := t.sourceArrival(n)
		if !ok {
			return // constant or clock/reset: no arrival
		}
		dirty++
		if a != t.arr[n.ID] {
			t.arr[n.ID] = a
			t.refreshEndsOnNet(n)
			for _, p := range n.Sinks {
				if !p.Cell.IsSeq() {
					pushCell(p.Cell)
				}
			}
		}
	}
	for _, c := range changed {
		if c.IsSeq() {
			// New Delay and Setup: output arrival and D-endpoint slack.
			seedSource(c.Output)
			t.refreshEndsOnNet(c.Inputs[0])
		} else {
			pushCell(c)
		}
		// The swap changed c's InputCap, so each input net's load — and
		// with it the driving stage's delay — changed too.
		for _, in := range c.Inputs {
			if d := in.Driver; d != nil && !d.IsSeq() {
				pushCell(d)
			} else {
				seedSource(in)
			}
		}
	}
	for fh.len() > 0 {
		c := fh.pop()
		t.inFQ[c.ID] = false
		dirty++
		a := t.cellArrival(c)
		if a != t.arr[c.Output.ID] {
			t.arr[c.Output.ID] = a
			t.refreshEndsOnNet(c.Output)
			for _, p := range c.Output.Sinks {
				if !p.Cell.IsSeq() {
					pushCell(p.Cell)
				}
			}
		}
	}
	t.fheap = fh.cells[:0]

	// Backward: re-propagate required times through the fanin cones. Nets
	// are keyed by their driver's topological position and processed in
	// decreasing order; PI-/flop-/const-driven nets (key -1) depend only on
	// keyed nets and absorb changes without propagating further.
	bh := netHeap{pos: t.pos, items: t.bheap[:0]}
	pushNet := func(n *netlist.Net) {
		if !t.inBQ[n.ID] {
			t.inBQ[n.ID] = true
			bh.push(n)
		}
	}
	for _, c := range changed {
		// req of c's inputs depends on c's stage delay (comb) or Setup
		// (seq); req of the driver's other fanin depends on the driver's
		// stage delay, which changed with c's InputCap.
		for _, in := range c.Inputs {
			pushNet(in)
			if d := in.Driver; d != nil && !d.IsSeq() {
				for _, in2 := range d.Inputs {
					pushNet(in2)
				}
			}
		}
	}
	for bh.len() > 0 {
		n := bh.pop()
		t.inBQ[n.ID] = false
		dirty++
		r := t.recomputeReq(n)
		if r != t.req[n.ID] {
			t.req[n.ID] = r
			if d := n.Driver; d != nil && !d.IsSeq() {
				for _, in := range d.Inputs {
					pushNet(in)
				}
			}
		}
	}
	t.bheap = bh.items[:0]

	t.gen = nl.Gen()
	observeDirty(dirty)
	return nil
}

// cellHeap is a min-heap of combinational cells ordered by topological
// position. Positions are unique, so keys never tie.
type cellHeap struct {
	pos   []int32
	cells []*netlist.Cell
}

func (h *cellHeap) len() int { return len(h.cells) }

func (h *cellHeap) push(c *netlist.Cell) {
	h.cells = append(h.cells, c)
	i := len(h.cells) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.pos[h.cells[p].ID] <= h.pos[h.cells[i].ID] {
			break
		}
		h.cells[p], h.cells[i] = h.cells[i], h.cells[p]
		i = p
	}
}

func (h *cellHeap) pop() *netlist.Cell {
	top := h.cells[0]
	last := len(h.cells) - 1
	h.cells[0] = h.cells[last]
	h.cells = h.cells[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < last && h.pos[h.cells[l].ID] < h.pos[h.cells[m].ID] {
			m = l
		}
		if r < last && h.pos[h.cells[r].ID] < h.pos[h.cells[m].ID] {
			m = r
		}
		if m == i {
			break
		}
		h.cells[i], h.cells[m] = h.cells[m], h.cells[i]
		i = m
	}
	return top
}

type netItem struct {
	key int32
	n   *netlist.Net
}

// netHeap is a max-heap of nets ordered by driver position (-1 for nets
// without a combinational driver). Nets sharing key -1 are mutually
// independent, so their pop order does not matter.
type netHeap struct {
	pos   []int32
	items []netItem
}

func (h *netHeap) len() int { return len(h.items) }

func (h *netHeap) keyOf(n *netlist.Net) int32 {
	if d := n.Driver; d != nil && !d.IsSeq() {
		return h.pos[d.ID]
	}
	return -1
}

func (h *netHeap) push(n *netlist.Net) {
	h.items = append(h.items, netItem{h.keyOf(n), n})
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.items[p].key >= h.items[i].key {
			break
		}
		h.items[p], h.items[i] = h.items[i], h.items[p]
		i = p
	}
}

func (h *netHeap) pop() *netlist.Net {
	top := h.items[0].n
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < last && h.items[l].key > h.items[m].key {
			m = l
		}
		if r < last && h.items[r].key > h.items[m].key {
			m = r
		}
		if m == i {
			break
		}
		h.items[i], h.items[m] = h.items[m], h.items[i]
		i = m
	}
	return top
}

// ----------------------------------------------------------------------------
// Analysis statistics, surfaced on the chatlsd /metrics endpoint. The package
// keeps plain atomics and an observer hook so it stays free of a dependency
// on internal/metrics.

var (
	fullAnalyses       atomic.Uint64
	incrementalUpdates atomic.Uint64
	dirtyObserver      atomic.Value // of func(int)
)

// FullAnalyses returns the number of full timing analyses run process-wide.
func FullAnalyses() uint64 { return fullAnalyses.Load() }

// IncrementalUpdates returns the number of incremental updates run
// process-wide (excluding topology-change fallbacks, which count as full).
func IncrementalUpdates() uint64 { return incrementalUpdates.Load() }

// SetDirtyNodesObserver registers fn to be called with the dirty-node count
// (nets recomputed) of every incremental update. Pass nil to unregister.
func SetDirtyNodesObserver(fn func(int)) {
	dirtyObserver.Store(fn)
}

func observeDirty(n int) {
	if fn, _ := dirtyObserver.Load().(func(int)); fn != nil {
		fn(n)
	}
}
