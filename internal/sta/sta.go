// Package sta implements static timing analysis over gate-level netlists
// using the library's linear delay model and wireload-based net parasitics.
// It produces the three timing metrics the paper's evaluation reports —
// worst negative slack (WNS), critical path slack (CPS), and total negative
// slack (TNS) — along with per-endpoint slacks and critical-path traces
// used by the optimizer and by report_timing.
package sta

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/liberty"
	"repro/internal/netlist"
)

// Constraints configures an analysis run.
type Constraints struct {
	Period        float64 // clock period, ns
	InputDelay    float64 // arrival time at primary inputs
	OutputDelay   float64 // required-time margin at primary outputs
	OutputLoad    float64 // capacitive load on primary outputs, pF
	InputDriveRes float64 // driving-cell resistance at primary inputs, ns/pF
}

// DefaultOutputLoad is used when Constraints.OutputLoad is zero.
const DefaultOutputLoad = 0.004

// DefaultInputDriveRes models the pad/driver behind each primary input, so
// loading an input net is not free and buffering high-fanout input nets
// pays off the way it does in a real flow.
const DefaultInputDriveRes = 6.0

// Timing holds the results of one STA run.
type Timing struct {
	NL     *netlist.Netlist
	WL     *liberty.WireLoad
	Cons   Constraints
	arr    map[*netlist.Net]float64
	req    map[*netlist.Net]float64
	order  []*netlist.Cell // combinational cells in topological order
	ends   []Endpoint
}

// Endpoint is a timing path endpoint: a flip-flop D pin or a primary output.
type Endpoint struct {
	Name    string
	Net     *netlist.Net // the net arriving at the endpoint
	Cell    *netlist.Cell // nil for primary outputs
	Arrival float64
	Slack   float64
}

// Analyze runs full forward/backward timing propagation. It returns an error
// on combinational loops.
func Analyze(nl *netlist.Netlist, wl *liberty.WireLoad, cons Constraints) (*Timing, error) {
	if cons.OutputLoad == 0 {
		cons.OutputLoad = DefaultOutputLoad
	}
	if cons.InputDriveRes == 0 {
		cons.InputDriveRes = DefaultInputDriveRes
	}
	t := &Timing{
		NL:   nl,
		WL:   wl,
		Cons: cons,
		arr:  make(map[*netlist.Net]float64, len(nl.Nets)),
		req:  make(map[*netlist.Net]float64, len(nl.Nets)),
	}
	if err := t.levelize(); err != nil {
		return nil, err
	}
	t.forward()
	t.backward()
	t.collectEndpoints()
	return t, nil
}

// LoadCap returns the total capacitive load on a net: sink pin caps, the
// wireload estimate for its fanout, and the output pad load if it is a
// primary output.
func (t *Timing) LoadCap(n *netlist.Net) float64 {
	load := 0.0
	for _, p := range n.Sinks {
		load += p.Cell.Ref.InputCap
	}
	if n.PO {
		load += t.Cons.OutputLoad
	}
	return load + t.WL.Cap(n.Fanout())
}

// stageDelay is the delay from a cell's inputs to its output net's sinks:
// cell delay under load plus the lumped wire delay.
func (t *Timing) stageDelay(c *netlist.Cell) float64 {
	load := t.LoadCap(c.Output)
	wire := 0.0
	if t.WL != nil {
		wire = t.WL.Res * t.WL.Cap(c.Output.Fanout())
	}
	return c.Ref.Delay(load) + wire
}

// levelize topologically orders combinational cells; sequential cells are
// timing sources and sinks, not ordered.
func (t *Timing) levelize() error {
	indeg := make(map[*netlist.Cell]int)
	var ready []*netlist.Cell
	for _, c := range t.NL.Cells {
		if c.IsSeq() {
			continue
		}
		deps := 0
		for _, in := range c.Inputs {
			if in.Driver != nil && !in.Driver.IsSeq() {
				deps++
			}
		}
		indeg[c] = deps
		if deps == 0 {
			ready = append(ready, c)
		}
	}
	sort.Slice(ready, func(i, j int) bool { return ready[i].ID < ready[j].ID })
	order := make([]*netlist.Cell, 0, len(indeg))
	for len(ready) > 0 {
		c := ready[0]
		ready = ready[1:]
		order = append(order, c)
		for _, p := range c.Output.Sinks {
			s := p.Cell
			if s.IsSeq() {
				continue
			}
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if len(order) != len(indeg) {
		for c, d := range indeg {
			if d > 0 {
				return fmt.Errorf("combinational loop detected through cell %s (%s)", c.Name, c.Ref.Name)
			}
		}
	}
	t.order = order
	return nil
}

func (t *Timing) forward() {
	// Sources. Primary inputs arrive after their external driver charges
	// the net's load.
	for _, n := range t.NL.Inputs {
		t.arr[n] = t.Cons.InputDelay + t.Cons.InputDriveRes*t.LoadCap(n) + t.wireDelay(n)
	}
	for _, c := range t.NL.Cells {
		if c.IsSeq() {
			t.arr[c.Output] = c.Ref.Delay(t.LoadCap(c.Output)) + t.wireDelay(c.Output)
		}
	}
	// Propagate through combinational cells.
	for _, c := range t.order {
		worst := 0.0
		for _, in := range c.Inputs {
			if a, ok := t.arr[in]; ok && a > worst {
				worst = a
			}
		}
		t.arr[c.Output] = worst + t.stageDelay(c)
	}
}

func (t *Timing) wireDelay(n *netlist.Net) float64 {
	if t.WL == nil {
		return 0
	}
	return t.WL.Res * t.WL.Cap(n.Fanout())
}

func (t *Timing) backward() {
	inf := math.Inf(1)
	for _, n := range t.NL.Nets {
		t.req[n] = inf
	}
	// Endpoint required times.
	for _, c := range t.NL.Cells {
		if !c.IsSeq() {
			continue
		}
		d := c.Inputs[0]
		r := t.Cons.Period - c.Ref.Setup
		if r < t.req[d] {
			t.req[d] = r
		}
	}
	for _, o := range t.NL.Outputs {
		r := t.Cons.Period - t.Cons.OutputDelay
		if r < t.req[o] {
			t.req[o] = r
		}
	}
	// Propagate backward through combinational cells.
	for i := len(t.order) - 1; i >= 0; i-- {
		c := t.order[i]
		r := t.req[c.Output] - t.stageDelay(c)
		for _, in := range c.Inputs {
			if r < t.req[in] {
				t.req[in] = r
			}
		}
	}
}

func (t *Timing) collectEndpoints() {
	for _, c := range t.NL.Cells {
		if !c.IsSeq() {
			continue
		}
		d := c.Inputs[0]
		arr := t.arr[d]
		slack := t.Cons.Period - c.Ref.Setup - arr
		t.ends = append(t.ends, Endpoint{
			Name:    c.Name + "/D",
			Net:     d,
			Cell:    c,
			Arrival: arr,
			Slack:   slack,
		})
	}
	for _, o := range t.NL.Outputs {
		arr := t.arr[o]
		slack := t.Cons.Period - t.Cons.OutputDelay - arr
		t.ends = append(t.ends, Endpoint{
			Name:    o.Name,
			Net:     o,
			Arrival: arr,
			Slack:   slack,
		})
	}
	sort.Slice(t.ends, func(i, j int) bool {
		if t.ends[i].Slack != t.ends[j].Slack {
			return t.ends[i].Slack < t.ends[j].Slack
		}
		return t.ends[i].Name < t.ends[j].Name
	})
}

// Endpoints returns all endpoints sorted worst-slack first.
func (t *Timing) Endpoints() []Endpoint { return t.ends }

// CPS is the critical path slack: the slack of the single worst path,
// positive when the design meets timing with margin.
func (t *Timing) CPS() float64 {
	if len(t.ends) == 0 {
		return t.Cons.Period
	}
	return t.ends[0].Slack
}

// WNS is the worst negative slack: min(0, CPS).
func (t *Timing) WNS() float64 {
	cps := t.CPS()
	if cps > 0 {
		return 0
	}
	return cps
}

// TNS is the total negative slack summed over violating endpoints.
func (t *Timing) TNS() float64 {
	var tns float64
	for _, e := range t.ends {
		if e.Slack < 0 {
			tns += e.Slack
		}
	}
	return tns
}

// Arrival returns the arrival time at a net (0 for unknown nets).
func (t *Timing) Arrival(n *netlist.Net) float64 { return t.arr[n] }

// Required returns the required time at a net (+Inf when unconstrained).
func (t *Timing) Required(n *netlist.Net) float64 {
	if r, ok := t.req[n]; ok {
		return r
	}
	return math.Inf(1)
}

// Slack returns required - arrival at a net.
func (t *Timing) Slack(n *netlist.Net) float64 { return t.Required(n) - t.Arrival(n) }

// PathStep is one stage on a timing path.
type PathStep struct {
	Cell    *netlist.Cell // nil for the startpoint marker
	Net     *netlist.Net
	Incr    float64 // delay contributed by this stage
	Arrival float64
}

// Path is a startpoint-to-endpoint timing path.
type Path struct {
	Startpoint string
	Endpoint   string
	Slack      float64
	Steps      []PathStep
}

// CriticalPath traces the single worst path in the design.
func (t *Timing) CriticalPath() Path {
	if len(t.ends) == 0 {
		return Path{}
	}
	return t.TracePath(t.ends[0])
}

// TracePath walks backward from an endpoint along maximum-arrival inputs.
func (t *Timing) TracePath(end Endpoint) Path {
	p := Path{Endpoint: end.Name, Slack: end.Slack}
	var rev []PathStep
	n := end.Net
	for n != nil {
		c := n.Driver
		if c == nil {
			p.Startpoint = n.Name
			rev = append(rev, PathStep{Net: n, Arrival: t.arr[n]})
			break
		}
		rev = append(rev, PathStep{Cell: c, Net: n, Incr: t.stageDelay(c), Arrival: t.arr[n]})
		if c.IsSeq() {
			p.Startpoint = c.Name + "/CK"
			break
		}
		// Continue via the input with the latest arrival.
		var worstIn *netlist.Net
		worstArr := math.Inf(-1)
		for _, in := range c.Inputs {
			a := t.arr[in]
			if a > worstArr || (a == worstArr && worstIn != nil && in.ID < worstIn.ID) {
				worstArr = a
				worstIn = in
			}
		}
		n = worstIn
	}
	// Reverse into source-to-sink order.
	for i := len(rev) - 1; i >= 0; i-- {
		p.Steps = append(p.Steps, rev[i])
	}
	return p
}

// WorstPaths returns up to n paths, one per worst endpoint.
func (t *Timing) WorstPaths(n int) []Path {
	if n > len(t.ends) {
		n = len(t.ends)
	}
	paths := make([]Path, 0, n)
	for i := 0; i < n; i++ {
		paths = append(paths, t.TracePath(t.ends[i]))
	}
	return paths
}

// CriticalCells returns the set of cells lying on paths with slack below
// the threshold, for the optimizer to focus on.
func (t *Timing) CriticalCells(slackBelow float64) []*netlist.Cell {
	var out []*netlist.Cell
	seen := make(map[*netlist.Cell]bool)
	for _, c := range t.order {
		s := t.Slack(c.Output)
		if s < slackBelow && !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// MaxFanoutViolations lists nets whose fanout exceeds the limit.
func (t *Timing) MaxFanoutViolations(limit int) []*netlist.Net {
	if limit <= 0 {
		return nil
	}
	var out []*netlist.Net
	for _, n := range t.NL.Nets {
		if n.IsClk || n.IsRst || n.Const {
			continue
		}
		if n.Fanout() > limit {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Fanout() > out[j].Fanout() })
	return out
}
