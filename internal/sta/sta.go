// Package sta implements static timing analysis over gate-level netlists
// using the library's linear delay model and wireload-based net parasitics.
// It produces the three timing metrics the paper's evaluation reports —
// worst negative slack (WNS), critical path slack (CPS), and total negative
// slack (TNS) — along with per-endpoint slacks and critical-path traces
// used by the optimizer and by report_timing.
//
// Analysis state is slice-indexed by Net.ID/Cell.ID rather than keyed by
// pointer maps, and a Timing can be kept alive across netlist edits: after
// delay-only edits (cell resizing) Update re-propagates only the affected
// fanout/fanin cones, falling back to a full re-analysis when the topology
// changed. See DESIGN.md "Performance".
package sta

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/intern"
	"repro/internal/liberty"
	"repro/internal/netlist"
)

// Constraints configures an analysis run.
type Constraints struct {
	Period        float64 // clock period, ns
	InputDelay    float64 // arrival time at primary inputs
	OutputDelay   float64 // required-time margin at primary outputs
	OutputLoad    float64 // capacitive load on primary outputs, pF
	InputDriveRes float64 // driving-cell resistance at primary inputs, ns/pF
}

// DefaultOutputLoad is used when Constraints.OutputLoad is zero.
const DefaultOutputLoad = 0.004

// DefaultInputDriveRes models the pad/driver behind each primary input, so
// loading an input net is not free and buffering high-fanout input nets
// pays off the way it does in a real flow.
const DefaultInputDriveRes = 6.0

// Timing holds the results of one STA run and the state needed to refresh
// them incrementally.
type Timing struct {
	NL   *netlist.Netlist
	WL   *liberty.WireLoad
	Cons Constraints

	arr   []float64       // by Net.ID; NaN = no arrival recorded
	req   []float64       // by Net.ID; +Inf = unconstrained
	pos   []int32         // by Cell.ID; topological position, -1 = sequential
	order []*netlist.Cell // combinational cells in topological order

	ends       []Endpoint
	endHead    []int32 // by Net.ID; first endpoint index on that net, -1 = none
	endNext    []int32 // by endpoint index; next endpoint on the same net
	endsSorted bool

	// Worklist scratch, reused across Update calls. The visited flags are
	// always all-false between calls (cleared as items pop).
	fheap []*netlist.Cell
	bheap []netItem
	inFQ  []bool // by Cell.ID: cell is queued forward
	inBQ  []bool // by Net.ID: net is queued backward
	dirty int    // nets recomputed by the current Update

	// Levelize scratch, reused across full re-analyses.
	indeg []int32
	ready []*netlist.Cell

	// Netlist edit generations this Timing reflects.
	gen     uint64
	topoGen uint64
}

// Endpoint is a timing path endpoint: a flip-flop D pin or a primary output.
type Endpoint struct {
	Name    string
	Net     *netlist.Net  // the net arriving at the endpoint
	Cell    *netlist.Cell // nil for primary outputs
	Arrival float64
	Slack   float64
}

// Analyze runs full forward/backward timing propagation. It returns an error
// on combinational loops.
func Analyze(nl *netlist.Netlist, wl *liberty.WireLoad, cons Constraints) (*Timing, error) {
	if cons.OutputLoad == 0 {
		cons.OutputLoad = DefaultOutputLoad
	}
	if cons.InputDriveRes == 0 {
		cons.InputDriveRes = DefaultInputDriveRes
	}
	t := &Timing{NL: nl, WL: wl, Cons: cons}
	if err := t.reanalyze(); err != nil {
		return nil, err
	}
	return t, nil
}

// reanalyze rebuilds all timing state in place, reusing buffers.
func (t *Timing) reanalyze() error {
	fullAnalyses.Add(1)
	nNets := t.NL.NetIDBound()
	nCells := t.NL.CellIDBound()
	t.arr = growFloats(t.arr, nNets)
	t.req = growFloats(t.req, nNets)
	t.pos = growInt32s(t.pos, nCells)
	t.inFQ = growBools(t.inFQ, nCells)
	t.inBQ = growBools(t.inBQ, nNets)
	if err := t.levelize(); err != nil {
		return err
	}
	t.forward()
	t.backward()
	t.collectEndpoints()
	t.gen = t.NL.Gen()
	t.topoGen = t.NL.TopoGen()
	return nil
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growInt32s(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

// LoadCap returns the total capacitive load on a net: sink pin caps, the
// wireload estimate for its fanout, and the output pad load if it is a
// primary output.
func (t *Timing) LoadCap(n *netlist.Net) float64 {
	load := 0.0
	for _, p := range n.Sinks {
		load += p.Cell.Ref.InputCap
	}
	if n.PO {
		load += t.Cons.OutputLoad
	}
	return load + t.WL.Cap(n.Fanout())
}

// stageDelay is the delay from a cell's inputs to its output net's sinks:
// cell delay under load plus the lumped wire delay.
func (t *Timing) stageDelay(c *netlist.Cell) float64 {
	load := t.LoadCap(c.Output)
	wire := 0.0
	if t.WL != nil {
		wire = t.WL.Res * t.WL.Cap(c.Output.Fanout())
	}
	return c.Ref.Delay(load) + wire
}

// levelize topologically orders combinational cells; sequential cells are
// timing sources and sinks, not ordered. It also records each cell's
// topological position for the incremental worklists.
func (t *Timing) levelize() error {
	// indeg needs no clearing: every slot read below is assigned in the
	// first loop first.
	indeg := growInt32s(t.indeg, t.NL.CellIDBound())
	for i := range t.pos {
		t.pos[i] = -1
	}
	comb := 0
	ready := t.ready[:0]
	for _, c := range t.NL.Cells {
		if c.IsSeq() {
			continue
		}
		comb++
		deps := int32(0)
		for _, in := range c.Inputs {
			if in.Driver != nil && !in.Driver.IsSeq() {
				deps++
			}
		}
		indeg[c.ID] = deps
		if deps == 0 {
			ready = append(ready, c)
		}
	}
	sort.Slice(ready, func(i, j int) bool { return ready[i].ID < ready[j].ID })
	order := t.order[:0]
	for head := 0; head < len(ready); head++ {
		c := ready[head]
		t.pos[c.ID] = int32(len(order))
		order = append(order, c)
		for _, p := range c.Output.Sinks {
			s := p.Cell
			if s.IsSeq() {
				continue
			}
			indeg[s.ID]--
			if indeg[s.ID] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if len(order) != comb {
		for _, c := range t.NL.Cells {
			if !c.IsSeq() && indeg[c.ID] > 0 {
				return fmt.Errorf("combinational loop detected through cell %s (%s)", c.Name, c.Ref.Name)
			}
		}
	}
	t.order = order
	t.indeg = indeg
	t.ready = ready[:0]
	return nil
}

// sourceArrival computes the arrival of a net driven by a primary input or a
// sequential cell; ok is false for nets with no arrival (constants, clocks).
func (t *Timing) sourceArrival(n *netlist.Net) (float64, bool) {
	if d := n.Driver; d != nil {
		if d.IsSeq() {
			return d.Ref.Delay(t.LoadCap(n)) + t.wireDelay(n), true
		}
		return 0, false // combinational output: computed in topological order
	}
	if n.PI && !n.IsClk && !n.IsRst {
		return t.Cons.InputDelay + t.Cons.InputDriveRes*t.LoadCap(n) + t.wireDelay(n), true
	}
	return 0, false
}

// cellArrival computes the output arrival of a combinational cell from its
// inputs' current arrivals.
func (t *Timing) cellArrival(c *netlist.Cell) float64 {
	worst := 0.0
	for _, in := range c.Inputs {
		if a := t.arr[in.ID]; a > worst { // NaN compares false
			worst = a
		}
	}
	return worst + t.stageDelay(c)
}

func (t *Timing) forward() {
	nan := math.NaN()
	for i := range t.arr {
		t.arr[i] = nan
	}
	// Sources. Primary inputs arrive after their external driver charges
	// the net's load.
	for _, n := range t.NL.Inputs {
		if a, ok := t.sourceArrival(n); ok {
			t.arr[n.ID] = a
		}
	}
	for _, c := range t.NL.Cells {
		if c.IsSeq() {
			t.arr[c.Output.ID] = c.Ref.Delay(t.LoadCap(c.Output)) + t.wireDelay(c.Output)
		}
	}
	// Propagate through combinational cells.
	for _, c := range t.order {
		t.arr[c.Output.ID] = t.cellArrival(c)
	}
}

func (t *Timing) wireDelay(n *netlist.Net) float64 {
	if t.WL == nil {
		return 0
	}
	return t.WL.Res * t.WL.Cap(n.Fanout())
}

// recomputeReq computes a net's required time from its consumers' current
// state. min() is order-independent, so the result is bit-identical to what
// the full backward pass produces for the same inputs.
func (t *Timing) recomputeReq(n *netlist.Net) float64 {
	r := math.Inf(1)
	for _, p := range n.Sinks {
		s := p.Cell
		if s.IsSeq() {
			// Sink pins always index into Inputs, so this is the D pin.
			if v := t.Cons.Period - s.Ref.Setup; v < r {
				r = v
			}
			continue
		}
		if v := t.req[s.Output.ID] - t.stageDelay(s); v < r {
			r = v
		}
	}
	if n.PO {
		if v := t.Cons.Period - t.Cons.OutputDelay; v < r {
			r = v
		}
	}
	return r
}

func (t *Timing) backward() {
	inf := math.Inf(1)
	for i := range t.req {
		t.req[i] = inf
	}
	// Endpoint required times.
	for _, c := range t.NL.Cells {
		if !c.IsSeq() {
			continue
		}
		d := c.Inputs[0]
		r := t.Cons.Period - c.Ref.Setup
		if r < t.req[d.ID] {
			t.req[d.ID] = r
		}
	}
	for _, o := range t.NL.Outputs {
		r := t.Cons.Period - t.Cons.OutputDelay
		if r < t.req[o.ID] {
			t.req[o.ID] = r
		}
	}
	// Propagate backward through combinational cells.
	for i := len(t.order) - 1; i >= 0; i-- {
		c := t.order[i]
		r := t.req[c.Output.ID] - t.stageDelay(c)
		for _, in := range c.Inputs {
			if r < t.req[in.ID] {
				t.req[in.ID] = r
			}
		}
	}
}

func (t *Timing) collectEndpoints() {
	t.ends = t.ends[:0]
	for _, c := range t.NL.Cells {
		if !c.IsSeq() {
			continue
		}
		d := c.Inputs[0]
		arr := t.Arrival(d)
		t.ends = append(t.ends, Endpoint{
			Name:    intern.Concat(c.Name, "/D"),
			Net:     d,
			Cell:    c,
			Arrival: arr,
			Slack:   t.Cons.Period - c.Ref.Setup - arr,
		})
	}
	for _, o := range t.NL.Outputs {
		arr := t.Arrival(o)
		t.ends = append(t.ends, Endpoint{
			Name:    o.Name,
			Net:     o,
			Arrival: arr,
			Slack:   t.Cons.Period - t.Cons.OutputDelay - arr,
		})
	}
	t.endsSorted = false
	t.rebuildEndChains()
}

// rebuildEndChains indexes endpoints by net so incremental updates can
// refresh only the endpoints whose arrival changed. A net can carry several
// endpoints (a D pin shared by multiple flops, a PO that also feeds a flop).
func (t *Timing) rebuildEndChains() {
	t.endHead = growInt32s(t.endHead, t.NL.NetIDBound())
	for i := range t.endHead {
		t.endHead[i] = -1
	}
	if cap(t.endNext) < len(t.ends) {
		t.endNext = make([]int32, len(t.ends))
	} else {
		t.endNext = t.endNext[:len(t.ends)]
	}
	for i := range t.ends {
		id := t.ends[i].Net.ID
		t.endNext[i] = t.endHead[id]
		t.endHead[id] = int32(i)
	}
}

// refreshEndsOnNet recomputes arrival and slack of every endpoint on net n.
func (t *Timing) refreshEndsOnNet(n *netlist.Net) {
	i := t.endHead[n.ID]
	if i < 0 {
		return
	}
	arr := t.Arrival(n)
	for ; i >= 0; i = t.endNext[i] {
		e := &t.ends[i]
		e.Arrival = arr
		if e.Cell != nil {
			e.Slack = t.Cons.Period - e.Cell.Ref.Setup - arr
		} else {
			e.Slack = t.Cons.Period - t.Cons.OutputDelay - arr
		}
	}
	t.endsSorted = false
}

func (t *Timing) ensureSorted() {
	if t.endsSorted {
		return
	}
	sort.Slice(t.ends, func(i, j int) bool {
		if t.ends[i].Slack != t.ends[j].Slack {
			return t.ends[i].Slack < t.ends[j].Slack
		}
		return t.ends[i].Name < t.ends[j].Name
	})
	t.rebuildEndChains()
	t.endsSorted = true
}

// Endpoints returns all endpoints sorted worst-slack first.
func (t *Timing) Endpoints() []Endpoint {
	t.ensureSorted()
	return t.ends
}

// CPS is the critical path slack: the slack of the single worst path,
// positive when the design meets timing with margin.
func (t *Timing) CPS() float64 {
	if len(t.ends) == 0 {
		return t.Cons.Period
	}
	if t.endsSorted {
		return t.ends[0].Slack
	}
	worst := math.Inf(1)
	for i := range t.ends {
		if t.ends[i].Slack < worst {
			worst = t.ends[i].Slack
		}
	}
	return worst
}

// WNS is the worst negative slack: min(0, CPS).
func (t *Timing) WNS() float64 {
	cps := t.CPS()
	if cps > 0 {
		return 0
	}
	return cps
}

// TNS is the total negative slack summed over violating endpoints.
func (t *Timing) TNS() float64 {
	var tns float64
	for i := range t.ends {
		if t.ends[i].Slack < 0 {
			tns += t.ends[i].Slack
		}
	}
	return tns
}

// Arrival returns the arrival time at a net (0 for unknown nets).
func (t *Timing) Arrival(n *netlist.Net) float64 {
	if n.ID >= len(t.arr) {
		return 0
	}
	if a := t.arr[n.ID]; !math.IsNaN(a) {
		return a
	}
	return 0
}

// Required returns the required time at a net (+Inf when unconstrained).
func (t *Timing) Required(n *netlist.Net) float64 {
	if n.ID >= len(t.req) {
		return math.Inf(1)
	}
	return t.req[n.ID]
}

// Slack returns required - arrival at a net.
func (t *Timing) Slack(n *netlist.Net) float64 { return t.Required(n) - t.Arrival(n) }

// PathStep is one stage on a timing path.
type PathStep struct {
	Cell    *netlist.Cell // nil for the startpoint marker
	Net     *netlist.Net
	Incr    float64 // delay contributed by this stage
	Arrival float64
}

// Path is a startpoint-to-endpoint timing path.
type Path struct {
	Startpoint string
	Endpoint   string
	Slack      float64
	Steps      []PathStep
}

// CriticalPath traces the single worst path in the design.
func (t *Timing) CriticalPath() Path {
	t.ensureSorted()
	if len(t.ends) == 0 {
		return Path{}
	}
	return t.TracePath(t.ends[0])
}

// TracePath walks backward from an endpoint along maximum-arrival inputs.
func (t *Timing) TracePath(end Endpoint) Path {
	p := Path{Endpoint: end.Name, Slack: end.Slack}
	var rev []PathStep
	n := end.Net
	for n != nil {
		c := n.Driver
		if c == nil {
			p.Startpoint = n.Name
			rev = append(rev, PathStep{Net: n, Arrival: t.Arrival(n)})
			break
		}
		rev = append(rev, PathStep{Cell: c, Net: n, Incr: t.stageDelay(c), Arrival: t.Arrival(n)})
		if c.IsSeq() {
			p.Startpoint = intern.Concat(c.Name, "/CK")
			break
		}
		// Continue via the input with the latest arrival.
		var worstIn *netlist.Net
		worstArr := math.Inf(-1)
		for _, in := range c.Inputs {
			a := t.Arrival(in)
			if a > worstArr || (a == worstArr && worstIn != nil && in.ID < worstIn.ID) {
				worstArr = a
				worstIn = in
			}
		}
		n = worstIn
	}
	// Reverse into source-to-sink order.
	p.Steps = make([]PathStep, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		p.Steps = append(p.Steps, rev[i])
	}
	return p
}

// WorstPaths returns up to n paths, one per worst endpoint.
func (t *Timing) WorstPaths(n int) []Path {
	t.ensureSorted()
	if n > len(t.ends) {
		n = len(t.ends)
	}
	paths := make([]Path, 0, n)
	for i := 0; i < n; i++ {
		paths = append(paths, t.TracePath(t.ends[i]))
	}
	return paths
}

// CriticalCells returns the cells lying on paths with slack below the
// threshold, for the optimizer to focus on. The topological order contains
// each cell once, so no dedup set is needed.
func (t *Timing) CriticalCells(slackBelow float64) []*netlist.Cell {
	out := make([]*netlist.Cell, 0, 64)
	for _, c := range t.order {
		if t.Slack(c.Output) < slackBelow {
			out = append(out, c)
		}
	}
	return out
}

// MaxFanoutViolations lists nets whose fanout exceeds the limit.
func (t *Timing) MaxFanoutViolations(limit int) []*netlist.Net {
	if limit <= 0 {
		return nil
	}
	var out []*netlist.Net
	for _, n := range t.NL.Nets {
		if n.IsClk || n.IsRst || n.Const {
			continue
		}
		if n.Fanout() > limit {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Fanout() > out[j].Fanout() })
	return out
}
