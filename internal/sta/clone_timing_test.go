package sta_test

import (
	"math/rand"
	"testing"

	"repro/internal/designs"
	"repro/internal/sta"
)

// TestCloneTimingBitIdentical: timing analysis of a netlist clone reproduces
// the original's analysis exactly — the property the elaboration-checkpoint
// restore path relies on for bit-identical QoR reports. Exact float equality,
// not tolerance: the clone preserves every slice order the float accumulation
// depends on.
func TestCloneTimingBitIdentical(t *testing.T) {
	for _, d := range corpus(t) {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			nl := elaborate(t, d)
			cp := nl.Clone()
			wl := eqLib.WireLoad("5K_heavy_1k")
			cons := sta.Constraints{Period: d.Period}
			tmO, err := sta.Analyze(nl, wl, cons)
			if err != nil {
				t.Fatal(err)
			}
			tmC, err := sta.Analyze(cp, wl, cons)
			if err != nil {
				t.Fatal(err)
			}
			if tmO.WNS() != tmC.WNS() || tmO.TNS() != tmC.TNS() || tmO.CPS() != tmC.CPS() {
				t.Fatalf("headline metrics differ: (%v %v %v) vs (%v %v %v)",
					tmO.WNS(), tmO.TNS(), tmO.CPS(), tmC.WNS(), tmC.TNS(), tmC.CPS())
			}
			for i := range nl.Nets {
				a, b := nl.Nets[i], cp.Nets[i]
				if tmO.Arrival(a) != tmC.Arrival(b) || tmO.Required(a) != tmC.Required(b) {
					t.Fatalf("net %s: arrival/required differ on the clone", a.Name)
				}
			}
		})
	}
}

// TestCloneTimingGenerationHandoff: the clone carries the original's edit
// generations, so incremental timing on a restored design behaves exactly
// like it would on the fresh one — edits to the clone advance only the
// clone's generations, its Timing updates incrementally to the full-analysis
// result, and the original's Timing stays current (Update is a no-op).
func TestCloneTimingGenerationHandoff(t *testing.T) {
	nl := elaborate(t, designs.EthMAC())
	cp := nl.Clone()
	if cp.Gen() != nl.Gen() || cp.TopoGen() != nl.TopoGen() {
		t.Fatalf("clone generations (%d,%d) differ from original (%d,%d)",
			cp.Gen(), cp.TopoGen(), nl.Gen(), nl.TopoGen())
	}
	wl := eqLib.WireLoad("5K_heavy_1k")
	cons := sta.Constraints{Period: designs.EthMAC().Period}
	tmO, err := sta.Analyze(nl, wl, cons)
	if err != nil {
		t.Fatal(err)
	}
	tmC, err := sta.Analyze(cp, wl, cons)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	changed := resizeRandom(cp, rng, 8)
	if len(changed) == 0 {
		t.Fatal("no cells resized")
	}
	if cp.Gen() == nl.Gen() {
		t.Fatal("clone edits did not advance the clone's generation")
	}
	if err := tmC.Update(changed); err != nil {
		t.Fatal(err)
	}
	requireEquivalent(t, "clone", tmC, cp, wl, cons)

	// The original is untouched by the clone's edits: its Timing is still
	// current and Update has nothing to do.
	wns, tns := tmO.WNS(), tmO.TNS()
	if err := tmO.Update(nil); err != nil {
		t.Fatal(err)
	}
	if tmO.WNS() != wns || tmO.TNS() != tns {
		t.Fatalf("original timing moved after clone edits: WNS %v->%v TNS %v->%v",
			wns, tmO.WNS(), tns, tmO.TNS())
	}
}
