package sta_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/designs"
	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/sta"
	"repro/internal/verilog"
)

var eqLib = liberty.Nangate45()

func elaborate(t *testing.T, d *designs.Design) *netlist.Netlist {
	t.Helper()
	f, err := verilog.Parse(d.Source)
	if err != nil {
		t.Fatalf("%s: parse: %v", d.Name, err)
	}
	nl, err := netlist.Elaborate(f, d.Top, nil, eqLib)
	if err != nil {
		t.Fatalf("%s: elaborate: %v", d.Name, err)
	}
	return nl
}

// corpus is every design the repo ships: the Table IV benchmarks plus the
// Table II database corpus. -short keeps a representative subset.
func corpus(t *testing.T) []*designs.Design {
	all := append(designs.Benchmarks(), designs.DatabaseDesigns()...)
	if testing.Short() {
		return all[:4]
	}
	return all
}

// closeEnough treats two slacks as equal within 1e-9, with infinities (an
// unconstrained net in both analyses) matching exactly.
func closeEnough(a, b float64) bool {
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	return math.Abs(a-b) <= 1e-9
}

// requireEquivalent compares the incrementally maintained Timing against a
// fresh full analysis: headline metrics and every net's slack.
func requireEquivalent(t *testing.T, name string, inc *sta.Timing, nl *netlist.Netlist, wl *liberty.WireLoad, cons sta.Constraints) {
	t.Helper()
	full, err := sta.Analyze(nl, wl, cons)
	if err != nil {
		t.Fatalf("%s: full analyze: %v", name, err)
	}
	if !closeEnough(inc.WNS(), full.WNS()) {
		t.Fatalf("%s: WNS incremental %v != full %v", name, inc.WNS(), full.WNS())
	}
	if !closeEnough(inc.TNS(), full.TNS()) {
		t.Fatalf("%s: TNS incremental %v != full %v", name, inc.TNS(), full.TNS())
	}
	if !closeEnough(inc.CPS(), full.CPS()) {
		t.Fatalf("%s: CPS incremental %v != full %v", name, inc.CPS(), full.CPS())
	}
	for _, n := range nl.Nets {
		if is, fs := inc.Slack(n), full.Slack(n); !closeEnough(is, fs) {
			t.Fatalf("%s: net %s slack incremental %v != full %v", name, n.Name, is, fs)
		}
	}
}

// resizeRandom flips a few random cells to a neighbouring drive strength and
// returns the cells it changed.
func resizeRandom(nl *netlist.Netlist, rng *rand.Rand, count int) []*netlist.Cell {
	var changed []*netlist.Cell
	for i := 0; i < count; i++ {
		c := nl.Cells[rng.Intn(len(nl.Cells))]
		var next *liberty.Cell
		if rng.Intn(2) == 0 {
			next = nl.Lib.Upsize(c.Ref)
		} else {
			next = nl.Lib.Downsize(c.Ref)
		}
		if next == nil || next == c.Ref {
			continue
		}
		nl.SetRef(c, next)
		changed = append(changed, c)
	}
	return changed
}

// insertBuffer splits a random multi-sink net with a buffer, moving one sink
// behind it — a structural edit that must force the full-reanalysis
// fallback. Reports false when the netlist has no splittable net.
func insertBuffer(nl *netlist.Netlist, rng *rand.Rand) bool {
	buf := nl.Lib.Strongest(liberty.KindBuf)
	if buf == nil {
		return false
	}
	start := rng.Intn(len(nl.Nets))
	for i := 0; i < len(nl.Nets); i++ {
		n := nl.Nets[(start+i)%len(nl.Nets)]
		if n.IsClk || n.IsRst || n.Const || len(n.Sinks) < 2 {
			continue
		}
		b, err := nl.AddCell(buf, "", nl.Name, n)
		if err != nil {
			return false
		}
		// Move the first sink that is not the buffer itself.
		for _, p := range append([]*netlist.Pin(nil), n.Sinks...) {
			if p.Cell != b {
				nl.SetInput(p.Cell, p.Index, b.Output)
				return true
			}
		}
		return true
	}
	return false
}

// TestIncrementalMatchesFullAfterResizes drives Update through randomized
// resize batches on every shipped design and checks the incremental state
// stays equivalent to a from-scratch analysis after each batch.
func TestIncrementalMatchesFullAfterResizes(t *testing.T) {
	for _, d := range corpus(t) {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			nl := elaborate(t, d)
			wl := eqLib.WireLoad("")
			cons := sta.Constraints{Period: d.Period}
			tm, err := sta.Analyze(nl, wl, cons)
			if err != nil {
				t.Fatalf("analyze: %v", err)
			}
			rng := rand.New(rand.NewSource(int64(len(d.Name)) * 7919))
			for round := 0; round < 6; round++ {
				changed := resizeRandom(nl, rng, 1+rng.Intn(8))
				if err := tm.Update(changed); err != nil {
					t.Fatalf("round %d: update: %v", round, err)
				}
				requireEquivalent(t, d.Name, tm, nl, wl, cons)
			}
		})
	}
}

// TestIncrementalFallbackAfterStructuralEdits mixes resizes with buffer
// insertions (topology changes). Update must detect the structural edits and
// fall back to a full re-analysis that again matches a fresh one.
func TestIncrementalFallbackAfterStructuralEdits(t *testing.T) {
	for _, d := range corpus(t) {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			nl := elaborate(t, d)
			wl := eqLib.WireLoad("")
			cons := sta.Constraints{Period: d.Period}
			tm, err := sta.Analyze(nl, wl, cons)
			if err != nil {
				t.Fatalf("analyze: %v", err)
			}
			rng := rand.New(rand.NewSource(int64(len(d.Source))))
			for round := 0; round < 4; round++ {
				changed := resizeRandom(nl, rng, 1+rng.Intn(4))
				if round%2 == 0 {
					insertBuffer(nl, rng)
				}
				if err := tm.Update(changed); err != nil {
					t.Fatalf("round %d: update: %v", round, err)
				}
				requireEquivalent(t, d.Name, tm, nl, wl, cons)
			}
		})
	}
}

// TestUpdateIsNoOpWithoutEdits checks the generation guard: with no edits
// between calls, Update must not run another full analysis.
func TestUpdateIsNoOpWithoutEdits(t *testing.T) {
	d := designs.RiscV32i()
	nl := elaborate(t, d)
	tm, err := sta.Analyze(nl, eqLib.WireLoad(""), sta.Constraints{Period: d.Period})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	before := sta.FullAnalyses()
	for i := 0; i < 3; i++ {
		if err := tm.Update(nil); err != nil {
			t.Fatalf("update: %v", err)
		}
	}
	if after := sta.FullAnalyses(); after != before {
		t.Errorf("no-op Update ran %d full analyses", after-before)
	}
}

// TestIncrementalCountersAndObserver checks the process-wide counters move
// and the dirty-node observer fires with a sane magnitude.
func TestIncrementalCountersAndObserver(t *testing.T) {
	d := designs.RiscV32i()
	nl := elaborate(t, d)
	tm, err := sta.Analyze(nl, eqLib.WireLoad(""), sta.Constraints{Period: d.Period})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	var observed []int
	sta.SetDirtyNodesObserver(func(n int) { observed = append(observed, n) })
	defer sta.SetDirtyNodesObserver(nil)

	rng := rand.New(rand.NewSource(11))
	incBefore := sta.IncrementalUpdates()
	changed := resizeRandom(nl, rng, 3)
	if len(changed) == 0 {
		t.Fatal("resizeRandom changed nothing")
	}
	if err := tm.Update(changed); err != nil {
		t.Fatalf("update: %v", err)
	}
	if got := sta.IncrementalUpdates() - incBefore; got != 1 {
		t.Errorf("incremental updates = %d, want 1", got)
	}
	if len(observed) != 1 {
		t.Fatalf("observer fired %d times, want 1", len(observed))
	}
	if observed[0] <= 0 || observed[0] > 2*(len(nl.Nets)+len(nl.Cells)) {
		t.Errorf("dirty nodes = %d out of plausible range", observed[0])
	}
}
