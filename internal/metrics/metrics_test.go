package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_requests_total", "requests served")
	g := r.NewGauge("test_queue_depth", "queued tasks")
	c.Inc()
	c.Add(2)
	g.Set(7)
	g.Add(-3)

	var b strings.Builder
	r.WriteText(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP test_requests_total requests served",
		"# TYPE test_requests_total counter",
		"test_requests_total 3",
		"# TYPE test_queue_depth gauge",
		"test_queue_depth 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Name order is deterministic.
	if strings.Index(out, "test_queue_depth") > strings.Index(out, "test_requests_total") {
		t.Error("metrics not sorted by name")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_latency_seconds", "latency", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	h.ObserveDuration(2 * time.Millisecond)

	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	var b strings.Builder
	r.WriteText(&b)
	out := b.String()
	for _, want := range []string{
		`test_latency_seconds_bucket{le="0.01"} 2`,
		`test_latency_seconds_bucket{le="0.1"} 3`,
		`test_latency_seconds_bucket{le="1"} 4`,
		`test_latency_seconds_bucket{le="+Inf"} 5`,
		"test_latency_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestFuncMetrics(t *testing.T) {
	r := NewRegistry()
	n := int64(41)
	r.NewCounterFunc("test_cache_hits_total", "cache hits", func() int64 { return n })
	n++
	var b strings.Builder
	r.WriteText(&b)
	if !strings.Contains(b.String(), "test_cache_hits_total 42") {
		t.Errorf("func metric not sampled at exposition:\n%s", b.String())
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup", "")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration should panic")
		}
	}()
	r.NewGauge("dup", "")
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("conc_total", "")
	h := r.NewHistogram("conc_seconds", "", nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Errorf("lost updates: counter %d histogram %d", c.Value(), h.Count())
	}
}
