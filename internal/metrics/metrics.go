// Package metrics is the instrumentation substrate of the serving layer:
// counters, gauges, and latency histograms collected into a registry with a
// Prometheus-style text exposition. Like internal/resilience it is a leaf
// package (stdlib only, imports nothing from the repo), so the server, the
// caches, and the worker pool can all report into it without import cycles.
//
// All metric types are safe for concurrent use. Func variants
// (NewCounterFunc, NewGaugeFunc) sample a callback at exposition time, which
// lets components that keep their own atomic counters (LRU caches, worker
// pools) surface them without double bookkeeping.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing count.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the exposition to stay meaningful).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) metricName() string { return c.name }

func (c *Counter) write(w io.Writer) {
	writeHeader(w, c.name, c.help, "counter")
	fmt.Fprintf(w, "%s %d\n", c.name, c.Value())
}

// Gauge is a value that can go up and down.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// Set stores the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) metricName() string { return g.name }

func (g *Gauge) write(w io.Writer) {
	writeHeader(w, g.name, g.help, "gauge")
	fmt.Fprintf(w, "%s %d\n", g.name, g.Value())
}

// funcMetric samples a callback at exposition time.
type funcMetric struct {
	name, help, typ string
	fn              func() int64
}

func (f *funcMetric) metricName() string { return f.name }

func (f *funcMetric) write(w io.Writer) {
	writeHeader(w, f.name, f.help, f.typ)
	fmt.Fprintf(w, "%s %d\n", f.name, f.fn())
}

// DefaultLatencyBuckets covers the serving path's range: sub-millisecond
// cache hits up to multi-second cold customizations.
var DefaultLatencyBuckets = []float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}

// Histogram is a cumulative-bucket latency histogram (seconds).
type Histogram struct {
	name, help string
	bounds     []float64 // upper bounds, ascending; +Inf implicit
	mu         sync.Mutex
	counts     []int64 // one per bound, plus the +Inf overflow at the end
	count      int64
	sum        float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += v
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

func (h *Histogram) metricName() string { return h.name }

func (h *Histogram) write(w io.Writer) {
	h.mu.Lock()
	defer h.mu.Unlock()
	writeHeader(w, h.name, h.help, "histogram")
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, formatBound(b), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, h.count)
	fmt.Fprintf(w, "%s_sum %g\n", h.name, h.sum)
	fmt.Fprintf(w, "%s_count %d\n", h.name, h.count)
}

func formatBound(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", b), "0"), ".")
}

type metric interface {
	metricName() string
	write(w io.Writer)
}

// Registry holds a named set of metrics and renders the text exposition.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]metric)}
}

func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.metrics[m.metricName()]; dup {
		panic(fmt.Sprintf("metrics: duplicate registration of %q", m.metricName()))
	}
	r.metrics[m.metricName()] = m
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.register(c)
	return c
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.register(g)
	return g
}

// NewCounterFunc registers a counter whose value is sampled from fn at
// exposition time.
func (r *Registry) NewCounterFunc(name, help string, fn func() int64) {
	r.register(&funcMetric{name: name, help: help, typ: "counter", fn: fn})
}

// NewGaugeFunc registers a gauge whose value is sampled from fn at
// exposition time.
func (r *Registry) NewGaugeFunc(name, help string, fn func() int64) {
	r.register(&funcMetric{name: name, help: help, typ: "gauge", fn: fn})
}

// NewHistogram registers and returns a histogram with the given ascending
// bucket upper bounds (nil = DefaultLatencyBuckets).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	h := &Histogram{
		name:   name,
		help:   help,
		bounds: append([]float64(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
	}
	r.register(h)
	return h
}

// WriteText renders every metric in name order (deterministic output).
func (r *Registry) WriteText(w io.Writer) {
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for n := range r.metrics {
		names = append(names, n)
	}
	ms := make([]metric, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		ms = append(ms, r.metrics[n])
	}
	r.mu.Unlock()
	for _, m := range ms {
		m.write(w)
	}
}

func writeHeader(w io.Writer, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
}
