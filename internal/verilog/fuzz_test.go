package verilog

import (
	"fmt"
	"testing"

	"repro/internal/inputlimits"
)

// fuzzBudget is deliberately tighter than the serving default so the fuzzer
// spends its time exploring parser states instead of grinding through huge
// accepted inputs. Correctness is budget-independent: any input must either
// parse or return an error, never panic or hang.
var fuzzBudget = inputlimits.Budget{
	MaxBytes:      1 << 16,
	MaxTokens:     1 << 14,
	MaxDepth:      64,
	MaxStatements: 1 << 10,
	MaxSteps:      1 << 17,
}

// FuzzParseVerilog asserts the two hardening invariants on arbitrary input:
// the parser never panics and always terminates within its budget, and —
// the round-trip property — every expression in an accepted input prints to
// text that re-parses to an expression printing identically.
func FuzzParseVerilog(f *testing.F) {
	seeds := []string{
		"module m(input a, output y); assign y = ~a; endmodule",
		"module m(input clk, input [7:0] d, output reg [7:0] q); always @(posedge clk) q <= d; endmodule",
		"module m #(parameter W = 8)(input [W-1:0] a, output [W-1:0] y); assign y = a + 8'hFF; endmodule",
		"module top(a, y); input a; output y; not g1 (y, a); endmodule",
		"module m(input a, b, s, output y); assign y = s ? a : b; endmodule",
		"module m(input [3:0] a, output y); assign y = &a[3:1] | a[0]; endmodule",
		"module m(input clk, rst, d, output reg q); always @(posedge clk or posedge rst) begin if (rst) q <= 1'b0; else q <= d; end endmodule",
		"module m(input a, output y); sub #(.W(4)) u0 (.i(a), .o(y)); endmodule",
		"module m(output [7:0] y); assign y = {4'b1010, {2{2'b01}}}; endmodule",
		"module m; wire w; /* comment */ // line\nendmodule",
		"module m(((((",
		"module m; assign y = ~~~~~~~~x; endmodule",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		file, err := ParseWithBudget(src, fuzzBudget)
		if err != nil {
			return
		}
		for _, m := range file.Modules {
			for _, it := range m.Items {
				if a, ok := it.(*Assign); ok {
					checkExprRoundTrip(t, a.LHS)
					checkExprRoundTrip(t, a.RHS)
				}
			}
		}
	})
}

// checkExprRoundTrip prints e, re-parses the result, and requires the
// re-parsed expression to print identically.
func checkExprRoundTrip(t *testing.T, e Expr) {
	t.Helper()
	printed := e.String()
	src := fmt.Sprintf("module t; assign y = %s; endmodule", printed)
	m, err := ParseModule(src)
	if err != nil {
		t.Fatalf("printed expression %q does not re-parse: %v", printed, err)
	}
	for _, it := range m.Items {
		if a, ok := it.(*Assign); ok {
			if got := a.RHS.String(); got != printed {
				t.Fatalf("round trip changed expression:\n  in:  %s\n  out: %s", printed, got)
			}
			return
		}
	}
	t.Fatalf("no assign found after re-parsing %q", printed)
}
