package verilog

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/arena"
	"repro/internal/inputlimits"
)

// Parse parses a Verilog source file under the process-default input budget.
// Untrusted sources — external netlists, pipeline-generated RTL — always
// come through here, so parsing provably terminates within the budget and
// returns a typed *inputlimits.LimitError when an input exceeds it.
func Parse(src string) (*SourceFile, error) {
	return ParseWithBudget(src, inputlimits.For(inputlimits.SurfaceVerilog))
}

// ParseWithBudget parses a Verilog source file under an explicit budget.
// The zero budget disables all limits.
func ParseWithBudget(src string, budget inputlimits.Budget) (*SourceFile, error) {
	m := inputlimits.NewMeter(inputlimits.SurfaceVerilog, budget)
	if err := m.CheckBytes(len(src)); err != nil {
		return nil, err
	}
	p := &parser{lx: newLexer(src), src: src, meter: m}
	if err := p.advance(); err != nil {
		return nil, err
	}
	file := &SourceFile{}
	for p.tok.kind != tokEOF {
		if !p.isKeyword("module") {
			return nil, p.errorf("expected 'module', got %q", p.tok.text)
		}
		mod, err := p.parseModule()
		if err != nil {
			return nil, err
		}
		file.Modules = append(file.Modules, mod)
	}
	return file, nil
}

// ParseModule parses a source file expected to contain exactly one module.
func ParseModule(src string) (*Module, error) {
	f, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(f.Modules) != 1 {
		return nil, fmt.Errorf("expected exactly one module, got %d", len(f.Modules))
	}
	return f.Modules[0], nil
}

type parser struct {
	lx    *lexer
	src   string
	tok   token
	meter *inputlimits.Meter

	// lineStart[i] is the byte offset of line i+1; built lazily so module
	// source capture is O(1) per module instead of rescanning the file.
	lineStart []int

	// Typed arenas for the hot expression and declaration nodes. A large
	// design allocates hundreds of thousands of AST nodes; carving them from
	// chunks cuts that to a few hundred allocations. The nodes' lifetime is
	// unchanged: a Module retains essentially every node parsed for it, so
	// the chunks were going to stay reachable either way.
	idents   arena.Arena[Ident]
	numbers  arena.Arena[Number]
	binaries arena.Arena[Binary]
	unaries  arena.Arena[Unary]
	ternarys arena.Arena[Ternary]
	indexes  arena.Arena[Index]
	slices   arena.Arena[Slice]
	ranges   arena.Arena[Range]
	ports    arena.Arena[Port]
}

func (p *parser) advance() error {
	if err := p.meter.Token(); err != nil {
		return err
	}
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

// enter guards one level of recursive descent; pair with p.meter.Exit().
func (p *parser) enter() error { return p.meter.Enter() }

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("%s: %s", p.tok.pos, fmt.Sprintf(format, args...))
}

func (p *parser) isKeyword(kw string) bool {
	return p.tok.kind == tokKeyword && p.tok.text == kw
}

func (p *parser) isPunct(s string) bool {
	return p.tok.kind == tokPunct && p.tok.text == s
}

func (p *parser) expectPunct(s string) error {
	if !p.isPunct(s) {
		return p.errorf("expected %q, got %q", s, p.tok.text)
	}
	return p.advance()
}

func (p *parser) expectKeyword(kw string) error {
	if !p.isKeyword(kw) {
		return p.errorf("expected %q, got %q", kw, p.tok.text)
	}
	return p.advance()
}

func (p *parser) expectIdent() (string, error) {
	if p.tok.kind != tokIdent {
		return "", p.errorf("expected identifier, got %q", p.tok.text)
	}
	name := p.tok.text
	return name, p.advance()
}

// sourceOffset approximates the byte offset of a position for source
// capture. The line-start index is built once per parse so capture stays
// O(1) per module even on files with very many modules.
func (p *parser) sourceOffset(pos Position) int {
	if p.lineStart == nil {
		p.lineStart = append(p.lineStart, 0)
		for i := 0; i < len(p.src); i++ {
			if p.src[i] == '\n' {
				p.lineStart = append(p.lineStart, i+1)
			}
		}
	}
	if pos.Line < 1 || pos.Line > len(p.lineStart) {
		return len(p.src)
	}
	off := p.lineStart[pos.Line-1] + pos.Col - 1
	if off < 0 || off > len(p.src) {
		off = len(p.src)
	}
	return off
}

func (p *parser) parseModule() (*Module, error) {
	startPos := p.tok.pos
	if err := p.expectKeyword("module"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	m := &Module{Name: name, Pos: startPos}

	// Optional parameter list: #(parameter W = 8, ...)
	if p.isPunct("#") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		for {
			if p.isKeyword("parameter") {
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			pname, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("="); err != nil {
				return nil, err
			}
			val, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			m.Params = append(m.Params, &Param{Name: pname, Value: val})
			if p.isPunct(",") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}

	// Port list.
	classicPorts := []string{} // names awaiting direction declarations in body
	if p.isPunct("(") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if !p.isPunct(")") {
			for {
				if p.tok.kind == tokKeyword &&
					(p.tok.text == "input" || p.tok.text == "output" || p.tok.text == "inout") {
					// ANSI-style port declarations.
					ports, err := p.parseANSIPortGroup()
					if err != nil {
						return nil, err
					}
					m.Ports = append(m.Ports, ports...)
				} else {
					// Classic style: just names.
					pname, err := p.expectIdent()
					if err != nil {
						return nil, err
					}
					classicPorts = append(classicPorts, pname)
				}
				if p.isPunct(",") {
					if err := p.advance(); err != nil {
						return nil, err
					}
					continue
				}
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}

	// Body.
	classicDecl := map[string]*Port{}
	items := 0
	for !p.isKeyword("endmodule") {
		if p.tok.kind == tokEOF {
			return nil, p.errorf("unexpected EOF inside module %s", m.Name)
		}
		items++
		if err := p.meter.Statement(items); err != nil {
			return nil, err
		}
		item, ports, err := p.parseItem()
		if err != nil {
			return nil, err
		}
		for _, pt := range ports {
			classicDecl[pt.Name] = pt
		}
		if item != nil {
			m.Items = append(m.Items, item)
		}
	}
	endPos := p.tok.pos
	if err := p.advance(); err != nil { // consume endmodule
		return nil, err
	}

	// Resolve classic ports in declared order.
	for _, pname := range classicPorts {
		pt, ok := classicDecl[pname]
		if !ok {
			return nil, fmt.Errorf("module %s: port %s has no direction declaration", m.Name, pname)
		}
		m.Ports = append(m.Ports, pt)
	}

	startOff := p.sourceOffset(startPos)
	endOff := p.sourceOffset(endPos) + len("endmodule")
	if startOff < endOff && endOff <= len(p.src) {
		m.Source = p.src[startOff:endOff]
	}
	Normalize(m)
	return m, nil
}

// parseANSIPortGroup parses "input [7:0] a, b" inside an ANSI port list,
// stopping before the comma that precedes the next direction keyword.
func (p *parser) parseANSIPortGroup() ([]*Port, error) {
	var dir PortDir
	switch p.tok.text {
	case "input":
		dir = DirInput
	case "output":
		dir = DirOutput
	case "inout":
		dir = DirInout
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	isReg := false
	if p.isKeyword("reg") {
		isReg = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	} else if p.isKeyword("wire") {
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	rng, err := p.parseOptRange()
	if err != nil {
		return nil, err
	}
	var ports []*Port
	for {
		pos := p.tok.pos
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		pt := p.ports.New()
		*pt = Port{Name: name, Dir: dir, Range: rng, Reg: isReg, Pos: pos}
		ports = append(ports, pt)
		// Continue only if the next token is "," followed by an identifier
		// (same group). A "," followed by a keyword starts a new group and
		// is handled by the caller.
		if p.isPunct(",") {
			save := *p.lx
			savedTok := p.tok
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.kind == tokIdent {
				continue
			}
			*p.lx = save
			p.tok = savedTok
		}
		break
	}
	return ports, nil
}

func (p *parser) parseOptRange() (*Range, error) {
	if !p.isPunct("[") {
		return nil, nil
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	msb, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	lsb, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("]"); err != nil {
		return nil, err
	}
	r := p.ranges.New()
	r.MSB, r.LSB = msb, lsb
	return r, nil
}

// parseItem parses one module body item. It returns classic-style port
// declarations separately so the caller can bind them to the port list.
func (p *parser) parseItem() (Item, []*Port, error) {
	pos := p.tok.pos
	switch {
	case p.isKeyword("input") || p.isKeyword("output") || p.isKeyword("inout"):
		var dir PortDir
		switch p.tok.text {
		case "input":
			dir = DirInput
		case "output":
			dir = DirOutput
		default:
			dir = DirInout
		}
		if err := p.advance(); err != nil {
			return nil, nil, err
		}
		isReg := false
		if p.isKeyword("reg") {
			isReg = true
			if err := p.advance(); err != nil {
				return nil, nil, err
			}
		} else if p.isKeyword("wire") {
			if err := p.advance(); err != nil {
				return nil, nil, err
			}
		}
		rng, err := p.parseOptRange()
		if err != nil {
			return nil, nil, err
		}
		var ports []*Port
		for {
			name, err := p.expectIdent()
			if err != nil {
				return nil, nil, err
			}
			pt := p.ports.New()
			*pt = Port{Name: name, Dir: dir, Range: rng, Reg: isReg, Pos: pos}
			ports = append(ports, pt)
			if p.isPunct(",") {
				if err := p.advance(); err != nil {
					return nil, nil, err
				}
				continue
			}
			break
		}
		return nil, ports, p.expectPunct(";")

	case p.isKeyword("wire"), p.isKeyword("reg"):
		isReg := p.tok.text == "reg"
		if err := p.advance(); err != nil {
			return nil, nil, err
		}
		rng, err := p.parseOptRange()
		if err != nil {
			return nil, nil, err
		}
		decl := &NetDecl{Range: rng, Reg: isReg, Pos: pos}
		for {
			name, err := p.expectIdent()
			if err != nil {
				return nil, nil, err
			}
			decl.Names = append(decl.Names, name)
			if p.isPunct(",") {
				if err := p.advance(); err != nil {
					return nil, nil, err
				}
				continue
			}
			break
		}
		return decl, nil, p.expectPunct(";")

	case p.isKeyword("parameter"), p.isKeyword("localparam"):
		local := p.tok.text == "localparam"
		if err := p.advance(); err != nil {
			return nil, nil, err
		}
		var firstErr error
		var items []Item
		for {
			name, err := p.expectIdent()
			if err != nil {
				return nil, nil, err
			}
			if err := p.expectPunct("="); err != nil {
				return nil, nil, err
			}
			val, err := p.parseExpr()
			if err != nil {
				return nil, nil, err
			}
			items = append(items, &paramItem{&Param{Name: name, Value: val, Local: local, Pos: pos}})
			if p.isPunct(",") {
				if err := p.advance(); err != nil {
					return nil, nil, err
				}
				continue
			}
			break
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, nil, err
		}
		// Parameters are hoisted onto the module by the caller via paramItem.
		if len(items) == 1 {
			return items[0], nil, firstErr
		}
		return &itemGroup{items}, nil, firstErr

	case p.isKeyword("assign"):
		if err := p.advance(); err != nil {
			return nil, nil, err
		}
		lhs, err := p.parseExpr()
		if err != nil {
			return nil, nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, nil, err
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, nil, err
		}
		return &Assign{LHS: lhs, RHS: rhs, Pos: pos}, nil, p.expectPunct(";")

	case p.isKeyword("always"):
		item, err := p.parseAlways(pos)
		return item, nil, err

	case p.tok.kind == tokKeyword && gateKinds[p.tok.text]:
		kind := p.tok.text
		if err := p.advance(); err != nil {
			return nil, nil, err
		}
		gname := ""
		if p.tok.kind == tokIdent {
			var err error
			gname, err = p.expectIdent()
			if err != nil {
				return nil, nil, err
			}
		}
		if err := p.expectPunct("("); err != nil {
			return nil, nil, err
		}
		var args []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, nil, err
			}
			args = append(args, e)
			if p.isPunct(",") {
				if err := p.advance(); err != nil {
					return nil, nil, err
				}
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, nil, err
		}
		return &GatePrim{Kind: kind, Name: gname, Args: args, Pos: pos}, nil, p.expectPunct(";")

	case p.tok.kind == tokIdent:
		return p.parseInstance(pos)

	default:
		return nil, nil, p.errorf("unexpected token %q in module body", p.tok.text)
	}
}

var gateKinds = map[string]bool{
	"and": true, "or": true, "nand": true, "nor": true,
	"xor": true, "xnor": true, "not": true, "buf": true,
}

// paramItem and itemGroup are internal wrappers letting parameter
// declarations flow through parseItem; Normalize hoists them.
type paramItem struct{ p *Param }
type itemGroup struct{ items []Item }

func (*paramItem) itemNode() {}
func (*itemGroup) itemNode() {}

func (p *parser) parseInstance(pos Position) (Item, []*Port, error) {
	modName, err := p.expectIdent()
	if err != nil {
		return nil, nil, err
	}
	inst := &Instance{ModuleName: modName, Pos: pos}
	if p.isPunct("#") {
		if err := p.advance(); err != nil {
			return nil, nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, nil, err
		}
		conns, err := p.parseConnList()
		if err != nil {
			return nil, nil, err
		}
		inst.ParamOver = conns
		if err := p.expectPunct(")"); err != nil {
			return nil, nil, err
		}
	}
	iname, err := p.expectIdent()
	if err != nil {
		return nil, nil, err
	}
	inst.Name = iname
	if err := p.expectPunct("("); err != nil {
		return nil, nil, err
	}
	if !p.isPunct(")") {
		conns, err := p.parseConnList()
		if err != nil {
			return nil, nil, err
		}
		inst.Conns = conns
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, nil, err
	}
	return inst, nil, p.expectPunct(";")
}

func (p *parser) parseConnList() ([]Connection, error) {
	var conns []Connection
	for {
		if p.isPunct(".") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			var e Expr
			if !p.isPunct(")") {
				var err error
				e, err = p.parseExpr()
				if err != nil {
					return nil, err
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			conns = append(conns, Connection{Name: name, Expr: e})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			conns = append(conns, Connection{Expr: e})
		}
		if p.isPunct(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	return conns, nil
}

func (p *parser) parseAlways(pos Position) (Item, error) {
	if err := p.expectKeyword("always"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("@"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	ff := &AlwaysFF{Pos: pos}
	// posedge clk [or (posedge|negedge) rst]
	if err := p.expectKeyword("posedge"); err != nil {
		return nil, err
	}
	clk, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ff.Clk = clk
	if p.tok.kind == tokIdent && p.tok.text == "or" || p.isKeyword("or") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		neg := false
		if p.isKeyword("negedge") {
			neg = true
		} else if !p.isKeyword("posedge") {
			return nil, p.errorf("expected posedge/negedge in sensitivity list")
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		rst, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		ff.Rst = rst
		ff.RstNeg = neg
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmtBlock()
	if err != nil {
		return nil, err
	}
	ff.Body = body
	return ff, nil
}

// parseStmtBlock parses either a begin/end block or a single statement.
// Statement nesting (if/else chains, nested begin/end) recurses through
// here, so the depth guard bounds it.
func (p *parser) parseStmtBlock() ([]Stmt, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.meter.Exit()
	if p.isKeyword("begin") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		var stmts []Stmt
		for !p.isKeyword("end") {
			if p.tok.kind == tokEOF {
				return nil, p.errorf("unexpected EOF in begin/end block")
			}
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			stmts = append(stmts, s)
		}
		return stmts, p.advance()
	}
	s, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return []Stmt{s}, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	pos := p.tok.pos
	if p.isKeyword("if") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		then, err := p.parseStmtBlock()
		if err != nil {
			return nil, err
		}
		stmt := &IfStmt{Cond: cond, Then: then, Pos: pos}
		if p.isKeyword("else") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			els, err := p.parseStmtBlock()
			if err != nil {
				return nil, err
			}
			stmt.Else = els
		}
		return stmt, nil
	}
	// Nonblocking assignment. The LHS is a postfix expression (identifier,
	// bit/part select, or concatenation) so that "<=" is not consumed as a
	// comparison operator.
	lhs, err := p.parsePostfix()
	if err != nil {
		return nil, err
	}
	if !p.isPunct("<=") {
		return nil, p.errorf("expected '<=' in always block, got %q", p.tok.text)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &NonBlocking{LHS: lhs, RHS: rhs, Pos: pos}, p.expectPunct(";")
}

// Expression parsing with precedence climbing.

var binaryPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4, "^~": 4, "~^": 4,
	"&":  5,
	"==": 6, "!=": 6, "===": 6, "!==": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8, "<<<": 8, ">>>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) parseExpr() (Expr, error) { return p.parseTernary() }

func (p *parser) parseTernary() (Expr, error) {
	// Every expression recursion path — parenthesized primaries, concat
	// parts, ternary arms — re-enters here, so this guard alone bounds
	// expression nesting (unary chains are guarded separately).
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.meter.Exit()
	cond, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	if !p.isPunct("?") {
		return cond, nil
	}
	pos := p.tok.pos
	if err := p.advance(); err != nil {
		return nil, err
	}
	t, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	f, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	tn := p.ternarys.New()
	*tn = Ternary{Cond: cond, T: t, F: f, Pos: pos}
	return tn, nil
}

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		if p.tok.kind != tokPunct {
			return left, nil
		}
		prec, ok := binaryPrec[p.tok.text]
		if !ok || prec < minPrec {
			return left, nil
		}
		op := p.tok.text
		pos := p.tok.pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		b := p.binaries.New()
		*b = Binary{Op: op, L: left, R: right, Pos: pos}
		left = b
	}
}

var unaryOps = map[string]bool{
	"~": true, "!": true, "-": true, "+": true,
	"&": true, "|": true, "^": true, "~&": true, "~|": true, "~^": true,
}

func (p *parser) parseUnary() (Expr, error) {
	// "~~~~...x" recurses without passing through parseTernary; bound it.
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.meter.Exit()
	if p.tok.kind == tokPunct && unaryOps[p.tok.text] {
		op := p.tok.text
		pos := p.tok.pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if op == "+" {
			return x, nil
		}
		u := p.unaries.New()
		*u = Unary{Op: op, X: x, Pos: pos}
		return u, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.isPunct("[") {
		pos := p.tok.pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.isPunct(":") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			lsb, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			s := p.slices.New()
			*s = Slice{X: e, MSB: first, LSB: lsb, Pos: pos}
			e = s
		} else {
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			ix := p.indexes.New()
			*ix = Index{X: e, I: first, Pos: pos}
			e = ix
		}
	}
	return e, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	pos := p.tok.pos
	switch {
	case p.tok.kind == tokIdent:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		id := p.idents.New()
		id.Name, id.Pos = name, pos
		return id, nil

	case p.tok.kind == tokNumber:
		text := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		an := p.numbers.New()
		if err := decodeNumberInto(an, text, pos); err != nil {
			return nil, err
		}
		return an, nil

	case p.isPunct("("):
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return e, p.expectPunct(")")

	case p.isPunct("{"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.isPunct("{") {
			// Replication {N{X}}.
			if err := p.advance(); err != nil {
				return nil, err
			}
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("}"); err != nil {
				return nil, err
			}
			if err := p.expectPunct("}"); err != nil {
				return nil, err
			}
			return &Repl{N: first, X: x, Pos: pos}, nil
		}
		parts := []Expr{first}
		for p.isPunct(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			parts = append(parts, e)
		}
		if err := p.expectPunct("}"); err != nil {
			return nil, err
		}
		return &Concat{Parts: parts, Pos: pos}, nil

	default:
		return nil, p.errorf("unexpected token %q in expression", p.tok.text)
	}
}

// decodeNumber converts a Verilog literal into a Number.
func decodeNumber(text string, pos Position) (*Number, error) {
	n := &Number{}
	if err := decodeNumberInto(n, text, pos); err != nil {
		return nil, err
	}
	return n, nil
}

// decodeNumberInto decodes a literal into an existing (arena-allocated)
// Number, avoiding a per-literal allocation on the parse hot path.
func decodeNumberInto(n *Number, text string, pos Position) error {
	clean := strings.ReplaceAll(text, "_", "")
	tick := strings.IndexByte(clean, '\'')
	if tick < 0 {
		v, err := strconv.ParseUint(clean, 10, 64)
		if err != nil {
			return fmt.Errorf("%s: bad number %q: %v", pos, text, err)
		}
		*n = Number{Value: v, Pos: pos}
		return nil
	}
	width := 0
	if tick > 0 {
		w, err := strconv.Atoi(clean[:tick])
		if err != nil {
			return fmt.Errorf("%s: bad width in %q: %v", pos, text, err)
		}
		width = w
	}
	if tick+1 >= len(clean) {
		return fmt.Errorf("%s: bad literal %q", pos, text)
	}
	base := 10
	switch clean[tick+1] {
	case 'b', 'B':
		base = 2
	case 'o', 'O':
		base = 8
	case 'd', 'D':
		base = 10
	case 'h', 'H':
		base = 16
	}
	digits := clean[tick+2:]
	// x/z/? digits are out of the synthesizable subset; map them to 0.
	digits = strings.Map(func(r rune) rune {
		switch r {
		case 'x', 'X', 'z', 'Z', '?':
			return '0'
		}
		return r
	}, digits)
	v, err := strconv.ParseUint(digits, base, 64)
	if err != nil {
		return fmt.Errorf("%s: bad digits in %q: %v", pos, text, err)
	}
	*n = Number{Width: width, Value: v, Pos: pos}
	return nil
}

// Normalize hoists parameter declarations from module items onto the module
// and flattens item groups. Parse calls it implicitly via parseModule's
// callers; exported for tests building ASTs by hand.
func Normalize(m *Module) {
	var items []Item
	var walk func(it Item)
	walk = func(it Item) {
		switch v := it.(type) {
		case *paramItem:
			m.Params = append(m.Params, v.p)
		case *itemGroup:
			for _, sub := range v.items {
				walk(sub)
			}
		default:
			items = append(items, it)
		}
	}
	for _, it := range m.Items {
		walk(it)
	}
	m.Items = items
}
