// Package verilog implements a lexer, parser, and AST for the synthesizable
// Verilog subset consumed by the ChatLS pipeline.
//
// The subset covers what the design generators in internal/designs emit and
// what the elaborator in internal/netlist consumes: module declarations with
// ANSI or classic port lists, parameter/localparam declarations with constant
// expressions, wire/reg declarations, continuous assignments, clocked always
// blocks describing registers, module instantiation (named or ordered
// connections, with parameter overrides), and the Verilog gate primitives.
package verilog

import (
	"fmt"
	"strings"
)

// Position locates a token or node in the source text.
type Position struct {
	Line int // 1-based line number
	Col  int // 1-based column (byte offset within the line)
}

func (p Position) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// SourceFile is the root of a parsed Verilog file.
type SourceFile struct {
	Modules []*Module
}

// FindModule returns the module with the given name, or nil.
func (f *SourceFile) FindModule(name string) *Module {
	for _, m := range f.Modules {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// PortDir is the direction of a module port.
type PortDir int

const (
	DirInput PortDir = iota
	DirOutput
	DirInout
)

func (d PortDir) String() string {
	switch d {
	case DirInput:
		return "input"
	case DirOutput:
		return "output"
	case DirInout:
		return "inout"
	}
	return "?"
}

// Range is a bit range [MSB:LSB]. Both bounds are constant expressions.
type Range struct {
	MSB Expr
	LSB Expr
}

// Module is a Verilog module declaration.
type Module struct {
	Name     string
	Pos      Position
	Params   []*Param
	Ports    []*Port
	Items    []Item  // body items in source order
	Source   string  // raw source text of the module, for RAG code retrieval
}

// Param is a parameter or localparam declaration.
type Param struct {
	Name  string
	Value Expr
	Local bool
	Pos   Position
}

// Port is a module port. Width is resolved at elaboration time from Range.
type Port struct {
	Name  string
	Dir   PortDir
	Range *Range // nil means scalar
	Reg   bool   // declared as "output reg"
	Pos   Position
}

// Item is any module body item.
type Item interface{ itemNode() }

// NetDecl declares one or more wires or regs sharing a range.
type NetDecl struct {
	Names []string
	Range *Range
	Reg   bool
	Pos   Position
}

// Assign is a continuous assignment: assign LHS = RHS;
type Assign struct {
	LHS Expr
	RHS Expr
	Pos Position
}

// AlwaysFF is a clocked always block: always @(posedge Clk [or posedge/negedge Rst]) ...
type AlwaysFF struct {
	Clk      string
	Rst      string // asynchronous reset signal name, "" if none
	RstNeg   bool   // reset triggers on negedge
	Body     []Stmt
	Pos      Position
}

// Instance is a module or primitive-gate instantiation.
type Instance struct {
	ModuleName string
	Name       string
	ParamOver  []Connection // parameter overrides, named or ordered
	Conns      []Connection
	Pos        Position
}

// Connection binds a port (or parameter) to an expression. Name is "" for
// ordered connections.
type Connection struct {
	Name string
	Expr Expr // nil for explicitly unconnected: .port()
}

// GatePrim is a built-in gate primitive instantiation: nand g (out, a, b);
type GatePrim struct {
	Kind string // and, or, nand, nor, xor, xnor, not, buf
	Name string
	Args []Expr // first is output
	Pos  Position
}

func (*NetDecl) itemNode()  {}
func (*Assign) itemNode()   {}
func (*AlwaysFF) itemNode() {}
func (*Instance) itemNode() {}
func (*GatePrim) itemNode() {}

// Stmt is a statement inside an always block.
type Stmt interface{ stmtNode() }

// NonBlocking is a nonblocking assignment: LHS <= RHS;
type NonBlocking struct {
	LHS Expr
	RHS Expr
	Pos Position
}

// IfStmt is if (Cond) Then else Else within an always block.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Pos  Position
}

func (*NonBlocking) stmtNode() {}
func (*IfStmt) stmtNode()      {}

// Expr is any Verilog expression.
type Expr interface {
	exprNode()
	String() string
}

// Ident is a plain identifier reference.
type Ident struct {
	Name string
	Pos  Position
}

// Number is a literal, optionally sized: 8'hFF, 4'b1010, 12, 'd3.
type Number struct {
	Width int    // 0 if unsized
	Value uint64
	Pos   Position
}

// Unary is a unary operation. Op is one of ~ ! - & | ^ ~& ~| ~^.
type Unary struct {
	Op string
	X  Expr
	Pos Position
}

// Binary is a binary operation.
type Binary struct {
	Op   string
	L, R Expr
	Pos  Position
}

// Ternary is Cond ? T : F.
type Ternary struct {
	Cond, T, F Expr
	Pos        Position
}

// Index is a bit select X[I].
type Index struct {
	X   Expr
	I   Expr
	Pos Position
}

// Slice is a part select X[MSB:LSB].
type Slice struct {
	X        Expr
	MSB, LSB Expr
	Pos      Position
}

// Concat is a concatenation {A, B, ...}.
type Concat struct {
	Parts []Expr
	Pos   Position
}

// Repl is a replication {N{X}}.
type Repl struct {
	N   Expr
	X   Expr
	Pos Position
}

func (*Ident) exprNode()   {}
func (*Number) exprNode()  {}
func (*Unary) exprNode()   {}
func (*Binary) exprNode()  {}
func (*Ternary) exprNode() {}
func (*Index) exprNode()   {}
func (*Slice) exprNode()   {}
func (*Concat) exprNode()  {}
func (*Repl) exprNode()    {}

func (e *Ident) String() string { return e.Name }

func (e *Number) String() string {
	if e.Width > 0 {
		return fmt.Sprintf("%d'h%x", e.Width, e.Value)
	}
	return fmt.Sprintf("%d", e.Value)
}

func (e *Unary) String() string  { return e.Op + parenthesize(e.X) }
func (e *Binary) String() string { return parenthesize(e.L) + " " + e.Op + " " + parenthesize(e.R) }
func (e *Ternary) String() string {
	return parenthesize(e.Cond) + " ? " + parenthesize(e.T) + " : " + parenthesize(e.F)
}
func (e *Index) String() string { return parenthesize(e.X) + "[" + e.I.String() + "]" }
func (e *Slice) String() string {
	return parenthesize(e.X) + "[" + e.MSB.String() + ":" + e.LSB.String() + "]"
}
func (e *Concat) String() string {
	parts := make([]string, len(e.Parts))
	for i, p := range e.Parts {
		parts[i] = p.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
func (e *Repl) String() string { return "{" + e.N.String() + "{" + e.X.String() + "}}" }

func parenthesize(e Expr) string {
	switch e.(type) {
	case *Binary, *Ternary:
		return "(" + e.String() + ")"
	case *Unary:
		// Nested unaries must be parenthesized: "&&x" would lex as the
		// logical-and operator rather than two reductions.
		return "(" + e.String() + ")"
	}
	return e.String()
}
