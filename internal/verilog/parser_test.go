package verilog

import (
	"strings"
	"testing"
)

const sampleAdder = `
// Simple ripple-carry adder.
module adder #(parameter W = 8) (
    input  [W-1:0] a,
    input  [W-1:0] b,
    input          cin,
    output [W-1:0] sum,
    output         cout
);
    wire [W:0] c;
    assign c[0] = cin;
    assign sum = a ^ b ^ c[W-1:0];
    assign cout = c[W];
endmodule
`

func TestParseANSIModule(t *testing.T) {
	f, err := Parse(sampleAdder)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(f.Modules) != 1 {
		t.Fatalf("got %d modules, want 1", len(f.Modules))
	}
	m := f.Modules[0]
	if m.Name != "adder" {
		t.Errorf("name = %q, want adder", m.Name)
	}
	if len(m.Params) != 1 || m.Params[0].Name != "W" {
		t.Fatalf("params = %+v, want one param W", m.Params)
	}
	if len(m.Ports) != 5 {
		t.Fatalf("got %d ports, want 5", len(m.Ports))
	}
	wantDirs := []PortDir{DirInput, DirInput, DirInput, DirOutput, DirOutput}
	wantNames := []string{"a", "b", "cin", "sum", "cout"}
	for i, p := range m.Ports {
		if p.Name != wantNames[i] || p.Dir != wantDirs[i] {
			t.Errorf("port %d = %s/%s, want %s/%s", i, p.Name, p.Dir, wantNames[i], wantDirs[i])
		}
	}
	if m.Ports[2].Range != nil {
		t.Errorf("cin should be scalar")
	}
	if m.Ports[0].Range == nil {
		t.Errorf("a should have a range")
	}
	if !strings.Contains(m.Source, "endmodule") || !strings.Contains(m.Source, "module adder") {
		t.Errorf("module Source not captured: %q", m.Source)
	}
}

func TestParseClassicPorts(t *testing.T) {
	src := `
module top(clk, rst, d, q);
    input clk, rst;
    input [3:0] d;
    output [3:0] q;
    reg [3:0] q;
    always @(posedge clk or posedge rst) begin
        if (rst)
            q <= 4'b0;
        else
            q <= d;
    end
endmodule
`
	m, err := ParseModule(src)
	if err != nil {
		t.Fatalf("ParseModule: %v", err)
	}
	if len(m.Ports) != 4 {
		t.Fatalf("got %d ports, want 4", len(m.Ports))
	}
	if m.Ports[0].Name != "clk" || m.Ports[0].Dir != DirInput {
		t.Errorf("port 0 = %+v, want input clk", m.Ports[0])
	}
	if m.Ports[3].Name != "q" || m.Ports[3].Dir != DirOutput {
		t.Errorf("port 3 = %+v, want output q", m.Ports[3])
	}
	// Body should contain the NetDecl for reg q and the AlwaysFF.
	var ff *AlwaysFF
	for _, it := range m.Items {
		if v, ok := it.(*AlwaysFF); ok {
			ff = v
		}
	}
	if ff == nil {
		t.Fatal("no AlwaysFF item parsed")
	}
	if ff.Clk != "clk" || ff.Rst != "rst" || ff.RstNeg {
		t.Errorf("always = clk:%s rst:%s neg:%v, want clk/rst/posedge", ff.Clk, ff.Rst, ff.RstNeg)
	}
	ifs, ok := ff.Body[0].(*IfStmt)
	if !ok {
		t.Fatalf("body[0] is %T, want *IfStmt", ff.Body[0])
	}
	if len(ifs.Then) != 1 || len(ifs.Else) != 1 {
		t.Errorf("if arms = %d/%d, want 1/1", len(ifs.Then), len(ifs.Else))
	}
}

func TestParseInstanceAndGates(t *testing.T) {
	src := `
module top(input a, input b, output y, output z);
    wire n1;
    nand g0 (n1, a, b);
    sub #(.W(4)) u0 (.x(a), .y(n1), .out(y));
    sub u1 (a, b, z);
endmodule
module sub #(parameter W = 2) (input x, input y, output out);
    assign out = x & y;
endmodule
`
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(f.Modules) != 2 {
		t.Fatalf("got %d modules, want 2", len(f.Modules))
	}
	top := f.FindModule("top")
	if top == nil {
		t.Fatal("module top not found")
	}
	var gates []*GatePrim
	var insts []*Instance
	for _, it := range top.Items {
		switch v := it.(type) {
		case *GatePrim:
			gates = append(gates, v)
		case *Instance:
			insts = append(insts, v)
		}
	}
	if len(gates) != 1 || gates[0].Kind != "nand" || len(gates[0].Args) != 3 {
		t.Fatalf("gates = %+v, want one nand with 3 args", gates)
	}
	if len(insts) != 2 {
		t.Fatalf("got %d instances, want 2", len(insts))
	}
	if insts[0].Name != "u0" || len(insts[0].ParamOver) != 1 || insts[0].ParamOver[0].Name != "W" {
		t.Errorf("u0 param overrides wrong: %+v", insts[0].ParamOver)
	}
	if len(insts[0].Conns) != 3 || insts[0].Conns[0].Name != "x" {
		t.Errorf("u0 connections wrong: %+v", insts[0].Conns)
	}
	if insts[1].Conns[0].Name != "" {
		t.Errorf("u1 should use ordered connections")
	}
}

func TestParseExpressions(t *testing.T) {
	src := `
module e(input [7:0] a, input [7:0] b, input s, output [7:0] y, output r);
    assign y = s ? (a + b) : (a ^ {4{b[1:0]}});
    assign r = &a | ^b && !(a[3] == b[2]);
endmodule
`
	m, err := ParseModule(src)
	if err != nil {
		t.Fatalf("ParseModule: %v", err)
	}
	var assigns []*Assign
	for _, it := range m.Items {
		if a, ok := it.(*Assign); ok {
			assigns = append(assigns, a)
		}
	}
	if len(assigns) != 2 {
		t.Fatalf("got %d assigns, want 2", len(assigns))
	}
	if _, ok := assigns[0].RHS.(*Ternary); !ok {
		t.Errorf("assign 0 RHS is %T, want *Ternary", assigns[0].RHS)
	}
	// The String round-trip should at least parse structure names.
	s := assigns[0].RHS.String()
	if !strings.Contains(s, "?") || !strings.Contains(s, "{4{") {
		t.Errorf("expression String() = %q missing ternary/replication", s)
	}
}

func TestNumberDecoding(t *testing.T) {
	cases := []struct {
		lit   string
		width int
		value uint64
	}{
		{"12", 0, 12},
		{"8'hFF", 8, 255},
		{"4'b1010", 4, 10},
		{"16'd1000", 16, 1000},
		{"'h20", 0, 32},
		{"8'b0000_1111", 8, 15},
		{"4'bxx01", 4, 1}, // x maps to 0 in the synthesizable subset
	}
	for _, c := range cases {
		n, err := decodeNumber(c.lit, Position{})
		if err != nil {
			t.Errorf("decodeNumber(%q): %v", c.lit, err)
			continue
		}
		if n.Width != c.width || n.Value != c.value {
			t.Errorf("decodeNumber(%q) = width %d value %d, want %d/%d",
				c.lit, n.Width, n.Value, c.width, c.value)
		}
	}
}

func TestConstEval(t *testing.T) {
	params := map[string]int64{"W": 8, "D": 3}
	cases := []struct {
		src  string
		want int64
	}{
		{"W-1", 7},
		{"W*2+1", 17},
		{"(W+D)/2", 5},
		{"1 << D", 8},
		{"W > D ? W : D", 8},
		{"W == 8 && D != 0", 1},
	}
	for _, c := range cases {
		// Parse the expression by wrapping it in a parameter declaration.
		m, err := ParseModule("module t; localparam X = " + c.src + "; endmodule")
		if err != nil {
			t.Fatalf("parse %q: %v", c.src, err)
		}
		if len(m.Params) != 1 {
			t.Fatalf("no parameter hoisted for %q", c.src)
		}
		got, err := ConstEval(m.Params[0].Value, params)
		if err != nil {
			t.Errorf("ConstEval(%q): %v", c.src, err)
			continue
		}
		if got != c.want {
			t.Errorf("ConstEval(%q) = %d, want %d", c.src, got, c.want)
		}
	}
}

func TestConstEvalErrors(t *testing.T) {
	m, err := ParseModule("module t; localparam X = Y + 1; endmodule")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := ConstEval(m.Params[0].Value, nil); err == nil {
		t.Error("ConstEval with undefined identifier should fail")
	}
	m2, err := ParseModule("module t; localparam X = 4 / 0; endmodule")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := ConstEval(m2.Params[0].Value, nil); err == nil {
		t.Error("ConstEval divide-by-zero should fail")
	}
}

func TestRangeWidth(t *testing.T) {
	m, err := ParseModule("module t #(parameter W=16); wire [W-1:4] x; endmodule")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	decl := m.Items[0].(*NetDecl)
	w, lsb, err := RangeWidth(decl.Range, map[string]int64{"W": 16})
	if err != nil {
		t.Fatalf("RangeWidth: %v", err)
	}
	if w != 12 || lsb != 4 {
		t.Errorf("RangeWidth = %d/%d, want 12/4", w, lsb)
	}
	if w, lsb, err := RangeWidth(nil, nil); err != nil || w != 1 || lsb != 0 {
		t.Errorf("nil range = %d/%d/%v, want 1/0/nil", w, lsb, err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"module",                                     // truncated
		"module m(; endmodule",                       // bad port list
		"module m(input a); assign a = ; endmodule",  // missing RHS
		"module m(input a); garbage !! ; endmodule",  // junk item
		"module m(input a); always @(a) x <= 1; endmodule", // non-edge sensitivity
		"module m(input a) endmodule",                // missing semicolon
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseComments(t *testing.T) {
	src := `
// leading comment
module m(input a, output y); /* block
comment */ assign y = ~a; // trailing
endmodule
`
	m, err := ParseModule(src)
	if err != nil {
		t.Fatalf("ParseModule: %v", err)
	}
	if len(m.Items) != 1 {
		t.Fatalf("got %d items, want 1", len(m.Items))
	}
}

func TestFindModule(t *testing.T) {
	f, err := Parse("module a(input x, output y); assign y = x; endmodule\nmodule b(input x, output y); assign y = ~x; endmodule")
	if err != nil {
		t.Fatal(err)
	}
	if f.FindModule("b") == nil || f.FindModule("a") == nil {
		t.Error("FindModule failed for existing modules")
	}
	if f.FindModule("c") != nil {
		t.Error("FindModule returned non-nil for missing module")
	}
}
