package verilog

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/inputlimits"
	"repro/internal/resilience"
)

// TestParseMalformedInputs is the malformed-input regression corpus:
// truncated, garbage, and adversarially nested sources must all return a
// typed error (or parse) without panicking or hanging.
func TestParseMalformedInputs(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"garbage", "\x00\xff\xfe garbage !!!"},
		{"truncated module header", "module"},
		{"truncated port list", "module m(input a"},
		{"missing endmodule", "module m(input a, output y); assign y = a;"},
		{"unterminated comment", "module m; /* never closed"},
		{"unterminated string directive", "module m; `define X \"abc"},
		{"bad number base", "module m; assign y = 4'q0; endmodule"},
		{"based literal no digits", "module m; assign y = 8'h; endmodule"},
		{"overflowing width", "module m; assign y = 99999999999999999999'h0; endmodule"},
		{"keyword as identifier", "module module; endmodule"},
		{"stray punct", "module m; ; endmodule"},
		{"deep parens", "module m; assign y = " + strings.Repeat("(", 100000) + "a"},
		{"deep unary chain", "module m; assign y = " + strings.Repeat("~", 100000) + "a; endmodule"},
		{"deep ternary", "module m; assign y = " + strings.Repeat("a ? ", 50000) + "b" + strings.Repeat(" : c", 50000) + "; endmodule"},
		{"deep concat", "module m; assign y = " + strings.Repeat("{", 80000) + "a"},
		{"deep if nesting", "module m(input c, d, output reg q); always @(posedge c) " + strings.Repeat("if (d) ", 60000) + "q <= d; endmodule"},
		{"many modules", strings.Repeat("module m; endmodule\n", 5000)},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			// A panic or stack overflow fails the test by crashing; a hang
			// fails via the test timeout. Anything else — error or clean
			// parse — is acceptable here.
			_, err := Parse(tc.src)
			t.Logf("Parse: %v", err)
		})
	}
}

// TestParseBudgetTyped asserts budget violations surface as typed
// *inputlimits.LimitError values in the resilience taxonomy.
func TestParseBudgetTyped(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		budget inputlimits.Budget
		limit  inputlimits.Limit
	}{
		{"bytes", strings.Repeat("x", 100), inputlimits.Budget{MaxBytes: 10}, inputlimits.LimitBytes},
		{"tokens", "module m; wire " + strings.Repeat("a, ", 100) + "b; endmodule", inputlimits.Budget{MaxTokens: 16}, inputlimits.LimitTokens},
		{"depth", "module m; assign y = ((((((((a)))))))); endmodule", inputlimits.Budget{MaxDepth: 4}, inputlimits.LimitDepth},
		{"statements", "module m; wire a; wire b; wire c; endmodule", inputlimits.Budget{MaxStatements: 2}, inputlimits.LimitStatements},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseWithBudget(tc.src, tc.budget)
			var le *inputlimits.LimitError
			if !errors.As(err, &le) {
				t.Fatalf("want *inputlimits.LimitError, got %v", err)
			}
			if le.Limit != tc.limit {
				t.Fatalf("tripped %q, want %q", le.Limit, tc.limit)
			}
			if !errors.Is(err, resilience.ErrBudgetExceeded) {
				t.Fatalf("error %v must map to resilience.ErrBudgetExceeded", err)
			}
		})
	}
}

// TestDefaultBudgetBoundsDeepNesting: under the serving defaults, an input
// built purely to blow the parser stack is rejected by the depth budget
// instead of crashing the process.
func TestDefaultBudgetBoundsDeepNesting(t *testing.T) {
	src := "module m; assign y = " + strings.Repeat("(", 1<<20) + "a"
	_, err := Parse(src)
	if err == nil {
		t.Fatal("expected an error")
	}
	var le *inputlimits.LimitError
	if !errors.As(err, &le) {
		t.Fatalf("want a limit error under default budget, got %v", err)
	}
}

// TestBudgetDoesNotRejectLegitimateDesigns: a representative synthesizable
// module parses under the default budget unchanged.
func TestBudgetDoesNotRejectLegitimateDesigns(t *testing.T) {
	var b strings.Builder
	b.WriteString("module big(input clk, input [31:0] a, output reg [31:0] q);\n")
	for i := 0; i < 2000; i++ {
		fmt.Fprintf(&b, "wire t%d; assign t%d = a[%d] ^ a[%d];\n", i, i, i%32, (i+1)%32)
	}
	b.WriteString("always @(posedge clk) q <= a;\nendmodule\n")
	if _, err := Parse(b.String()); err != nil {
		t.Fatalf("legitimate design rejected: %v", err)
	}
}
