package verilog

import "fmt"

// ConstEval evaluates a constant expression given a parameter environment.
// It is used for parameter values, ranges, and replication counts.
func ConstEval(e Expr, params map[string]int64) (int64, error) {
	switch v := e.(type) {
	case *Number:
		return int64(v.Value), nil
	case *Ident:
		if val, ok := params[v.Name]; ok {
			return val, nil
		}
		return 0, fmt.Errorf("%s: %q is not a constant parameter", v.Pos, v.Name)
	case *Unary:
		x, err := ConstEval(v.X, params)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case "-":
			return -x, nil
		case "~":
			return ^x, nil
		case "!":
			if x == 0 {
				return 1, nil
			}
			return 0, nil
		}
		return 0, fmt.Errorf("%s: unary %q not allowed in constant expression", v.Pos, v.Op)
	case *Binary:
		l, err := ConstEval(v.L, params)
		if err != nil {
			return 0, err
		}
		r, err := ConstEval(v.R, params)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case "+":
			return l + r, nil
		case "-":
			return l - r, nil
		case "*":
			return l * r, nil
		case "/":
			if r == 0 {
				return 0, fmt.Errorf("%s: division by zero in constant expression", v.Pos)
			}
			return l / r, nil
		case "%":
			if r == 0 {
				return 0, fmt.Errorf("%s: modulo by zero in constant expression", v.Pos)
			}
			return l % r, nil
		case "<<", "<<<":
			return l << uint(r), nil
		case ">>", ">>>":
			return l >> uint(r), nil
		case "&":
			return l & r, nil
		case "|":
			return l | r, nil
		case "^":
			return l ^ r, nil
		case "==":
			return b2i(l == r), nil
		case "!=":
			return b2i(l != r), nil
		case "<":
			return b2i(l < r), nil
		case "<=":
			return b2i(l <= r), nil
		case ">":
			return b2i(l > r), nil
		case ">=":
			return b2i(l >= r), nil
		case "&&":
			return b2i(l != 0 && r != 0), nil
		case "||":
			return b2i(l != 0 || r != 0), nil
		}
		return 0, fmt.Errorf("%s: binary %q not allowed in constant expression", v.Pos, v.Op)
	case *Ternary:
		c, err := ConstEval(v.Cond, params)
		if err != nil {
			return 0, err
		}
		if c != 0 {
			return ConstEval(v.T, params)
		}
		return ConstEval(v.F, params)
	}
	return 0, fmt.Errorf("expression %s is not constant", e.String())
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// RangeWidth resolves a range to its bit width under a parameter environment.
// A nil range has width 1.
func RangeWidth(r *Range, params map[string]int64) (width, lsb int, err error) {
	if r == nil {
		return 1, 0, nil
	}
	msbV, err := ConstEval(r.MSB, params)
	if err != nil {
		return 0, 0, err
	}
	lsbV, err := ConstEval(r.LSB, params)
	if err != nil {
		return 0, 0, err
	}
	if msbV < lsbV {
		return 0, 0, fmt.Errorf("descending range [%d:%d] not supported", msbV, lsbV)
	}
	return int(msbV - lsbV + 1), int(lsbV), nil
}
