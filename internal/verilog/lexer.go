package verilog

import (
	"fmt"
	"strings"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber // raw literal text, decoded by the parser
	tokPunct  // operators and punctuation
	tokKeyword
)

type token struct {
	kind tokenKind
	text string
	pos  Position
}

var keywords = map[string]bool{
	"module": true, "endmodule": true, "input": true, "output": true,
	"inout": true, "wire": true, "reg": true, "assign": true,
	"always": true, "posedge": true, "negedge": true, "begin": true,
	"end": true, "if": true, "else": true, "parameter": true,
	"localparam": true, "and": true, "or": true, "nand": true,
	"nor": true, "xor": true, "xnor": true, "not": true, "buf": true,
}

// multi-character punctuation, longest first.
var multiPunct = []string{
	"<<<", ">>>", "===", "!==",
	"<=", ">=", "==", "!=", "&&", "||", "<<", ">>", "~&", "~|", "~^", "^~",
}

// lexer converts Verilog source into tokens, discarding comments.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (lx *lexer) pos() Position { return Position{Line: lx.line, Col: lx.col} }

func (lx *lexer) advance(n int) {
	for i := 0; i < n; i++ {
		if lx.off < len(lx.src) && lx.src[lx.off] == '\n' {
			lx.line++
			lx.col = 1
		} else {
			lx.col++
		}
		lx.off++
	}
}

func (lx *lexer) peek() byte {
	if lx.off < len(lx.src) {
		return lx.src[lx.off]
	}
	return 0
}

func (lx *lexer) peekAt(n int) byte {
	if lx.off+n < len(lx.src) {
		return lx.src[lx.off+n]
	}
	return 0
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') ||
		c == 'x' || c == 'X' || c == 'z' || c == 'Z' || c == '?' || c == '_'
}

// next returns the next token, skipping whitespace and comments.
func (lx *lexer) next() (token, error) {
	for {
		// Skip whitespace.
		for lx.off < len(lx.src) {
			c := lx.src[lx.off]
			if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
				lx.advance(1)
				continue
			}
			break
		}
		if lx.off >= len(lx.src) {
			return token{kind: tokEOF, pos: lx.pos()}, nil
		}
		// Skip comments.
		if lx.peek() == '/' && lx.peekAt(1) == '/' {
			for lx.off < len(lx.src) && lx.src[lx.off] != '\n' {
				lx.advance(1)
			}
			continue
		}
		if lx.peek() == '/' && lx.peekAt(1) == '*' {
			start := lx.pos()
			lx.advance(2)
			for {
				if lx.off >= len(lx.src) {
					return token{}, fmt.Errorf("%s: unterminated block comment", start)
				}
				if lx.peek() == '*' && lx.peekAt(1) == '/' {
					lx.advance(2)
					break
				}
				lx.advance(1)
			}
			continue
		}
		// Skip compiler directives (`timescale, `define usage is out of subset
		// but tolerated as whole-line skips).
		if lx.peek() == '`' {
			for lx.off < len(lx.src) && lx.src[lx.off] != '\n' {
				lx.advance(1)
			}
			continue
		}
		break
	}

	pos := lx.pos()
	c := lx.peek()

	switch {
	case isIdentStart(c):
		start := lx.off
		for lx.off < len(lx.src) && isIdentPart(lx.src[lx.off]) {
			lx.advance(1)
		}
		text := lx.src[start:lx.off]
		if keywords[text] {
			return token{kind: tokKeyword, text: text, pos: pos}, nil
		}
		return token{kind: tokIdent, text: text, pos: pos}, nil

	case isDigit(c) || c == '\'':
		return lx.lexNumber(pos)

	default:
		for _, mp := range multiPunct {
			if strings.HasPrefix(lx.src[lx.off:], mp) {
				lx.advance(len(mp))
				return token{kind: tokPunct, text: mp, pos: pos}, nil
			}
		}
		// Slice the source rather than string(c): the one-byte substring
		// shares src's backing array (which the AST retains anyway) instead
		// of allocating a fresh string per punctuation token.
		text := lx.src[lx.off : lx.off+1]
		lx.advance(1)
		return token{kind: tokPunct, text: text, pos: pos}, nil
	}
}

// lexNumber scans decimal literals and based literals like 8'hFF, 'b0101.
func (lx *lexer) lexNumber(pos Position) (token, error) {
	start := lx.off
	// Optional size prefix.
	for lx.off < len(lx.src) && (isDigit(lx.src[lx.off]) || lx.src[lx.off] == '_') {
		lx.advance(1)
	}
	if lx.peek() == '\'' {
		lx.advance(1)
		base := lx.peek()
		switch base {
		case 'b', 'B', 'o', 'O', 'd', 'D', 'h', 'H':
			lx.advance(1)
		default:
			return token{}, fmt.Errorf("%s: invalid number base %q", pos, string(base))
		}
		digits := 0
		for lx.off < len(lx.src) && isHexDigit(lx.src[lx.off]) {
			lx.advance(1)
			digits++
		}
		if digits == 0 {
			return token{}, fmt.Errorf("%s: based literal has no digits", pos)
		}
	}
	return token{kind: tokNumber, text: lx.src[start:lx.off], pos: pos}, nil
}
