package verilog

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestExprStringRoundTrip: printing an expression and re-parsing it yields
// a structurally identical expression (compared via a second print).
func TestExprStringRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		e := randomExpr(rng, 4)
		src := fmt.Sprintf("module t(input a, output y); assign y = %s; endmodule", e.String())
		m, err := ParseModule(src)
		if err != nil {
			t.Fatalf("round trip parse of %q failed: %v", e.String(), err)
		}
		var got Expr
		for _, it := range m.Items {
			if a, ok := it.(*Assign); ok {
				got = a.RHS
			}
		}
		if got == nil {
			t.Fatalf("no assign parsed from %q", src)
		}
		if got.String() != e.String() {
			t.Fatalf("round trip changed expression:\n  in:  %s\n  out: %s", e.String(), got.String())
		}
	}
}

// randomExpr builds a random expression over a few identifiers.
func randomExpr(rng *rand.Rand, depth int) Expr {
	if depth == 0 || rng.Intn(4) == 0 {
		switch rng.Intn(3) {
		case 0:
			return &Ident{Name: []string{"a", "b", "sig", "x1"}[rng.Intn(4)]}
		case 1:
			return &Number{Width: 8, Value: uint64(rng.Intn(256))}
		default:
			return &Index{X: &Ident{Name: "bus"}, I: &Number{Value: uint64(rng.Intn(8))}}
		}
	}
	switch rng.Intn(5) {
	case 0:
		ops := []string{"&", "|", "^", "+", "-", "==", "<", ">>", "<<"}
		return &Binary{Op: ops[rng.Intn(len(ops))], L: randomExpr(rng, depth-1), R: randomExpr(rng, depth-1)}
	case 1:
		ops := []string{"~", "!", "&", "|", "^"}
		return &Unary{Op: ops[rng.Intn(len(ops))], X: randomExpr(rng, depth-1)}
	case 2:
		return &Ternary{Cond: randomExpr(rng, depth-1), T: randomExpr(rng, depth-1), F: randomExpr(rng, depth-1)}
	case 3:
		return &Concat{Parts: []Expr{randomExpr(rng, depth-1), randomExpr(rng, depth-1)}}
	default:
		return &Repl{N: &Number{Value: uint64(1 + rng.Intn(4))}, X: randomExpr(rng, depth-1)}
	}
}

// TestModuleSourceCapture: every parsed module's Source field re-parses to
// a module with the same name and port count (the property SynthRAG's code
// retrieval depends on).
func TestModuleSourceCapture(t *testing.T) {
	src := `
module first(input a, output y);
    assign y = ~a;
endmodule

module second #(parameter W = 4) (input [W-1:0] d, output [W-1:0] q);
    assign q = d ^ {W{1'b1}};
endmodule
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range f.Modules {
		re, err := ParseModule(m.Source)
		if err != nil {
			t.Fatalf("module %s: captured source does not re-parse: %v\n%s", m.Name, err, m.Source)
		}
		if re.Name != m.Name {
			t.Errorf("captured source has name %s, want %s", re.Name, m.Name)
		}
		if len(re.Ports) != len(m.Ports) {
			t.Errorf("module %s: port count changed %d -> %d", m.Name, len(m.Ports), len(re.Ports))
		}
	}
}
