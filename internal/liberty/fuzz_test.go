package liberty

import (
	"testing"

	"repro/internal/inputlimits"
)

var fuzzBudget = inputlimits.Budget{
	MaxBytes:      1 << 16,
	MaxTokens:     1 << 13,
	MaxStatements: 1 << 10,
	MaxSteps:      1 << 16,
}

// FuzzParseLiberty asserts the parser never panics or hangs on arbitrary
// .lib text, and the round-trip property: an accepted library serializes
// through WriteLib to text that re-parses to an identical serialization.
func FuzzParseLiberty(f *testing.F) {
	seeds := []string{
		WriteLib(Nangate45()),
		"library (tiny) {\n  cell (INV_X1) {\n    function : \"INV\";\n    drive_strength : 1;\n    area : 0.5;\n  }\n}\n",
		"library (wl) {\n  default_wire_load : \"w\";\n  wire_load (\"w\") {\n    slope : 0.002;\n    resistance : 0.9;\n    fanout_capacitance (1, 0.0021);\n  }\n}\n",
		"library (broken) {\n  cell (X) {",
		"library (c) { /* comment */ }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		l, err := ParseLibWithBudget(src, fuzzBudget)
		if err != nil {
			return
		}
		printed := WriteLib(l)
		l2, err := ParseLib(printed)
		if err != nil {
			t.Fatalf("WriteLib output does not re-parse: %v\n%s", err, printed)
		}
		if got := WriteLib(l2); got != printed {
			t.Fatalf("round trip changed library:\n--- first print ---\n%s\n--- second print ---\n%s", printed, got)
		}
	})
}
