package liberty

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/inputlimits"
)

// This file implements a writer and parser for a Liberty-format subset:
// nested group statements "name (arg) { ... }" containing simple attributes
// "name : value ;" and complex attributes "name (a, b);". The attribute
// vocabulary is the simulator's linear delay model rather than full NLDM
// tables, but the syntax is Liberty's, so libraries round-trip through .lib
// text just as the paper's flow consumes the Nangate 45nm library file.

// WriteLib serializes a library to Liberty-subset text.
func WriteLib(l *Library) string {
	var b strings.Builder
	fmt.Fprintf(&b, "library (%s) {\n", l.Name)
	if l.DefaultWL != "" {
		fmt.Fprintf(&b, "  default_wire_load : \"%s\";\n", l.DefaultWL)
	}
	wlNames := make([]string, 0, len(l.WireLoads))
	for name := range l.WireLoads {
		wlNames = append(wlNames, name)
	}
	sort.Strings(wlNames)
	for _, name := range wlNames {
		wl := l.WireLoads[name]
		fmt.Fprintf(&b, "  wire_load (\"%s\") {\n", wl.Name)
		fmt.Fprintf(&b, "    slope : %g;\n", wl.Slope)
		fmt.Fprintf(&b, "    resistance : %g;\n", wl.Res)
		for i, c := range wl.Table {
			fmt.Fprintf(&b, "    fanout_capacitance (%d, %g);\n", i+1, c)
		}
		b.WriteString("  }\n")
	}
	for _, c := range l.Cells() {
		fmt.Fprintf(&b, "  cell (%s) {\n", c.Name)
		fmt.Fprintf(&b, "    function : \"%s\";\n", c.Kind)
		fmt.Fprintf(&b, "    drive_strength : %d;\n", c.Drive)
		fmt.Fprintf(&b, "    area : %g;\n", c.Area)
		fmt.Fprintf(&b, "    input_capacitance : %g;\n", c.InputCap)
		fmt.Fprintf(&b, "    intrinsic_delay : %g;\n", c.Intrinsic)
		fmt.Fprintf(&b, "    drive_resistance : %g;\n", c.DriveRes)
		fmt.Fprintf(&b, "    max_capacitance : %g;\n", c.MaxCap)
		fmt.Fprintf(&b, "    cell_leakage_power : %g;\n", c.Leakage)
		if c.Kind.IsSequential() {
			fmt.Fprintf(&b, "    setup : %g;\n", c.Setup)
			fmt.Fprintf(&b, "    clk_to_q : %g;\n", c.ClkToQ)
		}
		b.WriteString("  }\n")
	}
	b.WriteString("}\n")
	return b.String()
}

// ParseLib parses Liberty-subset text produced by WriteLib (or hand-written
// in the same dialect) back into a Library, under the process-default input
// budget. Library files are a trust boundary — external .lib text must not
// be able to stall or crash the process — so oversized or adversarial
// inputs return a typed *inputlimits.LimitError.
func ParseLib(src string) (*Library, error) {
	return ParseLibWithBudget(src, inputlimits.For(inputlimits.SurfaceLiberty))
}

// ParseLibWithBudget parses Liberty-subset text under an explicit budget.
// The zero budget disables all limits.
func ParseLibWithBudget(src string, budget inputlimits.Budget) (*Library, error) {
	m := inputlimits.NewMeter(inputlimits.SurfaceLiberty, budget)
	if err := m.CheckBytes(len(src)); err != nil {
		return nil, err
	}
	p := &libParser{src: src, meter: m}
	p.skipSpace()
	if !p.eatWord("library") {
		return nil, p.errf("expected 'library'")
	}
	name, err := p.parenArg()
	if err != nil {
		return nil, err
	}
	l := NewLibrary(name)
	if err := p.expect('{'); err != nil {
		return nil, err
	}
	items := 0
	for {
		p.skipSpace()
		if p.peek() == '}' {
			p.pos++
			break
		}
		items++
		if err := p.meter.Statement(items); err != nil {
			return nil, err
		}
		word, err := p.word()
		if err != nil {
			return nil, err
		}
		switch word {
		case "default_wire_load":
			v, err := p.simpleValue()
			if err != nil {
				return nil, err
			}
			l.DefaultWL = v
		case "wire_load":
			wl, err := p.parseWireLoad()
			if err != nil {
				return nil, err
			}
			l.WireLoads[wl.Name] = wl
		case "cell":
			c, err := p.parseCell()
			if err != nil {
				return nil, err
			}
			if err := l.AddCell(c); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf("unknown library item %q", word)
		}
	}
	return l, nil
}

type libParser struct {
	src   string
	pos   int
	meter *inputlimits.Meter
}

func (p *libParser) errf(format string, args ...any) error {
	line := 1 + strings.Count(p.src[:min(p.pos, len(p.src))], "\n")
	return fmt.Errorf("lib line %d: %s", line, fmt.Sprintf(format, args...))
}

func (p *libParser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *libParser) skipSpace() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			p.pos++
			continue
		}
		if c == '/' && p.pos+1 < len(p.src) && p.src[p.pos+1] == '*' {
			end := strings.Index(p.src[p.pos+2:], "*/")
			if end < 0 {
				p.pos = len(p.src)
				return
			}
			p.pos += end + 4
			continue
		}
		return
	}
}

func (p *libParser) eatWord(w string) bool {
	p.skipSpace()
	if strings.HasPrefix(p.src[p.pos:], w) {
		p.pos += len(w)
		return true
	}
	return false
}

func (p *libParser) word() (string, error) {
	// Every attribute and group parse consumes a word first, so metering
	// here bounds all parser loops.
	if err := p.meter.Token(); err != nil {
		return "", err
	}
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return "", p.errf("expected word, got %q", string(p.peek()))
	}
	return p.src[start:p.pos], nil
}

func (p *libParser) expect(c byte) error {
	p.skipSpace()
	if p.peek() != c {
		return p.errf("expected %q, got %q", string(c), string(p.peek()))
	}
	p.pos++
	return nil
}

// parenArg parses "(value)" where value may be quoted.
func (p *libParser) parenArg() (string, error) {
	if err := p.expect('('); err != nil {
		return "", err
	}
	p.skipSpace()
	end := strings.IndexByte(p.src[p.pos:], ')')
	if end < 0 {
		return "", p.errf("unterminated '('")
	}
	arg := strings.TrimSpace(p.src[p.pos : p.pos+end])
	arg = strings.Trim(arg, "\"")
	p.pos += end + 1
	return arg, nil
}

// simpleValue parses ": value ;".
func (p *libParser) simpleValue() (string, error) {
	if err := p.expect(':'); err != nil {
		return "", err
	}
	p.skipSpace()
	end := strings.IndexByte(p.src[p.pos:], ';')
	if end < 0 {
		return "", p.errf("missing ';'")
	}
	v := strings.TrimSpace(p.src[p.pos : p.pos+end])
	v = strings.Trim(v, "\"")
	p.pos += end + 1
	return v, nil
}

func (p *libParser) floatValue() (float64, error) {
	s, err := p.simpleValue()
	if err != nil {
		return 0, err
	}
	return strconv.ParseFloat(s, 64)
}

func (p *libParser) parseWireLoad() (*WireLoad, error) {
	name, err := p.parenArg()
	if err != nil {
		return nil, err
	}
	wl := &WireLoad{Name: name}
	if err := p.expect('{'); err != nil {
		return nil, err
	}
	type entry struct {
		fanout int
		cap    float64
	}
	var entries []entry
	for {
		p.skipSpace()
		if p.peek() == '}' {
			p.pos++
			break
		}
		word, err := p.word()
		if err != nil {
			return nil, err
		}
		switch word {
		case "slope":
			if wl.Slope, err = p.floatValue(); err != nil {
				return nil, err
			}
		case "resistance":
			if wl.Res, err = p.floatValue(); err != nil {
				return nil, err
			}
		case "fanout_capacitance":
			arg, err := p.parenArg()
			if err != nil {
				return nil, err
			}
			parts := strings.Split(arg, ",")
			if len(parts) != 2 {
				return nil, p.errf("fanout_capacitance needs 2 args")
			}
			fo, err := strconv.Atoi(strings.TrimSpace(parts[0]))
			if err != nil {
				return nil, err
			}
			c, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
			if err != nil {
				return nil, err
			}
			entries = append(entries, entry{fo, c})
			if err := p.expect(';'); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf("unknown wire_load attribute %q", word)
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].fanout < entries[j].fanout })
	for _, e := range entries {
		wl.Table = append(wl.Table, e.cap)
	}
	return wl, nil
}

func (p *libParser) parseCell() (*Cell, error) {
	name, err := p.parenArg()
	if err != nil {
		return nil, err
	}
	c := &Cell{Name: name}
	if err := p.expect('{'); err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		if p.peek() == '}' {
			p.pos++
			break
		}
		word, err := p.word()
		if err != nil {
			return nil, err
		}
		switch word {
		case "function":
			v, err := p.simpleValue()
			if err != nil {
				return nil, err
			}
			c.Kind = Kind(v)
			if _, ok := KindInputs[c.Kind]; !ok {
				return nil, p.errf("cell %s: unknown function %q", name, v)
			}
		case "drive_strength":
			v, err := p.simpleValue()
			if err != nil {
				return nil, err
			}
			if c.Drive, err = strconv.Atoi(v); err != nil {
				return nil, err
			}
		case "area":
			if c.Area, err = p.floatValue(); err != nil {
				return nil, err
			}
		case "input_capacitance":
			if c.InputCap, err = p.floatValue(); err != nil {
				return nil, err
			}
		case "intrinsic_delay":
			if c.Intrinsic, err = p.floatValue(); err != nil {
				return nil, err
			}
		case "drive_resistance":
			if c.DriveRes, err = p.floatValue(); err != nil {
				return nil, err
			}
		case "max_capacitance":
			if c.MaxCap, err = p.floatValue(); err != nil {
				return nil, err
			}
		case "cell_leakage_power":
			if c.Leakage, err = p.floatValue(); err != nil {
				return nil, err
			}
		case "setup":
			if c.Setup, err = p.floatValue(); err != nil {
				return nil, err
			}
		case "clk_to_q":
			if c.ClkToQ, err = p.floatValue(); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf("unknown cell attribute %q", word)
		}
	}
	if c.Kind == "" {
		return nil, p.errf("cell %s has no function", name)
	}
	return c, nil
}
