package liberty

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/inputlimits"
	"repro/internal/resilience"
)

// TestBuildNangate45 proves the static builder cannot fail, which is what
// lets Nangate45() discard the error.
func TestBuildNangate45(t *testing.T) {
	l, err := BuildNangate45()
	if err != nil {
		t.Fatalf("BuildNangate45: %v", err)
	}
	if len(l.Cells()) == 0 {
		t.Fatal("built library has no cells")
	}
	if l.DefaultWL != "5K_heavy_1k" {
		t.Fatalf("DefaultWL = %q", l.DefaultWL)
	}
}

// TestParseLibMalformedInputs: truncated, garbage, and pathological .lib
// text returns errors without panicking or hanging.
func TestParseLibMalformedInputs(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"garbage", "\x01\x02\x03 not a library"},
		{"truncated header", "library"},
		{"unterminated paren", "library (x"},
		{"unterminated body", "library (x) {"},
		{"unterminated comment", "library (x) { /* never"},
		{"unknown item", "library (x) { bogus_item : 1; }"},
		{"cell no function", "library (x) { cell (a) { area : 1; } }"},
		{"bad float", "library (x) { cell (a) { function : \"INV\"; area : zzz; } }"},
		{"duplicate cell", "library (x) { cell (a) { function : \"INV\"; } cell (a) { function : \"INV\"; } }"},
		{"missing semicolon", "library (x) { default_wire_load : w"},
		{"deep garbage run", "library (x) { " + strings.Repeat("cell (a) { ", 10000)},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseLib(tc.src)
			if err == nil {
				t.Fatal("expected an error")
			}
		})
	}
}

// TestParseLibBudgetTyped: oversized inputs trip typed limit errors mapped
// into the resilience taxonomy.
func TestParseLibBudgetTyped(t *testing.T) {
	src := WriteLib(Nangate45())
	_, err := ParseLibWithBudget(src, inputlimits.Budget{MaxBytes: 64})
	var le *inputlimits.LimitError
	if !errors.As(err, &le) || le.Limit != inputlimits.LimitBytes {
		t.Fatalf("want bytes limit error, got %v", err)
	}
	if !errors.Is(err, resilience.ErrBudgetExceeded) {
		t.Fatalf("error %v must map to resilience.ErrBudgetExceeded", err)
	}

	_, err = ParseLibWithBudget(src, inputlimits.Budget{MaxTokens: 8})
	if !errors.As(err, &le) || le.Limit != inputlimits.LimitTokens {
		t.Fatalf("want tokens limit error, got %v", err)
	}

	many := "library (x) {\n" + strings.Repeat("  wire_load (\"w\") {\n  }\n", 100) + "}\n"
	_, err = ParseLibWithBudget(many, inputlimits.Budget{MaxStatements: 4})
	if !errors.As(err, &le) || le.Limit != inputlimits.LimitStatements {
		t.Fatalf("want statements limit error, got %v", err)
	}
}

// TestParseLibDefaultBudgetAcceptsBuiltin: the shipped library round-trips
// under the serving-default budget.
func TestParseLibDefaultBudgetAcceptsBuiltin(t *testing.T) {
	src := WriteLib(Nangate45())
	l, err := ParseLib(src)
	if err != nil {
		t.Fatalf("ParseLib(WriteLib(Nangate45)): %v", err)
	}
	if got := WriteLib(l); got != src {
		t.Fatal("round trip changed the built-in library")
	}
}
