package liberty

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestNangate45Contents(t *testing.T) {
	l := Nangate45()
	if l.Name != "nangate45_sim" {
		t.Errorf("name = %q", l.Name)
	}
	for _, name := range []string{"INV_X1", "NAND2_X2", "XOR2_X1", "DFF_X1", "DFFR_X2", "BUF_X16", "MUX2_X2", "TIE0_X1"} {
		if l.Cell(name) == nil {
			t.Errorf("missing cell %s", name)
		}
	}
	if l.Cell("NONEXISTENT") != nil {
		t.Error("Cell should return nil for unknown name")
	}
	// Every combinational kind with inputs must have at least one cell.
	for kind, n := range KindInputs {
		if n > 0 && len(l.OfKind(kind)) == 0 {
			t.Errorf("no cells of kind %s", kind)
		}
	}
	if wl := l.WireLoad("5K_heavy_1k"); wl == nil || wl.Name != "5K_heavy_1k" {
		t.Error("missing 5K_heavy_1k wireload")
	}
	if wl := l.WireLoad("no_such_model"); wl == nil || wl.Name != "5K_heavy_1k" {
		t.Error("unknown wireload should fall back to default")
	}
}

func TestDriveOrdering(t *testing.T) {
	l := Nangate45()
	for _, kind := range []Kind{KindInv, KindBuf, KindNand2, KindXor2, KindDFF} {
		cells := l.OfKind(kind)
		for i := 1; i < len(cells); i++ {
			prev, cur := cells[i-1], cells[i]
			if cur.Drive <= prev.Drive {
				t.Errorf("%s: drives not ascending: %s then %s", kind, prev.Name, cur.Name)
			}
			if cur.DriveRes >= prev.DriveRes {
				t.Errorf("%s: stronger cell %s should have lower drive resistance", kind, cur.Name)
			}
			if cur.Area <= prev.Area {
				t.Errorf("%s: stronger cell %s should be larger", kind, cur.Name)
			}
			if cur.InputCap <= prev.InputCap {
				t.Errorf("%s: stronger cell %s should present more input cap", kind, cur.Name)
			}
		}
	}
}

func TestUpsizeDownsize(t *testing.T) {
	l := Nangate45()
	inv1 := l.Cell("INV_X1")
	inv2 := l.Upsize(inv1)
	if inv2 == nil || inv2.Name != "INV_X2" {
		t.Fatalf("Upsize(INV_X1) = %v, want INV_X2", inv2)
	}
	if back := l.Downsize(inv2); back == nil || back.Name != "INV_X1" {
		t.Errorf("Downsize(INV_X2) = %v, want INV_X1", back)
	}
	if l.Downsize(inv1) != nil {
		t.Error("Downsize of weakest should be nil")
	}
	if top := l.Strongest(KindInv); l.Upsize(top) != nil {
		t.Error("Upsize of strongest should be nil")
	}
	if l.Weakest(KindInv).Name != "INV_X1" {
		t.Error("Weakest(INV) != INV_X1")
	}
	if l.Weakest("BOGUS") != nil || l.Strongest("BOGUS") != nil {
		t.Error("Weakest/Strongest of unknown kind should be nil")
	}
}

func TestDelayModel(t *testing.T) {
	l := Nangate45()
	inv := l.Cell("INV_X1")
	d0 := inv.Delay(0)
	d1 := inv.Delay(0.01)
	if d0 != inv.Intrinsic {
		t.Errorf("Delay(0) = %g, want intrinsic %g", d0, inv.Intrinsic)
	}
	if d1 <= d0 {
		t.Error("delay must increase with load")
	}
	// A stronger inverter must be faster under the same heavy load.
	inv4 := l.Cell("INV_X4")
	if inv4.Delay(0.02) >= inv.Delay(0.02) {
		t.Error("INV_X4 should beat INV_X1 under load")
	}
	ff := l.Cell("DFF_X1")
	if ff.Delay(0.001) < ff.ClkToQ {
		t.Error("sequential delay must include clk-to-q")
	}
}

func TestWireLoadCap(t *testing.T) {
	wl := Nangate45().WireLoad("5K_heavy_1k")
	if got := wl.Cap(0); got != 0 {
		t.Errorf("Cap(0) = %g, want 0", got)
	}
	prev := 0.0
	for fo := 1; fo <= 20; fo++ {
		c := wl.Cap(fo)
		if c <= prev {
			t.Errorf("wire cap must be strictly increasing, Cap(%d)=%g Cap(%d)=%g", fo-1, prev, fo, c)
		}
		prev = c
	}
	// Extrapolation beyond the table uses the slope.
	n := len(wl.Table)
	want := wl.Table[n-1] + wl.Slope*2
	if got := wl.Cap(n + 2); math.Abs(got-want) > 1e-12 {
		t.Errorf("Cap(%d) = %g, want %g", n+2, got, want)
	}
	var nilWL *WireLoad
	if nilWL.Cap(5) != 0 {
		t.Error("nil wireload should have zero cap")
	}
}

func TestHeavierWireloadIsSlower(t *testing.T) {
	l := Nangate45()
	heavy, medium, light := l.WireLoad("5K_heavy_1k"), l.WireLoad("5K_medium_1k"), l.WireLoad("5K_light_1k")
	for fo := 1; fo <= 12; fo++ {
		if !(heavy.Cap(fo) > medium.Cap(fo) && medium.Cap(fo) > light.Cap(fo)) {
			t.Errorf("wireload ordering violated at fanout %d", fo)
		}
	}
}

func TestAddCellDuplicate(t *testing.T) {
	l := NewLibrary("x")
	c := &Cell{Name: "A", Kind: KindInv, Drive: 1}
	if err := l.AddCell(c); err != nil {
		t.Fatal(err)
	}
	if err := l.AddCell(&Cell{Name: "A", Kind: KindInv, Drive: 2}); err == nil {
		t.Error("duplicate AddCell should fail")
	}
}

func TestLibRoundTrip(t *testing.T) {
	orig := Nangate45()
	text := WriteLib(orig)
	if !strings.Contains(text, "library (nangate45_sim)") {
		t.Fatalf("missing library header in:\n%.200s", text)
	}
	parsed, err := ParseLib(text)
	if err != nil {
		t.Fatalf("ParseLib: %v", err)
	}
	if parsed.Name != orig.Name || parsed.DefaultWL != orig.DefaultWL {
		t.Errorf("header mismatch: %s/%s", parsed.Name, parsed.DefaultWL)
	}
	if len(parsed.Cells()) != len(orig.Cells()) {
		t.Fatalf("cell count %d != %d", len(parsed.Cells()), len(orig.Cells()))
	}
	for _, oc := range orig.Cells() {
		pc := parsed.Cell(oc.Name)
		if pc == nil {
			t.Errorf("cell %s lost in round trip", oc.Name)
			continue
		}
		if pc.Kind != oc.Kind || pc.Drive != oc.Drive ||
			math.Abs(pc.Area-oc.Area) > 1e-9 ||
			math.Abs(pc.DriveRes-oc.DriveRes) > 1e-9 ||
			math.Abs(pc.Setup-oc.Setup) > 1e-9 {
			t.Errorf("cell %s corrupted in round trip", oc.Name)
		}
	}
	for name, owl := range orig.WireLoads {
		pwl := parsed.WireLoads[name]
		if pwl == nil {
			t.Errorf("wireload %s lost", name)
			continue
		}
		if len(pwl.Table) != len(owl.Table) || math.Abs(pwl.Slope-owl.Slope) > 1e-12 {
			t.Errorf("wireload %s corrupted", name)
		}
	}
}

func TestParseLibErrors(t *testing.T) {
	bad := []string{
		"",
		"library { }",
		"library (x) { cell (A) { } }",                           // no function
		"library (x) { cell (A) { function : \"WAT\"; } }",       // unknown kind
		"library (x) { bogus_item : 3; }",                        // unknown item
		"library (x) { cell (A) { function : \"INV\"; area : z; } }", // bad float
	}
	for _, src := range bad {
		if _, err := ParseLib(src); err == nil {
			t.Errorf("ParseLib(%q) should fail", src)
		}
	}
}

// Property: for every cell, delay is monotone nondecreasing in load.
func TestDelayMonotoneProperty(t *testing.T) {
	l := Nangate45()
	cells := l.Cells()
	f := func(idx uint, a, b float64) bool {
		c := cells[idx%uint(len(cells))]
		la, lb := math.Abs(a), math.Abs(b)
		if la > lb {
			la, lb = lb, la
		}
		return c.Delay(la) <= c.Delay(lb)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: wireload cap is monotone in fanout for all models.
func TestWireLoadMonotoneProperty(t *testing.T) {
	l := Nangate45()
	f := func(fo uint8, which uint8) bool {
		names := []string{"5K_heavy_1k", "5K_medium_1k", "5K_light_1k"}
		wl := l.WireLoad(names[int(which)%3])
		n := int(fo)%64 + 1
		return wl.Cap(n+1) > wl.Cap(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
