// Package liberty models the standard-cell target library used by the
// synthesis simulator: cells with area, pin capacitance, a linear delay model
// (intrinsic + drive-resistance x load), leakage, sequential timing
// parameters, and wireload models. A built-in Nangate45-like library is
// provided, along with a parser and writer for a Liberty-format subset so the
// library can round-trip through .lib text the way the paper's flow consumes
// the Nangate 45nm library.
package liberty

import (
	"fmt"
	"sort"
)

// Kind identifies a cell's logic function.
type Kind string

// Supported cell functions. Combinational kinds list their input count in
// KindInputs; DFF/DFFR are the sequential elements.
const (
	KindInv   Kind = "INV"
	KindBuf   Kind = "BUF"
	KindNand2 Kind = "NAND2"
	KindNor2  Kind = "NOR2"
	KindAnd2  Kind = "AND2"
	KindOr2   Kind = "OR2"
	KindXor2  Kind = "XOR2"
	KindXnor2 Kind = "XNOR2"
	KindMux2  Kind = "MUX2"
	KindAoi21 Kind = "AOI21"
	KindOai21 Kind = "OAI21"
	KindNand3 Kind = "NAND3"
	KindNor3  Kind = "NOR3"
	KindAnd3  Kind = "AND3"
	KindOr3   Kind = "OR3"
	KindNand4 Kind = "NAND4"
	KindNor4  Kind = "NOR4"
	KindDFF   Kind = "DFF"
	KindDFFR  Kind = "DFFR" // DFF with asynchronous reset
	KindTie0  Kind = "TIE0" // constant driver
	KindTie1  Kind = "TIE1"
)

// KindInputs maps each kind to its number of logic inputs (excluding clock
// and reset pins on sequential cells).
var KindInputs = map[Kind]int{
	KindInv: 1, KindBuf: 1,
	KindNand2: 2, KindNor2: 2, KindAnd2: 2, KindOr2: 2,
	KindXor2: 2, KindXnor2: 2, KindMux2: 3,
	KindAoi21: 3, KindOai21: 3,
	KindNand3: 3, KindNor3: 3, KindAnd3: 3, KindOr3: 3,
	KindNand4: 4, KindNor4: 4,
	KindDFF: 1, KindDFFR: 1,
	KindTie0: 0, KindTie1: 0,
}

// IsSequential reports whether the kind is a flip-flop.
func (k Kind) IsSequential() bool { return k == KindDFF || k == KindDFFR }

// Cell is one library cell. Delay through the cell for an output load C (pF)
// is Intrinsic + DriveRes*C nanoseconds.
type Cell struct {
	Name      string
	Kind      Kind
	Drive     int     // drive strength: 1, 2, 4, 8...
	Area      float64 // um^2
	InputCap  float64 // pF per input pin
	Intrinsic float64 // ns
	DriveRes  float64 // ns per pF
	MaxCap    float64 // pF, maximum drivable load
	Leakage   float64 // nW
	Setup     float64 // ns, sequential only
	ClkToQ    float64 // ns, sequential only
}

// Delay returns the pin-to-pin delay driving load cap (pF).
func (c *Cell) Delay(loadCap float64) float64 {
	if c.Kind.IsSequential() {
		return c.ClkToQ + c.DriveRes*loadCap
	}
	return c.Intrinsic + c.DriveRes*loadCap
}

// Library is a set of cells plus wireload models.
type Library struct {
	Name      string
	cells     map[string]*Cell
	byKind    map[Kind][]*Cell // sorted by ascending drive
	WireLoads map[string]*WireLoad
	DefaultWL string
}

// NewLibrary creates an empty library.
func NewLibrary(name string) *Library {
	return &Library{
		Name:      name,
		cells:     make(map[string]*Cell),
		byKind:    make(map[Kind][]*Cell),
		WireLoads: make(map[string]*WireLoad),
	}
}

// AddCell registers a cell. Duplicate names are an error.
func (l *Library) AddCell(c *Cell) error {
	if _, dup := l.cells[c.Name]; dup {
		return fmt.Errorf("library %s: duplicate cell %s", l.Name, c.Name)
	}
	l.cells[c.Name] = c
	l.byKind[c.Kind] = append(l.byKind[c.Kind], c)
	sort.Slice(l.byKind[c.Kind], func(i, j int) bool {
		return l.byKind[c.Kind][i].Drive < l.byKind[c.Kind][j].Drive
	})
	return nil
}

// Cell returns the named cell, or nil.
func (l *Library) Cell(name string) *Cell { return l.cells[name] }

// Cells returns all cells sorted by name.
func (l *Library) Cells() []*Cell {
	out := make([]*Cell, 0, len(l.cells))
	for _, c := range l.cells {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// OfKind returns cells of a kind sorted by ascending drive strength.
func (l *Library) OfKind(k Kind) []*Cell { return l.byKind[k] }

// Weakest returns the lowest-drive cell of a kind, or nil.
func (l *Library) Weakest(k Kind) *Cell {
	cs := l.byKind[k]
	if len(cs) == 0 {
		return nil
	}
	return cs[0]
}

// Strongest returns the highest-drive cell of a kind, or nil.
func (l *Library) Strongest(k Kind) *Cell {
	cs := l.byKind[k]
	if len(cs) == 0 {
		return nil
	}
	return cs[len(cs)-1]
}

// Upsize returns the next stronger cell of the same kind, or nil if c is
// already the strongest.
func (l *Library) Upsize(c *Cell) *Cell {
	cs := l.byKind[c.Kind]
	for i, cand := range cs {
		if cand.Name == c.Name && i+1 < len(cs) {
			return cs[i+1]
		}
	}
	return nil
}

// Downsize returns the next weaker cell of the same kind, or nil.
func (l *Library) Downsize(c *Cell) *Cell {
	cs := l.byKind[c.Kind]
	for i, cand := range cs {
		if cand.Name == c.Name && i > 0 {
			return cs[i-1]
		}
	}
	return nil
}

// WireLoad returns the named wireload model, falling back to the default.
func (l *Library) WireLoad(name string) *WireLoad {
	if wl, ok := l.WireLoads[name]; ok {
		return wl
	}
	return l.WireLoads[l.DefaultWL]
}

// WireLoad estimates net parasitics from fanout, mirroring the
// wireload-model-based pre-layout estimation the paper's flow uses
// (5K_heavy_1k on Nangate45).
type WireLoad struct {
	Name  string
	Table []float64 // Table[i] = wire cap (pF) at fanout i+1
	Slope float64   // pF per additional fanout beyond the table
	Res   float64   // ns/pF equivalent wire resistance factor
}

// Cap returns the estimated wire capacitance (pF) for a net with the given
// fanout.
func (w *WireLoad) Cap(fanout int) float64 {
	if w == nil || fanout <= 0 {
		return 0
	}
	if fanout <= len(w.Table) {
		return w.Table[fanout-1]
	}
	return w.Table[len(w.Table)-1] + w.Slope*float64(fanout-len(w.Table))
}

// scale derives an X<drive> variant from X1 parameters: input capacitance and
// area grow with drive, drive resistance shrinks.
func scale(name string, kind Kind, drive int, area, cap1, intr, res1, leak float64) *Cell {
	d := float64(drive)
	return &Cell{
		Name:      fmt.Sprintf("%s_X%d", name, drive),
		Kind:      kind,
		Drive:     drive,
		Area:      area * (1 + 0.62*(d-1)),
		InputCap:  cap1 * (1 + 0.85*(d-1)),
		Intrinsic: intr * (1 + 0.06*(d-1)),
		DriveRes:  res1 / d,
		MaxCap:    0.060 * d,
		Leakage:   leak * d,
	}
}

// Nangate45 builds the built-in Nangate45-like library with the 5K_heavy_1k
// wireload model the paper uses, plus lighter alternatives. The cell set is
// static and collision-free (TestBuildNangate45 proves BuildNangate45 cannot
// fail on it), so this convenience form has no error to report.
func Nangate45() *Library {
	l, _ := BuildNangate45()
	return l
}

// BuildNangate45 is the error-returning builder behind Nangate45. Any
// AddCell failure propagates instead of panicking, matching the no-panic
// contract of the parse API (ParseLib) that assembles libraries the same
// way from untrusted text.
func BuildNangate45() (*Library, error) {
	l := NewLibrary("nangate45_sim")
	type proto struct {
		base   string
		kind   Kind
		drives []int
		area   float64 // X1 area, um^2 (close to Nangate45)
		cap1   float64 // X1 input cap, pF
		intr   float64 // X1 intrinsic delay, ns
		res1   float64 // X1 drive resistance, ns/pF
		leak   float64 // X1 leakage, nW
	}
	protos := []proto{
		{"INV", KindInv, []int{1, 2, 4, 8, 16}, 0.532, 0.0016, 0.008, 6.0, 1.5},
		{"BUF", KindBuf, []int{1, 2, 4, 8, 16}, 0.798, 0.0016, 0.022, 5.4, 1.8},
		{"NAND2", KindNand2, []int{1, 2, 4}, 0.798, 0.0016, 0.012, 7.4, 1.9},
		{"NOR2", KindNor2, []int{1, 2, 4}, 0.798, 0.0017, 0.014, 8.6, 2.0},
		{"AND2", KindAnd2, []int{1, 2, 4}, 1.064, 0.0015, 0.030, 6.6, 2.1},
		{"OR2", KindOr2, []int{1, 2, 4}, 1.064, 0.0015, 0.032, 6.9, 2.2},
		{"XOR2", KindXor2, []int{1, 2}, 1.596, 0.0030, 0.042, 8.8, 3.4},
		{"XNOR2", KindXnor2, []int{1, 2}, 1.596, 0.0030, 0.043, 8.9, 3.4},
		{"MUX2", KindMux2, []int{1, 2}, 1.862, 0.0022, 0.048, 8.2, 3.8},
		{"AOI21", KindAoi21, []int{1, 2}, 1.064, 0.0018, 0.020, 8.9, 2.3},
		{"OAI21", KindOai21, []int{1, 2}, 1.064, 0.0018, 0.021, 9.0, 2.3},
		{"NAND3", KindNand3, []int{1, 2}, 1.064, 0.0017, 0.018, 8.8, 2.3},
		{"NOR3", KindNor3, []int{1, 2}, 1.064, 0.0018, 0.022, 10.5, 2.4},
		{"AND3", KindAnd3, []int{1, 2}, 1.330, 0.0016, 0.038, 7.0, 2.6},
		{"OR3", KindOr3, []int{1, 2}, 1.330, 0.0016, 0.041, 7.4, 2.7},
		{"NAND4", KindNand4, []int{1, 2}, 1.330, 0.0018, 0.023, 10.0, 2.8},
		{"NOR4", KindNor4, []int{1, 2}, 1.330, 0.0019, 0.028, 12.4, 2.9},
	}
	for _, p := range protos {
		for _, d := range p.drives {
			if err := l.AddCell(scale(p.base, p.kind, d, p.area, p.cap1, p.intr, p.res1, p.leak)); err != nil {
				return l, err
			}
		}
	}
	for _, d := range []int{1, 2, 4} {
		ff := scale("DFF", KindDFF, d, 4.522, 0.0015, 0, 6.2, 8.5)
		ff.Setup = 0.055
		ff.ClkToQ = 0.085 * (1 + 0.05*(float64(d)-1))
		if err := l.AddCell(ff); err != nil {
			return l, err
		}
		ffr := scale("DFFR", KindDFFR, d, 5.054, 0.0015, 0, 6.4, 9.2)
		ffr.Setup = 0.058
		ffr.ClkToQ = 0.090 * (1 + 0.05*(float64(d)-1))
		if err := l.AddCell(ffr); err != nil {
			return l, err
		}
	}
	for _, tie := range []struct {
		name string
		kind Kind
	}{{"TIE0", KindTie0}, {"TIE1", KindTie1}} {
		if err := l.AddCell(&Cell{
			Name: tie.name + "_X1", Kind: tie.kind, Drive: 1,
			Area: 0.532, Intrinsic: 0, DriveRes: 4.0, MaxCap: 0.1, Leakage: 0.8,
		}); err != nil {
			return l, err
		}
	}

	// Wireload models. 5K_heavy_1k is the paper's choice: pessimistic wire
	// capacitance for ~5k-gate blocks. The lighter models are used by the
	// ablation benches.
	l.WireLoads["5K_heavy_1k"] = &WireLoad{
		Name:  "5K_heavy_1k",
		Table: []float64{0.0021, 0.0042, 0.0064, 0.0087, 0.0110, 0.0135, 0.0161, 0.0188},
		Slope: 0.0028,
		Res:   0.9,
	}
	l.WireLoads["5K_medium_1k"] = &WireLoad{
		Name:  "5K_medium_1k",
		Table: []float64{0.0013, 0.0026, 0.0040, 0.0054, 0.0069, 0.0085, 0.0101, 0.0118},
		Slope: 0.0018,
		Res:   0.6,
	}
	l.WireLoads["5K_light_1k"] = &WireLoad{
		Name:  "5K_light_1k",
		Table: []float64{0.0007, 0.0014, 0.0022, 0.0030, 0.0038, 0.0047, 0.0056, 0.0066},
		Slope: 0.0010,
		Res:   0.35,
	}
	l.DefaultWL = "5K_heavy_1k"
	return l, nil
}
