package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 || m.At(0, 1) != 0 {
		t.Error("At/Set broken")
	}
	row := m.Row(1)
	if len(row) != 3 || row[2] != 5 {
		t.Error("Row broken")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Error("Clone must not alias")
	}
	m.Zero()
	if m.At(1, 2) != 0 {
		t.Error("Zero broken")
	}
}

func TestMatMulKnown(t *testing.T) {
	a := NewMatrix(2, 3)
	copy(a.Data, []float64{1, 2, 3, 4, 5, 6})
	b := NewMatrix(3, 2)
	copy(b.Data, []float64{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if math.Abs(c.Data[i]-w) > 1e-12 {
			t.Fatalf("MatMul[%d] = %g, want %g", i, c.Data[i], w)
		}
	}
}

func TestMatMulTransposedVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewRandom(4, 3, rng)
	b := NewRandom(4, 5, rng)
	// aᵀ*b via MatMulATB must equal transpose(a)*b computed manually.
	atb := MatMulATB(a, b)
	at := NewMatrix(3, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	ref := MatMul(at, b)
	for i := range ref.Data {
		if math.Abs(atb.Data[i]-ref.Data[i]) > 1e-12 {
			t.Fatalf("MatMulATB mismatch at %d", i)
		}
	}
	// a*bᵀ via MatMulABT.
	c := NewRandom(6, 5, rng)
	abt := MatMulABT(b, c) // (4x5)*(6x5)ᵀ = 4x6
	ct := NewMatrix(5, 6)
	for i := 0; i < 6; i++ {
		for j := 0; j < 5; j++ {
			ct.Set(j, i, c.At(i, j))
		}
	}
	ref2 := MatMul(b, ct)
	for i := range ref2.Data {
		if math.Abs(abt.Data[i]-ref2.Data[i]) > 1e-12 {
			t.Fatalf("MatMulABT mismatch at %d", i)
		}
	}
}

func TestMatMulPanicsOnShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch must panic")
		}
	}()
	MatMul(NewMatrix(2, 3), NewMatrix(2, 3))
}

func TestReLUAndMask(t *testing.T) {
	m := NewMatrix(1, 4)
	copy(m.Data, []float64{-1, 2, 0, 3})
	mask := ReLUInPlace(m)
	if m.Data[0] != 0 || m.Data[1] != 2 || m.Data[3] != 3 {
		t.Errorf("relu: %v", m.Data)
	}
	if mask[0] || !mask[1] || mask[2] || !mask[3] {
		t.Errorf("mask: %v", mask)
	}
	g := NewMatrix(1, 4)
	copy(g.Data, []float64{5, 5, 5, 5})
	MaskInPlace(g, mask)
	if g.Data[0] != 0 || g.Data[1] != 5 {
		t.Errorf("masked grad: %v", g.Data)
	}
}

func TestVectorOps(t *testing.T) {
	a := []float64{3, 4}
	if Dot(a, a) != 25 || Norm(a) != 5 {
		t.Error("dot/norm broken")
	}
	if c := Cosine([]float64{1, 0}, []float64{0, 1}); c != 0 {
		t.Errorf("orthogonal cosine = %g", c)
	}
	if c := Cosine(a, a); math.Abs(c-1) > 1e-12 {
		t.Errorf("self cosine = %g", c)
	}
	if Cosine([]float64{0, 0}, a) != 0 {
		t.Error("zero-vector cosine should be 0")
	}
	if d := L2Dist([]float64{0, 0}, a); d != 5 {
		t.Errorf("L2 = %g", d)
	}
	n := Normalize(a)
	if math.Abs(Norm(n)-1) > 1e-12 {
		t.Error("normalize not unit")
	}
	z := Normalize([]float64{0, 0})
	if z[0] != 0 || z[1] != 0 {
		t.Error("zero normalize should pass through")
	}
	m := Mean([][]float64{{1, 2}, {3, 4}})
	if m[0] != 2 || m[1] != 3 {
		t.Errorf("mean = %v", m)
	}
	if Mean(nil) != nil {
		t.Error("empty mean should be nil")
	}
	v := []float64{1, 2}
	Scale(v, 3)
	if v[0] != 3 || v[1] != 6 {
		t.Error("scale broken")
	}
	Axpy(v, 2, []float64{1, 1})
	if v[0] != 5 || v[1] != 8 {
		t.Error("axpy broken")
	}
}

func TestAddHelpers(t *testing.T) {
	a := NewMatrix(2, 2)
	b := NewMatrix(2, 2)
	copy(b.Data, []float64{1, 2, 3, 4})
	AddInPlace(a, b)
	if a.Data[3] != 4 {
		t.Error("AddInPlace broken")
	}
	AddRowVector(a, []float64{10, 20})
	if a.At(0, 0) != 11 || a.At(1, 1) != 24 {
		t.Errorf("AddRowVector: %v", a.Data)
	}
}

// Property: cosine similarity is bounded in [-1, 1] and symmetric.
func TestCosineProperties(t *testing.T) {
	f := func(a, b [4]float64) bool {
		for i := range a {
			// Clamp to a range where the norm product cannot overflow.
			if math.IsNaN(a[i]) || math.IsInf(a[i], 0) || math.IsNaN(b[i]) || math.IsInf(b[i], 0) {
				return true
			}
			a[i] = math.Mod(a[i], 1e6)
			b[i] = math.Mod(b[i], 1e6)
		}
		c1 := Cosine(a[:], b[:])
		c2 := Cosine(b[:], a[:])
		return c1 >= -1-1e-9 && c1 <= 1+1e-9 && math.Abs(c1-c2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: matrix multiply distributes over addition: (a+b)*c == a*c + b*c.
func TestMatMulDistributive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		a := NewRandom(3, 4, rng)
		b := NewRandom(3, 4, rng)
		c := NewRandom(4, 2, rng)
		sum := a.Clone()
		AddInPlace(sum, b)
		left := MatMul(sum, c)
		right := MatMul(a, c)
		AddInPlace(right, MatMul(b, c))
		for i := range left.Data {
			if math.Abs(left.Data[i]-right.Data[i]) > 1e-9 {
				t.Fatalf("distributivity violated at %d", i)
			}
		}
	}
}
