//go:build !race

package tensor

import "testing"

// Alloc guards: these budgets are part of the perf contract (see DESIGN.md
// "Memory and GC discipline"). allocs-per-op is deterministic, so the guards
// are exact ceilings, not flaky statistical bounds. They are skipped under
// -race, where the runtime's instrumentation changes allocation counts.

// TestMatMulAllocGuard pins the serial MatMul at its two structural
// allocations (the Matrix header and its Data slab).
func TestMatMulAllocGuard(t *testing.T) {
	a := randomMatrix(24, 24, 1)
	b := randomMatrix(24, 24, 2)
	allocs := testing.AllocsPerRun(50, func() {
		if out := MatMul(a, b); out.Rows != 24 {
			t.Fatal("wrong shape")
		}
	})
	const budget = 2
	if allocs > budget {
		t.Errorf("MatMul allocs/op = %v, budget %d", allocs, budget)
	}
}

// TestMatMulIntoPooledAllocGuard pins the pooled scratch path — the shape
// the GNN forward pass uses for its neighbour-term intermediates — at zero
// steady-state allocations.
func TestMatMulIntoPooledAllocGuard(t *testing.T) {
	a := randomMatrix(24, 24, 1)
	b := randomMatrix(24, 24, 2)
	allocs := testing.AllocsPerRun(50, func() {
		out := GetMatrix(24, 24)
		MatMulInto(a, b, out)
		PutMatrix(out)
	})
	const budget = 0
	if allocs > budget {
		t.Errorf("pooled MatMulInto allocs/op = %v, budget %d", allocs, budget)
	}
}
