package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// The naive ijk kernels below are the reference implementations the shipped
// kernels replaced. They stay in the test file for two jobs: an independent
// correctness oracle for the optimized kernels (including their parallel
// paths), and the baseline the Benchmark*Naive results are read against.

func naiveMatMul(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func naiveMatMulATB(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Cols, b.Cols)
	for i := 0; i < a.Cols; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Rows; k++ {
				s += a.At(k, i) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func naiveMatMulABT(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Rows; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(j, k)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func randomMatrix(rows, cols int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func maxAbsDiff(a, b *Matrix) float64 {
	var worst float64
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// TestKernelsMatchNaive checks the optimized kernels (at sizes straddling
// the parallel threshold) against the naive reference.
func TestKernelsMatchNaive(t *testing.T) {
	for _, n := range []int{7, 33, 96} {
		a := randomMatrix(n, n+3, int64(n))
		b := randomMatrix(n+3, n+1, int64(n)+100)
		if d := maxAbsDiff(MatMul(a, b), naiveMatMul(a, b)); d > 1e-9 {
			t.Errorf("MatMul n=%d: max diff %g", n, d)
		}
		c := randomMatrix(n, n+1, int64(n)+200)
		if d := maxAbsDiff(MatMulATB(a, c), naiveMatMulATB(a, c)); d > 1e-9 {
			t.Errorf("MatMulATB n=%d: max diff %g", n, d)
		}
		e := randomMatrix(n+5, n+3, int64(n)+300)
		if d := maxAbsDiff(MatMulABT(a, e), naiveMatMulABT(a, e)); d > 1e-9 {
			t.Errorf("MatMulABT n=%d: max diff %g", n, d)
		}
	}
}

// TestParallelRowsCoversAllRows checks the block decomposition covers
// [0, rows) exactly once for awkward row counts.
func TestParallelRowsCoversAllRows(t *testing.T) {
	for _, rows := range []int{1, 2, 3, 7, 64, 101} {
		seen := make([]int, rows)
		ParallelRows(rows, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				seen[i]++
			}
		})
		for i, n := range seen {
			if n != 1 {
				t.Fatalf("rows=%d: row %d visited %d times", rows, i, n)
			}
		}
	}
}

var benchSizes = []int{32, 64, 128}

func benchKernel(b *testing.B, fn func(a, c *Matrix) *Matrix) {
	for _, n := range benchSizes {
		x := randomMatrix(n, n, 1)
		y := randomMatrix(n, n, 2)
		b.Run(fmt.Sprintf("%dx%d", n, n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fn(x, y)
			}
		})
	}
}

func BenchmarkMatMul(b *testing.B)         { benchKernel(b, MatMul) }
func BenchmarkMatMulNaive(b *testing.B)    { benchKernel(b, naiveMatMul) }
func BenchmarkMatMulATB(b *testing.B)      { benchKernel(b, MatMulATB) }
func BenchmarkMatMulATBNaive(b *testing.B) { benchKernel(b, naiveMatMulATB) }
func BenchmarkMatMulABT(b *testing.B)      { benchKernel(b, MatMulABT) }
func BenchmarkMatMulABTNaive(b *testing.B) { benchKernel(b, naiveMatMulABT) }
