// Package tensor provides the dense linear algebra the GNN needs: row-major
// matrices, matrix products, and vector utilities (dot, norm, cosine
// similarity). It is deliberately small — just enough to train and run
// GraphSAGE without any external dependency.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewRandom allocates a matrix with Xavier-uniform entries from rng.
func NewRandom(rows, cols int, rng *rand.Rand) *Matrix {
	m := NewMatrix(rows, cols)
	scale := math.Sqrt(6.0 / float64(rows+cols))
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * scale
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero clears the matrix in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// MatMul returns a*b.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("matmul shape mismatch: %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulATB returns aᵀ*b, used for weight gradients.
func MatMulATB(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("matmulATB shape mismatch: %dx%d ᵀ* %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Cols, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		brow := b.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulABT returns a*bᵀ, used for input gradients.
func MatMulABT(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("matmulABT shape mismatch: %dx%d * %dx%d ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var s float64
			for k := range arow {
				s += arow[k] * brow[k]
			}
			orow[j] = s
		}
	}
	return out
}

// AddInPlace adds b into a.
func AddInPlace(a, b *Matrix) {
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
}

// AddRowVector adds vector v to every row of m in place.
func AddRowVector(m *Matrix, v []float64) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] += v[j]
		}
	}
}

// ReLUInPlace applies max(0, x) in place and returns the activation mask.
func ReLUInPlace(m *Matrix) []bool {
	mask := make([]bool, len(m.Data))
	for i, v := range m.Data {
		if v > 0 {
			mask[i] = true
		} else {
			m.Data[i] = 0
		}
	}
	return mask
}

// MaskInPlace zeroes entries whose mask is false (ReLU backprop).
func MaskInPlace(m *Matrix, mask []bool) {
	for i := range m.Data {
		if !mask[i] {
			m.Data[i] = 0
		}
	}
}

// Vector helpers.

// Dot returns the inner product of equal-length vectors.
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm returns the Euclidean norm.
func Norm(a []float64) float64 { return math.Sqrt(Dot(a, a)) }

// Cosine returns the cosine similarity of two vectors (0 when either is
// the zero vector).
func Cosine(a, b []float64) float64 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// L2Dist returns the Euclidean distance.
func L2Dist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Normalize returns a/||a|| (a copy; zero vectors pass through).
func Normalize(a []float64) []float64 {
	n := Norm(a)
	out := make([]float64, len(a))
	if n == 0 {
		copy(out, a)
		return out
	}
	for i := range a {
		out[i] = a[i] / n
	}
	return out
}

// Mean returns the element-wise mean of the vectors.
func Mean(vecs [][]float64) []float64 {
	if len(vecs) == 0 {
		return nil
	}
	out := make([]float64, len(vecs[0]))
	for _, v := range vecs {
		for i := range v {
			out[i] += v[i]
		}
	}
	for i := range out {
		out[i] /= float64(len(vecs))
	}
	return out
}

// Scale multiplies a vector by s in place.
func Scale(a []float64, s float64) {
	for i := range a {
		a[i] *= s
	}
}

// Axpy computes a += s*b in place.
func Axpy(a []float64, s float64, b []float64) {
	for i := range a {
		a[i] += s * b[i]
	}
}
