// Package tensor provides the dense linear algebra the GNN needs: row-major
// matrices, matrix products, and vector utilities (dot, norm, cosine
// similarity). It is deliberately small — just enough to train and run
// GraphSAGE without any external dependency.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/workpool"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewRandom allocates a matrix with Xavier-uniform entries from rng.
func NewRandom(rows, cols int, rng *rand.Rand) *Matrix {
	m := NewMatrix(rows, cols)
	scale := math.Sqrt(6.0 / float64(rows+cols))
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * scale
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero clears the matrix in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Ensure returns a rows×cols matrix reusing m's backing array when it is
// large enough (m may be nil). Contents are unspecified; use EnsureZero when
// the caller accumulates into the result.
func Ensure(m *Matrix, rows, cols int) *Matrix {
	n := rows * cols
	if m == nil || cap(m.Data) < n {
		return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, n)}
	}
	m.Rows, m.Cols = rows, cols
	m.Data = m.Data[:n]
	return m
}

// EnsureZero is Ensure plus clearing: the result is a zero matrix.
func EnsureZero(m *Matrix, rows, cols int) *Matrix {
	n := rows * cols
	out := Ensure(m, rows, cols)
	if out == m {
		for i := 0; i < n; i++ {
			out.Data[i] = 0
		}
	}
	return out
}

// matrixPool recycles scratch matrices for transient kernel intermediates
// (e.g. the neighbour-term product inside a GraphSAGE layer). Get hands out
// a zeroed matrix; Put must only be called once the caller holds no views of
// the matrix's Data.
var matrixPool = sync.Pool{New: func() any { return new(Matrix) }}

// GetMatrix returns a zeroed rows×cols matrix drawn from the process-wide
// scratch pool. Pair with PutMatrix on every path once the values have been
// consumed; a matrix that is never Put is merely garbage, not a leak.
func GetMatrix(rows, cols int) *Matrix {
	m := matrixPool.Get().(*Matrix)
	return EnsureZero(m, rows, cols)
}

// PutMatrix returns a matrix obtained from GetMatrix to the scratch pool.
func PutMatrix(m *Matrix) {
	if m != nil {
		matrixPool.Put(m)
	}
}

// parallelFlops is the work size (multiply-adds) above which the row-sharded
// kernels fan out across cores. Each output row is produced entirely by one
// goroutine with the serial loop order, so the parallel path is bit-identical
// to the serial one.
const parallelFlops = 1 << 18

// ParallelRows splits [0, rows) into contiguous blocks and runs
// fn(lo, hi) on them across GOMAXPROCS goroutines, waiting for all. Callers
// must make fn write disjoint output rows only; kernels that keep per-row
// work identical to their serial loop stay bit-identical under it.
func ParallelRows(rows int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	// A few blocks per worker smooths imbalance without per-row handout cost.
	blocks := workers * 4
	if blocks > rows {
		blocks = rows
	}
	size := (rows + blocks - 1) / blocks
	nb := (rows + size - 1) / size
	workpool.Run(workers, nb, func(b int) {
		lo := b * size
		hi := lo + size
		if hi > rows {
			hi = rows
		}
		fn(lo, hi)
	})
}

// MatMul returns a*b.
func MatMul(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, b.Cols)
	MatMulInto(a, b, out)
	return out
}

// MatMulInto computes a*b into out, which must be a zeroed a.Rows×b.Cols
// matrix (GetMatrix/EnsureZero provide one). Same kernels and loop order as
// MatMul, so the result is bit-identical.
func MatMulInto(a, b, out *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("matmul shape mismatch: %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("matmul out shape %dx%d, want %dx%d", out.Rows, out.Cols, a.Rows, b.Cols))
	}
	if a.Rows*a.Cols*b.Cols >= parallelFlops && runtime.GOMAXPROCS(0) > 1 {
		ParallelRows(a.Rows, func(lo, hi int) { matMulRows(a, b, out, lo, hi) })
	} else {
		matMulRows(a, b, out, 0, a.Rows)
	}
}

// matMulRows computes out rows [lo, hi) in ikj order: the i-th output row is
// a running sum of b's rows scaled by a's entries, so the inner loop streams
// two contiguous slices and skips the zero entries abundant in one-hot
// feature blocks.
func matMulRows(a, b, out *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			_ = orow[len(brow)-1]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulATB returns aᵀ*b, used for weight gradients. It stays serial: its
// output rows are reductions across a's rows, and sharding the reduction
// would change float summation order (breaking run-to-run determinism).
func MatMulATB(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("matmulATB shape mismatch: %dx%d ᵀ* %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Cols, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		brow := b.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Row(k)
			_ = orow[len(brow)-1]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulABT returns a*bᵀ, used for input gradients.
func MatMulABT(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("matmulABT shape mismatch: %dx%d * %dx%d ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Rows)
	if a.Rows*a.Cols*b.Rows >= parallelFlops && runtime.GOMAXPROCS(0) > 1 {
		ParallelRows(a.Rows, func(lo, hi int) { matMulABTRows(a, b, out, lo, hi) })
	} else {
		matMulABTRows(a, b, out, 0, a.Rows)
	}
	return out
}

// matMulABTRows computes out rows [lo, hi) as dot products of row pairs,
// with a 4-way unrolled inner loop over the shared (contiguous) dimension.
func matMulABTRows(a, b, out *Matrix, lo, hi int) {
	k4 := a.Cols - a.Cols%4
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var s0, s1, s2, s3 float64
			for k := 0; k < k4; k += 4 {
				s0 += arow[k] * brow[k]
				s1 += arow[k+1] * brow[k+1]
				s2 += arow[k+2] * brow[k+2]
				s3 += arow[k+3] * brow[k+3]
			}
			s := (s0 + s1) + (s2 + s3)
			for k := k4; k < a.Cols; k++ {
				s += arow[k] * brow[k]
			}
			orow[j] = s
		}
	}
}

// StackRows returns the vertical concatenation of the given matrices (all
// must share Cols). The continuous-batching path uses it to fuse per-request
// feature matrices into one stacked MatMul operand; because every kernel in
// this package computes each output row from its own input row with the
// serial loop order, rows of a stacked product are bit-identical to the
// rows of the per-matrix products.
func StackRows(ms []*Matrix) *Matrix {
	if len(ms) == 0 {
		return NewMatrix(0, 0)
	}
	cols := ms[0].Cols
	rows := 0
	for _, m := range ms {
		if m.Cols != cols {
			panic(fmt.Sprintf("stackrows width mismatch: %d vs %d", m.Cols, cols))
		}
		rows += m.Rows
	}
	out := NewMatrix(rows, cols)
	off := 0
	for _, m := range ms {
		copy(out.Data[off:], m.Data)
		off += len(m.Data)
	}
	return out
}

// SplitRows slices m into consecutive views of the given row counts, which
// must sum to m.Rows. The views share m's backing array (no copy) — the
// inverse of StackRows for distributing a batched result.
func SplitRows(m *Matrix, counts []int) []*Matrix {
	out := make([]*Matrix, len(counts))
	row := 0
	for i, n := range counts {
		out[i] = &Matrix{Rows: n, Cols: m.Cols, Data: m.Data[row*m.Cols : (row+n)*m.Cols]}
		row += n
	}
	if row != m.Rows {
		panic(fmt.Sprintf("splitrows counts sum to %d, matrix has %d rows", row, m.Rows))
	}
	return out
}

// AddInPlace adds b into a.
func AddInPlace(a, b *Matrix) {
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
}

// AddRowVector adds vector v to every row of m in place.
func AddRowVector(m *Matrix, v []float64) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] += v[j]
		}
	}
}

// ReLUInPlace applies max(0, x) in place and returns the activation mask.
func ReLUInPlace(m *Matrix) []bool {
	return ReLUMaskInto(m, nil)
}

// ReLUMaskInto is ReLUInPlace reusing mask's capacity for the returned
// activation mask (mask may be nil).
func ReLUMaskInto(m *Matrix, mask []bool) []bool {
	if cap(mask) < len(m.Data) {
		mask = make([]bool, len(m.Data))
	}
	mask = mask[:len(m.Data)]
	for i, v := range m.Data {
		if v > 0 {
			mask[i] = true
		} else {
			mask[i] = false
			m.Data[i] = 0
		}
	}
	return mask
}

// MaskInPlace zeroes entries whose mask is false (ReLU backprop).
func MaskInPlace(m *Matrix, mask []bool) {
	for i := range m.Data {
		if !mask[i] {
			m.Data[i] = 0
		}
	}
}

// Vector helpers.

// Dot returns the inner product of equal-length vectors.
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm returns the Euclidean norm.
func Norm(a []float64) float64 { return math.Sqrt(Dot(a, a)) }

// Cosine returns the cosine similarity of two vectors (0 when either is
// the zero vector).
func Cosine(a, b []float64) float64 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// L2Dist returns the Euclidean distance.
func L2Dist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Normalize returns a/||a|| (a copy; zero vectors pass through).
func Normalize(a []float64) []float64 {
	n := Norm(a)
	out := make([]float64, len(a))
	if n == 0 {
		copy(out, a)
		return out
	}
	for i := range a {
		out[i] = a[i] / n
	}
	return out
}

// Mean returns the element-wise mean of the vectors.
func Mean(vecs [][]float64) []float64 {
	if len(vecs) == 0 {
		return nil
	}
	out := make([]float64, len(vecs[0]))
	for _, v := range vecs {
		for i := range v {
			out[i] += v[i]
		}
	}
	for i := range out {
		out[i] /= float64(len(vecs))
	}
	return out
}

// Scale multiplies a vector by s in place.
func Scale(a []float64, s float64) {
	for i := range a {
		a[i] *= s
	}
}

// Axpy computes a += s*b in place.
func Axpy(a []float64, s float64, b []float64) {
	for i := range a {
		a[i] += s * b[i]
	}
}
