// Package textembed is a deterministic text-embedding model standing in for
// the OpenAI text-embedding-3-large endpoint the paper's SynthRAG uses for
// user-manual retrieval. Texts are embedded as L2-normalized TF-IDF vectors
// of hashed word unigrams and bigrams: lexically and topically similar texts
// land close in cosine space, which is all the manual-retrieval path needs.
package textembed

import (
	"hash/fnv"
	"math"
	"strings"

	"repro/internal/tensor"
)

// Embedder converts text to fixed-dimension vectors. Fit learns IDF weights
// from a corpus; Embed works before Fit too (all-ones IDF).
type Embedder struct {
	Dim  int
	idf  map[uint32]float64
	docs int
}

// New creates an embedder with the given output dimensionality.
func New(dim int) *Embedder {
	if dim <= 0 {
		dim = 256
	}
	return &Embedder{Dim: dim, idf: make(map[uint32]float64)}
}

// tokenize lowercases and splits text into word tokens, treating
// punctuation (except dashes/underscores, significant in command names)
// as separators.
func tokenize(text string) []string {
	text = strings.ToLower(text)
	var toks []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, cur.String())
			cur.Reset()
		}
	}
	for _, r := range text {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '_' || r == '-':
			cur.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	out := toks[:0]
	for _, t := range toks {
		s := stem(t)
		if stopwords[s] || len(s) < 2 {
			continue
		}
		out = append(out, s)
	}
	return out
}

// stopwords are dropped before hashing: in small corpora their IDF is
// unreliably high and they drown out topical tokens.
var stopwords = map[string]bool{
	"the": true, "a": true, "an": true, "and": true, "or": true, "of": true,
	"to": true, "on": true, "in": true, "at": true, "by": true, "for": true,
	"with": true, "it": true, "it'": true, "thi": true, "that": true, "is": true,
	"are": true, "be": true, "as": true, "do": true, "doe": true, "how": true,
	"what": true, "when": true, "i": true, "you": true, "us": true, "from": true,
	"into": true, "not": true, "no": true, "can": true, "will": true, "ha": true,
	"have": true, "than": true, "then": true, "so": true, "but": true,
}

// stem applies light suffix stripping so inflections ("retiming"/"retime",
// "registers"/"register") share a token. Command names containing '_' are
// left untouched.
func stem(t string) string {
	if strings.ContainsAny(t, "_-") {
		return t
	}
	if len(t) > 5 && strings.HasSuffix(t, "ing") {
		t = t[:len(t)-3]
	} else if len(t) > 4 && strings.HasSuffix(t, "ed") {
		t = t[:len(t)-2]
	} else if len(t) > 3 && strings.HasSuffix(t, "s") && !strings.HasSuffix(t, "ss") {
		t = t[:len(t)-1]
	}
	if len(t) > 4 && strings.HasSuffix(t, "e") {
		t = t[:len(t)-1]
	}
	return t
}

// features yields the hashed unigram and bigram buckets of a text.
// Compound tokens (command names like set_max_fanout) also contribute their
// underscore-separated parts, so near-miss command names still retrieve the
// right section.
func (e *Embedder) features(text string) map[uint32]float64 {
	toks := tokenize(text)
	tf := make(map[uint32]float64)
	for i, t := range toks {
		tf[e.bucket(t)]++
		if i+1 < len(toks) {
			tf[e.bucket(t+" "+toks[i+1])] += 0.5
		}
		if strings.ContainsAny(t, "_-") {
			for _, part := range strings.FieldsFunc(t, func(r rune) bool { return r == '_' || r == '-' }) {
				part = stem(part)
				if len(part) >= 2 && !stopwords[part] {
					tf[e.bucket(part)] += 0.5
				}
			}
		}
	}
	return tf
}

func (e *Embedder) bucket(token string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(token))
	return h.Sum32() % uint32(e.Dim)
}

// Fit learns IDF weights from a document corpus.
func (e *Embedder) Fit(corpus []string) {
	df := make(map[uint32]int)
	for _, doc := range corpus {
		seen := make(map[uint32]bool)
		for b := range e.features(doc) {
			if !seen[b] {
				seen[b] = true
				df[b]++
			}
		}
	}
	e.docs = len(corpus)
	e.idf = make(map[uint32]float64, len(df))
	for b, n := range df {
		e.idf[b] = math.Log(float64(1+e.docs) / float64(1+n))
	}
}

// Embed converts text to an L2-normalized vector.
func (e *Embedder) Embed(text string) []float64 {
	vec := make([]float64, e.Dim)
	for b, tf := range e.features(text) {
		w := 1.0
		if e.docs > 0 {
			if idf, ok := e.idf[b]; ok {
				w = idf
			} else {
				w = math.Log(float64(1 + e.docs))
			}
		}
		vec[b] += (1 + math.Log(1+tf)) * w
	}
	return tensor.Normalize(vec)
}

// EmbedBatch embeds each text, one vector per input in order. The model is
// hashing + TF-IDF (no shared kernel to stack), so the batched form exists
// for the continuous-batching admission queue: coalesced requests amortize
// the queue handoff and keep the serving path uniform with the GNN batcher.
// Result i is byte-identical to Embed(texts[i]).
func (e *Embedder) EmbedBatch(texts []string) [][]float64 {
	if len(texts) == 0 {
		return nil
	}
	out := make([][]float64, len(texts))
	for i, t := range texts {
		out[i] = e.Embed(t)
	}
	return out
}

// Similarity returns the cosine similarity of two texts under this embedder.
func (e *Embedder) Similarity(a, b string) float64 {
	return tensor.Cosine(e.Embed(a), e.Embed(b))
}
