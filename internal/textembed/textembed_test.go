package textembed

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestEmbedDeterministicAndNormalized(t *testing.T) {
	e := New(128)
	a := e.Embed("retiming balances pipeline stages")
	b := e.Embed("retiming balances pipeline stages")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("embedding not deterministic")
		}
	}
	if math.Abs(tensor.Norm(a)-1) > 1e-9 {
		t.Errorf("embedding not unit-norm: %g", tensor.Norm(a))
	}
	if len(a) != 128 {
		t.Errorf("dim = %d", len(a))
	}
}

func TestSimilarityRanksTopically(t *testing.T) {
	e := New(512)
	corpus := []string{
		"optimize_registers - retime registers to balance pipeline stages",
		"balance_buffers - build buffer trees on high-fanout nets",
		"create_clock - define the clock and its period",
		"report_area - report cell area statistics",
	}
	e.Fit(corpus)
	query := "how do I fix timing on a design with unbalanced register placement using retiming"
	best, bestScore := -1, -1.0
	for i, doc := range corpus {
		s := e.Similarity(query, doc)
		if s > bestScore {
			best, bestScore = i, s
		}
	}
	if best != 0 {
		t.Errorf("query about retiming matched doc %d, want 0", best)
	}

	q2 := "net has too many loads high fanout buffer tree"
	best, bestScore = -1, -1.0
	for i, doc := range corpus {
		if s := e.Similarity(q2, doc); s > bestScore {
			best, bestScore = i, s
		}
	}
	if best != 1 {
		t.Errorf("fanout query matched doc %d, want 1", best)
	}
}

func TestCommandNameTokenization(t *testing.T) {
	toks := tokenize("compile_ultra -retime; WNS=-0.17")
	want := map[string]bool{"compile_ultra": true, "-retime": true, "wns": true, "-0": true}
	found := 0
	for _, tok := range toks {
		if want[tok] {
			found++
		}
	}
	if found < 3 {
		t.Errorf("tokens = %v, expected command names preserved", toks)
	}
}

func TestEmbedEmptyAndUnfit(t *testing.T) {
	e := New(64)
	v := e.Embed("")
	if tensor.Norm(v) != 0 {
		t.Error("empty text should embed to zero vector")
	}
	// Unfit embedder still works with uniform weights.
	if s := e.Similarity("compile the design", "compile the design"); math.Abs(s-1) > 1e-9 {
		t.Errorf("self similarity = %g, want 1", s)
	}
}

func TestDefaultDim(t *testing.T) {
	e := New(0)
	if e.Dim != 256 {
		t.Errorf("default dim = %d, want 256", e.Dim)
	}
}
