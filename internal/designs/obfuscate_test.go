package designs

import (
	"strings"
	"testing"

	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/verilog"
)

func TestObfuscateRTLPreservesStructure(t *testing.T) {
	src := RiscV32i().Source
	obf := ObfuscateRTL(src)
	if strings.Contains(obf, "rv_alu") || strings.Contains(obf, "rs1") {
		t.Error("identifiers survived obfuscation")
	}
	for _, kw := range []string{"module", "endmodule", "assign", "always", "posedge", "input", "output"} {
		if strings.Count(obf, kw) != strings.Count(src, kw) {
			t.Errorf("keyword %q count changed", kw)
		}
	}
	// The obfuscated RTL must still parse and elaborate to the same
	// netlist size — obfuscation changes names, not structure.
	fo, err := verilog.Parse(obf)
	if err != nil {
		t.Fatalf("obfuscated source no longer parses: %v", err)
	}
	fs, err := verilog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	lib := liberty.Nangate45()
	nlo, err := netlist.Elaborate(fo, ObfuscateName(src, "riscv32i"), nil, lib)
	if err != nil {
		t.Fatalf("obfuscated elaboration: %v", err)
	}
	nls, err := netlist.Elaborate(fs, "riscv32i", nil, lib)
	if err != nil {
		t.Fatal(err)
	}
	if len(nlo.Cells) != len(nls.Cells) {
		t.Errorf("cell count changed: %d vs %d", len(nlo.Cells), len(nls.Cells))
	}
}

// ObfuscateName is a test helper: the generic name a given identifier maps
// to under ObfuscateRTL of the given source.
func ObfuscateName(src, ident string) string {
	obf := ObfuscateRTL(src)
	// Recover by position: obfuscate a probe copy where only the module
	// header survives scanning. Simpler: rename deterministically again and
	// find what the top module is called in the obfuscated text.
	f, err := verilog.Parse(obf)
	if err != nil || len(f.Modules) == 0 {
		return ""
	}
	// The original top is the module at the same index.
	fs, err := verilog.Parse(src)
	if err != nil {
		return ""
	}
	for i, m := range fs.Modules {
		if m.Name == ident {
			return f.Modules[i].Name
		}
	}
	return ""
}

func TestObfuscateDeterministic(t *testing.T) {
	src := AES().Source
	if ObfuscateRTL(src) != ObfuscateRTL(src) {
		t.Error("obfuscation must be deterministic")
	}
}

func TestTrainingVariantsElaborate(t *testing.T) {
	lib := liberty.Nangate45()
	for _, d := range TrainingVariants() {
		f, err := verilog.Parse(d.Source)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		nl, err := netlist.Elaborate(f, d.Top, nil, lib)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if len(nl.Cells) < 20 {
			t.Errorf("%s: only %d cells", d.Name, len(nl.Cells))
		}
		if d.Category == "" {
			t.Errorf("%s: no category", d.Name)
		}
	}
	// Every Fig. 5 category must be covered by at least two variants.
	byCat := map[string]int{}
	for _, d := range TrainingVariants() {
		byCat[d.Category]++
	}
	for _, cat := range []string{CatProcessor, CatMLAccel, CatVector, CatDSP, CatCrypto} {
		if byCat[cat] < 2 {
			t.Errorf("category %s has %d training variants, want >= 2", cat, byCat[cat])
		}
	}
}
