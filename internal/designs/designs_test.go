package designs

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/synth"
	"repro/internal/verilog"
)

func elaborate(t *testing.T, d *Design) *netlist.Netlist {
	t.Helper()
	f, err := verilog.Parse(d.Source)
	if err != nil {
		t.Fatalf("%s: parse: %v", d.Name, err)
	}
	nl, err := netlist.Elaborate(f, d.Top, nil, liberty.Nangate45())
	if err != nil {
		t.Fatalf("%s: elaborate: %v", d.Name, err)
	}
	if err := nl.Check(); err != nil {
		t.Fatalf("%s: check: %v", d.Name, err)
	}
	return nl
}

func TestBenchmarksElaborate(t *testing.T) {
	for _, d := range Benchmarks() {
		nl := elaborate(t, d)
		s := nl.Summary()
		if s.Cells < 200 {
			t.Errorf("%s: only %d cells; benchmark designs must be non-trivial", d.Name, s.Cells)
		}
		if nl.ClkNet == nil {
			t.Errorf("%s: no clock identified", d.Name)
		}
		if d.Period <= 0 {
			t.Errorf("%s: no evaluation period", d.Name)
		}
	}
}

func TestDatabaseDesignsElaborate(t *testing.T) {
	for _, d := range DatabaseDesigns() {
		nl := elaborate(t, d)
		if len(nl.Cells) < 50 {
			t.Errorf("%s: only %d cells", d.Name, len(nl.Cells))
		}
		if d.Category == "" {
			t.Errorf("%s: missing category", d.Name)
		}
	}
}

func TestBaselineScriptsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("synthesis of all benchmarks is slow")
	}
	for _, d := range Benchmarks() {
		sess := synth.NewSession(liberty.Nangate45())
		sess.AddSource(d.FileName, d.Source)
		res, err := sess.Run(d.BaselineScript())
		if err != nil {
			t.Fatalf("%s: baseline script failed: %v", d.Name, err)
		}
		if res.QoR == nil {
			t.Fatalf("%s: no QoR", d.Name)
		}
		t.Logf("%-14s WNS %8.3f CPS %8.3f TNS %9.2f area %10.2f cells %6d",
			d.Name, res.QoR.WNS, res.QoR.CPS, res.QoR.TNS, res.QoR.Area, res.QoR.Cells)
	}
}

func TestDesignTraits(t *testing.T) {
	checks := map[string]string{
		"aes":          TraitWideArith,
		"dynamic_node": TraitHighFanout,
		"ethmac":       TraitDeepSerial,
		"jpeg":         TraitHierOverhead,
		"riscv32i":     TraitBalanced,
		"swerv":        TraitBalanced,
		"tinyRocket":   TraitRegisterImbalance,
	}
	for name, trait := range checks {
		d := ByName(name)
		if d == nil {
			t.Fatalf("design %s missing", name)
		}
		if !d.HasTrait(trait) {
			t.Errorf("%s should carry trait %s", name, trait)
		}
	}
	if ByName("nonexistent") != nil {
		t.Error("ByName should return nil for unknown design")
	}
}

func TestModuleCategory(t *testing.T) {
	cases := map[string]string{
		"cpu_rocket":   CatProcessor,
		"rv_alu":       CatProcessor,
		"mac_gemmini":  CatMLAccel,
		"pe_cell":      CatMLAccel,
		"lane_simd":    CatVector,
		"vec_simd":     CatVector,
		"bfly_fft":     CatDSP,
		"keccak_sha3":  CatCrypto,
		"uncategorized": "",
	}
	for mod, want := range cases {
		if got := ModuleCategory(mod); got != want {
			t.Errorf("ModuleCategory(%s) = %q, want %q", mod, got, want)
		}
	}
}

func TestSoCGeneration(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5; i++ {
		cfg := RandomSoCConfig("t"+string(rune('a'+i)), rng)
		if cfg.Components() < 2 {
			t.Fatalf("config %d has %d components", i, cfg.Components())
		}
		d := SoC(cfg)
		nl := elaborate(t, d)
		if len(nl.Cells) < 100 {
			t.Errorf("soc %d: only %d cells", i, len(nl.Cells))
		}
		if len(cfg.Categories()) != cfg.Components() {
			t.Errorf("soc %d: categories/components mismatch", i)
		}
	}
}

func TestSoCDeterministicForConfig(t *testing.T) {
	cfg := SoCConfig{Name: "det", CoreWidth: 32, FFTStages: 2}
	a, b := SoC(cfg), SoC(cfg)
	if a.Source != b.Source {
		t.Error("same config must generate identical RTL")
	}
	if !strings.Contains(a.Source, "cpu_det") || !strings.Contains(a.Source, "fft_det") {
		t.Error("configured components missing from SoC source")
	}
	if strings.Contains(a.Source, "sha_det") {
		t.Error("unconfigured component present in SoC source")
	}
}

func TestBaselineScriptContent(t *testing.T) {
	for _, d := range Benchmarks() {
		s := d.BaselineScript()
		for _, want := range []string{"read_verilog " + d.FileName, "current_design " + d.Top, "create_clock", "5K_heavy_1k", "compile"} {
			if !strings.Contains(s, want) {
				t.Errorf("%s baseline script missing %q", d.Name, want)
			}
		}
		issues := synth.ValidateScript(s)
		for _, is := range issues {
			if is.Severity == "error" {
				t.Errorf("%s baseline script invalid: %v", d.Name, is)
			}
		}
	}
	if !strings.Contains(JPEG().BaselineScript(), "map_effort low") {
		t.Error("jpeg baseline must use low effort (the under-optimized adapted script)")
	}
}
