// Package designs generates the Verilog RTL for every design the paper's
// evaluation uses: the OpenROAD benchmark set of Table IV (aes,
// dynamic_node, ethmac, jpeg, riscv32i, swerv, tinyRocket), the database
// corpus of Table II (Rocket, Sodor, NVDLA, Gemmini, SIMD, FFT, SHA3), and
// Chipyard-style SoC compositions for the Fig. 5 retrieval experiment.
//
// The original RTL is not redistributable at reproduction scale, so each
// generator emits synthetic RTL with the structural signature that makes
// the paper's synthesis-command choices matter: aes has wide S-box rounds
// behind imbalanced register stages (retiming-bound), dynamic_node has
// high-fanout arbitration (buffering-bound), ethmac has a deep serial CRC
// cone (barely fixable in one iteration), jpeg carries heavy wrapper
// hierarchy (ungroup-bound), and tinyRocket has imbalanced pipeline stages
// (retiming-bound).
package designs

import (
	"fmt"
	"strings"
)

// block builders emit self-contained Verilog modules. Each returns module
// text; callers stitch them into a design file.

// sboxRound emits a nonlinear byte-mixing round: wide XOR/AND logic with
// rotated taps, the aes-like structure (combinationally wide, depth ~4-6).
func sboxRound(name string, width int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "module %s(input [%d:0] a, input [%d:0] k, output [%d:0] y);\n", name, width-1, width-1, width-1)
	fmt.Fprintf(&b, "    wire [%d:0] s1, s2;\n", width-1)
	for i := 0; i < width; i++ {
		fmt.Fprintf(&b, "    assign s1[%d] = a[%d] ^ (a[%d] & ~a[%d]);\n", i, i, (i+1)%width, (i+3)%width)
	}
	for i := 0; i < width; i++ {
		fmt.Fprintf(&b, "    assign s2[%d] = s1[%d] ^ (s1[%d] | s1[%d]) ^ k[%d];\n", i, i, (i+5)%width, (i+7)%width, i)
	}
	// Mix layer: an 8-term XOR written as a left-associative chain (depth 7)
	// that a high-effort compile rebalances into a depth-3 tree — the
	// effort-bound structure that separates compile levels on aes.
	for i := 0; i < width; i++ {
		terms := make([]string, 0, 8)
		for _, off := range []int{0, 1, 2, 4, 8, 16, 32} {
			terms = append(terms, fmt.Sprintf("s2[%d]", (i+off)%width))
		}
		terms = append(terms, fmt.Sprintf("k[%d]", i))
		fmt.Fprintf(&b, "    assign y[%d] = %s;\n", i, strings.Join(terms, " ^ "))
	}
	b.WriteString("endmodule\n")
	return b.String()
}

// serialChain emits a deep serial dependency cone (CRC/scrambler-like):
// stage i depends on stage i-1, so the path depth is O(depth) and cannot be
// rebalanced — only sizing helps.
func serialChain(name string, width, depth int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "module %s(input [%d:0] d, input [%d:0] poly, output [%d:0] crc);\n", name, width-1, width-1, width-1)
	for s := 0; s <= depth; s++ {
		fmt.Fprintf(&b, "    wire [%d:0] c%d;\n", width-1, s)
	}
	fmt.Fprintf(&b, "    assign c0 = d;\n")
	for s := 1; s <= depth; s++ {
		// Each stage mixes the previous stage serially: bit i depends on
		// bit i-1 of the same stage, forming a long carry-like chain.
		fmt.Fprintf(&b, "    assign c%d[0] = c%d[%d] ^ (c%d[0] & poly[%d]);\n", s, s-1, width-1, s-1, s%width)
		for i := 1; i < width; i++ {
			fmt.Fprintf(&b, "    assign c%d[%d] = c%d[%d] ^ (c%d[%d] & poly[%d]);\n",
				s, i, s, i-1, s-1, i, (i+s)%width)
		}
	}
	fmt.Fprintf(&b, "    assign crc = c%d;\nendmodule\n", depth)
	return b.String()
}

// multiplierUnit emits a registered multiply-accumulate: the arithmetic
// signature of DSP/ML-accelerator designs.
func multiplierUnit(name string, width int) string {
	return fmt.Sprintf(`module %s(input clk, input [%d:0] x, input [%d:0] c, output [%d:0] p);
    reg [%d:0] p;
    always @(posedge clk) p <= x * c;
endmodule
`, name, width-1, width-1, 2*width-1, 2*width-1)
}

// arbiter emits a priority arbiter plus a granted-data mux: the grant
// signals fan out across the whole data width, producing the high-fanout
// nets that make buffer balancing profitable.
func arbiter(name string, ports, width int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "module %s(input [%d:0] req,", name, ports-1)
	for p := 0; p < ports; p++ {
		fmt.Fprintf(&b, " input [%d:0] in%d,", width-1, p)
	}
	fmt.Fprintf(&b, " output [%d:0] gnt, output [%d:0] out);\n", ports-1, width-1)
	// Priority grants.
	fmt.Fprintf(&b, "    assign gnt[0] = req[0];\n")
	for p := 1; p < ports; p++ {
		terms := make([]string, p)
		for q := 0; q < p; q++ {
			terms[q] = fmt.Sprintf("~req[%d]", q)
		}
		fmt.Fprintf(&b, "    assign gnt[%d] = req[%d] & %s;\n", p, p, strings.Join(terms, " & "))
	}
	// Granted-data mux: each gnt bit drives `width` AND gates.
	for i := 0; i < width; i++ {
		terms := make([]string, ports)
		for p := 0; p < ports; p++ {
			terms[p] = fmt.Sprintf("(gnt[%d] & in%d[%d])", p, p, i)
		}
		fmt.Fprintf(&b, "    assign out[%d] = %s;\n", i, strings.Join(terms, " | "))
	}
	b.WriteString("endmodule\n")
	return b.String()
}

// aluUnit emits a small ALU: add/sub/logic ops selected by a mux — the
// processor-core signature.
func aluUnit(name string, width int) string {
	const chunk = 8
	var b strings.Builder
	b.WriteString(cslaAdder(name+"_add", width, chunk))
	fmt.Fprintf(&b, `module %s(input [1:0] op, input [%d:0] a, input [%d:0] b, output [%d:0] y);
    wire [%d:0] sum, dif, lg, sh;
    wire co0, co1;
    %s_add u_add (.a(a), .b(b), .cin(1'b0), .s(sum), .cout(co0));
    %s_add u_sub (.a(a), .b(~b), .cin(1'b1), .s(dif), .cout(co1));
    assign lg  = (a & b) ^ (a | b);
    assign sh  = a << 1;
    assign y = op[1] ? (op[0] ? sh : lg) : (op[0] ? dif : sum);
endmodule
`, name, width-1, width-1, width-1, width-1, name, name)
	return b.String()
}

// cslaAdder emits a carry-select adder: chunked ripple adders with both
// carry candidates and a mux chain, giving O(chunk + width/chunk) depth —
// what synthesized datapath adders actually look like after mapping.
func cslaAdder(name string, width, chunk int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "module %s(input [%d:0] a, input [%d:0] b, input cin, output [%d:0] s, output cout);\n",
		name, width-1, width-1, width-1)
	nchunks := (width + chunk - 1) / chunk
	for k := 0; k < nchunks; k++ {
		lo := k * chunk
		hi := lo + chunk - 1
		if hi >= width {
			hi = width - 1
		}
		cw := hi - lo + 1
		if k == 0 {
			fmt.Fprintf(&b, "    wire c0;\n")
			fmt.Fprintf(&b, "    wire [%d:0] s0x;\n", cw)
			fmt.Fprintf(&b, "    assign s0x = a[%d:%d] + b[%d:%d] + {%d'd0, cin};\n", hi, lo, hi, lo, cw)
			fmt.Fprintf(&b, "    assign s[%d:%d] = s0x[%d:0];\n", hi, lo, cw-1)
			fmt.Fprintf(&b, "    assign c0 = s0x[%d];\n", cw)
			continue
		}
		fmt.Fprintf(&b, "    wire c%d, c%d_0, c%d_1;\n", k, k, k)
		fmt.Fprintf(&b, "    wire [%d:0] s%d_0, s%d_1;\n", cw, k, k)
		fmt.Fprintf(&b, "    assign s%d_0 = a[%d:%d] + b[%d:%d];\n", k, hi, lo, hi, lo)
		fmt.Fprintf(&b, "    assign s%d_1 = a[%d:%d] + b[%d:%d] + %d'd1;\n", k, hi, lo, hi, lo, cw+1)
		fmt.Fprintf(&b, "    assign c%d_0 = s%d_0[%d];\n", k, k, cw)
		fmt.Fprintf(&b, "    assign c%d_1 = s%d_1[%d];\n", k, k, cw)
		fmt.Fprintf(&b, "    assign s[%d:%d] = c%d ? s%d_1[%d:0] : s%d_0[%d:0];\n", hi, lo, k-1, k, cw-1, k, cw-1)
		fmt.Fprintf(&b, "    assign c%d = c%d ? c%d_1 : c%d_0;\n", k, k-1, k, k)
	}
	fmt.Fprintf(&b, "    assign cout = c%d;\nendmodule\n", nchunks-1)
	return b.String()
}

// xorRotRound emits a Keccak-flavoured round: XOR with rotations, the
// cryptographic-arithmetic signature (wide, shallow, XOR-dominated).
func xorRotRound(name string, width int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "module %s(input [%d:0] s, input [%d:0] rc, output [%d:0] y);\n", name, width-1, width-1, width-1)
	fmt.Fprintf(&b, "    wire [%d:0] theta, rho;\n", width-1)
	fmt.Fprintf(&b, "    assign theta = s ^ {s[%d:0], s[%d:%d]} ^ {s[%d:0], s[%d:%d]};\n",
		width-2, width-1, width-1, width-6, width-1, width-5)
	fmt.Fprintf(&b, "    assign rho = theta ^ (~{theta[0], theta[%d:1]} & {theta[1:0], theta[%d:2]});\n",
		width-1, width-1)
	fmt.Fprintf(&b, "    assign y = rho ^ rc;\nendmodule\n")
	return b.String()
}

// vectorLane emits a SIMD lane: parallel independent element operations.
func vectorLane(name string, elemWidth int) string {
	return fmt.Sprintf(`module %s(input clk, input [%d:0] va, input [%d:0] vb, input [1:0] op, output [%d:0] vy);
    reg [%d:0] vy;
    wire [%d:0] s, x, m;
    assign s = va + vb;
    assign x = va ^ vb;
    assign m = va & vb;
    always @(posedge clk) vy <= op[1] ? m : (op[0] ? x : s);
endmodule
`, name, elemWidth-1, elemWidth-1, elemWidth-1, elemWidth-1, elemWidth-1)
}

// butterfly emits an FFT butterfly: add/sub pairs with a coefficient
// multiply — the signal-processing signature.
func butterfly(name string, width int) string {
	return fmt.Sprintf(`module %s(input clk, input [%d:0] ar, input [%d:0] br, input [%d:0] w, output [%d:0] xr, output [%d:0] yr);
    reg [%d:0] xr, yr;
    wire [%d:0] sum, dif;
    wire [%d:0] prod;
    assign sum = ar + br;
    assign dif = ar - br;
    assign prod = dif * w;
    always @(posedge clk) begin
        xr <= sum;
        yr <= prod[%d:%d];
    end
endmodule
`, name, width-1, width-1, width-1, width-1, width-1,
		width-1, width-1, 2*width-1, 2*width-2, width-1)
}

// wrapPassthrough emits a hierarchy wrapper that routes a bus through a
// double inversion. Each wrapper level adds 2*width inverter-pair cells
// that sweep away only after ungrouping — the removable hierarchy overhead
// that makes jpeg's ungroup-heavy customization pay off.
func wrapPassthrough(name, inner string, width int) string {
	return fmt.Sprintf(`module %s(input clk, input [%d:0] din, input [%d:0] aux, output [%d:0] dout);
    wire [%d:0] inv1, inv2, res;
    assign inv1 = ~din;
    assign inv2 = ~inv1;
    %s u_inner (.clk(clk), .din(inv2), .aux(aux), .dout(res));
    wire [%d:0] oinv1, oinv2;
    assign oinv1 = ~res;
    assign oinv2 = ~oinv1;
    assign dout = oinv2;
endmodule
`, name, width-1, width-1, width-1, width-1, inner, width-1)
}

// regStage emits a simple pipeline register module.
func regStage(name string, width int) string {
	return fmt.Sprintf(`module %s(input clk, input [%d:0] d, output [%d:0] q);
    reg [%d:0] q;
    always @(posedge clk) q <= d;
endmodule
`, name, width-1, width-1, width-1)
}

// decoder emits an n-to-2^n one-hot decoder whose outputs each gate a wide
// bus — control fanout typical of instruction decode.
func decoder(name string, selBits, width int) string {
	n := 1 << selBits
	var b strings.Builder
	fmt.Fprintf(&b, "module %s(input [%d:0] sel, input [%d:0] d, output [%d:0] y);\n", name, selBits-1, width-1, width-1)
	fmt.Fprintf(&b, "    wire [%d:0] onehot;\n", n-1)
	for i := 0; i < n; i++ {
		terms := make([]string, selBits)
		for sb := 0; sb < selBits; sb++ {
			if i>>sb&1 == 1 {
				terms[sb] = fmt.Sprintf("sel[%d]", sb)
			} else {
				terms[sb] = fmt.Sprintf("~sel[%d]", sb)
			}
		}
		fmt.Fprintf(&b, "    assign onehot[%d] = %s;\n", i, strings.Join(terms, " & "))
	}
	// Each onehot bit gates a slice of the bus: fanout = width/n per bit.
	for i := 0; i < width; i++ {
		fmt.Fprintf(&b, "    assign y[%d] = d[%d] & onehot[%d];\n", i, i, i%n)
	}
	b.WriteString("endmodule\n")
	return b.String()
}

// andChain emits a left-associative reduction chain — depth O(n) until
// compile -map_effort high rebalances it into a tree.
func andChain(name string, width int) string {
	terms := make([]string, width)
	for i := 0; i < width; i++ {
		terms[i] = fmt.Sprintf("a[%d]", i)
	}
	return fmt.Sprintf(`module %s(input [%d:0] a, output y);
    assign y = %s;
endmodule
`, name, width-1, strings.Join(terms, " & "))
}
