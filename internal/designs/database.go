package designs

import (
	"fmt"
	"math/rand"
	"strings"
)

// Categories used by Table II and the Fig. 5 retrieval experiment.
const (
	CatProcessor = "Processor Core"
	CatMLAccel   = "Machine Learning Accelerator"
	CatVector    = "Vector Arithmetic"
	CatDSP       = "Signal Processing"
	CatCrypto    = "Cryptographic Arithmetic"
)

// ModuleCategory returns the ground-truth category of a module by its
// generator-assigned name prefix. This is the label the metric-learning
// trainer and the F1 evaluation use.
func ModuleCategory(moduleName string) string {
	switch {
	case strings.HasPrefix(moduleName, "cpu_"), strings.HasPrefix(moduleName, "rv_"),
		strings.HasPrefix(moduleName, "sw_"), strings.HasPrefix(moduleName, "tr_"):
		return CatProcessor
	case strings.HasPrefix(moduleName, "mac_"), strings.HasPrefix(moduleName, "pe_"),
		strings.HasPrefix(moduleName, "conv_"):
		return CatMLAccel
	case strings.HasPrefix(moduleName, "lane_"), strings.HasPrefix(moduleName, "vec_"):
		return CatVector
	case strings.HasPrefix(moduleName, "bfly_"), strings.HasPrefix(moduleName, "fft_"):
		return CatDSP
	case strings.HasPrefix(moduleName, "keccak_"), strings.HasPrefix(moduleName, "sha_"):
		return CatCrypto
	}
	return ""
}

// cpuCore emits a processor core of the given width: ALU + decoder +
// pipeline registers, the Rocket/Sodor family shape.
func cpuCore(name string, width, selBits int) string {
	var b strings.Builder
	b.WriteString(aluUnit("cpu_alu_"+name, width))
	b.WriteString(decoder("cpu_dec_"+name, selBits, width))
	b.WriteString(fmt.Sprintf(`module cpu_%s(input clk, input [%d:0] opc, input [%d:0] rs1, input [%d:0] rs2, output [%d:0] rd);
    reg [%d:0] ex, rd;
    wire [%d:0] ay, dy;
    cpu_alu_%s u_alu (.op(opc[1:0]), .a(rs1), .b(rs2), .y(ay));
    cpu_dec_%s u_dec (.sel(opc[%d:0]), .d(ay), .y(dy));
    always @(posedge clk) begin
        ex <= dy;
        rd <= ex ^ rs1;
    end
endmodule
`, name, selBits-1, width-1, width-1, width-1, width-1, width-1, name, name, selBits-1))
	return b.String()
}

// macArray emits a systolic/conv MAC grid: the NVDLA/Gemmini family shape.
func macArray(name string, n, width int) string {
	var b strings.Builder
	b.WriteString(multiplierUnit("mac_mult_"+name, width))
	var insts, sum strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&insts, "    wire [%d:0] p%d;\n", 2*width-1, i)
		fmt.Fprintf(&insts, "    mac_mult_%s u_m%d (.clk(clk), .x(x[%d:%d]), .c(w%d), .p(p%d));\n",
			name, i, (i+1)*width-1, i*width, i, i)
		if i > 0 {
			sum.WriteString(" + ")
		}
		fmt.Fprintf(&sum, "p%d", i)
	}
	ports := make([]string, n)
	for i := 0; i < n; i++ {
		ports[i] = fmt.Sprintf("input [%d:0] w%d", width-1, i)
	}
	b.WriteString(fmt.Sprintf(`module mac_%s(input clk, input [%d:0] x, %s, output [%d:0] acc);
%s    reg [%d:0] acc;
    always @(posedge clk) acc <= %s;
endmodule
`, name, n*width-1, strings.Join(ports, ", "), 2*width+3, insts.String(), 2*width+3, sum.String()))
	return b.String()
}

// vectorUnit emits n SIMD lanes: the RISC-V vector-IP family shape.
func vectorUnit(name string, lanes, elemWidth int) string {
	var b strings.Builder
	b.WriteString(vectorLane("lane_"+name, elemWidth))
	var insts strings.Builder
	for i := 0; i < lanes; i++ {
		fmt.Fprintf(&insts, "    lane_%s u_l%d (.clk(clk), .va(va[%d:%d]), .vb(vb[%d:%d]), .op(op), .vy(vy[%d:%d]));\n",
			name, i, (i+1)*elemWidth-1, i*elemWidth, (i+1)*elemWidth-1, i*elemWidth, (i+1)*elemWidth-1, i*elemWidth)
	}
	total := lanes * elemWidth
	b.WriteString(fmt.Sprintf(`module vec_%s(input clk, input [1:0] op, input [%d:0] va, input [%d:0] vb, output [%d:0] vy);
%sendmodule
`, name, total-1, total-1, total-1, insts.String()))
	return b.String()
}

// fftUnit emits a chain of FFT butterfly stages: the MachSuite FFT shape.
func fftUnit(name string, stages, width int) string {
	var b strings.Builder
	b.WriteString(butterfly("bfly_"+name, width))
	var insts strings.Builder
	fmt.Fprintf(&insts, "    wire [%d:0] xr0, yr0;\n", width-1)
	fmt.Fprintf(&insts, "    bfly_%s u_b0 (.clk(clk), .ar(ar), .br(br), .w(w), .xr(xr0), .yr(yr0));\n", name)
	for s := 1; s < stages; s++ {
		fmt.Fprintf(&insts, "    wire [%d:0] xr%d, yr%d;\n", width-1, s, s)
		fmt.Fprintf(&insts, "    bfly_%s u_b%d (.clk(clk), .ar(xr%d), .br(yr%d), .w(w), .xr(xr%d), .yr(yr%d));\n",
			name, s, s-1, s-1, s, s)
	}
	b.WriteString(fmt.Sprintf(`module fft_%s(input clk, input [%d:0] ar, input [%d:0] br, input [%d:0] w, output [%d:0] outr, output [%d:0] outi);
%s    assign outr = xr%d;
    assign outi = yr%d;
endmodule
`, name, width-1, width-1, width-1, width-1, width-1, insts.String(), stages-1, stages-1))
	return b.String()
}

// sha3Unit emits chained Keccak-flavoured rounds: the SHA3 shape.
func sha3Unit(name string, rounds, width int) string {
	var b strings.Builder
	b.WriteString(xorRotRound("keccak_"+name, width))
	var insts strings.Builder
	fmt.Fprintf(&insts, "    wire [%d:0] r0;\n", width-1)
	fmt.Fprintf(&insts, "    keccak_%s u_r0 (.s(st), .rc(rc), .y(r0));\n", name)
	for r := 1; r < rounds; r++ {
		fmt.Fprintf(&insts, "    wire [%d:0] r%d;\n", width-1, r)
		fmt.Fprintf(&insts, "    keccak_%s u_r%d (.s(r%d), .rc({rc[%d:0], rc[%d]}), .y(r%d));\n",
			name, r, r-1, width-2, width-1, r)
	}
	b.WriteString(fmt.Sprintf(`module sha_%s(input clk, input [%d:0] din, input [%d:0] rc, output [%d:0] digest);
    reg [%d:0] st, digest;
%s    always @(posedge clk) begin
        st <= din ^ st;
        digest <= r%d;
    end
endmodule
`, name, width-1, width-1, width-1, width-1, insts.String(), rounds-1))
	return b.String()
}

// dbDesign wraps a component generator into a standalone Design.
func dbDesign(name, category, top, source string, period float64, traits ...string) *Design {
	return &Design{
		Name: name, Top: top, FileName: name + ".v", Source: source,
		Category: category, Period: period, Traits: traits,
	}
}

// DatabaseDesigns returns the Table II corpus: the open-source designs the
// paper synthesizes under multiple strategies to seed SynthRAG's database.
func DatabaseDesigns() []*Design {
	return []*Design{
		dbDesign("rocket", CatProcessor, "cpu_rocket", cpuCore("rocket", 64, 5), 2.6, TraitBalanced),
		dbDesign("sodor", CatProcessor, "cpu_sodor", cpuCore("sodor", 32, 4), 2.2, TraitBalanced),
		dbDesign("nvdla", CatMLAccel, "mac_nvdla", macArray("nvdla", 4, 10), 3.2, TraitWideArith),
		dbDesign("gemmini", CatMLAccel, "mac_gemmini", macArray("gemmini", 6, 8), 3.0, TraitWideArith),
		dbDesign("simd", CatVector, "vec_simd", vectorUnit("simd", 8, 16), 1.8, TraitBalanced),
		dbDesign("fft", CatDSP, "fft_fft", fftUnit("fft", 3, 12), 3.0, TraitWideArith),
		dbDesign("sha3", CatCrypto, "sha_sha3", sha3Unit("sha3", 3, 64), 1.6, TraitWideArith),
	}
}

// DatabaseVariants returns additional configurations of the Table II
// designs that exercise the structural traits the benchmark set carries, so
// SynthRAG's database holds an expert precedent for each: a Rocket with a
// shared-bus arbiter (high fanout), a deeply imbalanced five-stage Sodor
// (register imbalance), an NVDLA integration under inverting interface
// wrappers (hierarchy overhead), and a serial SHA3 datapath (deep serial
// logic).
func DatabaseVariants() []*Design {
	var out []*Design

	// rocket_bus: processor core + bus arbiter with wide grant fanout.
	{
		var b strings.Builder
		b.WriteString(cpuCore("rocketb", 32, 4))
		b.WriteString(arbiter("cpu_busarb_rocketb", 4, 48))
		b.WriteString(`module rocket_bus(input clk, input [3:0] opc, input [31:0] rs1, input [31:0] rs2,
        input [3:0] req, input [47:0] b0, input [47:0] b1, input [47:0] b2, input [47:0] b3,
        output [31:0] rd, output [47:0] bus);
    cpu_rocketb u_core (.clk(clk), .opc(opc), .rs1(rs1), .rs2(rs2), .rd(rd));
    wire [3:0] gnt;
    wire [47:0] granted;
    cpu_busarb_rocketb u_arb (.req(req), .in0(b0), .in1(b1), .in2(b2), .in3(b3), .gnt(gnt), .out(granted));
    reg [47:0] bus;
    always @(posedge clk) bus <= granted;
endmodule
`)
		out = append(out, dbDesign("rocket_bus", CatProcessor, "rocket_bus", b.String(), 2.6, TraitHighFanout))
	}

	// sodor_pipe5: five-stage pipeline with a deep execute stage.
	{
		var b strings.Builder
		b.WriteString(aluUnit("cpu_alu_sodor5", 24))
		b.WriteString(`module sodor_pipe5(input clk, input [23:0] pc, input [23:0] opa, input [23:0] opb, output [23:0] wb);
    reg [23:0] f, d, x, m, wb;
    wire [23:0] y0, y1, deep;
    cpu_alu_sodor5 u_e0 (.op(2'b00), .a(d), .b(opa), .y(y0));
    cpu_alu_sodor5 u_e1 (.op(2'b01), .a(y0), .b(opb), .y(y1));
    assign deep = y1 ^ (y1 << 3);
    always @(posedge clk) begin
        f  <= pc;
        d  <= f;
        x  <= deep;
        m  <= x;
        wb <= m;
    end
endmodule
`)
		out = append(out, dbDesign("sodor_pipe5", CatProcessor, "sodor_pipe5", b.String(), 1.5, TraitRegisterImbalance))
	}

	// nvdla_wrapped: MAC array under inverted-interface hierarchy wrappers.
	{
		var b strings.Builder
		b.WriteString(macArray("nvdlaw", 3, 8))
		prev := "mac_nvdlaw"
		const w, levels = 24, 6
		b.WriteString(fmt.Sprintf(`module conv_wrap0_nvdlaw(input clk, input [%d:0] din_n, input [7:0] w0, input [7:0] w1, input [7:0] w2, output [19:0] dout_n);
    %s u_core (.clk(clk), .x(din_n), .w0(w0), .w1(w1), .w2(w2), .acc(dout_n));
endmodule
`, w-1, prev))
		prev = "conv_wrap0_nvdlaw"
		for lvl := 1; lvl <= levels; lvl++ {
			name := fmt.Sprintf("conv_wrap%d_nvdlaw", lvl)
			b.WriteString(fmt.Sprintf(`module %s(input clk, input [%d:0] din_n, input [7:0] w0, input [7:0] w1, input [7:0] w2, output [19:0] dout_n);
    wire [%d:0] tochild;
    wire [19:0] fromchild;
    assign tochild = ~din_n;
    %s u_sub (.clk(clk), .din_n(tochild), .w0(w0), .w1(w1), .w2(w2), .dout_n(fromchild));
    assign dout_n = ~fromchild;
endmodule
`, name, w-1, w-1, prev))
			prev = name
		}
		b.WriteString(fmt.Sprintf(`module nvdla_wrapped(input clk, input [%d:0] x, input [7:0] w0, input [7:0] w1, input [7:0] w2, output [19:0] acc);
    %s u_top (.clk(clk), .din_n(x), .w0(w0), .w1(w1), .w2(w2), .dout_n(acc));
endmodule
`, w-1, prev))
		out = append(out, dbDesign("nvdla_wrapped", CatMLAccel, "nvdla_wrapped", b.String(), 3.4, TraitHierOverhead))
	}

	// sha3_serial: serially chained digest logic from pins to pins.
	{
		var b strings.Builder
		b.WriteString(serialChain("keccak_serial_sha3s", 10, 3))
		b.WriteString(`module sha3_serial(input clk, input [9:0] din, input [9:0] poly, output [9:0] digest);
    keccak_serial_sha3s u_chain (.d(din), .poly(poly), .crc(digest));
endmodule
`)
		out = append(out, dbDesign("sha3_serial", CatCrypto, "sha3_serial", b.String(), 3.4, TraitDeepSerial))
	}

	return out
}

// TrainingVariants returns size/configuration variants of the Table II
// components. They enrich the metric-learning training set and the module
// retrieval index (the paper's corpus covers "various configurations"), but
// carry no expert scripts of their own.
func TrainingVariants() []*Design {
	return []*Design{
		dbDesign("rocket_24", CatProcessor, "cpu_r24", cpuCore("r24", 24, 3), 2.4),
		dbDesign("rocket_48", CatProcessor, "cpu_r48", cpuCore("r48", 48, 5), 2.8),
		dbDesign("nvdla_2", CatMLAccel, "mac_m2", macArray("m2", 2, 6), 2.8),
		dbDesign("gemmini_5", CatMLAccel, "mac_m5", macArray("m5", 5, 12), 3.4),
		dbDesign("simd_4", CatVector, "vec_v4", vectorUnit("v4", 4, 8), 1.6),
		dbDesign("simd_12", CatVector, "vec_v12", vectorUnit("v12", 12, 16), 2.0),
		dbDesign("fft_2", CatDSP, "fft_f2", fftUnit("f2", 2, 10), 2.8),
		dbDesign("fft_4", CatDSP, "fft_f4", fftUnit("f4", 4, 14), 3.4),
		dbDesign("sha3_2", CatCrypto, "sha_s2", sha3Unit("s2", 2, 48), 1.5),
		dbDesign("sha3_4", CatCrypto, "sha_s4", sha3Unit("s4", 4, 80), 1.9),
	}
}

// SoCConfig selects components for a Chipyard-style SoC generation, the
// workload of the Fig. 5 retrieval experiment.
type SoCConfig struct {
	Name      string
	CoreWidth int // 0 = no core
	MACUnits  int // 0 = no ML accelerator
	VecLanes  int // 0 = no vector unit
	FFTStages int // 0 = no FFT
	SHARounds int // 0 = no SHA3
	Seed      int64
}

// RandomSoCConfig draws a config with at least two components.
func RandomSoCConfig(name string, rng *rand.Rand) SoCConfig {
	for {
		cfg := SoCConfig{Name: name, Seed: rng.Int63()}
		if rng.Intn(2) == 1 {
			cfg.CoreWidth = []int{32, 64}[rng.Intn(2)]
		}
		if rng.Intn(2) == 1 {
			cfg.MACUnits = 2 + rng.Intn(5)
		}
		if rng.Intn(2) == 1 {
			cfg.VecLanes = []int{4, 8, 16}[rng.Intn(3)]
		}
		if rng.Intn(2) == 1 {
			cfg.FFTStages = 2 + rng.Intn(3)
		}
		if rng.Intn(2) == 1 {
			cfg.SHARounds = 2 + rng.Intn(3)
		}
		if cfg.Components() >= 2 {
			return cfg
		}
	}
}

// Components counts the enabled component kinds.
func (c SoCConfig) Components() int {
	n := 0
	for _, on := range []bool{c.CoreWidth > 0, c.MACUnits > 0, c.VecLanes > 0, c.FFTStages > 0, c.SHARounds > 0} {
		if on {
			n++
		}
	}
	return n
}

// Categories returns the ground-truth category set of the config.
func (c SoCConfig) Categories() []string {
	var out []string
	if c.CoreWidth > 0 {
		out = append(out, CatProcessor)
	}
	if c.MACUnits > 0 {
		out = append(out, CatMLAccel)
	}
	if c.VecLanes > 0 {
		out = append(out, CatVector)
	}
	if c.FFTStages > 0 {
		out = append(out, CatDSP)
	}
	if c.SHARounds > 0 {
		out = append(out, CatCrypto)
	}
	return out
}

// SoC generates a Chipyard-style SoC from the config: the selected
// components instantiated under one top module.
func SoC(cfg SoCConfig) *Design {
	n := cfg.Name
	var b, ports, insts strings.Builder
	if cfg.CoreWidth > 0 {
		b.WriteString(cpuCore(n, cfg.CoreWidth, 4))
		fmt.Fprintf(&ports, ", input [3:0] opc, input [%d:0] rs1, input [%d:0] rs2, output [%d:0] rd", cfg.CoreWidth-1, cfg.CoreWidth-1, cfg.CoreWidth-1)
		fmt.Fprintf(&insts, "    cpu_%s u_core (.clk(clk), .opc(opc), .rs1(rs1), .rs2(rs2), .rd(rd));\n", n)
	}
	if cfg.MACUnits > 0 {
		w := 8
		b.WriteString(macArray(n, cfg.MACUnits, w))
		fmt.Fprintf(&ports, ", input [%d:0] mx", cfg.MACUnits*w-1)
		weights := make([]string, cfg.MACUnits)
		for i := 0; i < cfg.MACUnits; i++ {
			fmt.Fprintf(&ports, ", input [%d:0] mw%d", w-1, i)
			weights[i] = fmt.Sprintf(".w%d(mw%d)", i, i)
		}
		fmt.Fprintf(&ports, ", output [%d:0] macc", 2*w+3)
		fmt.Fprintf(&insts, "    mac_%s u_mac (.clk(clk), .x(mx), %s, .acc(macc));\n", n, strings.Join(weights, ", "))
	}
	if cfg.VecLanes > 0 {
		ew := 16
		total := cfg.VecLanes * ew
		b.WriteString(vectorUnit(n, cfg.VecLanes, ew))
		fmt.Fprintf(&ports, ", input [1:0] vop, input [%d:0] va, input [%d:0] vb, output [%d:0] vy", total-1, total-1, total-1)
		fmt.Fprintf(&insts, "    vec_%s u_vec (.clk(clk), .op(vop), .va(va), .vb(vb), .vy(vy));\n", n)
	}
	if cfg.FFTStages > 0 {
		b.WriteString(fftUnit(n, cfg.FFTStages, 12))
		fmt.Fprintf(&ports, ", input [11:0] far, input [11:0] fbr, input [11:0] fw, output [11:0] fxr, output [11:0] fyr")
		fmt.Fprintf(&insts, "    fft_%s u_fft (.clk(clk), .ar(far), .br(fbr), .w(fw), .outr(fxr), .outi(fyr));\n", n)
	}
	if cfg.SHARounds > 0 {
		b.WriteString(sha3Unit(n, cfg.SHARounds, 64))
		fmt.Fprintf(&ports, ", input [63:0] hdin, input [63:0] hrc, output [63:0] hq")
		fmt.Fprintf(&insts, "    sha_%s u_sha (.clk(clk), .din(hdin), .rc(hrc), .digest(hq));\n", n)
	}
	b.WriteString(fmt.Sprintf("module soc_%s(input clk%s);\n%sendmodule\n", n, ports.String(), insts.String()))
	return &Design{
		Name: "soc_" + n, Top: "soc_" + n, FileName: "soc_" + n + ".v", Source: b.String(),
		Category: "SoC", Period: 3.0,
	}
}

// ObfuscateRTL renames every identifier in a Verilog source to a generic
// name (keeping keywords), modeling the reality that a user's RTL shares
// structure — not naming conventions — with the database corpus. The
// retrieval ablation uses it on query code so text matching cannot win by
// recognizing generator identifiers, which a graph representation never
// sees in the first place.
func ObfuscateRTL(src string) string {
	keywords := map[string]bool{
		"module": true, "endmodule": true, "input": true, "output": true,
		"inout": true, "wire": true, "reg": true, "assign": true,
		"always": true, "posedge": true, "negedge": true, "begin": true,
		"end": true, "if": true, "else": true, "parameter": true,
		"localparam": true, "and": true, "or": true, "nand": true,
		"nor": true, "xor": true, "xnor": true, "not": true, "buf": true,
	}
	rename := make(map[string]string)
	var out strings.Builder
	i := 0
	for i < len(src) {
		c := src[i]
		// Sized literals (8'hFF, 1'b0): copy the base letter and digits
		// verbatim so they are not mistaken for identifiers.
		if c == '\'' {
			out.WriteByte(c)
			i++
			if i < len(src) {
				out.WriteByte(src[i]) // base letter
				i++
			}
			for i < len(src) && (src[i] >= '0' && src[i] <= '9' ||
				src[i] >= 'a' && src[i] <= 'f' || src[i] >= 'A' && src[i] <= 'F' || src[i] == '_') {
				out.WriteByte(src[i])
				i++
			}
			continue
		}
		if c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' {
			j := i
			for j < len(src) && (src[j] == '_' || src[j] >= 'a' && src[j] <= 'z' ||
				src[j] >= 'A' && src[j] <= 'Z' || src[j] >= '0' && src[j] <= '9') {
				j++
			}
			tok := src[i:j]
			if keywords[tok] {
				out.WriteString(tok)
			} else {
				r, ok := rename[tok]
				if !ok {
					r = fmt.Sprintf("id%d", len(rename))
					rename[tok] = r
				}
				out.WriteString(r)
			}
			i = j
			continue
		}
		out.WriteByte(c)
		i++
	}
	return out.String()
}
