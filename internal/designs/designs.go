package designs

import (
	"fmt"
	"strings"
)

// Design is one generated RTL design plus the evaluation metadata the
// benchmark harness and the RAG database need.
type Design struct {
	Name     string
	Top      string
	FileName string
	Source   string
	Category string  // Table II category, e.g. "Processor Core"
	Period   float64 // evaluation clock period (ns)
	// Traits are the structural characteristics that determine which
	// synthesis commands pay off; they are ground truth for the analysis
	// pipeline, never revealed to the LLM directly.
	Traits []string
}

// Trait names used across the pipeline.
const (
	TraitRegisterImbalance = "register-imbalance"
	TraitHighFanout        = "high-fanout"
	TraitDeepSerial        = "deep-serial-logic"
	TraitHierOverhead      = "hierarchy-overhead"
	TraitWideArith         = "wide-arithmetic"
	TraitChains            = "reduction-chains"
	TraitBalanced          = "balanced"
)

// HasTrait reports whether the design carries the trait.
func (d *Design) HasTrait(t string) bool {
	for _, x := range d.Traits {
		if x == t {
			return true
		}
	}
	return false
}

// BaselineScript returns the adapted-OpenROAD-style baseline synthesis
// script for the design (Table IV's reference point). jpeg's original
// script famously under-optimizes (low effort, hierarchy kept), which is
// what the customization experiment improves on.
func (d *Design) BaselineScript() string {
	effort := "medium"
	if d.Name == "jpeg" {
		effort = "low"
	}
	return fmt.Sprintf(`# adapted baseline synthesis script for %s
read_verilog %s
current_design %s
link
set_wire_load_model -name 5K_heavy_1k
create_clock -period %.2f [get_ports clk]
compile -map_effort %s
report_qor
report_timing -max_paths 3
`, d.Name, d.FileName, d.Top, d.Period, effort)
}

// ---------------------------------------------------------------------------
// Table IV benchmark designs.

// AES generates the aes benchmark: four wide S-box rounds between pipeline
// registers, with three rounds in one stage and one in the next — the
// register imbalance that only retiming (plus effort) resolves, matching
// the paper's outcome where the raw models leave aes violating and ChatLS
// closes it.
func AES() *Design {
	const w = 96
	var b strings.Builder
	b.WriteString(sboxRound("aes_round", w))
	b.WriteString(fmt.Sprintf(`module aes(input clk, input [%d:0] pt, input [%d:0] key, output [%d:0] ct);
    reg [%d:0] st0, st1, ct;
    wire [%d:0] r0, r1, r2, r3;
    aes_round u_r0 (.a(st0), .k(key), .y(r0));
    aes_round u_r1 (.a(r0), .k({key[0], key[%d:1]}), .y(r1));
    aes_round u_r2 (.a(r1), .k({key[1:0], key[%d:2]}), .y(r2));
    aes_round u_r3 (.a(st1), .k({key[2:0], key[%d:3]}), .y(r3));
    always @(posedge clk) begin
        st0 <= pt ^ key;
        st1 <= r2;
        ct <= r3;
    end
endmodule
`, w-1, w-1, w-1, w-1, w-1, w-1, w-1, w-1))
	return &Design{
		Name: "aes", Top: "aes", FileName: "aes.v", Source: b.String(),
		Category: "Cryptographic Arithmetic", Period: 2.75,
		Traits: []string{TraitWideArith, TraitRegisterImbalance},
	}
}

// DynamicNode generates the dynamic_node benchmark: a 5-port NoC router
// whose grant nets fan out across the datapath — buffering-bound.
func DynamicNode() *Design {
	const ports, w = 5, 64
	var b strings.Builder
	b.WriteString(arbiter("dn_arbiter", ports, w))
	b.WriteString(regStage("dn_reg", w))
	var ins, conns strings.Builder
	for p := 0; p < ports; p++ {
		fmt.Fprintf(&ins, "    wire [%d:0] buf%d;\n", w-1, p)
		fmt.Fprintf(&ins, "    dn_reg u_in%d (.clk(clk), .d(in%d), .q(buf%d));\n", p, p, p)
		fmt.Fprintf(&conns, " .in%d(buf%d),", p, p)
	}
	portDecl := make([]string, ports)
	for p := 0; p < ports; p++ {
		portDecl[p] = fmt.Sprintf("input [%d:0] in%d", w-1, p)
	}
	b.WriteString(fmt.Sprintf(`module dynamic_node(input clk, input [%d:0] req, %s, output [%d:0] out, output [%d:0] gnt_o);
%s    wire [%d:0] granted;
    wire [%d:0] gnt;
    dn_arbiter u_arb (.req(req),%s .gnt(gnt), .out(granted));
    reg [%d:0] out;
    reg [%d:0] gnt_o;
    always @(posedge clk) begin
        out <= granted ^ {granted[0], granted[%d:1]};
        gnt_o <= gnt;
    end
endmodule
`, ports-1, strings.Join(portDecl, ", "), w-1, ports-1,
		ins.String(), w-1, ports-1, conns.String(), w-1, ports-1, w-1))
	return &Design{
		Name: "dynamic_node", Top: "dynamic_node", FileName: "dynamic_node.v", Source: b.String(),
		Category: "Network-on-Chip", Period: 3.20,
		Traits: []string{TraitHighFanout},
	}
}

// EthMAC generates the ethmac benchmark: a deep serial CRC cone from input
// to output pins plus a registered MAC datapath. The serial cone cannot be
// retimed (it ends at a primary output), so one customization iteration can
// only chip at it with sizing — matching the paper's residual violation.
func EthMAC() *Design {
	const w, depth = 12, 3
	var b strings.Builder
	b.WriteString(serialChain("eth_crc", w, depth))
	b.WriteString(aluUnit("eth_alu", 32))
	b.WriteString(fmt.Sprintf(`module ethmac(input clk, input [%d:0] rxd, input [%d:0] poly, input [31:0] da, input [31:0] db, output [%d:0] crc_out, output [31:0] macq);
    wire [%d:0] crc;
    eth_crc u_crc (.d(rxd), .poly(poly), .crc(crc));
    assign crc_out = crc;
    reg [31:0] macq, stage;
    wire [31:0] y0, y1;
    eth_alu u_a0 (.op(2'b00), .a(da), .b(db), .y(y0));
    eth_alu u_a1 (.op(2'b10), .a(stage), .b(da), .y(y1));
    always @(posedge clk) begin
        stage <= y0;
        macq <= y1;
    end
endmodule
`, w-1, w-1, w-1, w-1))
	return &Design{
		Name: "ethmac", Top: "ethmac", FileName: "ethmac.v", Source: b.String(),
		Category: "Network Interface", Period: 3.30,
		Traits: []string{TraitDeepSerial},
	}
}

// JPEG generates the jpeg benchmark: a bank of coefficient multipliers
// buried under inverting wrapper hierarchy. Ungroup-bound: compile_ultra's
// automatic ungrouping sweeps the boundary inverter pairs, recovering both
// timing and a large fraction of area.
func JPEG() *Design {
	const units, w, wrapLevels = 8, 12, 10
	var b strings.Builder
	b.WriteString(multiplierUnit("jpeg_mult", w))
	// Wrapper chain: each level inverts every bus once on the way in and
	// once on the way out (the active-low interface idiom), so adjacent
	// inverters always sit in different hierarchy groups. The pairs are
	// therefore only sweepable after ungrouping — the removable hierarchy
	// overhead that makes jpeg's customization pay off.
	prev := "jpeg_mult_w0"
	b.WriteString(fmt.Sprintf(`module jpeg_mult_w0(input clk, input [%d:0] din_n, input [%d:0] aux_n, output [%d:0] dout_n);
    jpeg_mult u_core (.clk(clk), .x(din_n), .c(aux_n), .p(dout_n));
endmodule
`, w-1, w-1, 2*w-1))
	for lvl := 1; lvl <= wrapLevels; lvl++ {
		name := fmt.Sprintf("jpeg_mult_w%d", lvl)
		b.WriteString(fmt.Sprintf(`module %s(input clk, input [%d:0] din_n, input [%d:0] aux_n, output [%d:0] dout_n);
    wire [%d:0] tochild, auxchild;
    wire [%d:0] fromchild;
    assign tochild = ~din_n;
    assign auxchild = ~aux_n;
    %s u_sub (.clk(clk), .din_n(tochild), .aux_n(auxchild), .dout_n(fromchild));
    assign dout_n = ~fromchild;
endmodule
`, name, w-1, w-1, 2*w-1, w-1, 2*w-1, prev))
		prev = name
	}
	// Top: the multiplier bank plus an output mix stage.
	var insts, xorTerms strings.Builder
	for u := 0; u < units; u++ {
		fmt.Fprintf(&insts, "    wire [%d:0] p%d;\n", 2*w-1, u)
		fmt.Fprintf(&insts, "    %s u_m%d (.clk(clk), .din_n(x%d), .aux_n(c%d), .dout_n(p%d));\n", prev, u, u, u, u)
		if u > 0 {
			xorTerms.WriteString(" ^ ")
		}
		fmt.Fprintf(&xorTerms, "p%d", u)
	}
	ports := make([]string, 0, 2*units)
	for u := 0; u < units; u++ {
		ports = append(ports, fmt.Sprintf("input [%d:0] x%d", w-1, u))
		ports = append(ports, fmt.Sprintf("input [%d:0] c%d", w-1, u))
	}
	b.WriteString(fmt.Sprintf(`module jpeg(input clk, %s, output [%d:0] dct);
%s    reg [%d:0] dct;
    always @(posedge clk) dct <= %s;
endmodule
`, strings.Join(ports, ", "), 2*w-1, insts.String(), 2*w-1, xorTerms.String()))
	return &Design{
		Name: "jpeg", Top: "jpeg", FileName: "jpeg.v", Source: b.String(),
		Category: "Image Codec", Period: 5.30,
		Traits: []string{TraitHierOverhead, TraitWideArith},
	}
}

// RiscV32i generates the riscv32i benchmark: a small balanced two-stage
// core that meets timing — the "nothing to fix" control case.
func RiscV32i() *Design {
	var b strings.Builder
	b.WriteString(aluUnit("rv_alu", 32))
	b.WriteString(decoder("rv_dec", 4, 32))
	b.WriteString(fmt.Sprintf(`module riscv32i(input clk, input [3:0] opc, input [31:0] rs1, input [31:0] rs2, input [31:0] imm, output [31:0] rd);
    reg [31:0] exr, rd;
    wire [31:0] alu_y, dec_y;
    rv_alu u_alu (.op(opc[1:0]), .a(rs1), .b(opc[2] ? imm : rs2), .y(alu_y));
    rv_dec u_dec (.sel(opc), .d(alu_y), .y(dec_y));
    always @(posedge clk) begin
        exr <= dec_y;
        rd <= exr ^ (imm & rs1);
    end
endmodule
`))
	return &Design{
		Name: "riscv32i", Top: "riscv32i", FileName: "riscv32i.v", Source: b.String(),
		Category: "Processor Core", Period: 4.90,
		Traits: []string{TraitBalanced},
	}
}

// SweRV generates the swerv benchmark: a wider dual-issue-flavoured core,
// larger but balanced; meets timing with moderate slack.
func SweRV() *Design {
	var b strings.Builder
	b.WriteString(aluUnit("sw_alu", 64))
	b.WriteString(decoder("sw_dec", 5, 64))
	b.WriteString(regStage("sw_reg", 64))
	b.WriteString(`module swerv(input clk, input [4:0] opc, input [63:0] ra, input [63:0] rb, input [63:0] rc, input [63:0] rd_in, output [63:0] res0, output [63:0] res1);
    wire [63:0] y0, y1, d0, d1, q0, q1;
    sw_alu u_alu0 (.op(opc[1:0]), .a(ra), .b(rb), .y(y0));
    sw_alu u_alu1 (.op(opc[3:2]), .a(rc), .b(rd_in), .y(y1));
    sw_dec u_dec0 (.sel(opc), .d(y0), .y(d0));
    sw_dec u_dec1 (.sel(opc), .d(y1), .y(d1));
    sw_reg u_q0 (.clk(clk), .d(d0), .q(q0));
    sw_reg u_q1 (.clk(clk), .d(d1), .q(q1));
    wire [63:0] sum01;
    wire sco;
    sw_alu_add u_sum (.a(q1), .b(q0), .cin(1'b0), .s(sum01), .cout(sco));
    reg [63:0] res0, res1;
    always @(posedge clk) begin
        res0 <= q0 ^ (q1 & ra);
        res1 <= sum01;
    end
endmodule
`)
	return &Design{
		Name: "swerv", Top: "swerv", FileName: "swerv.v", Source: b.String(),
		Category: "Processor Core", Period: 7.20,
		Traits: []string{TraitBalanced},
	}
}

// TinyRocket generates the tinyRocket benchmark: a five-stage pipeline with
// a grossly imbalanced execute stage — retiming-bound, and only partially
// fixable in one iteration.
func TinyRocket() *Design {
	var b strings.Builder
	b.WriteString(aluUnit("tr_alu", 32))
	b.WriteString(fmt.Sprintf(`module tinyRocket(input clk, input [31:0] pc_in, input [31:0] op_a, input [31:0] op_b, output [31:0] wb);
    reg [31:0] s_if, s_id, s_ex, s_mem, wb;
    wire [31:0] y0, y1, y2, deep;
    tr_alu u_e0 (.op(2'b00), .a(s_id), .b(op_a), .y(y0));
    tr_alu u_e1 (.op(2'b01), .a(y0), .b(op_b), .y(y1));
    tr_alu u_e2 (.op(2'b10), .a(y1), .b(y0), .y(y2));
    assign deep = (y2 + y1) ^ (y2 << 2);
    always @(posedge clk) begin
        s_if  <= pc_in;
        s_id  <= s_if;
        s_ex  <= deep;
        s_mem <= s_ex;
        wb    <= s_mem;
    end
endmodule
`))
	return &Design{
		Name: "tinyRocket", Top: "tinyRocket", FileName: "tinyRocket.v", Source: b.String(),
		Category: "Processor Core", Period: 2.72,
		Traits: []string{TraitRegisterImbalance},
	}
}

// Benchmarks returns the Table IV benchmark set in paper order.
func Benchmarks() []*Design {
	return []*Design{AES(), DynamicNode(), EthMAC(), JPEG(), RiscV32i(), SweRV(), TinyRocket()}
}

// ByName finds a benchmark or database design by name, or nil.
func ByName(name string) *Design {
	for _, d := range append(Benchmarks(), DatabaseDesigns()...) {
		if d.Name == name {
			return d
		}
	}
	return nil
}
