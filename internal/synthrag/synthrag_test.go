package synthrag

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/designs"
	"repro/internal/llm"
)

// buildQuick constructs a database without expert synthesis (fast).
func buildQuick(t *testing.T, epochs int) *Database {
	t.Helper()
	db, err := Build(BuildConfig{Seed: 3, TrainEpochs: epochs, SkipSynth: true})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// buildFull (cached across tests) includes expert synthesis.
var fullDB *Database

func buildFull(t *testing.T) *Database {
	t.Helper()
	if fullDB != nil {
		return fullDB
	}
	db, err := Build(BuildConfig{Seed: 3, TrainEpochs: 30})
	if err != nil {
		t.Fatal(err)
	}
	fullDB = db
	return db
}

func TestBuildQuickIndexes(t *testing.T) {
	db := buildQuick(t, 0)
	corpus := append(designs.DatabaseDesigns(), designs.DatabaseVariants()...)
	if len(db.Strategies) != len(corpus) {
		t.Errorf("strategies = %d, want %d", len(db.Strategies), len(corpus))
	}
	if db.Graph.NodeCount() == 0 {
		t.Error("graph database empty")
	}
	// Library cells must be present.
	info, err := db.CellInfo("NAND2_X1")
	if err != nil {
		t.Fatal(err)
	}
	if info["function"] != "NAND2" || info["drive"] != int64(1) {
		t.Errorf("cell info wrong: %v", info)
	}
	if _, err := db.CellInfo("NO_SUCH_CELL"); err == nil {
		t.Error("unknown cell should error")
	}
}

func TestModuleCodeRetrieval(t *testing.T) {
	db := buildQuick(t, 0)
	code, err := db.ModuleCode("rocket", "cpu_alu_rocket")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(code, "module cpu_alu_rocket") {
		t.Errorf("wrong module code: %.60q", code)
	}
	if _, err := db.ModuleCode("rocket", "nonexistent"); err == nil {
		t.Error("missing module should error")
	}
}

func TestManualSearch(t *testing.T) {
	db := buildQuick(t, 0)
	model := llm.New(llm.GPT4o, 1)
	hits := db.SearchManual("how to retime registers to balance pipeline stages", 3, model)
	if len(hits) == 0 {
		t.Fatal("no manual hits")
	}
	top := hits[0].Doc.ID
	if top != "cmd/optimize_registers" && top != "guide/retiming" {
		t.Errorf("top hit = %s, want retiming-related", top)
	}
	// Hallucinated command query must route to a real command.
	hits = db.SearchManual("set_fanout_limit 16", 2, model)
	found := false
	for _, h := range hits {
		if h.Doc.ID == "cmd/set_max_fanout" || h.Doc.ID == "guide/buffering" {
			found = true
		}
	}
	if !found {
		t.Errorf("fanout hallucination did not retrieve fanout docs: %v", ids(hits))
	}
}

func ids(hits []ManualDoc) []string {
	out := make([]string, len(hits))
	for i, h := range hits {
		out[i] = h.Doc.ID
	}
	return out
}

func TestModuleRetrievalByCategory(t *testing.T) {
	db := buildQuick(t, 40)
	// Query with a fresh processor-core design not in the corpus.
	d := designs.RiscV32i()
	_, dg, err := db.EmbedDesign(d.Source, d.Top)
	if err != nil {
		t.Fatal(err)
	}
	embs := db.EmbedModulesOf(dg)
	// The ALU module should retrieve mostly processor-category modules.
	idx := dg.ModuleIndex("rv_alu")
	if idx < 0 {
		t.Fatal("rv_alu not in graph")
	}
	hits := db.RetrieveModules(embs[idx], 5)
	if len(hits) != 5 {
		t.Fatalf("hits = %d", len(hits))
	}
	proc := 0
	for _, h := range hits {
		if h.Record.Category == designs.CatProcessor {
			proc++
		}
	}
	if proc < 3 {
		t.Errorf("only %d/5 hits are processor modules: %+v", proc, hits)
	}
}

func TestExpertStrategySelection(t *testing.T) {
	if testing.Short() {
		t.Skip("expert synthesis is slow")
	}
	db := buildFull(t)
	// Trait-bearing variants must select a strategy matching their trait.
	expect := map[string][]string{
		"rocket_bus":  {"fanout", "fanout+"},
		"sodor_pipe5": {"retime"},
	}
	for design, wants := range expect {
		rec := db.Strategies[design]
		if rec == nil {
			t.Fatalf("no record for %s", design)
		}
		ok := false
		for _, w := range wants {
			if rec.Strategy == w {
				ok = true
			}
		}
		if !ok {
			t.Errorf("%s: expert strategy = %s, want one of %v (QoR %+v)", design, rec.Strategy, wants, rec.QoR)
		}
		if len(rec.Plan) == 0 {
			t.Errorf("%s: empty plan", design)
		}
	}
	// Every record must have a quality in [0,1].
	for name, rec := range db.Strategies {
		if rec.Quality < 0 || rec.Quality > 1 {
			t.Errorf("%s: quality %f out of range", name, rec.Quality)
		}
	}
}

func TestRetrieveStrategiesRerank(t *testing.T) {
	if testing.Short() {
		t.Skip("expert synthesis is slow")
	}
	db := buildFull(t)
	// Query with the dynamic_node benchmark: a high-fanout design.
	d := designs.DynamicNode()
	emb, _, err := db.EmbedDesign(d.Source, d.Top)
	if err != nil {
		t.Fatal(err)
	}
	hits := db.RetrieveStrategies(emb, 3, 0.7, 0.3)
	if len(hits) != 3 {
		t.Fatalf("hits = %d", len(hits))
	}
	for i := 1; i < len(hits); i++ {
		if hits[i].Score > hits[i-1].Score {
			t.Error("hits not sorted by reranked score")
		}
	}
	text := RenderStrategies(hits)
	if !strings.Contains(text, "[strategy from design") || !strings.Contains(text, "achieved WNS") {
		t.Errorf("rendering malformed:\n%s", text)
	}
	// With beta=1, quality dominates: top hit must have met timing.
	qHits := db.RetrieveStrategies(emb, 3, 0.0, 1.0)
	if qHits[0].Record.Quality < qHits[len(qHits)-1].Record.Quality {
		t.Error("quality-dominant rerank did not order by quality")
	}
}

// TestBuildParallelMatchesSerial is the determinism check for the build
// fan-out: any worker count must produce an identical database, because
// per-design work is independent and assembly happens in corpus order.
func TestBuildParallelMatchesSerial(t *testing.T) {
	sub := designs.DatabaseDesigns()[:5]
	mk := func(workers int) *Database {
		t.Helper()
		db, err := Build(BuildConfig{
			Seed:        7,
			TrainEpochs: 2,
			Designs:     sub,
			IndexOnly:   []*designs.Design{}, // non-nil: skip the default variants, keep it fast
			Workers:     workers,
		})
		if err != nil {
			t.Fatalf("build (workers=%d): %v", workers, err)
		}
		return db
	}
	serial := mk(1)
	parallel := mk(8)

	if !reflect.DeepEqual(serial.Strategies, parallel.Strategies) {
		t.Error("strategy records differ between serial and parallel builds")
	}
	if !reflect.DeepEqual(serial.modules, parallel.modules) {
		t.Error("module records differ between serial and parallel builds")
	}
	if !reflect.DeepEqual(serial.globalIndex, parallel.globalIndex) {
		t.Error("global embedding index differs between serial and parallel builds")
	}
	if !reflect.DeepEqual(serial.moduleIndex, parallel.moduleIndex) {
		t.Error("module embedding index differs between serial and parallel builds")
	}
}
