// Package synthrag implements SynthRAG (paper §IV-B): the domain-specific
// multimodal retrieval-augmented generation framework. It maintains the
// database of TABLE I's four modalities and their query methods:
//
//   - High-level circuit information — graph embeddings from CircuitMentor,
//     queried by nearest-neighbour search (Eq. 4) with the domain-specific
//     rerank of Eq. 5 (alpha·similarity + beta·characteristics), returning
//     compile and optimization strategies.
//   - Circuit design code — the hierarchical graph in the property-graph
//     database, queried directly with Cypher (module code by name).
//   - Target library — gate cells stored as graph nodes, queried with Cypher.
//   - Tool user manual — text embeddings over the manual corpus with the
//     LLM as reranker.
//
// The strategy database is built by actually synthesizing the corpus
// designs under the full strategy palette and keeping the best script per
// design — the "expert drafts" of the paper's §V setup.
package synthrag

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"

	"repro/internal/circuitmentor"
	"repro/internal/designs"
	"repro/internal/gnn"
	"repro/internal/graphdb"
	"repro/internal/liberty"
	"repro/internal/llm"
	"repro/internal/manual"
	"repro/internal/synth"
	"repro/internal/tensor"
	"repro/internal/textembed"
	"repro/internal/vecindex"
	"repro/internal/workpool"
)

// StrategyPalette is the set of optimization plans the database designs are
// synthesized under when building the expert corpus.
var StrategyPalette = map[string][]string{
	"effort":  {"compile_ultra"},
	"retime":  {"compile_ultra -retime", "optimize_registers"},
	"fanout":  {"set_max_fanout 16 [current_design]", "compile_ultra", "balance_buffers"},
	"fanout+": {"set_max_fanout 16 [current_design]", "compile_ultra -timing_high_effort_script", "balance_buffers"},
	"ungroup": {"ungroup -all -flatten", "compile_ultra -retime"},
	"deep":    {"compile_ultra -timing_high_effort_script"},
	"area":    {"compile_ultra -area_high_effort_script"},
	"generic": {"compile"},
}

// StrategyRecord is one expert entry: the best-performing script found for
// a corpus design, with the QoR it achieved and the design's embedding.
type StrategyRecord struct {
	Design    string
	Category  string
	Traits    []string
	Strategy  string   // palette key
	Plan      []string // command lines
	QoR       synth.QoR
	Quality   float64 // normalized characteristic c_i for Eq. 5
	Embedding []float64
}

// ModuleRecord indexes one corpus module for retrieval.
type ModuleRecord struct {
	Design   string
	Module   string
	Category string
}

// Database is the built SynthRAG store.
type Database struct {
	Mentor   *circuitmentor.Mentor
	Graph    *graphdb.DB
	Manual   *manual.Corpus
	Embedder *textembed.Embedder

	Strategies  map[string]*StrategyRecord // design name -> record
	globalIndex *vecindex.Auto             // design embeddings
	moduleIndex *vecindex.Auto             // module embeddings
	modules     map[string]ModuleRecord    // "design/module" -> record
	manualIndex *vecindex.Auto             // manual section embeddings
	manualByID  map[string]int             // vec id -> doc index
	lib         *liberty.Library
	cache       *dbCache  // optional serving-path memoization (EnableCache)
	batch       *batchers // optional embedding admission queue (EnableBatching)
}

// BuildConfig controls database construction.
type BuildConfig struct {
	Seed        int64
	TrainEpochs int  // metric-learning epochs (0 = skip training, ablation)
	SkipSynth   bool // skip expert-script synthesis (retrieval-only tests)
	Lib         *liberty.Library
	Designs     []*designs.Design // default: DatabaseDesigns + DatabaseVariants
	// IndexOnly designs join metric training and the module index but get
	// no expert-script synthesis (default: designs.TrainingVariants).
	IndexOnly []*designs.Design
	// Workers bounds the per-design fan-out of the build's parallel phases
	// (graph construction, embedding, expert-draft synthesis). 0 means
	// GOMAXPROCS, 1 forces the serial path. The built database is identical
	// for any worker count: per-design work is independent and results are
	// assembled in corpus order.
	Workers int
	// IndexThreshold is the corpus size at which the vector indexes switch
	// from exact Flat scans to sublinear HNSW search (0 selects
	// vecindex.DefaultAutoThreshold). The corpora shipped in this repo stay
	// below the default, so tests keep exact retrieval; a production corpus
	// 100-1000x larger crosses it and retrieval stays sublinear.
	IndexThreshold int
}

// Build constructs the database: trains CircuitMentor with metric learning
// on the corpus, synthesizes every corpus design under the strategy palette
// to find its expert script, and indexes embeddings, graphs, the target
// library, and the manual.
func Build(cfg BuildConfig) (*Database, error) {
	if cfg.Lib == nil {
		cfg.Lib = liberty.Nangate45()
	}
	corpus := cfg.Designs
	if corpus == nil {
		corpus = append(designs.DatabaseDesigns(), designs.DatabaseVariants()...)
	}
	indexOnly := cfg.IndexOnly
	if indexOnly == nil {
		indexOnly = designs.TrainingVariants()
	}
	isIndexOnly := make(map[string]bool, len(indexOnly))
	for _, d := range indexOnly {
		isIndexOnly[d.Name] = true
	}
	corpus = append(append([]*designs.Design(nil), corpus...), indexOnly...)
	db := &Database{
		Mentor:     circuitmentor.New(cfg.Seed),
		Graph:      graphdb.New(),
		Manual:     manual.Build(),
		Embedder:   textembed.New(512),
		Strategies: make(map[string]*StrategyRecord),
		modules:    make(map[string]ModuleRecord),
		manualByID: make(map[string]int),
		lib:        cfg.Lib,
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Parse corpus designs into graphs, fanned out per design; graphs land
	// at their corpus index, so downstream order is worker-count-independent.
	type entry struct {
		d  *designs.Design
		dg *circuitmentor.DesignGraph
	}
	entries := make([]entry, len(corpus))
	buildErrs := make([]error, len(corpus))
	workpool.Run(workers, len(corpus), func(i int) {
		d := corpus[i]
		dg, err := circuitmentor.BuildGraph(d.Source, d.Top)
		if err != nil {
			buildErrs[i] = fmt.Errorf("%s: %v", d.Name, err)
			return
		}
		entries[i] = entry{d, dg}
	})
	for _, err := range buildErrs {
		if err != nil {
			return nil, err
		}
	}
	samples := make([]circuitmentor.TrainSample, len(entries))
	for ei, e := range entries {
		labels := make([]string, len(e.dg.Modules))
		for i, mi := range e.dg.Modules {
			labels[i] = designs.ModuleCategory(mi.Name)
			if labels[i] == "" {
				labels[i] = e.d.Category
			}
		}
		samples[ei] = circuitmentor.TrainSample{DG: e.dg, Labels: labels}
	}

	// Metric learning (Fig. 4): same-category modules cluster.
	if cfg.TrainEpochs > 0 {
		tc := gnn.DefaultTrainConfig()
		tc.LR = 0.02
		if _, err := db.Mentor.Train(samples, cfg.TrainEpochs, tc); err != nil {
			return nil, err
		}
	}

	// Embed and synthesize expert strategies per design in parallel — the
	// trained model is only read from here on, and each palette run uses its
	// own synthesis session. Indexes and the graph store are then assembled
	// serially in corpus order, keeping the database bit-identical to a
	// serial build.
	type built struct {
		global  []float64
		modEmbs [][]float64
		best    paletteResult
		err     error
	}
	results := make([]built, len(entries))
	workpool.Run(workers, len(entries), func(i int) {
		e := entries[i]
		r := &results[i]
		r.global = db.Mentor.EmbedGlobal(e.dg)
		r.modEmbs = db.Mentor.EmbedModules(e.dg)
		if !cfg.SkipSynth && !isIndexOnly[e.d.Name] {
			r.best, r.err = bestStrategy(e.d, cfg.Lib)
		}
	})

	dim := db.Mentor.Model.Config().OutDim
	hcfg := vecindex.HNSWConfig{Seed: cfg.Seed}
	db.globalIndex = vecindex.NewAuto(dim, vecindex.Cosine, cfg.IndexThreshold, hcfg)
	db.moduleIndex = vecindex.NewAuto(dim, vecindex.Cosine, cfg.IndexThreshold, hcfg)
	for ei, e := range entries {
		r := results[ei]
		circuitmentor.LoadIntoDB(db.Graph, e.dg, map[string]any{
			"name":     e.d.Name,
			"category": e.d.Category,
			"period":   e.d.Period,
		})
		if err := db.globalIndex.Add(e.d.Name, r.global); err != nil {
			return nil, err
		}
		for i, emb := range r.modEmbs {
			id := e.d.Name + "/" + e.dg.Modules[i].Name
			if err := db.moduleIndex.Add(id, emb); err != nil {
				return nil, err
			}
			db.modules[id] = ModuleRecord{
				Design:   e.d.Name,
				Module:   e.dg.Modules[i].Name,
				Category: samples[ei].Labels[i],
			}
		}

		if isIndexOnly[e.d.Name] {
			continue // modules indexed; no expert strategy entry
		}
		rec := &StrategyRecord{
			Design:    e.d.Name,
			Category:  e.d.Category,
			Traits:    e.d.Traits,
			Embedding: r.global,
		}
		if !cfg.SkipSynth {
			if r.err != nil {
				return nil, fmt.Errorf("%s: expert synthesis: %v", e.d.Name, r.err)
			}
			rec.Strategy = r.best.name
			rec.Plan = StrategyPalette[r.best.name]
			rec.QoR = r.best.qor
			rec.Quality = quality(r.best.qor)
		}
		db.Strategies[e.d.Name] = rec
	}

	// Target library into the graph database.
	for _, c := range cfg.Lib.Cells() {
		db.Graph.CreateNode([]string{"Cell"}, map[string]any{
			"name": c.Name, "function": string(c.Kind), "drive": int64(c.Drive),
			"area": c.Area, "leakage": c.Leakage, "input_cap": c.InputCap,
		})
	}

	// Manual index.
	texts := db.Manual.Texts()
	db.Embedder.Fit(texts)
	db.manualIndex = vecindex.NewAuto(db.Embedder.Dim, vecindex.Cosine, cfg.IndexThreshold, hcfg)
	for i, d := range db.Manual.Docs {
		if err := db.manualIndex.Add(d.ID, db.Embedder.Embed(texts[i])); err != nil {
			return nil, err
		}
		db.manualByID[d.ID] = i
	}
	return db, nil
}

type paletteResult struct {
	name string
	qor  synth.QoR
}

// bestStrategy synthesizes a design under every palette plan and returns
// the best by timing, then area — the expert-draft selection.
func bestStrategy(d *designs.Design, lib *liberty.Library) (paletteResult, error) {
	var best paletteResult
	first := true
	names := make([]string, 0, len(StrategyPalette))
	for n := range StrategyPalette {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		sess := synth.NewSession(lib)
		sess.AddSource(d.FileName, d.Source)
		script := llm.SpliceScript(d.BaselineScript(), StrategyPalette[name])
		res, err := sess.Run(script)
		if err != nil {
			continue // a palette entry can be inapplicable; skip it
		}
		q := *res.QoR
		if first || betterQoR(q, best.qor) {
			best = paletteResult{name, q}
			first = false
		}
	}
	if first {
		return best, fmt.Errorf("no palette strategy ran successfully")
	}
	return best, nil
}

// betterQoR orders by WNS, then CPS, then smaller area.
func betterQoR(a, b synth.QoR) bool {
	if a.WNS != b.WNS {
		return a.WNS > b.WNS
	}
	if a.CPS != b.CPS {
		return a.CPS > b.CPS
	}
	return a.Area < b.Area
}

// quality is the characteristic c_i of Eq. 5: 1.0 for met timing with
// slack, decreasing with violation depth relative to the period.
func quality(q synth.QoR) float64 {
	if q.Period <= 0 {
		return 0
	}
	v := 1 + q.WNS/q.Period
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// StrategyHit is one reranked retrieval result.
type StrategyHit struct {
	Record *StrategyRecord
	Sim    float64 // cosine similarity (Eq. 4)
	Score  float64 // reranked score (Eq. 5)
}

// RetrieveStrategies performs graph-embedding retrieval with the
// domain-specific rerank: Score = alpha*sim + beta*quality.
func (db *Database) RetrieveStrategies(query []float64, k int, alpha, beta float64) []StrategyHit {
	return db.RetrieveStrategiesFor(query, nil, k, alpha, beta, 0)
}

// RetrieveStrategiesForContext is RetrieveStrategiesFor with cooperative
// cancellation: the context is checked before the nearest-neighbour search
// and before the rerank, so a cancelled retrieval returns promptly.
func (db *Database) RetrieveStrategiesForContext(ctx context.Context, query []float64, queryTraits []string, k int, alpha, beta, gamma float64) ([]StrategyHit, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var key string
	if db.cache != nil {
		key = retrieveKey(query, queryTraits, k, alpha, beta, gamma)
		if hits, ok := db.cachedRetrieve(key); ok {
			return hits, nil
		}
	}
	raw := db.globalIndex.Search(query, max(k*4, k))
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	hits := make([]StrategyHit, 0, len(raw))
	for _, h := range raw {
		rec := db.Strategies[h.ID]
		if rec == nil {
			continue
		}
		hits = append(hits, StrategyHit{
			Record: rec,
			Sim:    h.Score,
			Score:  alpha*h.Score + beta*rec.Quality + gamma*traitOverlap(queryTraits, rec.Traits),
		})
	}
	sort.SliceStable(hits, func(i, j int) bool { return hits[i].Score > hits[j].Score })
	if k < len(hits) {
		hits = hits[:k]
	}
	if db.cache != nil {
		db.storeRetrieve(key, hits)
	}
	return hits, nil
}

// RetrieveStrategiesFor adds the query design's structural traits to the
// Eq. 5 rerank: Score = alpha*sim + beta*quality + gamma*traitOverlap.
// Trait compatibility is the "additional characteristics" the paper's
// domain-specific reranking function uses to reorder embeddings whose raw
// similarities barely differ (an ALU and a systolic array are both
// arithmetic, but need different strategies).
func (db *Database) RetrieveStrategiesFor(query []float64, queryTraits []string, k int, alpha, beta, gamma float64) []StrategyHit {
	hits, _ := db.RetrieveStrategiesForContext(context.Background(), query, queryTraits, k, alpha, beta, gamma)
	return hits
}

// traitOverlap is the Jaccard overlap of two trait sets.
func traitOverlap(a, b []string) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	set := make(map[string]bool, len(a))
	for _, t := range a {
		set[t] = true
	}
	inter := 0
	union := len(a)
	for _, t := range b {
		if set[t] {
			inter++
		} else {
			union++
		}
	}
	return float64(inter) / float64(union)
}

// ModuleHit is one module retrieval result.
type ModuleHit struct {
	Record ModuleRecord
	Sim    float64
}

// RetrieveModules returns the top-k most similar corpus modules for a query
// embedding — the retrieval evaluated in Fig. 5.
func (db *Database) RetrieveModules(query []float64, k int) []ModuleHit {
	raw := db.moduleIndex.Search(query, k)
	out := make([]ModuleHit, 0, len(raw))
	for _, h := range raw {
		out = append(out, ModuleHit{Record: db.modules[h.ID], Sim: h.Score})
	}
	return out
}

// ModuleCode fetches a module's source from the graph database with the
// direct Cypher query of TABLE I.
func (db *Database) ModuleCode(design, module string) (string, error) {
	v, err := db.Graph.QueryValue(
		`MATCH (m:Module {name: $mod, design: $design}) RETURN m.code`,
		map[string]any{"mod": module, "design": design})
	if err != nil {
		return "", fmt.Errorf("module %s/%s not in database: %v", design, module, err)
	}
	code, _ := v.(string)
	if code == "" {
		return "", fmt.Errorf("module %s/%s not in database", design, module)
	}
	return code, nil
}

// CellInfo fetches a target-library cell's record via Cypher.
func (db *Database) CellInfo(name string) (map[string]any, error) {
	res, err := db.Graph.Query(
		`MATCH (c:Cell {name: $name}) RETURN c.function, c.drive, c.area, c.leakage, c.input_cap`,
		map[string]any{"name": name})
	if err != nil {
		return nil, err
	}
	if len(res.Rows) != 1 {
		return nil, fmt.Errorf("cell %s not in database", name)
	}
	out := make(map[string]any, len(res.Columns))
	for i, col := range res.Columns {
		out[strings.TrimPrefix(col, "c.")] = res.Rows[0][i]
	}
	return out, nil
}

// ManualDoc is one reranked manual hit.
type ManualDoc struct {
	Doc   manual.Doc
	Score float64
}

// SearchManual retrieves manual sections by text embedding and reranks the
// candidates with the LLM (the GPT-4o-as-reranker step). A nil model skips
// reranking.
func (db *Database) SearchManual(query string, k int, reranker *llm.Model) []ManualDoc {
	docs, _ := db.SearchManualContext(context.Background(), query, k, reranker)
	return docs
}

// SearchManualContext is SearchManual with cooperative cancellation: the
// context is checked before the embedding search and before the rerank.
func (db *Database) SearchManualContext(ctx context.Context, query string, k int, reranker *llm.Model) ([]ManualDoc, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	qvec, err := db.embedText(ctx, query)
	if err != nil {
		return nil, err
	}
	raw := db.manualIndex.Search(qvec, max(k*3, k))
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]ManualDoc, 0, len(raw))
	for _, h := range raw {
		doc := db.Manual.Docs[db.manualByID[h.ID]]
		score := h.Score
		if reranker != nil {
			score = 0.5*h.Score + 0.5*reranker.ScoreRelevance(query, doc.Title+"\n"+doc.Text)
		}
		out = append(out, ManualDoc{Doc: doc, Score: score})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	if k < len(out) {
		out = out[:k]
	}
	return out, nil
}

// RenderStrategies formats retrieval hits as the "Retrieved strategies"
// prompt section.
func RenderStrategies(hits []StrategyHit) string {
	var b strings.Builder
	for _, h := range hits {
		fmt.Fprintf(&b, "[strategy from design %s (%s), similarity %.2f, traits %s]\n",
			h.Record.Design, h.Record.Category, h.Sim, strings.Join(h.Record.Traits, ","))
		for _, l := range h.Record.Plan {
			b.WriteString(l)
			b.WriteString("\n")
		}
		fmt.Fprintf(&b, "-- achieved WNS %.3f CPS %.3f area %.1f\n\n",
			h.Record.QoR.WNS, h.Record.QoR.CPS, h.Record.QoR.Area)
	}
	return b.String()
}

// EmbedDesign analyzes query RTL into its global embedding, for callers
// that have only source text.
func (db *Database) EmbedDesign(src, top string) ([]float64, *circuitmentor.DesignGraph, error) {
	return db.EmbedDesignContext(context.Background(), src, top)
}

// EmbedDesignContext is EmbedDesign with cooperative cancellation: the
// context is checked between the graph-build and GNN-embed phases.
func (db *Database) EmbedDesignContext(ctx context.Context, src, top string) ([]float64, *circuitmentor.DesignGraph, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	var key string
	if db.cache != nil {
		key = embedKey(src, top)
		if emb, dg, ok := db.cachedEmbed(key); ok {
			return emb, dg, nil
		}
	}
	dg, err := circuitmentor.BuildGraph(src, top)
	if err != nil {
		return nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	emb, err := db.embedGlobal(ctx, dg)
	if err != nil {
		return nil, nil, err
	}
	if db.cache != nil {
		db.storeEmbed(key, emb, dg)
	}
	return emb, dg, nil
}

// EmbedModulesOf returns per-module embeddings of query RTL.
func (db *Database) EmbedModulesOf(dg *circuitmentor.DesignGraph) [][]float64 {
	return db.Mentor.EmbedModules(dg)
}

var _ = tensor.Cosine // keep import for doc references

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
