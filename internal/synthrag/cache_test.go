package synthrag

import "testing"

// TestEmbedKeyDistinguishesSources: keys separate sources that share a
// prefix or differ only in the top module. Length framing makes the hash
// stream unambiguous, so none of these may alias.
func TestEmbedKeyDistinguishesSources(t *testing.T) {
	pairs := [][2][2]string{
		{{"module a; endmodule", "a"}, {"module a; endmodule ", "a"}},
		{{"module a; endmodule", "a"}, {"module a; endmodule", "b"}},
		{{"abc", "t"}, {"abcabc", "t"}},
		{{"", "t"}, {"\x00", "t"}},
	}
	for _, p := range pairs {
		if embedKey(p[0][0], p[0][1]) == embedKey(p[1][0], p[1][1]) {
			t.Errorf("embedKey(%q,%q) == embedKey(%q,%q)", p[0][0], p[0][1], p[1][0], p[1][1])
		}
	}
	if embedKey("module a; endmodule", "a") != embedKey("module a; endmodule", "a") {
		t.Error("identical inputs must produce identical keys")
	}
}

// TestRetrieveKeyFramesBoundaries: distinct requests sharing a byte prefix
// must produce distinct keys. The historical hazards: a trait containing NUL
// aliasing a split trait list, and a query float aliasing 8 bytes of trait
// text across the query/traits boundary.
func TestRetrieveKeyFramesBoundaries(t *testing.T) {
	type req struct {
		query  []float64
		traits []string
	}
	pairs := [][2]req{
		// One trait with an embedded NUL vs two traits.
		{{nil, []string{"a\x00b"}}, {nil, []string{"a", "b"}}},
		// Query/trait boundary: a float's 8 bytes vs the same bytes as trait text.
		{{[]float64{0}, []string{"x"}}, {nil, []string{"\x00\x00\x00\x00\x00\x00\x00\x00x"}}},
		{{[]float64{1, 2}, nil}, {[]float64{1}, []string{string(make([]byte, 8))}}},
		// Empty trailing trait vs no trailing trait.
		{{nil, []string{"a", ""}}, {nil, []string{"a"}}},
	}
	for _, p := range pairs {
		a := retrieveKey(p[0].query, p[0].traits, 5, 0.7, 0.3, 0.25)
		b := retrieveKey(p[1].query, p[1].traits, 5, 0.7, 0.3, 0.25)
		if a == b {
			t.Errorf("retrieveKey(%v,%q) == retrieveKey(%v,%q)", p[0].query, p[0].traits, p[1].query, p[1].traits)
		}
	}
	if retrieveKey([]float64{1}, []string{"t"}, 5, 0.7, 0.3, 0.25) !=
		retrieveKey([]float64{1}, []string{"t"}, 5, 0.7, 0.3, 0.25) {
		t.Error("identical requests must produce identical keys")
	}
	if retrieveKey([]float64{1}, []string{"t"}, 5, 0.7, 0.3, 0.25) ==
		retrieveKey([]float64{1}, []string{"t"}, 6, 0.7, 0.3, 0.25) {
		t.Error("k must participate in the key")
	}
}
