package synthrag

import (
	"encoding/binary"
	"hash/fnv"
	"math"

	"repro/internal/circuitmentor"
	"repro/internal/lru"
)

// Concurrency: a Database is mutable only during Build. Once Build returns,
// every serving-path method (EmbedDesign*, RetrieveStrategies*,
// SearchManual*, ModuleCode, CellInfo, RetrieveModules) only reads — the
// graph database executes MATCH queries over built indexes, the GNN forward
// pass allocates fresh state per call, and the vector indexes are scan-only
// — so one Database is safe for any number of concurrent readers. The
// optional cache enabled below is internally locked.

type embedEntry struct {
	emb []float64
	dg  *circuitmentor.DesignGraph
}

// dbCache memoizes the two expensive idempotent retrieval stages: design
// graph embedding (parse + GNN forward) and reranked strategy retrieval.
type dbCache struct {
	embed    *lru.Cache[string, embedEntry]
	retrieve *lru.Cache[string, []StrategyHit]
}

// EnableCache equips the database with bounded LRU caches for design
// embeddings and strategy-retrieval results. Intended for long-lived
// serving processes where the same designs recur across requests; the
// one-shot experiment harness leaves it off. Call before sharing the
// database across goroutines (the caches themselves are concurrency-safe,
// but enabling mid-flight races with readers).
func (db *Database) EnableCache(embedCap, retrieveCap int) {
	db.cache = &dbCache{
		embed:    lru.New[string, embedEntry](embedCap),
		retrieve: lru.New[string, []StrategyHit](retrieveCap),
	}
}

// CacheStats reports the cache hit/miss counters (zero when the cache is
// not enabled).
type CacheStats struct {
	EmbedHits, EmbedMisses       int64
	RetrieveHits, RetrieveMisses int64
}

// CacheStats returns the current cache counters.
func (db *Database) CacheStats() CacheStats {
	if db.cache == nil {
		return CacheStats{}
	}
	return CacheStats{
		EmbedHits:      db.cache.embed.Hits(),
		EmbedMisses:    db.cache.embed.Misses(),
		RetrieveHits:   db.cache.retrieve.Hits(),
		RetrieveMisses: db.cache.retrieve.Misses(),
	}
}

// embedKey identifies a design source for the embedding cache. The source
// length feeds the hash stream alongside the bytes so two sources never
// collapse to one key through hash-input ambiguity — a wrong embedding served
// from the cache would silently corrupt retrieval.
func embedKey(src, top string) string {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(len(src)))
	h.Write(b[:])
	h.Write([]byte(src))
	binary.LittleEndian.PutUint64(b[:], h.Sum64())
	return top + "\x00" + string(b[:])
}

// retrieveKey identifies one retrieval request: the query embedding bits,
// the trait set, and the rerank parameters. Element and trait counts (and
// each trait's length) are framed into the stream, so the query/trait
// boundary and trait boundaries are unambiguous: a query float can never be
// re-read as trait bytes, and traits containing NUL cannot alias a longer
// trait list.
func retrieveKey(query []float64, traits []string, k int, alpha, beta, gamma float64) string {
	h := fnv.New64a()
	var b [8]byte
	putU := func(u uint64) {
		binary.LittleEndian.PutUint64(b[:], u)
		h.Write(b[:])
	}
	put := func(f float64) { putU(math.Float64bits(f)) }
	putU(uint64(len(query)))
	for _, q := range query {
		put(q)
	}
	putU(uint64(len(traits)))
	for _, t := range traits {
		putU(uint64(len(t)))
		h.Write([]byte(t))
	}
	putU(uint64(k))
	put(alpha)
	put(beta)
	put(gamma)
	binary.LittleEndian.PutUint64(b[:], h.Sum64())
	return string(b[:])
}

// cachedEmbed consults the embedding cache; ok is false when caching is off
// or the key misses.
func (db *Database) cachedEmbed(key string) ([]float64, *circuitmentor.DesignGraph, bool) {
	if db.cache == nil {
		return nil, nil, false
	}
	e, ok := db.cache.embed.Get(key)
	if !ok {
		return nil, nil, false
	}
	// The embedding is copied so a caller mutating its slice cannot corrupt
	// the cache; the graph is shared read-only.
	return append([]float64(nil), e.emb...), e.dg, true
}

func (db *Database) storeEmbed(key string, emb []float64, dg *circuitmentor.DesignGraph) {
	if db.cache == nil {
		return
	}
	db.cache.embed.Add(key, embedEntry{emb: append([]float64(nil), emb...), dg: dg})
}

func (db *Database) cachedRetrieve(key string) ([]StrategyHit, bool) {
	if db.cache == nil {
		return nil, false
	}
	hits, ok := db.cache.retrieve.Get(key)
	if !ok {
		return nil, false
	}
	return append([]StrategyHit(nil), hits...), true
}

func (db *Database) storeRetrieve(key string, hits []StrategyHit) {
	if db.cache == nil {
		return
	}
	db.cache.retrieve.Add(key, append([]StrategyHit(nil), hits...))
}
