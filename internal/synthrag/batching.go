package synthrag

import (
	"context"
	"time"

	"repro/internal/batch"
	"repro/internal/circuitmentor"
	"repro/internal/gnn"
)

// batchers is the optional continuous-batching layer over the two embedding
// models. When enabled, concurrent serving-path embedding requests that
// arrive within the admission window are coalesced: GNN requests fuse into
// one disjoint-union forward pass (stacked tensor.MatMul calls), text
// requests share one queue handoff. Results are byte-identical to the
// serial path — see gnn.EmbedBatch for the argument.
type batchers struct {
	global *batch.Batcher[*gnn.Graph, []float64]
	text   *batch.Batcher[string, []float64]
}

// EnableBatching installs the embedding admission queue: serving-path calls
// to EmbedDesignContext and SearchManualContext coalesce with concurrent
// callers for up to window (batch.DefaultWindow if <= 0), flushing early at
// maxBatch requests (batch.DefaultMaxBatch if <= 0). Call once after Build,
// before serving; it is not safe to race with in-flight retrievals. Build
// itself never batches — its parallelism is already structured.
func (db *Database) EnableBatching(window time.Duration, maxBatch int) {
	if window <= 0 {
		window = batch.DefaultWindow
	}
	if maxBatch <= 0 {
		maxBatch = batch.DefaultMaxBatch
	}
	db.batch = &batchers{
		global: batch.New(window, maxBatch, func(gs []*gnn.Graph) ([][]float64, error) {
			return db.Mentor.Model.EmbedGlobalBatch(gs), nil
		}),
		text: batch.New(window, maxBatch, func(texts []string) ([][]float64, error) {
			return db.Embedder.EmbedBatch(texts), nil
		}),
	}
}

// BatchingEnabled reports whether the admission queue is installed.
func (db *Database) BatchingEnabled() bool { return db.batch != nil }

// SetBatchObserver registers fn to be called at every batcher flush (both
// the GNN and the text queue) with the flushed batch size and the oldest
// request's queue wait. The daemon uses it to feed the chatlsd_batch_size
// and chatlsd_batch_wait_ns histograms. No-op before EnableBatching.
func (db *Database) SetBatchObserver(fn func(size int, wait time.Duration)) {
	if db.batch == nil {
		return
	}
	db.batch.global.SetObserver(fn)
	db.batch.text.SetObserver(fn)
}

// BatchStats returns cumulative flush/item counts summed over both
// embedding queues (zero before EnableBatching).
func (db *Database) BatchStats() batch.Stats {
	if db.batch == nil {
		return batch.Stats{}
	}
	g, t := db.batch.global.Stats(), db.batch.text.Stats()
	return batch.Stats{Flushes: g.Flushes + t.Flushes, Items: g.Items + t.Items}
}

// SetHNSWEf forwards the search beam width to every index that has built an
// HNSW graph. Call before serving (it is not synchronized with searches).
func (db *Database) SetHNSWEf(ef int) {
	db.globalIndex.SetEfSearch(ef)
	db.moduleIndex.SetEfSearch(ef)
	db.manualIndex.SetEfSearch(ef)
}

// IndexBackends reports which backend ("flat" or "hnsw") each retrieval
// index is serving from, keyed by index name.
func (db *Database) IndexBackends() map[string]string {
	return map[string]string{
		"global": db.globalIndex.Backend(),
		"module": db.moduleIndex.Backend(),
		"manual": db.manualIndex.Backend(),
	}
}

// embedGlobal computes a design-level embedding, through the admission
// queue when batching is enabled.
func (db *Database) embedGlobal(ctx context.Context, dg *circuitmentor.DesignGraph) ([]float64, error) {
	if db.batch == nil {
		return db.Mentor.EmbedGlobal(dg), nil
	}
	return db.batch.global.DoContext(ctx, dg.G)
}

// embedText embeds query text, through the admission queue when batching is
// enabled.
func (db *Database) embedText(ctx context.Context, text string) ([]float64, error) {
	if db.batch == nil {
		return db.Embedder.Embed(text), nil
	}
	return db.batch.text.DoContext(ctx, text)
}
