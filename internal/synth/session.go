package synth

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/power"
	"repro/internal/resilience"
	"repro/internal/verilog"
)

// DefaultMaxCommands bounds script execution when Session.MaxCommands is
// zero: far above any legitimate synthesis script (~10 commands), low
// enough that a hostile or hallucinated script cannot run unbounded.
const DefaultMaxCommands = 512

// Session executes synthesis scripts against an in-memory source filesystem,
// standing in for dc_shell. Sources maps file names (as used by
// read_verilog) to Verilog text.
type Session struct {
	Lib     *liberty.Library
	Sources map[string]string
	// ParamOverrides apply at elaboration (top-level parameters).
	ParamOverrides map[string]int64
	// MaxCommands caps the commands one Run may execute (0 = the
	// DefaultMaxCommands budget, negative = unlimited). Exceeding it aborts
	// the run with resilience.ErrBudgetExceeded.
	MaxCommands int
	// Checkpoints, when non-nil, caches post-link elaboration state: scripts
	// starting with the canonical read_verilog/current_design/link prefix
	// restore from a prior identical elaboration (a clone, never shared
	// mutable state) instead of re-parsing and re-elaborating. Results are
	// bit-identical either way; only wall-clock changes. Sessions may share
	// one store concurrently.
	Checkpoints *CheckpointStore
}

// NewSession creates a session over the given library.
func NewSession(lib *liberty.Library) *Session {
	return &Session{Lib: lib, Sources: make(map[string]string)}
}

// AddSource registers a Verilog file.
func (s *Session) AddSource(name, src string) { s.Sources[name] = src }

// Result is the outcome of running a script.
type Result struct {
	Design   *Design
	QoR      *QoR
	Reports  []string // output of report_* commands in order
	Netlists []string // output of write commands (structural Verilog)
	Log      []string // transcript lines
}

// Run parses and executes a script. Any command error aborts the run, the
// way a dc_shell batch run aborts on an invalid command — this is what makes
// hallucinated commands costly for the baseline pipelines.
func (s *Session) Run(script string) (*Result, error) {
	return s.RunContext(context.Background(), script)
}

// RunContext is Run with cooperative cancellation and a command budget: the
// context is checked before every command, and execution aborts with
// resilience.ErrBudgetExceeded once MaxCommands commands have run.
func (s *Session) RunContext(ctx context.Context, script string) (*Result, error) {
	cmds, err := ParseScript(script)
	if err != nil {
		return nil, err
	}
	budget := s.MaxCommands
	if budget == 0 {
		budget = DefaultMaxCommands
	}
	res := &Result{}
	st := &execState{sess: s, res: res}

	// Elaboration checkpointing: when the script opens with the canonical
	// link prefix and a snapshot of that exact elaboration exists, restore a
	// clone of it and resume after the link command. On a miss the prefix
	// executes normally and its state is captured right after link. The
	// command budget counts skipped prefix commands as executed, so budget
	// overruns surface at the same command either way.
	start := 0
	captureAt, captureKey := -1, ""
	var captureFiles []string
	if s.Checkpoints != nil {
		if end, files, top, ok := linkPrefix(cmds); ok && (budget <= 0 || end < budget) {
			if key, ok := s.checkpointKey(files, top); ok {
				if cp := s.Checkpoints.get(key, s.Lib); cp != nil {
					st.restore(cp)
					start = end + 1
				} else {
					captureAt, captureKey, captureFiles = end, key, files
				}
			}
		}
	}

	for i := start; i < len(cmds); i++ {
		c := cmds[i]
		if err := ctx.Err(); err != nil {
			return nil, resilience.ContextError(resilience.CompSynth, err)
		}
		if budget > 0 && i >= budget {
			return nil, fmt.Errorf("line %d: %s: %w (budget %d commands)",
				c.Line, c.Name, resilience.ErrBudgetExceeded, budget)
		}
		if err := st.exec(c); err != nil {
			return nil, fmt.Errorf("line %d: %s: %v", c.Line, c.Name, err)
		}
		if i == captureAt {
			s.Checkpoints.put(captureKey, st.snapshot(captureFiles))
		}
	}
	if st.design != nil && st.design.Cons.Period > 0 {
		q, err := st.design.QoR()
		if err != nil {
			return nil, err
		}
		res.QoR = &q
		res.Design = st.design
	}
	return res, nil
}

type execState struct {
	sess    *Session
	res     *Result
	file    *verilog.SourceFile
	top     string
	design  *Design
	wlName  string
	didComp bool
}

func (st *execState) logf(format string, args ...any) {
	st.res.Log = append(st.res.Log, fmt.Sprintf(format, args...))
}

// snapshot captures the session state right after the link command executed:
// a pristine clone of the linked netlist, the parsed sources, the resolved
// top, the transcript lines the prefix wrote, and the source texts in read
// order (so the snapshot can be serialized for the remote tier). The clone
// decouples the snapshot from every later mutation of the live design.
func (st *execState) snapshot(files []string) *checkpoint {
	srcs := make([]srcText, 0, len(files))
	for _, f := range files {
		srcs = append(srcs, srcText{Name: f, Text: st.sess.Sources[f]})
	}
	return &checkpoint{
		nl:   st.design.NL.Clone(),
		file: st.file,
		top:  st.top,
		log:  append([]string(nil), st.res.Log...),
		srcs: srcs,
	}
}

// restore rebuilds the post-link session state from a snapshot, exactly as
// executing the prefix would have: the design is a clone of the snapshot's
// netlist (IDs, levelization inputs, and edit generations preserved, so
// downstream incremental timing behaves identically), the module list is a
// fresh slice header (modules themselves are immutable and shared), the
// wireload is the library default the link step would have picked, and the
// prefix's transcript lines are replayed.
func (st *execState) restore(cp *checkpoint) {
	st.file = &verilog.SourceFile{Modules: append([]*verilog.Module(nil), cp.file.Modules...)}
	st.top = cp.top
	st.design = &Design{NL: cp.nl.Clone(), WL: st.sess.Lib.WireLoad(st.wlName)}
	st.res.Log = append(st.res.Log, cp.log...)
}

func (st *execState) needDesign() (*Design, error) {
	if st.design != nil {
		return st.design, nil
	}
	if st.file == nil {
		return nil, fmt.Errorf("no design read (read_verilog required)")
	}
	if st.top == "" {
		if len(st.file.Modules) == 0 {
			return nil, fmt.Errorf("no modules in read sources")
		}
		st.top = st.file.Modules[len(st.file.Modules)-1].Name
	}
	nl, err := netlist.Elaborate(st.file, st.top, st.sess.ParamOverrides, st.sess.Lib)
	if err != nil {
		return nil, fmt.Errorf("link: %v", err)
	}
	wl := st.sess.Lib.WireLoad(st.wlName)
	st.design = &Design{NL: nl, WL: wl}
	st.logf("linked design %s: %d cells, %d registers", st.top, len(nl.Cells), nl.SeqCount())
	return st.design, nil
}

func (st *execState) exec(c Cmd) error {
	switch c.Name {
	case "read_verilog":
		merged := &verilog.SourceFile{}
		if st.file != nil {
			merged.Modules = st.file.Modules
		}
		for _, fname := range c.Args {
			src, ok := st.sess.Sources[fname]
			if !ok {
				return fmt.Errorf("file %q not found", fname)
			}
			f, err := verilog.Parse(src)
			if err != nil {
				return err
			}
			merged.Modules = append(merged.Modules, f.Modules...)
		}
		st.file = merged
		st.logf("read %d file(s), %d module(s) total", len(c.Args), len(merged.Modules))

	case "current_design":
		if st.file == nil {
			return fmt.Errorf("no design read (read_verilog required)")
		}
		if st.file.FindModule(c.Args[0]) == nil {
			return fmt.Errorf("module %q not found in read sources", c.Args[0])
		}
		st.top = c.Args[0]

	case "link":
		_, err := st.needDesign()
		return err

	case "set_wire_load_model":
		name, ok := c.Opts["-name"]
		if !ok {
			if len(c.Args) == 1 {
				name = c.Args[0]
			} else {
				return fmt.Errorf("missing -name option")
			}
		}
		if _, exists := st.sess.Lib.WireLoads[name]; !exists {
			return fmt.Errorf("wireload model %q not in library", name)
		}
		st.wlName = name
		if st.design != nil {
			st.design.WL = st.sess.Lib.WireLoad(name)
		}

	case "create_clock":
		p, ok := c.Opts["-period"]
		if !ok {
			return fmt.Errorf("missing -period option")
		}
		period, err := strconv.ParseFloat(p, 64)
		if err != nil || period <= 0 {
			return fmt.Errorf("invalid period %q", p)
		}
		d, err := st.needDesign()
		if err != nil {
			return err
		}
		d.Cons.Period = period
		if len(c.Args) == 1 {
			d.ClockPort = c.Args[0]
		}

	case "set_input_delay", "set_output_delay":
		v, err := strconv.ParseFloat(c.Args[0], 64)
		if err != nil {
			return fmt.Errorf("invalid delay %q", c.Args[0])
		}
		d, err := st.needDesign()
		if err != nil {
			return err
		}
		if c.Name == "set_input_delay" {
			d.Cons.InputDelay = v
		} else {
			d.Cons.OutputDelay = v
		}

	case "set_max_fanout":
		n, err := strconv.Atoi(c.Args[0])
		if err != nil || n < 2 {
			return fmt.Errorf("invalid fanout limit %q", c.Args[0])
		}
		d, err := st.needDesign()
		if err != nil {
			return err
		}
		d.MaxFanout = n

	case "set_max_area":
		a, err := strconv.ParseFloat(c.Args[0], 64)
		if err != nil || a < 0 {
			return fmt.Errorf("invalid area %q", c.Args[0])
		}
		d, err := st.needDesign()
		if err != nil {
			return err
		}
		d.MaxArea = a

	case "set_dont_touch":
		d, err := st.needDesign()
		if err != nil {
			return err
		}
		pattern := c.Args[0]
		n := 0
		for _, cell := range d.NL.Cells {
			if matchPattern(cell.Group, pattern) || matchPattern(cell.Module, pattern) {
				cell.Fixed = true
				n++
			}
		}
		st.logf("set_dont_touch: %d cells protected", n)

	case "ungroup":
		d, err := st.needDesign()
		if err != nil {
			return err
		}
		prefix := ""
		if _, all := c.Opts["-all"]; !all {
			if len(c.Args) == 1 {
				prefix = c.Args[0]
			}
		}
		n := d.NL.Ungroup(prefix)
		st.logf("ungrouped %d cells", n)

	case "uniquify":
		_, err := st.needDesign()
		return err

	case "compile", "compile_ultra":
		d, err := st.needDesign()
		if err != nil {
			return err
		}
		opts := CompileOptions{MapEffort: EffortMedium}
		if c.Name == "compile_ultra" {
			opts.Ultra = true
			_, opts.Retime = c.Opts["-retime"]
			_, opts.NoAutoUngroup = c.Opts["-no_autoungroup"]
			_, opts.TimingHighEffort = c.Opts["-timing_high_effort_script"]
			_, opts.AreaHighEffort = c.Opts["-area_high_effort_script"]
		} else {
			if eff, ok := c.Opts["-map_effort"]; ok {
				e, err := ParseEffort(eff)
				if err != nil {
					return err
				}
				opts.MapEffort = e
			}
			if eff, ok := c.Opts["-area_effort"]; ok {
				e, err := ParseEffort(eff)
				if err != nil {
					return err
				}
				opts.AreaEffort = e
			}
			_, opts.Incremental = c.Opts["-incremental"]
		}
		if err := Compile(d, opts); err != nil {
			return err
		}
		st.didComp = true
		q, err := d.QoR()
		if err != nil {
			return err
		}
		st.logf("%s done: WNS %.3f CPS %.3f TNS %.3f area %.2f", c.Name, q.WNS, q.CPS, q.TNS, q.Area)

	case "optimize_registers":
		if !st.didComp {
			return fmt.Errorf("optimize_registers must follow compile or compile_ultra")
		}
		d := st.design
		moves := Retime(d.NL, d.WL, d.Cons, 4000)
		Sweep(d.NL)
		st.logf("optimize_registers: %d register moves", moves)

	case "balance_buffers":
		if !st.didComp {
			return fmt.Errorf("balance_buffers must follow compile or compile_ultra")
		}
		d := st.design
		limit := d.MaxFanout
		if limit == 0 {
			limit = 12
		}
		n := BufferHighFanout(d.NL, limit)
		SizeForTiming(d.NL, d.WL, d.Cons, 0, 6)
		st.logf("balance_buffers: %d buffers inserted", n)

	case "report_timing":
		d, err := st.needDesign()
		if err != nil {
			return err
		}
		maxPaths := 1
		if v, ok := c.Opts["-max_paths"]; ok {
			if maxPaths, err = strconv.Atoi(v); err != nil || maxPaths < 1 {
				return fmt.Errorf("invalid -max_paths %q", v)
			}
		}
		rep, err := ReportTiming(d, maxPaths)
		if err != nil {
			return err
		}
		st.res.Reports = append(st.res.Reports, rep)

	case "report_area":
		d, err := st.needDesign()
		if err != nil {
			return err
		}
		st.res.Reports = append(st.res.Reports, ReportArea(d))

	case "report_qor":
		d, err := st.needDesign()
		if err != nil {
			return err
		}
		rep, err := ReportQoR(d)
		if err != nil {
			return err
		}
		st.res.Reports = append(st.res.Reports, rep)

	case "report_power":
		d, err := st.needDesign()
		if err != nil {
			return err
		}
		if d.Cons.Period <= 0 {
			return fmt.Errorf("no clock constraint defined (create_clock)")
		}
		vectors := 64
		if v, ok := c.Opts["-vectors"]; ok {
			if vectors, err = strconv.Atoi(v); err != nil || vectors < 2 {
				return fmt.Errorf("invalid -vectors %q", v)
			}
		}
		rep, err := power.Analyze(d.NL, d.WL, d.Cons.Period, vectors, 1)
		if err != nil {
			return err
		}
		st.res.Reports = append(st.res.Reports, rep.Format(d.NL.Name))

	case "report_hierarchy":
		d, err := st.needDesign()
		if err != nil {
			return err
		}
		st.res.Reports = append(st.res.Reports, ReportHierarchy(d))

	case "report_constraint":
		d, err := st.needDesign()
		if err != nil {
			return err
		}
		rep, err := ReportConstraint(d)
		if err != nil {
			return err
		}
		st.res.Reports = append(st.res.Reports, rep)

	case "write":
		d, err := st.needDesign()
		if err != nil {
			return err
		}
		if f, ok := c.Opts["-format"]; ok && f != "verilog" {
			return fmt.Errorf("unsupported format %q (only verilog)", f)
		}
		st.res.Netlists = append(st.res.Netlists, netlist.WriteVerilog(d.NL))
		st.logf("write: %d cells as structural verilog", len(d.NL.Cells))

	case "set":
		// handled during parsing

	case "echo":
		st.logf("%s", strings.Join(c.Args, " "))

	default:
		return fmt.Errorf("command not implemented")
	}
	return nil
}

// matchPattern does glob-lite matching: "*" suffix wildcard only.
func matchPattern(s, pattern string) bool {
	if pattern == "*" {
		return true
	}
	if strings.HasSuffix(pattern, "*") {
		return strings.HasPrefix(s, strings.TrimSuffix(pattern, "*"))
	}
	return s == pattern
}
