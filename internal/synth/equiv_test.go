package synth

import (
	"math/rand"
	"testing"

	"repro/internal/designs"
	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/sta"
	"repro/internal/verilog"
)

// The equivalence suite is the synthesis tool's functional safety net:
// every optimization pass is applied to a netlist and the result is
// simulated against an untouched elaboration of the same RTL over random
// stimulus. Sequential designs compare cycle-by-cycle; retiming (which
// legally changes register placement) compares steady-state outputs under
// held inputs on feedforward pipelines.

func elabFresh(t *testing.T, src, top string) *netlist.Netlist {
	t.Helper()
	f, err := verilog.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	nl, err := netlist.Elaborate(f, top, nil, liberty.Nangate45())
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	return nl
}

// stimulus is a deterministic random input sequence, generated once and
// applied identically to both netlists.
type stimulus struct {
	cycles []map[string]bool
}

func makeStimulus(nl *netlist.Netlist, cycles int, seed int64) stimulus {
	rng := rand.New(rand.NewSource(seed))
	st := stimulus{}
	for c := 0; c < cycles; c++ {
		vec := make(map[string]bool, len(nl.Inputs))
		for _, in := range nl.Inputs {
			vec[in.Name] = rng.Intn(2) == 1
		}
		st.cycles = append(st.cycles, vec)
	}
	return st
}

// trace runs the stimulus and records all primary outputs per cycle.
func trace(t *testing.T, nl *netlist.Netlist, st stimulus) []map[string]bool {
	t.Helper()
	s, err := sim.New(nl)
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	var out []map[string]bool
	for _, vec := range st.cycles {
		for name, v := range vec {
			if err := s.Set(name, v); err != nil {
				t.Fatalf("set %s: %v", name, err)
			}
		}
		s.Step()
		s.Eval()
		out = append(out, s.OutputBits())
	}
	return out
}

func assertEquivalent(t *testing.T, golden, opt *netlist.Netlist, seed int64, label string) {
	t.Helper()
	st := makeStimulus(golden, 24, seed)
	g := trace(t, golden, st)
	o := trace(t, opt, st)
	for c := range g {
		for name, want := range g[c] {
			if got, ok := o[c][name]; !ok || got != want {
				t.Fatalf("%s: cycle %d output %s = %v, want %v", label, c, name, got, want)
			}
		}
	}
}

// equivalence test corpus: small versions of each structural archetype.
var equivSources = []struct {
	name, src, top string
}{
	{"comb_mix", `
module comb_mix(input [7:0] a, input [7:0] b, input s, output [7:0] y, output r);
    wire [7:0] t;
    assign t = (a & b) ^ (a | ~b);
    assign y = s ? t + a : t - b;
    assign r = a[0] & a[1] & a[2] & a[3] & a[4] & a[5] & a[6] & a[7];
endmodule`, "comb_mix"},
	{"seq_alu", `
module seq_alu(input clk, input [1:0] op, input [7:0] a, input [7:0] b, output [7:0] q);
    reg [7:0] q;
    wire [7:0] sum, lg;
    assign sum = a + b;
    assign lg = (a ^ b) | (a & b);
    always @(posedge clk) q <= op[0] ? sum : (op[1] ? lg : a);
endmodule`, "seq_alu"},
	{"hier_wrap", `
module hier_wrap(input clk, input [5:0] d_n, output [5:0] q);
    wire [5:0] inner_n, inner;
    assign inner_n = ~d_n;
    sub u (.clk(clk), .x_n(inner_n), .y(inner));
    assign q = inner ^ d_n;
endmodule
module sub(input clk, input [5:0] x_n, output [5:0] y);
    wire [5:0] x;
    assign x = ~x_n;
    reg [5:0] y;
    always @(posedge clk) y <= x + 6'd3;
endmodule`, "hier_wrap"},
	{"fanout_heavy", `
module fanout_heavy(input clk, input en, input [15:0] d, output [15:0] q);
    reg [15:0] q;
    always @(posedge clk)
        if (en) q <= d ^ {16{en}};
endmodule`, "fanout_heavy"},
	{"mult_small", `
module mult_small(input clk, input [4:0] a, input [4:0] b, output [9:0] p);
    reg [9:0] p;
    always @(posedge clk) p <= a * b;
endmodule`, "mult_small"},
}

func TestSweepPreservesFunction(t *testing.T) {
	for _, c := range equivSources {
		golden := elabFresh(t, c.src, c.top)
		opt := elabFresh(t, c.src, c.top)
		opt.Ungroup("")
		Sweep(opt)
		if err := opt.Check(); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		assertEquivalent(t, golden, opt, 100, c.name+"/sweep")
	}
}

func TestRestructurePreservesFunction(t *testing.T) {
	for _, c := range equivSources {
		golden := elabFresh(t, c.src, c.top)
		opt := elabFresh(t, c.src, c.top)
		opt.Ungroup("")
		Sweep(opt)
		Restructure(opt)
		if err := opt.Check(); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		assertEquivalent(t, golden, opt, 101, c.name+"/restructure")
	}
}

func TestBalanceTreesPreservesFunction(t *testing.T) {
	for _, c := range equivSources {
		golden := elabFresh(t, c.src, c.top)
		opt := elabFresh(t, c.src, c.top)
		opt.Ungroup("")
		BalanceTrees(opt)
		if err := opt.Check(); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		assertEquivalent(t, golden, opt, 102, c.name+"/balance")
	}
}

func TestBufferAndSizingPreserveFunction(t *testing.T) {
	wl := liberty.Nangate45().WireLoad("5K_heavy_1k")
	for _, c := range equivSources {
		golden := elabFresh(t, c.src, c.top)
		opt := elabFresh(t, c.src, c.top)
		BufferHighFanout(opt, 4)
		SizeForTiming(opt, wl, sta.Constraints{Period: 0.3}, 0, 6)
		AreaRecovery(opt, wl, sta.Constraints{Period: 5}, 0.2)
		if err := opt.Check(); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		assertEquivalent(t, golden, opt, 103, c.name+"/buffer+size")
	}
}

func TestFullCompilePreservesFunction(t *testing.T) {
	wl := liberty.Nangate45().WireLoad("5K_heavy_1k")
	for _, c := range equivSources {
		for _, ultra := range []bool{false, true} {
			golden := elabFresh(t, c.src, c.top)
			opt := elabFresh(t, c.src, c.top)
			d := &Design{NL: opt, WL: wl, Cons: sta.Constraints{Period: 1.0}, MaxFanout: 8}
			if err := Compile(d, CompileOptions{MapEffort: EffortHigh, Ultra: ultra}); err != nil {
				t.Fatalf("%s: compile: %v", c.name, err)
			}
			if err := opt.Check(); err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			assertEquivalent(t, golden, opt, 104, c.name+"/compile")
		}
	}
}

// TestRetimePreservesSteadyState checks retiming on a feedforward pipeline:
// with inputs held constant, both netlists must converge to identical
// outputs once the pipeline has flushed (register placement may legally
// differ in between).
func TestRetimePreservesSteadyState(t *testing.T) {
	src := `
module ffpipe(input clk, input [7:0] a, input [7:0] b, output [7:0] q);
    reg [7:0] s1, q;
    wire [7:0] deep;
    assign deep = ((a + b) ^ (a << 1)) + (b >> 1);
    always @(posedge clk) begin
        s1 <= deep;
        q <= s1;
    end
endmodule`
	wl := liberty.Nangate45().WireLoad("5K_heavy_1k")
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		golden := elabFresh(t, src, "ffpipe")
		opt := elabFresh(t, src, "ffpipe")
		Sweep(opt)
		moves := Retime(opt, wl, sta.Constraints{Period: 0.55}, 4000)
		if trial == 0 && moves == 0 {
			t.Fatal("retime made no moves; test needs an actually-retimed netlist")
		}
		if err := opt.Check(); err != nil {
			t.Fatal(err)
		}
		a := uint64(rng.Intn(256))
		b := uint64(rng.Intn(256))
		sg, err := sim.New(golden)
		if err != nil {
			t.Fatal(err)
		}
		so, err := sim.New(opt)
		if err != nil {
			t.Fatal(err)
		}
		sg.SetVector("a", a)
		sg.SetVector("b", b)
		so.SetVector("a", a)
		so.SetVector("b", b)
		sg.Run(20)
		so.Run(20)
		want, _ := sg.OutputVector("q")
		got, _ := so.OutputVector("q")
		if got != want {
			t.Fatalf("steady state after retime: q = %d, want %d (a=%d b=%d)", got, want, a, b)
		}
	}
}

// TestBenchmarkCompileEquivalence runs the heaviest check: a real benchmark
// design through the complete ultra flow, verified cycle-exact.
func TestBenchmarkCompileEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full-design equivalence is slow")
	}
	d := designs.RiscV32i()
	golden := elabFresh(t, d.Source, d.Top)
	opt := elabFresh(t, d.Source, d.Top)
	wl := liberty.Nangate45().WireLoad("5K_heavy_1k")
	des := &Design{NL: opt, WL: wl, Cons: sta.Constraints{Period: d.Period}, MaxFanout: 16}
	if err := Compile(des, CompileOptions{Ultra: true}); err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, golden, opt, 105, "riscv32i/ultra")
}
