package synth

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"sort"
	"strconv"

	"repro/internal/liberty"
	"repro/internal/lru"
	"repro/internal/netlist"
	"repro/internal/verilog"
)

// CheckpointStore is a bounded, concurrency-safe, content-addressed cache of
// post-link compile state — the in-memory analogue of dc_shell's .ddc
// checkpoints. Every synthesis run whose script starts with the canonical
// elaboration prefix
//
//	read_verilog <files...>
//	[current_design <top>]
//	link
//
// produces identical state up to and including link whenever the library,
// the source contents, the top module, and the parameter overrides match —
// only the post-link optimization commands differ across Pass@k samples,
// pipeline variants, and serving requests. The store memoizes that state
// under a collision-resistant content hash (see checkpointKey) so repeat
// runs skip parsing and elaboration entirely.
//
// Snapshots are immutable once stored: a restore hands the session a
// netlist.Clone of the snapshot (and a fresh module-slice header), so
// concurrent sessions never share mutable state and a session mutating its
// restored design can never corrupt the snapshot. Eviction is LRU with a
// bounded entry count.
type CheckpointStore struct {
	cache  *lru.Cache[string, *checkpoint]
	remote BlobCache
}

// BlobCache is a second, remote tier of checkpoint storage shared by
// replicas (implemented by the remote-cache client). Keys are the raw
// checkpointKey bytes; values are encodeCheckpoint blobs. Implementations
// must be concurrency-safe and non-blocking under failure: a GetBlob against
// an unreachable tier reports a miss, a PutBlob is dropped — degradation,
// never an error surfaced into the synthesis path.
type BlobCache interface {
	GetBlob(key string) ([]byte, bool)
	PutBlob(key string, blob []byte)
}

// SetRemote attaches a remote blob tier. Local snapshots are pushed to it on
// capture; local misses consult it before falling back to fresh elaboration.
// Must be called before the store is shared across goroutines (wiring time),
// like every other store option. Nil-safe; attaching to a nil store is a
// no-op, and r may be nil to detach.
func (s *CheckpointStore) SetRemote(r BlobCache) {
	if s == nil {
		return
	}
	s.remote = r
}

// DefaultCheckpointCap is the store capacity used when NewCheckpointStore is
// given a non-positive bound: comfortably above the benchmark-corpus design
// count, small enough that a few dozen retained netlists stay cheap.
const DefaultCheckpointCap = 32

// NewCheckpointStore creates a store holding at most capacity snapshots
// (capacity <= 0 selects DefaultCheckpointCap).
func NewCheckpointStore(capacity int) *CheckpointStore {
	if capacity <= 0 {
		capacity = DefaultCheckpointCap
	}
	return &CheckpointStore{cache: lru.New[string, *checkpoint](capacity)}
}

// CheckpointStats are the store's lifetime counters, exposed by the serving
// daemon as synth_checkpoint_{hits,misses,evictions}_total.
type CheckpointStats struct {
	Hits, Misses, Evictions int64
}

// Stats returns the current counters. Nil-safe: a nil store reports zeros.
func (s *CheckpointStore) Stats() CheckpointStats {
	if s == nil {
		return CheckpointStats{}
	}
	return CheckpointStats{
		Hits:      s.cache.Hits(),
		Misses:    s.cache.Misses(),
		Evictions: s.cache.Evictions(),
	}
}

// Len returns the number of snapshots currently held.
func (s *CheckpointStore) Len() int {
	if s == nil {
		return 0
	}
	return s.cache.Len()
}

// checkpoint is one immutable post-link snapshot.
type checkpoint struct {
	nl   *netlist.Netlist    // pristine post-link netlist; restores clone it
	file *verilog.SourceFile // parsed sources (modules shared read-only)
	top  string              // resolved top module
	log  []string            // transcript lines the prefix produced
	srcs []srcText           // (file, text) in read order, for serialization
}

// srcText is one source file as the prefix read it. Carried so a checkpoint
// can be serialized: the decoder re-parses the sources in read order, which
// rebuilds file.Modules identically (modules are immutable values of the
// text, and read order decides precedence and the default top).
type srcText struct {
	Name, Text string
}

// linkPrefix recognizes the canonical elaboration prefix of a parsed script:
// one or more read_verilog commands, at most one current_design, then link.
// It returns the index of the link command, the files read (in script
// order), and the explicit top ("" when current_design is omitted and the
// default-top rule applies). ok is false when the script starts any other
// way — set_wire_load_model before link, an implicit link via compile, a
// re-read after link — and the session falls back to a fresh elaboration.
func linkPrefix(cmds []Cmd) (end int, files []string, top string, ok bool) {
	i := 0
	for i < len(cmds) && cmds[i].Name == "read_verilog" {
		files = append(files, cmds[i].Args...)
		i++
	}
	if len(files) == 0 {
		return 0, nil, "", false
	}
	if i < len(cmds) && cmds[i].Name == "current_design" {
		top = cmds[i].Args[0]
		i++
	}
	if i >= len(cmds) || cmds[i].Name != "link" {
		return 0, nil, "", false
	}
	return i, files, top, true
}

// checkpointKey derives the content address of the elaboration state the
// prefix produces. Every input that shapes the post-link netlist feeds the
// hash with length framing (so no two distinct input sequences share a byte
// stream): the library identity, the sorted (file, content) source set plus
// the script-order file sequence (read order decides module precedence and
// the default top), the explicit top module, and the sorted parameter
// overrides. Unknown source files make the key underivable (ok false); the
// run then proceeds — and fails — exactly like an uncheckpointed one.
func (s *Session) checkpointKey(files []string, top string) (string, bool) {
	h := sha256.New()
	frame := func(b string) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(b)))
		h.Write(n[:])
		h.Write([]byte(b))
	}
	frame("lib")
	frame(LibraryFingerprint(s.Lib))
	frame("order")
	for _, f := range files {
		frame(f)
	}
	sorted := append([]string(nil), files...)
	sort.Strings(sorted)
	frame("sources")
	for _, f := range sorted {
		src, ok := s.Sources[f]
		if !ok {
			return "", false
		}
		frame(f)
		frame(src)
	}
	frame("top")
	frame(top)
	frame("params")
	params := make([]string, 0, len(s.ParamOverrides))
	for k := range s.ParamOverrides {
		params = append(params, k)
	}
	sort.Strings(params)
	for _, k := range params {
		frame(k)
		frame(strconv.FormatInt(s.ParamOverrides[k], 10))
	}
	return string(h.Sum(nil)), true
}

// LibraryFingerprint identifies a library by content, not pointer: the name
// plus a digest of every cell's timing-relevant parameters and the wireload
// tables. Two libraries built the same way (e.g. two Nangate45() calls)
// fingerprint identically; a library differing in any delay model does not.
// Exported because the durable QoR log keys results by the same fingerprint:
// a library change must invalidate cached synthesis outcomes.
func LibraryFingerprint(lib *liberty.Library) string {
	h := sha256.New()
	hs := func(v string) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(v)))
		h.Write(n[:])
		h.Write([]byte(v))
	}
	hf := func(v float64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		h.Write(b[:])
	}
	hs(lib.Name)
	hs(lib.DefaultWL)
	for _, c := range lib.Cells() { // sorted by name
		hs(c.Name)
		hs(string(c.Kind))
		hf(float64(c.Drive))
		hf(c.Area)
		hf(c.InputCap)
		hf(c.Intrinsic)
		hf(c.DriveRes)
		hf(c.MaxCap)
		hf(c.Leakage)
		hf(c.Setup)
		hf(c.ClkToQ)
	}
	wls := make([]string, 0, len(lib.WireLoads))
	for name := range lib.WireLoads {
		wls = append(wls, name)
	}
	sort.Strings(wls)
	for _, name := range wls {
		wl := lib.WireLoads[name]
		hs(wl.Name)
		hf(wl.Res)
		for _, cap := range wl.Table {
			hf(cap)
		}
	}
	return string(h.Sum(nil))
}

// get returns the snapshot for key, nil on a miss. On a local miss with a
// remote tier attached, the tier is consulted: a blob that decodes cleanly
// against lib (the session's library — the key binds its fingerprint, so a
// remote hit always pairs with an equivalent library) is cached locally and
// served; an undecodable blob is treated as a miss, because remote bytes are
// untrusted input and a fresh elaboration is always available. Nil-safe.
func (s *CheckpointStore) get(key string, lib *liberty.Library) *checkpoint {
	if s == nil {
		return nil
	}
	if cp, ok := s.cache.Get(key); ok {
		return cp
	}
	if s.remote == nil {
		return nil
	}
	blob, ok := s.remote.GetBlob(key)
	if !ok {
		return nil
	}
	cp, err := decodeCheckpoint(blob, lib)
	if err != nil {
		return nil
	}
	s.cache.Add(key, cp)
	return cp
}

// put stores a snapshot locally and, when a remote tier is attached, pushes
// its serialized form so sibling replicas skip the same elaboration. The
// caller must hand over a snapshot it will never mutate (RunContext clones
// the live netlist at capture time). Nil-safe.
func (s *CheckpointStore) put(key string, cp *checkpoint) {
	if s == nil {
		return
	}
	s.cache.Add(key, cp)
	if s.remote != nil {
		s.remote.PutBlob(key, encodeCheckpoint(cp))
	}
}
