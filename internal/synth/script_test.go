package synth

import (
	"strings"
	"testing"

	"repro/internal/liberty"
)

const testDesignSrc = `
module tiny(input clk, input [15:0] a, input [15:0] b, output [15:0] q);
    reg [15:0] q;
    always @(posedge clk) q <= a + b;
endmodule
`

const goodScript = `
# baseline synthesis script
read_verilog tiny.v
current_design tiny
link
set_wire_load_model -name 5K_heavy_1k
create_clock -period 2.5 [get_ports clk]
set_input_delay 0.1 [all_inputs]
set_output_delay 0.1 [all_outputs]
compile -map_effort medium
report_qor
report_timing -max_paths 2
report_area
`

func newTestSession() *Session {
	s := NewSession(liberty.Nangate45())
	s.AddSource("tiny.v", testDesignSrc)
	return s
}

func TestSessionRunsBaselineScript(t *testing.T) {
	res, err := newTestSession().Run(goodScript)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.QoR == nil {
		t.Fatal("no QoR computed")
	}
	if res.QoR.Period != 2.5 {
		t.Errorf("period = %g, want 2.5", res.QoR.Period)
	}
	if res.QoR.WNS < 0 {
		t.Errorf("16-bit adder at 2.5ns should meet timing, WNS %.4f", res.QoR.WNS)
	}
	if len(res.Reports) != 3 {
		t.Fatalf("got %d reports, want 3", len(res.Reports))
	}
	if !strings.Contains(res.Reports[0], "report_qor") || !strings.Contains(res.Reports[0], "WNS") {
		t.Errorf("qor report malformed:\n%s", res.Reports[0])
	}
	if !strings.Contains(res.Reports[1], "Startpoint") || !strings.Contains(res.Reports[1], "slack") {
		t.Errorf("timing report malformed:\n%s", res.Reports[1])
	}
	if !strings.Contains(res.Reports[2], "Total area") {
		t.Errorf("area report malformed:\n%s", res.Reports[2])
	}
}

func TestSessionVariables(t *testing.T) {
	script := `
set period 3.0
read_verilog tiny.v
current_design tiny
create_clock -period $period clk
compile
`
	res, err := newTestSession().Run(script)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.QoR.Period != 3.0 {
		t.Errorf("period = %g, want 3.0 via $period", res.QoR.Period)
	}
}

func TestSessionErrors(t *testing.T) {
	cases := []struct {
		name, script, wantErr string
	}{
		{"unknown command", "optimize_timing -aggressive\n", "unknown command"},
		{"unknown option", "read_verilog tiny.v\ncompile -retime\n", "unknown option"},
		{"missing file", "read_verilog missing.v\n", "not found"},
		{"compile before clock", "read_verilog tiny.v\ncurrent_design tiny\ncompile\n", "no clock"},
		{"retime before compile", "read_verilog tiny.v\ncurrent_design tiny\ncreate_clock -period 2 clk\noptimize_registers\n", "must follow compile"},
		{"bad effort", "read_verilog tiny.v\ncreate_clock -period 2 clk\ncompile -map_effort turbo\n", "invalid effort"},
		{"bad period", "read_verilog tiny.v\ncreate_clock -period oops clk\n", "invalid period"},
		{"bad module", "read_verilog tiny.v\ncurrent_design nonexistent\n", "not found"},
		{"bad wireload", "read_verilog tiny.v\nset_wire_load_model -name 7K_nope\n", "not in library"},
	}
	for _, c := range cases {
		_, err := newTestSession().Run(c.script)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.wantErr)
		}
	}
}

func TestSessionUltraFlow(t *testing.T) {
	script := `
read_verilog tiny.v
current_design tiny
create_clock -period 1.2 clk
set_max_fanout 16 [current_design]
compile_ultra -retime -timing_high_effort_script
optimize_registers
balance_buffers
report_qor
`
	res, err := newTestSession().Run(script)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.QoR == nil {
		t.Fatal("no QoR")
	}
	if err := res.Design.NL.Check(); err != nil {
		t.Fatalf("netlist invalid after full flow: %v", err)
	}
}

func TestValidateScript(t *testing.T) {
	issues := ValidateScript(goodScript)
	for _, is := range issues {
		if is.Severity == "error" {
			t.Errorf("good script flagged: %v", is)
		}
	}
	bad := `
read_verilog tiny.v
compile
optimize_registers
`
	issues = ValidateScript(bad)
	var msgs []string
	for _, is := range issues {
		msgs = append(msgs, is.Message)
	}
	joined := strings.Join(msgs, "; ")
	if !strings.Contains(joined, "no clock constraint") {
		t.Errorf("missing clock issue not reported: %s", joined)
	}

	halluc := "compile_design -super\n"
	issues = ValidateScript(halluc)
	if len(issues) == 0 || issues[0].Severity != "error" {
		t.Errorf("hallucinated command not flagged: %v", issues)
	}

	noCompile := "read_verilog tiny.v\ncreate_clock -period 2 clk\nreport_qor\n"
	issues = ValidateScript(noCompile)
	found := false
	for _, is := range issues {
		if strings.Contains(is.Message, "never compiles") {
			found = true
		}
	}
	if !found {
		t.Error("missing-compile warning not reported")
	}
}

func TestParseScriptTokens(t *testing.T) {
	cmds, err := ParseScript(`create_clock -period 2.0 [get_ports clk] # comment
set_dont_touch {u_core/u_alu}
echo "hello world" trailing`)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmds) != 3 {
		t.Fatalf("got %d commands, want 3", len(cmds))
	}
	if cmds[0].Opts["-period"] != "2.0" || cmds[0].Args[0] != "clk" {
		t.Errorf("create_clock parsed wrong: %+v", cmds[0])
	}
	if cmds[1].Args[0] != "u_core/u_alu" {
		t.Errorf("brace group parsed wrong: %+v", cmds[1])
	}
	if len(cmds[2].Args) != 2 || cmds[2].Args[0] != "hello world" {
		t.Errorf("quoted string parsed wrong: %+v", cmds[2])
	}
}

func TestParseScriptLineContinuation(t *testing.T) {
	cmds, err := ParseScript("compile_ultra \\\n  -retime \\\n  -no_autoungroup\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(cmds) != 1 {
		t.Fatalf("got %d commands, want 1", len(cmds))
	}
	if _, ok := cmds[0].Opts["-retime"]; !ok {
		t.Error("-retime lost across continuation")
	}
	if _, ok := cmds[0].Opts["-no_autoungroup"]; !ok {
		t.Error("-no_autoungroup lost across continuation")
	}
}

func TestCommandSpecsSane(t *testing.T) {
	for name, spec := range Commands {
		if spec.Name != name {
			t.Errorf("spec %q has mismatched Name %q", name, spec.Name)
		}
		if spec.Brief == "" || spec.Detail == "" {
			t.Errorf("command %s lacks documentation", name)
		}
		for _, o := range spec.Opts {
			if !strings.HasPrefix(o.Name, "-") {
				t.Errorf("%s option %q must start with dash", name, o.Name)
			}
			if o.Desc == "" {
				t.Errorf("%s option %s lacks description", name, o.Name)
			}
		}
	}
	if len(CommandNames()) != len(Commands) {
		t.Error("CommandNames length mismatch")
	}
}

func TestNegativeNumberNotOption(t *testing.T) {
	// set_input_delay -0.1 would look like an option; isNumber must rescue it.
	cmds, err := ParseScript("read_verilog a.v\nset_input_delay -0.1 [all_inputs]\n")
	if err != nil {
		t.Fatalf("negative number mistaken for option: %v", err)
	}
	if cmds[1].Args[0] != "-0.1" {
		t.Errorf("args = %v", cmds[1].Args)
	}
}

func TestSessionWriteNetlist(t *testing.T) {
	script := `
read_verilog tiny.v
current_design tiny
create_clock -period 2.5 clk
compile
write -format verilog -output mapped
`
	res, err := newTestSession().Run(script)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Netlists) != 1 {
		t.Fatalf("netlists = %d, want 1", len(res.Netlists))
	}
	out := res.Netlists[0]
	if !strings.Contains(out, "module tiny(") || !strings.Contains(out, "DFF_X1") {
		t.Errorf("written netlist malformed:\n%.300s", out)
	}
	// Unsupported format rejected.
	bad := strings.Replace(script, "-format verilog", "-format edif", 1)
	if _, err := newTestSession().Run(bad); err == nil {
		t.Error("edif format should be rejected")
	}
}

func TestSessionReportPower(t *testing.T) {
	script := `
read_verilog tiny.v
current_design tiny
create_clock -period 2.5 clk
compile
report_power -vectors 16
`
	res, err := newTestSession().Run(script)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Reports) != 1 || !strings.Contains(res.Reports[0], "Total power") {
		t.Errorf("power report missing: %v", res.Reports)
	}
	// Power needs a clock.
	noClk := "read_verilog tiny.v\ncurrent_design tiny\nlink\nreport_power\n"
	if _, err := newTestSession().Run(noClk); err == nil {
		t.Error("report_power without clock should fail")
	}
	badVec := strings.Replace(script, "-vectors 16", "-vectors x", 1)
	if _, err := newTestSession().Run(badVec); err == nil {
		t.Error("bad -vectors should fail")
	}
}
