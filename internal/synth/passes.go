// Package synth implements the logic-synthesis tool the ChatLS pipeline
// drives: a dc_shell-style script interpreter over a set of netlist
// optimization passes (sweeping, restructuring, sizing, buffering,
// retiming, area recovery) with QoR reporting. Each pass works through
// mechanism, so the choice of script commands — the thing ChatLS customizes
// — determines the quality of results the same way it does with the
// commercial tool the paper evaluates against.
package synth

import (
	"math"
	"sort"

	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/sta"
)

// Sweep performs logic cleanup: removes redundant buffers and inverter
// pairs, propagates constants through gates, and deletes dangling cells.
// Inverter pairs are only collapsed within one optimization group (or after
// ungrouping), mirroring hierarchical boundary optimization. Returns the
// number of cells removed or simplified.
func Sweep(nl *netlist.Netlist) int {
	total := 0
	var sc sweepScratch
	for {
		n := sweepOnce(nl, &sc)
		total += n
		if n == 0 {
			return total
		}
	}
}

// sweepScratch reuses the snapshot and liveness buffers across the
// fixed-point iterations of one Sweep call.
type sweepScratch struct {
	snapshot []*netlist.Cell
	alive    []bool // indexed by Cell.ID
}

func sweepOnce(nl *netlist.Netlist, sc *sweepScratch) int {
	lib := nl.Lib
	changed := 0
	sc.snapshot = append(sc.snapshot[:0], nl.Cells...)
	snapshot := sc.snapshot
	bound := nl.CellIDBound()
	if cap(sc.alive) < bound {
		sc.alive = make([]bool, bound)
	} else {
		sc.alive = sc.alive[:bound]
		for i := range sc.alive {
			sc.alive[i] = false
		}
	}
	alive := sc.alive
	for _, c := range snapshot {
		alive[c.ID] = true
	}
	for _, c := range snapshot {
		if !alive[c.ID] || c.Fixed || c.IsSeq() {
			continue
		}
		switch c.Ref.Kind {
		case liberty.KindBuf:
			in := c.Inputs[0]
			if in.Const {
				if tie := tieFor(lib, in.Val); tie != nil {
					if nl.ReplaceCell(c, tie) == nil {
						changed++
					}
				}
				continue
			}
			if c.Output.PO {
				continue // port isolation buffer
			}
			nl.ReplaceNet(c.Output, in)
			nl.RemoveCell(c)
			alive[c.ID] = false
			changed++

		case liberty.KindInv:
			in := c.Inputs[0]
			if in.Const {
				if tie := tieFor(lib, !in.Val); tie != nil {
					if nl.ReplaceCell(c, tie) == nil {
						changed++
					}
				}
				continue
			}
			d := in.Driver
			if d == nil || d.Ref.Kind != liberty.KindInv || d.Fixed || c.Output.PO {
				continue
			}
			if !sameGroup(c, d) {
				continue
			}
			nl.ReplaceNet(c.Output, d.Inputs[0])
			nl.RemoveCell(c)
			alive[c.ID] = false
			changed++

		case liberty.KindAnd2, liberty.KindOr2, liberty.KindNand2, liberty.KindNor2,
			liberty.KindXor2, liberty.KindXnor2:
			if n := foldConst2(nl, c); n > 0 {
				changed += n
				if c.Output.Driver != c {
					alive[c.ID] = false
				}
			}

		case liberty.KindMux2:
			sel := c.Inputs[2]
			var keep *netlist.Net
			if sel.Const {
				if sel.Val {
					keep = c.Inputs[1]
				} else {
					keep = c.Inputs[0]
				}
			} else if c.Inputs[0] == c.Inputs[1] {
				keep = c.Inputs[0]
			}
			if keep != nil {
				changed += passthrough(nl, c, keep)
				if c.Output.Driver != c {
					alive[c.ID] = false
				}
			}
		}
	}
	// Dangling removal. The first snapshot is no longer needed; reuse it.
	sc.snapshot = append(sc.snapshot[:0], nl.Cells...)
	for _, c := range sc.snapshot {
		if c.Fixed || c.IsSeq() {
			continue
		}
		if c.Output.Fanout() == 0 && !c.Output.PO {
			nl.RemoveCell(c)
			changed++
		}
	}
	return changed
}

func eval2(kind liberty.Kind, a, b bool) bool {
	switch kind {
	case liberty.KindAnd2:
		return a && b
	case liberty.KindOr2:
		return a || b
	case liberty.KindNand2:
		return !(a && b)
	case liberty.KindNor2:
		return !(a || b)
	case liberty.KindXor2:
		return a != b
	case liberty.KindXnor2:
		return a == b
	}
	return false
}

func tieFor(lib *liberty.Library, val bool) *liberty.Cell {
	if val {
		return lib.Weakest(liberty.KindTie1)
	}
	return lib.Weakest(liberty.KindTie0)
}

func sameGroup(a, b *netlist.Cell) bool {
	return a.Group == b.Group || a.Group == "" || b.Group == ""
}

// foldConst2 simplifies a two-input gate with constant inputs.
func foldConst2(nl *netlist.Netlist, c *netlist.Cell) int {
	a, b := c.Inputs[0], c.Inputs[1]
	lib := nl.Lib
	if a.Const && b.Const {
		val := eval2(c.Ref.Kind, a.Val, b.Val)
		if tie := tieFor(lib, val); tie != nil && nl.ReplaceCell(c, tie) == nil {
			return 1
		}
		return 0
	}
	if !a.Const && !b.Const {
		return 0
	}
	if b.Const {
		a, b = b, a
	}
	// a is the constant input, b the live one.
	type action int
	const (
		keepGate action = iota
		passB           // output = b
		constOut        // output = constant
		invB            // output = ~b
	)
	act, cval := keepGate, false
	switch c.Ref.Kind {
	case liberty.KindAnd2:
		if a.Val {
			act = passB
		} else {
			act, cval = constOut, false
		}
	case liberty.KindOr2:
		if a.Val {
			act, cval = constOut, true
		} else {
			act = passB
		}
	case liberty.KindNand2:
		if a.Val {
			act = invB
		} else {
			act, cval = constOut, true
		}
	case liberty.KindNor2:
		if a.Val {
			act, cval = constOut, false
		} else {
			act = invB
		}
	case liberty.KindXor2:
		if a.Val {
			act = invB
		} else {
			act = passB
		}
	case liberty.KindXnor2:
		if a.Val {
			act = passB
		} else {
			act = invB
		}
	}
	switch act {
	case passB:
		return passthrough(nl, c, b)
	case constOut:
		if tie := tieFor(lib, cval); tie != nil && nl.ReplaceCell(c, tie) == nil {
			return 1
		}
	case invB:
		if inv := lib.Weakest(liberty.KindInv); inv != nil && nl.ReplaceCell(c, inv, b) == nil {
			return 1
		}
	}
	return 0
}

// passthrough replaces a cell whose output equals one of its inputs: the
// cell disappears, or becomes a buffer when the output is a primary output.
func passthrough(nl *netlist.Netlist, c *netlist.Cell, keep *netlist.Net) int {
	if c.Output.PO {
		if keep.Const {
			if tie := tieFor(nl.Lib, keep.Val); tie != nil && nl.ReplaceCell(c, tie) == nil {
				return 1
			}
			return 0
		}
		if buf := nl.Lib.Weakest(liberty.KindBuf); buf != nil && nl.ReplaceCell(c, buf, keep) == nil {
			return 1
		}
		return 0
	}
	nl.ReplaceNet(c.Output, keep)
	nl.RemoveCell(c)
	return 1
}

// Restructure merges gate/inverter pairs into complex cells: AND2+INV ->
// NAND2, OR2+INV -> NOR2, XOR2+INV -> XNOR2, NAND2+INV -> AND2, NOR2+INV ->
// OR2. Only single-fanout pairs within one group are merged.
var restructureMerge = map[liberty.Kind]liberty.Kind{
	liberty.KindAnd2:  liberty.KindNand2,
	liberty.KindOr2:   liberty.KindNor2,
	liberty.KindXor2:  liberty.KindXnor2,
	liberty.KindNand2: liberty.KindAnd2,
	liberty.KindNor2:  liberty.KindOr2,
	liberty.KindXnor2: liberty.KindXor2,
}

func Restructure(nl *netlist.Netlist) int {
	merge := restructureMerge
	changed := 0
	snapshot := append([]*netlist.Cell(nil), nl.Cells...)
	for _, inv := range snapshot {
		if inv.Ref.Kind != liberty.KindInv || inv.Fixed {
			continue
		}
		src := inv.Inputs[0].Driver
		if src == nil || src.Fixed || !sameGroup(inv, src) {
			continue
		}
		newKind, ok := merge[src.Ref.Kind]
		if !ok {
			continue
		}
		// src must feed only this inverter, and the merged gate must not
		// end up driving a heavy net: complex gates have worse drive, so
		// merging under high fanout loses more than the saved stage.
		if len(src.Output.Sinks) != 1 || src.Output.PO {
			continue
		}
		if len(inv.Output.Sinks) > 4 {
			continue
		}
		ref := nl.Lib.Weakest(newKind)
		if ref == nil {
			continue
		}
		// The inverter becomes the merged gate; src is removed.
		ins := append([]*netlist.Net(nil), src.Inputs...)
		if err := nl.ReplaceCell(inv, ref, ins...); err != nil {
			continue
		}
		nl.RemoveCell(src)
		changed++
	}
	return changed
}

var assocKinds = map[liberty.Kind]bool{
	liberty.KindAnd2: true,
	liberty.KindOr2:  true,
	liberty.KindXor2: true,
}

// BalanceTrees rebalances left-leaning chains of associative gates into
// balanced trees, reducing logic depth from O(n) to O(log n). Chains are
// only collected within one optimization group.
func BalanceTrees(nl *netlist.Netlist) int {
	changed := 0
	// Snapshot cells all have IDs below the starting bound; cells AddCell
	// creates during rebalancing are never roots, so they need no liveness
	// bit and the slice never has to grow.
	inTree := make([]bool, nl.CellIDBound())
	snapshot := append([]*netlist.Cell(nil), nl.Cells...)
	var sc chainScratch
	for _, root := range snapshot {
		if inTree[root.ID] || root.Fixed || !assocKinds[root.Ref.Kind] {
			continue
		}
		// Roots are chain cells not absorbed into a larger same-kind chain.
		if up := soleSameKindSink(root); up != nil && sameGroup(root, up) && !up.Fixed {
			continue
		}
		leaves, internals, depth := collectChain(root, &sc)
		if len(leaves) < 4 {
			continue
		}
		balanced := int(math.Ceil(math.Log2(float64(len(leaves)))))
		if depth <= balanced {
			continue
		}
		ref := nl.Lib.Weakest(root.Ref.Kind)
		level := leaves
		for len(level) > 2 {
			var next []*netlist.Net
			for i := 0; i+1 < len(level); i += 2 {
				g, err := nl.AddCell(ref, root.Group, root.Module, level[i], level[i+1])
				if err != nil {
					return changed
				}
				next = append(next, g.Output)
			}
			if len(level)%2 == 1 {
				next = append(next, level[len(level)-1])
			}
			level = next
		}
		nl.SetInput(root, 0, level[0])
		nl.SetInput(root, 1, level[1])
		for _, c := range internals {
			if c.ID < len(inTree) {
				inTree[c.ID] = true
			}
			nl.RemoveCell(c)
		}
		changed++
	}
	return changed
}

func soleSameKindSink(c *netlist.Cell) *netlist.Cell {
	if len(c.Output.Sinks) != 1 || c.Output.PO {
		return nil
	}
	s := c.Output.Sinks[0].Cell
	if s.Ref.Kind == c.Ref.Kind {
		return s
	}
	return nil
}

// chainScratch reuses collectChain's work slices across the roots of one
// BalanceTrees pass. Each call's results overwrite the previous call's.
type chainScratch struct {
	leaves    []*netlist.Net
	internals []*netlist.Cell
	stack     []chainFrame
}

type chainFrame struct {
	c *netlist.Cell
	i int // next input index to examine
	d int // depth of c within the chain
}

// collectChain gathers the leaf nets of a same-kind gate tree rooted at
// root, along with the internal cells (excluding root) and the tree depth.
// The walk is an explicit-stack preorder traversal matching the recursive
// formulation exactly (same leaf and internal order), without the per-root
// closure and stack-frame allocations.
func collectChain(root *netlist.Cell, sc *chainScratch) (leaves []*netlist.Net, internals []*netlist.Cell, depth int) {
	sc.leaves = sc.leaves[:0]
	sc.internals = sc.internals[:0]
	sc.stack = append(sc.stack[:0], chainFrame{c: root, d: 1})
	for len(sc.stack) > 0 {
		f := &sc.stack[len(sc.stack)-1]
		if f.d > depth {
			depth = f.d
		}
		if f.i >= len(f.c.Inputs) {
			sc.stack = sc.stack[:len(sc.stack)-1]
			continue
		}
		in := f.c.Inputs[f.i]
		f.i++
		drv := in.Driver
		if drv != nil && drv != root && !drv.Fixed &&
			drv.Ref.Kind == root.Ref.Kind &&
			sameGroup(drv, root) &&
			len(drv.Output.Sinks) == 1 && !drv.Output.PO {
			sc.internals = append(sc.internals, drv)
			sc.stack = append(sc.stack, chainFrame{c: drv, d: f.d + 1})
			continue
		}
		sc.leaves = append(sc.leaves, in)
	}
	return sc.leaves, sc.internals, depth
}

// SizeOptions tunes the sizing pass. Effort levels map to how many
// iterations run, how strong a cell may get, and how small a win the
// optimizer will still take — the mechanism behind compile effort levels.
type SizeOptions struct {
	TargetSlack float64
	MaxIters    int
	MaxDrive    int     // strongest drive allowed; 0 = unlimited
	MinGain     float64 // smallest accepted benefit-penalty, ns
}

// SizeForTiming upsizes violating cells with default (unbounded) options.
func SizeForTiming(nl *netlist.Netlist, wl *liberty.WireLoad, cons sta.Constraints, targetSlack float64, maxIters int) int {
	return SizeForTimingOpt(nl, wl, cons, SizeOptions{TargetSlack: targetSlack, MaxIters: maxIters, MinGain: 1e-5})
}

// SizeForTimingOpt iteratively upsizes cells below the slack target until
// the critical-path slack reaches it, improvement stalls, or MaxIters
// passes complete. A candidate is upsized only when its estimated local
// benefit (lower drive resistance under the actual load) outweighs the
// upstream penalty of its increased input capacitance by at least MinGain;
// a regressing iteration is rolled back and ends the pass.
func SizeForTimingOpt(nl *netlist.Netlist, wl *liberty.WireLoad, cons sta.Constraints, o SizeOptions) int {
	tm, err := sta.Analyze(nl, wl, cons)
	if err != nil {
		return 0
	}
	return SizeForTimingWith(tm, o)
}

// SizeForTimingWith is SizeForTimingOpt against an existing, current Timing,
// refreshed incrementally after each batch of resizes instead of re-analyzed
// from scratch.
func SizeForTimingWith(tm *sta.Timing, o SizeOptions) int {
	if err := tm.Update(nil); err != nil {
		return 0
	}
	nl := tm.NL
	targetSlack, maxIters := o.TargetSlack, o.MaxIters
	minGain := o.MinGain
	if minGain <= 0 {
		minGain = 1e-5
	}
	resized := 0
	type change struct {
		cell *netlist.Cell
		old  *liberty.Cell
	}
	var changes []change
	var changedCells []*netlist.Cell
	for iter := 0; iter < maxIters; iter++ {
		if tm.CPS() >= targetSlack {
			return resized
		}
		prevCPS, prevTNS := tm.CPS(), tm.TNS()
		changes = changes[:0]
		changedCells = changedCells[:0]
		// Candidates: every cell below the slack target, so all violating
		// cones improve together instead of whack-a-mole on a few paths.
		for _, c := range nl.Cells {
			if c.Fixed {
				continue
			}
			slack := tm.Slack(c.Output)
			if math.IsInf(slack, 1) || slack >= targetSlack {
				continue
			}
			up := nl.Lib.Upsize(c.Ref)
			if up == nil || (o.MaxDrive > 0 && up.Drive > o.MaxDrive) {
				continue
			}
			load := tm.LoadCap(c.Output)
			benefit := c.Ref.Delay(load) - up.Delay(load)
			// Extra input capacitance slows this cell's drivers.
			dcap := up.InputCap - c.Ref.InputCap
			penalty := 0.0
			for _, in := range c.Inputs {
				if in.Driver != nil {
					if p := in.Driver.Ref.DriveRes * dcap; p > penalty {
						penalty = p
					}
				}
			}
			if benefit-penalty <= minGain {
				continue
			}
			changes = append(changes, change{c, c.Ref})
			changedCells = append(changedCells, c)
			nl.SetRef(c, up)
		}
		if len(changes) == 0 {
			return resized
		}
		if err := tm.Update(changedCells); err != nil {
			return resized
		}
		improved := tm.CPS() > prevCPS+1e-9 ||
			(tm.TNS() > prevTNS+1e-9 && tm.CPS() >= prevCPS-1e-9)
		if !improved {
			for _, ch := range changes {
				nl.SetRef(ch.cell, ch.old)
			}
			tm.Update(changedCells)
			return resized
		}
		resized += len(changes)
	}
	return resized
}

// AreaRecovery downsizes cells with slack above margin, reclaiming area
// without creating violations; a regressing pass is rolled back.
func AreaRecovery(nl *netlist.Netlist, wl *liberty.WireLoad, cons sta.Constraints, margin float64) int {
	tm, err := sta.Analyze(nl, wl, cons)
	if err != nil {
		return 0
	}
	return AreaRecoveryWith(tm, margin)
}

// AreaRecoveryWith is AreaRecovery against an existing, current Timing,
// refreshed incrementally instead of re-analyzed.
func AreaRecoveryWith(tm *sta.Timing, margin float64) int {
	if err := tm.Update(nil); err != nil {
		return 0
	}
	nl := tm.NL
	baseWNS := tm.WNS()
	type change struct {
		cell *netlist.Cell
		old  *liberty.Cell
	}
	var changes []change
	var changedCells []*netlist.Cell
	cells := append([]*netlist.Cell(nil), nl.Cells...)
	sort.Slice(cells, func(i, j int) bool { return cells[i].ID < cells[j].ID })
	for _, c := range cells {
		if c.Fixed || c.IsSeq() {
			continue
		}
		slack := tm.Slack(c.Output)
		if math.IsInf(slack, 1) || slack <= margin {
			continue
		}
		down := nl.Lib.Downsize(c.Ref)
		if down == nil {
			continue
		}
		load := tm.LoadCap(c.Output)
		delta := down.Delay(load) - c.Ref.Delay(load)
		if slack-delta <= margin {
			continue
		}
		changes = append(changes, change{c, c.Ref})
		changedCells = append(changedCells, c)
		nl.SetRef(c, down)
	}
	if len(changes) == 0 {
		return 0
	}
	if err := tm.Update(changedCells); err != nil || tm.WNS() < baseWNS-1e-9 {
		for _, ch := range changes {
			nl.SetRef(ch.cell, ch.old)
		}
		tm.Update(changedCells)
		return 0
	}
	return len(changes)
}

// BufferHighFanout splits nets whose fanout exceeds limit into buffer
// trees, the mechanism behind balance_buffers and max_fanout fixing.
// Clock, reset, and constant nets are left alone.
func BufferHighFanout(nl *netlist.Netlist, limit int) int {
	if limit < 2 {
		return 0
	}
	buf := nl.Lib.Strongest(liberty.KindBuf)
	if buf == nil {
		return 0
	}
	inserted := 0
	for {
		var target *netlist.Net
		for _, n := range nl.Nets {
			if n.IsClk || n.IsRst || n.Const {
				continue
			}
			if len(n.Sinks) > limit {
				target = n
				break
			}
		}
		if target == nil {
			return inserted
		}
		group, module := "", nl.Name
		if target.Driver != nil {
			group, module = target.Driver.Group, target.Driver.Module
		}
		sinks := append([]*netlist.Pin(nil), target.Sinks...)
		for start := 0; start < len(sinks); start += limit {
			end := start + limit
			if end > len(sinks) {
				end = len(sinks)
			}
			b, err := nl.AddCell(buf, group, module, target)
			if err != nil {
				return inserted
			}
			// Load-required: Sweep must not collapse the tree it was built
			// to provide.
			b.Fixed = true
			inserted++
			for _, p := range sinks[start:end] {
				nl.SetInput(p.Cell, p.Index, b.Output)
			}
		}
	}
}
