package synth

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/liberty"
)

// memBlobCache is an in-memory BlobCache standing in for the remote tier.
type memBlobCache struct {
	mu    sync.Mutex
	blobs map[string][]byte
	puts  int
	gets  int
}

func newMemBlobCache() *memBlobCache {
	return &memBlobCache{blobs: make(map[string][]byte)}
}

func (m *memBlobCache) GetBlob(key string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.gets++
	b, ok := m.blobs[key]
	return b, ok
}

func (m *memBlobCache) PutBlob(key string, blob []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.puts++
	m.blobs[key] = append([]byte(nil), blob...)
}

// TestCheckpointCodecRoundTrip: encode→decode of a captured snapshot
// preserves everything a restore consumes, and re-encoding the decoded
// snapshot is byte-identical (content-addressability across replicas).
func TestCheckpointCodecRoundTrip(t *testing.T) {
	store := NewCheckpointStore(4)
	if _, err := newCheckpointedSession(store).Run(goodScript); err != nil {
		t.Fatal(err)
	}
	key, ok := newTestSession().checkpointKey([]string{"tiny.v"}, "tiny")
	if !ok {
		t.Fatal("key underivable")
	}
	cp := store.get(key, liberty.Nangate45())
	if cp == nil {
		t.Fatal("run did not store a snapshot")
	}

	blob := encodeCheckpoint(cp)
	got, err := decodeCheckpoint(blob, liberty.Nangate45())
	if err != nil {
		t.Fatalf("decodeCheckpoint: %v", err)
	}
	if got.top != cp.top {
		t.Errorf("top = %q, want %q", got.top, cp.top)
	}
	if len(got.log) != len(cp.log) {
		t.Fatalf("log lines = %d, want %d", len(got.log), len(cp.log))
	}
	for i := range cp.log {
		if got.log[i] != cp.log[i] {
			t.Errorf("log line %d = %q, want %q", i, got.log[i], cp.log[i])
		}
	}
	if len(got.file.Modules) != len(cp.file.Modules) {
		t.Fatalf("module count = %d, want %d", len(got.file.Modules), len(cp.file.Modules))
	}
	for i := range cp.file.Modules {
		if got.file.Modules[i].Name != cp.file.Modules[i].Name {
			t.Errorf("module %d = %q, want %q", i, got.file.Modules[i].Name, cp.file.Modules[i].Name)
		}
	}
	if !bytes.Equal(encodeCheckpoint(got), blob) {
		t.Error("re-encode after decode is not byte-identical")
	}
}

// TestCheckpointRemoteRestoreBitIdentical: a replica whose local store is
// empty but whose remote tier holds another replica's checkpoint produces
// byte-identical output to an uncheckpointed fresh run — the acceptance bar
// for sharing elaboration state across processes.
func TestCheckpointRemoteRestoreBitIdentical(t *testing.T) {
	script := goodScript + "write\n"
	fresh, err := newTestSession().Run(script)
	if err != nil {
		t.Fatal(err)
	}
	want := runJSON(t, fresh)

	// Replica A captures; its store pushes the blob to the shared tier.
	remote := newMemBlobCache()
	storeA := NewCheckpointStore(4)
	storeA.SetRemote(remote)
	outA, err := newCheckpointedSession(storeA).Run(script)
	if err != nil {
		t.Fatal(err)
	}
	if remote.puts != 1 {
		t.Fatalf("capture pushed %d blobs to the remote tier, want 1", remote.puts)
	}
	if got := runJSON(t, outA); got != want {
		t.Errorf("capturing run differs from fresh run")
	}

	// Replica B has a cold local store and restores via the remote tier.
	storeB := NewCheckpointStore(4)
	storeB.SetRemote(remote)
	outB, err := newCheckpointedSession(storeB).Run(script)
	if err != nil {
		t.Fatal(err)
	}
	if got := runJSON(t, outB); got != want {
		t.Errorf("remote-restored run differs from fresh run:\n%s\nvs\n%s", runJSON(t, outB), want)
	}
	if st := storeB.Stats(); st.Hits != 0 || st.Misses != 1 {
		t.Errorf("replica B local stats = %+v, want pure local miss served remotely", st)
	}
	if remote.puts != 1 {
		t.Errorf("remote restore re-uploaded the blob (%d puts)", remote.puts)
	}

	// The remote hit is now cached locally: a second run on B stays local.
	gets := remote.gets
	if _, err := newCheckpointedSession(storeB).Run(script); err != nil {
		t.Fatal(err)
	}
	if remote.gets != gets {
		t.Errorf("second run on B consulted the remote tier again")
	}
	if st := storeB.Stats(); st.Hits != 1 {
		t.Errorf("second run on B did not hit locally: %+v", st)
	}
}

// TestCheckpointCodecRejectsCorruption: hostile or damaged blobs from the
// network fail decode cleanly; the store then treats them as misses.
func TestCheckpointCodecRejectsCorruption(t *testing.T) {
	store := NewCheckpointStore(4)
	if _, err := newCheckpointedSession(store).Run(goodScript); err != nil {
		t.Fatal(err)
	}
	key, _ := newTestSession().checkpointKey([]string{"tiny.v"}, "tiny")
	lib := liberty.Nangate45()
	cp := store.get(key, lib)
	blob := encodeCheckpoint(cp)

	for n := 0; n < len(blob); n += 7 {
		if _, err := decodeCheckpoint(blob[:n], lib); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", n)
		}
	}
	if _, err := decodeCheckpoint(append(append([]byte{}, blob...), 0), lib); err == nil {
		t.Fatal("trailing byte decoded successfully")
	}

	// A corrupt remote blob degrades to a miss and a fresh elaboration.
	remote := newMemBlobCache()
	remote.blobs[key] = blob[:len(blob)/2]
	cold := NewCheckpointStore(4)
	cold.SetRemote(remote)
	out, err := newCheckpointedSession(cold).Run(goodScript + "write\n")
	if err != nil {
		t.Fatalf("corrupt remote blob broke the run: %v", err)
	}
	fresh, err := newTestSession().Run(goodScript + "write\n")
	if err != nil {
		t.Fatal(err)
	}
	if runJSON(t, out) != runJSON(t, fresh) {
		t.Error("run with corrupt remote blob differs from fresh run")
	}
}
