package synth

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/inputlimits"
	"repro/internal/resilience"
)

// TestParseScriptMalformedInputs: truncated, garbage, and pathological
// scripts return errors (or parse to something harmless) without panicking
// or hanging.
func TestParseScriptMalformedInputs(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"garbage bytes", "\x00\x01\x02\xff"},
		{"unknown command", "fire_the_lasers now"},
		{"unknown option", "compile -warp_speed"},
		{"missing option arg", "create_clock -period"},
		{"too few args", "set onlyname"},
		{"unbalanced bracket", "echo [get_ports clk"},
		{"unterminated string", "echo \"never closed"},
		{"unterminated brace", "echo {never closed"},
		{"continuation at EOF", "read_verilog a.v \\"},
		{"deep continuation chain", strings.Repeat("echo x \\\n", 5000) + "done"},
		{"many lines", strings.Repeat("echo hi\n", 5000)},
		{"huge single token", "echo " + strings.Repeat("a", 1<<16)},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			ParseScriptWithBudget(tc.src, inputlimits.Budget{
				MaxBytes: 1 << 20, MaxTokens: 1 << 16, MaxStatements: 1 << 14, MaxSteps: 1 << 20,
			})
		})
	}
}

// TestParseScriptBudgetTyped: each budget dimension trips a typed
// *inputlimits.LimitError that maps into the resilience taxonomy.
func TestParseScriptBudgetTyped(t *testing.T) {
	var le *inputlimits.LimitError

	_, err := ParseScriptWithBudget("echo hi\n", inputlimits.Budget{MaxBytes: 4})
	if !errors.As(err, &le) || le.Limit != inputlimits.LimitBytes {
		t.Fatalf("want bytes limit, got %v", err)
	}
	if !errors.Is(err, resilience.ErrBudgetExceeded) {
		t.Fatalf("error %v must map to resilience.ErrBudgetExceeded", err)
	}

	_, err = ParseScriptWithBudget("echo a b c d e f g h\n", inputlimits.Budget{MaxTokens: 3})
	if !errors.As(err, &le) || le.Limit != inputlimits.LimitTokens {
		t.Fatalf("want tokens limit, got %v", err)
	}

	_, err = ParseScriptWithBudget(strings.Repeat("echo hi\n", 10), inputlimits.Budget{MaxStatements: 3})
	if !errors.As(err, &le) || le.Limit != inputlimits.LimitStatements {
		t.Fatalf("want statements limit, got %v", err)
	}

	_, err = ParseScriptWithBudget(strings.Repeat("\n", 100), inputlimits.Budget{MaxSteps: 10})
	if !errors.As(err, &le) || le.Limit != inputlimits.LimitSteps {
		t.Fatalf("want steps limit, got %v", err)
	}
}

// TestParseScriptExpansionBounded: a small script that sets a large variable
// and references it many times cannot amplify memory past the step budget.
func TestParseScriptExpansionBounded(t *testing.T) {
	var b strings.Builder
	fmt.Fprintf(&b, "set big %s\n", strings.Repeat("x", 4096))
	b.WriteString("echo")
	for i := 0; i < 256; i++ {
		b.WriteString(" $big")
	}
	b.WriteString("\n")
	_, err := ParseScriptWithBudget(b.String(), inputlimits.Budget{MaxSteps: 1 << 16})
	var le *inputlimits.LimitError
	if !errors.As(err, &le) || le.Limit != inputlimits.LimitSteps {
		t.Fatalf("want steps limit on expansion blowup, got %v", err)
	}
}

// TestParseScriptContinuationLinear: the continuation joiner must not be
// quadratic. 200k continued lines parse in well under the test timeout; the
// old accumulate-by-concatenation implementation took minutes here.
func TestParseScriptContinuationLinear(t *testing.T) {
	src := "echo start \\\n" + strings.Repeat("x \\\n", 200000) + "end"
	cmds, err := ParseScriptWithBudget(src, inputlimits.Budget{})
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(cmds) != 1 || cmds[0].Name != "echo" {
		t.Fatalf("got %d cmds", len(cmds))
	}
	if len(cmds[0].Args) != 200002 {
		t.Fatalf("got %d args, want 200002", len(cmds[0].Args))
	}
}

// TestParseScriptDefaultBudgetAcceptsPipelineScripts: scripts shaped like
// the pipeline's own generations parse untouched under serving defaults.
func TestParseScriptDefaultBudgetAcceptsPipelineScripts(t *testing.T) {
	var b strings.Builder
	b.WriteString("read_verilog design.v\nlink\ncreate_clock -period 0.8 [get_ports clk]\n")
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&b, "set_max_fanout %d [current_design]\n", 8+i%8)
	}
	b.WriteString("compile -map_effort high\noptimize_registers\nreport_qor\n")
	if _, err := ParseScript(b.String()); err != nil {
		t.Fatalf("default budget rejected a legitimate script: %v", err)
	}
	if issues := ValidateScript(b.String()); len(issues) != 0 {
		t.Fatalf("unexpected issues: %v", issues)
	}
}
