package synth

import (
	"encoding/binary"
	"fmt"

	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/verilog"
)

// Checkpoint blob codec: the wire form a post-link snapshot takes through
// the remote result tier. A blob carries the resolved top, the prefix's
// transcript lines, the source files in read order, and the netlist in its
// bit-exact binary form (netlist.Encode). The decoder re-parses the sources
// — rebuilding file.Modules identically, since modules are pure values of
// the text — and netlist.Decode restores the post-link netlist with IDs,
// orders, and edit generations intact, so a session restored from a remote
// blob behaves byte-for-byte like one restored from a local snapshot.
//
// decodeCheckpoint treats its input as untrusted network bytes: malformed
// blobs return an error (the store then falls back to fresh elaboration),
// never a panic or a half-built snapshot.

const (
	ckptMagic   = "CKPT"
	ckptVersion = 1
)

// encodeCheckpoint serializes a snapshot. Deterministic for a given
// snapshot, so re-uploads of the same checkpoint are byte-identical.
func encodeCheckpoint(cp *checkpoint) []byte {
	buf := append([]byte(ckptMagic), ckptVersion)
	str := func(s string) {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	str(cp.top)
	buf = binary.AppendUvarint(buf, uint64(len(cp.log)))
	for _, line := range cp.log {
		str(line)
	}
	buf = binary.AppendUvarint(buf, uint64(len(cp.srcs)))
	for _, src := range cp.srcs {
		str(src.Name)
		str(src.Text)
	}
	nb := netlist.Encode(cp.nl)
	buf = binary.AppendUvarint(buf, uint64(len(nb)))
	buf = append(buf, nb...)
	return buf
}

// decodeCheckpoint reconstructs a snapshot from an encodeCheckpoint blob,
// resolving library-cell references against lib.
func decodeCheckpoint(blob []byte, lib *liberty.Library) (*checkpoint, error) {
	pos := 0
	fail := func(what string) error {
		return fmt.Errorf("checkpoint blob: bad %s at byte %d", what, pos)
	}
	uvarint := func() (int, bool) {
		v, n := binary.Uvarint(blob[pos:])
		if n <= 0 || v > uint64(len(blob)) {
			return 0, false
		}
		pos += n
		return int(v), true
	}
	str := func() (string, bool) {
		n, ok := uvarint()
		if !ok || pos+n > len(blob) {
			return "", false
		}
		s := string(blob[pos : pos+n])
		pos += n
		return s, true
	}

	if len(blob) < len(ckptMagic)+1 || string(blob[:len(ckptMagic)]) != ckptMagic {
		return nil, fail("magic")
	}
	pos = len(ckptMagic)
	if blob[pos] != ckptVersion {
		return nil, fmt.Errorf("checkpoint blob: unsupported version %d", blob[pos])
	}
	pos++

	cp := &checkpoint{}
	var ok bool
	if cp.top, ok = str(); !ok {
		return nil, fail("top")
	}
	nLog, ok := uvarint()
	if !ok {
		return nil, fail("log count")
	}
	cp.log = make([]string, nLog)
	for i := range cp.log {
		if cp.log[i], ok = str(); !ok {
			return nil, fail("log line")
		}
	}
	nSrc, ok := uvarint()
	if !ok {
		return nil, fail("source count")
	}
	cp.srcs = make([]srcText, nSrc)
	cp.file = &verilog.SourceFile{}
	for i := range cp.srcs {
		if cp.srcs[i].Name, ok = str(); !ok {
			return nil, fail("source name")
		}
		if cp.srcs[i].Text, ok = str(); !ok {
			return nil, fail("source text")
		}
		f, err := verilog.Parse(cp.srcs[i].Text)
		if err != nil {
			return nil, fmt.Errorf("checkpoint blob: source %q does not parse: %v", cp.srcs[i].Name, err)
		}
		cp.file.Modules = append(cp.file.Modules, f.Modules...)
	}
	nNL, ok := uvarint()
	if !ok || pos+nNL > len(blob) {
		return nil, fail("netlist length")
	}
	nl, err := netlist.Decode(blob[pos:pos+nNL], lib)
	if err != nil {
		return nil, fmt.Errorf("checkpoint blob: %v", err)
	}
	pos += nNL
	if pos != len(blob) {
		return nil, fmt.Errorf("checkpoint blob: %d trailing bytes", len(blob)-pos)
	}
	if cp.top != "" && cp.file.FindModule(cp.top) == nil {
		return nil, fmt.Errorf("checkpoint blob: top %q not among sources", cp.top)
	}
	cp.nl = nl
	return cp, nil
}
