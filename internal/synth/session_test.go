package synth

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/resilience"
)

// TestRunInvalidCommandLineNumber: a hallucinated command aborts the run
// and the error names the offending line, the way dc_shell batch runs do.
func TestRunInvalidCommandLineNumber(t *testing.T) {
	script := "read_verilog tiny.v\ncurrent_design tiny\noptimize_timing -aggressive\n"
	_, err := newTestSession().Run(script)
	if err == nil {
		t.Fatal("invalid command must abort the run")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error should name line 3: %v", err)
	}
	if !strings.Contains(err.Error(), "optimize_timing") {
		t.Errorf("error should name the command: %v", err)
	}
}

// TestRunMissingClockConstraint: compile without create_clock fails with a
// diagnosable error instead of producing a meaningless QoR.
func TestRunMissingClockConstraint(t *testing.T) {
	noClk := `
read_verilog tiny.v
current_design tiny
link
compile
report_qor
`
	_, err := newTestSession().Run(noClk)
	if err == nil {
		t.Fatal("compile without a clock constraint must fail")
	}
	if !strings.Contains(strings.ToLower(err.Error()), "clock") &&
		!strings.Contains(strings.ToLower(err.Error()), "period") {
		t.Errorf("error should mention the missing clock/period: %v", err)
	}
}

// TestRunContextCancelled: a cancelled context aborts script execution with
// the typed cancellation error before any further command runs.
func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := newTestSession().RunContext(ctx, goodScript)
	if err == nil {
		t.Fatal("cancelled context must abort the run")
	}
	if !errors.Is(err, resilience.ErrCancelled) {
		t.Errorf("want ErrCancelled, got %v", err)
	}
}

// TestRunCommandBudget: the step budget bounds execution so a hostile or
// hallucinated script cannot run unbounded.
func TestRunCommandBudget(t *testing.T) {
	var b strings.Builder
	b.WriteString("read_verilog tiny.v\ncurrent_design tiny\n")
	for i := 0; i < 10; i++ {
		b.WriteString("echo filler line\n")
	}
	s := newTestSession()
	s.MaxCommands = 4
	_, err := s.RunContext(context.Background(), b.String())
	if err == nil {
		t.Fatal("exceeding the command budget must abort the run")
	}
	if !errors.Is(err, resilience.ErrBudgetExceeded) {
		t.Errorf("want ErrBudgetExceeded, got %v", err)
	}
	if !strings.Contains(err.Error(), "line 5") {
		t.Errorf("error should name the first over-budget line (5): %v", err)
	}
}

// TestRunBudgetDefaultsAllowNormalScripts: the default budget never
// interferes with legitimate scripts.
func TestRunBudgetDefaultsAllowNormalScripts(t *testing.T) {
	res, err := newTestSession().RunContext(context.Background(), goodScript)
	if err != nil {
		t.Fatalf("default budget broke a normal script: %v", err)
	}
	if res.QoR == nil {
		t.Error("QoR missing")
	}
}

// TestRunUnlimitedBudget: a negative MaxCommands disables the cap.
func TestRunUnlimitedBudget(t *testing.T) {
	var b strings.Builder
	b.WriteString("read_verilog tiny.v\n")
	for i := 0; i < DefaultMaxCommands+8; i++ {
		b.WriteString("echo filler\n")
	}
	s := newTestSession()
	s.MaxCommands = -1
	if _, err := s.RunContext(context.Background(), b.String()); err != nil {
		t.Fatalf("unlimited budget should allow long scripts: %v", err)
	}
	// And the same script trips the default budget.
	s2 := newTestSession()
	if _, err := s2.RunContext(context.Background(), b.String()); !errors.Is(err, resilience.ErrBudgetExceeded) {
		t.Errorf("default budget should trip on %d commands: %v", DefaultMaxCommands+9, err)
	}
}
