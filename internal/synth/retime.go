package synth

import (
	"math"

	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/sta"
)

// Retime implements timing-driven register retiming (the optimize_registers
// command): flip-flops move backward or forward across single gates on
// critical paths whenever the neighbouring pipeline stage has enough slack
// to absorb the gate's delay. This is the pass that rescues designs with
// unbalanced register placement — the scenario the paper cites as the case
// where retiming beats buffer balancing — and it does nothing for designs
// whose stages are already balanced.
func Retime(nl *netlist.Netlist, wl *liberty.WireLoad, cons sta.Constraints, maxMoves int) int {
	tm, err := sta.Analyze(nl, wl, cons)
	if err != nil {
		return 0
	}
	return RetimeWith(tm, maxMoves)
}

// RetimeWith is Retime against an existing, current Timing. Register moves
// change the topology, so each sweep triggers the timer's full-reanalysis
// fallback — but in place, reusing the analysis buffers.
func RetimeWith(tm *sta.Timing, maxMoves int) int {
	nl := tm.NL
	const margin = 0.02
	moves := 0
	prevWNS := math.Inf(-1)
	var sc retimeScratch
	var present []bool // indexed by Cell.ID; rebuilt each sweep
	var fwdFlops []*netlist.Cell
	for moves < maxMoves {
		if err := tm.Update(nil); err != nil {
			return moves
		}
		if tm.WNS() >= 0 {
			return moves
		}
		// Stop if the last sweep failed to improve WNS: the violating paths
		// are not register-imbalance-limited, and further moves only add
		// flops (the "wrong tool" outcome the manual warns about).
		if tm.WNS() <= prevWNS+1e-9 && !math.IsInf(prevWNS, -1) {
			return moves
		}
		prevWNS = tm.WNS()
		// One sweep: try a move at every violating endpoint using this
		// timing snapshot, then re-analyze. Flops consumed by earlier moves
		// in the sweep are skipped.
		// Flops AddCell creates mid-sweep get IDs at or above this bound;
		// inSweep treats them as absent, exactly as the sweep's starting
		// snapshot would.
		bound := nl.CellIDBound()
		if cap(present) < bound {
			present = make([]bool, bound)
		} else {
			present = present[:bound]
			for i := range present {
				present[i] = false
			}
		}
		for _, c := range nl.Cells {
			present[c.ID] = true
		}
		inSweep := func(c *netlist.Cell) bool { return c.ID < bound && present[c.ID] }
		applied := 0
		for _, end := range tm.Endpoints() {
			if end.Slack >= 0 {
				break
			}
			if moves+applied >= maxMoves {
				break
			}
			if end.Cell != nil {
				if !inSweep(end.Cell) {
					continue
				}
				if removed := retimeBackward(nl, tm, end.Cell, margin, &sc); removed != nil {
					for _, f := range removed {
						if f.ID < bound {
							present[f.ID] = false
						}
					}
					applied++
					continue
				}
			}
			// Try a forward move at the path's launching register.
			path := tm.TracePath(end)
			if len(path.Steps) > 0 {
				first := path.Steps[0]
				if first.Cell != nil && first.Cell.IsSeq() && inSweep(first.Cell) {
					if g := soleCombSink(first.Cell.Output); g != nil && !g.IsSeq() {
						// Capture the feeding flops before the move rewires g.
						fwdFlops = fwdFlops[:0]
						okAll := true
						for _, in := range g.Inputs {
							f := in.Driver
							if f == nil || !f.IsSeq() || !inSweep(f) {
								okAll = false
								break
							}
							fwdFlops = append(fwdFlops, f)
						}
						if okAll && retimeForward(nl, tm, g, margin, &sc) {
							for _, f := range fwdFlops {
								if f.ID < bound {
									present[f.ID] = false
								}
							}
							applied++
						}
					}
				}
			}
		}
		if applied == 0 {
			return moves
		}
		moves += applied
	}
	return moves
}

func soleCombSink(n *netlist.Net) *netlist.Cell {
	if len(n.Sinks) != 1 || n.PO {
		return nil
	}
	c := n.Sinks[0].Cell
	if c.IsSeq() {
		return nil
	}
	return c
}

// retimeBackward moves the registers after gate g onto g's inputs:
//
//	ins -> g -> flop(s) -> downstream   becomes   ins -> flops -> g -> downstream
//
// f is one of the flops fed by g. Legal when every sink of g's output is an
// identical flop (the common case is exactly one), and profitable when the
// downstream stage of each can absorb g's delay. It returns the flops
// removed, or nil when no move was made.
func retimeBackward(nl *netlist.Netlist, tm *sta.Timing, f *netlist.Cell, margin float64, sc *retimeScratch) []*netlist.Cell {
	if f.Fixed {
		return nil
	}
	d := f.Inputs[0]
	g := d.Driver
	if g == nil || g.IsSeq() || g.Fixed || len(g.Inputs) == 0 || d.PO {
		return nil
	}
	if !sameGroup(f, g) {
		return nil
	}
	// Every sink of g must be a flop compatible with f. The scratch slice
	// is valid until the next retimeBackward call; the caller consumes it
	// immediately.
	sc.flops = sc.flops[:0]
	for _, p := range d.Sinks {
		s := p.Cell
		if !s.IsSeq() || s.Fixed || s.Ref != f.Ref || s.Clock != f.Clock || s.Reset != f.Reset {
			return nil
		}
		if s.Output.PO && len(d.Sinks) > 1 {
			// Merging would alias two output ports onto one net.
			return nil
		}
		sc.flops = append(sc.flops, s)
	}
	flops := sc.flops
	if len(flops) == 0 {
		return nil
	}
	// Profitability: each flop's downstream stage absorbs g's stage delay.
	gain := stageDelayOf(tm, g)
	for _, fl := range flops {
		if tm.Slack(fl.Output) < gain+margin {
			return nil
		}
	}
	// Insert a flop on each input of g.
	for i, in := range g.Inputs {
		nf, err := nl.AddCell(f.Ref, f.Group, f.Module, in)
		if err != nil {
			return nil
		}
		nf.Clock = f.Clock
		nf.Reset = f.Reset
		nl.SetInput(g, i, nf.Output)
	}
	// g now drives what the flops used to drive.
	if len(flops) == 1 && flops[0].Output.PO {
		q := flops[0].Output
		nl.RemoveCell(flops[0])
		// Keep the PO net's identity: g moves onto it. The old D net is
		// left dangling and gets swept.
		if err := nl.MoveOutput(g, q); err != nil {
			return nil
		}
		return flops
	}
	for _, fl := range flops {
		nl.ReplaceNet(fl.Output, d)
		nl.RemoveCell(fl)
	}
	return flops
}

// retimeForward moves the flops feeding gate g to g's output:
//
//	flops -> g -> downstream   becomes   g -> flop -> downstream
//
// legal when every input of g comes from a single-fanout flop and
// profitable when the upstream stage can absorb g's delay.
func retimeForward(nl *netlist.Netlist, tm *sta.Timing, g *netlist.Cell, margin float64, sc *retimeScratch) bool {
	if g.Fixed || g.IsSeq() || len(g.Inputs) == 0 || g.Output.PO {
		return false
	}
	sc.flops = sc.flops[:0]
	for _, in := range g.Inputs {
		f := in.Driver
		if f == nil || !f.IsSeq() || f.Fixed || in.PO || len(in.Sinks) != 1 {
			return false
		}
		if !sameGroup(f, g) {
			return false
		}
		sc.flops = append(sc.flops, f)
	}
	flops := sc.flops
	// All flops must share clock/reset.
	for _, f := range flops[1:] {
		if f.Clock != flops[0].Clock || f.Reset != flops[0].Reset {
			return false
		}
	}
	// Profitability: each upstream stage absorbs g's delay.
	gain := stageDelayOf(tm, g)
	for _, f := range flops {
		if tm.Slack(f.Inputs[0])-gain < margin {
			return false
		}
	}
	proto := flops[0]
	// Rewire g to read the flops' D nets directly.
	for i, f := range flops {
		nl.SetInput(g, i, f.Inputs[0])
	}
	// New flop after g: old downstream sinks of g move to the new flop's Q.
	q := g.Output
	sc.sinks = append(sc.sinks[:0], q.Sinks...)
	sinks := sc.sinks
	nf, err := nl.AddCell(proto.Ref, g.Group, g.Module, q)
	if err != nil {
		return false
	}
	nf.Clock = proto.Clock
	nf.Reset = proto.Reset
	for _, p := range sinks {
		nl.SetInput(p.Cell, p.Index, nf.Output)
	}
	for _, f := range flops {
		nl.RemoveCell(f)
	}
	return true
}

// retimeScratch reuses the per-endpoint work slices across one retiming
// sweep; each call's contents are consumed before the next call.
type retimeScratch struct {
	flops []*netlist.Cell
	sinks []*netlist.Pin
}

func stageDelayOf(tm *sta.Timing, c *netlist.Cell) float64 {
	load := tm.LoadCap(c.Output)
	return c.Ref.Delay(load)
}
