package synth

import (
	"math"

	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/sta"
)

// Retime implements timing-driven register retiming (the optimize_registers
// command): flip-flops move backward or forward across single gates on
// critical paths whenever the neighbouring pipeline stage has enough slack
// to absorb the gate's delay. This is the pass that rescues designs with
// unbalanced register placement — the scenario the paper cites as the case
// where retiming beats buffer balancing — and it does nothing for designs
// whose stages are already balanced.
func Retime(nl *netlist.Netlist, wl *liberty.WireLoad, cons sta.Constraints, maxMoves int) int {
	tm, err := sta.Analyze(nl, wl, cons)
	if err != nil {
		return 0
	}
	return RetimeWith(tm, maxMoves)
}

// RetimeWith is Retime against an existing, current Timing. Register moves
// change the topology, so each sweep triggers the timer's full-reanalysis
// fallback — but in place, reusing the analysis buffers.
func RetimeWith(tm *sta.Timing, maxMoves int) int {
	nl := tm.NL
	const margin = 0.02
	moves := 0
	prevWNS := math.Inf(-1)
	for moves < maxMoves {
		if err := tm.Update(nil); err != nil {
			return moves
		}
		if tm.WNS() >= 0 {
			return moves
		}
		// Stop if the last sweep failed to improve WNS: the violating paths
		// are not register-imbalance-limited, and further moves only add
		// flops (the "wrong tool" outcome the manual warns about).
		if tm.WNS() <= prevWNS+1e-9 && !math.IsInf(prevWNS, -1) {
			return moves
		}
		prevWNS = tm.WNS()
		// One sweep: try a move at every violating endpoint using this
		// timing snapshot, then re-analyze. Flops consumed by earlier moves
		// in the sweep are skipped.
		present := make(map[*netlist.Cell]bool, len(nl.Cells))
		for _, c := range nl.Cells {
			present[c] = true
		}
		applied := 0
		for _, end := range tm.Endpoints() {
			if end.Slack >= 0 {
				break
			}
			if moves+applied >= maxMoves {
				break
			}
			if end.Cell != nil {
				if !present[end.Cell] {
					continue
				}
				if removed := retimeBackward(nl, tm, end.Cell, margin); removed != nil {
					for _, f := range removed {
						delete(present, f)
					}
					applied++
					continue
				}
			}
			// Try a forward move at the path's launching register.
			path := tm.TracePath(end)
			if len(path.Steps) > 0 {
				first := path.Steps[0]
				if first.Cell != nil && first.Cell.IsSeq() && present[first.Cell] {
					if g := soleCombSink(first.Cell.Output); g != nil && !g.IsSeq() {
						// Capture the feeding flops before the move rewires g.
						var flops []*netlist.Cell
						okAll := true
						for _, in := range g.Inputs {
							f := in.Driver
							if f == nil || !f.IsSeq() || !present[f] {
								okAll = false
								break
							}
							flops = append(flops, f)
						}
						if okAll && retimeForward(nl, tm, g, margin) {
							for _, f := range flops {
								delete(present, f)
							}
							applied++
						}
					}
				}
			}
		}
		if applied == 0 {
			return moves
		}
		moves += applied
	}
	return moves
}

func soleCombSink(n *netlist.Net) *netlist.Cell {
	if len(n.Sinks) != 1 || n.PO {
		return nil
	}
	c := n.Sinks[0].Cell
	if c.IsSeq() {
		return nil
	}
	return c
}

// retimeBackward moves the registers after gate g onto g's inputs:
//
//	ins -> g -> flop(s) -> downstream   becomes   ins -> flops -> g -> downstream
//
// f is one of the flops fed by g. Legal when every sink of g's output is an
// identical flop (the common case is exactly one), and profitable when the
// downstream stage of each can absorb g's delay. It returns the flops
// removed, or nil when no move was made.
func retimeBackward(nl *netlist.Netlist, tm *sta.Timing, f *netlist.Cell, margin float64) []*netlist.Cell {
	if f.Fixed {
		return nil
	}
	d := f.Inputs[0]
	g := d.Driver
	if g == nil || g.IsSeq() || g.Fixed || len(g.Inputs) == 0 || d.PO {
		return nil
	}
	if !sameGroup(f, g) {
		return nil
	}
	// Every sink of g must be a flop compatible with f.
	var flops []*netlist.Cell
	for _, p := range d.Sinks {
		s := p.Cell
		if !s.IsSeq() || s.Fixed || s.Ref != f.Ref || s.Clock != f.Clock || s.Reset != f.Reset {
			return nil
		}
		if s.Output.PO && len(d.Sinks) > 1 {
			// Merging would alias two output ports onto one net.
			return nil
		}
		flops = append(flops, s)
	}
	if len(flops) == 0 {
		return nil
	}
	// Profitability: each flop's downstream stage absorbs g's stage delay.
	gain := stageDelayOf(tm, g)
	for _, fl := range flops {
		if tm.Slack(fl.Output) < gain+margin {
			return nil
		}
	}
	// Insert a flop on each input of g.
	for i, in := range g.Inputs {
		nf, err := nl.AddCell(f.Ref, f.Group, f.Module, in)
		if err != nil {
			return nil
		}
		nf.Clock = f.Clock
		nf.Reset = f.Reset
		nl.SetInput(g, i, nf.Output)
	}
	// g now drives what the flops used to drive.
	if len(flops) == 1 && flops[0].Output.PO {
		q := flops[0].Output
		nl.RemoveCell(flops[0])
		// Keep the PO net's identity: g moves onto it. The old D net is
		// left dangling and gets swept.
		if err := nl.MoveOutput(g, q); err != nil {
			return nil
		}
		return flops
	}
	for _, fl := range flops {
		nl.ReplaceNet(fl.Output, d)
		nl.RemoveCell(fl)
	}
	return flops
}

// retimeForward moves the flops feeding gate g to g's output:
//
//	flops -> g -> downstream   becomes   g -> flop -> downstream
//
// legal when every input of g comes from a single-fanout flop and
// profitable when the upstream stage can absorb g's delay.
func retimeForward(nl *netlist.Netlist, tm *sta.Timing, g *netlist.Cell, margin float64) bool {
	if g.Fixed || g.IsSeq() || len(g.Inputs) == 0 || g.Output.PO {
		return false
	}
	var flops []*netlist.Cell
	for _, in := range g.Inputs {
		f := in.Driver
		if f == nil || !f.IsSeq() || f.Fixed || in.PO || len(in.Sinks) != 1 {
			return false
		}
		if !sameGroup(f, g) {
			return false
		}
		flops = append(flops, f)
	}
	// All flops must share clock/reset.
	for _, f := range flops[1:] {
		if f.Clock != flops[0].Clock || f.Reset != flops[0].Reset {
			return false
		}
	}
	// Profitability: each upstream stage absorbs g's delay.
	gain := stageDelayOf(tm, g)
	for _, f := range flops {
		if tm.Slack(f.Inputs[0])-gain < margin {
			return false
		}
	}
	proto := flops[0]
	// Rewire g to read the flops' D nets directly.
	for i, f := range flops {
		nl.SetInput(g, i, f.Inputs[0])
	}
	// New flop after g: old downstream sinks of g move to the new flop's Q.
	q := g.Output
	sinks := append([]*netlist.Pin(nil), q.Sinks...)
	nf, err := nl.AddCell(proto.Ref, g.Group, g.Module, q)
	if err != nil {
		return false
	}
	nf.Clock = proto.Clock
	nf.Reset = proto.Reset
	for _, p := range sinks {
		nl.SetInput(p.Cell, p.Index, nf.Output)
	}
	for _, f := range flops {
		nl.RemoveCell(f)
	}
	return true
}

func stageDelayOf(tm *sta.Timing, c *netlist.Cell) float64 {
	load := tm.LoadCap(c.Output)
	return c.Ref.Delay(load)
}
