package synth

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"repro/internal/liberty"
	"repro/internal/netlist"
)

func newCheckpointedSession(store *CheckpointStore) *Session {
	s := newTestSession()
	s.Checkpoints = store
	return s
}

// runJSON canonicalizes a Result for byte comparison: reports, netlists,
// log, and QoR all participate.
func runJSON(t *testing.T, res *Result) string {
	t.Helper()
	b, err := json.Marshal(struct {
		QoR      *QoR
		Reports  []string
		Netlists []string
		Log      []string
	}{res.QoR, res.Reports, res.Netlists, res.Log})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestCheckpointRestoreBitIdentical: a restored run reproduces a fresh run's
// output byte for byte — reports, written netlists, transcript, and QoR.
func TestCheckpointRestoreBitIdentical(t *testing.T) {
	script := goodScript + "write\n"
	fresh, err := newTestSession().Run(script)
	if err != nil {
		t.Fatal(err)
	}

	store := NewCheckpointStore(4)
	first, err := newCheckpointedSession(store).Run(script)
	if err != nil {
		t.Fatal(err)
	}
	if st := store.Stats(); st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("first run: hits=%d misses=%d, want 0/1", st.Hits, st.Misses)
	}
	second, err := newCheckpointedSession(store).Run(script)
	if err != nil {
		t.Fatal(err)
	}
	if st := store.Stats(); st.Hits != 1 {
		t.Fatalf("second run did not hit the store: %+v", st)
	}

	want := runJSON(t, fresh)
	if got := runJSON(t, first); got != want {
		t.Errorf("miss-path run differs from uncheckpointed run:\n%s\nvs\n%s", got, want)
	}
	if got := runJSON(t, second); got != want {
		t.Errorf("restored run differs from uncheckpointed run:\n%s\nvs\n%s", got, want)
	}
}

// TestCheckpointKeyInputs: any input that shapes elaboration — source text,
// top module, parameter overrides, library — changes the key, so a restore
// can never serve the wrong design.
func TestCheckpointKeyInputs(t *testing.T) {
	base := newTestSession()
	key := func(s *Session, files []string, top string) string {
		k, ok := s.checkpointKey(files, top)
		if !ok {
			t.Fatalf("key underivable for %v", files)
		}
		return k
	}
	k0 := key(base, []string{"tiny.v"}, "tiny")

	edited := newTestSession()
	edited.AddSource("tiny.v", testDesignSrc+"\n// trailing comment\n")
	if key(edited, []string{"tiny.v"}, "tiny") == k0 {
		t.Error("changed source text must change the key")
	}
	if key(base, []string{"tiny.v"}, "other_top") == k0 {
		t.Error("changed top module must change the key")
	}
	params := newTestSession()
	params.ParamOverrides = map[string]int64{"WIDTH": 8}
	if key(params, []string{"tiny.v"}, "tiny") == k0 {
		t.Error("parameter overrides must change the key")
	}
	otherLib := NewSession(liberty.NewLibrary("empty"))
	otherLib.AddSource("tiny.v", testDesignSrc)
	if key(otherLib, []string{"tiny.v"}, "tiny") == k0 {
		t.Error("different library content must change the key")
	}
	// Two independently built instances of the same library fingerprint
	// identically: the key is content-addressed, not pointer-addressed.
	rebuilt := NewSession(liberty.Nangate45())
	rebuilt.AddSource("tiny.v", testDesignSrc)
	if key(rebuilt, []string{"tiny.v"}, "tiny") != k0 {
		t.Error("identical library content must produce the same key")
	}

	if _, ok := base.checkpointKey([]string{"missing.v"}, "tiny"); ok {
		t.Error("unknown source file must make the key underivable")
	}
}

// TestCheckpointPrefixRecognition: only the canonical
// read_verilog/current_design/link prefix checkpoints; everything else
// falls back to fresh elaboration (and still runs correctly).
func TestCheckpointPrefixRecognition(t *testing.T) {
	cases := []struct {
		name   string
		script string
		cached bool
	}{
		{"canonical", "read_verilog tiny.v\ncurrent_design tiny\nlink\ncreate_clock -period 2.5 clk\ncompile\n", true},
		{"no current_design", "read_verilog tiny.v\nlink\ncreate_clock -period 2.5 clk\ncompile\n", true},
		{"implicit link", "read_verilog tiny.v\ncurrent_design tiny\ncreate_clock -period 2.5 clk\ncompile\n", false},
		{"wireload before link", "read_verilog tiny.v\nset_wire_load_model -name 5K_heavy_1k\nlink\ncreate_clock -period 2.5 clk\ncompile\n", false},
		{"echo first", "echo hi\nread_verilog tiny.v\nlink\ncreate_clock -period 2.5 clk\ncompile\n", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			store := NewCheckpointStore(4)
			fresh, err := newTestSession().Run(tc.script)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := newCheckpointedSession(store).Run(tc.script); err != nil {
				t.Fatal(err)
			}
			got, err := newCheckpointedSession(store).Run(tc.script)
			if err != nil {
				t.Fatal(err)
			}
			hit := store.Stats().Hits > 0
			if hit != tc.cached {
				t.Errorf("cached=%v, want %v (stats %+v)", hit, tc.cached, store.Stats())
			}
			if runJSON(t, got) != runJSON(t, fresh) {
				t.Errorf("checkpointed result differs from fresh run")
			}
		})
	}
}

// TestCheckpointBudgetInteraction: a budget too small to reach link aborts
// at the same command whether or not a snapshot exists.
func TestCheckpointBudgetInteraction(t *testing.T) {
	store := NewCheckpointStore(4)
	if _, err := newCheckpointedSession(store).Run(goodScript); err != nil {
		t.Fatal(err)
	}
	s := newCheckpointedSession(store)
	s.MaxCommands = 2 // read_verilog, current_design — link is over budget
	_, err := s.Run(goodScript)
	if err == nil || !strings.Contains(err.Error(), "link") {
		t.Errorf("budget overrun should surface at link, got: %v", err)
	}
	if store.Stats().Hits != 0 {
		t.Errorf("an over-budget prefix must not restore (hits=%d)", store.Stats().Hits)
	}
}

// TestCheckpointSnapshotImmutable: mutating a restored design — resizing,
// retiming, ungrouping via compile_ultra — never perturbs the snapshot a
// later session restores from.
func TestCheckpointSnapshotImmutable(t *testing.T) {
	store := NewCheckpointStore(4)
	prefix := "read_verilog tiny.v\ncurrent_design tiny\nlink\n"
	if _, err := newCheckpointedSession(store).Run(prefix); err != nil {
		t.Fatal(err)
	}
	key, ok := newTestSession().checkpointKey([]string{"tiny.v"}, "tiny")
	if !ok {
		t.Fatal("key underivable")
	}
	cp := store.get(key, liberty.Nangate45())
	if cp == nil {
		t.Fatal("prefix-only run did not store a snapshot")
	}
	before := netlist.WriteVerilog(cp.nl)
	genBefore, topoBefore := cp.nl.Gen(), cp.nl.TopoGen()

	// A heavyweight mutating run restored from the snapshot.
	heavy := prefix + "create_clock -period 1.2 clk\ncompile_ultra -retime\noptimize_registers\nbalance_buffers\nreport_qor\n"
	if _, err := newCheckpointedSession(store).Run(heavy); err != nil {
		t.Fatal(err)
	}
	if store.Stats().Hits == 0 {
		t.Fatal("heavy run should have restored from the snapshot")
	}
	if got := netlist.WriteVerilog(cp.nl); got != before {
		t.Fatal("mutating a restored clone perturbed the stored snapshot")
	}
	if cp.nl.Gen() != genBefore || cp.nl.TopoGen() != topoBefore {
		t.Fatal("snapshot edit generations moved")
	}
	if err := cp.nl.Check(); err != nil {
		t.Fatalf("snapshot invariants violated: %v", err)
	}
}

// TestCheckpointConcurrentRestore: many sessions share one store, restoring
// and mutating concurrently; all produce the fresh-run result. Run with
// -race.
func TestCheckpointConcurrentRestore(t *testing.T) {
	fresh, err := newTestSession().Run(goodScript)
	if err != nil {
		t.Fatal(err)
	}
	want := runJSON(t, fresh)

	store := NewCheckpointStore(4)
	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	outs := make([]string, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := newCheckpointedSession(store).Run(goodScript)
			if err != nil {
				errs[w] = err
				return
			}
			outs[w] = runJSON(t, res)
		}()
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if outs[w] != want {
			t.Errorf("worker %d diverged from the fresh run", w)
		}
	}
	st := store.Stats()
	if st.Hits+st.Misses != workers {
		t.Errorf("hits+misses = %d, want %d", st.Hits+st.Misses, workers)
	}
}

// TestCheckpointEviction: the store is bounded; filling it past capacity
// evicts LRU entries and counts them.
func TestCheckpointEviction(t *testing.T) {
	store := NewCheckpointStore(1)
	s1 := newCheckpointedSession(store)
	if _, err := s1.Run(goodScript); err != nil {
		t.Fatal(err)
	}
	s2 := NewSession(liberty.Nangate45())
	s2.AddSource("other.v", strings.Replace(testDesignSrc, "tiny", "tiny2", -1))
	s2.Checkpoints = store
	if _, err := s2.Run("read_verilog other.v\ncurrent_design tiny2\nlink\ncreate_clock -period 2.5 clk\ncompile\n"); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 1 {
		t.Errorf("store over capacity: %d entries", store.Len())
	}
	if store.Stats().Evictions != 1 {
		t.Errorf("evictions = %d, want 1", store.Stats().Evictions)
	}
}

// TestCheckpointNilStoreSafe: the nil store is inert (methods are nil-safe,
// sessions run uncheckpointed).
func TestCheckpointNilStoreSafe(t *testing.T) {
	var store *CheckpointStore
	if store.Len() != 0 || store.Stats() != (CheckpointStats{}) {
		t.Error("nil store should report zeros")
	}
	s := newTestSession()
	s.Checkpoints = store // explicit nil
	if _, err := s.Run(goodScript); err != nil {
		t.Fatal(err)
	}
}
