package synth

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/inputlimits"
)

// OptSpec describes one option of a script command.
type OptSpec struct {
	Name   string // includes the leading dash, e.g. "-period"
	HasArg bool
	Desc   string
}

// CommandSpec documents one dc_shell-style command: its syntax, options,
// and usage requirements. The table doubles as the source of the tool user
// manual that SynthRAG retrieves from, so validation and documentation can
// never drift apart.
type CommandSpec struct {
	Name     string
	Brief    string
	Detail   string
	Opts     []OptSpec
	MinArgs  int
	MaxArgs  int // -1 = unlimited
	Requires string
}

// Opt finds an option spec by name.
func (c *CommandSpec) Opt(name string) *OptSpec {
	for i := range c.Opts {
		if c.Opts[i].Name == name {
			return &c.Opts[i]
		}
	}
	return nil
}

// Commands is the tool's full command set.
var Commands = map[string]*CommandSpec{
	"read_verilog": {
		Name:    "read_verilog",
		Brief:   "Read a Verilog RTL source file into the session.",
		Detail:  "Parses the named Verilog file and makes its modules available for elaboration. Must be run before current_design and compile.",
		MinArgs: 1, MaxArgs: -1,
	},
	"current_design": {
		Name:    "current_design",
		Brief:   "Select the top-level design.",
		Detail:  "Sets the named module as the design all subsequent constraints and optimizations apply to. The module must come from a previously read file.",
		MinArgs: 1, MaxArgs: 1,
		Requires: "read_verilog must have been run first.",
	},
	"link": {
		Name:    "link",
		Brief:   "Resolve and elaborate the current design.",
		Detail:  "Elaborates the current design against the target library, building the generic gate-level netlist. Runs implicitly before the first compile if omitted.",
		MinArgs: 0, MaxArgs: 0,
		Requires: "current_design must have been set.",
	},
	"set_wire_load_model": {
		Name:   "set_wire_load_model",
		Brief:  "Select the wireload model for net parasitic estimation.",
		Detail: "Chooses the wireload model used to estimate pre-layout net capacitance and resistance. The 5K_heavy_1k model is the pessimistic default for ~5k-gate blocks.",
		Opts: []OptSpec{
			{Name: "-name", HasArg: true, Desc: "Wireload model name (5K_heavy_1k, 5K_medium_1k, 5K_light_1k)."},
		},
		MinArgs: 0, MaxArgs: 1,
	},
	"create_clock": {
		Name:   "create_clock",
		Brief:  "Define the clock and its period.",
		Detail: "Creates the clock constraint on the named port. Every timing analysis and compile uses this period. Required before compile.",
		Opts: []OptSpec{
			{Name: "-period", HasArg: true, Desc: "Clock period in nanoseconds."},
			{Name: "-name", HasArg: true, Desc: "Logical clock name."},
		},
		MinArgs: 0, MaxArgs: 1,
	},
	"set_input_delay": {
		Name:    "set_input_delay",
		Brief:   "Set arrival time budget consumed outside the block at inputs.",
		Detail:  "Adds the given delay to all primary input arrivals, modeling upstream logic. First positional argument is the delay in nanoseconds.",
		Opts:    []OptSpec{{Name: "-clock", HasArg: true, Desc: "Reference clock name."}},
		MinArgs: 1, MaxArgs: 2,
		Requires: "create_clock should be defined first.",
	},
	"set_output_delay": {
		Name:    "set_output_delay",
		Brief:   "Set required-time margin consumed outside the block at outputs.",
		Detail:  "Subtracts the given delay from the required time at all primary outputs, modeling downstream logic. First positional argument is the delay in nanoseconds.",
		Opts:    []OptSpec{{Name: "-clock", HasArg: true, Desc: "Reference clock name."}},
		MinArgs: 1, MaxArgs: 2,
		Requires: "create_clock should be defined first.",
	},
	"set_max_fanout": {
		Name:    "set_max_fanout",
		Brief:   "Constrain the maximum fanout of any net.",
		Detail:  "Sets the fanout limit; compile builds buffer trees on nets exceeding it. Use for designs with high-fanout control or broadcast nets. First positional argument is the limit.",
		MinArgs: 1, MaxArgs: 2,
	},
	"set_max_area": {
		Name:    "set_max_area",
		Brief:   "Set the area goal for optimization.",
		Detail:  "Sets the target cell area in square microns; compile's area recovery works toward it. 0 requests maximum area effort.",
		MinArgs: 1, MaxArgs: 1,
	},
	"set_dont_touch": {
		Name:    "set_dont_touch",
		Brief:   "Protect cells from optimization.",
		Detail:  "Marks cells whose hierarchical group or module matches the argument as untouchable: no sizing, restructuring, or retiming will modify them.",
		MinArgs: 1, MaxArgs: 1,
	},
	"ungroup": {
		Name:   "ungroup",
		Brief:  "Dissolve hierarchical boundaries for cross-module optimization.",
		Detail: "Removes optimization group boundaries. Boundary-crossing cleanups (inverter-pair removal, chain rebalancing, retiming moves) become legal afterwards. With -all every group is flattened; otherwise the named block only.",
		Opts: []OptSpec{
			{Name: "-all", HasArg: false, Desc: "Ungroup every hierarchical block."},
			{Name: "-flatten", HasArg: false, Desc: "Recursively flatten nested blocks."},
		},
		MinArgs: 0, MaxArgs: 1,
	},
	"uniquify": {
		Name:    "uniquify",
		Brief:   "Make multiply-instantiated modules unique.",
		Detail:  "Duplicates shared module definitions so each instance can be optimized separately. The elaborated netlist is already unique per instance, so this is a no-op provided for script compatibility.",
		MinArgs: 0, MaxArgs: 0,
	},
	"compile": {
		Name:   "compile",
		Brief:  "Map and optimize the design.",
		Detail: "Runs the standard optimization flow: cleanup, restructuring (medium+), chain balancing (high), sizing, optional fanout buffering, and area recovery. Requires a clock constraint.",
		Opts: []OptSpec{
			{Name: "-map_effort", HasArg: true, Desc: "Mapping effort: low, medium (default), or high."},
			{Name: "-area_effort", HasArg: true, Desc: "Area recovery effort: low, medium, or high."},
			{Name: "-incremental", HasArg: false, Desc: "Re-optimize without restructuring the netlist."},
		},
		MinArgs: 0, MaxArgs: 0,
		Requires: "create_clock must be defined; the design must be linked.",
	},
	"compile_ultra": {
		Name:   "compile_ultra",
		Brief:  "Highest-effort optimization flow.",
		Detail: "Runs the full flow with automatic ungrouping, chain balancing, implicit fanout discipline, deeper sizing, and area recovery. -retime enables register retiming for stage-imbalanced designs; -timing_high_effort_script keeps pushing slack past zero; -area_high_effort_script doubles area recovery.",
		Opts: []OptSpec{
			{Name: "-retime", HasArg: false, Desc: "Enable register retiming during optimization."},
			{Name: "-no_autoungroup", HasArg: false, Desc: "Preserve hierarchy boundaries."},
			{Name: "-timing_high_effort_script", HasArg: false, Desc: "Maximize positive slack, not just closure."},
			{Name: "-area_high_effort_script", HasArg: false, Desc: "Aggressive area recovery."},
		},
		MinArgs: 0, MaxArgs: 0,
		Requires: "create_clock must be defined; the design must be linked.",
	},
	"optimize_registers": {
		Name:     "optimize_registers",
		Brief:    "Retime registers to balance pipeline stages.",
		Detail:   "Moves flip-flops across combinational gates on violating paths when the neighbouring stage has slack to absorb the gate delay. Effective on designs whose critical path is caused by unbalanced register placement; ineffective on already-balanced or purely combinational-depth-limited paths. Must run after an initial compile.",
		MinArgs:  0, MaxArgs: 0,
		Requires: "Must follow compile or compile_ultra.",
	},
	"balance_buffers": {
		Name:     "balance_buffers",
		Brief:    "Build buffer trees on high-fanout nets.",
		Detail:   "Splits nets whose fanout exceeds the discipline limit (12, or the set_max_fanout value) into balanced buffer trees. Effective on designs whose timing is dominated by high-fanout broadcast or control nets; ineffective when paths are deep but narrow. Must run after an initial compile.",
		MinArgs:  0, MaxArgs: 0,
		Requires: "Must follow compile or compile_ultra.",
	},
	"report_timing": {
		Name:    "report_timing",
		Brief:   "Report the worst timing paths.",
		Detail:  "Prints startpoint/endpoint, per-stage delays, and slack for the worst paths.",
		Opts:    []OptSpec{{Name: "-max_paths", HasArg: true, Desc: "Number of paths to report (default 1)."}},
		MinArgs: 0, MaxArgs: 0,
		Requires: "The design must be linked and constrained.",
	},
	"report_area": {
		Name:    "report_area",
		Brief:   "Report cell area statistics.",
		Detail:  "Prints total area, cell counts, and the sequential/combinational split.",
		MinArgs: 0, MaxArgs: 0,
		Requires: "The design must be linked.",
	},
	"report_qor": {
		Name:    "report_qor",
		Brief:   "Report the quality-of-results summary.",
		Detail:  "Prints WNS, CPS, TNS, area, and violation counts in one table.",
		MinArgs: 0, MaxArgs: 0,
		Requires: "The design must be linked and constrained.",
	},
	"report_power": {
		Name:    "report_power",
		Brief:   "Report activity-based power estimates.",
		Detail:  "Simulates the design over seeded random stimulus, counts net toggles against their capacitive loads, and reports net switching, cell internal, and leakage power. The extension toward sign-off power analysis (PrimePower) the flow is designed to grow into.",
		Opts:    []OptSpec{{Name: "-vectors", HasArg: true, Desc: "Number of random stimulus vectors (default 64)."}},
		MinArgs: 0, MaxArgs: 0,
		Requires: "The design must be linked and constrained (the clock period sets the frequency).",
	},
	"report_hierarchy": {
		Name:    "report_hierarchy",
		Brief:   "Report the design's hierarchical blocks.",
		Detail:  "Lists optimization groups and their cell counts.",
		MinArgs: 0, MaxArgs: 0,
		Requires: "The design must be linked.",
	},
	"report_constraint": {
		Name:    "report_constraint",
		Brief:   "Report constraint violations.",
		Detail:  "Lists timing, max_fanout, and max_area violations against the current constraints.",
		MinArgs: 0, MaxArgs: 0,
		Requires: "The design must be linked and constrained.",
	},
	"write": {
		Name:   "write",
		Brief:  "Write the mapped netlist.",
		Detail: "Emits the current design as structural Verilog (one instance per library cell, self-contained with leaf definitions). The output re-parses through the frontend and is functionally equivalent to the design in memory.",
		Opts: []OptSpec{
			{Name: "-format", HasArg: true, Desc: "Output format; only \"verilog\" is supported."},
			{Name: "-output", HasArg: true, Desc: "Logical output name recorded with the result."},
		},
		MinArgs: 0, MaxArgs: 0,
		Requires: "The design must be linked.",
	},
	"set": {
		Name:    "set",
		Brief:   "Set a script variable.",
		Detail:  "Tcl-style variable assignment; later commands may reference the value as $name.",
		MinArgs: 2, MaxArgs: 2,
	},
	"echo": {
		Name:    "echo",
		Brief:   "Print a message to the transcript.",
		Detail:  "Writes its arguments to the session log.",
		MinArgs: 0, MaxArgs: -1,
	},
}

// CommandNames returns all command names sorted.
func CommandNames() []string {
	names := make([]string, 0, len(Commands))
	for n := range Commands {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Cmd is one parsed script command.
type Cmd struct {
	Line int
	Name string
	Opts map[string]string // option name -> arg ("" for flags)
	Args []string          // positional arguments
	Raw  string
}

// ParseScript tokenizes a dc_shell-style script into commands. It performs
// $var substitution for variables assigned with set, strips comments, and
// treats [...] bracket expressions as single arguments. Unknown commands and
// malformed options are reported as errors with their line number.
//
// Scripts are an untrusted-input surface (they arrive from LLM generations
// and, through the daemon, indirectly from the network), so parsing runs
// under the process-default input budget and returns a typed
// *inputlimits.LimitError on inputs that exceed it.
func ParseScript(text string) ([]Cmd, error) {
	return ParseScriptWithBudget(text, inputlimits.For(inputlimits.SurfaceScript))
}

// ParseScriptWithBudget parses a script under an explicit budget. The zero
// budget disables all limits.
func ParseScriptWithBudget(text string, budget inputlimits.Budget) ([]Cmd, error) {
	meter := inputlimits.NewMeter(inputlimits.SurfaceScript, budget)
	if err := meter.CheckBytes(len(text)); err != nil {
		return nil, err
	}
	var cmds []Cmd
	vars := make(map[string]string)
	lines := strings.Split(text, "\n")
	for i := 0; i < len(lines); i++ {
		lineNo := i + 1
		if err := meter.Step(); err != nil {
			return nil, err
		}
		// Line continuation: gather all continued segments first and join
		// once, so a long continuation chain costs linear work rather than
		// re-copying the accumulated line per segment.
		segs := []string{lines[i]}
		for strings.HasSuffix(strings.TrimRight(segs[len(segs)-1], " \t"), "\\") && i+1 < len(lines) {
			segs[len(segs)-1] = strings.TrimRight(strings.TrimRight(segs[len(segs)-1], " \t"), "\\")
			i++
			segs = append(segs, lines[i])
		}
		line := stripComment(strings.Join(segs, " "))
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		toks, err := tokenize(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		if len(toks) == 0 {
			continue
		}
		for range toks {
			if err := meter.Token(); err != nil {
				return nil, err
			}
		}
		// Variable substitution. Expansion is charged against the step
		// budget: a small script that sets a large variable and references
		// it many times would otherwise amplify memory far beyond MaxBytes.
		for j, t := range toks {
			toks[j] = substVars(t, vars)
			if grew := len(toks[j]) - len(t); grew > 0 {
				if err := meter.StepN(grew); err != nil {
					return nil, err
				}
			}
		}
		name := toks[0]
		spec, ok := Commands[name]
		if !ok {
			return nil, fmt.Errorf("line %d: unknown command %q", lineNo, name)
		}
		cmd := Cmd{Line: lineNo, Name: name, Opts: make(map[string]string), Raw: line}
		rest := toks[1:]
		for k := 0; k < len(rest); k++ {
			t := rest[k]
			if strings.HasPrefix(t, "-") && !isNumber(t) {
				opt := spec.Opt(t)
				if opt == nil {
					return nil, fmt.Errorf("line %d: %s: unknown option %q", lineNo, name, t)
				}
				if opt.HasArg {
					if k+1 >= len(rest) {
						return nil, fmt.Errorf("line %d: %s: option %s requires an argument", lineNo, name, t)
					}
					k++
					cmd.Opts[t] = cleanArg(rest[k])
				} else {
					cmd.Opts[t] = ""
				}
				continue
			}
			cmd.Args = append(cmd.Args, cleanArg(t))
		}
		if len(cmd.Args) < spec.MinArgs {
			return nil, fmt.Errorf("line %d: %s: requires at least %d argument(s)", lineNo, name, spec.MinArgs)
		}
		if spec.MaxArgs >= 0 && len(cmd.Args) > spec.MaxArgs {
			return nil, fmt.Errorf("line %d: %s: too many arguments (%d, max %d)", lineNo, name, len(cmd.Args), spec.MaxArgs)
		}
		if name == "set" {
			vars[cmd.Args[0]] = cmd.Args[1]
		}
		if err := meter.Statement(len(cmds) + 1); err != nil {
			return nil, err
		}
		cmds = append(cmds, cmd)
	}
	return cmds, nil
}

func stripComment(line string) string {
	depth := 0
	inStr := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			inStr = !inStr
		case '[':
			depth++
		case ']':
			if depth > 0 {
				depth--
			}
		case '#':
			if depth == 0 && !inStr {
				return line[:i]
			}
		case ';':
			if depth == 0 && !inStr && i+1 < len(line) && line[i+1] == '#' {
				return line[:i]
			}
		}
	}
	return line
}

// tokenize splits a command line, keeping [...] and "..." groups intact.
func tokenize(line string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(line) {
		c := line[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '[':
			depth := 0
			start := i
			for ; i < len(line); i++ {
				if line[i] == '[' {
					depth++
				} else if line[i] == ']' {
					depth--
					if depth == 0 {
						i++
						break
					}
				}
			}
			if depth != 0 {
				return nil, fmt.Errorf("unbalanced brackets")
			}
			toks = append(toks, line[start:i])
		case c == '"':
			end := strings.IndexByte(line[i+1:], '"')
			if end < 0 {
				return nil, fmt.Errorf("unterminated string")
			}
			toks = append(toks, line[i+1:i+1+end])
			i += end + 2
		case c == '{':
			end := strings.IndexByte(line[i+1:], '}')
			if end < 0 {
				return nil, fmt.Errorf("unterminated brace group")
			}
			toks = append(toks, line[i+1:i+1+end])
			i += end + 2
		default:
			start := i
			for i < len(line) && line[i] != ' ' && line[i] != '\t' {
				i++
			}
			toks = append(toks, line[start:i])
		}
	}
	return toks, nil
}

func substVars(tok string, vars map[string]string) string {
	if !strings.Contains(tok, "$") {
		return tok
	}
	var b strings.Builder
	for i := 0; i < len(tok); i++ {
		if tok[i] != '$' {
			b.WriteByte(tok[i])
			continue
		}
		j := i + 1
		for j < len(tok) && (isAlnum(tok[j]) || tok[j] == '_') {
			j++
		}
		name := tok[i+1 : j]
		if v, ok := vars[name]; ok {
			b.WriteString(v)
		} else {
			b.WriteString(tok[i:j])
		}
		i = j - 1
	}
	return b.String()
}

func isAlnum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

func isNumber(s string) bool {
	if len(s) < 2 || s[0] != '-' {
		return false
	}
	for _, c := range s[1:] {
		if (c < '0' || c > '9') && c != '.' {
			return false
		}
	}
	return true
}

// cleanArg unwraps bracket expressions like [get_ports clk] to their last
// word, and [all_inputs]/[current_design] to sentinel names.
func cleanArg(t string) string {
	if !strings.HasPrefix(t, "[") {
		return t
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(t, "["), "]")
	fields := strings.Fields(inner)
	if len(fields) == 0 {
		return ""
	}
	switch fields[0] {
	case "all_inputs", "all_outputs", "current_design", "all_registers", "all_clocks":
		return "*" + fields[0] + "*"
	}
	last := fields[len(fields)-1]
	return strings.Trim(last, "{}\"")
}

// Issue is one problem found by ValidateScript.
type Issue struct {
	Line     int
	Command  string
	Message  string
	Severity string // "error" or "warning"
}

func (i Issue) String() string {
	return fmt.Sprintf("line %d [%s]: %s: %s", i.Line, i.Severity, i.Command, i.Message)
}

// ValidateScript statically checks a script without executing it: unknown
// commands and options surface as errors, and ordering requirements
// (clock before compile, retiming only after compile) surface as the issues
// SynthExpert repairs during chain-of-thought revision.
func ValidateScript(text string) []Issue {
	var issues []Issue
	cmds, err := ParseScript(text)
	if err != nil {
		return []Issue{{Line: parseErrLine(err), Command: "parse", Message: err.Error(), Severity: "error"}}
	}
	var hasRead, hasClock, hasCompile bool
	for _, c := range cmds {
		switch c.Name {
		case "read_verilog":
			hasRead = true
		case "current_design", "link":
			if !hasRead {
				issues = append(issues, Issue{c.Line, c.Name, "no design read yet (read_verilog required first)", "error"})
			}
		case "create_clock":
			if _, ok := c.Opts["-period"]; !ok {
				issues = append(issues, Issue{c.Line, c.Name, "missing -period option", "error"})
			}
			hasClock = true
		case "compile", "compile_ultra":
			if !hasRead {
				issues = append(issues, Issue{c.Line, c.Name, "no design read yet (read_verilog required first)", "error"})
			}
			if !hasClock {
				issues = append(issues, Issue{c.Line, c.Name, "no clock constraint (create_clock required before compile)", "error"})
			}
			if eff, ok := c.Opts["-map_effort"]; ok {
				if _, err := ParseEffort(eff); err != nil {
					issues = append(issues, Issue{c.Line, c.Name, err.Error(), "error"})
				}
			}
			if eff, ok := c.Opts["-area_effort"]; ok {
				if _, err := ParseEffort(eff); err != nil {
					issues = append(issues, Issue{c.Line, c.Name, err.Error(), "error"})
				}
			}
			hasCompile = true
		case "optimize_registers", "balance_buffers":
			if !hasCompile {
				issues = append(issues, Issue{c.Line, c.Name, c.Name + " must follow compile or compile_ultra", "error"})
			}
		case "report_timing", "report_qor", "report_constraint":
			if !hasClock {
				issues = append(issues, Issue{c.Line, c.Name, "no clock constraint defined", "warning"})
			}
		}
	}
	if !hasCompile {
		issues = append(issues, Issue{0, "script", "script never compiles the design", "warning"})
	}
	return issues
}

func parseErrLine(err error) int {
	var line int
	fmt.Sscanf(err.Error(), "line %d:", &line)
	return line
}
