package synth

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/sta"
	"repro/internal/verilog"
)

func elab(t *testing.T, src, top string) *netlist.Netlist {
	t.Helper()
	f, err := verilog.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	nl, err := netlist.Elaborate(f, top, nil, liberty.Nangate45())
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	return nl
}

func cons(period float64) sta.Constraints { return sta.Constraints{Period: period} }

func TestSweepRemovesBuffersAndInvPairs(t *testing.T) {
	lib := liberty.Nangate45()
	nl := netlist.New("t", lib)
	in := nl.NewNet("in")
	in.PI = true
	nl.Inputs = append(nl.Inputs, in)
	b1, _ := nl.AddCell(lib.Cell("BUF_X1"), "", "t", in)
	i1, _ := nl.AddCell(lib.Cell("INV_X1"), "", "t", b1.Output)
	i2, _ := nl.AddCell(lib.Cell("INV_X1"), "", "t", i1.Output)
	and, _ := nl.AddCell(lib.Cell("AND2_X1"), "", "t", i2.Output, in)
	and.Output.PO = true
	nl.Outputs = append(nl.Outputs, and.Output)
	if err := nl.Check(); err != nil {
		t.Fatal(err)
	}
	removed := Sweep(nl)
	if removed < 3 {
		t.Errorf("Sweep removed %d, want >= 3 (buf + inv pair)", removed)
	}
	if err := nl.Check(); err != nil {
		t.Fatalf("netlist broken after sweep: %v", err)
	}
	// Only the AND should remain, now fed directly by in on both pins.
	if len(nl.Cells) != 1 || nl.Cells[0] != and {
		t.Fatalf("cells after sweep = %d, want just the AND", len(nl.Cells))
	}
	if and.Inputs[0] != in || and.Inputs[1] != in {
		t.Error("AND inputs not rewired to the primary input")
	}
}

func TestSweepConstProp(t *testing.T) {
	// AND(x, 0) -> TIE0; OR(x, 1) -> TIE1; XOR(x, 1) -> INV(x).
	lib := liberty.Nangate45()
	for _, tc := range []struct {
		kind string
		val  bool
		want liberty.Kind
	}{
		{"AND2_X1", false, liberty.KindTie0},
		{"OR2_X1", true, liberty.KindTie1},
		{"XOR2_X1", true, liberty.KindInv},
		{"NAND2_X1", false, liberty.KindTie1},
		{"NOR2_X1", true, liberty.KindTie0},
	} {
		nl := netlist.New("t", lib)
		in := nl.NewNet("in")
		in.PI = true
		nl.Inputs = append(nl.Inputs, in)
		cst := nl.NewConst(tc.val)
		g, err := nl.AddCell(lib.Cell(tc.kind), "", "t", in, cst)
		if err != nil {
			t.Fatal(err)
		}
		g.Output.PO = true
		nl.Outputs = append(nl.Outputs, g.Output)
		Sweep(nl)
		if err := nl.Check(); err != nil {
			t.Fatalf("%s: %v", tc.kind, err)
		}
		if g.Ref.Kind != tc.want {
			t.Errorf("%s with const %v -> %s, want %s", tc.kind, tc.val, g.Ref.Kind, tc.want)
		}
	}
}

func TestSweepRespectsGroupBoundary(t *testing.T) {
	// INV pair split across two groups must survive until ungrouped.
	lib := liberty.Nangate45()
	build := func() (*netlist.Netlist, *netlist.Cell, *netlist.Cell) {
		nl := netlist.New("t", lib)
		in := nl.NewNet("in")
		in.PI = true
		nl.Inputs = append(nl.Inputs, in)
		i1, _ := nl.AddCell(lib.Cell("INV_X1"), "blk_a", "a", in)
		i2, _ := nl.AddCell(lib.Cell("INV_X1"), "blk_b", "b", i1.Output)
		and, _ := nl.AddCell(lib.Cell("AND2_X1"), "blk_b", "b", i2.Output, in)
		and.Output.PO = true
		nl.Outputs = append(nl.Outputs, and.Output)
		return nl, i1, i2
	}
	nl, _, _ := build()
	Sweep(nl)
	if len(nl.Cells) != 3 {
		t.Errorf("grouped inv pair should survive sweep, cells = %d", len(nl.Cells))
	}
	nl2, _, _ := build()
	nl2.Ungroup("")
	Sweep(nl2)
	if len(nl2.Cells) != 1 {
		t.Errorf("ungrouped inv pair should be swept, cells = %d", len(nl2.Cells))
	}
}

func TestRestructureMergesGateInv(t *testing.T) {
	nl := elab(t, `
module r(input a, input b, output y);
    assign y = ~(a & b);
endmodule`, "r")
	// Elaboration builds AND2 + INV; restructure should merge to NAND2.
	Restructure(nl)
	if err := nl.Check(); err != nil {
		t.Fatal(err)
	}
	s := nl.Summary()
	if s.ByKind[liberty.KindNand2] != 1 || s.ByKind[liberty.KindAnd2] != 0 {
		t.Errorf("restructure should yield one NAND2, got %v", s.ByKind)
	}
}

func TestBalanceTreesReducesDepth(t *testing.T) {
	// A 16-term AND chain parsed left-associatively has depth 15.
	var terms []string
	for i := 0; i < 16; i++ {
		terms = append(terms, fmt.Sprintf("a[%d]", i))
	}
	src := fmt.Sprintf(`
module chain(input clk, input [15:0] a, output y);
    reg y;
    always @(posedge clk) y <= %s;
endmodule`, strings.Join(terms, " & "))
	nl := elab(t, src, "chain")
	wl := nl.Lib.WireLoad("5K_heavy_1k")
	before, err := sta.Analyze(nl, wl, cons(3))
	if err != nil {
		t.Fatal(err)
	}
	n := BalanceTrees(nl)
	if n == 0 {
		t.Fatal("BalanceTrees found nothing to balance")
	}
	if err := nl.Check(); err != nil {
		t.Fatal(err)
	}
	after, err := sta.Analyze(nl, wl, cons(3))
	if err != nil {
		t.Fatal(err)
	}
	if after.CPS() <= before.CPS() {
		t.Errorf("balancing should improve CPS: before %.4f after %.4f", before.CPS(), after.CPS())
	}
}

func TestSizeForTimingImprovesSlack(t *testing.T) {
	nl := elab(t, `
module s(input clk, input [31:0] a, input [31:0] b, output [31:0] q);
    reg [31:0] q;
    always @(posedge clk) q <= a + b;
endmodule`, "s")
	wl := nl.Lib.WireLoad("5K_heavy_1k")
	before, _ := sta.Analyze(nl, wl, cons(2))
	if before.WNS() >= 0 {
		t.Skip("design unexpectedly meets timing before sizing")
	}
	n := SizeForTiming(nl, wl, cons(2), 0, 12)
	if n == 0 {
		t.Fatal("sizing made no changes")
	}
	after, _ := sta.Analyze(nl, wl, cons(2))
	if after.CPS() <= before.CPS() {
		t.Errorf("sizing should improve CPS: before %.4f after %.4f", before.CPS(), after.CPS())
	}
	if err := nl.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestAreaRecoveryShrinksWithoutViolating(t *testing.T) {
	nl := elab(t, `
module a(input clk, input [15:0] x, input [15:0] y, output [15:0] q);
    reg [15:0] q;
    always @(posedge clk) q <= x ^ y;
endmodule`, "a")
	wl := nl.Lib.WireLoad("5K_heavy_1k")
	// Upsize everything first so there is something to recover.
	for _, c := range nl.Cells {
		if up := nl.Lib.Upsize(c.Ref); up != nil {
			c.Ref = up
		}
	}
	areaBefore := nl.Area()
	n := AreaRecovery(nl, wl, cons(5), 0.2)
	if n == 0 {
		t.Fatal("area recovery made no changes")
	}
	if nl.Area() >= areaBefore {
		t.Errorf("area should shrink: %.2f -> %.2f", areaBefore, nl.Area())
	}
	tm, _ := sta.Analyze(nl, wl, cons(5))
	if tm.WNS() < 0 {
		t.Errorf("area recovery created violations: WNS %.4f", tm.WNS())
	}
}

func TestBufferHighFanout(t *testing.T) {
	// One source driving 64 loads.
	lib := liberty.Nangate45()
	nl := netlist.New("fo", lib)
	in := nl.NewNet("in")
	in.PI = true
	nl.Inputs = append(nl.Inputs, in)
	src, _ := nl.AddCell(lib.Cell("INV_X1"), "", "fo", in)
	for i := 0; i < 64; i++ {
		sink, _ := nl.AddCell(lib.Cell("INV_X1"), "", "fo", src.Output)
		sink.Output.PO = true
		nl.Outputs = append(nl.Outputs, sink.Output)
	}
	wl := lib.WireLoad("5K_heavy_1k")
	before, _ := sta.Analyze(nl, wl, cons(2))
	n := BufferHighFanout(nl, 8)
	if n == 0 {
		t.Fatal("no buffers inserted")
	}
	if err := nl.Check(); err != nil {
		t.Fatal(err)
	}
	after, _ := sta.Analyze(nl, wl, cons(2))
	if after.CPS() <= before.CPS() {
		t.Errorf("buffering should improve CPS: before %.4f after %.4f", before.CPS(), after.CPS())
	}
	for _, net := range nl.Nets {
		if net.IsClk || net.IsRst || net.Const {
			continue
		}
		if len(net.Sinks) > 8 {
			t.Errorf("net %s still has fanout %d > 8", net.Name, len(net.Sinks))
		}
	}
}

// unbalancedPipeSrc has a deep first stage (32-bit add + xor mixing) and a
// trivial second stage — the register-imbalance scenario retiming fixes.
const unbalancedPipeSrc = `
module unb(input clk, input [15:0] a, input [15:0] b, output [15:0] q);
    reg [15:0] r1, q;
    wire [15:0] deep;
    assign deep = (a + b) ^ (a << 1) ^ (b >> 2);
    always @(posedge clk) begin
        r1 <= deep + a;
        q <= r1;
    end
endmodule
`

func TestRetimeImprovesImbalancedPipeline(t *testing.T) {
	nl := elab(t, unbalancedPipeSrc, "unb")
	wl := nl.Lib.WireLoad("5K_heavy_1k")
	// Pick a period that the imbalanced design violates but balanced
	// stages could meet.
	period := 1.0
	before, err := sta.Analyze(nl, wl, cons(period))
	if err != nil {
		t.Fatal(err)
	}
	if before.WNS() >= 0 {
		t.Skipf("period %.2f met before retime (CPS %.4f); test needs a violating start", period, before.CPS())
	}
	moves := Retime(nl, wl, cons(period), 200)
	if moves == 0 {
		t.Fatal("retime made no moves on an imbalanced pipeline")
	}
	if err := nl.Check(); err != nil {
		t.Fatal(err)
	}
	after, err := sta.Analyze(nl, wl, cons(period))
	if err != nil {
		t.Fatal(err)
	}
	if after.WNS() <= before.WNS() {
		t.Errorf("retime should improve WNS: before %.4f after %.4f", before.WNS(), after.WNS())
	}
}

func TestRetimeNoOpOnBalancedPipeline(t *testing.T) {
	nl := elab(t, `
module bal(input clk, input [15:0] a, input [15:0] b, output [15:0] q);
    reg [15:0] r1, q;
    always @(posedge clk) begin
        r1 <= a + b;
        q <= r1 + a;
    end
endmodule`, "bal")
	wl := nl.Lib.WireLoad("5K_heavy_1k")
	// At a comfortable period there is nothing to fix.
	moves := Retime(nl, wl, cons(4), 100)
	if moves != 0 {
		t.Errorf("retime moved %d registers on a met design, want 0", moves)
	}
}

func TestCompileUltraBeatsLowEffort(t *testing.T) {
	build := func() *Design {
		nl := elab(t, `
module d(input clk, input [31:0] a, input [31:0] b, output [31:0] q);
    reg [31:0] q;
    wire [31:0] m;
    assign m = (a + b) ^ (a >> 3);
    always @(posedge clk) q <= m + b;
endmodule`, "d")
		return &Design{NL: nl, WL: nl.Lib.WireLoad("5K_heavy_1k"), Cons: cons(2.2)}
	}
	dLow := build()
	if err := Compile(dLow, CompileOptions{MapEffort: EffortLow}); err != nil {
		t.Fatal(err)
	}
	qLow, err := dLow.QoR()
	if err != nil {
		t.Fatal(err)
	}
	dUltra := build()
	if err := Compile(dUltra, CompileOptions{Ultra: true, Retime: true}); err != nil {
		t.Fatal(err)
	}
	qUltra, err := dUltra.QoR()
	if err != nil {
		t.Fatal(err)
	}
	if qUltra.CPS <= qLow.CPS {
		t.Errorf("compile_ultra CPS %.4f should beat low effort %.4f", qUltra.CPS, qLow.CPS)
	}
	if err := dUltra.NL.Check(); err != nil {
		t.Fatal(err)
	}
}

