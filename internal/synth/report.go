package synth

import (
	"fmt"
	"strings"
)

// ReportTiming formats the worst timing paths the way report_timing does:
// startpoint, endpoint, per-stage increments, and slack. The text feeds back
// into the ChatLS pipeline as the "logic synthesis tool report" input.
func ReportTiming(d *Design, maxPaths int) (string, error) {
	tm, err := d.Timing()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("**** report_timing ****\n")
	fmt.Fprintf(&b, "Design: %s   clock period: %.3f ns\n\n", d.NL.Name, d.Cons.Period)
	for i, p := range tm.WorstPaths(maxPaths) {
		fmt.Fprintf(&b, "Path %d\n", i+1)
		fmt.Fprintf(&b, "  Startpoint: %s\n", p.Startpoint)
		fmt.Fprintf(&b, "  Endpoint:   %s\n", p.Endpoint)
		for _, s := range p.Steps {
			name := "(input)"
			lib := ""
			group := ""
			if s.Cell != nil {
				name = s.Cell.Name
				lib = s.Cell.Ref.Name
				if s.Cell.Group != "" {
					group = " [" + s.Cell.Group + "]"
				}
			}
			fmt.Fprintf(&b, "    %-10s %-10s%s  +%.4f  arr %.4f\n", name, lib, group, s.Incr, s.Arrival)
		}
		status := "MET"
		if p.Slack < 0 {
			status = "VIOLATED"
		}
		fmt.Fprintf(&b, "  slack: %.4f (%s)\n\n", p.Slack, status)
	}
	return b.String(), nil
}

// ReportArea formats area statistics.
func ReportArea(d *Design) string {
	s := d.NL.Summary()
	var b strings.Builder
	b.WriteString("**** report_area ****\n")
	fmt.Fprintf(&b, "Design: %s\n", d.NL.Name)
	fmt.Fprintf(&b, "Combinational cells: %d\n", s.Comb)
	fmt.Fprintf(&b, "Sequential cells:    %d\n", s.Seq)
	fmt.Fprintf(&b, "Total cells:         %d\n", s.Cells)
	fmt.Fprintf(&b, "Total area:          %.2f um^2\n", s.Area)
	fmt.Fprintf(&b, "Leakage power:       %.2f nW\n", s.Leakage)
	fmt.Fprintf(&b, "Max fanout:          %d\n", s.MaxFanout)
	return b.String()
}

// ReportQoR formats the quality-of-results summary.
func ReportQoR(d *Design) (string, error) {
	q, err := d.QoR()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("**** report_qor ****\n")
	fmt.Fprintf(&b, "Design: %s   clock period: %.3f ns\n", q.Design, q.Period)
	fmt.Fprintf(&b, "WNS: %8.3f ns\n", q.WNS)
	fmt.Fprintf(&b, "CPS: %8.3f ns\n", q.CPS)
	fmt.Fprintf(&b, "TNS: %8.3f ns\n", q.TNS)
	fmt.Fprintf(&b, "Violating endpoints: %d\n", q.Violations)
	fmt.Fprintf(&b, "Area: %.2f um^2   cells: %d   registers: %d\n", q.Area, q.Cells, q.Seq)
	return b.String(), nil
}

// ReportHierarchy lists optimization groups with their cell counts.
func ReportHierarchy(d *Design) string {
	var b strings.Builder
	b.WriteString("**** report_hierarchy ****\n")
	fmt.Fprintf(&b, "Design: %s\n", d.NL.Name)
	names := d.NL.GroupNames()
	if len(names) == 0 {
		b.WriteString("(flat)\n")
		return b.String()
	}
	for _, g := range names {
		fmt.Fprintf(&b, "  %-32s %6d cells\n", g, d.NL.Groups[g])
	}
	return b.String()
}

// ReportConstraint lists violations of the active constraints.
func ReportConstraint(d *Design) (string, error) {
	tm, err := d.Timing()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("**** report_constraint ****\n")
	viol := 0
	for _, e := range tm.Endpoints() {
		if e.Slack < 0 {
			viol++
		}
	}
	fmt.Fprintf(&b, "max_delay (clock %.3f ns): %d violating endpoints, WNS %.3f, TNS %.3f\n",
		d.Cons.Period, viol, tm.WNS(), tm.TNS())
	if d.MaxFanout > 0 {
		fos := tm.MaxFanoutViolations(d.MaxFanout)
		fmt.Fprintf(&b, "max_fanout (%d): %d violating nets\n", d.MaxFanout, len(fos))
		for i, n := range fos {
			if i >= 5 {
				fmt.Fprintf(&b, "  ... and %d more\n", len(fos)-5)
				break
			}
			fmt.Fprintf(&b, "  net %s fanout %d\n", n.Name, n.Fanout())
		}
	}
	if d.MaxArea > 0 {
		area := d.NL.Area()
		status := "MET"
		if area > d.MaxArea {
			status = "VIOLATED"
		}
		fmt.Fprintf(&b, "max_area (%.2f): %.2f (%s)\n", d.MaxArea, area, status)
	}
	return b.String(), nil
}
