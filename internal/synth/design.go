package synth

import (
	"fmt"

	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/sta"
)

// Design is a netlist under synthesis: the netlist plus the constraints the
// script has applied so far.
type Design struct {
	NL        *netlist.Netlist
	WL        *liberty.WireLoad
	Cons      sta.Constraints
	MaxFanout int     // 0 = unconstrained
	MaxArea   float64 // 0 = unconstrained
	Compiled  bool
	ClockPort string

	// Cached timing, refreshed via sta's generation tracking: report and
	// optimization commands between edits share one analysis, delay-only
	// edits refresh it incrementally, structural edits rebuild it in place.
	tm     *sta.Timing
	tmCons sta.Constraints // constraints the cache was built under
}

// Timing returns STA results for the design's current constraints. The
// analysis is cached across calls; netlist edits are picked up through the
// netlist's edit generations, constraint changes force a fresh analysis.
func (d *Design) Timing() (*sta.Timing, error) {
	if d.Cons.Period <= 0 {
		return nil, fmt.Errorf("no clock constraint: run create_clock first")
	}
	if d.tm != nil && d.tm.NL == d.NL && d.tm.WL == d.WL && d.tmCons == d.Cons {
		if err := d.tm.Update(nil); err != nil {
			d.tm = nil
			return nil, err
		}
		return d.tm, nil
	}
	tm, err := sta.Analyze(d.NL, d.WL, d.Cons)
	if err != nil {
		d.tm = nil
		return nil, err
	}
	d.tm, d.tmCons = tm, d.Cons
	return tm, nil
}

// QoR summarizes quality of results: the metrics in the paper's Tables III
// and IV plus cell statistics.
type QoR struct {
	Design     string
	Period     float64
	WNS        float64 // worst negative slack (ns), <= 0
	CPS        float64 // critical path slack (ns), sign-free
	TNS        float64 // total negative slack (ns), <= 0
	Area       float64 // um^2
	Leakage    float64 // nW
	Cells      int
	Seq        int
	Violations int // violating endpoints
}

// MeetsTiming reports whether the design closed timing.
func (q QoR) MeetsTiming() bool { return q.WNS >= 0 }

// QoR computes the design's current quality of results.
func (d *Design) QoR() (QoR, error) {
	tm, err := d.Timing()
	if err != nil {
		return QoR{}, err
	}
	viol := 0
	for _, e := range tm.Endpoints() {
		if e.Slack < 0 {
			viol++
		}
	}
	return QoR{
		Design:     d.NL.Name,
		Period:     d.Cons.Period,
		WNS:        tm.WNS(),
		CPS:        tm.CPS(),
		TNS:        tm.TNS(),
		Area:       d.NL.Area(),
		Leakage:    d.NL.Leakage(),
		Cells:      len(d.NL.Cells),
		Seq:        d.NL.SeqCount(),
		Violations: viol,
	}, nil
}

// Effort is a compile effort level.
type Effort int

const (
	EffortLow Effort = iota
	EffortMedium
	EffortHigh
)

// ParseEffort converts dc_shell effort strings.
func ParseEffort(s string) (Effort, error) {
	switch s {
	case "low":
		return EffortLow, nil
	case "medium":
		return EffortMedium, nil
	case "high":
		return EffortHigh, nil
	}
	return 0, fmt.Errorf("invalid effort %q (must be low, medium, or high)", s)
}

// CompileOptions configures a compile or compile_ultra run.
type CompileOptions struct {
	MapEffort        Effort
	AreaEffort       Effort
	Incremental      bool
	Ultra            bool
	Retime           bool // compile_ultra -retime
	NoAutoUngroup    bool // compile_ultra -no_autoungroup
	TimingHighEffort bool // compile_ultra -timing_high_effort_script
	AreaHighEffort   bool // compile_ultra -area_high_effort_script
}

// Compile runs the synthesis optimization flow. Which passes run — and
// therefore what QoR comes out — depends mechanically on the options, so a
// well-customized script visibly beats a generic one.
func Compile(d *Design, opts CompileOptions) error {
	if d.Cons.Period <= 0 {
		return fmt.Errorf("compile: no clock constraint defined (create_clock)")
	}
	Sweep(d.NL)

	if opts.Ultra && !opts.NoAutoUngroup {
		d.NL.Ungroup("")
		Sweep(d.NL) // boundary inverter pairs become removable
	}

	effort := opts.MapEffort
	if opts.Ultra {
		effort = EffortHigh
	}

	if effort >= EffortMedium && !opts.Incremental {
		Restructure(d.NL)
	}
	if effort >= EffortHigh && !opts.Incremental {
		BalanceTrees(d.NL)
		Restructure(d.NL)
	}

	// Fanout buffering happens only under an explicit constraint: choosing
	// set_max_fanout/balance_buffers is exactly the kind of design-specific
	// decision the customization experiment measures.
	if d.MaxFanout > 0 {
		BufferHighFanout(d.NL, d.MaxFanout)
	}

	// One shared timing analysis drives the remaining passes; each refreshes
	// it incrementally (sizing) or rebuilds it in place (retiming). A nil tm
	// means the netlist has a combinational loop — the timing passes would
	// each have bailed out individually, so skip them as a group.
	tm, tmErr := d.Timing()
	if tmErr != nil {
		tm = nil
	}

	if opts.Retime && tm != nil {
		RetimeWith(tm, 4000)
	}

	// Effort controls how hard sizing works: iterations, the strongest
	// drive it may use, and the smallest win it still takes.
	so := map[Effort]SizeOptions{
		EffortLow:    {MaxIters: 2, MaxDrive: 2, MinGain: 0.004},
		EffortMedium: {MaxIters: 8, MaxDrive: 4, MinGain: 0.0015},
		EffortHigh:   {MaxIters: 16, MaxDrive: 8, MinGain: 0.0004},
	}[effort]
	if opts.Ultra {
		so = SizeOptions{MaxIters: 24, MaxDrive: 16, MinGain: 0.0001}
	}
	if opts.TimingHighEffort {
		so.MaxIters += 12
		so.TargetSlack = 0.10 * d.Cons.Period
	}
	if tm != nil {
		SizeForTimingWith(tm, so)
	}

	areaMargin := -1.0 // skip
	switch {
	case opts.AreaHighEffort:
		areaMargin = 0.08
	case opts.Ultra:
		areaMargin = 0.15
	case opts.AreaEffort >= EffortHigh:
		areaMargin = 0.12
	case opts.AreaEffort == EffortMedium || effort >= EffortMedium:
		areaMargin = 0.30
	}
	if areaMargin >= 0 && tm != nil {
		AreaRecoveryWith(tm, areaMargin)
		if opts.AreaHighEffort {
			AreaRecoveryWith(tm, areaMargin)
		}
	}

	Sweep(d.NL)
	d.Compiled = true
	return nil
}
