package synth

import (
	"testing"

	"repro/internal/inputlimits"
)

// scriptFuzzBudget is deliberately tighter than the serving default so the
// fuzzer spends its time exploring parser states instead of churning through
// megabytes of accepted input.
var scriptFuzzBudget = inputlimits.Budget{
	MaxBytes:      1 << 16,
	MaxTokens:     1 << 13,
	MaxStatements: 1 << 10,
	MaxSteps:      1 << 16,
}

// FuzzParseScript asserts the dc_shell-subset script parser never panics or
// hangs on arbitrary text, and that any script it accepts is also accepted
// unchanged on a second parse (parsing is deterministic and side-effect
// free). ValidateScript runs on every input too, since it is the surface the
// serving path actually calls.
func FuzzParseScript(f *testing.F) {
	seeds := []string{
		"read_verilog design.v\ncreate_clock -period 1.0 clk\ncompile\n",
		"set period 0.9\ncreate_clock -period $period [get_ports clk]\n",
		"compile_ultra -retime ;# aggressive\n",
		"read_verilog a.v \\\n  b.v\nlink\n",
		"echo \"quoted arg\" [all_inputs] {brace group}\n",
		"set_max_fanout 16 [current_design]\nreport_qor\n",
		"create_clock -period",
		"bogus_command -x",
		"echo [unbalanced\n",
		"echo \"unterminated\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		cmds, err := ParseScriptWithBudget(src, scriptFuzzBudget)
		if err != nil {
			return
		}
		again, err := ParseScriptWithBudget(src, scriptFuzzBudget)
		if err != nil {
			t.Fatalf("second parse of accepted script failed: %v", err)
		}
		if len(again) != len(cmds) {
			t.Fatalf("second parse returned %d commands, first %d", len(again), len(cmds))
		}
		ValidateScript(src)
	})
}
